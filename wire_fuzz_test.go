package relperf

// Fuzz harness for the relperf/result/v1 wire decoder: arbitrary bytes
// must never panic UnmarshalResultWire, and any document it accepts must
// re-marshal to a canonical fixed point — the byte-identity the fleet
// store, snapshots and HTTP cache hits are built on. Run continuously with:
//
//	go test -run '^$' -fuzz '^FuzzUnmarshalResultWire$' -fuzztime 30s .

import (
	"bytes"
	"os"
	"testing"
)

func FuzzUnmarshalResultWire(f *testing.F) {
	if golden, err := os.ReadFile(goldenResultPath); err == nil {
		f.Add(bytes.TrimSuffix(golden, []byte("\n")))
	}
	f.Add([]byte(`{"schema":"relperf/result/v1"}`))
	f.Add([]byte(`{"schema":"relperf/result/v0","names":[]}`))
	f.Add([]byte(`{"schema":"relperf/result/v1","names":["a"],"samples":{"workload":"w","samples":[{"name":"a","seconds":[1]}]},"clusters":null,"final":null,"profiles":null}`))
	f.Add([]byte(`not json`))
	f.Add([]byte(`{}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		res, err := UnmarshalResultWire(data)
		if err != nil {
			return // malformed input must error, and it did
		}
		b1, err := res.MarshalWire()
		if err != nil {
			t.Fatalf("accepted document fails to re-marshal: %v", err)
		}
		res2, err := UnmarshalResultWire(b1)
		if err != nil {
			t.Fatalf("canonical re-encoding rejected: %v\ndoc: %s", err, b1)
		}
		b2, err := res2.MarshalWire()
		if err != nil {
			t.Fatalf("second marshal failed: %v", err)
		}
		if !bytes.Equal(b1, b2) {
			t.Fatalf("marshal is not a fixed point:\n first: %s\nsecond: %s", b1, b2)
		}
	})
}
