package relperf

import (
	"runtime"
	"testing"

	"relperf/internal/compare"
	"relperf/internal/core"
	"relperf/internal/measure"
	"relperf/internal/sim"
	"relperf/internal/xrand"
)

// resultsIdentical asserts two study results are bit-identical: every
// measurement, every score, every rank, every profile field.
func resultsIdentical(t *testing.T, a, b *Result) {
	t.Helper()
	if len(a.Names) != len(b.Names) {
		t.Fatalf("name counts differ: %d vs %d", len(a.Names), len(b.Names))
	}
	for i := range a.Names {
		if a.Names[i] != b.Names[i] {
			t.Fatalf("name %d differs: %s vs %s", i, a.Names[i], b.Names[i])
		}
		as, bs := a.Samples.Samples[i].Seconds, b.Samples.Samples[i].Seconds
		if len(as) != len(bs) {
			t.Fatalf("sample %d lengths differ", i)
		}
		for j := range as {
			if as[j] != bs[j] {
				t.Fatalf("sample %d measurement %d differs: %v vs %v", i, j, as[j], bs[j])
			}
		}
	}
	clusterResultsIdentical(t, a.Clusters, b.Clusters)
	for i := range a.Final.Rank {
		if a.Final.Rank[i] != b.Final.Rank[i] || a.Final.Score[i] != b.Final.Score[i] {
			t.Fatalf("final assignment %d differs", i)
		}
	}
	for i := range a.Profiles {
		if a.Profiles[i] != b.Profiles[i] {
			t.Fatalf("profile %d differs: %+v vs %+v", i, a.Profiles[i], b.Profiles[i])
		}
	}
}

func clusterResultsIdentical(t *testing.T, a, b *core.ClusterResult) {
	t.Helper()
	if a.P != b.P || a.Reps != b.Reps || a.K != b.K || a.MeanK != b.MeanK {
		t.Fatalf("cluster meta differs: %+v vs %+v", a, b)
	}
	for alg := range a.Scores {
		for r := range a.Scores[alg] {
			if a.Scores[alg][r] != b.Scores[alg][r] {
				t.Fatalf("score[%d][%d] differs: %v vs %v", alg, r, a.Scores[alg][r], b.Scores[alg][r])
			}
		}
	}
}

// TestStudyRunWorkerDeterminism is the engine's central property: for
// several seeds, Workers=1, Workers=4 and Workers=GOMAXPROCS must produce
// bit-identical Results.
func TestStudyRunWorkerDeterminism(t *testing.T) {
	for _, seed := range []uint64{1, 7, 42} {
		run := func(workers int) *Result {
			study, err := NewStudy(StudyConfig{
				Program: smallProgram(),
				N:       12,
				Warmup:  2,
				Reps:    30,
				Seed:    seed,
				Workers: workers,
			})
			if err != nil {
				t.Fatal(err)
			}
			res, err := study.Run()
			if err != nil {
				t.Fatal(err)
			}
			return res
		}
		ref := run(1)
		for _, w := range []int{4, runtime.GOMAXPROCS(0)} {
			resultsIdentical(t, ref, run(w))
		}
	}
}

// TestStudyRunMatrixWorkerDeterminism: the matrix path obeys the same
// contract.
func TestStudyRunMatrixWorkerDeterminism(t *testing.T) {
	run := func(workers int) *Result {
		study, err := NewStudy(StudyConfig{
			Program: smallProgram(),
			N:       12,
			Reps:    30,
			Seed:    11,
			Workers: workers,
			Matrix:  true,
		})
		if err != nil {
			t.Fatal(err)
		}
		res, err := study.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	ref := run(1)
	for _, w := range []int{4, runtime.GOMAXPROCS(0)} {
		resultsIdentical(t, ref, run(w))
	}
}

// TestClusterWorkerDeterminism: core.Cluster on the Fork path produces
// bit-identical ClusterResults at every worker count, for several seeds.
func TestClusterWorkerDeterminism(t *testing.T) {
	rng := xrand.New(5)
	data := make([][]float64, 6)
	for i := range data {
		m := 1 + 0.02*float64(i) // closely spaced: stochastic comparisons
		data[i] = make([]float64, 25)
		for j := range data[i] {
			data[i][j] = m * rng.LogNormal(0, 0.05)
		}
	}
	proto := compare.NewBootstrap(0)
	fork := func(seed uint64) core.CompareFunc {
		c := proto.Fork(seed)
		return func(i, j int) (compare.Outcome, error) { return c.Compare(data[i], data[j]) }
	}
	for _, seed := range []uint64{3, 19, 101} {
		run := func(workers int) *core.ClusterResult {
			cr, err := core.Cluster(len(data), nil, core.ClusterOptions{
				Reps: 40, Seed: seed, Workers: workers, Fork: fork,
			})
			if err != nil {
				t.Fatal(err)
			}
			return cr
		}
		ref := run(1)
		for _, w := range []int{4, runtime.GOMAXPROCS(0)} {
			clusterResultsIdentical(t, ref, run(w))
		}
	}
}

// TestStudyWarmupNotContaminating verifies the warmup fix: the energy/busy
// profile must equal the mean over the N measured runs only, reproduced
// here from the placement's keyed simulator stream.
func TestStudyWarmupNotContaminating(t *testing.T) {
	const n, warmup = 10, 4
	prog := smallProgram()
	study, err := NewStudy(StudyConfig{Program: prog, N: n, Warmup: warmup, Reps: 10, Seed: 21})
	if err != nil {
		t.Fatal(err)
	}
	res, err := study.Run()
	if err != nil {
		t.Fatal(err)
	}
	placements := sim.EnumeratePlacements(len(prog.Tasks))
	for i, pl := range placements {
		simulator, err := sim.NewSimulator(DefaultPlatform(), placementSeed(21, i))
		if err != nil {
			t.Fatal(err)
		}
		var wantEdge, wantAccel, wantBusy float64
		for r := 0; r < warmup+n; r++ {
			rr, err := simulator.Run(prog, pl)
			if err != nil {
				t.Fatal(err)
			}
			if r < warmup {
				continue // warmup runs must not contribute
			}
			wantEdge += rr.EdgeJoules
			wantAccel += rr.AccelJoules
			wantBusy += rr.AccelBusy
		}
		p := res.Profiles[i]
		if !almostEqual(p.EdgeJoules, wantEdge/n) || !almostEqual(p.AccelJoules, wantAccel/n) || !almostEqual(p.AccelSeconds, wantBusy/n) {
			t.Fatalf("placement %s: profile %+v contaminated by warmup (want edge %v accel %v busy %v)",
				pl, p, wantEdge/n, wantAccel/n, wantBusy/n)
		}
	}
}

func almostEqual(a, b float64) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	scale := a
	if scale < 0 {
		scale = -scale
	}
	if scale < 1 {
		scale = 1
	}
	return d <= 1e-12*scale
}

// TestClusterSamplesWithMatrix: the matrix path separates clearly distinct
// distributions exactly like the live path.
func TestClusterSamplesWithMatrix(t *testing.T) {
	ss := &measure.SampleSet{
		Workload: "w",
		Samples: []measure.Sample{
			{Name: "fast", Seconds: []float64{1, 1.01, 1.02, 0.99, 1.0, 1.03, 0.98, 1.01, 1.0, 1.02}},
			{Name: "mid", Seconds: []float64{1.5, 1.51, 1.52, 1.49, 1.5, 1.53, 1.48, 1.51, 1.5, 1.52}},
			{Name: "slow", Seconds: []float64{2, 2.01, 2.02, 1.99, 2.0, 2.03, 1.98, 2.01, 2.0, 2.02}},
		},
	}
	cr, fa, err := ClusterSamplesWith(ss, nil, ClusterSamplesOptions{Reps: 30, Seed: 5, Matrix: true})
	if err != nil {
		t.Fatal(err)
	}
	if cr.K != 3 {
		t.Fatalf("K = %d, want 3 (clearly separated)", cr.K)
	}
	for i, want := range []int{1, 2, 3} {
		if fa.Rank[i] != want {
			t.Fatalf("ranks = %v", fa.Rank)
		}
	}
}

// TestStudyNonForkableComparatorSerialFallback: a custom comparator that
// does not implement Forker still works (serial clustering path).
func TestStudyNonForkableComparatorSerialFallback(t *testing.T) {
	cmp := compare.Func(func(a, b []float64) (compare.Outcome, error) {
		ma, mb := mean(a), mean(b)
		switch {
		case ma < mb:
			return compare.Better, nil
		case ma > mb:
			return compare.Worse, nil
		default:
			return compare.Equivalent, nil
		}
	})
	study, err := NewStudy(StudyConfig{Program: smallProgram(), N: 10, Reps: 10, Comparator: cmp, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := study.Run(); err != nil {
		t.Fatal(err)
	}
	// Matrix requested but comparator not forkable: must still succeed via
	// the serial fallback.
	study, err = NewStudy(StudyConfig{Program: smallProgram(), N: 10, Reps: 10, Comparator: cmp, Matrix: true})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := study.Run(); err != nil {
		t.Fatal(err)
	}
}

func mean(xs []float64) float64 {
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// TestEngineRaceExercise drives every parallel path at full width so `go
// test -race` patrols the engine: concurrent measurement, concurrent
// repetitions, and the matrix pre-pass, all sharing one Platform.
func TestEngineRaceExercise(t *testing.T) {
	for _, matrix := range []bool{false, true} {
		study, err := NewStudy(StudyConfig{
			Program: TableIProgram(2),
			N:       8,
			Warmup:  1,
			Reps:    24,
			Seed:    13,
			Matrix:  matrix,
		})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := study.Run(); err != nil {
			t.Fatal(err)
		}
	}
}
