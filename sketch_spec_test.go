package relperf

// Wire-schema tests of sketch mode: the "sketch": {"k": ...} block, its
// validation rules, its cost model and its resolution into StudyConfig.

import (
	"strings"
	"testing"

	"relperf/internal/compare"
)

func TestSketchSpecResolution(t *testing.T) {
	sp, err := ParseStudySpec([]byte(`{"workload": "tableI", "sketch": {"k": 64}}`))
	if err != nil {
		t.Fatal(err)
	}
	cfg, err := sp.Config()
	if err != nil {
		t.Fatal(err)
	}
	if cfg.SketchK != 64 {
		t.Fatalf("SketchK = %d, want 64", cfg.SketchK)
	}
	if _, ok := cfg.Comparator.(compare.SketchComparator); !ok {
		t.Fatalf("sketch spec resolved comparator %T, want SketchComparator", cfg.Comparator)
	}
	// The explicit comparator keyword resolves identically.
	sp2, err := ParseStudySpec([]byte(`{"workload": "tableI", "comparator": "sketch", "sketch": {"k": 64}}`))
	if err != nil {
		t.Fatal(err)
	}
	cfg2, err := sp2.Config()
	if err != nil {
		t.Fatal(err)
	}
	fp1, err := Fingerprint(cfg)
	if err != nil {
		t.Fatal(err)
	}
	fp2, err := Fingerprint(cfg2)
	if err != nil {
		t.Fatal(err)
	}
	if fp1 != fp2 {
		t.Fatalf("implicit and explicit sketch comparator fingerprint differently: %s vs %s", fp1, fp2)
	}
}

func TestSketchSpecValidationErrors(t *testing.T) {
	cases := []struct{ name, spec, want string }{
		{"k too small", `{"workload": "tableI", "sketch": {"k": 4}}`, "sketch k"},
		{"k too large", `{"workload": "tableI", "sketch": {"k": 2097152}}`, "sketch k"},
		{"k missing", `{"workload": "tableI", "sketch": {}}`, "sketch k"},
		{"with matrix", `{"workload": "tableI", "matrix": true, "sketch": {"k": 64}}`, "matrix"},
		{"wrong comparator", `{"workload": "tableI", "comparator": "ks", "sketch": {"k": 64}}`, "comparator"},
		{"keyword without block", `{"workload": "tableI", "comparator": "sketch"}`, "sketch block"},
		{"unknown field", `{"workload": "tableI", "sketch": {"k": 64, "depth": 3}}`, "unknown field"},
	}
	for _, tc := range cases {
		_, err := ParseStudySpec([]byte(tc.spec))
		if err == nil {
			t.Errorf("%s: accepted", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
	}
}

// TestSketchSpecCostEstimate pins sketch mode's admission cost: additive in
// measurements and reps rather than multiplicative — the economics that make
// a 10^6-measurement campaign admissible at all.
func TestSketchSpecCostEstimate(t *testing.T) {
	exact, err := ParseStudySpec([]byte(`{"workload": "tableI", "measurements": 1000, "reps": 100}`))
	if err != nil {
		t.Fatal(err)
	}
	sk, err := ParseStudySpec([]byte(`{"workload": "tableI", "measurements": 1000, "reps": 100, "sketch": {"k": 64}}`))
	if err != nil {
		t.Fatal(err)
	}
	// 8 placements for the 3-task program.
	if got, want := exact.CostEstimate(), int64(8*1000*100); got != want {
		t.Fatalf("exact cost = %d, want %d", got, want)
	}
	if got, want := sk.CostEstimate(), int64(8*1000+8*100); got != want {
		t.Fatalf("sketch cost = %d, want %d", got, want)
	}
}
