// Command relperf is the user-facing CLI of the library:
//
//	relperf measure  -workload tableI -n 10 -N 30 -out runs.csv
//	    measure all placements of a workload and archive the distributions
//	relperf cluster  -in runs.csv -reps 100
//	    re-cluster archived measurements (no re-execution — footnote 5)
//	relperf study    -workload fig1 -N 500
//	    measure + cluster + report in one step
//	relperf placements -tasks 3
//	    enumerate the algorithm set of an L-task code
//	relperf kernels -size 64 -N 30
//	    measure + cluster the equivalent RLS kernel variants (real host times)
//	relperf race -workload tableI
//	    find the best placement with racing elimination
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strings"

	"relperf"
	"relperf/internal/compare"
	"relperf/internal/measure"
	"relperf/internal/report"
	"relperf/internal/search"
	"relperf/internal/sim"
	"relperf/internal/workload"
)

func usage() {
	fmt.Fprintln(os.Stderr, "usage: relperf <measure|cluster|study|placements|kernels|race> [flags]")
	os.Exit(2)
}

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	var err error
	switch os.Args[1] {
	case "measure":
		err = cmdMeasure(os.Args[2:])
	case "cluster":
		err = cmdCluster(os.Args[2:])
	case "study":
		err = cmdStudy(os.Args[2:])
	case "placements":
		err = cmdPlacements(os.Args[2:])
	case "kernels":
		err = cmdKernels(os.Args[2:])
	case "race":
		err = cmdRace(os.Args[2:])
	default:
		usage()
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "relperf: %v\n", err)
		os.Exit(1)
	}
}

// buildStudy assembles a study for one of the named workloads. workers and
// matrix configure the parallel engine; results are worker-count-invariant.
func buildStudy(workloadName string, n, nMeas, reps int, seed uint64, workers int, matrix bool) (*relperf.Study, error) {
	var cfg relperf.StudyConfig
	switch workloadName {
	case "tableI", "table1":
		cfg.Program = relperf.TableIProgram(n)
		cfg.Platform = relperf.DefaultPlatform()
	case "fig1", "figure1":
		cfg.Platform = relperf.Figure1Platform()
		cfg.Program = workload.Figure1(cfg.Platform.Accel.PeakFlops)
	default:
		return nil, fmt.Errorf("unknown workload %q (want tableI or fig1)", workloadName)
	}
	cfg.N = nMeas
	cfg.Reps = reps
	cfg.Seed = seed
	cfg.Workers = workers
	cfg.Matrix = matrix
	return relperf.NewStudy(cfg)
}

func cmdMeasure(args []string) error {
	fs := flag.NewFlagSet("measure", flag.ExitOnError)
	wl := fs.String("workload", "tableI", "workload: tableI|fig1")
	n := fs.Int("n", 10, "loop iterations per MathTask")
	nMeas := fs.Int("N", 30, "measurements per algorithm")
	seed := fs.Uint64("seed", 1, "seed")
	out := fs.String("out", "", "CSV output path (default stdout)")
	workers := fs.Int("workers", 0, "worker pool size (0 = GOMAXPROCS)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	study, err := buildStudy(*wl, *n, *nMeas, 1, *seed, *workers, false)
	if err != nil {
		return err
	}
	res, err := study.Run()
	if err != nil {
		return err
	}
	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	return res.Samples.WriteCSV(w)
}

func cmdCluster(args []string) error {
	fs := flag.NewFlagSet("cluster", flag.ExitOnError)
	in := fs.String("in", "", "CSV file of measurements (required)")
	reps := fs.Int("reps", 100, "clustering repetitions")
	seed := fs.Uint64("seed", 1, "seed")
	workers := fs.Int("workers", 0, "worker pool size (0 = GOMAXPROCS)")
	matrix := fs.Bool("matrix", false, "precompute pairwise outcome statistics")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *in == "" {
		return fmt.Errorf("cluster: -in is required")
	}
	f, err := os.Open(*in)
	if err != nil {
		return err
	}
	defer f.Close()
	ss, err := measure.ReadCSV(f, *in)
	if err != nil {
		return err
	}
	cr, fa, err := relperf.ClusterSamplesWith(ss, nil, relperf.ClusterSamplesOptions{
		Reps: *reps, Seed: *seed, Workers: *workers, Matrix: *matrix,
	})
	if err != nil {
		return err
	}
	names := ss.Names()
	fmt.Printf("Clustering of %d algorithms from %s (Rep=%d):\n", len(names), *in, *reps)
	if err := report.ClusterTable(os.Stdout, cr, names); err != nil {
		return err
	}
	fmt.Println("\nFinal clustering:")
	return report.FinalTable(os.Stdout, fa, names)
}

func cmdStudy(args []string) error {
	fs := flag.NewFlagSet("study", flag.ExitOnError)
	wl := fs.String("workload", "tableI", "workload: tableI|fig1")
	n := fs.Int("n", 10, "loop iterations per MathTask")
	nMeas := fs.Int("N", 30, "measurements per algorithm")
	reps := fs.Int("reps", 100, "clustering repetitions")
	seed := fs.Uint64("seed", 1, "seed")
	workers := fs.Int("workers", 0, "worker pool size (0 = GOMAXPROCS)")
	matrix := fs.Bool("matrix", false, "precompute pairwise outcome statistics")
	spec := fs.String("spec", "", "declarative StudySpec JSON file (the schema of POST /v1/suites studies); excludes -workload/-n/-N/-reps/-matrix")
	jsonOut := fs.Bool("json", false, "emit the canonical relperf/result/v1 document instead of the report")
	if err := fs.Parse(args); err != nil {
		return err
	}
	var study *relperf.Study
	var err error
	if *spec != "" {
		// Declarative mode: the file carries program, platform and engine
		// fields; only seed and workers come from flags (they are runtime
		// concerns, not part of the wire schema). Study-shaping flags would
		// be silently shadowed by the spec, so explicit ones are errors.
		var conflicts []string
		fs.Visit(func(f *flag.Flag) {
			switch f.Name {
			case "workload", "n", "N", "reps", "matrix":
				conflicts = append(conflicts, "-"+f.Name)
			}
		})
		if len(conflicts) > 0 {
			return fmt.Errorf("study: %s cannot be combined with -spec (the spec file carries those settings)",
				strings.Join(conflicts, ", "))
		}
		study, err = buildSpecStudy(*spec, *seed, *workers)
	} else {
		study, err = buildStudy(*wl, *n, *nMeas, *reps, *seed, *workers, *matrix)
	}
	if err != nil {
		return err
	}
	res, err := study.Run()
	if err != nil {
		return err
	}
	if *jsonOut {
		return res.WriteJSON(os.Stdout)
	}
	return res.WriteReport(os.Stdout)
}

// buildSpecStudy loads a declarative spec file and resolves it into a
// runnable study — the same schema, validation and resolution path as the
// relperfd daemon, so a spec validated here is a spec the fleet accepts.
func buildSpecStudy(path string, seed uint64, workers int) (*relperf.Study, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	sp, err := relperf.DecodeStudySpec(f)
	if err != nil {
		return nil, err
	}
	cfg, err := sp.Config()
	if err != nil {
		return nil, err
	}
	cfg.Seed = seed
	cfg.Workers = workers
	return relperf.NewStudy(cfg)
}

func cmdPlacements(args []string) error {
	fs := flag.NewFlagSet("placements", flag.ExitOnError)
	tasks := fs.Int("tasks", 3, "number of dependent tasks L")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *tasks <= 0 || *tasks > 20 {
		return fmt.Errorf("placements: -tasks must be in 1..20")
	}
	pls := sim.EnumeratePlacements(*tasks)
	fmt.Printf("%d equivalent algorithms for an %d-task code:\n", len(pls), *tasks)
	for _, pl := range pls {
		fmt.Printf("  alg%s\n", pl)
	}
	return nil
}

func cmdKernels(args []string) error {
	fs := flag.NewFlagSet("kernels", flag.ExitOnError)
	size := fs.Int("size", 64, "square matrix dimension")
	nMeas := fs.Int("N", 30, "measurements per variant")
	reps := fs.Int("reps", 100, "clustering repetitions")
	seed := fs.Uint64("seed", 1, "seed")
	workers := fs.Int("workers", 0, "worker pool size (0 = GOMAXPROCS)")
	matrix := fs.Bool("matrix", false, "precompute pairwise outcome statistics")
	if err := fs.Parse(args); err != nil {
		return err
	}
	diff, err := workload.VerifyVariantsAgree(*size, 0.5, *seed)
	if err != nil {
		return err
	}
	fmt.Printf("equivalence witness: max solution difference %.2e\n\n", diff)
	ss, err := workload.MeasureKernelVariants(workload.KernelStudyConfig{
		Size: *size, N: *nMeas, Seed: *seed,
	})
	if err != nil {
		return err
	}
	if err := report.SummaryTable(os.Stdout, ss.Names(), ss.Data()); err != nil {
		return err
	}
	_, fa, err := relperf.ClusterSamplesWith(ss, nil, relperf.ClusterSamplesOptions{
		Reps: *reps, Seed: *seed + 1, Workers: *workers, Matrix: *matrix,
	})
	if err != nil {
		return err
	}
	fmt.Println("\nFinal clustering:")
	return report.FinalTable(os.Stdout, fa, ss.Names())
}

func cmdRace(args []string) error {
	fs := flag.NewFlagSet("race", flag.ExitOnError)
	wl := fs.String("workload", "tableI", "workload: tableI|fig1")
	n := fs.Int("n", 10, "loop iterations per MathTask")
	round := fs.Int("round", 10, "measurements per surviving arm per round")
	rounds := fs.Int("rounds", 6, "maximum rounds")
	seed := fs.Uint64("seed", 1, "seed")
	workers := fs.Int("workers", 0, "comparison workers per round (0 = GOMAXPROCS); results identical at any count")
	if err := fs.Parse(args); err != nil {
		return err
	}
	var plat = relperf.DefaultPlatform()
	var prog *sim.Program
	var tasks int
	switch *wl {
	case "tableI", "table1":
		prog = relperf.TableIProgram(*n)
		tasks = 3
	case "fig1", "figure1":
		plat = relperf.Figure1Platform()
		prog = workload.Figure1(plat.Accel.PeakFlops)
		tasks = 2
	default:
		return fmt.Errorf("unknown workload %q", *wl)
	}
	s, err := sim.NewSimulator(plat, *seed)
	if err != nil {
		return err
	}
	var arms []search.Arm
	for _, pl := range sim.EnumeratePlacements(tasks) {
		pl := pl
		arms = append(arms, search.Arm{
			Name:    pl.String(),
			Measure: func() (float64, error) { return s.Seconds(prog, pl) },
		})
	}
	// RaceOn forks the bootstrap comparator per pair and races the
	// elimination comparisons in parallel; the seed keys every stream, so
	// the survivors are identical at any -workers.
	res, err := search.RaceOn(context.Background(), arms, compare.NewBootstrap(*seed+1), search.Config{
		RoundSize: *round, MaxRounds: *rounds, Seed: *seed + 2, Workers: *workers,
	}, nil)
	if err != nil {
		return err
	}
	fmt.Printf("%d rounds, %d measurements; survivors: %v\n",
		res.Rounds, res.TotalMeasurements, res.Survivors)
	tbl := report.NewTable("Algorithm", "Measurements", "Eliminated in round")
	for _, a := range res.Arms {
		el := "-"
		if a.EliminatedInRound > 0 {
			el = fmt.Sprintf("%d", a.EliminatedInRound)
		}
		tbl.AddRow("alg"+a.Name, fmt.Sprintf("%d", a.Measurements), el)
	}
	return tbl.Render(os.Stdout)
}
