package main

import (
	"os"
	"path/filepath"
	"testing"
)

func TestBuildStudy(t *testing.T) {
	if _, err := buildStudy("tableI", 5, 10, 20, 1, 0, false); err != nil {
		t.Fatal(err)
	}
	if _, err := buildStudy("fig1", 5, 10, 20, 1, 2, true); err != nil {
		t.Fatal(err)
	}
	if _, err := buildStudy("nope", 5, 10, 20, 1, 0, false); err == nil {
		t.Fatal("unknown workload accepted")
	}
}

func TestCmdMeasureClusterRoundTrip(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "runs.csv")
	if err := cmdMeasure([]string{"-workload", "tableI", "-n", "2", "-N", "5", "-out", out}); err != nil {
		t.Fatal(err)
	}
	info, err := os.Stat(out)
	if err != nil {
		t.Fatal(err)
	}
	if info.Size() == 0 {
		t.Fatal("empty CSV written")
	}
	// Re-cluster the archived measurements (footnote-5 workflow).
	if err := cmdCluster([]string{"-in", out, "-reps", "10"}); err != nil {
		t.Fatal(err)
	}
}

func TestCmdClusterErrors(t *testing.T) {
	if err := cmdCluster([]string{}); err == nil {
		t.Fatal("missing -in accepted")
	}
	if err := cmdCluster([]string{"-in", "/nonexistent/file.csv"}); err == nil {
		t.Fatal("missing file accepted")
	}
}

func TestCmdStudy(t *testing.T) {
	if err := cmdStudy([]string{"-workload", "tableI", "-n", "2", "-N", "5", "-reps", "10"}); err != nil {
		t.Fatal(err)
	}
	if err := cmdStudy([]string{"-workload", "bogus"}); err == nil {
		t.Fatal("bogus workload accepted")
	}
}

// TestCmdStudySpecMode: -spec runs a declarative spec file through the same
// schema the daemon serves, and rejects invalid specs with an error.
func TestCmdStudySpecMode(t *testing.T) {
	dir := t.TempDir()
	good := filepath.Join(dir, "spec.json")
	if err := os.WriteFile(good, []byte(`{
		"program": {"name": "cli-spec", "tasks": [
			{"name": "L1", "kernel": "gemm", "size": 48, "iters": 6},
			{"name": "L2", "kernel": "raw", "flops": 2e8, "launches": 4, "accel_eff": 0.1}
		]},
		"platform": {"edge": {"preset": "raspberry-pi-4"}, "link": {"preset": "wifi"}},
		"measurements": 5,
		"reps": 8
	}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := cmdStudy([]string{"-spec", good, "-seed", "3"}); err != nil {
		t.Fatal(err)
	}
	if err := cmdStudy([]string{"-spec", good, "-seed", "3", "-json"}); err != nil {
		t.Fatal(err)
	}

	bad := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(bad, []byte(`{"workload":"tableI","reps":-1}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := cmdStudy([]string{"-spec", bad}); err == nil {
		t.Fatal("invalid spec accepted")
	}
	if err := cmdStudy([]string{"-spec", filepath.Join(dir, "missing.json")}); err == nil {
		t.Fatal("missing spec file accepted")
	}

	// Study-shaping flags would be silently shadowed by the spec file, so
	// combining them with -spec must error, not no-op.
	if err := cmdStudy([]string{"-spec", good, "-matrix", "-reps", "500"}); err == nil {
		t.Fatal("-spec combined with -matrix/-reps accepted")
	}
	// -seed/-workers/-json are runtime concerns and stay allowed (covered
	// by the successful runs above).
}

// TestCmdStudySpecExample keeps examples/spec_custom.json runnable: the
// committed example must parse, validate and resolve (execution is covered
// by the cheap spec above — the example uses report-scale parameters).
func TestCmdStudySpecExample(t *testing.T) {
	if _, err := buildSpecStudy(filepath.Join("..", "..", "examples", "spec_custom.json"), 1, 0); err != nil {
		t.Fatal(err)
	}
}

func TestCmdPlacements(t *testing.T) {
	if err := cmdPlacements([]string{"-tasks", "2"}); err != nil {
		t.Fatal(err)
	}
	if err := cmdPlacements([]string{"-tasks", "0"}); err == nil {
		t.Fatal("zero tasks accepted")
	}
	if err := cmdPlacements([]string{"-tasks", "99"}); err == nil {
		t.Fatal("huge task count accepted")
	}
}

func TestCmdKernels(t *testing.T) {
	if err := cmdKernels([]string{"-size", "16", "-N", "5", "-reps", "10"}); err != nil {
		t.Fatal(err)
	}
}

func TestCmdRace(t *testing.T) {
	if err := cmdRace([]string{"-workload", "tableI", "-n", "2", "-round", "5", "-rounds", "2"}); err != nil {
		t.Fatal(err)
	}
	if err := cmdRace([]string{"-workload", "bogus"}); err == nil {
		t.Fatal("bogus workload accepted")
	}
}
