package main

import (
	"os"
	"path/filepath"
	"testing"
)

func TestBuildStudy(t *testing.T) {
	if _, err := buildStudy("tableI", 5, 10, 20, 1, 0, false); err != nil {
		t.Fatal(err)
	}
	if _, err := buildStudy("fig1", 5, 10, 20, 1, 2, true); err != nil {
		t.Fatal(err)
	}
	if _, err := buildStudy("nope", 5, 10, 20, 1, 0, false); err == nil {
		t.Fatal("unknown workload accepted")
	}
}

func TestCmdMeasureClusterRoundTrip(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "runs.csv")
	if err := cmdMeasure([]string{"-workload", "tableI", "-n", "2", "-N", "5", "-out", out}); err != nil {
		t.Fatal(err)
	}
	info, err := os.Stat(out)
	if err != nil {
		t.Fatal(err)
	}
	if info.Size() == 0 {
		t.Fatal("empty CSV written")
	}
	// Re-cluster the archived measurements (footnote-5 workflow).
	if err := cmdCluster([]string{"-in", out, "-reps", "10"}); err != nil {
		t.Fatal(err)
	}
}

func TestCmdClusterErrors(t *testing.T) {
	if err := cmdCluster([]string{}); err == nil {
		t.Fatal("missing -in accepted")
	}
	if err := cmdCluster([]string{"-in", "/nonexistent/file.csv"}); err == nil {
		t.Fatal("missing file accepted")
	}
}

func TestCmdStudy(t *testing.T) {
	if err := cmdStudy([]string{"-workload", "tableI", "-n", "2", "-N", "5", "-reps", "10"}); err != nil {
		t.Fatal(err)
	}
	if err := cmdStudy([]string{"-workload", "bogus"}); err == nil {
		t.Fatal("bogus workload accepted")
	}
}

func TestCmdPlacements(t *testing.T) {
	if err := cmdPlacements([]string{"-tasks", "2"}); err != nil {
		t.Fatal(err)
	}
	if err := cmdPlacements([]string{"-tasks", "0"}); err == nil {
		t.Fatal("zero tasks accepted")
	}
	if err := cmdPlacements([]string{"-tasks", "99"}); err == nil {
		t.Fatal("huge task count accepted")
	}
}

func TestCmdKernels(t *testing.T) {
	if err := cmdKernels([]string{"-size", "16", "-N", "5", "-reps", "10"}); err != nil {
		t.Fatal(err)
	}
}

func TestCmdRace(t *testing.T) {
	if err := cmdRace([]string{"-workload", "tableI", "-n", "2", "-round", "5", "-rounds", "2"}); err != nil {
		t.Fatal(err)
	}
	if err := cmdRace([]string{"-workload", "bogus"}); err == nil {
		t.Fatal("bogus workload accepted")
	}
}
