package main

// Crash-recovery and failover end-to-end tests of the real binary: a
// daemon self-SIGKILLed mid-suite by an armed faultpoint (clean kill and
// torn-write variants) must, after restart, serve byte-identical results
// for everything it acknowledged; a standby fed by -standby snapshot
// pushes must serve the primary's exact bytes with zero recomputation
// after the primary is SIGKILLed.

import (
	"bytes"
	"encoding/json"
	"errors"
	"net/http"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"relperf/internal/faultpoint"
)

// submitSuite posts the daemonSuite and returns its fingerprints.
func submitSuite(t *testing.T, d *daemon) []string {
	t.Helper()
	resp, err := http.Post("http://"+d.addr+"/v1/suites", "application/json", strings.NewReader(daemonSuite))
	if err != nil {
		t.Fatalf("POST /v1/suites: %v\nlogs:\n%s", err, d.logText())
	}
	defer resp.Body.Close()
	var sr struct {
		Fingerprints []string `json:"fingerprints"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusAccepted || len(sr.Fingerprints) != 3 {
		t.Fatalf("POST /v1/suites: %d %v", resp.StatusCode, sr)
	}
	return sr.Fingerprints
}

// goldenRun computes the suite on a pristine daemon and returns the
// fingerprints with the canonical bytes every later generation must match.
func goldenRun(t *testing.T, bin string) ([]string, map[string][]byte) {
	t.Helper()
	d := startDaemon(t, bin, "-seed", "7", "-workers", "2")
	fps := submitSuite(t, d)
	want := map[string][]byte{}
	for _, fp := range fps {
		code, body := d.get(t, "/v1/studies/"+fp)
		if code != 200 {
			t.Fatalf("golden GET %s: %d %s", fp, code, body)
		}
		want[fp] = body
	}
	d.stop(t)
	return fps, want
}

// waitSIGKILL waits for the daemon process to die and asserts it died by
// SIGKILL — the faultpoint's self-kill, not a clean exit path.
func waitSIGKILL(t *testing.T, d *daemon) {
	t.Helper()
	done := make(chan error, 1)
	go func() { done <- d.cmd.Wait() }()
	select {
	case err := <-done:
		var ee *exec.ExitError
		if !errors.As(err, &ee) {
			t.Fatalf("crashed daemon exit = %v, want an exit error\nlogs:\n%s", err, d.logText())
		}
		if ws, ok := ee.Sys().(syscall.WaitStatus); !ok || !ws.Signaled() || ws.Signal() != syscall.SIGKILL {
			t.Fatalf("crashed daemon status = %v, want death by SIGKILL", ee)
		}
	case <-time.After(30 * time.Second):
		t.Fatalf("armed daemon never crashed; logs:\n%s", d.logText())
	}
}

// TestCrashRecoveryE2E: a daemon with a WAL is killed -9 (by its own
// armed faultpoint) while the suite is mid-flight — after the specs were
// journaled, before the results all landed. The restarted daemon must
// serve every fingerprint byte-identically to an uncrashed run, replaying
// what the WAL held and recomputing the rest from journaled specs.
func TestCrashRecoveryE2E(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs the real daemon binary")
	}
	dir := t.TempDir()
	bin := buildDaemon(t, dir)
	fps, want := goldenRun(t, bin)

	// Crash generation: wal.append.sync fires on its 4th hit — after all
	// three spec appends (hits 1–3, journaled during the POST), at the first
	// result merge. The suite is acknowledged, the results are mid-flight.
	crashDir := t.TempDir()
	walPath := filepath.Join(crashDir, "relperfd.wal")
	snapPath := filepath.Join(crashDir, "relperfd.snapshot.json")
	d1 := startDaemonEnv(t, bin,
		[]string{faultpoint.EnvVar + "=wal.append.sync=crash:4"},
		"-seed", "7", "-workers", "2", "-wal", walPath, "-snapshot", snapPath)
	crashFps := submitSuite(t, d1)
	for i, fp := range crashFps {
		if fp != fps[i] {
			t.Fatalf("crash-run fingerprint %d = %s, golden %s (suite identity drifted)", i, fp, fps[i])
		}
	}
	waitSIGKILL(t, d1)

	// Restart without the faultpoint: recovery replays the journaled specs
	// (and whichever results the crash let through), then every GET must
	// reproduce the golden bytes exactly.
	d2 := startDaemon(t, bin, "-seed", "7", "-workers", "2", "-wal", walPath, "-snapshot", snapPath)
	if _, _, specs := d2.health(t); specs != 3 {
		t.Fatalf("restart recovered %d specs, want 3 (all were acked before the crash)\nlogs:\n%s", specs, d2.logText())
	}
	// The restarted daemon's exposition reports the replay: at least the
	// three journaled spec records came back off the WAL.
	if m := d2.scrapeMetrics(t); m["wal_replayed_records_total"] < 3 {
		t.Fatalf("wal_replayed_records_total = %v after recovery, want >= 3", m["wal_replayed_records_total"])
	}
	for _, fp := range fps {
		code, body := d2.get(t, "/v1/studies/"+fp)
		if code != 200 {
			t.Fatalf("post-crash GET %s: %d %s\nlogs:\n%s", fp, code, body, d2.logText())
		}
		if !bytes.Equal(body, want[fp]) {
			t.Fatalf("study %s served different bytes after crash recovery", fp)
		}
	}
	d2.stop(t)
}

// TestCrashRecoveryTornWriteE2E: the kill lands mid-append — half a frame
// reaches the disk. Recovery must truncate the torn tail loudly and still
// serve everything acknowledged before it, byte-identically.
func TestCrashRecoveryTornWriteE2E(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs the real daemon binary")
	}
	dir := t.TempDir()
	bin := buildDaemon(t, dir)
	fps, want := goldenRun(t, bin)

	crashDir := t.TempDir()
	walPath := filepath.Join(crashDir, "relperfd.wal")
	// wal.append.write fires on its 4th append: all three specs land whole,
	// the first result merge tears — half its frame on disk, then SIGKILL.
	d1 := startDaemonEnv(t, bin,
		[]string{faultpoint.EnvVar + "=wal.append.write=tear:4"},
		"-seed", "7", "-workers", "2", "-wal", walPath)
	submitSuite(t, d1)
	waitSIGKILL(t, d1)

	d2 := startDaemon(t, bin, "-seed", "7", "-workers", "2", "-wal", walPath)
	if _, _, specs := d2.health(t); specs != 3 {
		t.Fatalf("restart recovered %d specs, want 3\nlogs:\n%s", specs, d2.logText())
	}
	for _, fp := range fps {
		code, body := d2.get(t, "/v1/studies/"+fp)
		if code != 200 {
			t.Fatalf("post-tear GET %s: %d %s\nlogs:\n%s", fp, code, body, d2.logText())
		}
		if !bytes.Equal(body, want[fp]) {
			t.Fatalf("study %s served different bytes after torn-tail recovery", fp)
		}
	}
	// The truncation must have been loud — silent data dropping is the one
	// unforgivable recovery behavior — and counted in the exposition.
	if !strings.Contains(d2.logText(), "RECOVERY") {
		t.Fatalf("torn tail was truncated silently; logs:\n%s", d2.logText())
	}
	if m := d2.scrapeMetrics(t); m["wal_truncations_total"] < 1 {
		t.Fatalf("wal_truncations_total = %v after a torn-tail recovery, want >= 1", m["wal_truncations_total"])
	}
	d2.stop(t)
}

// TestStandbyFailoverE2E: a primary pushing compacted snapshots to a
// standby is SIGKILLed; the standby then serves the primary's exact
// result bytes having computed nothing itself.
func TestStandbyFailoverE2E(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs the real daemon binary")
	}
	dir := t.TempDir()
	bin := buildDaemon(t, dir)

	standby := startDaemon(t, bin, "-seed", "7", "-workers", "2")
	primaryDir := t.TempDir()
	primary := startDaemon(t, bin,
		"-seed", "7", "-workers", "2",
		"-wal", filepath.Join(primaryDir, "relperfd.wal"),
		"-snapshot", filepath.Join(primaryDir, "relperfd.snapshot.json"),
		"-snapshot-interval", "150ms",
		"-standby", "http://"+standby.addr)

	fps := submitSuite(t, primary)
	want := map[string][]byte{}
	for _, fp := range fps {
		code, body := primary.get(t, "/v1/studies/"+fp)
		if code != 200 {
			t.Fatalf("primary GET %s: %d %s", fp, code, body)
		}
		want[fp] = body
	}

	// Wait for a compaction cycle to replicate all three results and specs
	// to the standby — without the standby computing a thing.
	deadline := time.Now().Add(30 * time.Second)
	for {
		computes, entries, specs := standby.health(t)
		if computes != 0 {
			t.Fatalf("standby computed %d studies; replication must not recompute", computes)
		}
		if entries == 3 && specs == 3 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("standby never caught up (entries=%d specs=%d)\nprimary logs:\n%s\nstandby logs:\n%s",
				entries, specs, primary.logText(), standby.logText())
		}
		time.Sleep(50 * time.Millisecond)
	}

	// Hard failover: the primary dies without ceremony.
	if err := primary.cmd.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	_ = primary.cmd.Wait()

	for _, fp := range fps {
		code, body := standby.get(t, "/v1/studies/"+fp)
		if code != 200 {
			t.Fatalf("standby GET %s: %d %s\nlogs:\n%s", fp, code, body, standby.logText())
		}
		if !bytes.Equal(body, want[fp]) {
			t.Fatalf("standby serves different bytes for %s after failover", fp)
		}
	}
	if computes, _, _ := standby.health(t); computes != 0 {
		t.Fatalf("standby computes = %d after serving the failed-over suite, want 0", computes)
	}
	standby.stop(t)
}
