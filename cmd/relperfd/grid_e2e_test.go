package main

// Process-level end-to-end test of the grid tier: build the real binary,
// capture a single-node golden, then run 1 coordinator + 2 workers,
// SIGKILL one worker mid-suite, and assert every study the coordinator
// serves is byte-identical to the golden — worker loss costs a retry,
// never a byte. The in-process twin (internal/grid's property tests)
// covers the same contract with deterministic fault injection; this one
// exercises the binary's flag wiring, the real heartbeat loop and a real
// process death.

import (
	"bytes"
	"encoding/json"

	"net/http"
	"strings"
	"syscall"
	"testing"
	"time"
)

// gridE2ESuite is sized so a 2-worker grid chews on it for a couple of
// seconds — long enough that the kill below lands mid-suite.
const gridE2ESuite = `{"studies":[
	{"workload":"tableI","loop_n":2,"measurements":60,"reps":250},
	{"workload":"tableI","loop_n":3,"measurements":60,"reps":250},
	{"workload":"fig1","measurements":60,"reps":250},
	{"workload":"tableI","loop_n":2,"measurements":80,"reps":250}
]}`

// postGridSuite submits the suite and returns the fingerprints.
func postGridSuite(t *testing.T, d *daemon) []string {
	t.Helper()
	resp, err := http.Post("http://"+d.addr+"/v1/suites", "application/json", strings.NewReader(gridE2ESuite))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var sr struct {
		Fingerprints []string `json:"fingerprints"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusAccepted || len(sr.Fingerprints) != 4 {
		t.Fatalf("POST /v1/suites: %d %v", resp.StatusCode, sr.Fingerprints)
	}
	return sr.Fingerprints
}

// gridWorkers reads the coordinator's worker listing.
func gridWorkers(t *testing.T, d *daemon) (workers int, remote, retries, fallbacks uint64) {
	t.Helper()
	code, b := d.get(t, "/v1/grid/workers")
	if code != 200 {
		t.Fatalf("GET /v1/grid/workers: %d %s", code, b)
	}
	var wr struct {
		Workers  []json.RawMessage `json:"workers"`
		Dispatch struct {
			Remote    uint64 `json:"remote"`
			Retries   uint64 `json:"retries"`
			Fallbacks uint64 `json:"fallbacks"`
		} `json:"dispatch"`
	}
	if err := json.Unmarshal(b, &wr); err != nil {
		t.Fatal(err)
	}
	return len(wr.Workers), wr.Dispatch.Remote, wr.Dispatch.Retries, wr.Dispatch.Fallbacks
}

func TestGridE2EKillWorkerMidSuite(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs three real daemon processes")
	}
	dir := t.TempDir()
	bin := buildDaemon(t, dir)

	// Single-node golden: the bytes every grid topology must reproduce.
	single := startDaemon(t, bin, "-seed", "9", "-workers", "2")
	fps := postGridSuite(t, single)
	want := map[string][]byte{}
	for _, fp := range fps {
		code, body := single.get(t, "/v1/studies/"+fp)
		if code != 200 {
			t.Fatalf("golden GET %s: %d %s", fp, code, body)
		}
		want[fp] = body
	}
	single.stop(t)

	// Grid topology: 1 coordinator, 2 workers joined over real heartbeats.
	coord := startDaemon(t, bin, "-seed", "9", "-workers", "2", "-coordinator", "-grid-ttl", "5s")
	w1 := startDaemon(t, bin, "-seed", "9", "-workers", "2", "-join", "http://"+coord.addr)
	startDaemon(t, bin, "-seed", "9", "-workers", "2", "-join", "http://"+coord.addr)

	deadline := time.Now().Add(30 * time.Second)
	for {
		if n, _, _, _ := gridWorkers(t, coord); n == 2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("workers never registered; coordinator logs:\n%s", coord.logText())
		}
		time.Sleep(100 * time.Millisecond)
	}

	// Submit, then kill one worker while the suite is in flight. SIGKILL,
	// not SIGTERM: the worker must vanish without any goodbye.
	fps2 := postGridSuite(t, coord)
	time.Sleep(150 * time.Millisecond)
	if err := w1.cmd.Process.Signal(syscall.SIGKILL); err != nil {
		t.Fatal(err)
	}

	for _, fp := range fps2 {
		code, body := coord.get(t, "/v1/studies/"+fp)
		if code != 200 {
			t.Fatalf("grid GET %s: %d %s\ncoordinator logs:\n%s", fp, code, body, coord.logText())
		}
		if !bytes.Equal(body, want[fp]) {
			t.Fatalf("study %s: grid bytes differ from the single-node golden\ncoordinator logs:\n%s", fp, coord.logText())
		}
	}

	// The grid actually dispatched (this was not a silent all-local run),
	// and every study ended up merged into the coordinator's own store.
	_, remote, retries, fallbacks := gridWorkers(t, coord)
	t.Logf("dispatch after kill: remote=%d retries=%d fallbacks=%d", remote, retries, fallbacks)
	if remote == 0 {
		t.Fatalf("no study ran remotely; coordinator logs:\n%s", coord.logText())
	}
	if _, entries, _ := coord.health(t); entries != len(want) {
		t.Fatalf("coordinator store holds %d results, want %d", entries, len(want))
	}

	// The coordinator's exposition carries the grid series, consistent with
	// the dispatch counters the /v1/grid/workers endpoint just reported.
	m := coord.scrapeMetrics(t)
	if got := m["grid_remote_total"]; got != float64(remote) {
		t.Fatalf("grid_remote_total = %v, want %d", got, remote)
	}
	if got := m["grid_heartbeats_total"]; got < 2 {
		t.Fatalf("grid_heartbeats_total = %v, want >= 2 (two workers joined)", got)
	}
	for _, series := range []string{"grid_workers_live", "grid_attempt_seconds_count", "grid_worker_failures_total", "grid_workers_quarantined", "grid_worker_quarantines_total", "grid_retries_total", "grid_fallbacks_total"} {
		if _, ok := m[series]; !ok {
			t.Fatalf("metrics series %s missing from the coordinator exposition", series)
		}
	}

	// Cross-node trace fan-in: at least one study's merged timeline must
	// carry both halves — the coordinator's dispatch span and the serving
	// worker's engine stage spans, each tagged with its node. Studies whose
	// owner was the killed worker degrade to fetch-failed, and fallback
	// studies have no remote half, so we scan the suite for one that
	// completed on the survivor rather than demanding it of every study.
	merged := false
	for _, fp := range fps2 {
		code, body := coord.get(t, "/v1/trace/"+fp)
		if code != 200 {
			t.Fatalf("GET /v1/trace/%s: %d %s", fp, code, body)
		}
		var tr struct {
			Nodes []string `json:"nodes"`
			Spans []struct {
				Name   string `json:"name"`
				Node   string `json:"node"`
				Worker string `json:"worker"`
			} `json:"spans"`
		}
		if err := json.Unmarshal(body, &tr); err != nil {
			t.Fatal(err)
		}
		var coordDispatch, workerStage bool
		for _, s := range tr.Spans {
			if s.Node == "coordinator" && s.Name == "dispatch-attempt" {
				coordDispatch = true
			}
			if s.Node != "" && s.Node != "coordinator" && strings.HasPrefix(s.Name, "stage:") {
				workerStage = true
			}
		}
		if coordDispatch && workerStage {
			if len(tr.Nodes) < 2 {
				t.Fatalf("trace %s merged both halves but nodes = %v", fp, tr.Nodes)
			}
			merged = true
			break
		}
	}
	if !merged {
		t.Fatalf("no study produced a merged cross-node trace; coordinator logs:\n%s", coord.logText())
	}

	// Federated scrape: one request fans out to every registered worker and
	// comes back with the coordinator's series, per-worker scrape health,
	// and at least one worker-labeled sample from the survivor.
	code, fed := coord.get(t, "/v1/grid/metrics")
	if code != 200 {
		t.Fatalf("GET /v1/grid/metrics: %d", code)
	}
	fedText := string(fed)
	if !strings.Contains(fedText, "grid_scrape_ok{worker=") {
		t.Fatalf("federated exposition has no per-worker scrape health:\n%s", fedText)
	}
	if !strings.Contains(fedText, `fleet_computes_total{worker="`) {
		t.Fatalf("federated exposition has no worker-labeled fleet series:\n%s", fedText)
	}

	// And the fleet summary endpoint answers on the coordinator.
	code, gz := coord.get(t, "/v1/gridz")
	if code != 200 {
		t.Fatalf("GET /v1/gridz: %d %s", code, gz)
	}
	var z struct {
		Workers []struct {
			ID string `json:"id"`
		} `json:"workers"`
	}
	if err := json.Unmarshal(gz, &z); err != nil {
		t.Fatalf("gridz decode: %v\n%s", err, gz)
	}
	if len(z.Workers) == 0 {
		t.Fatalf("gridz reports no workers:\n%s", gz)
	}
	coord.stop(t)
}
