// Command relperfd is the relative-performance serving daemon: it runs
// suites of studies on a shared worker budget, caches results by canonical
// config fingerprint and serves them over HTTP.
//
//	relperfd -addr :8077 -seed 1 -workers 0 \
//	         -snapshot relperfd.snapshot.json -suite examples/suite.json
//
// -pprof addr (off by default) additionally serves net/http/pprof on its
// own listener, kept separate from the serving address so profiling is
// reachable under load and can be firewalled independently.
//
// Endpoints:
//
//	GET  /v1/healthz                  liveness + engine counters
//	POST /v1/suites                   submit a suite, receive fingerprints
//	GET  /v1/studies/{fingerprint}    canonical study result JSON
//
// Determinism contract: for a fixed -seed, a study's response bytes are
// identical whatever the worker budget, whether the result was computed,
// cached or restored from a snapshot, and whichever suite submitted it.
// The snapshot is loaded at startup (if present), rewritten after every
// completed study and on shutdown, so restarts serve warm results.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"sync"
	"syscall"
	"time"

	"relperf/internal/fleet"
)

func main() {
	addr := flag.String("addr", ":8077", "HTTP listen address")
	workers := flag.Int("workers", 0, "global worker budget shared by all studies (0 = GOMAXPROCS)")
	seed := flag.Uint64("seed", 1, "suite seed; equal seeds serve bit-identical results")
	cacheCap := flag.Int("cache", 0, "max cached studies, LRU-evicted (0 = unbounded)")
	snapshotPath := flag.String("snapshot", "", "snapshot file: loaded at startup, rewritten as results land")
	suitePath := flag.String("suite", "", "suite spec JSON to submit at startup (warms the cache)")
	pprofAddr := flag.String("pprof", "", "optional net/http/pprof listen address (e.g. localhost:6060); off when empty")
	flag.Parse()

	if err := run(*addr, *workers, *seed, *cacheCap, *snapshotPath, *suitePath, *pprofAddr); err != nil {
		fmt.Fprintf(os.Stderr, "relperfd: %v\n", err)
		os.Exit(1)
	}
}

// servePprof exposes the runtime profiling handlers on their own listener,
// never on the serving address: profiles stay reachable when the main
// server saturates, and operators can firewall the two ports separately.
// Like the main server, the actual bound address is logged so scripted
// callers can scrape it even with ":0"-style addrs.
func servePprof(addr string) (io.Closer, error) {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("pprof listener: %w", err)
	}
	srv := &http.Server{Handler: mux, ReadHeaderTimeout: 10 * time.Second}
	go func() {
		if err := srv.Serve(ln); err != nil && !errors.Is(err, http.ErrServerClosed) {
			log.Printf("pprof server: %v", err)
		}
	}()
	log.Printf("pprof serving on http://%s/debug/pprof/", ln.Addr())
	return srv, nil
}

func run(addr string, workers int, seed uint64, cacheCap int, snapshotPath, suitePath, pprofAddr string) error {
	if pprofAddr != "" {
		srv, err := servePprof(pprofAddr)
		if err != nil {
			return err
		}
		defer srv.Close()
	}
	store := fleet.NewStore(cacheCap)
	if snapshotPath != "" {
		if f, err := os.Open(snapshotPath); err == nil {
			n, err := store.LoadSnapshot(f, seed)
			f.Close()
			if err != nil {
				return fmt.Errorf("loading snapshot %s: %w", snapshotPath, err)
			}
			log.Printf("restored %d cached studies from %s", n, snapshotPath)
		} else if !errors.Is(err, os.ErrNotExist) {
			return err
		}
	}

	sched := fleet.New(fleet.Options{Workers: workers, Seed: seed, Store: store})
	defer sched.Close()

	// Persist the store as studies land so a crash loses at most the work
	// in flight; writes are serialized and atomic (write + rename).
	var persist func(reason string)
	if snapshotPath != "" {
		var mu sync.Mutex
		persist = func(reason string) {
			mu.Lock()
			defer mu.Unlock()
			if err := writeSnapshotAtomic(store, snapshotPath, seed); err != nil {
				log.Printf("snapshot (%s): %v", reason, err)
			}
		}
		events, cancel := sched.Subscribe(64)
		defer cancel()
		go func() {
			for ev := range events {
				if ev.Err != nil {
					log.Printf("study %s failed: %v", ev.Fingerprint, ev.Err)
					continue
				}
				log.Printf("study %s completed", ev.Fingerprint)
				persist("study completed")
			}
		}()
	}

	if suitePath != "" {
		f, err := os.Open(suitePath)
		if err != nil {
			return err
		}
		req, err := fleet.DecodeSuiteRequest(f)
		f.Close()
		if err != nil {
			return err
		}
		// SubmitSpecs retains each spec in the store, so the startup suite
		// is recomputable from the snapshot after future restarts.
		fps, err := sched.SubmitSpecs(req.Studies)
		if err != nil {
			return err
		}
		log.Printf("submitted startup suite %s: %d studies", suitePath, len(fps))
		for _, fp := range fps {
			log.Printf("  /v1/studies/%s", fp)
		}
	}

	httpSrv := &http.Server{
		Handler:           fleet.NewServer(sched),
		ReadHeaderTimeout: 10 * time.Second,
	}
	// Listen explicitly so the actual bound address is known (and logged)
	// even with ":0"-style addrs — scripted callers and the e2e test scrape
	// it from the log line.
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.Serve(ln) }()
	log.Printf("relperfd serving on %s (seed=%d workers=%d cache=%d)", ln.Addr(), seed, workers, cacheCap)

	select {
	case err := <-errCh:
		return err
	case <-ctx.Done():
	}
	log.Printf("shutting down")
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	_ = httpSrv.Shutdown(shutdownCtx)
	sched.Close()
	if persist != nil {
		persist("shutdown")
	}
	return nil
}

// writeSnapshotAtomic writes the snapshot beside the target and renames it
// into place, so a crash mid-write can never truncate the previous one.
func writeSnapshotAtomic(store *fleet.Store, path string, seed uint64) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if err := store.WriteSnapshot(f, seed); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	return os.Rename(tmp, path)
}
