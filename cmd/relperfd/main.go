// Command relperfd is the relative-performance serving daemon: it runs
// suites of studies on a shared worker budget, caches results by canonical
// config fingerprint and serves them over HTTP.
//
//	relperfd -addr :8077 -seed 1 -workers 0 \
//	         -snapshot relperfd.snapshot.json -suite examples/suite.json
//
// -pprof addr (off by default) additionally serves net/http/pprof on its
// own listener, kept separate from the serving address so profiling is
// reachable under load and can be firewalled independently.
//
// Endpoints:
//
//	GET  /v1/healthz                  liveness + engine counters
//	POST /v1/suites                   submit a suite, receive fingerprints
//	GET  /v1/studies                  paginated fingerprint index
//	GET  /v1/studies/{fingerprint}    canonical study result JSON
//	                                  (?wait=stream serves SSE events;
//	                                  ETag/If-None-Match revalidation)
//	GET  /v1/studies/{fp}/summary     per-algorithm quantile summary
//	GET  /v1/trace/{fingerprint}      study timeline (on a coordinator:
//	                                  merged coordinator + worker spans)
//	POST /v1/replica/snapshot         absorb a pushed snapshot (standby)
//	POST /v1/grid/workers             worker heartbeat   (-coordinator)
//	GET  /v1/grid/workers             worker + dispatch state (-coordinator)
//	GET  /v1/grid/tasks               dispatch journal (-coordinator;
//	                                  WAL-backed journals survive restarts)
//	GET  /v1/grid/metrics             federated exposition: coordinator +
//	                                  workers, worker="<id>"-labeled
//	GET  /v1/gridz                    fleet summary JSON (-coordinator)
//
// Grid modes: -coordinator shards submitted suites across workers that
// join with -join <coordinator-url>; workers are ordinary daemons started
// with the same -seed. -max-study-cost bounds the admission-control cost
// estimate of any single study (HTTP 429 above it).
//
// Determinism contract: for a fixed -seed, a study's response bytes are
// identical whatever the worker budget, whether the result was computed,
// cached or restored from a snapshot, whichever suite submitted it — and,
// in grid mode, whichever worker computed it, at any worker count, across
// worker deaths, retries and local fallback.
//
// Durability: without -wal, the snapshot is loaded at startup and
// rewritten after every completed study and on shutdown (a crash loses
// the work in flight). With -wal, every control-plane event — spec
// retained, result merged, task dispatched — is appended to a
// checksummed, fsync'd write-ahead log before it is acked, so a `kill -9`
// at any instant loses nothing acknowledged; startup replays the log on
// top of the last snapshot (truncating a torn tail loudly), and
// -snapshot-interval compacts periodically (snapshot + WAL truncate)
// instead of rewriting the store per study. -standby pushes each
// compacted snapshot to standby daemons over POST /v1/replica/snapshot,
// so a promoted standby serves warm, byte-identical results with zero
// recomputation.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"runtime"
	"strings"
	"sync"
	"syscall"
	"time"

	"relperf/internal/faultpoint"
	"relperf/internal/fleet"
	"relperf/internal/grid"
	"relperf/internal/obs"
	"relperf/internal/wal"
)

// options collects the daemon's flag values.
type options struct {
	addr             string
	workers          int
	seed             uint64
	cacheCap         int
	snapshotPath     string
	suitePath        string
	pprofAddr        string
	maxStudyCost     int64
	coordinator      bool
	joinURL          string
	advertiseURL     string
	gridTTL          time.Duration
	gridReqTimeout   time.Duration
	gridHBTimeout    time.Duration
	replicaTimeout   time.Duration
	shutdownTimeout  time.Duration
	walPath          string
	snapshotInterval time.Duration
	standbys         string
	logFormat        string
	mutexFraction    int
	blockRate        int
	traceStudies     int
	traceSpans       int
	scrapeTimeout    time.Duration
}

func main() {
	var o options
	flag.StringVar(&o.addr, "addr", ":8077", "HTTP listen address")
	flag.IntVar(&o.workers, "workers", 0, "global worker budget shared by all studies (0 = GOMAXPROCS)")
	flag.Uint64Var(&o.seed, "seed", 1, "suite seed; equal seeds serve bit-identical results")
	flag.IntVar(&o.cacheCap, "cache", 0, "max cached studies, LRU-evicted (0 = unbounded)")
	flag.StringVar(&o.snapshotPath, "snapshot", "", "snapshot file: loaded at startup, rewritten as results land")
	flag.StringVar(&o.suitePath, "suite", "", "suite spec JSON to submit at startup (warms the cache)")
	flag.StringVar(&o.pprofAddr, "pprof", "", "optional net/http/pprof listen address (e.g. localhost:6060); off when empty")
	flag.Int64Var(&o.maxStudyCost, "max-study-cost", 0, "admission bound on a study's estimated cost (placements × measurements × reps); 0 = unbounded")
	flag.BoolVar(&o.coordinator, "coordinator", false, "serve as a grid coordinator: register workers on /v1/grid/workers and shard suites across them")
	flag.StringVar(&o.joinURL, "join", "", "coordinator base URL to join as a grid worker (e.g. http://coord:8077)")
	flag.StringVar(&o.advertiseURL, "advertise", "", "base URL this worker advertises to the coordinator (default http://<bound address>)")
	flag.DurationVar(&o.gridTTL, "grid-ttl", 0, "coordinator: expire workers silent for this long (default 15s)")
	flag.DurationVar(&o.gridReqTimeout, "grid-request-timeout", 0, "coordinator: cap one remote dispatch attempt end to end; a paused or wedged worker fails over after this long (default 10m)")
	flag.DurationVar(&o.gridHBTimeout, "grid-heartbeat-timeout", grid.DefaultHeartbeatTimeout, "worker: cap one heartbeat request to the coordinator")
	flag.DurationVar(&o.replicaTimeout, "replica-timeout", 0, "cap one snapshot push to a standby (0 = no timeout)")
	flag.DurationVar(&o.shutdownTimeout, "shutdown-timeout", 5*time.Second, "max wait for in-flight requests at shutdown before closing their connections")
	flag.StringVar(&o.walPath, "wal", "", "write-ahead log file: control-plane events are fsync'd here before being acked, and replayed over the snapshot at startup")
	flag.DurationVar(&o.snapshotInterval, "snapshot-interval", 0, "compact periodically: write the snapshot and truncate the WAL every interval (0 = legacy rewrite-per-study without -wal, compact only at shutdown with it)")
	flag.StringVar(&o.standbys, "standby", "", "comma-separated standby base URLs; each compacted snapshot is pushed to their POST /v1/replica/snapshot")
	flag.StringVar(&o.logFormat, "log-format", "text", "structured log format: text or json")
	flag.IntVar(&o.mutexFraction, "mutex-profile-fraction", 0, "with -pprof: runtime.SetMutexProfileFraction rate — sample 1/n mutex contention events (0 = off)")
	flag.IntVar(&o.blockRate, "block-profile-rate", 0, "with -pprof: runtime.SetBlockProfileRate threshold in ns — sample goroutine blocking events (0 = off)")
	flag.IntVar(&o.traceStudies, "trace-studies", 0, "max study timelines the tracer retains, LRU-evicted (0 = default 256)")
	flag.IntVar(&o.traceSpans, "trace-spans", 0, "max spans per study timeline, later spans dropped (0 = default 64)")
	flag.DurationVar(&o.scrapeTimeout, "grid-scrape-timeout", 0, "coordinator: cap one federated metrics scrape or trace fetch of one worker (default 2s)")
	flag.Parse()

	if err := run(o); err != nil {
		fmt.Fprintf(os.Stderr, "relperfd: %v\n", err)
		os.Exit(1)
	}
}

// newLogger builds the daemon's structured logger. The default text
// handler keeps log lines greppable (the e2e harness and ops scripts
// scrape "serving on" and the WAL's RECOVERY marker); json emits one
// object per line for log pipelines.
func newLogger(format string) (*slog.Logger, error) {
	var h slog.Handler
	switch format {
	case "text":
		h = slog.NewTextHandler(os.Stderr, nil)
	case "json":
		h = slog.NewJSONHandler(os.Stderr, nil)
	default:
		return nil, fmt.Errorf("-log-format %q: want text or json", format)
	}
	return slog.New(h), nil
}

// logfFor adapts logger to the printf-style diagnostic callbacks the
// library layers take (wal.Open, grid.Config.Logf, fleet.Replicator):
// the formatted line becomes the message of an Info record, so library
// diagnostics land in the same structured stream as the daemon's own.
func logfFor(logger *slog.Logger) func(format string, args ...any) {
	return func(format string, args ...any) {
		logger.Info(fmt.Sprintf(format, args...))
	}
}

// servePprof exposes the runtime profiling handlers on their own listener,
// never on the serving address: profiles stay reachable when the main
// server saturates, and operators can firewall the two ports separately.
// Like the main server, the actual bound address is logged so scripted
// callers can scrape it even with ":0"-style addrs.
func servePprof(addr string, logger *slog.Logger) (io.Closer, error) {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("pprof listener: %w", err)
	}
	srv := &http.Server{Handler: mux, ReadHeaderTimeout: 10 * time.Second}
	go func() {
		if err := srv.Serve(ln); err != nil && !errors.Is(err, http.ErrServerClosed) {
			logger.Error("pprof server failed", "err", err)
		}
	}()
	logger.Info(fmt.Sprintf("pprof serving on http://%s/debug/pprof/", ln.Addr()))
	return srv, nil
}

func run(o options) error {
	if o.coordinator && o.joinURL != "" {
		return errors.New("-coordinator and -join are mutually exclusive (a node is either the coordinator or a worker)")
	}
	logger, err := newLogger(o.logFormat)
	if err != nil {
		return err
	}
	slog.SetDefault(logger)
	logf := logfFor(logger)
	// Fault injection is armed first: a point named in the environment must
	// already be live when the WAL below takes its first write.
	if err := faultpoint.ArmFromEnv(os.Getenv(faultpoint.EnvVar), logf); err != nil {
		return err
	}
	// The first faultpoint is startup itself: arming daemon.start makes the
	// process die (or error out) before it serves anything — the lever the
	// chaos harness and the supervisor crash-loop test pull to simulate a
	// child that can never come up. Each restarted child re-arms from the
	// inherited environment, so "error" (without a hit count) dooms every
	// start until the supervisor declares a crash loop.
	if err := faultpoint.Hit("daemon.start"); err != nil {
		return fmt.Errorf("daemon.start: %w", err)
	}
	// Mutex/block profiling rates are global runtime knobs; setting them
	// without the pprof listener would pay the sampling cost with no way
	// to read the profile, so they require -pprof.
	if (o.mutexFraction > 0 || o.blockRate > 0) && o.pprofAddr == "" {
		return errors.New("-mutex-profile-fraction and -block-profile-rate need -pprof to serve the profiles they enable")
	}
	if o.pprofAddr != "" {
		if o.mutexFraction > 0 {
			runtime.SetMutexProfileFraction(o.mutexFraction)
			logger.Info("mutex profiling enabled", "fraction", o.mutexFraction)
		}
		if o.blockRate > 0 {
			runtime.SetBlockProfileRate(o.blockRate)
			logger.Info("block profiling enabled", "rate_ns", o.blockRate)
		}
		srv, err := servePprof(o.pprofAddr, logger)
		if err != nil {
			return err
		}
		defer srv.Close()
	}

	// One Obs shared by every layer — scheduler, store, WAL, grid — so
	// GET /v1/metrics serves a single unified exposition and
	// GET /v1/trace/{fp} sees a study's whole lifecycle across layers.
	// The tracer bounds come from -trace-studies/-trace-spans (zero keeps
	// the package defaults).
	obsv := &obs.Obs{Registry: obs.NewRegistry(), Tracer: obs.NewTracer(o.traceStudies, o.traceSpans)}

	// Durable state is recovered in layers: the snapshot is the compacted
	// base, the WAL is the fsync'd tail on top of it. The WAL opens first
	// (it validates its seed header and truncates any torn tail), but its
	// records replay only after the snapshot loads — replay order is what
	// makes "snapshot then Reset" compaction crash-safe, since replaying a
	// record the snapshot already holds is an idempotent no-op merge.
	var walLog *wal.Log
	var walRecs []wal.Record
	if o.walPath != "" {
		var err error
		walLog, walRecs, err = wal.Open(o.walPath, o.seed, logf)
		if err != nil {
			return fmt.Errorf("opening wal %s: %w", o.walPath, err)
		}
		defer walLog.Close()
		if o.snapshotInterval == 0 {
			// Recovery streams the log, so an unbounded one is slow, not
			// fatal — but it is still unbounded disk; say so once.
			logger.Warn(fmt.Sprintf("wal: no -snapshot-interval, so %s compacts only at shutdown and grows for as long as the daemon runs; pair -wal with -snapshot-interval to bound it", o.walPath))
		}
	}
	store := fleet.NewStore(o.cacheCap)
	if o.snapshotPath != "" {
		if f, err := os.Open(o.snapshotPath); err == nil {
			n, err := store.LoadSnapshot(f, o.seed)
			f.Close()
			if err != nil {
				return fmt.Errorf("loading snapshot %s: %w", o.snapshotPath, err)
			}
			logger.Info("restored snapshot", "studies", n, "path", o.snapshotPath)
		} else if !errors.Is(err, os.ErrNotExist) {
			return err
		}
	}
	var taskRecs []wal.Record
	if walLog != nil {
		counts, tasks, err := fleet.ReplayWAL(store, o.seed, walRecs)
		if err != nil {
			return fmt.Errorf("replaying wal %s: %w", o.walPath, err)
		}
		taskRecs = tasks
		if counts.Specs+counts.Results+counts.Tasks > 0 {
			logger.Info("replayed wal", "path", o.walPath, "specs", counts.Specs, "results", counts.Results, "tasks", counts.Tasks)
		}
	}

	// Coordinator mode: studies are offered to the grid dispatcher before
	// local execution, and the /v1/grid/* endpoints join the mux below.
	var coord *grid.Coordinator
	opts := fleet.Options{Workers: o.workers, Seed: o.seed, Store: store, Obs: obsv}
	if o.coordinator {
		coord = grid.New(grid.Config{Seed: o.seed, TTL: o.gridTTL, RequestTimeout: o.gridReqTimeout, ScrapeTimeout: o.scrapeTimeout, Logf: logf, Journal: walLog, Obs: obsv})
		if n := coord.RestoreJournal(taskRecs); n > 0 {
			logger.Info("restored dispatch journal from wal", "entries", n)
		}
		opts.Dispatch = coord.Dispatch
	}
	// Only now does the store start journaling (and the WAL its metrics):
	// attached after replay, so recovered records are never appended back
	// into the log they came from, and replay work is counted as recovery
	// rather than as live appends.
	store.SetWAL(walLog)
	if walLog != nil {
		walLog.SetMetrics(wal.NewMetrics(obsv.Registry))
	}
	sched := fleet.New(opts)
	defer sched.Close()

	var standbyURLs []string
	if o.standbys != "" {
		for _, u := range strings.Split(o.standbys, ",") {
			if u = strings.TrimSpace(u); u != "" {
				standbyURLs = append(standbyURLs, u)
			}
		}
	}
	replicator := &fleet.Replicator{URLs: standbyURLs, Logf: logf}
	if o.replicaTimeout > 0 {
		replicator.Client = &http.Client{Timeout: o.replicaTimeout}
	}

	// checkpoint compacts the durable state: the snapshot bytes and a WAL
	// cut point are captured atomically with respect to journaled
	// mutations (Store.SnapshotCut), the snapshot is written atomically,
	// and only then is the WAL compacted to the cut — a result acked
	// between the capture and the compaction sits above the cut and
	// survives in the log, so compaction can never silently drop an
	// acknowledged write the snapshot missed. Then the snapshot is pushed
	// to the standbys. Serialized: overlapping checkpoints would race the
	// snapshot-write/WAL-compact ordering that makes this crash-safe.
	var checkpointMu sync.Mutex
	checkpoint := func(reason string) {
		checkpointMu.Lock()
		defer checkpointMu.Unlock()
		if o.snapshotPath != "" {
			data, cut, err := store.SnapshotCut(o.seed)
			if err != nil {
				logger.Error("snapshot failed", "reason", reason, "err", err)
				return
			}
			if err := fleet.WriteSnapshotBytesAtomic(data, o.snapshotPath); err != nil {
				logger.Error("snapshot failed", "reason", reason, "err", err)
				return // the WAL still holds the tail; never compact it now
			}
			if walLog != nil {
				if err := walLog.CompactTo(cut, o.seed); err != nil {
					logger.Error("wal compaction failed", "reason", reason, "err", err)
				}
			}
		}
		if err := replicator.Push(context.Background(), store, o.seed); err != nil {
			logger.Error("replication failed", "reason", reason, "err", err)
		}
	}

	// Persistence cadence. With -wal the log already makes every completed
	// study durable, so the legacy rewrite-per-study is wasted I/O and the
	// snapshot becomes a compaction artifact (periodic via
	// -snapshot-interval, always at shutdown). Without -wal the per-study
	// rewrite IS the durability story, as before.
	perStudyPersist := o.snapshotPath != "" && o.walPath == "" && o.snapshotInterval == 0
	if o.snapshotPath != "" || o.walPath != "" {
		// 256, not 64: every study costs two buffer slots (computing + done
		// phase events), and a dropped done event here would mean a
		// completion that never gets logged or snapshotted.
		events, _ := sched.Subscribe(256)
		go func() {
			for {
				for ev := range events {
					if ev.Phase != fleet.PhaseDone {
						continue
					}
					if ev.Err != nil {
						logger.Warn("study failed", "fp", ev.Fingerprint, "err", ev.Err)
						continue
					}
					logger.Info("study completed", "fp", ev.Fingerprint)
					if perStudyPersist {
						checkpoint("study completed")
					}
				}
				// The scheduler drops subscribers that fall behind (closing
				// their channel). For this one — the persistence trigger —
				// a silent death would stop per-study snapshots, so come
				// back loudly. Durability is unaffected either way: WAL
				// appends happen on the compute path, not here.
				logger.Warn("persistence subscriber fell behind and was dropped; resubscribing")
				events, _ = sched.Subscribe(256)
			}
		}()
	}

	if o.suitePath != "" {
		f, err := os.Open(o.suitePath)
		if err != nil {
			return err
		}
		req, err := fleet.DecodeSuiteRequest(f)
		f.Close()
		if err != nil {
			return err
		}
		// SubmitSpecs retains each spec in the store, so the startup suite
		// is recomputable from the snapshot after future restarts.
		fps, err := sched.SubmitSpecs(req.Studies)
		if err != nil {
			return err
		}
		logger.Info("submitted startup suite", "path", o.suitePath, "studies", len(fps))
		for _, fp := range fps {
			logger.Info("study submitted", "url", "/v1/studies/"+fp)
		}
	}

	var serverOpts []fleet.ServerOption
	if o.maxStudyCost > 0 {
		serverOpts = append(serverOpts, fleet.WithMaxStudyCost(o.maxStudyCost))
	}
	if coord != nil {
		// Cross-node trace fan-in: GET /v1/trace/{fp} on the coordinator
		// merges its dispatch/retry spans with the owning worker's timeline,
		// each span tagged with the node it came from.
		serverOpts = append(serverOpts, fleet.WithTraceFanIn("coordinator", coord.WorkerTrace))
	}
	apiSrv := fleet.NewServer(sched, serverOpts...)
	handler := http.Handler(apiSrv)
	if coord != nil {
		// The grid endpoints share the serving address: workers register
		// against the same URL clients submit suites to. /v1/gridz is the
		// fleet-summary endpoint; it lives outside the /v1/grid/ prefix, so
		// it gets its own mount.
		mux := http.NewServeMux()
		gridHandler := coord.Handler()
		mux.Handle("/v1/grid/", gridHandler)
		mux.Handle("/v1/gridz", gridHandler)
		mux.Handle("/", handler)
		handler = mux
	}
	httpSrv := &http.Server{
		Handler:           handler,
		ReadHeaderTimeout: 10 * time.Second,
	}
	// Listen explicitly so the actual bound address is known (and logged)
	// even with ":0"-style addrs — scripted callers and the e2e test scrape
	// it from the log line.
	ln, err := net.Listen("tcp", o.addr)
	if err != nil {
		return err
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	// Periodic compaction: snapshot + WAL truncate + standby push on a
	// timer, instead of a store rewrite per completed study.
	if o.snapshotInterval > 0 {
		go func() {
			ticker := time.NewTicker(o.snapshotInterval)
			defer ticker.Stop()
			for {
				select {
				case <-ctx.Done():
					return
				case <-ticker.C:
					checkpoint("interval")
				}
			}
		}()
	}
	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.Serve(ln) }()
	mode := "single-node"
	if o.coordinator {
		mode = "coordinator"
	} else if o.joinURL != "" {
		mode = "worker"
	}
	// One message, not split attrs: tooling (and the e2e harness) scrapes
	// "serving on <addr>" out of the log line to find the bound port.
	logger.Info(fmt.Sprintf("relperfd serving on %s (seed=%d workers=%d cache=%d mode=%s)", ln.Addr(), o.seed, o.workers, o.cacheCap, mode))

	// Worker mode: announce this daemon to the coordinator and keep the
	// lease fresh until shutdown.
	if o.joinURL != "" {
		advertise := o.advertiseURL
		if advertise == "" {
			// A wildcard bind (":8078", "0.0.0.0:...") has no host the
			// coordinator could dial back; advertising it would register a
			// worker that resolves to the coordinator's own machine and
			// silently fail every dispatch. Refuse loudly instead.
			tcp, ok := ln.Addr().(*net.TCPAddr)
			if !ok || tcp.IP.IsUnspecified() {
				httpSrv.Close()
				return fmt.Errorf("-join with a wildcard -addr (%s) needs -advertise http://<reachable-host:port> so the coordinator can dial back", ln.Addr())
			}
			advertise = "http://" + ln.Addr().String()
		}
		// Epoch stamps this process incarnation: a supervised worker that
		// crashed and restarted heartbeats with a fresh epoch, which tells
		// the coordinator to clear the old incarnation's failure history and
		// requalify the worker immediately instead of holding it quarantined.
		info := grid.WorkerInfo{ID: advertise, URL: advertise, Capacity: sched.Workers(), Seed: o.seed, Epoch: uint64(time.Now().UnixNano())}
		// Each heartbeat piggybacks a fresh stats digest (inflight, store
		// occupancy, serve p99), giving the coordinator a last-known view of
		// this worker that survives the worker becoming unreachable. The
		// serve histogram is the study-GET route's — registering the same
		// name and labels returns the server's own instrument.
		serveHist := obsv.Registry.Histogram("http_request_seconds", "HTTP request latency by route.", nil, obs.L("route", "GET /v1/studies/{fingerprint}"))
		hbInfo := func() grid.WorkerInfo {
			i := info
			i.Digest = &grid.HeartbeatDigest{
				Inflight:     sched.Inflight(),
				StoreEntries: sched.Store().Stats().Entries,
				Computes:     sched.Computes(),
				ServeP99Ms:   serveHist.Quantile(0.99) * 1000,
			}
			return i
		}
		hbClient := &http.Client{Timeout: o.gridHBTimeout}
		go grid.RunHeartbeatsFunc(ctx, hbClient, o.joinURL, hbInfo, 0, logf)
	}

	select {
	case err := <-errCh:
		return err
	case <-ctx.Done():
	}
	logger.Info("shutting down")
	// Streams first: an SSE subscriber parked on a slow study would pin
	// Shutdown until the deadline guillotined it mid-stream; draining sends
	// each one a terminal "shutdown" event instead.
	apiSrv.DrainStreams()
	shutdownCtx, cancel := context.WithTimeout(context.Background(), o.shutdownTimeout)
	defer cancel()
	_ = httpSrv.Shutdown(shutdownCtx)
	sched.Close()
	if o.snapshotPath != "" || len(standbyURLs) > 0 {
		checkpoint("shutdown")
	}
	return nil
}
