// Command relperfd is the relative-performance serving daemon: it runs
// suites of studies on a shared worker budget, caches results by canonical
// config fingerprint and serves them over HTTP.
//
//	relperfd -addr :8077 -seed 1 -workers 0 \
//	         -snapshot relperfd.snapshot.json -suite examples/suite.json
//
// -pprof addr (off by default) additionally serves net/http/pprof on its
// own listener, kept separate from the serving address so profiling is
// reachable under load and can be firewalled independently.
//
// Endpoints:
//
//	GET  /v1/healthz                  liveness + engine counters
//	POST /v1/suites                   submit a suite, receive fingerprints
//	GET  /v1/studies                  paginated fingerprint index
//	GET  /v1/studies/{fingerprint}    canonical study result JSON
//	                                  (?wait=stream serves SSE events)
//	POST /v1/replica/snapshot         absorb a pushed snapshot (standby)
//	POST /v1/grid/workers             worker heartbeat   (-coordinator)
//	GET  /v1/grid/workers             worker + dispatch state (-coordinator)
//	GET  /v1/grid/tasks               dispatch journal (-coordinator;
//	                                  WAL-backed journals survive restarts)
//
// Grid modes: -coordinator shards submitted suites across workers that
// join with -join <coordinator-url>; workers are ordinary daemons started
// with the same -seed. -max-study-cost bounds the admission-control cost
// estimate of any single study (HTTP 429 above it).
//
// Determinism contract: for a fixed -seed, a study's response bytes are
// identical whatever the worker budget, whether the result was computed,
// cached or restored from a snapshot, whichever suite submitted it — and,
// in grid mode, whichever worker computed it, at any worker count, across
// worker deaths, retries and local fallback.
//
// Durability: without -wal, the snapshot is loaded at startup and
// rewritten after every completed study and on shutdown (a crash loses
// the work in flight). With -wal, every control-plane event — spec
// retained, result merged, task dispatched — is appended to a
// checksummed, fsync'd write-ahead log before it is acked, so a `kill -9`
// at any instant loses nothing acknowledged; startup replays the log on
// top of the last snapshot (truncating a torn tail loudly), and
// -snapshot-interval compacts periodically (snapshot + WAL truncate)
// instead of rewriting the store per study. -standby pushes each
// compacted snapshot to standby daemons over POST /v1/replica/snapshot,
// so a promoted standby serves warm, byte-identical results with zero
// recomputation.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"sync"
	"syscall"
	"time"

	"relperf/internal/faultpoint"
	"relperf/internal/fleet"
	"relperf/internal/grid"
	"relperf/internal/wal"
)

// options collects the daemon's flag values.
type options struct {
	addr             string
	workers          int
	seed             uint64
	cacheCap         int
	snapshotPath     string
	suitePath        string
	pprofAddr        string
	maxStudyCost     int64
	coordinator      bool
	joinURL          string
	advertiseURL     string
	gridTTL          time.Duration
	walPath          string
	snapshotInterval time.Duration
	standbys         string
}

func main() {
	var o options
	flag.StringVar(&o.addr, "addr", ":8077", "HTTP listen address")
	flag.IntVar(&o.workers, "workers", 0, "global worker budget shared by all studies (0 = GOMAXPROCS)")
	flag.Uint64Var(&o.seed, "seed", 1, "suite seed; equal seeds serve bit-identical results")
	flag.IntVar(&o.cacheCap, "cache", 0, "max cached studies, LRU-evicted (0 = unbounded)")
	flag.StringVar(&o.snapshotPath, "snapshot", "", "snapshot file: loaded at startup, rewritten as results land")
	flag.StringVar(&o.suitePath, "suite", "", "suite spec JSON to submit at startup (warms the cache)")
	flag.StringVar(&o.pprofAddr, "pprof", "", "optional net/http/pprof listen address (e.g. localhost:6060); off when empty")
	flag.Int64Var(&o.maxStudyCost, "max-study-cost", 0, "admission bound on a study's estimated cost (placements × measurements × reps); 0 = unbounded")
	flag.BoolVar(&o.coordinator, "coordinator", false, "serve as a grid coordinator: register workers on /v1/grid/workers and shard suites across them")
	flag.StringVar(&o.joinURL, "join", "", "coordinator base URL to join as a grid worker (e.g. http://coord:8077)")
	flag.StringVar(&o.advertiseURL, "advertise", "", "base URL this worker advertises to the coordinator (default http://<bound address>)")
	flag.DurationVar(&o.gridTTL, "grid-ttl", 0, "coordinator: expire workers silent for this long (default 15s)")
	flag.StringVar(&o.walPath, "wal", "", "write-ahead log file: control-plane events are fsync'd here before being acked, and replayed over the snapshot at startup")
	flag.DurationVar(&o.snapshotInterval, "snapshot-interval", 0, "compact periodically: write the snapshot and truncate the WAL every interval (0 = legacy rewrite-per-study without -wal, compact only at shutdown with it)")
	flag.StringVar(&o.standbys, "standby", "", "comma-separated standby base URLs; each compacted snapshot is pushed to their POST /v1/replica/snapshot")
	flag.Parse()

	if err := run(o); err != nil {
		fmt.Fprintf(os.Stderr, "relperfd: %v\n", err)
		os.Exit(1)
	}
}

// servePprof exposes the runtime profiling handlers on their own listener,
// never on the serving address: profiles stay reachable when the main
// server saturates, and operators can firewall the two ports separately.
// Like the main server, the actual bound address is logged so scripted
// callers can scrape it even with ":0"-style addrs.
func servePprof(addr string) (io.Closer, error) {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("pprof listener: %w", err)
	}
	srv := &http.Server{Handler: mux, ReadHeaderTimeout: 10 * time.Second}
	go func() {
		if err := srv.Serve(ln); err != nil && !errors.Is(err, http.ErrServerClosed) {
			log.Printf("pprof server: %v", err)
		}
	}()
	log.Printf("pprof serving on http://%s/debug/pprof/", ln.Addr())
	return srv, nil
}

func run(o options) error {
	if o.coordinator && o.joinURL != "" {
		return errors.New("-coordinator and -join are mutually exclusive (a node is either the coordinator or a worker)")
	}
	// Fault injection is armed first: a point named in the environment must
	// already be live when the WAL below takes its first write.
	if err := faultpoint.ArmFromEnv(os.Getenv(faultpoint.EnvVar), log.Printf); err != nil {
		return err
	}
	if o.pprofAddr != "" {
		srv, err := servePprof(o.pprofAddr)
		if err != nil {
			return err
		}
		defer srv.Close()
	}

	// Durable state is recovered in layers: the snapshot is the compacted
	// base, the WAL is the fsync'd tail on top of it. The WAL opens first
	// (it validates its seed header and truncates any torn tail), but its
	// records replay only after the snapshot loads — replay order is what
	// makes "snapshot then Reset" compaction crash-safe, since replaying a
	// record the snapshot already holds is an idempotent no-op merge.
	var walLog *wal.Log
	var walRecs []wal.Record
	if o.walPath != "" {
		var err error
		walLog, walRecs, err = wal.Open(o.walPath, o.seed, log.Printf)
		if err != nil {
			return fmt.Errorf("opening wal %s: %w", o.walPath, err)
		}
		defer walLog.Close()
		if o.snapshotInterval == 0 {
			// Recovery streams the log, so an unbounded one is slow, not
			// fatal — but it is still unbounded disk; say so once.
			log.Printf("wal: no -snapshot-interval, so %s compacts only at shutdown and grows for as long as the daemon runs; pair -wal with -snapshot-interval to bound it", o.walPath)
		}
	}
	store := fleet.NewStore(o.cacheCap)
	if o.snapshotPath != "" {
		if f, err := os.Open(o.snapshotPath); err == nil {
			n, err := store.LoadSnapshot(f, o.seed)
			f.Close()
			if err != nil {
				return fmt.Errorf("loading snapshot %s: %w", o.snapshotPath, err)
			}
			log.Printf("restored %d cached studies from %s", n, o.snapshotPath)
		} else if !errors.Is(err, os.ErrNotExist) {
			return err
		}
	}
	var taskRecs []wal.Record
	if walLog != nil {
		counts, tasks, err := fleet.ReplayWAL(store, o.seed, walRecs)
		if err != nil {
			return fmt.Errorf("replaying wal %s: %w", o.walPath, err)
		}
		taskRecs = tasks
		if counts.Specs+counts.Results+counts.Tasks > 0 {
			log.Printf("replayed wal %s: %d specs, %d results, %d task records", o.walPath, counts.Specs, counts.Results, counts.Tasks)
		}
	}

	// Coordinator mode: studies are offered to the grid dispatcher before
	// local execution, and the /v1/grid/* endpoints join the mux below.
	var coord *grid.Coordinator
	opts := fleet.Options{Workers: o.workers, Seed: o.seed, Store: store}
	if o.coordinator {
		coord = grid.New(grid.Config{Seed: o.seed, TTL: o.gridTTL, Logf: log.Printf, Journal: walLog})
		if n := coord.RestoreJournal(taskRecs); n > 0 {
			log.Printf("restored %d dispatch journal entries from the wal", n)
		}
		opts.Dispatch = coord.Dispatch
	}
	// Only now does the store start journaling: attached after replay, so
	// recovered records are never appended back into the log they came from.
	store.SetWAL(walLog)
	sched := fleet.New(opts)
	defer sched.Close()

	var standbyURLs []string
	if o.standbys != "" {
		for _, u := range strings.Split(o.standbys, ",") {
			if u = strings.TrimSpace(u); u != "" {
				standbyURLs = append(standbyURLs, u)
			}
		}
	}
	replicator := &fleet.Replicator{URLs: standbyURLs, Logf: log.Printf}

	// checkpoint compacts the durable state: the snapshot bytes and a WAL
	// cut point are captured atomically with respect to journaled
	// mutations (Store.SnapshotCut), the snapshot is written atomically,
	// and only then is the WAL compacted to the cut — a result acked
	// between the capture and the compaction sits above the cut and
	// survives in the log, so compaction can never silently drop an
	// acknowledged write the snapshot missed. Then the snapshot is pushed
	// to the standbys. Serialized: overlapping checkpoints would race the
	// snapshot-write/WAL-compact ordering that makes this crash-safe.
	var checkpointMu sync.Mutex
	checkpoint := func(reason string) {
		checkpointMu.Lock()
		defer checkpointMu.Unlock()
		if o.snapshotPath != "" {
			data, cut, err := store.SnapshotCut(o.seed)
			if err != nil {
				log.Printf("snapshot (%s): %v", reason, err)
				return
			}
			if err := fleet.WriteSnapshotBytesAtomic(data, o.snapshotPath); err != nil {
				log.Printf("snapshot (%s): %v", reason, err)
				return // the WAL still holds the tail; never compact it now
			}
			if walLog != nil {
				if err := walLog.CompactTo(cut, o.seed); err != nil {
					log.Printf("wal compaction (%s): %v", reason, err)
				}
			}
		}
		if err := replicator.Push(context.Background(), store, o.seed); err != nil {
			log.Printf("replication (%s): %v", reason, err)
		}
	}

	// Persistence cadence. With -wal the log already makes every completed
	// study durable, so the legacy rewrite-per-study is wasted I/O and the
	// snapshot becomes a compaction artifact (periodic via
	// -snapshot-interval, always at shutdown). Without -wal the per-study
	// rewrite IS the durability story, as before.
	perStudyPersist := o.snapshotPath != "" && o.walPath == "" && o.snapshotInterval == 0
	if o.snapshotPath != "" || o.walPath != "" {
		// 256, not 64: every study costs two buffer slots (computing + done
		// phase events), and a dropped done event here would mean a
		// completion that never gets logged or snapshotted.
		events, cancel := sched.Subscribe(256)
		defer cancel()
		go func() {
			for ev := range events {
				if ev.Phase != fleet.PhaseDone {
					continue
				}
				if ev.Err != nil {
					log.Printf("study %s failed: %v", ev.Fingerprint, ev.Err)
					continue
				}
				log.Printf("study %s completed", ev.Fingerprint)
				if perStudyPersist {
					checkpoint("study completed")
				}
			}
		}()
	}

	if o.suitePath != "" {
		f, err := os.Open(o.suitePath)
		if err != nil {
			return err
		}
		req, err := fleet.DecodeSuiteRequest(f)
		f.Close()
		if err != nil {
			return err
		}
		// SubmitSpecs retains each spec in the store, so the startup suite
		// is recomputable from the snapshot after future restarts.
		fps, err := sched.SubmitSpecs(req.Studies)
		if err != nil {
			return err
		}
		log.Printf("submitted startup suite %s: %d studies", o.suitePath, len(fps))
		for _, fp := range fps {
			log.Printf("  /v1/studies/%s", fp)
		}
	}

	var serverOpts []fleet.ServerOption
	if o.maxStudyCost > 0 {
		serverOpts = append(serverOpts, fleet.WithMaxStudyCost(o.maxStudyCost))
	}
	handler := http.Handler(fleet.NewServer(sched, serverOpts...))
	if coord != nil {
		// The grid endpoints share the serving address: workers register
		// against the same URL clients submit suites to.
		mux := http.NewServeMux()
		mux.Handle("/v1/grid/", coord.Handler())
		mux.Handle("/", handler)
		handler = mux
	}
	httpSrv := &http.Server{
		Handler:           handler,
		ReadHeaderTimeout: 10 * time.Second,
	}
	// Listen explicitly so the actual bound address is known (and logged)
	// even with ":0"-style addrs — scripted callers and the e2e test scrape
	// it from the log line.
	ln, err := net.Listen("tcp", o.addr)
	if err != nil {
		return err
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	// Periodic compaction: snapshot + WAL truncate + standby push on a
	// timer, instead of a store rewrite per completed study.
	if o.snapshotInterval > 0 {
		go func() {
			ticker := time.NewTicker(o.snapshotInterval)
			defer ticker.Stop()
			for {
				select {
				case <-ctx.Done():
					return
				case <-ticker.C:
					checkpoint("interval")
				}
			}
		}()
	}
	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.Serve(ln) }()
	mode := "single-node"
	if o.coordinator {
		mode = "coordinator"
	} else if o.joinURL != "" {
		mode = "worker"
	}
	log.Printf("relperfd serving on %s (seed=%d workers=%d cache=%d mode=%s)", ln.Addr(), o.seed, o.workers, o.cacheCap, mode)

	// Worker mode: announce this daemon to the coordinator and keep the
	// lease fresh until shutdown.
	if o.joinURL != "" {
		advertise := o.advertiseURL
		if advertise == "" {
			// A wildcard bind (":8078", "0.0.0.0:...") has no host the
			// coordinator could dial back; advertising it would register a
			// worker that resolves to the coordinator's own machine and
			// silently fail every dispatch. Refuse loudly instead.
			tcp, ok := ln.Addr().(*net.TCPAddr)
			if !ok || tcp.IP.IsUnspecified() {
				httpSrv.Close()
				return fmt.Errorf("-join with a wildcard -addr (%s) needs -advertise http://<reachable-host:port> so the coordinator can dial back", ln.Addr())
			}
			advertise = "http://" + ln.Addr().String()
		}
		info := grid.WorkerInfo{ID: advertise, URL: advertise, Capacity: sched.Workers(), Seed: o.seed}
		go grid.RunHeartbeats(ctx, nil, o.joinURL, info, 0, log.Printf)
	}

	select {
	case err := <-errCh:
		return err
	case <-ctx.Done():
	}
	log.Printf("shutting down")
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	_ = httpSrv.Shutdown(shutdownCtx)
	sched.Close()
	if o.snapshotPath != "" || len(standbyURLs) > 0 {
		checkpoint("shutdown")
	}
	return nil
}
