package main

// Process-level end-to-end test of the relperfd daemon: build the real
// binary, start it, submit a declarative-spec suite over HTTP, snapshot,
// kill, restart into a smaller cache that evicts one study, and re-GET it —
// the response must be byte-identical, recomputed from the spec the
// snapshot carried. The in-process twin (internal/fleet's e2e test) covers
// the same lifecycle under -race; this one additionally exercises the
// binary's flag wiring, signal handling and atomic snapshot writes.

import (
	"bufio"
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"
)

const daemonSuite = `{"studies":[
	{"program":{"name":"d1","tasks":[
		{"name":"L1","kernel":"raw","flops":5e8,"launches":10,"host_in_bytes":1e6,"host_out_bytes":1e6,"transfers":3,"accel_eff":0.01}]},
	 "measurements":6,"reps":10},
	{"program":{"name":"d2","tasks":[
		{"name":"G1","kernel":"gemm","size":64,"iters":8}]},
	 "platform":{"edge":{"preset":"raspberry-pi-4"},"link":{"preset":"wifi"}},
	 "measurements":6,"reps":10}
]}`

// buildDaemon compiles the relperfd binary into dir.
func buildDaemon(t *testing.T, dir string) string {
	t.Helper()
	bin := filepath.Join(dir, "relperfd-e2e")
	cmd := exec.Command("go", "build", "-o", bin, ".")
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	return bin
}

// daemon is one running relperfd process.
type daemon struct {
	cmd  *exec.Cmd
	addr string

	mu   sync.Mutex
	logs bytes.Buffer // guarded by mu: the scanner goroutine appends while assertions read
}

// logText snapshots the stderr captured so far.
func (d *daemon) logText() string {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.logs.String()
}

// startDaemon launches the binary and waits for its "serving on" log line
// to learn the dynamically bound address.
func startDaemon(t *testing.T, bin string, args ...string) *daemon {
	t.Helper()
	return startDaemonEnv(t, bin, nil, args...)
}

// startDaemonEnv is startDaemon with extra environment variables — the
// crash e2e tests use it to arm fault-injection points in the child
// process only.
func startDaemonEnv(t *testing.T, bin string, env []string, args ...string) *daemon {
	t.Helper()
	cmd := exec.Command(bin, append([]string{"-addr", "127.0.0.1:0"}, args...)...)
	if len(env) > 0 {
		cmd.Env = append(os.Environ(), env...)
	}
	stderr, err := cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	d := &daemon{cmd: cmd}
	addrCh := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stderr)
		for sc.Scan() {
			line := sc.Text()
			d.mu.Lock()
			d.logs.WriteString(line + "\n")
			d.mu.Unlock()
			if i := strings.Index(line, "serving on "); i >= 0 {
				rest := line[i+len("serving on "):]
				select {
				case addrCh <- strings.Fields(rest)[0]:
				default:
				}
			}
		}
	}()
	t.Cleanup(func() { _ = cmd.Process.Kill(); _ = cmd.Wait() })
	select {
	case d.addr = <-addrCh:
	case <-time.After(30 * time.Second):
		t.Fatalf("daemon did not report its address; logs:\n%s", d.logText())
	}
	return d
}

// stop sends SIGTERM and waits for a clean exit (which flushes the final
// snapshot).
func (d *daemon) stop(t *testing.T) {
	t.Helper()
	if err := d.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- d.cmd.Wait() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("daemon exited uncleanly: %v\nlogs:\n%s", err, d.logText())
		}
	case <-time.After(30 * time.Second):
		t.Fatalf("daemon did not exit on SIGTERM; logs:\n%s", d.logText())
	}
}

func (d *daemon) get(t *testing.T, path string) (int, []byte) {
	t.Helper()
	resp, err := http.Get("http://" + d.addr + path)
	if err != nil {
		t.Fatalf("GET %s: %v\nlogs:\n%s", path, err, d.logText())
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, b
}

func (d *daemon) health(t *testing.T) (computes uint64, storeEntries, storeSpecs int) {
	t.Helper()
	code, b := d.get(t, "/v1/healthz")
	if code != 200 {
		t.Fatalf("healthz: %d %s", code, b)
	}
	var h struct {
		Computes uint64 `json:"computes"`
		Store    struct {
			Entries int `json:"entries"`
			Specs   int `json:"specs"`
		} `json:"store"`
	}
	if err := json.Unmarshal(b, &h); err != nil {
		t.Fatal(err)
	}
	return h.Computes, h.Store.Entries, h.Store.Specs
}

func TestDaemonSpecSnapshotRestartEvictRecompute(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs the real daemon binary")
	}
	dir := t.TempDir()
	bin := buildDaemon(t, dir)
	snapPath := filepath.Join(dir, "snap.json")

	// Generation 1: submit the declarative suite over HTTP, read results.
	d1 := startDaemon(t, bin, "-seed", "7", "-workers", "2", "-snapshot", snapPath)
	resp, err := http.Post("http://"+d1.addr+"/v1/suites", "application/json", strings.NewReader(daemonSuite))
	if err != nil {
		t.Fatal(err)
	}
	var sr struct {
		Fingerprints []string `json:"fingerprints"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted || len(sr.Fingerprints) != 2 {
		t.Fatalf("POST /v1/suites: %d %v", resp.StatusCode, sr)
	}
	want := map[string][]byte{}
	for _, fp := range sr.Fingerprints {
		code, body := d1.get(t, "/v1/studies/"+fp)
		if code != 200 {
			t.Fatalf("GET %s: %d %s", fp, code, body)
		}
		want[fp] = body
	}
	d1.stop(t)
	if _, err := os.Stat(snapPath); err != nil {
		t.Fatalf("no snapshot written: %v", err)
	}

	// Generation 2: restart into a capacity-1 cache. The snapshot load
	// evicts one result but keeps both specs, so the evicted study must be
	// recomputed transparently — byte-identical — on the next GET.
	d2 := startDaemon(t, bin, "-seed", "7", "-workers", "2", "-snapshot", snapPath, "-cache", "1")
	if computes, entries, specs := d2.health(t); computes != 0 || entries != 1 || specs != 2 {
		t.Fatalf("after restart: computes=%d entries=%d specs=%d, want 0/1/2", computes, entries, specs)
	}
	// The capacity-1 load kept only the snapshot's MRU entry — the study
	// fetched last in generation 1. GET it first (a pure cache hit), then
	// the evicted one (recomputed from its snapshot spec).
	kept, evicted := sr.Fingerprints[1], sr.Fingerprints[0]
	code, body := d2.get(t, "/v1/studies/"+kept)
	if code != 200 || !bytes.Equal(body, want[kept]) {
		t.Fatalf("warm study %s differs after restart (code %d)\nlogs:\n%s", kept, code, d2.logText())
	}
	if computes, _, _ := d2.health(t); computes != 0 {
		t.Fatalf("computes = %d after a warm GET, want 0", computes)
	}
	code, body = d2.get(t, "/v1/studies/"+evicted)
	if code != 200 {
		t.Fatalf("GET evicted %s: %d %s\nlogs:\n%s", evicted, code, body, d2.logText())
	}
	if !bytes.Equal(body, want[evicted]) {
		t.Fatalf("study %s served different bytes after restart+eviction", evicted)
	}
	if computes, _, _ := d2.health(t); computes != 1 {
		t.Fatalf("computes = %d after recomputing one evicted study, want exactly 1", computes)
	}
	d2.stop(t)
}
