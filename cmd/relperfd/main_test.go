package main

// Process-level end-to-end test of the relperfd daemon: build the real
// binary, start it, submit a declarative-spec suite over HTTP, snapshot,
// kill, restart into a smaller cache that evicts one study, and re-GET it —
// the response must be byte-identical, recomputed from the spec the
// snapshot carried. The in-process twin (internal/fleet's e2e test) covers
// the same lifecycle under -race; this one additionally exercises the
// binary's flag wiring, signal handling and atomic snapshot writes.

import (
	"bufio"
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"
)

// daemonSuite mixes the two result modes: the first study summarizes a
// larger campaign into fixed-size sketches ("mode":"sketch" on the wire),
// the other two are exact. The sketch study deliberately sits first so the
// capacity-1 restart below evicts it and must recompute it from its spec.
const daemonSuite = `{"studies":[
	{"program":{"name":"d0","tasks":[
		{"name":"S1","kernel":"raw","flops":5e8,"launches":10,"host_in_bytes":1e6,"host_out_bytes":1e6,"transfers":3,"accel_eff":0.01}]},
	 "measurements":400,"reps":10,"comparator":"sketch","sketch":{"k":64}},
	{"program":{"name":"d1","tasks":[
		{"name":"L1","kernel":"raw","flops":5e8,"launches":10,"host_in_bytes":1e6,"host_out_bytes":1e6,"transfers":3,"accel_eff":0.01}]},
	 "measurements":6,"reps":10},
	{"program":{"name":"d2","tasks":[
		{"name":"G1","kernel":"gemm","size":64,"iters":8}]},
	 "platform":{"edge":{"preset":"raspberry-pi-4"},"link":{"preset":"wifi"}},
	 "measurements":6,"reps":10}
]}`

// buildDaemon compiles the relperfd binary into dir.
func buildDaemon(t *testing.T, dir string) string {
	t.Helper()
	bin := filepath.Join(dir, "relperfd-e2e")
	cmd := exec.Command("go", "build", "-o", bin, ".")
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	return bin
}

// daemon is one running relperfd process.
type daemon struct {
	cmd  *exec.Cmd
	addr string

	mu   sync.Mutex
	logs bytes.Buffer // guarded by mu: the scanner goroutine appends while assertions read
}

// logText snapshots the stderr captured so far.
func (d *daemon) logText() string {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.logs.String()
}

// startDaemon launches the binary and waits for its "serving on" log line
// to learn the dynamically bound address.
func startDaemon(t *testing.T, bin string, args ...string) *daemon {
	t.Helper()
	return startDaemonEnv(t, bin, nil, args...)
}

// startDaemonEnv is startDaemon with extra environment variables — the
// crash e2e tests use it to arm fault-injection points in the child
// process only.
func startDaemonEnv(t *testing.T, bin string, env []string, args ...string) *daemon {
	t.Helper()
	cmd := exec.Command(bin, append([]string{"-addr", "127.0.0.1:0"}, args...)...)
	if len(env) > 0 {
		cmd.Env = append(os.Environ(), env...)
	}
	stderr, err := cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	d := &daemon{cmd: cmd}
	addrCh := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stderr)
		for sc.Scan() {
			line := sc.Text()
			d.mu.Lock()
			d.logs.WriteString(line + "\n")
			d.mu.Unlock()
			if i := strings.Index(line, "serving on "); i >= 0 {
				rest := line[i+len("serving on "):]
				select {
				case addrCh <- strings.Fields(rest)[0]:
				default:
				}
			}
		}
	}()
	t.Cleanup(func() { _ = cmd.Process.Kill(); _ = cmd.Wait() })
	select {
	case d.addr = <-addrCh:
	case <-time.After(30 * time.Second):
		t.Fatalf("daemon did not report its address; logs:\n%s", d.logText())
	}
	return d
}

// stop sends SIGTERM and waits for a clean exit (which flushes the final
// snapshot).
func (d *daemon) stop(t *testing.T) {
	t.Helper()
	if err := d.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- d.cmd.Wait() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("daemon exited uncleanly: %v\nlogs:\n%s", err, d.logText())
		}
	case <-time.After(30 * time.Second):
		t.Fatalf("daemon did not exit on SIGTERM; logs:\n%s", d.logText())
	}
}

func (d *daemon) get(t *testing.T, path string) (int, []byte) {
	t.Helper()
	resp, err := http.Get("http://" + d.addr + path)
	if err != nil {
		t.Fatalf("GET %s: %v\nlogs:\n%s", path, err, d.logText())
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, b
}

// scrapeMetrics GETs /v1/metrics, asserts the Prometheus exposition
// content type and that every sample line parses, and returns the samples
// keyed by series string (metric name plus rendered labels, exactly as on
// the wire).
func (d *daemon) scrapeMetrics(t *testing.T) map[string]float64 {
	t.Helper()
	resp, err := http.Get("http://" + d.addr + "/v1/metrics")
	if err != nil {
		t.Fatalf("GET /v1/metrics: %v\nlogs:\n%s", err, d.logText())
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("GET /v1/metrics: %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Fatalf("metrics Content-Type = %q, want the 0.0.4 text exposition", ct)
	}
	samples := map[string]float64{}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		i := strings.LastIndexByte(line, ' ')
		if i < 0 {
			t.Fatalf("unparseable metrics line %q", line)
		}
		v, err := strconv.ParseFloat(line[i+1:], 64)
		if err != nil {
			t.Fatalf("unparseable value in metrics line %q: %v", line, err)
		}
		samples[line[:i]] = v
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return samples
}

func (d *daemon) health(t *testing.T) (computes uint64, storeEntries, storeSpecs int) {
	t.Helper()
	code, b := d.get(t, "/v1/healthz")
	if code != 200 {
		t.Fatalf("healthz: %d %s", code, b)
	}
	var h struct {
		Computes uint64 `json:"computes"`
		Store    struct {
			Entries int `json:"entries"`
			Specs   int `json:"specs"`
		} `json:"store"`
	}
	if err := json.Unmarshal(b, &h); err != nil {
		t.Fatal(err)
	}
	return h.Computes, h.Store.Entries, h.Store.Specs
}

func TestDaemonSpecSnapshotRestartEvictRecompute(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs the real daemon binary")
	}
	dir := t.TempDir()
	bin := buildDaemon(t, dir)
	snapPath := filepath.Join(dir, "snap.json")

	// Generation 1: submit the declarative suite over HTTP, read results.
	d1 := startDaemon(t, bin, "-seed", "7", "-workers", "2", "-snapshot", snapPath)
	resp, err := http.Post("http://"+d1.addr+"/v1/suites", "application/json", strings.NewReader(daemonSuite))
	if err != nil {
		t.Fatal(err)
	}
	var sr struct {
		Fingerprints []string `json:"fingerprints"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted || len(sr.Fingerprints) != 3 {
		t.Fatalf("POST /v1/suites: %d %v", resp.StatusCode, sr)
	}
	want := map[string][]byte{}
	for _, fp := range sr.Fingerprints {
		code, body := d1.get(t, "/v1/studies/"+fp)
		if code != 200 {
			t.Fatalf("GET %s: %d %s", fp, code, body)
		}
		want[fp] = body
	}
	// The sketch study serves a sketch-mode result document, the exact ones
	// the pre-sketch schema with no mode marker at all.
	if b := want[sr.Fingerprints[0]]; !bytes.Contains(b, []byte(`"mode":"sketch"`)) || !bytes.Contains(b, []byte(`"error_bound"`)) {
		t.Fatalf("sketch study result lacks mode/error_bound: %s", b)
	}
	if b := want[sr.Fingerprints[1]]; bytes.Contains(b, []byte(`"mode"`)) {
		t.Fatalf("exact study result unexpectedly carries a mode field: %s", b)
	}

	// Observability surfaces, scraped through the real process: the
	// Prometheus exposition carries live engine, fleet, store and HTTP
	// series; /v1/statz mirrors it as JSON; /v1/trace shows each study's
	// full lifecycle.
	m := d1.scrapeMetrics(t)
	for series, min := range map[string]float64{
		"fleet_computes_total":                                                    3,
		`engine_stage_seconds_count{stage="measure"}`:                             3,
		`engine_stage_seconds_count{stage="cluster"}`:                             3,
		"store_merges_total":                                                      3,
		"store_hits_total":                                                        1,
		`http_request_seconds_count{route="GET /v1/studies/{fingerprint}"}`:       3,
		`http_responses_total{class="2xx",route="GET /v1/studies/{fingerprint}"}`: 3,
	} {
		if got, ok := m[series]; !ok || got < min {
			t.Fatalf("metrics series %s = %v (present=%v), want >= %v", series, got, ok, min)
		}
	}
	code, b := d1.get(t, "/v1/statz")
	var statz struct {
		Metrics []json.RawMessage `json:"metrics"`
		Tracer  struct {
			Studies int `json:"studies"`
		} `json:"tracer"`
	}
	if err := json.Unmarshal(b, &statz); err != nil || code != 200 {
		t.Fatalf("GET /v1/statz: %d %v %s", code, err, b)
	}
	if len(statz.Metrics) == 0 || statz.Tracer.Studies < 3 {
		t.Fatalf("statz: %d metrics, %d traced studies, want >0 and >=3", len(statz.Metrics), statz.Tracer.Studies)
	}
	// The trace's tail spans (stages, done) land just after the result is
	// served, so poll briefly for the complete lifecycle.
	wantSpans := []string{"queued", "computing", "stage:measure", "stage:cluster", "stage:finalize", "done"}
	traceDeadline := time.Now().Add(10 * time.Second)
	for {
		code, b = d1.get(t, "/v1/trace/"+sr.Fingerprints[0])
		if code != 200 {
			t.Fatalf("GET /v1/trace: %d %s", code, b)
		}
		var tr struct {
			Spans []struct {
				Name string `json:"name"`
			} `json:"spans"`
		}
		if err := json.Unmarshal(b, &tr); err != nil {
			t.Fatal(err)
		}
		have := map[string]bool{}
		for _, s := range tr.Spans {
			have[s.Name] = true
		}
		missing := ""
		for _, name := range wantSpans {
			if !have[name] {
				missing = name
				break
			}
		}
		if missing == "" {
			break
		}
		if time.Now().After(traceDeadline) {
			t.Fatalf("trace never completed: span %q missing in %s", missing, b)
		}
		time.Sleep(20 * time.Millisecond)
	}

	d1.stop(t)
	if _, err := os.Stat(snapPath); err != nil {
		t.Fatalf("no snapshot written: %v", err)
	}

	// Generation 2: restart into a capacity-1 cache. The snapshot load
	// evicts two results but keeps all three specs, so the evicted studies
	// — the sketch one among them — must be recomputed transparently,
	// byte-identical, on their next GET.
	d2 := startDaemon(t, bin, "-seed", "7", "-workers", "2", "-snapshot", snapPath, "-cache", "1")
	if computes, entries, specs := d2.health(t); computes != 0 || entries != 1 || specs != 3 {
		t.Fatalf("after restart: computes=%d entries=%d specs=%d, want 0/1/3", computes, entries, specs)
	}
	// The capacity-1 load kept only the snapshot's MRU entry — the study
	// fetched last in generation 1. GET it first (a pure cache hit), then
	// the evicted ones (recomputed from their snapshot specs).
	kept := sr.Fingerprints[2]
	code, body := d2.get(t, "/v1/studies/"+kept)
	if code != 200 || !bytes.Equal(body, want[kept]) {
		t.Fatalf("warm study %s differs after restart (code %d)\nlogs:\n%s", kept, code, d2.logText())
	}
	if computes, _, _ := d2.health(t); computes != 0 {
		t.Fatalf("computes = %d after a warm GET, want 0", computes)
	}
	for _, evicted := range sr.Fingerprints[:2] {
		code, body = d2.get(t, "/v1/studies/"+evicted)
		if code != 200 {
			t.Fatalf("GET evicted %s: %d %s\nlogs:\n%s", evicted, code, body, d2.logText())
		}
		if !bytes.Equal(body, want[evicted]) {
			t.Fatalf("study %s served different bytes after restart+eviction", evicted)
		}
	}
	if computes, _, _ := d2.health(t); computes != 2 {
		t.Fatalf("computes = %d after recomputing two evicted studies, want exactly 2", computes)
	}
	d2.stop(t)
}
