// Command edgebench regenerates every table and figure of the paper's
// evaluation on the simulated substrate:
//
//	edgebench -exp fig1      Figure 1b: execution-time distributions of DD/DA/AD/AA
//	edgebench -exp fig2      Figure 2: the three-way bubble-sort trace
//	edgebench -exp scores    Section III: relative scores of the 4-algorithm example
//	edgebench -exp table1    Table I: clustering of the 8 placements (RLS code)
//	edgebench -exp decision  Section IV: operating-cost trade-off and n-sweep
//	edgebench -exp energy    Section IV: energy-aware switching session
//	edgebench -exp all       everything above
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"relperf"
	"relperf/internal/compare"
	"relperf/internal/core"
	"relperf/internal/decision"
	"relperf/internal/measure"
	"relperf/internal/predict"
	"relperf/internal/report"
	"relperf/internal/search"
	"relperf/internal/sim"
	"relperf/internal/workload"
)

// workers is the -workers flag: the pool size every study engine uses.
// Results are identical at any value (the engine's determinism contract).
var workers int

// matrix is the -matrix flag: route every study's clustering stage through
// the precomputed pairwise-statistics path (core.ClusterMatrix).
var matrix bool

func main() {
	exp := flag.String("exp", "all", "experiment: fig1|fig2|scores|table1|decision|energy|kernels|predict|race|hybrid|all")
	n := flag.Int("n", 10, "loop iterations per MathTask (the paper's n)")
	nMeas := flag.Int("N", 30, "measurements per algorithm for table1/scores")
	reps := flag.Int("reps", 100, "clustering repetitions (the paper's Rep)")
	seed := flag.Uint64("seed", 1, "master seed")
	flag.IntVar(&workers, "workers", 0, "worker pool size for study engines (0 = GOMAXPROCS)")
	flag.BoolVar(&matrix, "matrix", false, "cluster via precomputed pairwise outcome statistics")
	flag.Parse()

	run := func(name string, f func() error) {
		fmt.Printf("\n================ %s ================\n\n", name)
		if err := f(); err != nil {
			fmt.Fprintf(os.Stderr, "edgebench: %s: %v\n", name, err)
			os.Exit(1)
		}
	}

	all := *exp == "all"
	if all || *exp == "fig1" {
		run("Figure 1b — distributions of the two-loop code", func() error { return fig1(*seed) })
	}
	if all || *exp == "fig2" {
		run("Figure 2 — three-way bubble sort trace", fig2)
	}
	if all || *exp == "scores" {
		run("Section III — relative scores (4-algorithm example)", func() error { return scores(*reps, *seed) })
	}
	if all || *exp == "table1" {
		run("Table I — clustering of the 8 placements", func() error { return table1(*n, *nMeas, *reps, *seed) })
	}
	if all || *exp == "decision" {
		run("Section IV — decision model (cost vs speed)", func() error { return decisionExp(*nMeas, *reps, *seed) })
	}
	if all || *exp == "energy" {
		run("Section IV — energy-aware switching", func() error { return energy(*nMeas, *reps, *seed) })
	}
	if all || *exp == "kernels" {
		run("Section V — equivalent RLS kernel variants (real host measurements)", func() error { return kernels(*nMeas, *reps, *seed) })
	}
	if all || *exp == "predict" {
		run("Future work — relative-performance prediction from clusters", func() error { return predictExp(*nMeas, *reps, *seed) })
	}
	if all || *exp == "race" {
		run("Section V — guided search (racing with elimination)", func() error { return race(*seed) })
	}
	if all || *exp == "hybrid" {
		run("Footnote 2 — hybrid mode: real kernels, modeled devices", func() error { return hybrid(*nMeas, *reps, *seed) })
	}
	known := map[string]bool{"fig1": true, "fig2": true, "scores": true, "table1": true,
		"decision": true, "energy": true, "kernels": true, "predict": true, "race": true, "hybrid": true}
	if !all && !known[*exp] {
		fmt.Fprintf(os.Stderr, "edgebench: unknown experiment %q\n", *exp)
		os.Exit(2)
	}
}

// fig1 regenerates Figure 1b: N=500 measurements of the four placements of
// the two-loop code, printed as summaries and ASCII histograms.
func fig1(seed uint64) error {
	plat := relperf.Figure1Platform()
	study, err := relperf.NewStudy(relperf.StudyConfig{
		Platform: plat,
		Program:  workload.Figure1(plat.Accel.PeakFlops),
		N:        500,
		Reps:     50,
		Seed:     seed,
		Workers:  workers,
		Matrix:   matrix,
	})
	if err != nil {
		return err
	}
	res, err := study.Run()
	if err != nil {
		return err
	}
	if err := report.SummaryTable(os.Stdout, res.Names, res.Samples.Data()); err != nil {
		return err
	}
	fmt.Println()
	if err := report.Histograms(os.Stdout, res.Names, res.Samples.Data(), 24, 48); err != nil {
		return err
	}
	fmt.Println("Clustering of the four placements at N=500:")
	return report.FinalTable(os.Stdout, res.Final, res.Names)
}

// fig2 replays the paper's exact Figure-2 illustration: the scripted
// ground-truth comparator (AD fastest, AA second, DD ~ DA) drives the
// three-way bubble sort from the paper's initial sequence ⟨DD, AA, DA, AD⟩.
func fig2() error {
	names := []string{"DD", "AA", "DA", "AD"}
	class := []int{2, 1, 2, 0}
	cmp := func(i, j int) (compare.Outcome, error) {
		switch {
		case class[i] < class[j]:
			return compare.Better, nil
		case class[i] > class[j]:
			return compare.Worse, nil
		default:
			return compare.Equivalent, nil
		}
	}
	res, err := core.Sort(4, cmp, core.SortOptions{RecordTrace: true})
	if err != nil {
		return err
	}
	if err := report.SortTrace(os.Stdout, res, names); err != nil {
		return err
	}
	fmt.Printf("\nfinal sequence: ")
	for pos, a := range res.Order {
		fmt.Printf("(%s,%d) ", names[a], res.Ranks[pos])
	}
	fmt.Printf("\nperformance classes: %d\n", res.K())
	return nil
}

// scores reproduces the Section III relative-score example on measured
// data: the Figure-1 workload at N=30, where the AD-vs-AA comparison is
// "just at the threshold of being better" and the clustering becomes
// non-deterministic, yielding fractional relative scores.
func scores(reps int, seed uint64) error {
	plat := relperf.Figure1Platform()
	study, err := relperf.NewStudy(relperf.StudyConfig{
		Platform: plat,
		Program:  workload.Figure1(plat.Accel.PeakFlops),
		N:        30,
		Reps:     reps,
		Seed:     seed,
		Workers:  workers,
		Matrix:   matrix,
	})
	if err != nil {
		return err
	}
	res, err := study.Run()
	if err != nil {
		return err
	}
	fmt.Printf("Per-cluster relative scores (Rep=%d):\n", reps)
	if err := report.ClusterTable(os.Stdout, res.Clusters, res.Names); err != nil {
		return err
	}
	fmt.Println("\nFinal clustering (max-score assignment, scores cumulated):")
	return report.FinalTable(os.Stdout, res.Final, res.Names)
}

// table1 regenerates the paper's Table I.
func table1(n, nMeas, reps int, seed uint64) error {
	study, err := relperf.NewStudy(relperf.StudyConfig{
		Program: relperf.TableIProgram(n),
		N:       nMeas,
		Reps:    reps,
		Seed:    seed,
		Workers: workers,
		Matrix:  matrix,
	})
	if err != nil {
		return err
	}
	res, err := study.Run()
	if err != nil {
		return err
	}
	return res.WriteReport(os.Stdout)
}

// decisionExp prints the Section-IV decision analysis: the DDA-vs-DDD
// trade-off as the loop size n grows, and the procurement verdicts under
// two cost models.
func decisionExp(nMeas, reps int, seed uint64) error {
	fmt.Println("Speed-up of offloading L3 (algDDA) over all-on-device (algDDD) vs n:")
	tbl := report.NewTable("n", "mean DDD (ms)", "mean DDA (ms)", "saved (ms)", "speedup")
	plat := relperf.DefaultPlatform()
	for _, n := range []int{5, 10, 20, 50, 100} {
		prog := workload.TableI(n, plat.Accel.PeakFlops)
		s, err := sim.NewSimulator(plat, seed)
		if err != nil {
			return err
		}
		ddd, _ := sim.ParsePlacement("DDD")
		dda, _ := sim.ParsePlacement("DDA")
		tD, err := s.NominalSeconds(prog, ddd)
		if err != nil {
			return err
		}
		tA, err := s.NominalSeconds(prog, dda)
		if err != nil {
			return err
		}
		tbl.AddRow(fmt.Sprintf("%d", n),
			fmt.Sprintf("%.3f", tD*1e3),
			fmt.Sprintf("%.3f", tA*1e3),
			fmt.Sprintf("%.3f", (tD-tA)*1e3),
			fmt.Sprintf("%.3f", tD/tA))
	}
	if err := tbl.Render(os.Stdout); err != nil {
		return err
	}

	study, err := relperf.NewStudy(relperf.StudyConfig{
		Program: relperf.TableIProgram(10),
		N:       nMeas,
		Reps:    reps,
		Seed:    seed,
		Workers: workers,
		Matrix:  matrix,
	})
	if err != nil {
		return err
	}
	res, err := study.Run()
	if err != nil {
		return err
	}
	pa, err := decision.AnalyzeProcurement(res.Profiles)
	if err != nil {
		return err
	}
	fmt.Printf("\nBest device-only algorithm: alg%s (%.3f ms)\n", pa.BestLocal.Name, pa.BestLocal.MeanSeconds*1e3)
	fmt.Printf("Best overall algorithm:     alg%s (%.3f ms)\n", pa.BestOverall.Name, pa.BestOverall.MeanSeconds*1e3)
	fmt.Printf("Speed-up %.3f, %.3f ms saved per run\n", pa.Speedup, pa.SecondsSavedPerRun*1e3)
	latency := decision.CostModel{AccelCostPerHour: 3, TimeValuePerSecond: 50}
	batch := decision.CostModel{AccelCostPerHour: 3, TimeValuePerSecond: 0.001}
	fmt.Printf("Worth procuring the accelerator (latency-critical app): %v\n", pa.WorthProcuring(latency))
	fmt.Printf("Worth procuring the accelerator (batch app):            %v\n", pa.WorthProcuring(batch))
	return nil
}

// energy simulates the Section-IV switching session: run algDDD until the
// device's energy accumulator crosses the threshold, switch to the most
// offloading algorithm of the top clusters (algDAA), switch back on cool.
func energy(nMeas, reps int, seed uint64) error {
	study, err := relperf.NewStudy(relperf.StudyConfig{
		Program: relperf.TableIProgram(10),
		N:       nMeas,
		Reps:    reps,
		Seed:    seed,
		Workers: workers,
		Matrix:  matrix,
	})
	if err != nil {
		return err
	}
	res, err := study.Run()
	if err != nil {
		return err
	}
	preferred, err := res.ProfileByName("DDD")
	if err != nil {
		return err
	}
	fallback, err := decision.MostOffloading(res.Profiles, preferred.Rank)
	if err != nil {
		return err
	}
	fmt.Printf("Preferred: alg%s (edge %.2f J/run)   Fallback: alg%s (edge %.2f J/run)\n\n",
		preferred.Name, preferred.EdgeJoules, fallback.Name, fallback.EdgeJoules)
	sw := &decision.Switcher{
		Preferred:        preferred,
		Fallback:         fallback,
		HighWater:        8,
		LowWater:         2,
		DissipationWatts: 30,
	}
	sess, err := sw.RunSession(120)
	if err != nil {
		return err
	}
	fmt.Printf("120 jobs: %d mode switches, %d jobs on alg%s, peak accumulator %.2f J\n",
		sess.Switches, sess.FallbackJobs, fallback.Name, sess.PeakEnergy)
	fmt.Println("\naccumulator trace (every 4th job):")
	for i, st := range sess.Steps {
		if i%4 != 0 {
			continue
		}
		mode := "cool"
		if st.Hot {
			mode = "HOT "
		}
		barLen := int(st.EnergyAfter * 4)
		if barLen > 60 {
			barLen = 60
		}
		fmt.Printf("  job %3d %s alg%s %6.2f J |%s\n", st.Job, mode, st.Alg, st.EnergyAfter, bar(barLen))
	}
	return nil
}

func bar(n int) string {
	b := make([]byte, n)
	for i := range b {
		b[i] = '#'
	}
	return string(b)
}

// kernels runs the Section-V kernel-variant experiment: the three
// mathematically equivalent Regularized Least Squares algorithms are
// executed FOR REAL on the host and clustered from their measured wall-time
// distributions.
func kernels(nMeas, reps int, seed uint64) error {
	diff, err := workload.VerifyVariantsAgree(48, 0.5, seed)
	if err != nil {
		return err
	}
	fmt.Printf("mathematical equivalence witness: max |Z_i - Z_chol| = %.2e\n\n", diff)
	ss, err := workload.MeasureKernelVariants(workload.KernelStudyConfig{
		Size: 64, Iters: 3, N: nMeas, Seed: seed,
	})
	if err != nil {
		return err
	}
	if err := report.SummaryTable(os.Stdout, ss.Names(), ss.Data()); err != nil {
		return err
	}
	cr, fa, err := relperf.ClusterSamplesWith(ss, nil, relperf.ClusterSamplesOptions{
		Reps: reps, Seed: seed + 1, Workers: workers, Matrix: matrix,
	})
	if err != nil {
		return err
	}
	fmt.Printf("\nClustering (Rep=%d):\n", reps)
	if err := report.ClusterTable(os.Stdout, cr, ss.Names()); err != nil {
		return err
	}
	fmt.Println("\nFinal clustering:")
	return report.FinalTable(os.Stdout, fa, ss.Names())
}

// predictExp trains the relative-performance predictor on the Table-I
// clusters and evaluates it on a held-out workload configuration — the
// paper's "performance models that predict relative scores without having
// to execute all the algorithms".
func predictExp(nMeas, reps int, seed uint64) error {
	plat := relperf.DefaultPlatform()
	study, err := relperf.NewStudy(relperf.StudyConfig{
		Program: relperf.TableIProgram(10),
		N:       nMeas,
		Reps:    reps,
		Seed:    seed,
		Workers: workers,
		Matrix:  matrix,
	})
	if err != nil {
		return err
	}
	res, err := study.Run()
	if err != nil {
		return err
	}
	prog := relperf.TableIProgram(10)
	var train []predict.Example
	for i, pl := range sim.EnumeratePlacements(3) {
		x, err := predict.Features(plat, prog, pl)
		if err != nil {
			return err
		}
		train = append(train, predict.Example{X: x, Class: res.Final.Rank[i], Name: pl.String()})
	}
	for _, mode := range []struct {
		name    string
		triplet bool
	}{{"pairwise", false}, {"triplet", true}} {
		trained, err := predict.Train(train, predict.TrainConfig{Seed: seed, Triplet: mode.triplet})
		if err != nil {
			return err
		}
		ev, err := predict.Evaluate(trained, train)
		if err != nil {
			return err
		}
		// Held-out: same code family, different sizes and loop count.
		heldSpecs := []workload.MathTaskSpec{
			{Name: "H1", Size: 60, Iters: 20, Lambda: 0.5},
			{Name: "H2", Size: 120, Iters: 20, Lambda: 0.5},
			{Name: "H3", Size: 250, Iters: 20, Lambda: 0.5},
		}
		heldProg := &sim.Program{Name: "held-out"}
		for i := range heldSpecs {
			heldProg.Tasks = append(heldProg.Tasks, heldSpecs[i].Task(plat.Accel.PeakFlops))
		}
		sHeld, err := sim.NewSimulator(plat, seed+7)
		if err != nil {
			return err
		}
		var held []predict.Example
		type nom struct {
			name string
			sec  float64
		}
		var noms []nom
		for _, pl := range sim.EnumeratePlacements(3) {
			x, err := predict.Features(plat, heldProg, pl)
			if err != nil {
				return err
			}
			v, err := sHeld.NominalSeconds(heldProg, pl)
			if err != nil {
				return err
			}
			noms = append(noms, nom{pl.String(), v})
			held = append(held, predict.Example{X: x, Name: pl.String()})
		}
		// Label held-out examples by nominal ordering (pairs of two).
		sorted := append([]nom(nil), noms...)
		sort.Slice(sorted, func(a, b int) bool { return sorted[a].sec < sorted[b].sec })
		classOf := map[string]int{}
		for i, nm := range sorted {
			classOf[nm.name] = i/2 + 1
		}
		for i := range held {
			held[i].Class = classOf[held[i].Name]
		}
		evHeld, err := predict.Evaluate(trained, held)
		if err != nil {
			return err
		}
		fmt.Printf("%-8s loss: train tau %.2f, pair-acc %.2f | held-out tau %.2f, pair-acc %.2f, top hit %v\n",
			mode.name, ev.KendallTau, ev.PairAccuracy, evHeld.KendallTau, evHeld.PairAccuracy, evHeld.TopClassHit)
	}
	return nil
}

// race runs the guided-search experiment: racing the 8 placements with
// elimination vs the exhaustive measurement campaign.
func race(seed uint64) error {
	plat := relperf.DefaultPlatform()
	prog := relperf.TableIProgram(10)
	s, err := sim.NewSimulator(plat, seed)
	if err != nil {
		return err
	}
	var arms []search.Arm
	for _, pl := range sim.EnumeratePlacements(3) {
		pl := pl
		arms = append(arms, search.Arm{
			Name:    pl.String(),
			Measure: func() (float64, error) { return s.Seconds(prog, pl) },
		})
	}
	res, err := search.Race(arms, compare.NewBootstrap(seed+1), search.Config{RoundSize: 10, MaxRounds: 6})
	if err != nil {
		return err
	}
	fmt.Printf("racing 8 placements: %d rounds, %d total measurements (exhaustive: %d)\n",
		res.Rounds, res.TotalMeasurements, 8*res.Rounds*10)
	fmt.Printf("survivors (best first): %v\n\n", res.Survivors)
	tbl := report.NewTable("Algorithm", "Measurements", "Eliminated in round")
	for _, a := range res.Arms {
		el := "-"
		if a.EliminatedInRound > 0 {
			el = fmt.Sprintf("%d", a.EliminatedInRound)
		}
		tbl.AddRow("alg"+a.Name, fmt.Sprintf("%d", a.Measurements), el)
	}
	return tbl.Render(os.Stdout)
}

// hybrid demonstrates the paper's footnote-2 measurement mode end to end:
// the MathTask kernels execute FOR REAL on this machine, measured wall times
// are rescaled to the modeled devices, and modeled transfer/overhead delays
// are added — so the measurement noise is the host's genuine system noise.
// Scaled-down sizes keep the real execution fast.
func hybrid(nMeas, reps int, seed uint64) error {
	specs := []workload.MathTaskSpec{
		{Name: "L1", Size: 20, Iters: 3, Lambda: 0.5},
		{Name: "L2", Size: 30, Iters: 3, Lambda: 0.5},
		{Name: "L3", Size: 60, Iters: 3, Lambda: 0.5},
	}
	h, err := workload.NewHybridExecutor(sim.DefaultPlatform(), specs, seed)
	if err != nil {
		return err
	}
	fmt.Printf("calibrated host rate: %.2f GFLOP/s\n\n", h.HostRate()/1e9)
	ss := &measure.SampleSet{Workload: "hybrid-tableI"}
	for _, pl := range sim.EnumeratePlacements(3) {
		pl := pl
		sample, err := measure.Collect("alg"+pl.String(), func() (float64, error) {
			return h.Run(pl)
		}, measure.Options{N: nMeas, Warmup: 1})
		if err != nil {
			return err
		}
		ss.Samples = append(ss.Samples, sample)
	}
	if err := report.SummaryTable(os.Stdout, ss.Names(), ss.Data()); err != nil {
		return err
	}
	_, fa, err := relperf.ClusterSamplesWith(ss, nil, relperf.ClusterSamplesOptions{
		Reps: reps, Seed: seed + 1, Workers: workers, Matrix: matrix,
	})
	if err != nil {
		return err
	}
	fmt.Println("\nFinal clustering (real kernels, modeled devices):")
	return report.FinalTable(os.Stdout, fa, ss.Names())
}
