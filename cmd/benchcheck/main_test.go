package main

import (
	"os"
	"path/filepath"
	"testing"
)

func write(t *testing.T, body string) string {
	t.Helper()
	p := filepath.Join(t.TempDir(), "bench.json")
	if err := os.WriteFile(p, []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
	return p
}

func TestCheckPassesAboveFloors(t *testing.T) {
	p := write(t, `{"gomaxprocs":1,"speedup_parallel":1.0,"speedup_matrix":3.1,"speedup_bootstrap":12.4,"serve_ns_per_op":3500,"sketch_bytes_per_measurement":2.4,"exact_bytes_per_measurement":18.1}`)
	if err := check(p, defaultMatrixFloor, defaultBootstrapFloor, defaultServeCeiling, defaultSketchCeiling); err != nil {
		t.Fatalf("healthy report rejected: %v", err)
	}
}

func TestCheckFailsBelowFloors(t *testing.T) {
	cases := map[string]string{
		"matrix regression":    `{"speedup_matrix":1.2,"speedup_bootstrap":9.9,"serve_ns_per_op":3500,"sketch_bytes_per_measurement":2.4,"exact_bytes_per_measurement":18.1}`,
		"bootstrap regression": `{"speedup_matrix":3.0,"speedup_bootstrap":1.1,"serve_ns_per_op":3500,"sketch_bytes_per_measurement":2.4,"exact_bytes_per_measurement":18.1}`,
		"serving regression":   `{"speedup_matrix":3.0,"speedup_bootstrap":9.9,"serve_ns_per_op":2500000,"sketch_bytes_per_measurement":2.4,"exact_bytes_per_measurement":18.1}`,
		"sketch regression":    `{"speedup_matrix":3.0,"speedup_bootstrap":9.9,"serve_ns_per_op":3500,"sketch_bytes_per_measurement":17.2,"exact_bytes_per_measurement":18.1}`,
		"sketch above exact":   `{"speedup_matrix":3.0,"speedup_bootstrap":9.9,"serve_ns_per_op":3500,"sketch_bytes_per_measurement":3.0,"exact_bytes_per_measurement":2.9}`,
		"stale report":         `{"speedup_parallel":1.0}`,
		"pre-serving report":   `{"speedup_matrix":3.0,"speedup_bootstrap":9.9}`,
		"pre-sketch report":    `{"speedup_matrix":3.0,"speedup_bootstrap":9.9,"serve_ns_per_op":3500}`,
		"garbage":              `{not json`,
	}
	for name, body := range cases {
		if err := check(write(t, body), defaultMatrixFloor, defaultBootstrapFloor, defaultServeCeiling, defaultSketchCeiling); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestCheckMissingFile(t *testing.T) {
	if err := check(filepath.Join(t.TempDir(), "absent.json"), 1, 1, 1, 1); err == nil {
		t.Fatal("missing file accepted")
	}
}

// TestCommittedReportSatisfiesFloors holds the repository's checked-in
// BENCH_engine.json to the same floors CI enforces on fresh numbers, so the
// committed snapshot can never drift below the gate.
func TestCommittedReportSatisfiesFloors(t *testing.T) {
	if err := check(filepath.Join("..", "..", "BENCH_engine.json"), defaultMatrixFloor, defaultBootstrapFloor, defaultServeCeiling, defaultSketchCeiling); err != nil {
		t.Fatalf("committed BENCH_engine.json fails the gate: %v", err)
	}
}
