// Command benchcheck gates CI on the engine's committed performance floors:
// it reads a BENCH_engine.json produced by `make bench` and fails (exit 1)
// when any tracked speedup falls below its floor, so a regression in the
// matrix pre-pass or the index-space bootstrap kernel turns the job red
// instead of silently shipping.
//
//	benchcheck [-matrix-floor 2.5] [-bootstrap-floor 1.5] [-serve-ceiling 1000000] [BENCH_engine.json]
//
// The default floors are the committed thresholds: the matrix path must
// keep ≥ 2.5x over the serial study even single-core, and the index-space
// bootstrap kernel must keep ≥ 1.5x over the value-space reference at
// N=500 (measured single-threaded, so the floor holds on any runner; the
// observed ratio is an order of magnitude above it — the floor is a
// tripwire, not a target). The parallel-study speedup is reported but not
// gated: it is ≈1 by construction on single-core runners. The serving
// path is gated the other way round — a ceiling: a cached
// GET /v1/studies/{fp} through the full handler stack (serve_ns_per_op)
// must stay under 1ms, some 300x above the observed latency, so only a
// pathological regression (an allocation storm in the obs middleware, a
// lock convoy in the store) trips it.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
)

// floors are the committed regression thresholds enforced by `make
// bench-check`; change them here, in one reviewed place, never ad hoc in CI.
const (
	defaultMatrixFloor    = 2.5
	defaultBootstrapFloor = 1.5
	defaultServeCeiling   = 1_000_000 // ns: cached study GET through the handler stack
	// defaultSketchCeiling bounds a sketch-mode result's wire bytes per
	// measurement (N=2000 per placement, k=256). The sketch summarizes in
	// O(k·log N) while the exact document grows O(N): observed ≈ 2–3
	// bytes/measurement vs ≈ 18 for exact, so 16 is a tripwire that also
	// enforces sketch < exact outright.
	defaultSketchCeiling = 16.0
)

// benchReport mirrors the fields of BENCH_engine.json this gate reads.
type benchReport struct {
	GoMaxProcs                int     `json:"gomaxprocs"`
	SpeedupParallel           float64 `json:"speedup_parallel"`
	SpeedupMatrix             float64 `json:"speedup_matrix"`
	SpeedupBootstrap          float64 `json:"speedup_bootstrap"`
	ServeNsPerOp              float64 `json:"serve_ns_per_op"`
	SketchBytesPerMeasurement float64 `json:"sketch_bytes_per_measurement"`
	ExactBytesPerMeasurement  float64 `json:"exact_bytes_per_measurement"`
}

func main() {
	matrixFloor := flag.Float64("matrix-floor", defaultMatrixFloor,
		"minimum serial/parallel-matrix study speedup")
	bootstrapFloor := flag.Float64("bootstrap-floor", defaultBootstrapFloor,
		"minimum old/new bootstrap WinRate speedup at N=500")
	serveCeiling := flag.Float64("serve-ceiling", defaultServeCeiling,
		"maximum cached-study GET latency in ns/op")
	sketchCeiling := flag.Float64("sketch-bytes-ceiling", defaultSketchCeiling,
		"maximum sketch-mode wire bytes per measurement")
	flag.Parse()

	path := "BENCH_engine.json"
	if flag.NArg() > 0 {
		path = flag.Arg(0)
	}
	if err := check(path, *matrixFloor, *bootstrapFloor, *serveCeiling, *sketchCeiling); err != nil {
		fmt.Fprintf(os.Stderr, "benchcheck: %v\n", err)
		os.Exit(1)
	}
}

func check(path string, matrixFloor, bootstrapFloor, serveCeiling, sketchCeiling float64) error {
	raw, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var r benchReport
	if err := json.Unmarshal(raw, &r); err != nil {
		return fmt.Errorf("parsing %s: %w", path, err)
	}
	if r.SpeedupMatrix == 0 || r.SpeedupBootstrap == 0 {
		return fmt.Errorf("%s lacks speedup_matrix/speedup_bootstrap — regenerate it with `make bench`", path)
	}
	if r.ServeNsPerOp == 0 {
		return fmt.Errorf("%s lacks serve_ns_per_op — regenerate it with `make bench`", path)
	}
	if r.SketchBytesPerMeasurement == 0 || r.ExactBytesPerMeasurement == 0 {
		return fmt.Errorf("%s lacks sketch/exact bytes per measurement — regenerate it with `make bench`", path)
	}
	fmt.Printf("benchcheck %s: matrix %.2fx (floor %.2fx), bootstrap %.2fx (floor %.2fx), serve %.0fns (ceiling %.0fns), sketch %.2fB/meas (ceiling %.2f, exact %.2f), parallel %.2fx (ungated), gomaxprocs=%d\n",
		path, r.SpeedupMatrix, matrixFloor, r.SpeedupBootstrap, bootstrapFloor,
		r.ServeNsPerOp, serveCeiling, r.SketchBytesPerMeasurement, sketchCeiling,
		r.ExactBytesPerMeasurement, r.SpeedupParallel, r.GoMaxProcs)
	if r.SpeedupMatrix < matrixFloor {
		return fmt.Errorf("matrix speedup %.2fx below the %.2fx floor", r.SpeedupMatrix, matrixFloor)
	}
	if r.SpeedupBootstrap < bootstrapFloor {
		return fmt.Errorf("bootstrap speedup %.2fx below the %.2fx floor", r.SpeedupBootstrap, bootstrapFloor)
	}
	if r.ServeNsPerOp > serveCeiling {
		return fmt.Errorf("cached-study GET %.0fns/op above the %.0fns ceiling", r.ServeNsPerOp, serveCeiling)
	}
	if r.SketchBytesPerMeasurement > sketchCeiling {
		return fmt.Errorf("sketch result %.2f bytes/measurement above the %.2f ceiling", r.SketchBytesPerMeasurement, sketchCeiling)
	}
	if r.SketchBytesPerMeasurement >= r.ExactBytesPerMeasurement {
		return fmt.Errorf("sketch result %.2f bytes/measurement not below the exact %.2f — the fixed-size summary premise failed",
			r.SketchBytesPerMeasurement, r.ExactBytesPerMeasurement)
	}
	return nil
}
