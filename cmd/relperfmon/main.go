// Command relperfmon supervises one child process — in the intended
// deployment, a relperfd worker — and keeps it alive across crashes:
//
//	relperfmon [flags] -- relperfd -addr 127.0.0.1:7101 ...
//
// Everything after "--" (or after the flags) is the child's argv. The
// supervisor restarts the child whenever it exits, with capped-exponential
// deterministically-jittered backoff; when -ready-url is set, each
// (re)start is gated on the URL answering 200 (point it at the worker's
// /v1/healthz) so a worker is never announced before it can serve. A child
// that burns through -restart-budget restarts inside -restart-window is a
// crash loop: relperfmon logs the verdict and exits 1 instead of forking
// forever. SIGINT/SIGTERM shut down cleanly — SIGTERM to the child, then
// SIGKILL after -shutdown-grace.
//
// With -metrics-addr set, relperfmon serves its own /v1/metrics and
// /v1/healthz so the supervisor itself is observable:
// supervise_restarts_total counts restarts and supervise_state exposes the
// lifecycle (0 idle, 1 starting, 2 ready, 3 backoff, 4 crash-loop,
// 5 stopped).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"

	"relperf/internal/obs"
	"relperf/internal/supervise"
)

func main() {
	name := flag.String("name", "", "label for logs and metrics (default: child binary name)")
	readyURL := flag.String("ready-url", "", "HTTP URL probed until 200 before the child counts as ready (e.g. the worker's /v1/healthz)")
	readyTimeout := flag.Duration("ready-timeout", supervise.DefaultReadyTimeout, "max wait for readiness per start; a child still not ready is killed and the start counts as failed")
	restartBudget := flag.Int("restart-budget", supervise.DefaultRestartBudget, "restarts tolerated per -restart-window before declaring a crash loop")
	restartWindow := flag.Duration("restart-window", supervise.DefaultRestartWindow, "sliding window the restart budget counts over")
	backoffBase := flag.Duration("backoff-base", supervise.DefaultBackoffBase, "first restart backoff window; doubles per consecutive failed start")
	backoffMax := flag.Duration("backoff-max", supervise.DefaultBackoffMax, "backoff window growth cap")
	shutdownGrace := flag.Duration("shutdown-grace", supervise.DefaultShutdownGrace, "wait between SIGTERM and SIGKILL at shutdown")
	metricsAddr := flag.String("metrics-addr", "", "serve the supervisor's own /v1/metrics and /v1/healthz here (empty: disabled)")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: relperfmon [flags] -- child-command [child-args...]\n\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() == 0 {
		flag.Usage()
		os.Exit(2)
	}

	logger := log.New(os.Stderr, "relperfmon: ", log.LstdFlags)
	o := obs.New()
	sup, err := supervise.New(supervise.Config{
		Name:          *name,
		Command:       flag.Args(),
		BackoffBase:   *backoffBase,
		BackoffMax:    *backoffMax,
		RestartBudget: *restartBudget,
		RestartWindow: *restartWindow,
		ReadyURL:      *readyURL,
		ReadyTimeout:  *readyTimeout,
		ShutdownGrace: *shutdownGrace,
		Logf:          logger.Printf,
		Obs:           o,
	})
	if err != nil {
		logger.Fatal(err)
	}

	if *metricsAddr != "" {
		mux := http.NewServeMux()
		mux.HandleFunc("GET /v1/healthz", func(w http.ResponseWriter, r *http.Request) {
			w.Header().Set("Content-Type", "application/json")
			fmt.Fprintf(w, "{\"status\":\"ok\",\"state\":%q}\n", sup.State())
		})
		mux.HandleFunc("GET /v1/metrics", func(w http.ResponseWriter, r *http.Request) {
			w.Header().Set("Content-Type", "text/plain; version=0.0.4")
			_ = o.Reg().WritePrometheus(w)
		})
		go func() {
			if err := http.ListenAndServe(*metricsAddr, mux); err != nil {
				logger.Printf("metrics server: %v", err)
			}
		}()
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := sup.Run(ctx); err != nil {
		if errors.Is(err, supervise.ErrCrashLoop) {
			logger.Printf("%v", err)
			os.Exit(1)
		}
		logger.Fatal(err)
	}
}
