// Command chaossoak runs the self-healing soak harness against a real
// relperfd grid: one coordinator plus supervised workers, a seeded
// schedule of kill / pause / slow-start faults injected mid-suite, and
// three invariants checked every round — zero failed client requests,
// byte-identity of every result against a single-node golden, and healthy
// rejoin (under a fresh process epoch) of every killed worker within the
// rejoin bound.
//
//	chaossoak -rounds 20 -workers 3 -seed 7
//
// With -binary unset, the harness builds relperfd from the enclosing
// module via `go build`. The report is printed as JSON on stdout; a
// violated invariant prints the offending seed and exits 1, and rerunning
// with that -seed replays the schedule exactly.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"os/exec"
	"os/signal"
	"path/filepath"
	"syscall"
	"time"

	"relperf/internal/chaos"
)

func main() {
	binary := flag.String("binary", "", "relperfd binary to soak (default: `go build` it from this module)")
	seed := flag.Uint64("seed", 0, "fault schedule seed (0: derive one from the clock and print it)")
	suiteSeed := flag.Uint64("suite-seed", 1, "study seed every node runs with")
	rounds := flag.Int("rounds", 5, "fault rounds to run")
	workers := flag.Int("workers", 2, "grid workers to supervise")
	rejoinBound := flag.Duration("rejoin-bound", 15*time.Second, "max time for a killed worker to be back healthy")
	verbose := flag.Bool("v", false, "stream the daemons' stderr too")
	flag.Parse()

	logger := log.New(os.Stderr, "chaossoak: ", log.LstdFlags)
	if *seed == 0 {
		*seed = uint64(time.Now().UnixNano())
		logger.Printf("no -seed given; using %d (pass -seed %d to replay)", *seed, *seed)
	}

	bin := *binary
	if bin == "" {
		dir, err := os.MkdirTemp("", "chaossoak")
		if err != nil {
			logger.Fatal(err)
		}
		defer os.RemoveAll(dir)
		bin = filepath.Join(dir, "relperfd")
		logger.Printf("building relperfd")
		cmd := exec.Command("go", "build", "-o", bin, "relperf/cmd/relperfd")
		cmd.Stderr = os.Stderr
		if err := cmd.Run(); err != nil {
			logger.Fatalf("go build relperf/cmd/relperfd: %v", err)
		}
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	cfg := chaos.Config{
		Binary:      bin,
		Seed:        *seed,
		SuiteSeed:   *suiteSeed,
		Rounds:      *rounds,
		Workers:     *workers,
		RejoinBound: *rejoinBound,
		Logf:        logger.Printf,
	}
	if *verbose {
		cfg.ChildOutput = os.Stderr
	}
	rep, err := chaos.Run(ctx, cfg)
	if rep != nil {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		_ = enc.Encode(rep)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "chaossoak: FAIL: %v\n", err)
		os.Exit(1)
	}
}
