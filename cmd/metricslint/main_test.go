package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// write drops a source file into the temp tree, creating parents.
func write(t *testing.T, root, rel, src string) {
	t.Helper()
	path := filepath.Join(root, rel)
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
}

func TestLintTreeFindsViolations(t *testing.T) {
	root := t.TempDir()
	write(t, root, "bad.go", `package p

func register(reg Registry) {
	reg.Counter("requests", "missing total suffix.")
	reg.CounterFunc("CamelCaseTotal", "not snake case.", nil)
	reg.Gauge("queue_depth_total", "gauge masquerading as counter.")
	reg.Histogram("request_latency", "no unit suffix.", nil)
}
`)
	got, err := lintTree(root)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 4 {
		t.Fatalf("violations = %d, want 4: %+v", len(got), got)
	}
	wantNames := []string{"requests", "CamelCaseTotal", "queue_depth_total", "request_latency"}
	for i, v := range got {
		if v.name != wantNames[i] {
			t.Errorf("violation %d names %q, want %q", i, v.name, wantNames[i])
		}
		if v.pos.Filename == "" || v.pos.Line == 0 {
			t.Errorf("violation %d has no position: %+v", i, v)
		}
	}
	if !strings.Contains(got[0].msg, "_total") {
		t.Errorf("counter violation message %q does not mention _total", got[0].msg)
	}
}

func TestLintTreeAcceptsConformingNames(t *testing.T) {
	root := t.TempDir()
	write(t, root, "good.go", `package p

func register(reg Registry) {
	reg.Counter("fleet_computes_total", "ok.")
	reg.GaugeFunc("grid_workers_live", "ok.", nil)
	reg.Histogram("http_request_seconds", "ok.", nil)
	reg.Histogram("wal_segment_bytes", "ok.", nil)
	other.Unrelated("NotAMetric")
	reg.Counter(dynamicName, "non-literal first arg is skipped.")
}
`)
	got, err := lintTree(root)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("violations = %+v, want none", got)
	}
}

func TestLintTreeSkipsTestFilesAndTestdata(t *testing.T) {
	root := t.TempDir()
	write(t, root, "a_test.go", `package p

func f(reg Registry) { reg.Counter("bad_name", "test files are exempt.") }
`)
	write(t, root, "testdata/fixture.go", `package p

func f(reg Registry) { reg.Counter("also_bad", "testdata is exempt.") }
`)
	got, err := lintTree(root)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("violations = %+v, want none", got)
	}
}
