// Command metricslint is the build-time metrics-name police: it walks the
// repository's Go sources for obs.Registry registrations — Counter,
// CounterFunc, Gauge, GaugeFunc, Histogram calls whose first argument is
// a string literal — and fails (exit 1) when a name breaks the naming
// contract the exposition and the README's metrics table rely on:
//
//   - every name is snake_case: [a-z][a-z0-9_]*
//   - counters end in _total (Prometheus counter convention)
//   - gauges do NOT end in _total (a gauge is not a counter)
//   - histograms end in a unit suffix: _seconds, _bytes or _ns
//
// Wired into `make vet` and CI, so a misnamed series never reaches the
// golden exposition test — it fails with a named file:line instead of a
// golden diff. Usage: metricslint [root] (default ".").
package main

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// registration methods of obs.Registry, by metric kind.
var methodKinds = map[string]string{
	"Counter":     "counter",
	"CounterFunc": "counter",
	"Gauge":       "gauge",
	"GaugeFunc":   "gauge",
	"Histogram":   "histogram",
}

var snakeCase = regexp.MustCompile(`^[a-z][a-z0-9_]*$`)

// histogramUnits are the accepted histogram unit suffixes.
var histogramUnits = []string{"_seconds", "_bytes", "_ns"}

// violation is one naming-contract breach, with enough position to fix it.
type violation struct {
	pos  token.Position
	name string
	msg  string
}

// lintFile checks every registration call in one parsed file.
func lintFile(fset *token.FileSet, f *ast.File) []violation {
	var out []violation
	ast.Inspect(f, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		kind, ok := methodKinds[sel.Sel.Name]
		if !ok || len(call.Args) == 0 {
			return true
		}
		lit, ok := call.Args[0].(*ast.BasicLit)
		if !ok || lit.Kind != token.STRING {
			return true
		}
		name, err := strconv.Unquote(lit.Value)
		if err != nil {
			return true
		}
		pos := fset.Position(lit.Pos())
		if !snakeCase.MatchString(name) {
			out = append(out, violation{pos, name, fmt.Sprintf("%s name is not snake_case ([a-z][a-z0-9_]*)", kind)})
			return true
		}
		switch kind {
		case "counter":
			if !strings.HasSuffix(name, "_total") {
				out = append(out, violation{pos, name, "counter name must end in _total"})
			}
		case "gauge":
			if strings.HasSuffix(name, "_total") {
				out = append(out, violation{pos, name, "gauge name must not end in _total (that suffix marks counters)"})
			}
		case "histogram":
			unitOK := false
			for _, u := range histogramUnits {
				if strings.HasSuffix(name, u) {
					unitOK = true
					break
				}
			}
			if !unitOK {
				out = append(out, violation{pos, name, fmt.Sprintf("histogram name must end in a unit suffix (%s)", strings.Join(histogramUnits, ", "))})
			}
		}
		return true
	})
	return out
}

// lintTree parses every non-test .go file under root (skipping testdata
// and hidden directories) and returns the violations, ordered by
// position. Test files may register deliberately odd fakes; the contract
// binds what ships.
func lintTree(root string) ([]violation, error) {
	fset := token.NewFileSet()
	var out []violation
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if name == "testdata" || (strings.HasPrefix(name, ".") && path != root) {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
			return nil
		}
		f, perr := parser.ParseFile(fset, path, nil, parser.SkipObjectResolution)
		if perr != nil {
			return fmt.Errorf("parsing %s: %w", path, perr)
		}
		out = append(out, lintFile(fset, f)...)
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].pos.Filename != out[j].pos.Filename {
			return out[i].pos.Filename < out[j].pos.Filename
		}
		return out[i].pos.Line < out[j].pos.Line
	})
	return out, nil
}

func main() {
	root := "."
	if len(os.Args) > 1 {
		root = os.Args[1]
	}
	violations, err := lintTree(root)
	if err != nil {
		fmt.Fprintf(os.Stderr, "metricslint: %v\n", err)
		os.Exit(2)
	}
	for _, v := range violations {
		fmt.Fprintf(os.Stderr, "%s: metric %q: %s\n", v.pos, v.name, v.msg)
	}
	if len(violations) > 0 {
		fmt.Fprintf(os.Stderr, "metricslint: %d violation(s)\n", len(violations))
		os.Exit(1)
	}
}
