// Benchmark harness: one benchmark per table/figure of the paper's
// evaluation, plus the ablations called out in DESIGN.md. Each benchmark
// reproduces its experiment during setup and reports the paper-shaped
// quantities through b.ReportMetric, so
//
//	go test -bench=. -benchmem
//
// regenerates every result. Absolute times differ from the authors' testbed
// (our substrate is a calibrated simulator); the reported metrics carry the
// shapes that must match (who wins, by what factor, where classes merge).
package relperf_test

import (
	"runtime"
	"testing"

	"relperf"
	"relperf/internal/compare"
	"relperf/internal/comparetest"
	"relperf/internal/core"
	"relperf/internal/decision"
	"relperf/internal/mat"
	"relperf/internal/predict"
	"relperf/internal/search"
	"relperf/internal/sim"
	"relperf/internal/stats"
	"relperf/internal/workload"
	"relperf/internal/xrand"
)

// E1 — Figure 1b: execution-time distributions of the two-loop code.
// Sub-benchmarks measure the simulation of one run per placement and report
// the mean and spread of the measured distribution.
func BenchmarkFigure1Distributions(b *testing.B) {
	plat := workload.Figure1Platform()
	prog := workload.Figure1(plat.Accel.PeakFlops)
	for _, name := range []string{"DD", "DA", "AD", "AA"} {
		b.Run(name, func(b *testing.B) {
			s, err := sim.NewSimulator(plat, 1)
			if err != nil {
				b.Fatal(err)
			}
			pl, _ := sim.ParsePlacement(name)
			sample, err := s.Sample(prog, pl, 500)
			if err != nil {
				b.Fatal(err)
			}
			sum := stats.Summarize(sample)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := s.Seconds(prog, pl); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(sum.Mean*1e3, "mean-ms")
			b.ReportMetric(sum.StdDev*1e3, "std-ms")
		})
	}
}

// E2 — Figure 2: the three-way bubble-sort trace of the 4-algorithm example.
func BenchmarkFigure2SortTrace(b *testing.B) {
	class := []int{2, 1, 2, 0} // DD, AA, DA, AD
	cmp := func(i, j int) (compare.Outcome, error) {
		switch {
		case class[i] < class[j]:
			return compare.Better, nil
		case class[i] > class[j]:
			return compare.Worse, nil
		default:
			return compare.Equivalent, nil
		}
	}
	res, err := core.Sort(4, cmp, core.SortOptions{RecordTrace: true})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.Sort(4, cmp, core.SortOptions{}); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(res.Comparisons), "comparisons")
	b.ReportMetric(float64(res.K()), "classes")
}

// E3 — Section III relative scores: repeated clustering of the Figure-1
// workload; reports the cluster count and the score mass of the borderline
// algorithm (AA) in the top cluster.
func BenchmarkRelativeScores(b *testing.B) {
	plat := workload.Figure1Platform()
	study, err := relperf.NewStudy(relperf.StudyConfig{
		Platform: plat,
		Program:  workload.Figure1(plat.Accel.PeakFlops),
		N:        500,
		Reps:     100,
		Seed:     2,
	})
	if err != nil {
		b.Fatal(err)
	}
	res, err := study.Run()
	if err != nil {
		b.Fatal(err)
	}
	// Index 3 is AA in the DD, DA, AD, AA enumeration of 2-task codes.
	var aaTop float64
	for i, n := range res.Names {
		if n == "algAA" && res.Clusters.K > 0 {
			aaTop = res.Clusters.Scores[i][0]
		}
	}
	data := res.Samples.Data()
	cmp := compare.NewBootstrap(3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cmp.Compare(data[0], data[1]); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res.Clusters.MeanK, "mean-classes")
	b.ReportMetric(aaTop, "AA-top-score")
}

// E4 — Table I: full pipeline over the 8 placements of the RLS code.
// Reports the final class of each placement (the table's rows) and the mean
// number of classes.
func BenchmarkTableIClustering(b *testing.B) {
	study, err := relperf.NewStudy(relperf.StudyConfig{
		Program: relperf.TableIProgram(10),
		N:       30,
		Reps:    100,
		Seed:    1,
	})
	if err != nil {
		b.Fatal(err)
	}
	res, err := study.Run()
	if err != nil {
		b.Fatal(err)
	}
	for _, p := range res.Profiles {
		b.Run(p.Name, func(b *testing.B) {
			s, err := sim.NewSimulator(relperf.DefaultPlatform(), 1)
			if err != nil {
				b.Fatal(err)
			}
			pl, _ := sim.ParsePlacement(p.Name)
			prog := relperf.TableIProgram(10)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := s.Seconds(prog, pl); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(p.Rank), "class")
			b.ReportMetric(p.Score, "score")
			b.ReportMetric(p.MeanSeconds*1e3, "mean-ms")
			b.ReportMetric(res.Clusters.MeanK, "mean-classes")
		})
	}
}

// E5 — Section IV decision sweep: the DDA-over-DDD speedup as the loop size
// n grows (the paper: 0.002 s and 1.05x at n=10, increasing with n).
func BenchmarkDecisionSweep(b *testing.B) {
	plat := relperf.DefaultPlatform()
	for _, n := range []int{5, 10, 20, 50, 100} {
		b.Run("n="+itoa(n), func(b *testing.B) {
			prog := workload.TableI(n, plat.Accel.PeakFlops)
			s, err := sim.NewSimulator(plat, 1)
			if err != nil {
				b.Fatal(err)
			}
			ddd, _ := sim.ParsePlacement("DDD")
			dda, _ := sim.ParsePlacement("DDA")
			tD, err := s.NominalSeconds(prog, ddd)
			if err != nil {
				b.Fatal(err)
			}
			tA, err := s.NominalSeconds(prog, dda)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := s.NominalSeconds(prog, dda); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(tD/tA, "speedup")
			b.ReportMetric((tD-tA)*1e3, "saved-ms")
		})
	}
}

// E6 — Section IV energy switching: a 200-job session under the
// high/low-water policy; reports switch count and fallback share.
func BenchmarkEnergySwitching(b *testing.B) {
	study, err := relperf.NewStudy(relperf.StudyConfig{
		Program: relperf.TableIProgram(10),
		N:       30,
		Reps:    50,
		Seed:    5,
	})
	if err != nil {
		b.Fatal(err)
	}
	res, err := study.Run()
	if err != nil {
		b.Fatal(err)
	}
	preferred, err := res.ProfileByName("DDD")
	if err != nil {
		b.Fatal(err)
	}
	fallback, err := decision.MostOffloading(res.Profiles, preferred.Rank)
	if err != nil {
		b.Fatal(err)
	}
	sw := &decision.Switcher{
		Preferred: preferred, Fallback: fallback,
		HighWater: 8, LowWater: 2, DissipationWatts: 30,
	}
	sess, err := sw.RunSession(200)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sw.RunSession(200); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(sess.Switches), "switches")
	b.ReportMetric(float64(sess.FallbackJobs)/200, "fallback-share")
	b.ReportMetric(sess.PeakEnergy, "peak-joules")
}

// A1 — comparator ablation: cluster the same Table-I measurements with
// every comparator; the bootstrap's class structure is the reference, the
// mean-threshold baseline under- or over-merges.
func BenchmarkComparatorAblation(b *testing.B) {
	s, err := sim.NewSimulator(relperf.DefaultPlatform(), 7)
	if err != nil {
		b.Fatal(err)
	}
	prog := relperf.TableIProgram(10)
	pls := sim.EnumeratePlacements(3)
	samples := make([][]float64, len(pls))
	for i, pl := range pls {
		samples[i], err = s.Sample(prog, pl, 30)
		if err != nil {
			b.Fatal(err)
		}
	}
	comparators := map[string]compare.Comparator{
		"bootstrap":   compare.NewBootstrap(11),
		"ks":          compare.KS{},
		"mannwhitney": compare.MannWhitney{},
		"mean":        compare.MeanThreshold{},
	}
	for name, cmp := range comparators {
		cmp := cmp
		b.Run(name, func(b *testing.B) {
			cf := func(i, j int) (compare.Outcome, error) { return cmp.Compare(samples[i], samples[j]) }
			res, err := core.Cluster(len(pls), cf, core.ClusterOptions{Reps: 50, Seed: 3})
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := cmp.Compare(samples[0], samples[1]); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(res.MeanK, "mean-classes")
		})
	}
}

// A2 — Rep sensitivity: relative-score stability as the number of
// clustering repetitions grows (the paper repeats Procedure 1 Rep times over
// the same measurements).
func BenchmarkRepSensitivity(b *testing.B) {
	s, err := sim.NewSimulator(relperf.DefaultPlatform(), 9)
	if err != nil {
		b.Fatal(err)
	}
	prog := relperf.TableIProgram(10)
	pls := sim.EnumeratePlacements(3)
	samples := make([][]float64, len(pls))
	for i, pl := range pls {
		samples[i], err = s.Sample(prog, pl, 30)
		if err != nil {
			b.Fatal(err)
		}
	}
	cmp := compare.NewBootstrap(13)
	cf := func(i, j int) (compare.Outcome, error) { return cmp.Compare(samples[i], samples[j]) }
	for _, reps := range []int{10, 100, 1000} {
		b.Run("rep="+itoa(reps), func(b *testing.B) {
			res, err := core.Cluster(len(pls), cf, core.ClusterOptions{Reps: reps, Seed: 3})
			if err != nil {
				b.Fatal(err)
			}
			// Spread of the DDD score mass across classes: fuzzier with
			// more reps resolving the borderline comparisons.
			var maxScore float64
			for _, sc := range res.Scores[0] { // index 0 = DDD
				if sc > maxScore {
					maxScore = sc
				}
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := core.Sort(len(pls), cf, core.SortOptions{}); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(res.MeanK, "mean-classes")
			b.ReportMetric(maxScore, "DDD-max-score")
		})
	}
}

// itoa avoids strconv for tiny positive ints in sub-benchmark names.
func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}

// E7 — Section V kernel variants: real host executions of the three
// equivalent RLS algorithms; reports the final class and mean of each.
func BenchmarkKernelVariants(b *testing.B) {
	ss, err := workload.MeasureKernelVariants(workload.KernelStudyConfig{
		Size: 64, Iters: 3, N: 20, Seed: 2,
	})
	if err != nil {
		b.Fatal(err)
	}
	_, fa, err := relperf.ClusterSamples(ss, nil, 50, 3)
	if err != nil {
		b.Fatal(err)
	}
	for i, name := range ss.Names() {
		i, name := i, name
		b.Run(name, func(b *testing.B) {
			variants := workload.RLSVariants()
			v := variants[i]
			rngSize := 64
			A := matRand(b, rngSize)
			B := matRand(b, rngSize)
			b.ResetTimer()
			for k := 0; k < b.N; k++ {
				if _, err := v.Solve(A, B, 0.5); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(fa.Rank[i]), "class")
			b.ReportMetric(stats.Mean(ss.Samples[i].Seconds)*1e3, "mean-ms")
		})
	}
}

func matRand(b *testing.B, n int) *mat.Mat {
	b.Helper()
	return mat.Rand(xrand.New(uint64(n)), n, n)
}

// A3 — guided search vs exhaustive: measurements needed to isolate the best
// placement with racing elimination vs measuring all 8 placements fully.
func BenchmarkGuidedSearch(b *testing.B) {
	plat := relperf.DefaultPlatform()
	prog := relperf.TableIProgram(10)
	s, err := sim.NewSimulator(plat, 5)
	if err != nil {
		b.Fatal(err)
	}
	var arms []search.Arm
	for _, pl := range sim.EnumeratePlacements(3) {
		pl := pl
		arms = append(arms, search.Arm{
			Name:    pl.String(),
			Measure: func() (float64, error) { return s.Seconds(prog, pl) },
		})
	}
	res, err := search.Race(arms, compare.NewBootstrap(6), search.Config{RoundSize: 10, MaxRounds: 6})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := search.Race(arms, compare.NewBootstrap(uint64(i)), search.Config{RoundSize: 10, MaxRounds: 6}); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(res.TotalMeasurements), "race-measurements")
	b.ReportMetric(float64(8*res.Rounds*10), "exhaustive-measurements")
}

// A4 — predictor quality: pairwise vs triplet training on the Table-I
// clusters, evaluated on a held-out workload.
func BenchmarkPredictorAblation(b *testing.B) {
	plat := relperf.DefaultPlatform()
	study, err := relperf.NewStudy(relperf.StudyConfig{
		Program: relperf.TableIProgram(10), N: 30, Reps: 50, Seed: 1,
	})
	if err != nil {
		b.Fatal(err)
	}
	res, err := study.Run()
	if err != nil {
		b.Fatal(err)
	}
	prog := relperf.TableIProgram(10)
	var train []predict.Example
	for i, pl := range sim.EnumeratePlacements(3) {
		x, err := predict.Features(plat, prog, pl)
		if err != nil {
			b.Fatal(err)
		}
		train = append(train, predict.Example{X: x, Class: res.Final.Rank[i], Name: pl.String()})
	}
	for _, mode := range []struct {
		name    string
		triplet bool
	}{{"pairwise", false}, {"triplet", true}} {
		mode := mode
		b.Run(mode.name, func(b *testing.B) {
			var tau float64
			for i := 0; i < b.N; i++ {
				trained, err := predict.Train(train, predict.TrainConfig{Seed: uint64(i), Triplet: mode.triplet})
				if err != nil {
					b.Fatal(err)
				}
				ev, err := predict.Evaluate(trained, train)
				if err != nil {
					b.Fatal(err)
				}
				tau = ev.KendallTau
			}
			b.ReportMetric(tau, "train-tau")
		})
	}
}

// P1 — the parallel study engine: the full Table-I-sized pipeline (P=8
// placements, N=30 measurements, Rep=100 clustering repetitions) at one
// worker vs the full machine. The determinism contract makes the two
// configurations produce bit-identical Results, so the comparison is pure
// wall-clock. The workload body lives in benchStudy (benchjson_test.go),
// shared with the BENCH_engine.json emitter so both measure the same thing.
func BenchmarkEngineSerialVsParallel(b *testing.B) {
	for _, cfg := range []struct {
		name    string
		workers int
		matrix  bool
	}{
		{"serial", 1, false},
		{"parallel", 0, false}, // 0 = GOMAXPROCS
		{"parallel-matrix", 0, true},
	} {
		b.Run(cfg.name, func(b *testing.B) {
			benchStudy(cfg.workers, cfg.matrix)(b)
			b.ReportMetric(float64(runtime.GOMAXPROCS(0)), "gomaxprocs")
		})
	}
}

// P2 — comparator hot path: Bootstrap.Compare over two N=30 samples must be
// allocation-free after its scratch warms up (run with -benchmem).
func BenchmarkBootstrapCompareAllocs(b *testing.B) {
	rng := xrand.New(1)
	a := make([]float64, 30)
	c := make([]float64, 30)
	for i := range a {
		a[i] = rng.LogNormal(0, 0.1)
		c[i] = 1.1 * rng.LogNormal(0, 0.1)
	}
	cmp := compare.NewBootstrap(2)
	if _, err := cmp.Compare(a, c); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cmp.Compare(a, c); err != nil {
			b.Fatal(err)
		}
	}
}

// winRateSamples builds two overlapping log-normal samples of size n for
// the bootstrap kernel benchmarks.
func winRateSamples(n int) (a, b []float64) {
	rng := xrand.New(uint64(n))
	a = make([]float64, n)
	b = make([]float64, n)
	for i := range a {
		a[i] = rng.LogNormal(0, 0.2)
		b[i] = 1.05 * rng.LogNormal(0, 0.2)
	}
	return a, b
}

// benchWinRateNew exercises the shipped index-space kernel: sort-once base
// samples, counted index resamples, quantiles off the sorted base. The
// kernel cache is warmed before the timer so the loop shows the
// steady-state (zero-allocation) cost.
func benchWinRateNew(n int) func(b *testing.B) {
	return func(b *testing.B) {
		x, y := winRateSamples(n)
		cmp := compare.NewBootstrap(1)
		if _, err := cmp.WinRate(x, y); err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := cmp.WinRate(x, y); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// benchWinRateOld exercises the retired value-space kernel (kept as the
// reference implementation in internal/comparetest): every resample
// materialized and insertion-sorted, O(N²) per round.
func benchWinRateOld(n int) func(b *testing.B) {
	return func(b *testing.B) {
		x, y := winRateSamples(n)
		rng := xrand.New(1)
		bufA := make([]float64, n)
		bufB := make([]float64, n)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			comparetest.ReferenceWinRate(rng, x, y, bufA, bufB,
				compare.DefaultQuantiles, compare.DefaultRounds)
		}
	}
}

// P4 — the bootstrap comparator kernel, old vs new, across the sample sizes
// the spec schema admits. The BENCH_engine.json emitter reuses the same
// closures and derives speedup_bootstrap from the N=500 pair.
func BenchmarkWinRate(b *testing.B) {
	for _, n := range []int{50, 500, 5000} {
		b.Run("N="+itoa(n)+"/old", benchWinRateOld(n))
		b.Run("N="+itoa(n)+"/new", benchWinRateNew(n))
	}
}

// P3 — simulator hot path: Seconds must be allocation-free after warm-up
// (run with -benchmem).
func BenchmarkSimulatorSecondsAllocs(b *testing.B) {
	s, err := sim.NewSimulator(relperf.DefaultPlatform(), 1)
	if err != nil {
		b.Fatal(err)
	}
	prog := relperf.TableIProgram(10)
	pl, _ := sim.ParsePlacement("DDA")
	if _, err := s.Seconds(prog, pl); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Seconds(prog, pl); err != nil {
			b.Fatal(err)
		}
	}
}
