package relperf

// Tests of the relperf/grid-task/v1 worker task envelope and the
// coordinator-side result verification it enables.

import (
	"bytes"
	"strings"
	"testing"
)

func TestGridTaskWireRoundTrip(t *testing.T) {
	spec := []byte(`{"workload":"tableI","loop_n":2,"measurements":6,"reps":10}`)
	fp, err := Fingerprint(mustSpecConfig(t, spec))
	if err != nil {
		t.Fatal(err)
	}
	seed, err := StudySeed(7, fp)
	if err != nil {
		t.Fatal(err)
	}
	task := GridTask{Fingerprint: fp, Seed: seed, Spec: spec}
	b, err := task.MarshalWire()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(b, []byte(`"schema":"relperf/grid-task/v1"`)) {
		t.Fatalf("envelope missing schema: %s", b)
	}
	got, err := UnmarshalGridTask(b)
	if err != nil {
		t.Fatal(err)
	}
	if got.Fingerprint != fp || got.Seed != seed || !bytes.Equal(got.Spec, spec) {
		t.Fatalf("round trip lost fields: %+v", got)
	}
	// Marshal is canonical: a second marshal of the decoded form is
	// byte-identical.
	again, err := got.MarshalWire()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(again, b) {
		t.Fatal("envelope encoding is not a fixed point")
	}
}

func TestUnmarshalGridTaskRejects(t *testing.T) {
	for _, bad := range []string{
		`{}`,
		`{"schema":"relperf/grid-task/v2","fingerprint":"ab"}`,
		`{"schema":"relperf/grid-task/v1"}`,
		`{"schema":"relperf/grid-task/v1","fingerprint":"ab","bogus":1}`,
		`{broken`,
	} {
		if _, err := UnmarshalGridTask([]byte(bad)); err == nil {
			t.Errorf("envelope %s decoded without error", bad)
		}
	}
}

// TestVerifyGridResult: a genuine result verifies; tampered, non-canonical
// or garbage replies are rejected before they could enter a store.
func TestVerifyGridResult(t *testing.T) {
	spec := []byte(`{"workload":"tableI","loop_n":2,"measurements":5,"reps":8}`)
	cfg := mustSpecConfig(t, spec)
	study, fp, err := NewKeyedStudy(cfg, 7)
	if err != nil {
		t.Fatal(err)
	}
	res, err := study.Run()
	if err != nil {
		t.Fatal(err)
	}
	blob, err := res.MarshalWire()
	if err != nil {
		t.Fatal(err)
	}
	seed, _ := StudySeed(7, fp)
	task := GridTask{Fingerprint: fp, Seed: seed, Spec: spec}

	if _, err := VerifyGridResult(task, blob); err != nil {
		t.Fatalf("genuine result rejected: %v", err)
	}
	if _, err := VerifyGridResult(task, []byte(`{"schema":"nope"}`)); err == nil {
		t.Fatal("garbage reply verified")
	}
	// Valid JSON, same document, different byte sequence (extra
	// whitespace): semantically equal but non-canonical must be rejected.
	spaced := bytes.Replace(blob, []byte(`","`), []byte(`", "`), 1)
	if bytes.Equal(spaced, blob) {
		t.Fatal("test setup: no substitution happened")
	}
	if _, err := VerifyGridResult(task, spaced); err == nil {
		t.Fatal("non-canonical reply verified")
	} else if !strings.Contains(err.Error(), "not canonical") {
		t.Fatalf("err = %v", err)
	}
}

// mustSpecConfig resolves a wire spec into a StudyConfig.
func mustSpecConfig(t *testing.T, spec []byte) StudyConfig {
	t.Helper()
	sp, err := ParseStudySpec(spec)
	if err != nil {
		t.Fatal(err)
	}
	cfg, err := sp.Config()
	if err != nil {
		t.Fatal(err)
	}
	return cfg
}
