package relperf

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

// declTableI is the declarative twin of {"workload":"tableI","loop_n":2}:
// the same three RLS loops, resolved against the same paper testbed.
const declTableI = `{
	"program": {
		"name": "tableI-n2",
		"tasks": [
			{"name": "L1", "kernel": "rls", "size": 50, "iters": 2, "lambda": 0.5},
			{"name": "L2", "kernel": "rls", "size": 75, "iters": 2, "lambda": 0.5},
			{"name": "L3", "kernel": "rls", "size": 300, "iters": 2, "lambda": 0.5}
		]
	},
	"platform": {"preset": "xeon-p100"},
	"measurements": 6,
	"reps": 10
}`

// declFig1 is the declarative twin of {"workload":"fig1"}.
const declFig1 = `{
	"program": {
		"name": "figure1",
		"tasks": [
			{"name": "L1", "kernel": "gemm", "size": 320, "iters": 25},
			{"name": "L2", "kernel": "gemm", "size": 160, "iters": 200, "cache_penalty_seconds": 0.0007}
		]
	},
	"platform": {"preset": "fig1"},
	"measurements": 6,
	"reps": 10
}`

// TestDeclarativeSpecMatchesNamedWorkload is the schema's core property: a
// declarative spec that describes a built-in workload exactly produces the
// same canonical fingerprint and bit-identical results as the named
// workload — at any worker count. This is what lets clients migrate from
// named to declarative specs (or mix them) without splitting the fleet
// cache or changing a single served byte.
func TestDeclarativeSpecMatchesNamedWorkload(t *testing.T) {
	cases := []struct {
		name        string
		named, decl string
	}{
		{"tableI", `{"workload":"tableI","loop_n":2,"measurements":6,"reps":10}`, declTableI},
		{"fig1", `{"workload":"fig1","measurements":6,"reps":10}`, declFig1},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			named, err := ParseStudySpec([]byte(tc.named))
			if err != nil {
				t.Fatal(err)
			}
			decl, err := ParseStudySpec([]byte(tc.decl))
			if err != nil {
				t.Fatal(err)
			}
			cfgN, err := named.Config()
			if err != nil {
				t.Fatal(err)
			}
			cfgD, err := decl.Config()
			if err != nil {
				t.Fatal(err)
			}
			fpN, err := Fingerprint(cfgN)
			if err != nil {
				t.Fatal(err)
			}
			fpD, err := Fingerprint(cfgD)
			if err != nil {
				t.Fatal(err)
			}
			if fpN != fpD {
				t.Fatalf("fingerprints differ: named %s, declarative %s", fpN, fpD)
			}

			var blobs [][]byte
			for _, cfg := range []StudyConfig{cfgN, cfgD} {
				for _, workers := range []int{1, 8} {
					cfg.Seed = 9
					cfg.Workers = workers
					study, err := NewStudy(cfg)
					if err != nil {
						t.Fatal(err)
					}
					res, err := study.Run()
					if err != nil {
						t.Fatal(err)
					}
					b, err := res.MarshalWire()
					if err != nil {
						t.Fatal(err)
					}
					blobs = append(blobs, b)
				}
			}
			for i := 1; i < len(blobs); i++ {
				if !bytes.Equal(blobs[0], blobs[i]) {
					t.Fatalf("run %d produced different bytes (named/declarative × Workers=1/8 must all agree)", i)
				}
			}
		})
	}
}

// TestSpecValidationErrors is the table of rejections: every out-of-range
// value, kernel mix-up and unknown name must be an explicit error with a
// recognizable message — never a silent default.
func TestSpecValidationErrors(t *testing.T) {
	cases := []struct {
		name, spec, want string
	}{
		{"neither workload nor program", `{}`, "exactly one of"},
		{"both workload and program", `{"workload":"tableI","program":{"tasks":[{"name":"L1","kernel":"raw"}]}}`, "exactly one of"},
		{"unknown workload", `{"workload":"nope"}`, "unknown workload"},
		{"negative loop_n", `{"workload":"tableI","loop_n":-1}`, "loop_n"},
		{"loop_n with program", `{"loop_n":3,"program":{"tasks":[{"name":"L1","kernel":"raw"}]}}`, "loop_n"},
		{"loop_n with fig1", `{"workload":"fig1","loop_n":3}`, "loop_n"},
		{"negative measurements", `{"workload":"tableI","measurements":-5}`, "measurements"},
		{"negative warmup", `{"workload":"tableI","warmup":-1}`, "warmup"},
		{"negative reps", `{"workload":"tableI","reps":-10}`, "reps"},
		{"negative matrix_trials", `{"workload":"tableI","matrix":true,"matrix_trials":-2}`, "matrix_trials"},
		{"matrix_trials without matrix", `{"workload":"tableI","matrix_trials":8}`, "matrix"},
		{"unknown comparator", `{"workload":"tableI","comparator":"psychic"}`, "unknown comparator"},
		{"bad placement", `{"workload":"tableI","placements":["DXA"]}`, "placement"},
		{"placement length mismatch", `{"workload":"fig1","placements":["DDA"]}`, "slots"},
		{"unknown field", `{"workload":"tableI","bogus":1}`, "bogus"},
		{"trailing garbage", `{"workload":"tableI"} {"again":true}`, "trailing"},
		{"empty program", `{"program":{"tasks":[]}}`, "no tasks"},
		{"task without name", `{"program":{"tasks":[{"kernel":"raw"}]}}`, "name is required"},
		{"task without kernel", `{"program":{"tasks":[{"name":"L1"}]}}`, "kernel is required"},
		{"unknown kernel", `{"program":{"tasks":[{"name":"L1","kernel":"fft"}]}}`, "unknown kernel"},
		{"rls without size", `{"program":{"tasks":[{"name":"L1","kernel":"rls","iters":5}]}}`, "size"},
		{"rls without iters", `{"program":{"tasks":[{"name":"L1","kernel":"rls","size":50}]}}`, "iters"},
		{"rls with raw fields", `{"program":{"tasks":[{"name":"L1","kernel":"rls","size":50,"iters":5,"flops":100}]}}`, "raw"},
		{"rls with cache penalty", `{"program":{"tasks":[{"name":"L1","kernel":"rls","size":50,"iters":5,"cache_penalty_seconds":0.1}]}}`, "cache_penalty_seconds"},
		{"gemm with lambda", `{"program":{"tasks":[{"name":"L1","kernel":"gemm","size":50,"iters":5,"lambda":0.5}]}}`, "lambda"},
		{"raw with size", `{"program":{"tasks":[{"name":"L1","kernel":"raw","size":50}]}}`, "size/iters/lambda"},
		{"raw negative flops", `{"program":{"tasks":[{"name":"L1","kernel":"raw","flops":-1}]}}`, ">= 0"},
		{"raw efficiency above one", `{"program":{"tasks":[{"name":"L1","kernel":"raw","edge_eff":1.5}]}}`, "[0,1]"},
		{"platform preset with components", `{"workload":"tableI","platform":{"preset":"xeon-p100","link":{"preset":"wifi"}}}`, "excludes"},
		{"unknown platform preset", `{"workload":"tableI","platform":{"preset":"cray"}}`, "unknown platform preset"},
		{"unknown device preset", `{"workload":"tableI","platform":{"edge":{"preset":"abacus"}}}`, "unknown device preset"},
		{"device preset wrong slot", `{"workload":"tableI","platform":{"edge":{"preset":"p100"}}}`, "slot"},
		{"device preset with params", `{"workload":"tableI","platform":{"edge":{"preset":"xeon-8160-core","threads":4}}}`, "excludes"},
		{"device without name", `{"workload":"tableI","platform":{"edge":{"peak_flops":1e9,"mem_bandwidth":1e9}}}`, "name is required"},
		{"device zero peak", `{"workload":"tableI","platform":{"edge":{"name":"d","mem_bandwidth":1e9}}}`, "peak_flops"},
		{"unknown link preset", `{"workload":"tableI","platform":{"link":{"preset":"carrier-pigeon"}}}`, "unknown link preset"},
		{"link zero bandwidth", `{"workload":"tableI","platform":{"link":{"name":"l"}}}`, "bandwidth"},
		{"unknown noise kind", `{"workload":"tableI","platform":{"link":{"name":"l","bandwidth":1e9,"noise":{"kind":"fractal"}}}}`, "unknown noise kind"},
		{"noise without kind", `{"workload":"tableI","platform":{"link":{"name":"l","bandwidth":1e9,"noise":{"sigma":0.1}}}}`, "kind is required"},
		{"lognormal zero sigma", `{"workload":"tableI","platform":{"link":{"name":"l","bandwidth":1e9,"noise":{"kind":"lognormal"}}}}`, "sigma"},
		{"gaussian bad floor", `{"workload":"tableI","platform":{"link":{"name":"l","bandwidth":1e9,"noise":{"kind":"gaussian","rel":0.1,"floor":1.5}}}}`, "floor"},
		{"spiky zero alpha", `{"workload":"tableI","platform":{"link":{"name":"l","bandwidth":1e9,"noise":{"kind":"spiky","p":0.1,"scale":0.1}}}}`, "alpha"},
		{"lognormal with base", `{"workload":"tableI","platform":{"link":{"name":"l","bandwidth":1e9,"noise":{"kind":"lognormal","sigma":0.1,"base":{"kind":"none"}}}}}`, "base"},
		{"none with params", `{"workload":"tableI","platform":{"link":{"name":"l","bandwidth":1e9,"noise":{"kind":"none","sigma":0.1}}}}`, "no parameters"},
		{"gaussian with foreign sigma", `{"workload":"tableI","platform":{"link":{"name":"l","bandwidth":1e9,"noise":{"kind":"gaussian","rel":0.1,"sigma":0.5}}}}`, "another noise kind"},
		{"shift with foreign alpha", `{"workload":"tableI","platform":{"link":{"name":"l","bandwidth":1e9,"noise":{"kind":"shift","shift":0.01,"alpha":1.5}}}}`, "another noise kind"},
		{"negative energy", `{"workload":"tableI","platform":{"edge":{"name":"d","peak_flops":1e9,"mem_bandwidth":1e9,"energy":{"idle_watts":-5}}}}`, "energy"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ParseStudySpec([]byte(tc.spec))
			if err == nil {
				t.Fatalf("spec accepted: %s", tc.spec)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

// TestSpecCountNotation: counts accept every notation that denotes an
// exact int64 — plain literals over the full range, exponent forms even
// above 2^53 — and reject fractions and overflow instead of rounding.
func TestSpecCountNotation(t *testing.T) {
	parse := func(lit string) (int64, error) {
		sp, err := ParseStudySpec([]byte(
			`{"program":{"tasks":[{"name":"L1","kernel":"raw","flops":` + lit + `}]}}`))
		if err != nil {
			return 0, err
		}
		return int64(sp.Program.Tasks[0].Flops), nil
	}
	for lit, want := range map[string]int64{
		"4e8":                 4e8,
		"1e16":                1e16, // exact above 2^53
		"2.5e9":               25e8,
		"9223372036854775807": 1<<63 - 1, // full int64 range as a plain literal
	} {
		got, err := parse(lit)
		if err != nil || got != want {
			t.Errorf("flops %s: got %d, %v; want %d", lit, got, err, want)
		}
	}
	for _, lit := range []string{"1.5", "1e19", "9.3e18", `"40"`, "NaN"} {
		if _, err := parse(lit); err == nil {
			t.Errorf("flops %s accepted", lit)
		}
	}
}

// TestSpecTooManyTasks: placement enumeration grows as 2^tasks, so the
// schema bounds the chain length explicitly.
func TestSpecTooManyTasks(t *testing.T) {
	var sb strings.Builder
	sb.WriteString(`{"program":{"tasks":[`)
	for i := 0; i <= MaxSpecTasks; i++ {
		if i > 0 {
			sb.WriteString(",")
		}
		sb.WriteString(`{"name":"T","kernel":"raw","flops":1}`)
	}
	sb.WriteString(`]}}`)
	if _, err := ParseStudySpec([]byte(sb.String())); err == nil || !strings.Contains(err.Error(), "max") {
		t.Fatalf("oversized task chain: err = %v", err)
	}
}

// TestSpecNoiseNestingDepth: base chains must terminate.
func TestSpecNoiseNestingDepth(t *testing.T) {
	noise := `{"kind":"none"}`
	for i := 0; i < 2*maxNoiseDepth; i++ {
		noise = `{"kind":"shift","shift":0.001,"base":` + noise + `}`
	}
	spec := `{"workload":"tableI","platform":{"link":{"name":"l","bandwidth":1e9,"noise":` + noise + `}}}`
	if _, err := ParseStudySpec([]byte(spec)); err == nil || !strings.Contains(err.Error(), "nest") {
		t.Fatalf("deep noise nesting: err = %v", err)
	}
}

// TestSpecCustomPlatformResolution: an explicit device/link description
// resolves into a runnable, fingerprintable study, and the fingerprint is a
// pure function of the spec content (field order and re-parsing don't
// matter).
func TestSpecCustomPlatformResolution(t *testing.T) {
	const spec = `{
		"program": {
			"name": "pipeline",
			"tasks": [
				{"name": "S1", "kernel": "raw", "flops": 4e8, "launches": 12, "host_in_bytes": 2e6, "host_out_bytes": 1e6, "transfers": 3, "accel_eff": 0.05},
				{"name": "S2", "kernel": "gemm", "size": 96, "iters": 40}
			]
		},
		"platform": {
			"edge": {"preset": "raspberry-pi-4"},
			"accel": {
				"name": "jetson-like",
				"peak_flops": 5e11,
				"mem_bandwidth": 6e10,
				"launch_overhead_ns": 9000,
				"task_overhead_ns": 400000,
				"noise": {"kind": "spiky", "p": 0.02, "scale": 0.08, "alpha": 1.5, "base": {"kind": "lognormal", "sigma": 0.12}},
				"energy": {"idle_watts": 4, "active_watts": 17, "joules_per_byte": 2e-10}
			},
			"link": {"preset": "wifi"}
		},
		"measurements": 5,
		"reps": 8
	}`
	sp, err := ParseStudySpec([]byte(spec))
	if err != nil {
		t.Fatal(err)
	}
	cfg, err := sp.Config()
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Platform.Edge.Name != "raspberry-pi-4" || cfg.Platform.Accel.Name != "jetson-like" ||
		cfg.Platform.Link.Name != "wifi" {
		t.Fatalf("platform resolved to %s/%s/%s", cfg.Platform.Edge.Name, cfg.Platform.Accel.Name, cfg.Platform.Link.Name)
	}
	fp1, err := Fingerprint(cfg)
	if err != nil {
		t.Fatal(err)
	}

	// Re-marshal the parsed spec (canonical field order) and re-parse: the
	// fingerprint must not move.
	canon, err := json.Marshal(sp)
	if err != nil {
		t.Fatal(err)
	}
	sp2, err := ParseStudySpec(canon)
	if err != nil {
		t.Fatalf("canonical re-parse: %v", err)
	}
	cfg2, err := sp2.Config()
	if err != nil {
		t.Fatal(err)
	}
	fp2, err := Fingerprint(cfg2)
	if err != nil {
		t.Fatal(err)
	}
	if fp1 != fp2 {
		t.Fatalf("fingerprint moved across re-marshal: %s vs %s", fp1, fp2)
	}

	// And the study actually runs end to end.
	cfg.Seed = 3
	study, err := NewStudy(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := study.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Profiles) != 4 { // 2 tasks → 4 placements
		t.Fatalf("%d profiles for a 2-task program", len(res.Profiles))
	}
}

// TestSpecNamedWorkloadPlatformOverride: a named workload on alternative
// hardware (one of the paper's other device-accelerator settings) resolves
// and fingerprints differently from the testbed default.
func TestSpecNamedWorkloadPlatformOverride(t *testing.T) {
	base, err := ParseStudySpec([]byte(`{"workload":"tableI","loop_n":2}`))
	if err != nil {
		t.Fatal(err)
	}
	override, err := ParseStudySpec([]byte(`{"workload":"tableI","loop_n":2,
		"platform":{"edge":{"preset":"raspberry-pi-4"},"link":{"preset":"wifi"}}}`))
	if err != nil {
		t.Fatal(err)
	}
	cfgB, err := base.Config()
	if err != nil {
		t.Fatal(err)
	}
	cfgO, err := override.Config()
	if err != nil {
		t.Fatal(err)
	}
	if cfgO.Platform.Edge.Name != "raspberry-pi-4" || cfgO.Platform.Accel.Name != cfgB.Platform.Accel.Name {
		t.Fatalf("override platform = %s/%s", cfgO.Platform.Edge.Name, cfgO.Platform.Accel.Name)
	}
	fpB, err := Fingerprint(cfgB)
	if err != nil {
		t.Fatal(err)
	}
	fpO, err := Fingerprint(cfgO)
	if err != nil {
		t.Fatal(err)
	}
	if fpB == fpO {
		t.Fatal("different platforms share a fingerprint")
	}
}

// TestNewSuiteFromSpecs: the local bridge from wire specs to the suite
// layer dedupes equal specs exactly like equal configs.
func TestNewSuiteFromSpecs(t *testing.T) {
	specs := []StudySpec{
		{Workload: "tableI", LoopN: 2, Measurements: 5, Reps: 8},
		{Workload: "tableI", LoopN: 2, Measurements: 5, Reps: 8},
	}
	suite, err := NewSuiteFromSpecs(specs, 7, 2)
	if err != nil {
		t.Fatal(err)
	}
	if suite.Len() != 1 {
		t.Fatalf("suite.Len() = %d for two equal specs", suite.Len())
	}
	fps := suite.Fingerprints()
	if len(fps) != 2 || fps[0] != fps[1] {
		t.Fatalf("fingerprints = %v", fps)
	}
	if _, err := NewSuiteFromSpecs(nil, 7, 2); err == nil {
		t.Fatal("empty spec list accepted")
	}
}
