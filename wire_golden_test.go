package relperf

// Golden-file wire tests: committed fixtures pin the exact bytes of the two
// wire formats — the declarative study-spec schema and the
// relperf/result/v1 result document. Marshalling must be byte-identical to
// the goldens and every golden must round-trip, so any silent wire-format
// drift (a renamed field, a float formatting change, a reordered struct)
// fails loudly here. Regenerate intentionally with:
//
//	go test -run TestGolden -update .
//
// A result-golden change means every cached fleet result is stale: bump
// fingerprintVersion in suite.go in the same commit.

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite the golden wire fixtures")

const (
	goldenSpecPath         = "testdata/spec_golden.json"
	goldenFingerprintPath  = "testdata/spec_golden.fingerprint"
	goldenResultPath       = "testdata/result_v1_golden.json"
	goldenSketchSpecPath   = "testdata/spec_sketch_golden.json"
	goldenSketchFPPath     = "testdata/spec_sketch_golden.fingerprint"
	goldenSketchResultPath = "testdata/result_sketch_golden.json"
	goldenSeed             = 42
)

// goldenSpec is the fixture source: a declarative spec exercising the whole
// schema surface (custom program with all three kernels, explicit devices,
// noise stack, energy, link preset, placements, engine fields) while
// staying cheap enough to run on every test invocation.
const goldenSpec = `{
	"program": {
		"name": "golden-pipeline",
		"tasks": [
			{"name": "G1", "kernel": "rls", "size": 40, "iters": 2, "lambda": 0.5},
			{"name": "G2", "kernel": "gemm", "size": 64, "iters": 10, "cache_penalty_seconds": 0.0002},
			{"name": "G3", "kernel": "raw", "flops": 3e8, "mem_bytes": 1e6, "launches": 8,
			 "host_in_bytes": 2e6, "host_out_bytes": 1e6, "transfers": 3, "edge_eff": 0.9, "accel_eff": 0.04}
		]
	},
	"platform": {
		"edge": {"preset": "raspberry-pi-4"},
		"accel": {
			"name": "golden-accel",
			"peak_flops": 6e11,
			"mem_bandwidth": 8e10,
			"launch_overhead_ns": 8000,
			"task_overhead_ns": 300000,
			"noise": {"kind": "spiky", "p": 0.02, "scale": 0.06, "alpha": 1.5, "base": {"kind": "lognormal", "sigma": 0.1}},
			"energy": {"idle_watts": 5, "active_watts": 20, "joules_per_byte": 1e-10}
		},
		"link": {"preset": "wifi"}
	},
	"measurements": 5,
	"warmup": 1,
	"reps": 8,
	"placements": ["DDD", "DDA", "ADD", "AAA"]
}`

// goldenStudy resolves the golden spec into its canonical form, config and
// fingerprint.
func goldenStudy(t *testing.T) (canon []byte, cfg StudyConfig, fp string) {
	t.Helper()
	sp, err := ParseStudySpec([]byte(goldenSpec))
	if err != nil {
		t.Fatal(err)
	}
	canon, err = json.Marshal(sp)
	if err != nil {
		t.Fatal(err)
	}
	canon = append(canon, '\n')
	cfg, err = sp.Config()
	if err != nil {
		t.Fatal(err)
	}
	fp, err = Fingerprint(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return canon, cfg, fp
}

func writeGolden(t *testing.T, path string, b []byte) {
	t.Helper()
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, b, 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("rewrote %s (%d bytes)", path, len(b))
}

func readGolden(t *testing.T, path string) []byte {
	t.Helper()
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (regenerate with: go test -run TestGolden -update .)", err)
	}
	return b
}

// TestGoldenSpecWire pins the spec schema: the committed fixture must parse,
// re-marshal byte-identically, and resolve to the committed fingerprint.
func TestGoldenSpecWire(t *testing.T) {
	canon, _, fp := goldenStudy(t)
	if *updateGolden {
		writeGolden(t, goldenSpecPath, canon)
		writeGolden(t, goldenFingerprintPath, []byte(fp+"\n"))
	}
	want := readGolden(t, goldenSpecPath)
	if !bytes.Equal(canon, want) {
		t.Errorf("canonical spec encoding drifted from %s:\n got: %s\nwant: %s", goldenSpecPath, canon, want)
	}

	// The golden file itself must round-trip: parse → marshal → the same
	// bytes again (the fixture is stored in canonical form).
	sp2, err := ParseStudySpec(want)
	if err != nil {
		t.Fatalf("golden spec no longer parses: %v", err)
	}
	again, err := json.Marshal(sp2)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(append(again, '\n'), want) {
		t.Errorf("golden spec does not round-trip byte-identically")
	}

	wantFP := string(bytes.TrimSpace(readGolden(t, goldenFingerprintPath)))
	if fp != wantFP {
		t.Errorf("golden spec fingerprint drifted: got %s, want %s\n"+
			"an intentional engine/schema change must bump fingerprintVersion and regenerate the goldens", fp, wantFP)
	}
}

// TestGoldenResultWire pins relperf/result/v1: running the golden spec
// study must marshal byte-identically to the committed document, and the
// document must round-trip through UnmarshalResultWire → MarshalWire.
func TestGoldenResultWire(t *testing.T) {
	_, cfg, _ := goldenStudy(t)
	cfg.Seed = goldenSeed
	study, err := NewStudy(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := study.Run()
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := res.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if *updateGolden {
		writeGolden(t, goldenResultPath, buf.Bytes())
	}
	want := readGolden(t, goldenResultPath)
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("result wire encoding drifted from %s (determinism or format change)", goldenResultPath)
	}

	// Round trip: the committed document decodes and re-encodes to itself.
	doc, err := UnmarshalResultWire(bytes.TrimSuffix(want, []byte("\n")))
	if err != nil {
		t.Fatalf("golden result no longer parses: %v", err)
	}
	again, err := doc.MarshalWire()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(append(again, '\n'), want) {
		t.Errorf("golden result does not round-trip byte-identically")
	}
}

// goldenSketchSpec exercises the sketch-mode wire surface: the sketch block,
// the sketch comparator keyword and a large-N campaign that only sketch mode
// prices admissibly.
const goldenSketchSpec = `{
	"workload": "tableI",
	"measurements": 200,
	"warmup": 1,
	"reps": 10,
	"comparator": "sketch",
	"placements": ["DDD", "DDA", "ADA", "AAA"],
	"sketch": {"k": 64}
}`

// goldenSketchStudy resolves the sketch golden spec like goldenStudy.
func goldenSketchStudy(t *testing.T) (canon []byte, cfg StudyConfig, fp string) {
	t.Helper()
	sp, err := ParseStudySpec([]byte(goldenSketchSpec))
	if err != nil {
		t.Fatal(err)
	}
	canon, err = json.Marshal(sp)
	if err != nil {
		t.Fatal(err)
	}
	canon = append(canon, '\n')
	cfg, err = sp.Config()
	if err != nil {
		t.Fatal(err)
	}
	fp, err = Fingerprint(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return canon, cfg, fp
}

// TestGoldenSketchSpecWire pins the sketch-mode spec schema and its
// fingerprint, and the by-construction separation from the exact form.
func TestGoldenSketchSpecWire(t *testing.T) {
	canon, _, fp := goldenSketchStudy(t)
	if *updateGolden {
		writeGolden(t, goldenSketchSpecPath, canon)
		writeGolden(t, goldenSketchFPPath, []byte(fp+"\n"))
	}
	want := readGolden(t, goldenSketchSpecPath)
	if !bytes.Equal(canon, want) {
		t.Errorf("canonical sketch spec encoding drifted from %s:\n got: %s\nwant: %s", goldenSketchSpecPath, canon, want)
	}
	wantFP := string(bytes.TrimSpace(readGolden(t, goldenSketchFPPath)))
	if fp != wantFP {
		t.Errorf("sketch spec fingerprint drifted: got %s, want %s", fp, wantFP)
	}

	// The same spec without its sketch block must fingerprint differently —
	// exact and sketch identities never collide.
	exactSpec := bytes.Replace(want, []byte(`,"sketch":{"k":64}`), nil, 1)
	exactSpec = bytes.Replace(exactSpec, []byte(`"comparator":"sketch",`), nil, 1)
	sp, err := ParseStudySpec(exactSpec)
	if err != nil {
		t.Fatalf("derived exact spec no longer parses: %v", err)
	}
	cfg, err := sp.Config()
	if err != nil {
		t.Fatal(err)
	}
	exactFP, err := Fingerprint(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if exactFP == fp {
		t.Error("exact and sketch forms of the golden spec share a fingerprint")
	}
}

// TestGoldenSketchResultWire pins the sketch-mode relperf/result/v1 bytes:
// mode, error bound and the sketches' canonical binary encoding.
func TestGoldenSketchResultWire(t *testing.T) {
	_, cfg, _ := goldenSketchStudy(t)
	cfg.Seed = goldenSeed
	study, err := NewStudy(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := study.Run()
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := res.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if *updateGolden {
		writeGolden(t, goldenSketchResultPath, buf.Bytes())
	}
	want := readGolden(t, goldenSketchResultPath)
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("sketch result wire encoding drifted from %s (determinism or format change)", goldenSketchResultPath)
	}
	doc, err := UnmarshalResultWire(bytes.TrimSuffix(want, []byte("\n")))
	if err != nil {
		t.Fatalf("golden sketch result no longer parses: %v", err)
	}
	again, err := doc.MarshalWire()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(append(again, '\n'), want) {
		t.Errorf("golden sketch result does not round-trip byte-identically")
	}
}
