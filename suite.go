package relperf

// This file is the multi-study layer of the library: canonical config
// fingerprinting, the shared worker Budget, and the Suite API that runs
// many studies — deduplicated by fingerprint — on one global concurrency
// budget. The fleet scheduler (internal/fleet) and the relperfd daemon are
// built on these primitives.
//
// The determinism contract extends to suites: every study's seed derives
// from xrand.Mix(suiteSeed, fingerprintKey), so a study's Result depends
// only on (suite seed, study config) — never on the suite's composition,
// the worker budget, or scheduling. Equal suite seeds therefore produce
// bit-identical per-study results at any worker count, and a result cached
// under its fingerprint is valid for every future suite with the same seed.

import (
	"context"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"errors"
	"fmt"
	"io"
	"sync"

	"relperf/internal/compare"
	"relperf/internal/core"
	"relperf/internal/device"
	"relperf/internal/pool"
	"relperf/internal/xrand"
)

// Budget is a shared global worker budget: a fixed number of execution
// tokens that every work unit (placement campaign, clustering repetition,
// matrix pre-pass pair) of every study running on it must acquire. Passing
// one Budget to many concurrent Study.RunOn calls bounds their combined
// concurrency without affecting any study's result.
type Budget struct {
	pool *pool.Pool
}

// NewBudget returns a budget of the given width (0 means GOMAXPROCS).
func NewBudget(workers int) *Budget {
	return &Budget{pool: pool.NewPool(workers)}
}

// Workers returns the budget's token count.
func (b *Budget) Workers() int { return b.pool.Workers() }

// fingerprintVersion tags the canonical encoding; bump it whenever the
// encoding or the engine's result semantics change so stale cached results
// can never be served for a new engine.
const fingerprintVersion = "relperf-study-v1"

// Fingerprint returns the canonical content fingerprint of a study
// configuration: a 32-hex-digit string identifying everything that
// determines the study's Result except Seed and Workers — the platform
// model, the program, the placement set, N, Warmup, Reps, the clustering
// path and the comparator's decision parameters. Configurations that are
// semantically identical (e.g. a nil comparator vs. an explicit
// default-parameter bootstrap, or an unset vs. explicit default N)
// fingerprint identically. The fleet layers use the fingerprint as the
// cache identity of a study and as the key that derives its seed.
//
// Only the built-in comparator types can be fingerprinted; a custom
// Comparator implementation returns an error because its decision
// parameters cannot be canonically observed.
func Fingerprint(cfg StudyConfig) (string, error) {
	s, err := NewStudy(cfg)
	if err != nil {
		return "", err
	}
	return s.Fingerprint()
}

// Fingerprint returns the canonical fingerprint of the study's
// configuration; see the package-level Fingerprint.
func (s *Study) Fingerprint() (string, error) {
	h := sha256.New()
	fmt.Fprintf(h, "%s\n", fingerprintVersion)
	cmp := s.cfg.Comparator
	if cmp == nil && s.cfg.SketchK > 0 {
		// Sketch mode's nil default resolves to the sketch comparator, not
		// the bootstrap — the identities must match what actually runs.
		cmp = compare.SketchComparator{}
	}
	if err := fingerprintComparator(h, cmp); err != nil {
		return "", err
	}
	if err := fingerprintDevice(h, "edge", s.cfg.Platform.Edge); err != nil {
		return "", err
	}
	if err := fingerprintDevice(h, "accel", s.cfg.Platform.Accel); err != nil {
		return "", err
	}
	link := s.cfg.Platform.Link
	linkNoise, err := fingerprintNoise(link.Noise)
	if err != nil {
		return "", err
	}
	fmt.Fprintf(h, "link %q latency=%d bandwidth=%v noise=%s\n",
		link.Name, link.Latency.Nanoseconds(), link.Bandwidth, linkNoise)
	fmt.Fprintf(h, "program %q\n", s.cfg.Program.Name)
	for i := range s.cfg.Program.Tasks {
		t := &s.cfg.Program.Tasks[i]
		fmt.Fprintf(h, "task %q flops=%d mem=%d launches=%d in=%d out=%d transfers=%d edgeeff=%v acceleff=%v cache=%v\n",
			t.Name, t.Flops, t.MemBytes, t.Launches, t.HostInBytes, t.HostOutBytes,
			t.Transfers, t.EdgeEff, t.AccelEff, t.CachePenaltySeconds)
	}
	for _, pl := range s.placements {
		fmt.Fprintf(h, "placement %s\n", pl)
	}
	// Matrix only changes the result when the comparator can fork; the
	// trial cap only matters on the matrix path. Normalizing both keeps
	// no-op flag differences from splitting the cache identity.
	_, forkable := effectiveComparator(s.cfg.Comparator).(compare.Forker)
	matrix := s.cfg.Matrix && forkable
	trials := 0
	if matrix {
		trials = s.cfg.MatrixTrials
		if trials <= 0 {
			trials = core.DefaultMatrixTrials
		}
	}
	fmt.Fprintf(h, "n=%d warmup=%d reps=%d matrix=%v trials=%d\n",
		s.cfg.N, s.cfg.Warmup, s.cfg.Reps, matrix, trials)
	// The sketch line exists only in sketch mode, so an exact study and a
	// sketch study over the same configuration can never share an identity —
	// a cache must not serve an approximation where exact bytes were
	// promised, or vice versa.
	if s.cfg.SketchK > 0 {
		fmt.Fprintf(h, "sketch k=%d\n", s.cfg.SketchK)
	}
	sum := h.Sum(nil)
	return hex.EncodeToString(sum[:16]), nil
}

// effectiveComparator resolves the nil default.
func effectiveComparator(cmp compare.Comparator) compare.Comparator {
	if cmp == nil {
		return compare.NewBootstrap(0)
	}
	return cmp
}

func fingerprintDevice(w io.Writer, label string, d *device.Device) error {
	noise, err := fingerprintNoise(d.Noise)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "%s %q kind=%d peak=%v membw=%v launch=%d task=%d threads=%d noise=%s energy=(idle=%v active=%v jpb=%v)\n",
		label, d.Name, d.Kind, d.PeakFlops, d.MemBandwidth,
		d.LaunchOverhead.Nanoseconds(), d.TaskOverhead.Nanoseconds(),
		d.Threads, noise, d.Energy.IdleWatts, d.Energy.ActiveWatts, d.Energy.JoulesPerByte)
	return nil
}

// fingerprintNoise renders a noise model canonically by its decision
// parameters: field values only — never fmt's %#v, which would print heap
// addresses for pointer-shaped models and destabilize fingerprints across
// process runs. Pointer and value forms of one model encode identically,
// zero-valued fields encode as the defaults Perturb applies, and unknown
// model types are rejected just like unknown comparators.
func fingerprintNoise(n device.NoiseModel) (string, error) {
	switch m := n.(type) {
	case nil:
		return "none", nil
	case device.LogNormalNoise:
		return fmt.Sprintf("lognormal(sigma=%v)", m.Sigma), nil
	case *device.LogNormalNoise:
		return fingerprintNoise(*m)
	case device.GaussianNoise:
		floor := m.Floor
		if floor == 0 {
			floor = device.DefaultGaussianFloor
		}
		return fmt.Sprintf("gaussian(rel=%v floor=%v)", m.Rel, floor), nil
	case *device.GaussianNoise:
		return fingerprintNoise(*m)
	case device.SpikyNoise:
		base, err := fingerprintNoise(m.Base)
		if err != nil {
			return "", err
		}
		return fmt.Sprintf("spiky(p=%v scale=%v alpha=%v base=%s)", m.P, m.Scale, m.Alpha, base), nil
	case *device.SpikyNoise:
		return fingerprintNoise(*m)
	case device.ShiftNoise:
		base, err := fingerprintNoise(m.Base)
		if err != nil {
			return "", err
		}
		return fmt.Sprintf("shift(shift=%v base=%s)", m.Shift, base), nil
	case *device.ShiftNoise:
		return fingerprintNoise(*m)
	case device.NoNoise:
		// NoNoise and nil are one identity: neither perturbs nor draws
		// from the RNG stream, so they produce identical Results.
		return "none", nil
	case *device.NoNoise:
		return "none", nil
	default:
		return "", fmt.Errorf("relperf: cannot fingerprint noise model of type %T (only built-in noise models have a canonical identity)", n)
	}
}

// fingerprintComparator writes the comparator's decision parameters in
// normalized form: zero-valued fields encode as the defaults the comparator
// would apply at Compare time, and a nil comparator encodes as the default
// bootstrap it resolves to. A comparator's RNG seed is deliberately absent —
// on the engine's fork path every repetition reseeds from the study seed,
// so the built-in comparators' own randomness never reaches a Result.
func fingerprintComparator(w io.Writer, cmp compare.Comparator) error {
	switch c := cmp.(type) {
	case nil:
		d := compare.NewBootstrap(0)
		fmt.Fprintf(w, "cmp bootstrap rounds=%d margin=%v quantiles=%v\n", d.Rounds, d.Margin, d.Quantiles)
	case *compare.Bootstrap:
		rounds := c.Rounds
		if rounds <= 0 {
			rounds = compare.DefaultRounds
		}
		margin := c.Margin
		if margin <= 0 {
			margin = compare.DefaultMargin
		}
		qs := c.Quantiles
		if len(qs) == 0 {
			qs = compare.DefaultQuantiles
		}
		fmt.Fprintf(w, "cmp bootstrap rounds=%d margin=%v quantiles=%v\n", rounds, margin, qs)
	case compare.KS:
		alpha := c.Alpha
		if alpha <= 0 {
			alpha = compare.DefaultAlpha
		}
		fmt.Fprintf(w, "cmp ks alpha=%v\n", alpha)
	case compare.MannWhitney:
		alpha := c.Alpha
		if alpha <= 0 {
			alpha = compare.DefaultAlpha
		}
		fmt.Fprintf(w, "cmp mannwhitney alpha=%v\n", alpha)
	case compare.MeanThreshold:
		tol := c.RelTol
		if tol <= 0 {
			tol = compare.DefaultRelTol
		}
		fmt.Fprintf(w, "cmp mean reltol=%v\n", tol)
	case compare.SketchComparator:
		margin := c.Margin
		if margin <= 0 {
			margin = compare.DefaultMargin
		}
		qs := c.Quantiles
		if len(qs) == 0 {
			qs = compare.DefaultQuantiles
		}
		fmt.Fprintf(w, "cmp sketch margin=%v quantiles=%v\n", margin, qs)
	default:
		return fmt.Errorf("relperf: cannot fingerprint comparator of type %T (only built-in comparators have a canonical identity)", cmp)
	}
	return nil
}

// StudySeed derives the seed a study with the given fingerprint runs under
// in a suite keyed by suiteSeed. The derivation depends only on the two
// inputs, so any runner — Suite.Run, the fleet scheduler, a remote worker —
// reproduces the exact same study.
func StudySeed(suiteSeed uint64, fingerprint string) (uint64, error) {
	b, err := hex.DecodeString(fingerprint)
	if err != nil || len(b) < 8 {
		return 0, fmt.Errorf("relperf: malformed fingerprint %q", fingerprint)
	}
	return xrand.Mix(suiteSeed, binary.BigEndian.Uint64(b[:8])), nil
}

// NewKeyedStudy builds the study exactly as it runs inside a suite keyed
// by suiteSeed: validated once, fingerprinted, and seeded with
// StudySeed(suiteSeed, fingerprint). cfg.Seed and cfg.Workers are ignored —
// the derivation replaces the former and the suite's shared budget governs
// the latter. This is the one-build primitive the suite and fleet layers
// share; the returned Study is safe to run repeatedly and concurrently.
func NewKeyedStudy(cfg StudyConfig, suiteSeed uint64) (*Study, string, error) {
	cfg.Workers = 0
	study, err := NewStudy(cfg)
	if err != nil {
		return nil, "", err
	}
	fp, err := study.Fingerprint()
	if err != nil {
		return nil, "", err
	}
	seed, err := StudySeed(suiteSeed, fp)
	if err != nil {
		return nil, "", err
	}
	study.cfg.Seed = seed
	return study, fp, nil
}

// SuiteConfig configures a multi-study run.
type SuiteConfig struct {
	// Studies are the member configurations. Their Seed and Workers fields
	// are ignored: seeds derive from Seed and each study's fingerprint, and
	// all studies share the suite's worker budget.
	Studies []StudyConfig
	// Seed keys every study (see StudySeed). Suites with equal seeds
	// produce bit-identical per-study results whatever the budget.
	Seed uint64
	// Workers is the global concurrency budget shared by every work unit
	// of every study (0 means GOMAXPROCS).
	Workers int
}

// Suite is a validated, deduplicated set of studies ready to run on one
// shared budget.
type Suite struct {
	cfg SuiteConfig
	// studies and fps hold the deduplicated members in first-occurrence
	// order; inputFPs maps every input config (duplicates included) to its
	// fingerprint.
	studies  []*Study
	fps      []string
	inputFPs []string
}

// NewSuite validates every member configuration, fingerprints it, drops
// duplicates (same fingerprint ⇒ same result) and derives the members'
// seeds from cfg.Seed.
func NewSuite(cfg SuiteConfig) (*Suite, error) {
	if len(cfg.Studies) == 0 {
		return nil, errors.New("relperf: SuiteConfig.Studies is empty")
	}
	s := &Suite{cfg: cfg}
	seen := make(map[string]bool, len(cfg.Studies))
	for i := range cfg.Studies {
		study, fp, err := NewKeyedStudy(cfg.Studies[i], cfg.Seed)
		if err != nil {
			return nil, fmt.Errorf("relperf: suite study %d: %w", i, err)
		}
		s.inputFPs = append(s.inputFPs, fp)
		if seen[fp] {
			continue
		}
		seen[fp] = true
		s.studies = append(s.studies, study)
		s.fps = append(s.fps, fp)
	}
	return s, nil
}

// Fingerprints returns the fingerprint of every input configuration in
// input order, duplicates included — the suite's submission receipt.
func (s *Suite) Fingerprints() []string {
	out := make([]string, len(s.inputFPs))
	copy(out, s.inputFPs)
	return out
}

// Len returns the number of deduplicated studies the suite will run.
func (s *Suite) Len() int { return len(s.studies) }

// StudyOutcome is one completed study, streamed to a Suite.Stream callback.
type StudyOutcome struct {
	// Fingerprint identifies the study's configuration.
	Fingerprint string
	// Result is the completed study result.
	Result *Result
}

// SuiteResult holds every deduplicated study result of a suite run.
type SuiteResult struct {
	// Fingerprints lists the deduplicated studies in first-occurrence
	// order; Results is index-aligned.
	Fingerprints []string
	Results      []*Result
	byFP         map[string]*Result
}

// ByFingerprint returns the result of the study with the given
// fingerprint, or false when the suite did not contain it.
func (sr *SuiteResult) ByFingerprint(fp string) (*Result, bool) {
	r, ok := sr.byFP[fp]
	return r, ok
}

// Run executes every deduplicated study of the suite concurrently on one
// shared worker budget and returns all results. Per-study results are
// bit-identical for equal suite seeds at every budget width.
func (s *Suite) Run(ctx context.Context) (*SuiteResult, error) {
	return s.Stream(ctx, nil)
}

// Stream is Run with a subscriber: fn (when non-nil) is invoked with each
// study's outcome as it completes — completion order varies with
// scheduling, the outcomes themselves never do. Callbacks are serialized;
// a slow subscriber delays notifications, not study execution.
func (s *Suite) Stream(ctx context.Context, fn func(StudyOutcome)) (*SuiteResult, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	budget := NewBudget(s.cfg.Workers)
	results := make([]*Result, len(s.studies))
	errs := make([]error, len(s.studies))
	var cbMu sync.Mutex
	var wg sync.WaitGroup
	for i := range s.studies {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			res, err := s.studies[i].RunOn(ctx, budget)
			if err != nil {
				errs[i] = err
				return
			}
			results[i] = res
			if fn != nil {
				cbMu.Lock()
				fn(StudyOutcome{Fingerprint: s.fps[i], Result: res})
				cbMu.Unlock()
			}
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	sr := &SuiteResult{
		Fingerprints: append([]string(nil), s.fps...),
		Results:      results,
		byFP:         make(map[string]*Result, len(results)),
	}
	for i, fp := range sr.Fingerprints {
		sr.byFP[fp] = results[i]
	}
	return sr, nil
}

// ExpandPlatformRefs resolves named-platform references in a suite's study
// specs: a study whose platform is {"name": "x"} has it substituted by
// platforms["x"], so a custom platform is defined once at the suite level
// and referenced by many studies. Substitution happens before validation
// and before specs are retained or fingerprinted, so an expanded spec is
// fully self-contained — snapshots, recompute-after-eviction and grid
// dispatch to remote workers all see the inline definition and never need
// the map. Unknown references, invalid definitions, references carrying
// extra fields and definitions that are themselves references are explicit
// errors; defined-but-unreferenced platforms are fine.
func ExpandPlatformRefs(specs []StudySpec, platforms map[string]*PlatformSpec) error {
	for name, def := range platforms {
		if name == "" {
			return errors.New("relperf: suite platforms map has an empty name")
		}
		if def == nil {
			return fmt.Errorf("relperf: suite platform %q is null", name)
		}
		if def.Name != "" {
			return fmt.Errorf("relperf: suite platform %q references %q (definitions cannot chain)", name, def.Name)
		}
		if err := def.Validate(); err != nil {
			return fmt.Errorf("relperf: suite platform %q: %w", name, err)
		}
	}
	for i := range specs {
		pl := specs[i].Platform
		if pl == nil || pl.Name == "" {
			continue
		}
		if pl.Preset != "" || pl.Edge != nil || pl.Accel != nil || pl.Link != nil {
			return fmt.Errorf("relperf: spec study %d: platform reference %q excludes preset and explicit edge/accel/link", i, pl.Name)
		}
		def, ok := platforms[pl.Name]
		if !ok {
			return fmt.Errorf("relperf: spec study %d references undefined platform %q", i, pl.Name)
		}
		specs[i].Platform = def
	}
	return nil
}

// NewSuiteFromSpecs builds a suite from declarative wire specs (the JSON
// schema of spec.go): each spec resolves to a StudyConfig, then the members
// are deduplicated, keyed and budgeted exactly as in NewSuite. This is the
// local (in-process) counterpart of POSTing the specs to a relperfd daemon.
func NewSuiteFromSpecs(specs []StudySpec, seed uint64, workers int) (*Suite, error) {
	configs, err := ConfigsFromSpecs(specs)
	if err != nil {
		return nil, err
	}
	return NewSuite(SuiteConfig{Studies: configs, Seed: seed, Workers: workers})
}

// RunSuite is the one-call form: NewSuite followed by Run.
func RunSuite(ctx context.Context, cfg SuiteConfig) (*SuiteResult, error) {
	suite, err := NewSuite(cfg)
	if err != nil {
		return nil, err
	}
	return suite.Run(ctx)
}
