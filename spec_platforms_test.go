package relperf

// Tests of suite-level named custom platforms (ExpandPlatformRefs) and the
// admission-control cost estimate.

import (
	"math"
	"strings"
	"testing"
)

// edgeCloudPlatform is a custom platform defined once and referenced by
// name from many studies.
func edgeCloudPlatform() *PlatformSpec {
	return &PlatformSpec{
		Edge: &DeviceSpec{Preset: "raspberry-pi-4"},
		Link: &LinkSpec{Preset: "wifi"},
	}
}

func TestExpandPlatformRefs(t *testing.T) {
	specs := []StudySpec{
		{Workload: "tableI", Platform: &PlatformSpec{Name: "edge-cloud"}},
		{Workload: "fig1"},
		{Workload: "tableI", Platform: &PlatformSpec{Name: "edge-cloud"}},
	}
	platforms := map[string]*PlatformSpec{"edge-cloud": edgeCloudPlatform()}
	if err := ExpandPlatformRefs(specs, platforms); err != nil {
		t.Fatal(err)
	}
	for _, i := range []int{0, 2} {
		pl := specs[i].Platform
		if pl == nil || pl.Name != "" || pl.Edge == nil || pl.Edge.Preset != "raspberry-pi-4" {
			t.Fatalf("study %d platform not substituted: %+v", i, pl)
		}
		if err := specs[i].Validate(); err != nil {
			t.Fatalf("study %d invalid after expansion: %v", i, err)
		}
	}
	if specs[1].Platform != nil {
		t.Fatal("study without a reference was touched")
	}

	// The expanded spec must fingerprint identically to the same study
	// written with the platform inline — a named platform is sugar, not a
	// new identity.
	inline := StudySpec{Workload: "tableI", Platform: edgeCloudPlatform()}
	cfgRef, err := specs[0].Config()
	if err != nil {
		t.Fatal(err)
	}
	cfgInline, err := inline.Config()
	if err != nil {
		t.Fatal(err)
	}
	fpRef, err := Fingerprint(cfgRef)
	if err != nil {
		t.Fatal(err)
	}
	fpInline, err := Fingerprint(cfgInline)
	if err != nil {
		t.Fatal(err)
	}
	if fpRef != fpInline {
		t.Fatalf("reference fingerprint %s != inline fingerprint %s", fpRef, fpInline)
	}
}

func TestExpandPlatformRefsErrors(t *testing.T) {
	ref := func(name string) []StudySpec {
		return []StudySpec{{Workload: "tableI", Platform: &PlatformSpec{Name: name}}}
	}
	cases := []struct {
		name      string
		specs     []StudySpec
		platforms map[string]*PlatformSpec
		want      string
	}{
		{"undefined reference", ref("ghost"), nil, "undefined platform"},
		{"empty map name", ref("x"), map[string]*PlatformSpec{"": edgeCloudPlatform()}, "empty name"},
		{"null definition", ref("x"), map[string]*PlatformSpec{"x": nil}, "is null"},
		{"chained reference", ref("x"),
			map[string]*PlatformSpec{"x": {Name: "y"}, "y": edgeCloudPlatform()}, "cannot chain"},
		{"invalid definition", ref("x"),
			map[string]*PlatformSpec{"x": {Preset: "warp-drive"}}, "unknown platform preset"},
		{"reference with extra fields",
			[]StudySpec{{Workload: "tableI", Platform: &PlatformSpec{Name: "x", Preset: "fig1"}}},
			map[string]*PlatformSpec{"x": edgeCloudPlatform()}, "excludes preset"},
	}
	for _, tc := range cases {
		err := ExpandPlatformRefs(tc.specs, tc.platforms)
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: err = %v, want substring %q", tc.name, err, tc.want)
		}
	}
}

// TestPlatformRefOutsideSuite: a spec still carrying a reference (no suite
// to resolve it) must fail validation loudly, never run a default platform.
func TestPlatformRefOutsideSuite(t *testing.T) {
	sp := StudySpec{Workload: "tableI", Platform: &PlatformSpec{Name: "edge-cloud"}}
	err := sp.Validate()
	if err == nil || !strings.Contains(err.Error(), "unresolved platform reference") {
		t.Fatalf("err = %v", err)
	}
	if _, err := ParseStudySpec([]byte(`{"workload":"tableI","platform":{"name":"edge-cloud"}}`)); err == nil {
		t.Fatal("standalone spec with a platform reference parsed")
	}
}

func TestStudySpecCostEstimate(t *testing.T) {
	cases := []struct {
		name string
		spec StudySpec
		want int64
	}{
		{"defaults tableI", StudySpec{Workload: "tableI"}, 8 * 30 * 100}, // 2^3 placements
		{"defaults fig1", StudySpec{Workload: "fig1"}, 4 * 30 * 100},     // 2^2 placements
		{"explicit placements", StudySpec{Workload: "tableI", Placements: []string{"DDA"}, Measurements: 10, Reps: 5}, 1 * 10 * 5},
		{"warmup counts", StudySpec{Workload: "tableI", Measurements: 10, Warmup: 5, Reps: 2}, 8 * 15 * 2},
		{"wide program", StudySpec{Program: &ProgramSpec{Tasks: make([]TaskSpec, 16)}, Measurements: 1, Reps: 1}, 1 << 16},
		// Hostile counts must saturate, never wrap under the admission
		// bound: 8 × 2^61 × 8 overflows int64 to exactly 0 without the
		// saturation.
		{"overflow saturates", StudySpec{Workload: "tableI", Measurements: 1 << 61, Reps: 8}, math.MaxInt64},
	}
	for _, tc := range cases {
		if got := tc.spec.CostEstimate(); got != tc.want {
			t.Errorf("%s: CostEstimate() = %d, want %d", tc.name, got, tc.want)
		}
	}
}
