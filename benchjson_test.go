// Machine-readable benchmark emission: TestEmitEngineBenchJSON re-runs the
// engine benchmarks through testing.Benchmark and writes BENCH_engine.json,
// so successive PRs can track the perf trajectory without parsing go-bench
// text output. It is opt-in (RELPERF_EMIT_BENCH=1, wired to `make bench`)
// because it costs several full study executions.
package relperf_test

import (
	"encoding/json"
	"os"
	"runtime"
	"testing"

	"relperf"
	"relperf/internal/stats"
	"relperf/internal/xrand"
)

// benchRecord is one benchmark's result in BENCH_engine.json.
type benchRecord struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	Iterations  int     `json:"iterations"`
}

// engineBenchReport is the top-level BENCH_engine.json document.
type engineBenchReport struct {
	GoMaxProcs int           `json:"gomaxprocs"`
	GoVersion  string        `json:"go_version"`
	Benchmarks []benchRecord `json:"benchmarks"`
	// SpeedupParallel is serial ns/op over parallel ns/op for the
	// Table-I-sized study; ≈1 on a single-core runner, ≥2 expected on 4
	// cores.
	SpeedupParallel float64 `json:"speedup_parallel"`
	// SpeedupMatrix is serial ns/op over parallel-matrix ns/op.
	SpeedupMatrix float64 `json:"speedup_matrix"`
	// SpeedupBootstrap is the old (value-space, per-round insertion sort)
	// bootstrap WinRate ns/op over the index-space kernel's, at N=500 —
	// single-threaded by construction, so the floor holds on any runner.
	SpeedupBootstrap float64 `json:"speedup_bootstrap"`
	// ServeNsPerOp is the cached GET /v1/studies/{fp} latency through the
	// full handler stack (BenchmarkServerGetStudy); `make bench-check`
	// holds it under a committed ceiling so the serving path — including
	// the obs middleware — cannot silently regress.
	ServeNsPerOp float64 `json:"serve_ns_per_op"`
	// SketchBytesPerMeasurement is a sketch-mode result's wire size divided
	// by the campaign's total measurement count (N=2000 per placement,
	// k=256); ExactBytesPerMeasurement is the same study's exact-mode
	// counterpart. `make bench-check` holds the sketch figure under a
	// committed ceiling and strictly below the exact one — the O(k·log N)
	// vs O(N) capacity claim, enforced as numbers.
	SketchBytesPerMeasurement float64 `json:"sketch_bytes_per_measurement"`
	ExactBytesPerMeasurement  float64 `json:"exact_bytes_per_measurement"`
}

// benchStudy is the Table-I-sized engine workload shared by
// BenchmarkEngineSerialVsParallel and the JSON emitter below, so the
// go-bench output and BENCH_engine.json always measure the same thing.
func benchStudy(workers int, matrix bool) func(b *testing.B) {
	return func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			study, err := relperf.NewStudy(relperf.StudyConfig{
				Program: relperf.TableIProgram(10),
				N:       30,
				Reps:    100,
				Seed:    1,
				Workers: workers,
				Matrix:  matrix,
			})
			if err != nil {
				b.Fatal(err)
			}
			if _, err := study.Run(); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// benchStudyAt parameterizes the engine benchmark over campaign size and
// mode: sketchK = 0 is the exact path, > 0 the sketch path at that capacity.
func benchStudyAt(n, reps, sketchK int) func(b *testing.B) {
	return func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			study, err := relperf.NewStudy(relperf.StudyConfig{
				Program: relperf.TableIProgram(10),
				N:       n,
				Reps:    reps,
				Seed:    1,
				SketchK: sketchK,
			})
			if err != nil {
				b.Fatal(err)
			}
			if _, err := study.Run(); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkSketchAdd measures the sketch's streaming ingest hot path at
// steady state: a k=256 sketch far past compaction onset, fed pre-drawn
// log-normal "execution times".
func BenchmarkSketchAdd(b *testing.B) {
	vals := make([]float64, 8192)
	r := xrand.New(1)
	for i := range vals {
		vals[i] = r.LogNormal(-3, 0.5)
	}
	sk, err := stats.NewSketch(256, 1)
	if err != nil {
		b.Fatal(err)
	}
	for _, v := range vals {
		sk.Add(v)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sk.Add(vals[i&(len(vals)-1)])
	}
}

// BenchmarkSketchVsExactStudy runs the same mid-size Table-I study both
// ways, so `go test -bench SketchVsExact` prints the mode trade-off
// directly.
func BenchmarkSketchVsExactStudy(b *testing.B) {
	b.Run("exact", benchStudyAt(1000, 10, 0))
	b.Run("sketch", benchStudyAt(1000, 10, 256))
}

// wireBytesPerMeasurement runs one N=2000 Table-I study in the given mode
// and divides its wire-document size by the campaign's total measurement
// count (8 placements × N).
func wireBytesPerMeasurement(t *testing.T, sketchK int) float64 {
	t.Helper()
	study, err := relperf.NewStudy(relperf.StudyConfig{
		Program: relperf.TableIProgram(10),
		N:       2000,
		Reps:    10,
		Seed:    1,
		SketchK: sketchK,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := study.Run()
	if err != nil {
		t.Fatal(err)
	}
	wire, err := res.MarshalWire()
	if err != nil {
		t.Fatal(err)
	}
	return float64(len(wire)) / float64(8*2000)
}

func TestEmitEngineBenchJSON(t *testing.T) {
	if os.Getenv("RELPERF_EMIT_BENCH") == "" {
		t.Skip("set RELPERF_EMIT_BENCH=1 (or run `make bench`) to emit BENCH_engine.json")
	}
	record := func(name string, r testing.BenchmarkResult) benchRecord {
		return benchRecord{
			Name:        name,
			NsPerOp:     float64(r.NsPerOp()),
			AllocsPerOp: r.AllocsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
			Iterations:  r.N,
		}
	}

	serial := testing.Benchmark(benchStudy(1, false))
	parallel := testing.Benchmark(benchStudy(0, false))
	matrix := testing.Benchmark(benchStudy(0, true))
	cmpBench := testing.Benchmark(BenchmarkBootstrapCompareAllocs)
	serve := testing.Benchmark(BenchmarkServerGetStudy)
	sketchAdd := testing.Benchmark(BenchmarkSketchAdd)
	sketchStudy := testing.Benchmark(benchStudyAt(1000, 10, 256))

	report := engineBenchReport{
		GoMaxProcs: runtime.GOMAXPROCS(0),
		GoVersion:  runtime.Version(),
		Benchmarks: []benchRecord{
			record("EngineStudy/serial", serial),
			record("EngineStudy/parallel", parallel),
			record("EngineStudy/parallel-matrix", matrix),
			record("EngineStudy/sketch", sketchStudy),
			record("BootstrapCompare", cmpBench),
			record("ServerGetStudy", serve),
			record("SketchAdd", sketchAdd),
		},
		SpeedupParallel:           float64(serial.NsPerOp()) / float64(parallel.NsPerOp()),
		SpeedupMatrix:             float64(serial.NsPerOp()) / float64(matrix.NsPerOp()),
		ServeNsPerOp:              float64(serve.NsPerOp()),
		SketchBytesPerMeasurement: wireBytesPerMeasurement(t, 256),
		ExactBytesPerMeasurement:  wireBytesPerMeasurement(t, 0),
	}
	if sketchAdd.AllocsPerOp() > 0 {
		t.Errorf("Sketch.Add allocates %d/op at steady state, want 0", sketchAdd.AllocsPerOp())
	}
	if cmpBench.AllocsPerOp() != 0 {
		t.Errorf("Bootstrap.Compare allocates %d/op after warm-up, want 0", cmpBench.AllocsPerOp())
	}

	// Bootstrap kernel, old vs new, at every spec-admissible sample size;
	// speedup_bootstrap carries the N=500 ratio that `make bench-check`
	// holds to its floor.
	for _, n := range []int{50, 500, 5000} {
		old := testing.Benchmark(benchWinRateOld(n))
		new_ := testing.Benchmark(benchWinRateNew(n))
		report.Benchmarks = append(report.Benchmarks,
			record("WinRate/N="+itoa(n)+"/old", old),
			record("WinRate/N="+itoa(n)+"/new", new_),
		)
		if new_.AllocsPerOp() != 0 {
			t.Errorf("index-space WinRate at N=%d allocates %d/op after warm-up, want 0",
				n, new_.AllocsPerOp())
		}
		if n == 500 {
			report.SpeedupBootstrap = float64(old.NsPerOp()) / float64(new_.NsPerOp())
		}
	}

	f, err := os.Create("BENCH_engine.json")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(report); err != nil {
		t.Fatal(err)
	}
	t.Logf("BENCH_engine.json: parallel speedup %.2fx, matrix speedup %.2fx, bootstrap speedup %.2fx, sketch %.2f B/meas vs exact %.2f B/meas (GOMAXPROCS=%d)",
		report.SpeedupParallel, report.SpeedupMatrix, report.SpeedupBootstrap,
		report.SketchBytesPerMeasurement, report.ExactBytesPerMeasurement, report.GoMaxProcs)
}
