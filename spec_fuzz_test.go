package relperf

// Fuzz harness for the declarative spec schema: malformed input must
// return errors, never panic, and every accepted spec must re-encode to a
// canonical form that parses again and resolves to a fingerprintable
// configuration. Run continuously with:
//
//	go test -run '^$' -fuzz '^FuzzParseStudySpec$' -fuzztime 30s .

import (
	"encoding/json"
	"testing"
)

func FuzzParseStudySpec(f *testing.F) {
	seeds := []string{
		`{"workload":"tableI","loop_n":2,"measurements":6,"reps":10}`,
		`{"workload":"fig1","comparator":"ks","placements":["DA","AD"]}`,
		declTableI,
		declFig1,
		goldenSpec,
		`{"program":{"tasks":[{"name":"L1","kernel":"raw","flops":1e9,"accel_eff":0.5}]}}`,
		`{"workload":"tableI","platform":{"edge":{"preset":"smartphone-soc"},"link":{"preset":"5g-edge"}}}`,
		`{"workload":"tableI","matrix":true,"matrix_trials":8}`,
		`{"workload":"tableI","platform":{"name":"edge-cloud"}}`,
		`{"workload":"nope"}`,
		`{"program":{"tasks":[]}}`,
		`{"workload":"tableI","reps":-1}`,
		`{`,
		`[]`,
		`{"workload":"tableI"} trailing`,
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		sp, err := ParseStudySpec(data)
		if err != nil {
			return // malformed input must error, and it did
		}
		// Accepted specs re-encode canonically...
		canon, err := json.Marshal(sp)
		if err != nil {
			t.Fatalf("accepted spec fails to marshal: %v", err)
		}
		// ...and the canonical form parses again (snapshots depend on it).
		if _, err := ParseStudySpec(canon); err != nil {
			t.Fatalf("canonical re-encoding rejected: %v\nspec: %s", err, canon)
		}
		// Resolution may reject (e.g. total-flops bound), but a resolved
		// config must always be fingerprintable: the fleet layers assume
		// every spec-born study has a canonical cache identity.
		cfg, err := sp.Config()
		if err != nil {
			return
		}
		if _, err := Fingerprint(cfg); err != nil {
			t.Fatalf("resolved spec config cannot be fingerprinted: %v\nspec: %s", err, canon)
		}
	})
}
