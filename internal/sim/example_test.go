package sim_test

import (
	"fmt"

	"relperf/internal/sim"
)

// ExampleEnumeratePlacements lists the paper's algorithm set for a
// three-loop scientific code.
func ExampleEnumeratePlacements() {
	for _, pl := range sim.EnumeratePlacements(3) {
		fmt.Printf("alg%s ", pl)
	}
	fmt.Println()
	// Output:
	// algDDD algDDA algDAD algDAA algADD algADA algAAD algAAA
}

// ExampleSimulator_NominalSeconds computes the noiseless time of two
// placements of the paper's Table-I code and shows that offloading the
// largest task wins.
func ExampleSimulator_NominalSeconds() {
	// The default platform is the paper's testbed: a Xeon core, a P100 and
	// PCIe between them.
	s, err := sim.NewSimulator(sim.DefaultPlatform(), 1)
	if err != nil {
		panic(err)
	}
	prog := &sim.Program{
		Name: "two-loops",
		Tasks: []sim.Task{
			{Name: "L1", Flops: 5e8, Launches: 10, EdgeEff: 1, AccelEff: 0.001,
				HostInBytes: 1e6, HostOutBytes: 1e6, Transfers: 3},
			{Name: "L2", Flops: 2e9, Launches: 10, EdgeEff: 1, AccelEff: 0.02,
				HostInBytes: 2e7, HostOutBytes: 1e6, Transfers: 3},
		},
	}
	for _, name := range []string{"DD", "DA"} {
		pl, _ := sim.ParsePlacement(name)
		t, _ := s.NominalSeconds(prog, pl)
		fmt.Printf("alg%s: %.1f ms\n", name, t*1e3)
	}
	// Output:
	// algDD: 45.5 ms
	// algDA: 33.3 ms
}
