// Package sim is the execution substrate: it turns (program, placement) pairs
// into execution-time samples on a modeled platform of one edge device, one
// accelerator and the link between them.
//
// A Program is the paper's "scientific code": a sequence of dependent tasks
// (Procedure 5's L1, L2, L3 cannot run concurrently because each consumes the
// previous task's penalty), so execution is strictly serial and the total
// time is the sum of per-task times. A Placement assigns each task to the
// edge device ("D") or the accelerator ("A"); the 2^L placements are exactly
// the paper's set A of mathematically-equivalent algorithms.
//
// The data-movement model is host-centric, matching the TensorFlow setup the
// paper measures: task inputs live on the edge device (the host generates
// them), so a task placed on the accelerator pays to ship its inputs over and
// its result back on every loop iteration. Tasks placed on the edge device
// move nothing.
package sim

import (
	"fmt"
	"strings"

	"relperf/internal/device"
	"relperf/internal/xrand"
)

// Task describes one loop of the scientific code in resource terms.
type Task struct {
	// Name labels the task in traces ("L1").
	Name string
	// Flops is the total floating-point work of the task (all iterations).
	Flops int64
	// MemBytes is the memory traffic for the roofline bound; 0 means the
	// task is compute-bound on every device.
	MemBytes int64
	// Launches is the number of kernel dispatches the task issues (loop
	// iterations × ops per iteration); each costs the executing device's
	// LaunchOverhead. This is what makes many-small-op tasks expensive to
	// offload.
	Launches int64
	// HostInBytes is the input data shipped host→accelerator when the task
	// is placed on the accelerator (per the host-centric model).
	HostInBytes int64
	// HostOutBytes is the result data shipped back accelerator→host.
	HostOutBytes int64
	// Transfers is the number of link transactions used to move the data
	// (loop iterations × tensors per iteration); each pays link latency.
	Transfers int64
	// EdgeEff and AccelEff are the fractions of the respective device's
	// PeakFlops this task's op mix can sustain (the roofline ceiling for
	// the kernel). Zero means 1.0 (fully efficient).
	EdgeEff, AccelEff float64
	// CachePenaltySeconds is an extra cost charged when this task executes
	// on the same device as its predecessor: back-to-back dense kernels
	// interfere through the cache hierarchy (Peise & Bientinesi, "A study
	// on the influence of caching: sequences of dense linear algebra
	// kernels" — reference [2] of the paper). Running the predecessor on
	// the other device leaves this device's caches undisturbed.
	CachePenaltySeconds float64
}

// effOn returns the task's efficiency on a device of the given kind.
func (t *Task) effOn(k device.Kind) float64 {
	var e float64
	if k == device.Accelerator {
		e = t.AccelEff
	} else {
		e = t.EdgeEff
	}
	if e <= 0 {
		return 1
	}
	return e
}

// Validate reports nonsensical task definitions.
func (t *Task) Validate() error {
	if t.Name == "" {
		return fmt.Errorf("sim: task with empty name")
	}
	if t.Flops < 0 || t.MemBytes < 0 || t.Launches < 0 ||
		t.HostInBytes < 0 || t.HostOutBytes < 0 || t.Transfers < 0 {
		return fmt.Errorf("sim: task %s has negative resource counts", t.Name)
	}
	if t.EdgeEff < 0 || t.EdgeEff > 1 || t.AccelEff < 0 || t.AccelEff > 1 {
		return fmt.Errorf("sim: task %s efficiency outside [0,1]", t.Name)
	}
	if t.CachePenaltySeconds < 0 {
		return fmt.Errorf("sim: task %s has negative cache penalty", t.Name)
	}
	return nil
}

// Program is an ordered dependent task chain.
type Program struct {
	Name  string
	Tasks []Task
}

// Validate checks the program and every task.
func (p *Program) Validate() error {
	if len(p.Tasks) == 0 {
		return fmt.Errorf("sim: program %q has no tasks", p.Name)
	}
	for i := range p.Tasks {
		if err := p.Tasks[i].Validate(); err != nil {
			return fmt.Errorf("sim: program %q task %d: %w", p.Name, i, err)
		}
	}
	return nil
}

// Placement assigns each task of a program to a device kind.
type Placement []device.Kind

// String renders the paper's algorithm naming: "DDA" means L1 and L2 on the
// edge device and L3 on the accelerator.
func (p Placement) String() string {
	var b strings.Builder
	for _, k := range p {
		b.WriteString(k.Letter())
	}
	return b.String()
}

// ParsePlacement converts a string like "DAD" into a Placement.
func ParsePlacement(s string) (Placement, error) {
	p := make(Placement, 0, len(s))
	for _, r := range s {
		switch r {
		case 'D', 'd':
			p = append(p, device.EdgeDevice)
		case 'A', 'a':
			p = append(p, device.Accelerator)
		default:
			return nil, fmt.Errorf("sim: invalid placement letter %q in %q", r, s)
		}
	}
	if len(p) == 0 {
		return nil, fmt.Errorf("sim: empty placement")
	}
	return p, nil
}

// EnumeratePlacements returns all 2^n placements of an n-task program in
// lexicographic order with D < A (DDD, DDA, DAD, DAA, ADD, ...).
func EnumeratePlacements(n int) []Placement {
	if n <= 0 {
		return nil
	}
	total := 1 << uint(n)
	out := make([]Placement, 0, total)
	for mask := 0; mask < total; mask++ {
		p := make(Placement, n)
		for i := 0; i < n; i++ {
			if mask&(1<<uint(n-1-i)) != 0 {
				p[i] = device.Accelerator
			}
		}
		out = append(out, p)
	}
	return out
}

// Platform is the modeled hardware: one edge device, one accelerator, and
// the link between them.
type Platform struct {
	Edge  *device.Device
	Accel *device.Device
	Link  *device.Link
}

// Validate checks the platform configuration.
func (pl *Platform) Validate() error {
	if pl.Edge == nil || pl.Accel == nil || pl.Link == nil {
		return fmt.Errorf("sim: platform requires edge, accel and link")
	}
	if err := pl.Edge.Validate(); err != nil {
		return err
	}
	if err := pl.Accel.Validate(); err != nil {
		return err
	}
	if err := pl.Link.Validate(); err != nil {
		return err
	}
	if pl.Edge.Kind != device.EdgeDevice {
		return fmt.Errorf("sim: edge slot holds a %s", pl.Edge.Kind)
	}
	if pl.Accel.Kind != device.Accelerator {
		return fmt.Errorf("sim: accel slot holds a %s", pl.Accel.Kind)
	}
	return nil
}

// DefaultPlatform returns the paper's testbed: one Xeon core, a P100 and
// PCIe between them.
func DefaultPlatform() *Platform {
	return &Platform{Edge: device.XeonCore(), Accel: device.P100(), Link: device.PCIe3x16()}
}

// device returns the device for a placement kind.
func (pl *Platform) device(k device.Kind) *device.Device {
	if k == device.Accelerator {
		return pl.Accel
	}
	return pl.Edge
}

// TaskTrace records the cost breakdown of one task execution.
type TaskTrace struct {
	Task     string
	On       device.Kind
	Start    float64 // seconds since run start
	Compute  float64 // seconds of device compute (incl. launch overhead)
	Transfer float64 // seconds of link traffic
	Flops    int64   // flops executed on the device
	Moved    int64   // bytes moved over the link
}

// End returns the completion time of the traced task.
func (t TaskTrace) End() float64 { return t.Start + t.Compute + t.Transfer }

// RunResult is the outcome of simulating one execution.
type RunResult struct {
	Placement Placement
	Seconds   float64 // total wall-clock time
	Trace     []TaskTrace
	// EdgeBusy / AccelBusy are compute seconds per device.
	EdgeBusy, AccelBusy float64
	// EdgeFlops / AccelFlops are the FLOPs executed per device — the
	// quantity the paper's FLOP-budget decision model constrains.
	EdgeFlops, AccelFlops int64
	// BytesMoved is the total link traffic.
	BytesMoved int64
	// EdgeJoules / AccelJoules are modeled energy for the run, counting
	// active compute, idle waiting and transfer energy.
	EdgeJoules, AccelJoules float64
}

// Simulator produces execution-time samples for (program, placement) pairs.
// It is not safe for concurrent use (it owns a Rand and scratch state);
// create one per goroutine with independent seeds — a Platform is immutable
// during simulation and may be shared by concurrent simulators. For
// determinism across worker counts, seed per-work-unit simulators with
// xrand.Mix(seed, unitIndex) rather than splitting a shared stream.
type Simulator struct {
	Platform *Platform
	rng      *xrand.Rand
	// scratch backs the allocation-free Seconds path.
	scratch RunResult
}

// NewSimulator validates the platform and returns a simulator seeded with
// seed.
func NewSimulator(pl *Platform, seed uint64) (*Simulator, error) {
	if err := pl.Validate(); err != nil {
		return nil, err
	}
	return &Simulator{Platform: pl, rng: xrand.New(seed)}, nil
}

// SplitRNG returns an independent generator split off the simulator's
// stream, for seeding downstream stochastic components (e.g. a bootstrap
// comparator) without sharing state.
//
// Deprecated: the split depends on how many runs the simulator has already
// executed, which breaks worker-count invariance in parallel engines.
// Derive streams with xrand.Mix / xrand.NewKeyed instead.
func (s *Simulator) SplitRNG() *xrand.Rand { return s.rng.Split() }

// Run simulates one execution and returns the full result with trace.
func (s *Simulator) Run(prog *Program, pl Placement) (*RunResult, error) {
	res := &RunResult{}
	if err := s.RunInto(res, prog, pl, true); err != nil {
		return nil, err
	}
	return res, nil
}

// RunInto simulates one execution into res, reusing res's slice capacity —
// the hot path for repeated measurement campaigns: after the first call at a
// given program shape, subsequent calls perform no heap allocations. All
// fields of res are overwritten. When withTrace is false the per-task trace
// is skipped (res.Trace is truncated to empty).
func (s *Simulator) RunInto(res *RunResult, prog *Program, pl Placement, withTrace bool) error {
	if len(pl) != len(prog.Tasks) {
		return fmt.Errorf("sim: placement %s has %d slots for %d tasks",
			pl, len(pl), len(prog.Tasks))
	}
	res.Placement = append(res.Placement[:0], pl...)
	res.Trace = res.Trace[:0]
	res.Seconds = 0
	res.EdgeBusy, res.AccelBusy = 0, 0
	res.EdgeFlops, res.AccelFlops = 0, 0
	res.BytesMoved = 0
	res.EdgeJoules, res.AccelJoules = 0, 0
	clock := 0.0
	for i := range prog.Tasks {
		task := &prog.Tasks[i]
		kind := pl[i]
		dev := s.Platform.device(kind)

		// Compute cost: launches + roofline with the task's op-mix ceiling.
		eff := task.effOn(kind)
		effFlops := float64(task.Flops) / eff
		tc := effFlops / dev.PeakFlops
		if tm := float64(task.MemBytes) / dev.MemBandwidth; tm > tc {
			tc = tm
		}
		compute := dev.TaskOverhead.Seconds() + float64(task.Launches)*dev.LaunchOverhead.Seconds() + tc
		if i > 0 && pl[i-1] == kind {
			compute += task.CachePenaltySeconds
		}
		if dev.Noise != nil && compute > 0 {
			compute = dev.Noise.Perturb(s.rng, compute)
		}

		// Transfer cost: only accelerator placements move data (host-centric
		// model); latency is paid per link transaction.
		var transfer float64
		var moved int64
		if kind == device.Accelerator {
			moved = task.HostInBytes + task.HostOutBytes
			if moved > 0 {
				nominal := float64(task.Transfers)*s.Platform.Link.Latency.Seconds() +
					float64(moved)/s.Platform.Link.Bandwidth
				transfer = nominal
				if s.Platform.Link.Noise != nil {
					transfer = s.Platform.Link.Noise.Perturb(s.rng, nominal)
				}
			}
		}

		if withTrace {
			res.Trace = append(res.Trace, TaskTrace{
				Task: task.Name, On: kind, Start: clock,
				Compute: compute, Transfer: transfer,
				Flops: task.Flops, Moved: moved,
			})
		}
		clock += compute + transfer
		if kind == device.Accelerator {
			res.AccelBusy += compute
			res.AccelFlops += task.Flops
		} else {
			res.EdgeBusy += compute
			res.EdgeFlops += task.Flops
		}
		res.BytesMoved += moved
	}
	res.Seconds = clock

	// Energy: active while computing, idle while the other side works or the
	// link is busy; transfer energy charged per device model.
	edgeIdle := clock - res.EdgeBusy
	accelIdle := clock - res.AccelBusy
	res.EdgeJoules = s.Platform.Edge.Energy.ComputeEnergy(res.EdgeBusy) +
		s.Platform.Edge.Energy.IdleEnergy(edgeIdle) +
		s.Platform.Edge.Energy.TransferEnergy(res.BytesMoved)
	res.AccelJoules = s.Platform.Accel.Energy.ComputeEnergy(res.AccelBusy) +
		s.Platform.Accel.Energy.IdleEnergy(accelIdle) +
		s.Platform.Accel.Energy.TransferEnergy(res.BytesMoved)
	return nil
}

// Seconds simulates one execution and returns only the total time, the value
// the measurement harness collects. It reuses the simulator's scratch result
// and skips the trace, so it is allocation-free after the first call.
func (s *Simulator) Seconds(prog *Program, pl Placement) (float64, error) {
	if err := s.RunInto(&s.scratch, prog, pl, false); err != nil {
		return 0, err
	}
	return s.scratch.Seconds, nil
}

// NominalSeconds returns the noiseless execution time of a placement — the
// deterministic center of the distribution, used by calibration tests and
// the decision models.
func (s *Simulator) NominalSeconds(prog *Program, pl Placement) (float64, error) {
	if len(pl) != len(prog.Tasks) {
		return nil2(fmt.Errorf("sim: placement %s has %d slots for %d tasks", pl, len(pl), len(prog.Tasks)))
	}
	total := 0.0
	for i := range prog.Tasks {
		task := &prog.Tasks[i]
		kind := pl[i]
		dev := s.Platform.device(kind)
		eff := task.effOn(kind)
		tc := float64(task.Flops) / eff / dev.PeakFlops
		if tm := float64(task.MemBytes) / dev.MemBandwidth; tm > tc {
			tc = tm
		}
		total += dev.TaskOverhead.Seconds() + float64(task.Launches)*dev.LaunchOverhead.Seconds() + tc
		if i > 0 && pl[i-1] == kind {
			total += task.CachePenaltySeconds
		}
		if kind == device.Accelerator {
			moved := task.HostInBytes + task.HostOutBytes
			if moved > 0 {
				total += float64(task.Transfers)*s.Platform.Link.Latency.Seconds() +
					float64(moved)/s.Platform.Link.Bandwidth
			}
		}
	}
	return total, nil
}

func nil2(err error) (float64, error) { return 0, err }

// Sample runs the placement n times and returns the execution-time samples —
// the "N measurements" of the paper's methodology.
func (s *Simulator) Sample(prog *Program, pl Placement, n int) ([]float64, error) {
	out := make([]float64, n)
	for i := range out {
		v, err := s.Seconds(prog, pl)
		if err != nil {
			return nil, err
		}
		out[i] = v
	}
	return out, nil
}
