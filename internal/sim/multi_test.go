package sim

import (
	"math"
	"testing"
	"time"

	"relperf/internal/device"
)

// threeDevicePlatform: host at 1 GFLOP/s, a fast local accelerator at
// 10 GFLOP/s over a fast link, and a very fast remote device behind a slow
// high-latency link.
func threeDevicePlatform() *MultiPlatform {
	return &MultiPlatform{
		Devices: []*device.Device{
			{Name: "host", Kind: device.EdgeDevice, PeakFlops: 1e9, MemBandwidth: 1e9},
			{Name: "gpu", Kind: device.Accelerator, PeakFlops: 10e9, MemBandwidth: 100e9},
			{Name: "server", Kind: device.Accelerator, PeakFlops: 100e9, MemBandwidth: 100e9},
		},
		Links: []*device.Link{
			nil,
			{Name: "pcie", Latency: 10 * time.Microsecond, Bandwidth: 10e9},
			{Name: "wan", Latency: 20 * time.Millisecond, Bandwidth: 50e6},
		},
	}
}

func TestMultiPlatformValidate(t *testing.T) {
	if err := threeDevicePlatform().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := &MultiPlatform{Devices: []*device.Device{device.XeonCore()}, Links: []*device.Link{nil}}
	if bad.Validate() == nil {
		t.Fatal("single-device platform accepted")
	}
	wrongHost := threeDevicePlatform()
	wrongHost.Devices[0] = device.P100()
	if wrongHost.Validate() == nil {
		t.Fatal("accelerator host accepted")
	}
	missingLink := threeDevicePlatform()
	missingLink.Links[2] = nil
	if missingLink.Validate() == nil {
		t.Fatal("target without link accepted")
	}
	shortLinks := threeDevicePlatform()
	shortLinks.Links = shortLinks.Links[:2]
	if shortLinks.Validate() == nil {
		t.Fatal("mismatched link count accepted")
	}
	nilDevice := threeDevicePlatform()
	nilDevice.Devices[1] = nil
	if nilDevice.Validate() == nil {
		t.Fatal("nil device accepted")
	}
}

func TestMultiPlacementString(t *testing.T) {
	p := MultiPlacement{0, 1, 2, 0}
	if p.String() != "DABD" {
		t.Fatalf("String = %q", p.String())
	}
	weird := MultiPlacement{99}
	if weird.String() != "?" {
		t.Fatalf("out-of-range letter = %q", weird.String())
	}
}

func TestParseMultiPlacement(t *testing.T) {
	p, err := ParseMultiPlacement("DAB")
	if err != nil {
		t.Fatal(err)
	}
	if p[0] != 0 || p[1] != 1 || p[2] != 2 {
		t.Fatalf("parsed = %v", p)
	}
	if _, err := ParseMultiPlacement(""); err == nil {
		t.Fatal("empty accepted")
	}
	if _, err := ParseMultiPlacement("D1"); err == nil {
		t.Fatal("digit accepted")
	}
}

func TestEnumerateMultiPlacements(t *testing.T) {
	ps := EnumerateMultiPlacements(3, 3)
	if len(ps) != 27 {
		t.Fatalf("count = %d, want 27", len(ps))
	}
	seen := map[string]bool{}
	for _, p := range ps {
		if len(p) != 3 {
			t.Fatal("wrong length")
		}
		seen[p.String()] = true
	}
	if len(seen) != 27 {
		t.Fatal("duplicates")
	}
	if ps[0].String() != "DDD" {
		t.Fatalf("first = %s", ps[0])
	}
	// Two devices reduces to the binary enumeration count.
	if len(EnumerateMultiPlacements(4, 2)) != 16 {
		t.Fatal("binary count wrong")
	}
	if EnumerateMultiPlacements(0, 3) != nil || EnumerateMultiPlacements(3, 0) != nil {
		t.Fatal("degenerate inputs should be nil")
	}
}

func TestMultiNominalSeconds(t *testing.T) {
	mp := threeDevicePlatform()
	s, err := NewMultiSimulator(mp, 1)
	if err != nil {
		t.Fatal(err)
	}
	prog := &Program{Name: "m", Tasks: []Task{
		{Name: "T", Flops: 1e9, HostInBytes: 1e6, HostOutBytes: 0, Transfers: 1},
	}}
	// Host: 1 s, no transfer.
	tD, err := s.NominalSeconds(prog, MultiPlacement{0})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(tD-1.0) > 1e-12 {
		t.Fatalf("host = %v", tD)
	}
	// GPU: 0.1 s + 10 µs + 1e6/10e9 = 0.1001100 s.
	tA, _ := s.NominalSeconds(prog, MultiPlacement{1})
	if math.Abs(tA-(0.1+10e-6+1e-4)) > 1e-12 {
		t.Fatalf("gpu = %v", tA)
	}
	// Server: 0.01 s compute but 20 ms latency + 1e6/50e6 = 0.02 s transfer.
	tB, _ := s.NominalSeconds(prog, MultiPlacement{2})
	if math.Abs(tB-(0.01+0.02+0.02)) > 1e-12 {
		t.Fatalf("server = %v", tB)
	}
}

func TestMultiSimulatorMatchesBinarySimulator(t *testing.T) {
	// On a two-device MultiPlatform built from a Platform, nominal times
	// must agree with the binary simulator for every placement.
	pl := quietPlatform()
	mp := &MultiPlatform{
		Devices: []*device.Device{pl.Edge, pl.Accel},
		Links:   []*device.Link{nil, pl.Link},
	}
	ms, err := NewMultiSimulator(mp, 1)
	if err != nil {
		t.Fatal(err)
	}
	bs, _ := NewSimulator(pl, 1)
	prog := twoTaskProgram()
	for _, name := range []string{"DD", "DA", "AD", "AA"} {
		bp, _ := ParsePlacement(name)
		mpPl, _ := ParseMultiPlacement(name)
		want, err := bs.NominalSeconds(prog, bp)
		if err != nil {
			t.Fatal(err)
		}
		got, err := ms.NominalSeconds(prog, mpPl)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got-want) > 1e-12 {
			t.Fatalf("%s: multi %v != binary %v", name, got, want)
		}
	}
}

func TestMultiEffOverride(t *testing.T) {
	mp := threeDevicePlatform()
	s, _ := NewMultiSimulator(mp, 1)
	prog := &Program{Name: "e", Tasks: []Task{{Name: "T", Flops: 1e9}}}
	// Without override the server runs at full peak: 0.01 s.
	base, _ := s.NominalSeconds(prog, MultiPlacement{2})
	if math.Abs(base-0.01) > 1e-12 {
		t.Fatalf("base = %v", base)
	}
	// With a 10% efficiency override on device 2 the time grows 10x.
	s.Effs = [][]float64{{0, 0, 0.1}}
	over, _ := s.NominalSeconds(prog, MultiPlacement{2})
	if math.Abs(over-0.1) > 1e-12 {
		t.Fatalf("override = %v", over)
	}
	// Device 0 falls back to kind-based efficiency (zero entry).
	host, _ := s.NominalSeconds(prog, MultiPlacement{0})
	if math.Abs(host-1.0) > 1e-12 {
		t.Fatalf("host fallback = %v", host)
	}
}

func TestMultiCachePenalty(t *testing.T) {
	mp := threeDevicePlatform()
	s, _ := NewMultiSimulator(mp, 1)
	prog := &Program{Name: "c", Tasks: []Task{
		{Name: "L1", Flops: 1e9},
		{Name: "L2", Flops: 1e9, CachePenaltySeconds: 0.5},
	}}
	same, _ := s.NominalSeconds(prog, MultiPlacement{0, 0})
	diff, _ := s.NominalSeconds(prog, MultiPlacement{1, 0})
	// same-device run pays the penalty; the split run does not (and the
	// GPU leg is 10x faster).
	if math.Abs(same-2.5) > 1e-12 {
		t.Fatalf("same-device = %v", same)
	}
	if math.Abs(diff-1.1) > 1e-12 {
		t.Fatalf("split = %v", diff)
	}
}

func TestMultiErrors(t *testing.T) {
	mp := threeDevicePlatform()
	s, _ := NewMultiSimulator(mp, 1)
	prog := twoTaskProgram()
	if _, err := s.NominalSeconds(prog, MultiPlacement{0}); err == nil {
		t.Fatal("length mismatch accepted")
	}
	if _, err := s.Seconds(prog, MultiPlacement{0, 9}); err == nil {
		t.Fatal("out-of-range device accepted")
	}
	if _, err := NewMultiSimulator(&MultiPlatform{}, 1); err == nil {
		t.Fatal("invalid platform accepted")
	}
}

func TestMultiSampleReproducible(t *testing.T) {
	mk := func() *MultiPlatform {
		mp := threeDevicePlatform()
		mp.Devices[0].Noise = device.LogNormalNoise{Sigma: 0.1}
		mp.Devices[1].Noise = device.LogNormalNoise{Sigma: 0.1}
		return mp
	}
	prog := twoTaskProgram()
	pl := MultiPlacement{1, 0}
	a, _ := NewMultiSimulator(mk(), 5)
	b, _ := NewMultiSimulator(mk(), 5)
	sa, err := a.Sample(prog, pl, 10)
	if err != nil {
		t.Fatal(err)
	}
	sb, _ := b.Sample(prog, pl, 10)
	for i := range sa {
		if sa[i] != sb[i] {
			t.Fatal("not reproducible")
		}
	}
	varied := false
	for i := 1; i < len(sa); i++ {
		if sa[i] != sa[0] {
			varied = true
		}
	}
	if !varied {
		t.Fatal("noisy multi samples constant")
	}
}
