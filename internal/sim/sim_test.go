package sim

import (
	"math"
	"testing"
	"time"

	"relperf/internal/device"
)

// quietPlatform returns a deterministic platform with easy numbers:
// edge 1 GFLOP/s, accel 10 GFLOP/s with 1 ms launch, link 1 GB/s + 1 ms.
func quietPlatform() *Platform {
	return &Platform{
		Edge: &device.Device{
			Name: "edge", Kind: device.EdgeDevice,
			PeakFlops: 1e9, MemBandwidth: 1e9,
		},
		Accel: &device.Device{
			Name: "accel", Kind: device.Accelerator,
			PeakFlops: 10e9, MemBandwidth: 100e9,
			LaunchOverhead: time.Millisecond,
		},
		Link: &device.Link{Name: "link", Latency: time.Millisecond, Bandwidth: 1e9},
	}
}

func twoTaskProgram() *Program {
	return &Program{
		Name: "p",
		Tasks: []Task{
			{Name: "L1", Flops: 1e8, Launches: 1, HostInBytes: 1e6, HostOutBytes: 1e6, Transfers: 2},
			{Name: "L2", Flops: 1e9, Launches: 1, HostInBytes: 1e7, HostOutBytes: 1e6, Transfers: 2},
		},
	}
}

func TestPlacementString(t *testing.T) {
	p := Placement{device.EdgeDevice, device.Accelerator, device.EdgeDevice}
	if p.String() != "DAD" {
		t.Fatalf("String = %q", p.String())
	}
}

func TestParsePlacement(t *testing.T) {
	p, err := ParsePlacement("dAD")
	if err != nil {
		t.Fatal(err)
	}
	if p.String() != "DAD" {
		t.Fatalf("round trip = %q", p.String())
	}
	if _, err := ParsePlacement("DXA"); err == nil {
		t.Fatal("invalid letter accepted")
	}
	if _, err := ParsePlacement(""); err == nil {
		t.Fatal("empty placement accepted")
	}
}

func TestEnumeratePlacements(t *testing.T) {
	ps := EnumeratePlacements(3)
	if len(ps) != 8 {
		t.Fatalf("count = %d", len(ps))
	}
	// Lexicographic with D first; the paper's Table I covers exactly these.
	want := []string{"DDD", "DDA", "DAD", "DAA", "ADD", "ADA", "AAD", "AAA"}
	for i, w := range want {
		if ps[i].String() != w {
			t.Fatalf("placement %d = %s, want %s", i, ps[i], w)
		}
	}
	if EnumeratePlacements(0) != nil {
		t.Fatal("n=0 should be nil")
	}
	seen := map[string]bool{}
	for _, p := range EnumeratePlacements(4) {
		seen[p.String()] = true
	}
	if len(seen) != 16 {
		t.Fatalf("duplicates among 4-task placements: %d unique", len(seen))
	}
}

func TestTaskValidate(t *testing.T) {
	good := Task{Name: "x"}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Task{
		{},
		{Name: "x", Flops: -1},
		{Name: "x", EdgeEff: 1.5},
		{Name: "x", AccelEff: -0.1},
		{Name: "x", Transfers: -2},
	}
	for i, b := range bad {
		if err := b.Validate(); err == nil {
			t.Errorf("bad task %d accepted", i)
		}
	}
}

func TestProgramValidate(t *testing.T) {
	if err := (&Program{Name: "empty"}).Validate(); err == nil {
		t.Fatal("empty program accepted")
	}
	p := twoTaskProgram()
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	p.Tasks[1].Flops = -1
	if err := p.Validate(); err == nil {
		t.Fatal("bad task in program accepted")
	}
}

func TestPlatformValidate(t *testing.T) {
	if err := (&Platform{}).Validate(); err == nil {
		t.Fatal("nil platform members accepted")
	}
	pl := quietPlatform()
	if err := pl.Validate(); err != nil {
		t.Fatal(err)
	}
	// Swapped kinds must be rejected.
	swapped := &Platform{Edge: device.P100(), Accel: device.P100(), Link: device.PCIe3x16()}
	if err := swapped.Validate(); err == nil {
		t.Fatal("accelerator in edge slot accepted")
	}
	wrongAccel := &Platform{Edge: device.XeonCore(), Accel: device.XeonCore(), Link: device.PCIe3x16()}
	if err := wrongAccel.Validate(); err == nil {
		t.Fatal("edge device in accel slot accepted")
	}
	if err := DefaultPlatform().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestNominalSecondsDD(t *testing.T) {
	s, err := NewSimulator(quietPlatform(), 1)
	if err != nil {
		t.Fatal(err)
	}
	prog := twoTaskProgram()
	pl, _ := ParsePlacement("DD")
	got, err := s.NominalSeconds(prog, pl)
	if err != nil {
		t.Fatal(err)
	}
	// Edge at 1 GFLOP/s, no launch cost, no transfers: 0.1 + 1.0 s.
	if math.Abs(got-1.1) > 1e-12 {
		t.Fatalf("DD nominal = %v, want 1.1", got)
	}
}

func TestNominalSecondsAA(t *testing.T) {
	s, _ := NewSimulator(quietPlatform(), 1)
	prog := twoTaskProgram()
	pl, _ := ParsePlacement("AA")
	got, err := s.NominalSeconds(prog, pl)
	if err != nil {
		t.Fatal(err)
	}
	// Accel: launch 1ms each; compute 0.01 + 0.1; transfers:
	// L1: 2*1ms + 2e6/1e9 = 0.004 ; L2: 2*1ms + 1.1e7/1e9 = 0.013
	want := (0.001 + 0.01 + 0.002 + 0.002) + (0.001 + 0.1 + 0.002 + 0.011)
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("AA nominal = %v, want %v", got, want)
	}
}

func TestNominalRooflineMemoryBound(t *testing.T) {
	s, _ := NewSimulator(quietPlatform(), 1)
	prog := &Program{Name: "m", Tasks: []Task{
		{Name: "T", Flops: 1e6, MemBytes: 5e8}, // mem time 0.5 s >> compute 1 ms on edge
	}}
	pl, _ := ParsePlacement("D")
	got, _ := s.NominalSeconds(prog, pl)
	if math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("memory-bound nominal = %v, want 0.5", got)
	}
}

func TestEfficiencyScalesCompute(t *testing.T) {
	s, _ := NewSimulator(quietPlatform(), 1)
	prog := &Program{Name: "e", Tasks: []Task{
		{Name: "T", Flops: 1e9, AccelEff: 0.1}, // only 10% of accel peak usable
	}}
	pl, _ := ParsePlacement("A")
	got, _ := s.NominalSeconds(prog, pl)
	// 1e9 / (0.1 * 10e9) = 1.0 s (plus no launches, no transfer).
	if math.Abs(got-1.0) > 1e-12 {
		t.Fatalf("eff-scaled nominal = %v, want 1.0", got)
	}
	// EdgeEff defaults to 1.
	plD, _ := ParsePlacement("D")
	gotD, _ := s.NominalSeconds(prog, plD)
	if math.Abs(gotD-1.0) > 1e-12 {
		t.Fatalf("edge nominal = %v, want 1.0", gotD)
	}
}

func TestRunMatchesNominalWithoutNoise(t *testing.T) {
	s, _ := NewSimulator(quietPlatform(), 7)
	prog := twoTaskProgram()
	for _, ps := range []string{"DD", "DA", "AD", "AA"} {
		pl, _ := ParsePlacement(ps)
		nominal, err := s.NominalSeconds(prog, pl)
		if err != nil {
			t.Fatal(err)
		}
		got, err := s.Seconds(prog, pl)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got-nominal) > 1e-12 {
			t.Fatalf("%s: noiseless Run %v != nominal %v", ps, got, nominal)
		}
	}
}

func TestRunTraceAccounting(t *testing.T) {
	s, _ := NewSimulator(quietPlatform(), 1)
	prog := twoTaskProgram()
	pl, _ := ParsePlacement("DA")
	res, err := s.Run(prog, pl)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Trace) != 2 {
		t.Fatalf("trace length %d", len(res.Trace))
	}
	if res.Trace[0].On != device.EdgeDevice || res.Trace[1].On != device.Accelerator {
		t.Fatal("trace devices wrong")
	}
	if res.Trace[0].Start != 0 {
		t.Fatal("first task should start at 0")
	}
	if math.Abs(res.Trace[1].Start-res.Trace[0].End()) > 1e-15 {
		t.Fatal("second task should start when first ends")
	}
	if math.Abs(res.Seconds-res.Trace[1].End()) > 1e-15 {
		t.Fatal("total should equal last task end")
	}
	if res.EdgeFlops != 1e8 || res.AccelFlops != 1e9 {
		t.Fatalf("flop split wrong: %d / %d", res.EdgeFlops, res.AccelFlops)
	}
	if res.BytesMoved != 1.1e7 {
		t.Fatalf("bytes moved = %d", res.BytesMoved)
	}
	if res.Trace[0].Moved != 0 {
		t.Fatal("edge task should move nothing")
	}
	// Busy times partition into the placement.
	if math.Abs(res.EdgeBusy-res.Trace[0].Compute) > 1e-15 {
		t.Fatal("edge busy accounting wrong")
	}
	if math.Abs(res.AccelBusy-res.Trace[1].Compute) > 1e-15 {
		t.Fatal("accel busy accounting wrong")
	}
}

func TestRunEnergyPositiveAndOrdered(t *testing.T) {
	pl := DefaultPlatform()
	s, _ := NewSimulator(pl, 11)
	prog := twoTaskProgram()
	pd, _ := ParsePlacement("DD")
	pa, _ := ParsePlacement("AA")
	rd, err := s.Run(prog, pd)
	if err != nil {
		t.Fatal(err)
	}
	ra, err := s.Run(prog, pa)
	if err != nil {
		t.Fatal(err)
	}
	if rd.EdgeJoules <= 0 || rd.AccelJoules <= 0 || ra.EdgeJoules <= 0 {
		t.Fatal("energies must be positive")
	}
	// All-offloaded runs burn fewer active joules on the edge device per
	// second of busy time; the edge should do zero flops under AA.
	if ra.EdgeFlops != 0 {
		t.Fatalf("AA edge flops = %d, want 0", ra.EdgeFlops)
	}
	if rd.AccelFlops != 0 {
		t.Fatalf("DD accel flops = %d, want 0", rd.AccelFlops)
	}
}

func TestRunPlacementLengthMismatch(t *testing.T) {
	s, _ := NewSimulator(quietPlatform(), 1)
	prog := twoTaskProgram()
	pl, _ := ParsePlacement("DDD")
	if _, err := s.Run(prog, pl); err == nil {
		t.Fatal("length mismatch accepted by Run")
	}
	if _, err := s.NominalSeconds(prog, pl); err == nil {
		t.Fatal("length mismatch accepted by NominalSeconds")
	}
}

func TestNewSimulatorRejectsBadPlatform(t *testing.T) {
	if _, err := NewSimulator(&Platform{}, 1); err == nil {
		t.Fatal("bad platform accepted")
	}
}

func TestSampleReproducible(t *testing.T) {
	prog := twoTaskProgram()
	pl, _ := ParsePlacement("AD")
	a, _ := NewSimulator(DefaultPlatform(), 42)
	b, _ := NewSimulator(DefaultPlatform(), 42)
	sa, err := a.Sample(prog, pl, 20)
	if err != nil {
		t.Fatal(err)
	}
	sb, _ := b.Sample(prog, pl, 20)
	for i := range sa {
		if sa[i] != sb[i] {
			t.Fatal("same-seed samples differ")
		}
	}
	c, _ := NewSimulator(DefaultPlatform(), 43)
	sc, _ := c.Sample(prog, pl, 20)
	same := true
	for i := range sa {
		if sa[i] != sc[i] {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds produced identical samples")
	}
}

func TestSampleNoisySpread(t *testing.T) {
	s, _ := NewSimulator(DefaultPlatform(), 3)
	prog := twoTaskProgram()
	pl, _ := ParsePlacement("DD")
	xs, err := s.Sample(prog, pl, 100)
	if err != nil {
		t.Fatal(err)
	}
	lo, hi := xs[0], xs[0]
	for _, x := range xs {
		if x <= 0 {
			t.Fatalf("non-positive sample %v", x)
		}
		if x < lo {
			lo = x
		}
		if x > hi {
			hi = x
		}
	}
	if lo == hi {
		t.Fatal("noisy platform produced constant samples")
	}
}

func TestZeroTransferTasksStayLocalCost(t *testing.T) {
	// A task with no host bytes costs no link time even on the accelerator.
	s, _ := NewSimulator(quietPlatform(), 1)
	prog := &Program{Name: "z", Tasks: []Task{{Name: "T", Flops: 1e9}}}
	pl, _ := ParsePlacement("A")
	res, err := s.Run(prog, pl)
	if err != nil {
		t.Fatal(err)
	}
	if res.Trace[0].Transfer != 0 || res.BytesMoved != 0 {
		t.Fatal("transfer charged for zero-byte task")
	}
}

func BenchmarkSimulateTableIShape(b *testing.B) {
	s, _ := NewSimulator(DefaultPlatform(), 1)
	prog := twoTaskProgram()
	pl, _ := ParsePlacement("DA")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Seconds(prog, pl); err != nil {
			b.Fatal(err)
		}
	}
}

func TestTaskOverheadCharged(t *testing.T) {
	pl := quietPlatform()
	pl.Accel.TaskOverhead = 3 * time.Millisecond
	s, _ := NewSimulator(pl, 1)
	prog := &Program{Name: "o", Tasks: []Task{{Name: "T", Flops: 1e9}}}
	pA, _ := ParsePlacement("A")
	got, err := s.NominalSeconds(prog, pA)
	if err != nil {
		t.Fatal(err)
	}
	// accel: 3 ms task overhead + 0.1 s compute (no launches, no bytes).
	if math.Abs(got-0.103) > 1e-12 {
		t.Fatalf("task overhead nominal = %v, want 0.103", got)
	}
}

func TestCachePenaltyChargedOnlyOnSameDevice(t *testing.T) {
	s, _ := NewSimulator(quietPlatform(), 1)
	prog := &Program{Name: "c", Tasks: []Task{
		{Name: "L1", Flops: 1e9},
		{Name: "L2", Flops: 1e9, CachePenaltySeconds: 0.5},
	}}
	dd, _ := ParsePlacement("DD")
	ad, _ := ParsePlacement("AD")
	tDD, err := s.NominalSeconds(prog, dd)
	if err != nil {
		t.Fatal(err)
	}
	tAD, err := s.NominalSeconds(prog, ad)
	if err != nil {
		t.Fatal(err)
	}
	// DD: both on edge (1 GFLOP/s): 1 + (1 + 0.5 penalty) = 2.5 s.
	if math.Abs(tDD-2.5) > 1e-12 {
		t.Fatalf("DD with cache penalty = %v, want 2.5", tDD)
	}
	// AD: L1 on accel (0.1 + 1 ms launch? no launches set → 0.1), then L2
	// on edge with a DIFFERENT predecessor device: no penalty: 0.1 + 1.
	if math.Abs(tAD-1.1) > 1e-12 {
		t.Fatalf("AD with cache penalty = %v, want 1.1", tAD)
	}
	// The noisy Run path agrees on the noiseless platform.
	rDD, err := s.Seconds(prog, dd)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(rDD-2.5) > 1e-12 {
		t.Fatalf("Run with cache penalty = %v", rDD)
	}
}

func TestCachePenaltyFirstTaskNeverCharged(t *testing.T) {
	s, _ := NewSimulator(quietPlatform(), 1)
	prog := &Program{Name: "c1", Tasks: []Task{
		{Name: "L1", Flops: 1e9, CachePenaltySeconds: 99},
	}}
	d, _ := ParsePlacement("D")
	got, err := s.NominalSeconds(prog, d)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-1.0) > 1e-12 {
		t.Fatalf("first task charged a cache penalty: %v", got)
	}
}

func TestNegativeCachePenaltyRejected(t *testing.T) {
	task := Task{Name: "x", CachePenaltySeconds: -1}
	if task.Validate() == nil {
		t.Fatal("negative cache penalty accepted")
	}
}

func TestRunIntoMatchesRun(t *testing.T) {
	plat := DefaultPlatform()
	prog := &Program{Name: "p", Tasks: []Task{
		{Name: "L1", Flops: 1e9, Launches: 5, HostInBytes: 1e6, HostOutBytes: 1e6, Transfers: 2},
		{Name: "L2", Flops: 2e9, Launches: 5, HostInBytes: 1e6, HostOutBytes: 1e6, Transfers: 2},
	}}
	pl, _ := ParsePlacement("DA")
	s1, _ := NewSimulator(plat, 42)
	s2, _ := NewSimulator(plat, 42)
	var reused RunResult
	for i := 0; i < 5; i++ {
		fresh, err := s1.Run(prog, pl)
		if err != nil {
			t.Fatal(err)
		}
		if err := s2.RunInto(&reused, prog, pl, true); err != nil {
			t.Fatal(err)
		}
		if fresh.Seconds != reused.Seconds || fresh.EdgeJoules != reused.EdgeJoules ||
			fresh.AccelJoules != reused.AccelJoules || fresh.AccelBusy != reused.AccelBusy ||
			fresh.BytesMoved != reused.BytesMoved {
			t.Fatalf("run %d: RunInto diverges from Run", i)
		}
		if len(fresh.Trace) != len(reused.Trace) {
			t.Fatalf("run %d: trace lengths differ", i)
		}
		for j := range fresh.Trace {
			if fresh.Trace[j] != reused.Trace[j] {
				t.Fatalf("run %d: trace step %d differs", i, j)
			}
		}
	}
	// Trace-off mode truncates the trace but keeps the totals.
	if err := s2.RunInto(&reused, prog, pl, false); err != nil {
		t.Fatal(err)
	}
	if len(reused.Trace) != 0 {
		t.Fatal("withTrace=false left a trace")
	}
}

func TestSecondsZeroAllocs(t *testing.T) {
	s, _ := NewSimulator(DefaultPlatform(), 3)
	prog := &Program{Name: "p", Tasks: []Task{
		{Name: "L1", Flops: 1e9},
		{Name: "L2", Flops: 1e9, HostInBytes: 1e6, HostOutBytes: 1e6, Transfers: 1},
	}}
	pl, _ := ParsePlacement("DA")
	if _, err := s.Seconds(prog, pl); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(50, func() {
		if _, err := s.Seconds(prog, pl); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("Seconds allocates %v times per run after warm-up, want 0", allocs)
	}
}
