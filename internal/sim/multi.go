package sim

import (
	"fmt"
	"strings"

	"relperf/internal/device"
	"relperf/internal/xrand"
)

// Multi-device generalization. The paper's methodology "extends naturally to
// any Device-Accelerator(s) combinations (such as CPU-Raspbian,
// Smartphone-GPU(s) etc.)" — with k devices an L-task code has k^L
// equivalent algorithms. This file provides the k-device platform and
// simulator; the two-device Platform remains the common case and the
// calibrated reproduction target.

// MultiPlatform is a host (device 0, the edge device where data lives) plus
// any number of offload targets, each behind its own link.
type MultiPlatform struct {
	// Devices[0] is the host; Devices[1:] are offload targets.
	Devices []*device.Device
	// Links[i] connects the host to Devices[i]; Links[0] is ignored (may
	// be nil). len(Links) must equal len(Devices).
	Links []*device.Link
}

// Validate checks the configuration.
func (mp *MultiPlatform) Validate() error {
	if len(mp.Devices) < 2 {
		return fmt.Errorf("sim: multi platform needs a host and at least one target")
	}
	if len(mp.Links) != len(mp.Devices) {
		return fmt.Errorf("sim: need one link slot per device (%d links for %d devices)",
			len(mp.Links), len(mp.Devices))
	}
	if mp.Devices[0] == nil || mp.Devices[0].Kind != device.EdgeDevice {
		return fmt.Errorf("sim: device 0 must be the edge host")
	}
	for i, d := range mp.Devices {
		if d == nil {
			return fmt.Errorf("sim: device %d is nil", i)
		}
		if err := d.Validate(); err != nil {
			return err
		}
		if i > 0 {
			if mp.Links[i] == nil {
				return fmt.Errorf("sim: device %d has no link to the host", i)
			}
			if err := mp.Links[i].Validate(); err != nil {
				return err
			}
		}
	}
	return nil
}

// deviceLetters maps device indices to placement letters: the host is "D",
// offload targets are "A", "B", "C", ...
const deviceLetters = "DABCEFGHIJKLMNOPQRSTUVWXYZ"

// MultiPlacement assigns each task to a device index.
type MultiPlacement []int

// String renders the placement with one letter per task.
func (p MultiPlacement) String() string {
	var b strings.Builder
	for _, d := range p {
		if d >= 0 && d < len(deviceLetters) {
			b.WriteByte(deviceLetters[d])
		} else {
			b.WriteByte('?')
		}
	}
	return b.String()
}

// ParseMultiPlacement converts a letter string back to device indices.
func ParseMultiPlacement(s string) (MultiPlacement, error) {
	if s == "" {
		return nil, fmt.Errorf("sim: empty placement")
	}
	p := make(MultiPlacement, 0, len(s))
	for _, r := range s {
		idx := strings.IndexRune(deviceLetters, r)
		if idx < 0 {
			return nil, fmt.Errorf("sim: invalid placement letter %q in %q", r, s)
		}
		p = append(p, idx)
	}
	return p, nil
}

// EnumerateMultiPlacements returns all devices^tasks placements in
// lexicographic order (host-first). The count grows exponentially; callers
// with large L should race a subset instead (package search).
func EnumerateMultiPlacements(tasks, devices int) []MultiPlacement {
	if tasks <= 0 || devices <= 0 {
		return nil
	}
	total := 1
	for i := 0; i < tasks; i++ {
		total *= devices
	}
	out := make([]MultiPlacement, 0, total)
	cur := make(MultiPlacement, tasks)
	var rec func(pos int)
	rec = func(pos int) {
		if pos == tasks {
			out = append(out, append(MultiPlacement(nil), cur...))
			return
		}
		for d := 0; d < devices; d++ {
			cur[pos] = d
			rec(pos + 1)
		}
	}
	rec(0)
	return out
}

// MultiSimulator produces execution-time samples on a MultiPlatform. Task
// efficiency on device i is taken from Task.EffByDevice when the task's
// program was built with per-device efficiencies (see TaskEffs), otherwise
// from the task's EdgeEff/AccelEff by device kind.
type MultiSimulator struct {
	Platform *MultiPlatform
	rng      *xrand.Rand
	// Effs[taskIndex][deviceIndex] overrides efficiencies when non-nil.
	Effs [][]float64
}

// NewMultiSimulator validates the platform and returns a simulator.
func NewMultiSimulator(mp *MultiPlatform, seed uint64) (*MultiSimulator, error) {
	if err := mp.Validate(); err != nil {
		return nil, err
	}
	return &MultiSimulator{Platform: mp, rng: xrand.New(seed)}, nil
}

// effFor resolves the efficiency of task t (index ti) on device di.
func (s *MultiSimulator) effFor(t *Task, ti, di int) float64 {
	if s.Effs != nil && ti < len(s.Effs) && di < len(s.Effs[ti]) && s.Effs[ti][di] > 0 {
		return s.Effs[ti][di]
	}
	return t.effOn(s.Platform.Devices[di].Kind)
}

// NominalSeconds returns the noiseless execution time of a placement.
func (s *MultiSimulator) NominalSeconds(prog *Program, pl MultiPlacement) (float64, error) {
	if err := s.check(prog, pl); err != nil {
		return 0, err
	}
	total := 0.0
	for i := range prog.Tasks {
		task := &prog.Tasks[i]
		di := pl[i]
		dev := s.Platform.Devices[di]
		eff := s.effFor(task, i, di)
		tc := float64(task.Flops) / eff / dev.PeakFlops
		if tm := float64(task.MemBytes) / dev.MemBandwidth; tm > tc {
			tc = tm
		}
		total += dev.TaskOverhead.Seconds() + float64(task.Launches)*dev.LaunchOverhead.Seconds() + tc
		if i > 0 && pl[i-1] == di {
			total += task.CachePenaltySeconds
		}
		if di != 0 {
			moved := task.HostInBytes + task.HostOutBytes
			if moved > 0 {
				link := s.Platform.Links[di]
				total += float64(task.Transfers)*link.Latency.Seconds() +
					float64(moved)/link.Bandwidth
			}
		}
	}
	return total, nil
}

// Seconds returns one noisy execution-time sample.
func (s *MultiSimulator) Seconds(prog *Program, pl MultiPlacement) (float64, error) {
	if err := s.check(prog, pl); err != nil {
		return 0, err
	}
	total := 0.0
	for i := range prog.Tasks {
		task := &prog.Tasks[i]
		di := pl[i]
		dev := s.Platform.Devices[di]
		eff := s.effFor(task, i, di)
		tc := float64(task.Flops) / eff / dev.PeakFlops
		if tm := float64(task.MemBytes) / dev.MemBandwidth; tm > tc {
			tc = tm
		}
		compute := dev.TaskOverhead.Seconds() + float64(task.Launches)*dev.LaunchOverhead.Seconds() + tc
		if i > 0 && pl[i-1] == di {
			compute += task.CachePenaltySeconds
		}
		if dev.Noise != nil && compute > 0 {
			compute = dev.Noise.Perturb(s.rng, compute)
		}
		total += compute
		if di != 0 {
			moved := task.HostInBytes + task.HostOutBytes
			if moved > 0 {
				link := s.Platform.Links[di]
				transfer := float64(task.Transfers)*link.Latency.Seconds() +
					float64(moved)/link.Bandwidth
				if link.Noise != nil {
					transfer = link.Noise.Perturb(s.rng, transfer)
				}
				total += transfer
			}
		}
	}
	return total, nil
}

// Sample collects n measurements of a placement.
func (s *MultiSimulator) Sample(prog *Program, pl MultiPlacement, n int) ([]float64, error) {
	out := make([]float64, n)
	for i := range out {
		v, err := s.Seconds(prog, pl)
		if err != nil {
			return nil, err
		}
		out[i] = v
	}
	return out, nil
}

func (s *MultiSimulator) check(prog *Program, pl MultiPlacement) error {
	if len(pl) != len(prog.Tasks) {
		return fmt.Errorf("sim: placement %s has %d slots for %d tasks", pl, len(pl), len(prog.Tasks))
	}
	for _, di := range pl {
		if di < 0 || di >= len(s.Platform.Devices) {
			return fmt.Errorf("sim: placement %s references device %d of %d", pl, di, len(s.Platform.Devices))
		}
	}
	return nil
}
