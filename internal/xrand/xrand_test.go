package xrand

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same seed diverged at step %d", i)
		}
	}
}

func TestSeedsDiffer(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 1000; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("different seeds collided %d/1000 times", same)
	}
}

func TestReseed(t *testing.T) {
	r := New(7)
	first := make([]uint64, 16)
	for i := range first {
		first[i] = r.Uint64()
	}
	r.Seed(7)
	for i := range first {
		if got := r.Uint64(); got != first[i] {
			t.Fatalf("reseed did not reset stream at %d: %d != %d", i, got, first[i])
		}
	}
}

func TestSplitIndependence(t *testing.T) {
	r := New(3)
	a := r.Split()
	b := r.Split()
	same := 0
	for i := 0; i < 1000; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("split streams collided %d times", same)
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(11)
	f := func(_ uint32) bool {
		v := r.Float64()
		return v >= 0 && v < 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Fatal(err)
	}
}

func TestIntnRangeAndCoverage(t *testing.T) {
	r := New(13)
	const n = 7
	seen := make([]int, n)
	for i := 0; i < 10000; i++ {
		v := r.Intn(n)
		if v < 0 || v >= n {
			t.Fatalf("Intn(%d) = %d out of range", n, v)
		}
		seen[v]++
	}
	for v, c := range seen {
		if c == 0 {
			t.Fatalf("value %d never produced in 10000 draws", v)
		}
		// Expect ~1428 each; allow generous slack.
		if c < 1000 || c > 2000 {
			t.Fatalf("value %d frequency %d implausibly far from uniform", v, c)
		}
	}
}

func TestIntnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestUniform(t *testing.T) {
	r := New(17)
	for i := 0; i < 1000; i++ {
		v := r.Uniform(-3, 5)
		if v < -3 || v >= 5 {
			t.Fatalf("Uniform(-3,5) = %v out of range", v)
		}
	}
}

// moments checks that the empirical mean and variance of n draws from gen are
// within tol of the expectations.
func moments(t *testing.T, name string, gen func() float64, n int, wantMean, wantVar, tol float64) {
	t.Helper()
	var sum, sumsq float64
	for i := 0; i < n; i++ {
		v := gen()
		sum += v
		sumsq += v * v
	}
	mean := sum / float64(n)
	variance := sumsq/float64(n) - mean*mean
	if math.Abs(mean-wantMean) > tol {
		t.Errorf("%s: mean = %.4f, want %.4f ± %.3f", name, mean, wantMean, tol)
	}
	if math.Abs(variance-wantVar) > tol*math.Max(1, wantVar)*3 {
		t.Errorf("%s: var = %.4f, want %.4f", name, variance, wantVar)
	}
}

func TestNormMoments(t *testing.T) {
	r := New(19)
	moments(t, "Norm", r.Norm, 200000, 0, 1, 0.02)
}

func TestNormalMoments(t *testing.T) {
	r := New(23)
	moments(t, "Normal(5,2)", func() float64 { return r.Normal(5, 2) }, 200000, 5, 4, 0.05)
}

func TestExpMoments(t *testing.T) {
	r := New(29)
	moments(t, "Exp(2)", func() float64 { return r.Exp(2) }, 200000, 0.5, 0.25, 0.02)
}

func TestLogNormalPositive(t *testing.T) {
	r := New(31)
	for i := 0; i < 5000; i++ {
		if v := r.LogNormal(0, 0.5); v <= 0 {
			t.Fatalf("LogNormal produced non-positive %v", v)
		}
	}
}

func TestLogNormalMedian(t *testing.T) {
	r := New(37)
	// Median of LogNormal(mu, sigma) is exp(mu).
	const n = 100000
	below := 0
	for i := 0; i < n; i++ {
		if r.LogNormal(1, 0.7) < math.E {
			below++
		}
	}
	frac := float64(below) / n
	if frac < 0.48 || frac > 0.52 {
		t.Fatalf("LogNormal median fraction %.3f, want ~0.5", frac)
	}
}

func TestParetoBound(t *testing.T) {
	r := New(41)
	for i := 0; i < 5000; i++ {
		if v := r.Pareto(2, 3); v < 2 {
			t.Fatalf("Pareto(2,3) below xm: %v", v)
		}
	}
}

func TestGammaMoments(t *testing.T) {
	r := New(43)
	// Gamma(k, theta): mean k*theta, var k*theta^2.
	moments(t, "Gamma(3, 0.5)", func() float64 { return r.Gamma(3, 0.5) }, 200000, 1.5, 0.75, 0.03)
	moments(t, "Gamma(0.5, 2)", func() float64 { return r.Gamma(0.5, 2) }, 200000, 1.0, 2.0, 0.05)
}

func TestBernoulli(t *testing.T) {
	r := New(47)
	hits := 0
	const n = 100000
	for i := 0; i < n; i++ {
		if r.Bernoulli(0.3) {
			hits++
		}
	}
	frac := float64(hits) / n
	if frac < 0.28 || frac > 0.32 {
		t.Fatalf("Bernoulli(0.3) frequency %.3f", frac)
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := New(53)
	f := func(nRaw uint8) bool {
		n := int(nRaw%50) + 1
		p := r.Perm(n)
		if len(p) != n {
			return false
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestShuffleUniformish(t *testing.T) {
	// Position counts of element 0 across many shuffles of [0,1,2,3] should
	// be roughly uniform.
	r := New(59)
	counts := make([]int, 4)
	const trials = 40000
	for i := 0; i < trials; i++ {
		s := []int{0, 1, 2, 3}
		r.ShuffleInts(s)
		for pos, v := range s {
			if v == 0 {
				counts[pos]++
			}
		}
	}
	for pos, c := range counts {
		if c < trials/4-trials/20 || c > trials/4+trials/20 {
			t.Fatalf("element 0 at position %d: %d of %d (not uniform)", pos, c, trials)
		}
	}
}

func TestResample(t *testing.T) {
	r := New(61)
	src := []float64{1, 2, 3}
	dst := make([]float64, 1000)
	r.Resample(dst, src)
	for _, v := range dst {
		if v != 1 && v != 2 && v != 3 {
			t.Fatalf("resample produced foreign value %v", v)
		}
	}
}

func TestResampleIdx(t *testing.T) {
	r := New(67)
	idx := make([]int, 1000)
	r.ResampleIdx(idx, 5)
	for _, v := range idx {
		if v < 0 || v >= 5 {
			t.Fatalf("index %d out of range", v)
		}
	}
}

func TestMul64(t *testing.T) {
	cases := []struct {
		a, b, hi, lo uint64
	}{
		{0, 0, 0, 0},
		{1, 1, 0, 1},
		{math.MaxUint64, 2, 1, math.MaxUint64 - 1},
		{1 << 32, 1 << 32, 1, 0},
	}
	for _, c := range cases {
		hi, lo := mul64(c.a, c.b)
		if hi != c.hi || lo != c.lo {
			t.Errorf("mul64(%d,%d) = (%d,%d), want (%d,%d)", c.a, c.b, hi, lo, c.hi, c.lo)
		}
	}
}

func BenchmarkUint64(b *testing.B) {
	r := New(1)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink += r.Uint64()
	}
	_ = sink
}

func BenchmarkNorm(b *testing.B) {
	r := New(1)
	var sink float64
	for i := 0; i < b.N; i++ {
		sink += r.Norm()
	}
	_ = sink
}

func TestShuffleGeneric(t *testing.T) {
	r := New(71)
	s := []string{"a", "b", "c", "d", "e"}
	orig := append([]string(nil), s...)
	changed := false
	for trial := 0; trial < 20 && !changed; trial++ {
		r.Shuffle(len(s), func(i, j int) { s[i], s[j] = s[j], s[i] })
		for i := range s {
			if s[i] != orig[i] {
				changed = true
			}
		}
	}
	if !changed {
		t.Fatal("Shuffle never permuted")
	}
	// Still a permutation.
	seen := map[string]bool{}
	for _, v := range s {
		seen[v] = true
	}
	if len(seen) != len(orig) {
		t.Fatal("Shuffle lost elements")
	}
}

func TestMixDeterministicAndKeySensitive(t *testing.T) {
	if Mix(1, 2) != Mix(1, 2) {
		t.Fatal("Mix is not a pure function")
	}
	seen := map[uint64]bool{}
	for key := uint64(0); key < 1000; key++ {
		v := Mix(7, key)
		if seen[v] {
			t.Fatalf("Mix(7, %d) collides", key)
		}
		seen[v] = true
	}
	if Mix(1, 0) == Mix(2, 0) {
		t.Fatal("Mix ignores the seed")
	}
}

func TestNewKeyedIndependentStreams(t *testing.T) {
	// Same (seed, key) → identical stream; adjacent keys → different
	// streams; derivation never depends on other draws.
	a1 := NewKeyed(5, 10)
	a2 := NewKeyed(5, 10)
	b := NewKeyed(5, 11)
	var differs bool
	for i := 0; i < 100; i++ {
		va := a1.Uint64()
		if va != a2.Uint64() {
			t.Fatal("equal (seed, key) streams diverge")
		}
		if va != b.Uint64() {
			differs = true
		}
	}
	if !differs {
		t.Fatal("adjacent keys produced identical streams")
	}
	// Order independence: deriving key 10 after consuming from another
	// generator yields the same stream.
	parent := New(5)
	parent.Uint64()
	c := NewKeyed(5, 10)
	d := NewKeyed(5, 10)
	_ = parent
	for i := 0; i < 10; i++ {
		if c.Uint64() != d.Uint64() {
			t.Fatal("keyed stream depends on unrelated draws")
		}
	}
}
