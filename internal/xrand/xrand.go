// Package xrand provides the deterministic pseudo-random substrate used by
// every stochastic component of the repository: noise models, bootstrap
// resampling, workload generation and the shuffles of the clustering
// procedure.
//
// The package deliberately avoids math/rand so that (a) every experiment is
// reproducible from a single uint64 seed, (b) independent sub-streams can be
// split off deterministically (Split), and (c) the generators are safe to
// embed in value types without hidden global state.
//
// The core generator is xoshiro256++ seeded through SplitMix64, the
// construction recommended by Blackman & Vigna. It passes BigCrush and is
// more than adequate for simulation workloads.
package xrand

import "math"

// splitMix64 advances a SplitMix64 state and returns the next value.
// It is used for seeding and for Split; it must never be exposed raw.
func splitMix64(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Rand is a xoshiro256++ generator. The zero value is not usable; construct
// with New. Rand is not safe for concurrent use; use Split to derive
// independent generators for concurrent goroutines.
type Rand struct {
	s [4]uint64
}

// New returns a generator deterministically seeded from seed.
func New(seed uint64) *Rand {
	r := &Rand{}
	r.Seed(seed)
	return r
}

// Seed resets the generator to the state derived from seed.
func (r *Rand) Seed(seed uint64) {
	sm := seed
	for i := range r.s {
		r.s[i] = splitMix64(&sm)
	}
	// xoshiro256++ must not be seeded with the all-zero state; SplitMix64
	// cannot produce four consecutive zeros, but guard anyway.
	if r.s[0]|r.s[1]|r.s[2]|r.s[3] == 0 {
		r.s[0] = 0x9e3779b97f4a7c15
	}
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 uniformly distributed bits.
func (r *Rand) Uint64() uint64 {
	s := &r.s
	result := rotl(s[0]+s[3], 23) + s[0]
	t := s[1] << 17
	s[2] ^= s[0]
	s[3] ^= s[1]
	s[1] ^= s[2]
	s[0] ^= s[3]
	s[2] ^= t
	s[3] = rotl(s[3], 45)
	return result
}

// Split returns a new generator whose stream is statistically independent of
// r's future output. It draws a fresh seed through a SplitMix64 step keyed by
// r, so repeated Splits yield distinct generators.
//
// Split advances r, so the derived stream depends on how many values r has
// already produced. Concurrent engines that must stay deterministic across
// worker counts should key their streams by work-unit index with Mix or
// NewKeyed instead, which depend only on (seed, key).
func (r *Rand) Split() *Rand {
	return New(r.Uint64())
}

// Mix deterministically derives a sub-stream seed from a base seed and a
// stream key by passing both words through the SplitMix64 finalizer. Equal
// (seed, key) pairs always yield the same value regardless of program order —
// the property the parallel study engine relies on for bit-identical results
// at any worker count. Adjacent keys (0, 1, 2, ...) decorrelate fully: the
// finalizer is a bijective avalanche function.
func Mix(seed, key uint64) uint64 {
	s := seed
	v := splitMix64(&s)
	s = v ^ (key * 0x9e3779b97f4a7c15)
	return splitMix64(&s)
}

// NewKeyed returns a generator for sub-stream key of the stream identified by
// seed: New(Mix(seed, key)). Use one key per independent work unit (placement
// index, clustering repetition, pair id) so concurrent units draw from
// non-overlapping deterministic streams.
func NewKeyed(seed, key uint64) *Rand {
	return New(Mix(seed, key))
}

// Int63 returns a non-negative int64.
func (r *Rand) Int63() int64 {
	return int64(r.Uint64() >> 1)
}

// Intn returns a uniform int in [0, n). It panics if n <= 0.
// Lemire's multiply-shift rejection method avoids modulo bias.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("xrand: Intn with non-positive n")
	}
	bound := uint64(n)
	for {
		v := r.Uint64()
		hi, lo := mul64(v, bound)
		if lo >= bound || lo >= (-bound)%bound {
			return int(hi)
		}
	}
}

// mul64 returns the 128-bit product of a and b as (hi, lo).
func mul64(a, b uint64) (hi, lo uint64) {
	const mask = 1<<32 - 1
	a0, a1 := a&mask, a>>32
	b0, b1 := b&mask, b>>32
	t := a1*b0 + (a0*b0)>>32
	w1 := t&mask + a0*b1
	hi = a1*b1 + t>>32 + w1>>32
	lo = a * b
	return hi, lo
}

// Float64 returns a uniform float64 in [0, 1) with 53 bits of precision.
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Uniform returns a uniform float64 in [lo, hi).
func (r *Rand) Uniform(lo, hi float64) float64 {
	return lo + (hi-lo)*r.Float64()
}

// Norm returns a standard normal variate (polar Box–Muller; the spare value
// is intentionally discarded to keep Rand a single-word-of-state value type).
func (r *Rand) Norm() float64 {
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s > 0 && s < 1 {
			return u * math.Sqrt(-2*math.Log(s)/s)
		}
	}
}

// Normal returns a normal variate with the given mean and standard deviation.
func (r *Rand) Normal(mean, sigma float64) float64 {
	return mean + sigma*r.Norm()
}

// LogNormal returns exp(N(mu, sigma)); the distribution of multiplicative
// timing noise, and the paper's measured execution-time histograms are well
// described by it (right-skewed with a hard lower bound).
func (r *Rand) LogNormal(mu, sigma float64) float64 {
	return math.Exp(r.Normal(mu, sigma))
}

// Exp returns an exponential variate with rate lambda (mean 1/lambda).
func (r *Rand) Exp(lambda float64) float64 {
	if lambda <= 0 {
		panic("xrand: Exp with non-positive rate")
	}
	for {
		u := r.Float64()
		if u > 0 {
			return -math.Log(u) / lambda
		}
	}
}

// Pareto returns a Pareto(xm, alpha) variate: heavy-tailed, used to model the
// rare large OS-noise spikes observed in repeated kernel timings.
func (r *Rand) Pareto(xm, alpha float64) float64 {
	if xm <= 0 || alpha <= 0 {
		panic("xrand: Pareto requires positive parameters")
	}
	for {
		u := r.Float64()
		if u > 0 {
			return xm / math.Pow(u, 1/alpha)
		}
	}
}

// Gamma returns a Gamma(shape k, scale theta) variate using the
// Marsaglia–Tsang method (with Johnk boost for k < 1).
func (r *Rand) Gamma(k, theta float64) float64 {
	if k <= 0 || theta <= 0 {
		panic("xrand: Gamma requires positive parameters")
	}
	if k < 1 {
		// Boost: Gamma(k) = Gamma(k+1) * U^(1/k).
		u := r.Float64()
		for u == 0 {
			u = r.Float64()
		}
		return r.Gamma(k+1, theta) * math.Pow(u, 1/k)
	}
	d := k - 1.0/3.0
	c := 1 / math.Sqrt(9*d)
	for {
		x := r.Norm()
		v := 1 + c*x
		if v <= 0 {
			continue
		}
		v = v * v * v
		u := r.Float64()
		if u == 0 {
			continue
		}
		if math.Log(u) < 0.5*x*x+d-d*v+d*math.Log(v) {
			return d * v * theta
		}
	}
}

// Bernoulli returns true with probability p.
func (r *Rand) Bernoulli(p float64) bool {
	return r.Float64() < p
}

// Perm returns a uniformly random permutation of [0, n).
func (r *Rand) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	r.ShuffleInts(p)
	return p
}

// ShuffleInts shuffles s in place (Fisher–Yates).
func (r *Rand) ShuffleInts(s []int) {
	for i := len(s) - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		s[i], s[j] = s[j], s[i]
	}
}

// Shuffle shuffles n elements using the provided swap function.
func (r *Rand) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}

// ResampleIdx fills dst with uniform indices in [0, n): one bootstrap
// resample of size len(dst) from a sample of size n.
func (r *Rand) ResampleIdx(dst []int, n int) {
	for i := range dst {
		dst[i] = r.Intn(n)
	}
}

// Resample draws len(dst) values from src with replacement into dst.
func (r *Rand) Resample(dst, src []float64) {
	n := len(src)
	for i := range dst {
		dst[i] = src[r.Intn(n)]
	}
}
