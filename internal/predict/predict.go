// Package predict implements the paper's stated downstream use of the
// performance clusters: training models that predict relative performance
// without executing the algorithms ("these clusters can be used as ground
// truth to train performance models that can automatically identify the
// algorithm of required performance without executing them", §I). The paper
// further notes that such models train better with a Triplet loss, "where
// both positive (fast algorithm) and negative (worst algorithm) examples are
// used" — which requires algorithms from *all* performance classes, the
// reason the paper clusters beyond the fastest subset.
//
// The model is a linear scorer s(x) = w·x over static placement features
// (no execution needed): per-device FLOP loads, launch counts, transferred
// bytes. Training minimizes a pairwise hinge ("algorithm of a better class
// must score lower") or a triplet hinge (anchor/positive from one class,
// negative from a worse class, separated by a margin). Scores order the
// algorithms; thresholding the gaps recovers predicted classes.
package predict

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"relperf/internal/sim"
	"relperf/internal/stats"
	"relperf/internal/xrand"
)

// FeatureDim is the length of the feature vector produced by Features.
const FeatureDim = 8

// FeatureNames documents the feature vector layout.
var FeatureNames = [FeatureDim]string{
	"edge-flop-seconds",  // Σ flops/(edge peak · eff) for edge-placed tasks
	"accel-flop-seconds", // Σ flops/(accel peak · eff) for accel-placed tasks
	"edge-launch-cost",   // Σ launches · edge launch overhead
	"accel-launch-cost",  // Σ launches · accel launch overhead + task overheads
	"transfer-seconds",   // Σ bytes / link bandwidth
	"transfer-latency",   // Σ transactions · link latency
	"cache-penalties",    // Σ same-device carry penalties
	"bias",
}

// Features maps (program, placement) to the static descriptor the model
// scores. Every entry is a *time-dimensioned* resource count derived from
// task metadata and platform constants — no measurement involved. A linear
// model with unit weights would reproduce the analytical cost model; the
// learning task is recovering effective weights from cluster labels alone.
func Features(pl *sim.Platform, prog *sim.Program, placement sim.Placement) ([]float64, error) {
	if len(placement) != len(prog.Tasks) {
		return nil, fmt.Errorf("predict: placement %s does not fit %d tasks", placement, len(prog.Tasks))
	}
	f := make([]float64, FeatureDim)
	for i := range prog.Tasks {
		t := &prog.Tasks[i]
		onAccel := placement[i].Letter() == "A"
		if onAccel {
			eff := t.AccelEff
			if eff <= 0 {
				eff = 1
			}
			f[1] += float64(t.Flops) / (pl.Accel.PeakFlops * eff)
			f[3] += float64(t.Launches)*pl.Accel.LaunchOverhead.Seconds() + pl.Accel.TaskOverhead.Seconds()
			moved := t.HostInBytes + t.HostOutBytes
			f[4] += float64(moved) / pl.Link.Bandwidth
			f[5] += float64(t.Transfers) * pl.Link.Latency.Seconds()
		} else {
			eff := t.EdgeEff
			if eff <= 0 {
				eff = 1
			}
			f[0] += float64(t.Flops) / (pl.Edge.PeakFlops * eff)
			f[2] += float64(t.Launches)*pl.Edge.LaunchOverhead.Seconds() + pl.Edge.TaskOverhead.Seconds()
		}
		if i > 0 && placement[i-1] == placement[i] {
			f[6] += t.CachePenaltySeconds
		}
	}
	f[7] = 1
	return f, nil
}

// Example is one labelled training instance.
type Example struct {
	// X is the feature vector.
	X []float64
	// Class is the final performance class (1 = fastest).
	Class int
	// Name labels the instance in diagnostics.
	Name string
}

// Model is a trained linear scorer: lower score = faster class.
type Model struct {
	W []float64
}

// Score returns the predicted slowness of a feature vector.
func (m *Model) Score(x []float64) float64 {
	var s float64
	for i, w := range m.W {
		s += w * x[i]
	}
	return s
}

// TrainConfig controls training.
type TrainConfig struct {
	// Epochs over the pair/triplet set (default 200).
	Epochs int
	// LearningRate for SGD (default 0.1).
	LearningRate float64
	// Margin required between classes (default 1.0 in normalized units).
	Margin float64
	// L2 regularization strength (default 1e-4).
	L2 float64
	// Seed shuffles the training pairs.
	Seed uint64
	// Triplet switches from pairwise hinge to the triplet objective.
	Triplet bool
}

func (c *TrainConfig) defaults() {
	if c.Epochs <= 0 {
		c.Epochs = 200
	}
	if c.LearningRate <= 0 {
		c.LearningRate = 0.1
	}
	if c.Margin <= 0 {
		c.Margin = 1
	}
	if c.L2 <= 0 {
		c.L2 = 1e-4
	}
}

// normalize scales each feature to zero mean, unit deviation over the
// training set (bias column excluded) and returns the scaler.
type scaler struct {
	mean, std []float64
}

func fitScaler(xs [][]float64) *scaler {
	d := len(xs[0])
	s := &scaler{mean: make([]float64, d), std: make([]float64, d)}
	for j := 0; j < d; j++ {
		var sum float64
		for _, x := range xs {
			sum += x[j]
		}
		s.mean[j] = sum / float64(len(xs))
		var ss float64
		for _, x := range xs {
			dv := x[j] - s.mean[j]
			ss += dv * dv
		}
		s.std[j] = math.Sqrt(ss / float64(len(xs)))
		if s.std[j] == 0 {
			s.std[j] = 1
			s.mean[j] = 0 // keep constant columns (bias) as-is
		}
	}
	return s
}

func (s *scaler) apply(x []float64) []float64 {
	out := make([]float64, len(x))
	for j := range x {
		out[j] = (x[j] - s.mean[j]) / s.std[j]
	}
	return out
}

// Trained bundles the model with its feature scaler.
type Trained struct {
	Model  Model
	scaler *scaler
	// TrainViolations is the fraction of constraints still violated after
	// training (0 = perfectly separable ordering).
	TrainViolations float64
}

// Score returns the predicted slowness of raw (unscaled) features.
func (t *Trained) Score(x []float64) float64 {
	return t.Model.Score(t.scaler.apply(x))
}

// Train fits the scorer on labelled examples.
func Train(examples []Example, cfg TrainConfig) (*Trained, error) {
	if len(examples) < 2 {
		return nil, errors.New("predict: need at least two examples")
	}
	cfg.defaults()
	d := len(examples[0].X)
	for _, e := range examples {
		if len(e.X) != d {
			return nil, errors.New("predict: inconsistent feature dimensions")
		}
	}
	raw := make([][]float64, len(examples))
	for i, e := range examples {
		raw[i] = e.X
	}
	sc := fitScaler(raw)
	xs := make([][]float64, len(examples))
	for i := range raw {
		xs[i] = sc.apply(raw[i])
	}

	// Build the constraint set.
	type pair struct{ fast, slow int }
	var pairs []pair
	type triplet struct{ anchor, pos, neg int }
	var triplets []triplet
	for i := range examples {
		for j := range examples {
			if examples[i].Class < examples[j].Class {
				pairs = append(pairs, pair{i, j})
			}
		}
	}
	if cfg.Triplet {
		for a := range examples {
			for p := range examples {
				if p == a || examples[p].Class != examples[a].Class {
					continue
				}
				for n := range examples {
					if examples[n].Class > examples[a].Class {
						triplets = append(triplets, triplet{a, p, n})
					}
				}
			}
		}
	}
	if len(pairs) == 0 {
		return nil, errors.New("predict: all examples share one class; nothing to order")
	}

	w := make([]float64, d)
	rng := xrand.New(cfg.Seed)
	dot := func(x []float64) float64 {
		var s float64
		for i := range w {
			s += w[i] * x[i]
		}
		return s
	}
	update := func(fast, slow []float64) bool {
		// Hinge: score(slow) - score(fast) >= margin.
		if dot(slow)-dot(fast) >= cfg.Margin {
			return false
		}
		for i := range w {
			g := fast[i] - slow[i] // d(loss)/dw
			w[i] -= cfg.LearningRate * (g + cfg.L2*w[i])
		}
		return true
	}

	order := make([]int, len(pairs))
	for i := range order {
		order[i] = i
	}
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		rng.ShuffleInts(order)
		for _, k := range order {
			update(xs[pairs[k].fast], xs[pairs[k].slow])
		}
		if cfg.Triplet {
			for _, t := range triplets {
				// Triplet: |s(a)-s(p)| small, s(n) - s(a) >= margin.
				update(xs[t.anchor], xs[t.neg])
				update(xs[t.pos], xs[t.neg])
				// Pull same-class scores together.
				da := dot(xs[t.anchor]) - dot(xs[t.pos])
				if math.Abs(da) > cfg.Margin/4 {
					sign := 1.0
					if da < 0 {
						sign = -1
					}
					for i := range w {
						g := sign * (xs[t.anchor][i] - xs[t.pos][i])
						w[i] -= cfg.LearningRate * 0.1 * g
					}
				}
			}
		}
	}

	violations := 0
	for _, p := range pairs {
		if dot(xs[p.slow])-dot(xs[p.fast]) < 0 {
			violations++
		}
	}
	return &Trained{
		Model:           Model{W: w},
		scaler:          sc,
		TrainViolations: float64(violations) / float64(len(pairs)),
	}, nil
}

// Evaluation summarizes predicted-vs-true ordering quality.
type Evaluation struct {
	// KendallTau between predicted scores and true class labels.
	KendallTau float64
	// PairAccuracy is the fraction of cross-class pairs ordered correctly.
	PairAccuracy float64
	// TopClassHit reports whether the best-scored example belongs to the
	// true top class — the "automatically identify the fast algorithm"
	// objective.
	TopClassHit bool
}

// Evaluate scores held-out examples.
func Evaluate(t *Trained, examples []Example) (*Evaluation, error) {
	if len(examples) < 2 {
		return nil, errors.New("predict: need at least two examples to evaluate")
	}
	scores := make([]float64, len(examples))
	classes := make([]float64, len(examples))
	for i, e := range examples {
		scores[i] = t.Score(e.X)
		classes[i] = float64(e.Class)
	}
	tau, err := stats.KendallTau(scores, classes)
	if err != nil {
		return nil, err
	}
	var correct, total int
	for i := range examples {
		for j := range examples {
			if examples[i].Class < examples[j].Class {
				total++
				if scores[i] < scores[j] {
					correct++
				}
			}
		}
	}
	ev := &Evaluation{KendallTau: tau}
	if total > 0 {
		ev.PairAccuracy = float64(correct) / float64(total)
	}
	best := 0
	for i := range scores {
		if scores[i] < scores[best] {
			best = i
		}
	}
	minClass := examples[0].Class
	for _, e := range examples {
		if e.Class < minClass {
			minClass = e.Class
		}
	}
	ev.TopClassHit = examples[best].Class == minClass
	return ev, nil
}

// PredictRanking orders example indices by predicted score (fastest first).
func PredictRanking(t *Trained, examples []Example) []int {
	idx := make([]int, len(examples))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool {
		return t.Score(examples[idx[a]].X) < t.Score(examples[idx[b]].X)
	})
	return idx
}
