package predict

import (
	"testing"

	"relperf/internal/sim"
	"relperf/internal/workload"
)

// labelled builds examples from a program by ranking placements with the
// noiseless cost model (classes = quartiles of the nominal ordering). This
// stands in for measured cluster labels in unit tests; the integration test
// below uses real clustering output.
func labelled(t *testing.T, plat *sim.Platform, prog *sim.Program) []Example {
	t.Helper()
	s, err := sim.NewSimulator(plat, 1)
	if err != nil {
		t.Fatal(err)
	}
	pls := sim.EnumeratePlacements(len(prog.Tasks))
	type scored struct {
		pl  sim.Placement
		sec float64
	}
	arr := make([]scored, len(pls))
	for i, pl := range pls {
		v, err := s.NominalSeconds(prog, pl)
		if err != nil {
			t.Fatal(err)
		}
		arr[i] = scored{pl, v}
	}
	// Class by rank position in the nominal ordering (pairs of two).
	sorted := append([]scored(nil), arr...)
	for i := 0; i < len(sorted); i++ {
		for j := i + 1; j < len(sorted); j++ {
			if sorted[j].sec < sorted[i].sec {
				sorted[i], sorted[j] = sorted[j], sorted[i]
			}
		}
	}
	classOf := map[string]int{}
	for i, sc := range sorted {
		classOf[sc.pl.String()] = i/2 + 1
	}
	var out []Example
	for _, sc := range arr {
		x, err := Features(plat, prog, sc.pl)
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, Example{X: x, Class: classOf[sc.pl.String()], Name: sc.pl.String()})
	}
	return out
}

func TestFeaturesShapeAndContent(t *testing.T) {
	plat := workload.TableIPlatform()
	prog := workload.TableI(10, plat.Accel.PeakFlops)
	pls := sim.EnumeratePlacements(3)
	for _, pl := range pls {
		x, err := Features(plat, prog, pl)
		if err != nil {
			t.Fatal(err)
		}
		if len(x) != FeatureDim {
			t.Fatalf("dim = %d", len(x))
		}
		if x[FeatureDim-1] != 1 {
			t.Fatal("bias feature missing")
		}
		for j, v := range x {
			if v < 0 {
				t.Fatalf("negative feature %s = %v", FeatureNames[j], v)
			}
		}
	}
	// DDD has zero accelerator features; AAA zero edge features.
	ddd, _ := sim.ParsePlacement("DDD")
	x, _ := Features(plat, prog, ddd)
	if x[1] != 0 || x[3] != 0 || x[4] != 0 || x[5] != 0 {
		t.Fatalf("DDD has accel features: %v", x)
	}
	aaa, _ := sim.ParsePlacement("AAA")
	x, _ = Features(plat, prog, aaa)
	if x[0] != 0 || x[2] != 0 {
		t.Fatalf("AAA has edge features: %v", x)
	}
	if x[1] == 0 || x[4] == 0 {
		t.Fatalf("AAA missing accel features: %v", x)
	}
}

func TestFeaturesPlacementMismatch(t *testing.T) {
	plat := workload.TableIPlatform()
	prog := workload.TableI(10, plat.Accel.PeakFlops)
	pl, _ := sim.ParsePlacement("DD")
	if _, err := Features(plat, prog, pl); err == nil {
		t.Fatal("short placement accepted")
	}
}

func TestTrainRecoversOrdering(t *testing.T) {
	plat := workload.TableIPlatform()
	prog := workload.TableI(10, plat.Accel.PeakFlops)
	examples := labelled(t, plat, prog)
	trained, err := Train(examples, TrainConfig{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	ev, err := Evaluate(trained, examples)
	if err != nil {
		t.Fatal(err)
	}
	if ev.PairAccuracy < 0.9 {
		t.Fatalf("train pair accuracy = %v", ev.PairAccuracy)
	}
	if ev.KendallTau < 0.7 {
		t.Fatalf("train tau = %v", ev.KendallTau)
	}
	if !ev.TopClassHit {
		t.Fatal("failed to identify the fastest class")
	}
}

func TestTrainGeneralizesAcrossWorkloads(t *testing.T) {
	// Train on the Table-I workload (n=10), evaluate on a DIFFERENT
	// configuration of the same code family (n=40 and other sizes): the
	// model must order unseen placements correctly without executing them.
	plat := workload.TableIPlatform()
	train := labelled(t, plat, workload.TableI(10, plat.Accel.PeakFlops))
	trained, err := Train(train, TrainConfig{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}

	heldSpecs := []workload.MathTaskSpec{
		{Name: "H1", Size: 60, Iters: 20, Lambda: 0.5},
		{Name: "H2", Size: 120, Iters: 20, Lambda: 0.5},
		{Name: "H3", Size: 250, Iters: 20, Lambda: 0.5},
	}
	heldProg := &sim.Program{Name: "held-out"}
	for i := range heldSpecs {
		heldProg.Tasks = append(heldProg.Tasks, heldSpecs[i].Task(plat.Accel.PeakFlops))
	}
	held := labelled(t, plat, heldProg)
	ev, err := Evaluate(trained, held)
	if err != nil {
		t.Fatal(err)
	}
	if ev.PairAccuracy < 0.75 {
		t.Fatalf("held-out pair accuracy = %v", ev.PairAccuracy)
	}
	if ev.KendallTau < 0.5 {
		t.Fatalf("held-out tau = %v", ev.KendallTau)
	}
}

func TestTripletTrainingAtLeastAsGood(t *testing.T) {
	plat := workload.TableIPlatform()
	prog := workload.TableI(10, plat.Accel.PeakFlops)
	examples := labelled(t, plat, prog)
	pairwise, err := Train(examples, TrainConfig{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	triplet, err := Train(examples, TrainConfig{Seed: 7, Triplet: true})
	if err != nil {
		t.Fatal(err)
	}
	evP, _ := Evaluate(pairwise, examples)
	evT, _ := Evaluate(triplet, examples)
	// The triplet objective uses more constraints; it must not be
	// meaningfully worse on the training distribution.
	if evT.PairAccuracy < evP.PairAccuracy-0.1 {
		t.Fatalf("triplet accuracy %v much worse than pairwise %v", evT.PairAccuracy, evP.PairAccuracy)
	}
}

func TestTrainErrors(t *testing.T) {
	if _, err := Train(nil, TrainConfig{}); err == nil {
		t.Fatal("empty training set accepted")
	}
	same := []Example{
		{X: []float64{1, 1}, Class: 1},
		{X: []float64{2, 1}, Class: 1},
	}
	if _, err := Train(same, TrainConfig{}); err == nil {
		t.Fatal("single-class training set accepted")
	}
	mixedDim := []Example{
		{X: []float64{1, 1}, Class: 1},
		{X: []float64{2}, Class: 2},
	}
	if _, err := Train(mixedDim, TrainConfig{}); err == nil {
		t.Fatal("inconsistent dims accepted")
	}
}

func TestEvaluateErrors(t *testing.T) {
	plat := workload.TableIPlatform()
	prog := workload.TableI(10, plat.Accel.PeakFlops)
	examples := labelled(t, plat, prog)
	trained, _ := Train(examples, TrainConfig{Seed: 1})
	if _, err := Evaluate(trained, examples[:1]); err == nil {
		t.Fatal("single example evaluation accepted")
	}
}

func TestPredictRanking(t *testing.T) {
	plat := workload.TableIPlatform()
	prog := workload.TableI(10, plat.Accel.PeakFlops)
	examples := labelled(t, plat, prog)
	trained, _ := Train(examples, TrainConfig{Seed: 9})
	order := PredictRanking(trained, examples)
	if len(order) != len(examples) {
		t.Fatal("ranking length wrong")
	}
	// Scores must be non-decreasing along the predicted order.
	prev := trained.Score(examples[order[0]].X)
	for _, i := range order[1:] {
		s := trained.Score(examples[i].X)
		if s < prev {
			t.Fatal("ranking not sorted by score")
		}
		prev = s
	}
	// The predicted-fastest should be DDA (the true best placement).
	if examples[order[0]].Name != "DDA" {
		t.Logf("predicted fastest = %s (true best DDA)", examples[order[0]].Name)
		if examples[order[0]].Class > 2 {
			t.Fatal("predicted fastest is from a slow class")
		}
	}
}

func TestTrainDeterministic(t *testing.T) {
	plat := workload.TableIPlatform()
	prog := workload.TableI(10, plat.Accel.PeakFlops)
	examples := labelled(t, plat, prog)
	a, _ := Train(examples, TrainConfig{Seed: 11})
	b, _ := Train(examples, TrainConfig{Seed: 11})
	for i := range a.Model.W {
		if a.Model.W[i] != b.Model.W[i] {
			t.Fatal("training not deterministic under fixed seed")
		}
	}
}

func TestScalerConstantColumn(t *testing.T) {
	xs := [][]float64{{1, 5}, {2, 5}, {3, 5}}
	sc := fitScaler(xs)
	out := sc.apply([]float64{2, 5})
	if out[1] != 5 {
		t.Fatalf("constant column rescaled: %v", out)
	}
}
