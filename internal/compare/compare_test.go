package compare

import (
	"testing"

	"relperf/internal/xrand"
)

// sample draws n log-normal "execution times" centered at median m.
func sample(rng *xrand.Rand, n int, m, sigma float64) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = m * rng.LogNormal(0, sigma)
	}
	return out
}

func TestOutcomeString(t *testing.T) {
	if Better.String() != "better" || Worse.String() != "worse" || Equivalent.String() != "equivalent" {
		t.Fatal("Outcome strings wrong")
	}
	if Outcome(7).String() != "Outcome(7)" {
		t.Fatal("unknown outcome string wrong")
	}
}

func TestOutcomeFlip(t *testing.T) {
	if Better.Flip() != Worse || Worse.Flip() != Better || Equivalent.Flip() != Equivalent {
		t.Fatal("Flip wrong")
	}
}

func TestBootstrapSeparated(t *testing.T) {
	rng := xrand.New(1)
	fast := sample(rng, 50, 1.0, 0.05)
	slow := sample(rng, 50, 2.0, 0.05)
	c := NewBootstrap(2)
	got, err := c.Compare(fast, slow)
	if err != nil {
		t.Fatal(err)
	}
	if got != Better {
		t.Fatalf("fast vs slow = %v", got)
	}
	got, _ = c.Compare(slow, fast)
	if got != Worse {
		t.Fatalf("slow vs fast = %v", got)
	}
}

func TestBootstrapEquivalent(t *testing.T) {
	rng := xrand.New(3)
	a := sample(rng, 50, 1.0, 0.1)
	b := sample(rng, 50, 1.0, 0.1)
	c := NewBootstrap(4)
	got, err := c.Compare(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if got != Equivalent {
		t.Fatalf("same-median samples = %v", got)
	}
}

func TestBootstrapSelfEquivalent(t *testing.T) {
	rng := xrand.New(5)
	a := sample(rng, 30, 1.0, 0.2)
	c := NewBootstrap(6)
	got, err := c.Compare(a, a)
	if err != nil {
		t.Fatal(err)
	}
	if got != Equivalent {
		t.Fatalf("self comparison = %v", got)
	}
	r, _ := c.WinRate(a, a)
	if r < 0.4 || r > 0.6 {
		t.Fatalf("self win rate = %v, want ~0.5", r)
	}
}

func TestBootstrapAntisymmetry(t *testing.T) {
	// For strongly separated samples, Compare(a,b) must be the flip of
	// Compare(b,a). (Near the threshold stochastic flips are legitimate,
	// so only the separated case is asserted.)
	rng := xrand.New(7)
	for trial := 0; trial < 20; trial++ {
		a := sample(rng, 40, 1.0, 0.05)
		b := sample(rng, 40, 1.5, 0.05)
		c := NewBootstrap(uint64(100 + trial))
		ab, err := c.Compare(a, b)
		if err != nil {
			t.Fatal(err)
		}
		ba, _ := c.Compare(b, a)
		if ab != ba.Flip() {
			t.Fatalf("trial %d: Compare(a,b)=%v but Compare(b,a)=%v", trial, ab, ba)
		}
	}
}

func TestBootstrapStochasticNearThreshold(t *testing.T) {
	// Two distributions one noise-width apart at N=30: repeated comparison
	// of the SAME samples must sometimes say Better and sometimes
	// Equivalent — the paper's "once in every three comparisons" effect.
	// At N=30 the realized gap between two sample sets varies pair to pair,
	// so scan pairs until one lands near the decision threshold; that pair
	// must produce mixed outcomes under repeated comparison of the SAME
	// measurements.
	rng := xrand.New(9)
	c := NewBootstrap(10)
	foundMixed := false
	for trial := 0; trial < 50 && !foundMixed; trial++ {
		a := sample(rng, 30, 1.000, 0.06)
		b := sample(rng, 30, 1.015, 0.06)
		counts := map[Outcome]int{}
		for i := 0; i < 50; i++ {
			o, err := c.Compare(a, b)
			if err != nil {
				t.Fatal(err)
			}
			counts[o]++
		}
		if counts[Worse] > counts[Better] && counts[Worse] > 25 {
			t.Fatalf("direction strongly inverted: %v", counts)
		}
		if len(counts) >= 2 {
			foundMixed = true
		}
	}
	if !foundMixed {
		t.Fatal("no sample pair produced mixed outcomes; comparator not stochastic near threshold")
	}
}

func TestBootstrapEmptySample(t *testing.T) {
	c := NewBootstrap(1)
	if _, err := c.Compare(nil, []float64{1}); err != ErrBadSample {
		t.Fatal("empty a accepted")
	}
	if _, err := c.Compare([]float64{1}, nil); err != ErrBadSample {
		t.Fatal("empty b accepted")
	}
}

func TestBootstrapDefaultsApplied(t *testing.T) {
	// Zero-valued config fields fall back to defaults rather than
	// dividing by zero.
	c := &Bootstrap{}
	cFromSeed := NewBootstrapFrom(xrand.New(3))
	c.rng = cFromSeed.rng
	c.Rounds = 0
	c.Margin = 0
	c.Quantiles = nil
	a := []float64{1, 1, 1}
	b := []float64{5, 5, 5}
	o, err := c.Compare(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if o != Better {
		t.Fatalf("constant separated = %v", o)
	}
}

func TestBootstrapConstantSamples(t *testing.T) {
	c := NewBootstrap(11)
	same := []float64{2, 2, 2, 2}
	o, err := c.Compare(same, same)
	if err != nil {
		t.Fatal(err)
	}
	if o != Equivalent {
		t.Fatalf("identical constants = %v", o)
	}
	r, _ := c.WinRate(same, same)
	if r != 0.5 {
		t.Fatalf("tie win rate = %v, want exactly 0.5 via half-credit", r)
	}
}

func TestBootstrapSingleElement(t *testing.T) {
	c := NewBootstrap(12)
	o, err := c.Compare([]float64{1}, []float64{2})
	if err != nil {
		t.Fatal(err)
	}
	if o != Better {
		t.Fatalf("1 vs 2 = %v", o)
	}
}

func TestKSComparator(t *testing.T) {
	rng := xrand.New(13)
	fast := sample(rng, 100, 1.0, 0.05)
	slow := sample(rng, 100, 1.5, 0.05)
	c := KS{}
	if o, err := c.Compare(fast, slow); err != nil || o != Better {
		t.Fatalf("KS fast vs slow = %v, %v", o, err)
	}
	if o, _ := c.Compare(slow, fast); o != Worse {
		t.Fatalf("KS slow vs fast = %v", o)
	}
	if o, _ := c.Compare(fast, fast); o != Equivalent {
		t.Fatalf("KS self = %v", o)
	}
	if _, err := c.Compare(nil, fast); err != ErrBadSample {
		t.Fatal("KS empty accepted")
	}
}

func TestKSDeterministic(t *testing.T) {
	rng := xrand.New(14)
	a := sample(rng, 30, 1.0, 0.1)
	b := sample(rng, 30, 1.08, 0.1)
	c := KS{}
	first, _ := c.Compare(a, b)
	for i := 0; i < 20; i++ {
		if o, _ := c.Compare(a, b); o != first {
			t.Fatal("KS comparator must be deterministic")
		}
	}
}

func TestMannWhitneyComparator(t *testing.T) {
	rng := xrand.New(15)
	fast := sample(rng, 60, 1.0, 0.05)
	slow := sample(rng, 60, 1.4, 0.05)
	c := MannWhitney{}
	if o, err := c.Compare(fast, slow); err != nil || o != Better {
		t.Fatalf("MW fast vs slow = %v, %v", o, err)
	}
	if o, _ := c.Compare(slow, fast); o != Worse {
		t.Fatalf("MW slow vs fast = %v", o)
	}
	if o, _ := c.Compare(fast, fast); o != Equivalent {
		t.Fatalf("MW self = %v", o)
	}
	if _, err := c.Compare(fast, nil); err != ErrBadSample {
		t.Fatal("MW empty accepted")
	}
}

func TestMeanThresholdComparator(t *testing.T) {
	c := MeanThreshold{RelTol: 0.05}
	a := []float64{1, 1, 1}
	b := []float64{1.01, 1.01, 1.01}
	if o, err := c.Compare(a, b); err != nil || o != Equivalent {
		t.Fatalf("1%% apart = %v, %v", o, err)
	}
	slow := []float64{2, 2, 2}
	if o, _ := c.Compare(a, slow); o != Better {
		t.Fatalf("2x apart = %v", o)
	}
	if o, _ := c.Compare(slow, a); o != Worse {
		t.Fatalf("2x apart flipped = %v", o)
	}
	if _, err := c.Compare(nil, a); err != ErrBadSample {
		t.Fatal("mean empty accepted")
	}
}

func TestFuncAdapter(t *testing.T) {
	called := false
	f := Func(func(a, b []float64) (Outcome, error) {
		called = true
		return Better, nil
	})
	o, err := f.Compare(nil, nil)
	if err != nil || o != Better || !called {
		t.Fatal("Func adapter broken")
	}
}

func TestComparatorsAgreeOnObviousCases(t *testing.T) {
	// All comparators must agree when distributions are far apart.
	rng := xrand.New(16)
	fast := sample(rng, 50, 1.0, 0.03)
	slow := sample(rng, 50, 3.0, 0.03)
	comparators := []Comparator{NewBootstrap(17), KS{}, MannWhitney{}, MeanThreshold{}}
	for i, c := range comparators {
		o, err := c.Compare(fast, slow)
		if err != nil {
			t.Fatalf("comparator %d: %v", i, err)
		}
		if o != Better {
			t.Fatalf("comparator %d says %v for obvious case", i, o)
		}
	}
}

func BenchmarkBootstrapCompareN30(b *testing.B) {
	rng := xrand.New(1)
	x := sample(rng, 30, 1.0, 0.05)
	y := sample(rng, 30, 1.05, 0.05)
	c := NewBootstrap(2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Compare(x, y); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBootstrapCompareN500(b *testing.B) {
	rng := xrand.New(1)
	x := sample(rng, 500, 1.0, 0.05)
	y := sample(rng, 500, 1.05, 0.05)
	c := NewBootstrap(2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Compare(x, y); err != nil {
			b.Fatal(err)
		}
	}
}

func TestBootstrapCompareZeroAllocs(t *testing.T) {
	rng := xrand.New(17)
	a := sample(rng, 30, 1.0, 0.1)
	b := sample(rng, 30, 1.2, 0.1)
	c := NewBootstrap(18)
	// Warm the scratch buffers once, then Compare must not allocate.
	if _, err := c.Compare(a, b); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(50, func() {
		if _, err := c.Compare(a, b); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("Compare allocates %v times per op after warm-up, want 0", allocs)
	}
}

func TestBootstrapForkDeterministic(t *testing.T) {
	rng := xrand.New(19)
	a := sample(rng, 30, 1.0, 0.1)
	b := sample(rng, 30, 1.05, 0.1)
	proto := NewBootstrap(0)
	proto.Rounds = 40
	// Equal fork seeds reproduce the exact win-rate sequence; the parent
	// is untouched by fork usage.
	f1 := proto.Fork(7).(*Bootstrap)
	f2 := proto.Fork(7).(*Bootstrap)
	if f1.Rounds != proto.Rounds {
		t.Fatal("fork did not inherit parameters")
	}
	for i := 0; i < 5; i++ {
		r1, err := f1.WinRate(a, b)
		if err != nil {
			t.Fatal(err)
		}
		r2, _ := f2.WinRate(a, b)
		if r1 != r2 {
			t.Fatalf("fork streams diverge at call %d: %v vs %v", i, r1, r2)
		}
	}
	// Different seeds give different streams.
	r1, _ := proto.Fork(1).(*Bootstrap).WinRate(a, b)
	r3, _ := proto.Fork(2).(*Bootstrap).WinRate(a, b)
	if r1 == r3 {
		t.Fatal("distinct fork seeds produced identical win rates (suspicious)")
	}
}

func TestDeterministicForkersReturnSelf(t *testing.T) {
	for _, c := range []Forker{KS{}, MannWhitney{}, MeanThreshold{}} {
		if c.Fork(123) != c.(Comparator) {
			t.Fatalf("%T fork is not itself", c)
		}
	}
}
