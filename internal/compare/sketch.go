package compare

// SketchComparator is the sketch-mode comparator: a deterministic,
// quantile-vote version of the paper's comparison for campaigns summarized
// into stats.Sketch instead of materialized samples. It reads the configured
// quantiles off both sketches (or, through the Comparator interface, off raw
// samples exactly) and converts the per-quantile win rate into the same
// three-way outcome as Bootstrap's threshold — but with no resampling: the
// sketch already carries the sampling error story (stats.SketchEpsilon), so
// the comparison itself is a pure function of the two summaries.

import (
	"relperf/internal/stats"
)

// SketchComparator compares quantile summaries. The zero value uses the
// package defaults (DefaultQuantiles, DefaultMargin). It is deterministic
// and stateless: Fork returns the comparator itself, so parallel clustering
// repetitions share it safely.
type SketchComparator struct {
	// Quantiles are evaluated on both summaries (default 0.25, 0.5, 0.75).
	Quantiles []float64
	// Margin is the half-width of the equivalence band around 0.5 (default
	// 0.3), interpreted exactly as Bootstrap.Margin.
	Margin float64
}

// quantileSet resolves the configured quantiles, falling back to the
// package defaults.
func (c SketchComparator) quantileSet() []float64 {
	if len(c.Quantiles) == 0 {
		return DefaultQuantiles
	}
	return c.Quantiles
}

// winRate counts, value pair by value pair, how often a's quantile is
// strictly below b's (ties count 1/2) — the same vote Bootstrap runs per
// resample, evaluated once on the summaries.
func winRate(qa, qb []float64) float64 {
	var wins float64
	for i := range qa {
		switch {
		case qa[i] < qb[i]:
			wins++
		case qa[i] == qb[i]:
			wins += 0.5
		}
	}
	return wins / float64(len(qa))
}

// threshold maps a win rate onto the three-way outcome with Bootstrap's
// band semantics.
func (c SketchComparator) threshold(r float64) Outcome {
	margin := c.Margin
	if margin <= 0 {
		margin = DefaultMargin
	}
	switch {
	case r >= 0.5+margin:
		return Better
	case r <= 0.5-margin:
		return Worse
	default:
		return Equivalent
	}
}

// CompareSketches decides the relative performance of two summarized
// campaigns. Deterministic: equal sketches always produce equal outcomes.
func (c SketchComparator) CompareSketches(a, b *stats.Sketch) (Outcome, error) {
	if a == nil || b == nil || a.N() == 0 || b.N() == 0 {
		return Equivalent, ErrBadSample
	}
	qs := c.quantileSet()
	qa := make([]float64, len(qs))
	qb := make([]float64, len(qs))
	for i, q := range qs {
		qa[i] = a.Quantile(q)
		qb[i] = b.Quantile(q)
	}
	return c.threshold(winRate(qa, qb)), nil
}

// Compare implements Comparator over raw samples with the same quantile
// vote, evaluated on the exact type-7 quantiles — the semantics a sketch
// converges to as k grows.
func (c SketchComparator) Compare(a, b []float64) (Outcome, error) {
	if len(a) == 0 || len(b) == 0 {
		return Equivalent, ErrBadSample
	}
	qs := c.quantileSet()
	return c.threshold(winRate(stats.Quantiles(a, qs), stats.Quantiles(b, qs))), nil
}

// Fork implements Forker; the comparator is deterministic and stateless.
func (c SketchComparator) Fork(uint64) Comparator { return c }
