package compare

import (
	"testing"
	"testing/quick"

	"relperf/internal/xrand"
)

// TestDeterministicComparatorAntisymmetryProperty: for the deterministic
// comparators, Compare(a, b) must always be the flip of Compare(b, a),
// whatever the samples.
func TestDeterministicComparatorAntisymmetryProperty(t *testing.T) {
	rng := xrand.New(201)
	comparators := []Comparator{KS{}, MannWhitney{}, MeanThreshold{}}
	f := func(seed uint32) bool {
		na := rng.Intn(40) + 5
		nb := rng.Intn(40) + 5
		shift := rng.Uniform(-0.5, 0.5)
		sigma := rng.Uniform(0.01, 0.3)
		a := make([]float64, na)
		b := make([]float64, nb)
		for i := range a {
			a[i] = 1 * rng.LogNormal(0, sigma)
		}
		for i := range b {
			b[i] = (1 + shift) * rng.LogNormal(0, sigma)
		}
		for _, c := range comparators {
			ab, err := c.Compare(a, b)
			if err != nil {
				return false
			}
			ba, err := c.Compare(b, a)
			if err != nil {
				return false
			}
			if ab != ba.Flip() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestBootstrapWinRateComplementProperty: WinRate(a, b) + WinRate(b, a) is
// approximately 1 in expectation; each is bounded in [0, 1].
func TestBootstrapWinRateComplementProperty(t *testing.T) {
	rng := xrand.New(203)
	f := func(seed uint32) bool {
		n := rng.Intn(50) + 5
		a := make([]float64, n)
		b := make([]float64, n)
		for i := range a {
			a[i] = rng.LogNormal(0, 0.2)
			b[i] = 1.1 * rng.LogNormal(0, 0.2)
		}
		c := NewBootstrap(uint64(seed))
		rab, err := c.WinRate(a, b)
		if err != nil {
			return false
		}
		rba, err := c.WinRate(b, a)
		if err != nil {
			return false
		}
		if rab < 0 || rab > 1 || rba < 0 || rba > 1 {
			return false
		}
		// Independent bootstrap draws: complement only in expectation;
		// allow generous slack.
		sum := rab + rba
		return sum > 0.7 && sum < 1.3
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// TestComparatorsMonotoneInSeparationProperty: increasing the true gap can
// only move the verdict toward Better (never from Better back to
// Equivalent/Worse) for the deterministic comparators on fixed noise.
func TestComparatorsMonotoneInSeparationProperty(t *testing.T) {
	rng := xrand.New(207)
	base := make([]float64, 40)
	for i := range base {
		base[i] = rng.LogNormal(0, 0.05)
	}
	shifted := func(m float64) []float64 {
		out := make([]float64, len(base))
		for i := range base {
			out[i] = base[i] * m
		}
		return out
	}
	for _, c := range []Comparator{KS{}, MannWhitney{}, MeanThreshold{}} {
		reachedBetter := false
		for _, mult := range []float64{1.0, 1.05, 1.2, 1.5, 2.0, 4.0} {
			o, err := c.Compare(base, shifted(mult))
			if err != nil {
				t.Fatal(err)
			}
			if o == Better {
				reachedBetter = true
			}
			if reachedBetter && o != Better {
				t.Fatalf("%T: verdict regressed from Better at multiplier %v", c, mult)
			}
			if o == Worse {
				t.Fatalf("%T: inverted verdict at multiplier %v", c, mult)
			}
		}
		if !reachedBetter {
			t.Fatalf("%T: never detected a 4x separation", c)
		}
	}
}
