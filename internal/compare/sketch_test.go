package compare

import (
	"testing"

	"relperf/internal/stats"
	"relperf/internal/xrand"
)

// sketchOf streams n draws of m·LogNormal(0, sigma) into a fresh sketch.
func sketchOf(t *testing.T, k, n int, seed uint64, m, sigma float64) *stats.Sketch {
	t.Helper()
	sk, err := stats.NewSketch(k, seed)
	if err != nil {
		t.Fatal(err)
	}
	rng := xrand.New(seed)
	for i := 0; i < n; i++ {
		sk.Add(m * rng.LogNormal(0, sigma))
	}
	return sk
}

func TestSketchComparatorSeparated(t *testing.T) {
	fast := sketchOf(t, 256, 5000, 1, 1.0, 0.05)
	slow := sketchOf(t, 256, 5000, 2, 2.0, 0.05)
	var c SketchComparator
	got, err := c.CompareSketches(fast, slow)
	if err != nil {
		t.Fatal(err)
	}
	if got != Better {
		t.Fatalf("fast vs slow = %v", got)
	}
	if got, _ = c.CompareSketches(slow, fast); got != Worse {
		t.Fatalf("slow vs fast = %v", got)
	}
}

func TestSketchComparatorEquivalent(t *testing.T) {
	a := sketchOf(t, 256, 5000, 3, 1.0, 0.1)
	b := sketchOf(t, 256, 5000, 4, 1.0, 0.1)
	var c SketchComparator
	got, err := c.CompareSketches(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if got != Equivalent {
		t.Fatalf("same distribution = %v", got)
	}
}

func TestSketchComparatorSelf(t *testing.T) {
	a := sketchOf(t, 128, 2000, 5, 1.0, 0.2)
	var c SketchComparator
	got, err := c.CompareSketches(a, a)
	if err != nil {
		t.Fatal(err)
	}
	if got != Equivalent {
		t.Fatalf("self-compare = %v, ties must land in the band", got)
	}
}

func TestSketchComparatorBadInput(t *testing.T) {
	a := sketchOf(t, 128, 100, 6, 1.0, 0.1)
	empty, _ := stats.NewSketch(128, 0)
	var c SketchComparator
	cases := []struct{ a, b *stats.Sketch }{
		{nil, a}, {a, nil}, {empty, a}, {a, empty},
	}
	for i, tc := range cases {
		if _, err := c.CompareSketches(tc.a, tc.b); err != ErrBadSample {
			t.Errorf("case %d: err = %v, want ErrBadSample", i, err)
		}
	}
	if _, err := c.Compare(nil, []float64{1}); err != ErrBadSample {
		t.Errorf("empty raw sample: err = %v, want ErrBadSample", err)
	}
}

// TestSketchComparatorMatchesExact checks that Compare (the Comparator
// interface over raw samples) and CompareSketches agree when the sketch is
// still exact (n <= k): both are the same quantile vote then.
func TestSketchComparatorMatchesExact(t *testing.T) {
	rng := xrand.New(7)
	a := sample(rng, 200, 1.0, 0.3)
	b := sample(rng, 200, 1.3, 0.3)
	ska, _ := stats.NewSketch(256, 1)
	skb, _ := stats.NewSketch(256, 2)
	for _, v := range a {
		ska.Add(v)
	}
	for _, v := range b {
		skb.Add(v)
	}
	var c SketchComparator
	exact, err := c.Compare(a, b)
	if err != nil {
		t.Fatal(err)
	}
	sketched, err := c.CompareSketches(ska, skb)
	if err != nil {
		t.Fatal(err)
	}
	if exact != sketched {
		t.Fatalf("exact vote %v != sketch vote %v for n <= k", exact, sketched)
	}
}

func TestSketchComparatorFork(t *testing.T) {
	c := SketchComparator{Quantiles: []float64{0.5}, Margin: 0.1}
	f, ok := c.Fork(42).(SketchComparator)
	if !ok {
		t.Fatal("Fork changed comparator type")
	}
	if len(f.Quantiles) != 1 || f.Quantiles[0] != 0.5 || f.Margin != 0.1 {
		t.Fatalf("Fork altered configuration: %+v", f)
	}
	var iface Comparator = c
	if _, ok := iface.(Forker); !ok {
		t.Fatal("SketchComparator must implement Forker")
	}
}

func TestSketchComparatorDeterministic(t *testing.T) {
	a := sketchOf(t, 256, 3000, 8, 1.0, 0.4)
	b := sketchOf(t, 256, 3000, 9, 1.1, 0.4)
	var c SketchComparator
	first, err := c.CompareSketches(a, b)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		got, err := c.CompareSketches(a, b)
		if err != nil {
			t.Fatal(err)
		}
		if got != first {
			t.Fatalf("repeat %d: outcome drifted from %v to %v", i, first, got)
		}
	}
}
