package compare

import (
	"testing"

	"relperf/internal/comparetest"
	"relperf/internal/stats"
	"relperf/internal/xrand"
)

// The executable specification of the hot path — the pre-index-space
// kernel: materialize each resample as values, insertion-sort it, read the
// quantiles — lives in internal/comparetest (one copy, shared with the
// engine-level pin and the benchmarks). The index-space kernel must
// reproduce its WinRate bit for bit at every N; this file is the
// WinRate-level contract.

// referenceOutcome thresholds a reference win rate with the default margin,
// mirroring Bootstrap.Compare.
func referenceOutcome(r float64) Outcome {
	switch {
	case r >= 0.5+DefaultMargin:
		return Better
	case r <= 0.5-DefaultMargin:
		return Worse
	default:
		return Equivalent
	}
}

// kernelTestSamples builds two overlapping log-normal samples of size n.
func kernelTestSamples(n int, seed uint64) (a, b []float64) {
	rng := xrand.New(seed)
	a = make([]float64, n)
	b = make([]float64, n)
	for i := range a {
		a[i] = rng.LogNormal(0, 0.2)
		b[i] = 1.05 * rng.LogNormal(0, 0.2)
	}
	return a, b
}

// TestIndexKernelMatchesReference: for equal seeds the index-space WinRate
// and the Outcome sequence across repeated Compare calls (the RNG stream
// advances call over call, exactly as before) are bit-identical to the
// reference kernel, at N ∈ {10, 50, 500, 5000}.
func TestIndexKernelMatchesReference(t *testing.T) {
	for _, n := range []int{10, 50, 500, 5000} {
		rounds := DefaultRounds
		calls := 10
		if n >= 5000 {
			rounds, calls = 20, 3 // the O(N²) reference is the budget here
		}
		a, b := kernelTestSamples(n, uint64(n))
		const seed = 77
		cmp := NewBootstrap(seed)
		cmp.Rounds = rounds
		refRNG := xrand.New(seed)
		bufA := make([]float64, n)
		bufB := make([]float64, n)
		for call := 0; call < calls; call++ {
			got, err := cmp.WinRate(a, b)
			if err != nil {
				t.Fatal(err)
			}
			want := comparetest.ReferenceWinRate(refRNG, a, b, bufA, bufB, DefaultQuantiles, rounds)
			if got != want {
				t.Fatalf("N=%d call=%d: index-space WinRate %v != reference %v", n, call, got, want)
			}
			if gotO := cmp.threshold(got); gotO != referenceOutcome(want) {
				t.Fatalf("N=%d call=%d: outcome diverged", n, call)
			}
		}
	}
}

// TestAliasedSamplesMatchReference: comparing a sample against itself (two
// views of one buffer resolve to one cached kernel) must still draw two
// independent resamples per round via the alias twin, bit-identical to the
// reference kernel — which hovers near, but almost never exactly at, 0.5.
func TestAliasedSamplesMatchReference(t *testing.T) {
	for _, n := range []int{10, 50, 500} {
		a, _ := kernelTestSamples(n, uint64(n))
		const seed = 6
		refRNG := xrand.New(seed)
		bufA := make([]float64, n)
		bufB := make([]float64, n)
		raw := NewBootstrap(seed)
		sorted := NewBootstrap(seed)
		sa := stats.NewSortedSample(a)
		for call := 0; call < 3; call++ {
			want := comparetest.ReferenceWinRate(refRNG, a, a, bufA, bufB, DefaultQuantiles, DefaultRounds)
			got, err := raw.WinRate(a, a)
			if err != nil {
				t.Fatal(err)
			}
			if got != want {
				t.Fatalf("N=%d call=%d: aliased WinRate %v != reference %v", n, call, got, want)
			}
			gotSorted, err := sorted.WinRateSorted(sa, sa)
			if err != nil {
				t.Fatal(err)
			}
			if gotSorted != want {
				t.Fatalf("N=%d call=%d: aliased WinRateSorted %v != reference %v", n, call, gotSorted, want)
			}
		}
	}
}

// TestSortedViewsMatchRawSamples: CompareSorted/WinRateSorted over
// pre-sorted views are bit-identical to Compare/WinRate over the raw
// samples, for the bootstrap and the KS comparators.
func TestSortedViewsMatchRawSamples(t *testing.T) {
	for _, n := range []int{10, 50, 500} {
		a, b := kernelTestSamples(n, uint64(100+n))
		sa, sb := stats.NewSortedSample(a), stats.NewSortedSample(b)

		raw := NewBootstrap(5)
		sorted := NewBootstrap(5)
		for call := 0; call < 5; call++ {
			rRaw, err := raw.WinRate(a, b)
			if err != nil {
				t.Fatal(err)
			}
			rSorted, err := sorted.WinRateSorted(sa, sb)
			if err != nil {
				t.Fatal(err)
			}
			if rRaw != rSorted {
				t.Fatalf("N=%d call=%d: WinRateSorted %v != WinRate %v", n, call, rSorted, rRaw)
			}
		}

		ks := KS{}
		oRaw, err := ks.Compare(a, b)
		if err != nil {
			t.Fatal(err)
		}
		oSorted, err := ks.CompareSorted(sa, sb)
		if err != nil {
			t.Fatal(err)
		}
		if oRaw != oSorted {
			t.Fatalf("N=%d: KS CompareSorted %v != Compare %v", n, oSorted, oRaw)
		}
	}
}

// TestBootstrapKernelCacheIdentity: repeated comparisons of the same slices
// must reuse the cached kernels (sort once per sample), and the cache must
// reset rather than grow without bound.
func TestBootstrapKernelCacheIdentity(t *testing.T) {
	a, b := kernelTestSamples(30, 1)
	cmp := NewBootstrap(2)
	if _, err := cmp.Compare(a, b); err != nil {
		t.Fatal(err)
	}
	if len(cmp.kernels) != 2 {
		t.Fatalf("kernel cache holds %d entries after one pair, want 2", len(cmp.kernels))
	}
	ka := cmp.kernels[sampleKey{&a[0], len(a)}].k
	if _, err := cmp.Compare(a, b); err != nil {
		t.Fatal(err)
	}
	if len(cmp.kernels) != 2 || cmp.kernels[sampleKey{&a[0], len(a)}].k != ka {
		t.Fatal("kernel was rebuilt for an already-seen sample")
	}

	// Rewriting the buffer in place must invalidate the hit: the probe
	// values no longer match, so the kernel is rebuilt over the new
	// contents rather than replaying stale order statistics.
	a[0] *= 3
	if _, err := cmp.Compare(a, b); err != nil {
		t.Fatal(err)
	}
	if cmp.kernels[sampleKey{&a[0], len(a)}].k == ka {
		t.Fatal("stale kernel served for a rewritten buffer")
	}

	for i := 0; i < maxKernelCache; i++ {
		xs, ys := kernelTestSamples(5, uint64(1000+i))
		if _, err := cmp.Compare(xs, ys); err != nil {
			t.Fatal(err)
		}
	}
	if len(cmp.kernels) > maxKernelCache+2 {
		t.Fatalf("kernel cache grew to %d entries, bound is %d", len(cmp.kernels), maxKernelCache)
	}

	// Sorted-view cache: same reuse contract.
	sa, sb := stats.NewSortedSample(a), stats.NewSortedSample(b)
	if _, err := cmp.CompareSorted(sa, sb); err != nil {
		t.Fatal(err)
	}
	ks := cmp.sortedKernels[sa]
	if _, err := cmp.CompareSorted(sa, sb); err != nil {
		t.Fatal(err)
	}
	if cmp.sortedKernels[sa] != ks {
		t.Fatal("sorted kernel was rebuilt for an already-seen view")
	}
}
