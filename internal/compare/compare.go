// Package compare implements the three-way comparison of performance
// distributions at the heart of relative-performance analysis: given two sets
// of execution-time measurements, decide whether the first algorithm is
// Better, Worse, or Equivalent to the second.
//
// The primary comparator is the bootstrap strategy of Sankaran & Bientinesi,
// "Robust ranking of equivalent algorithms via relative performance"
// (arXiv:2010.07226, Section IV), which the paper under reproduction uses
// verbatim: repeatedly resample both measurement sets, compare a vector of
// quantiles on each resample, and convert the aggregate win rate into one of
// the three outcomes. Because the resampling is random, the comparator is
// intentionally stochastic near the decision thresholds — this is what makes
// repeated clustering (Procedure 4) produce fractional relative scores such
// as the paper's "algAA is equivalent to algAD once in every three
// comparisons".
//
// Deterministic alternatives (Kolmogorov–Smirnov, Mann–Whitney, mean
// difference with bootstrap CI) are provided for the comparator-ablation
// benchmarks.
//
// # Concurrency and determinism
//
// Comparators are not safe for concurrent use (the bootstrap owns an RNG and
// scratch buffers). Parallel engines instead rely on the Forker interface:
// Fork(seed) returns an independent comparator clone whose randomness is
// fully determined by the seed, so a clustering layer can hand every
// concurrent repetition its own deterministically-seeded comparator and
// produce bit-identical results at any worker count. Every named comparator
// in this package implements Forker — the deterministic ones (KS,
// MannWhitney, MeanThreshold) are stateless and fork to themselves — but the
// plain-function Func adapter deliberately does not, so function-backed
// comparators take the serial clustering path unless wrapped in a Forker.
package compare

import (
	"errors"
	"fmt"

	"relperf/internal/stats"
	"relperf/internal/xrand"
)

// Outcome is the result of a three-way comparison. Measurements are
// execution times, so smaller is better throughout.
type Outcome int

const (
	// Worse means the first algorithm's distribution is significantly
	// slower than the second's.
	Worse Outcome = iota - 1
	// Equivalent means the distributions overlap too much to separate.
	Equivalent
	// Better means the first algorithm is significantly faster.
	Better
)

// String implements fmt.Stringer.
func (o Outcome) String() string {
	switch o {
	case Better:
		return "better"
	case Worse:
		return "worse"
	case Equivalent:
		return "equivalent"
	default:
		return fmt.Sprintf("Outcome(%d)", int(o))
	}
}

// Flip returns the outcome from the other algorithm's perspective.
func (o Outcome) Flip() Outcome { return -o }

// ErrBadSample is returned when a comparator receives an unusable sample.
var ErrBadSample = errors.New("compare: sample must contain at least one measurement")

// Comparator decides the relative performance of two measurement sets.
// Implementations may be stochastic (the bootstrap comparator is); callers
// that need reproducibility must construct comparators from seeded RNGs.
type Comparator interface {
	// Compare returns Better if a is significantly faster than b, Worse if
	// significantly slower, and Equivalent otherwise.
	Compare(a, b []float64) (Outcome, error)
}

// Forker is implemented by comparators that can produce independent,
// deterministically-seeded clones of themselves. Parallel clustering engines
// fork one comparator per repetition (or per pair) so that concurrent
// comparisons never share RNG state and results are bit-identical for equal
// seeds regardless of scheduling. Deterministic comparators may simply return
// themselves.
type Forker interface {
	// Fork returns a comparator with the same decision parameters whose
	// stochastic behaviour (if any) is fully determined by seed.
	Fork(seed uint64) Comparator
}

// SortedComparator is implemented by comparators that can consume
// pre-sorted sample views, skipping every per-comparison sort of the base
// samples. Engines that hold a fixed sample set (the clustering layers,
// which compare the same measured distributions hundreds of times —
// footnote 5 of the paper) sort each sample exactly once up front and route
// all comparisons through CompareSorted. The contract is bit-identity:
// CompareSorted(NewSortedSample(a), NewSortedSample(b)) returns exactly
// what Compare(a, b) would for the same comparator state.
type SortedComparator interface {
	CompareSorted(a, b *stats.SortedSample) (Outcome, error)
}

// Bootstrap is the paper's comparator. For each of Rounds bootstrap rounds it
// draws one resample (with replacement) from each measurement set, evaluates
// the configured quantiles on both resamples, and counts, quantile by
// quantile, how often a's value is strictly below b's. The aggregate win rate
// r in [0, 1] (ties count 1/2) maps to:
//
//	r >= 0.5 + Margin  →  Better
//	r <= 0.5 - Margin  →  Worse
//	otherwise          →  Equivalent
//
// The hot path runs in index space (stats.BootKernel): each base sample is
// sorted exactly once, resamples are drawn as counted index multisets on
// the identical xrand draw sequence as the classic materialize-and-sort
// kernel, and quantiles are read straight off the sorted base — O(N) per
// round instead of the insertion sort's O(N²), bit-identical outcomes.
// Kernels are cached across Compare calls (keyed by sample identity), so
// repeated comparisons of the same measurement sets — cluster repetitions,
// matrix pre-pass trials, race rounds — sort each sample once, ever. The
// cache assumes sample contents are immutable while the comparator lives,
// the methodology's footnote-5 contract (measurements are archived, never
// edited); a probe check on cache hits rebuilds the kernel when a rewrite
// is detectable (see rawKernel), but callers that rewrite buffers in place
// should still use a fresh comparator. After the first Compare at a given
// sample identity, Compare performs zero heap allocations.
type Bootstrap struct {
	rng *xrand.Rand
	// Quantiles are evaluated on every resample; the defaults probe the
	// body of the distribution (0.25, 0.5, 0.75) so single outliers do not
	// decide a comparison.
	Quantiles []float64
	// Rounds is the number of bootstrap iterations (default 100).
	Rounds int
	// Margin is the half-width of the equivalence band around 0.5
	// (default 0.3: win rates within [0.2, 0.8] are "equivalent").
	Margin float64

	// kernels caches one index-space resampling kernel per distinct raw
	// sample slice; sortedKernels per pre-sorted view; aliasKernels holds
	// the b-side twin used when both sides of a comparison resolve to the
	// same kernel (a sample compared against itself), so the two resamples
	// stay independent exactly as in the value-space kernel. Lazily built,
	// bounded by maxKernelCache.
	kernels       map[sampleKey]rawKernel
	sortedKernels map[*stats.SortedSample]*stats.BootKernel
	aliasKernels  map[*stats.BootKernel]*stats.BootKernel
}

// rawKernel is a cached kernel plus three probe values from the sample it
// was built over. A cache hit re-checks the probes, so the common misuse —
// rewriting a measurement buffer in place and comparing again — rebuilds
// the kernel instead of silently replaying stale order statistics. (A
// rewrite that preserves all three probes still goes undetected; the full
// guarantee remains the documented immutability contract.)
type rawKernel struct {
	k           *stats.BootKernel
	lo, mid, hi float64
}

// sampleKey identifies a raw measurement slice: same backing array and
// length means same (immutable) sample.
type sampleKey struct {
	ptr *float64
	n   int
}

// maxKernelCache bounds the per-comparator kernel caches; at the bound the
// cache resets rather than grows (a comparator outliving thousands of
// distinct samples is a leak, not a workload).
const maxKernelCache = 1024

// DefaultQuantiles probe the body of the distribution.
var DefaultQuantiles = []float64{0.25, 0.5, 0.75}

// Default decision parameters. Zero-valued comparator fields normalize to
// these at Compare time; the config-fingerprinting layer normalizes with
// the same constants so that "unset" and "explicit default" configs share
// one cache identity. Keep the two in sync by never re-hardcoding them.
const (
	// DefaultRounds is the bootstrap iteration count.
	DefaultRounds = 100
	// DefaultMargin is the bootstrap equivalence half-width.
	DefaultMargin = 0.3
	// DefaultAlpha is the significance level of the KS and Mann–Whitney
	// comparators.
	DefaultAlpha = 0.05
	// DefaultRelTol is the MeanThreshold equivalence tolerance.
	DefaultRelTol = 0.02
)

// NewBootstrap returns a bootstrap comparator with the default settings and
// the given seed.
func NewBootstrap(seed uint64) *Bootstrap {
	return &Bootstrap{
		rng:       xrand.New(seed),
		Quantiles: DefaultQuantiles,
		Rounds:    DefaultRounds,
		Margin:    DefaultMargin,
	}
}

// NewBootstrapFrom returns a bootstrap comparator drawing randomness from an
// existing generator. Serial callers only: parallel engines should seed
// per-unit comparators with NewBootstrap(xrand.Mix(seed, unit)) or Fork,
// never by threading a shared stream through this constructor.
func NewBootstrapFrom(rng *xrand.Rand) *Bootstrap {
	b := NewBootstrap(0)
	b.rng = rng
	return b
}

// Fork implements Forker: the clone shares the decision parameters but owns a
// fresh generator seeded by seed and its own kernel caches, so forks are safe
// to use concurrently with each other and with the parent.
func (c *Bootstrap) Fork(seed uint64) Comparator {
	return &Bootstrap{
		rng:       xrand.New(seed),
		Quantiles: c.Quantiles,
		Rounds:    c.Rounds,
		Margin:    c.Margin,
	}
}

// kernelForRaw returns the cached index-space kernel for a raw sample,
// sorting it on first sight; a hit whose probe values no longer match the
// slice contents is rebuilt.
func (c *Bootstrap) kernelForRaw(xs []float64) *stats.BootKernel {
	key := sampleKey{ptr: &xs[0], n: len(xs)}
	lo, mid, hi := xs[0], xs[len(xs)/2], xs[len(xs)-1]
	if rk, ok := c.kernels[key]; ok && rk.lo == lo && rk.mid == mid && rk.hi == hi {
		return rk.k
	}
	if c.kernels == nil || len(c.kernels) >= maxKernelCache {
		c.kernels = make(map[sampleKey]rawKernel)
	}
	k := stats.NewBootKernel(stats.NewSortedSample(xs))
	c.kernels[key] = rawKernel{k: k, lo: lo, mid: mid, hi: hi}
	return k
}

// kernelForSorted returns the cached kernel over a shared pre-sorted view.
// The view is immutable and shared; only the kernel's counting scratch is
// private to this comparator.
func (c *Bootstrap) kernelForSorted(s *stats.SortedSample) *stats.BootKernel {
	if k, ok := c.sortedKernels[s]; ok {
		return k
	}
	if c.sortedKernels == nil || len(c.sortedKernels) >= maxKernelCache {
		c.sortedKernels = make(map[*stats.SortedSample]*stats.BootKernel)
	}
	k := stats.NewBootKernel(s)
	c.sortedKernels[s] = k
	return k
}

// aliasKernel returns (building and caching on first use) an independent
// twin of k over the same sorted base, for comparisons whose two sides
// resolved to one kernel.
func (c *Bootstrap) aliasKernel(k *stats.BootKernel) *stats.BootKernel {
	if twin, ok := c.aliasKernels[k]; ok {
		return twin
	}
	if c.aliasKernels == nil || len(c.aliasKernels) >= maxKernelCache {
		c.aliasKernels = make(map[*stats.BootKernel]*stats.BootKernel)
	}
	twin := stats.NewBootKernel(k.Base())
	c.aliasKernels[k] = twin
	return twin
}

// winRate is the shared index-space hot loop: per round one index resample
// per side on the comparator's single RNG stream (a first, then b — the
// identical draw order of the classic kernel), then every configured
// quantile read off the sorted bases. Aliased sides get independent twin
// kernels so a sample compared against itself still draws two independent
// resamples per round, as the classic kernel did.
func (c *Bootstrap) winRate(ka, kb *stats.BootKernel) float64 {
	if ka == kb {
		kb = c.aliasKernel(ka)
	}
	rounds := c.Rounds
	if rounds <= 0 {
		rounds = DefaultRounds
	}
	qs := c.Quantiles
	if len(qs) == 0 {
		qs = DefaultQuantiles
	}
	var wins float64
	for r := 0; r < rounds; r++ {
		ka.Resample(c.rng)
		kb.Resample(c.rng)
		for _, q := range qs {
			va := ka.Quantile(q)
			vb := kb.Quantile(q)
			switch {
			case va < vb:
				wins++
			case va == vb:
				wins += 0.5
			}
		}
	}
	return wins / float64(rounds*len(qs))
}

// WinRate runs the bootstrap and returns the aggregate rate at which a beats
// b across rounds and quantiles. Exposed for diagnostics and tests; Compare
// thresholds this value.
func (c *Bootstrap) WinRate(a, b []float64) (float64, error) {
	if len(a) == 0 || len(b) == 0 {
		return 0, ErrBadSample
	}
	return c.winRate(c.kernelForRaw(a), c.kernelForRaw(b)), nil
}

// WinRateSorted is WinRate over pre-sorted views, bit-identical to WinRate
// on the underlying raw samples for the same comparator state.
func (c *Bootstrap) WinRateSorted(a, b *stats.SortedSample) (float64, error) {
	if a.N() == 0 || b.N() == 0 {
		return 0, ErrBadSample
	}
	return c.winRate(c.kernelForSorted(a), c.kernelForSorted(b)), nil
}

// threshold maps a win rate onto the three-way outcome.
func (c *Bootstrap) threshold(r float64) Outcome {
	margin := c.Margin
	if margin <= 0 {
		margin = DefaultMargin
	}
	switch {
	case r >= 0.5+margin:
		return Better
	case r <= 0.5-margin:
		return Worse
	default:
		return Equivalent
	}
}

// Compare implements Comparator.
func (c *Bootstrap) Compare(a, b []float64) (Outcome, error) {
	r, err := c.WinRate(a, b)
	if err != nil {
		return Equivalent, err
	}
	return c.threshold(r), nil
}

// CompareSorted implements SortedComparator.
func (c *Bootstrap) CompareSorted(a, b *stats.SortedSample) (Outcome, error) {
	r, err := c.WinRateSorted(a, b)
	if err != nil {
		return Equivalent, err
	}
	return c.threshold(r), nil
}

// KS is a deterministic comparator: two samples differ when the two-sample
// Kolmogorov–Smirnov test rejects at level Alpha; the direction is then
// decided by the medians.
type KS struct {
	// Alpha is the significance level (default 0.05).
	Alpha float64
}

// Compare implements Comparator.
func (c KS) Compare(a, b []float64) (Outcome, error) {
	if len(a) == 0 || len(b) == 0 {
		return Equivalent, ErrBadSample
	}
	alpha := c.Alpha
	if alpha <= 0 {
		alpha = DefaultAlpha
	}
	d := stats.KSStatistic(a, b)
	p := stats.KSPValue(d, len(a), len(b))
	if p >= alpha {
		return Equivalent, nil
	}
	if stats.Median(a) < stats.Median(b) {
		return Better, nil
	}
	return Worse, nil
}

// CompareSorted implements SortedComparator: the KS statistic and the
// deciding medians read off the pre-sorted views directly, skipping the
// copy-and-sort of every Compare call. Bit-identical to Compare on the raw
// samples.
func (c KS) CompareSorted(a, b *stats.SortedSample) (Outcome, error) {
	if a.N() == 0 || b.N() == 0 {
		return Equivalent, ErrBadSample
	}
	alpha := c.Alpha
	if alpha <= 0 {
		alpha = DefaultAlpha
	}
	d := stats.KSStatisticSorted(a.Values(), b.Values())
	p := stats.KSPValue(d, a.N(), b.N())
	if p >= alpha {
		return Equivalent, nil
	}
	if a.Quantile(0.5) < b.Quantile(0.5) {
		return Better, nil
	}
	return Worse, nil
}

// Fork implements Forker; KS is deterministic and stateless, so the fork is
// the comparator itself.
func (c KS) Fork(uint64) Comparator { return c }

// MannWhitney is a deterministic comparator using the Mann–Whitney U test.
type MannWhitney struct {
	// Alpha is the significance level (default 0.05).
	Alpha float64
}

// Compare implements Comparator.
func (c MannWhitney) Compare(a, b []float64) (Outcome, error) {
	if len(a) == 0 || len(b) == 0 {
		return Equivalent, ErrBadSample
	}
	alpha := c.Alpha
	if alpha <= 0 {
		alpha = DefaultAlpha
	}
	u, p := stats.MannWhitneyU(a, b)
	if p >= alpha {
		return Equivalent, nil
	}
	// u counts pairs where a exceeds b; small u means a is faster.
	if u < float64(len(a))*float64(len(b))/2 {
		return Better, nil
	}
	return Worse, nil
}

// Fork implements Forker; MannWhitney is deterministic and stateless.
func (c MannWhitney) Fork(uint64) Comparator { return c }

// MeanThreshold is the naive single-number baseline the paper argues
// against: compare sample means and call anything within RelTol equivalent.
// Included for the comparator ablation, where its instability under noise is
// demonstrated.
type MeanThreshold struct {
	// RelTol is the relative mean difference below which samples are
	// equivalent (default 0.02).
	RelTol float64
}

// Compare implements Comparator.
func (c MeanThreshold) Compare(a, b []float64) (Outcome, error) {
	if len(a) == 0 || len(b) == 0 {
		return Equivalent, ErrBadSample
	}
	tol := c.RelTol
	if tol <= 0 {
		tol = DefaultRelTol
	}
	ma, mb := stats.Mean(a), stats.Mean(b)
	scale := (ma + mb) / 2
	if scale <= 0 {
		scale = 1
	}
	diff := (ma - mb) / scale
	switch {
	case diff < -tol:
		return Better, nil
	case diff > tol:
		return Worse, nil
	default:
		return Equivalent, nil
	}
}

// Fork implements Forker; MeanThreshold is deterministic and stateless.
func (c MeanThreshold) Fork(uint64) Comparator { return c }

// Func adapts a plain function to the Comparator interface.
type Func func(a, b []float64) (Outcome, error)

// Compare implements Comparator.
func (f Func) Compare(a, b []float64) (Outcome, error) { return f(a, b) }
