package obs

import (
	"math"
	"strconv"
	"sync/atomic"
)

// DefBuckets are the default latency buckets, in seconds. They span
// 10µs (a cached store hit) to 60s (a worst-case grid study) with
// roughly half-decade steps — wide enough that one set serves HTTP
// handlers, WAL fsyncs, queue waits, and engine stages, which keeps the
// exposition small and the cross-series comparisons honest.
var DefBuckets = []float64{
	1e-5, 1e-4, 1e-3, 1e-2, 0.1, 0.5, 1, 5, 10, 60,
}

// Histogram is a fixed-bucket histogram with zero-alloc recording:
// Observe is a linear scan over a small bounds slice plus three atomic
// ops. Buckets are cumulative only at render time; internally each slot
// counts its own interval so concurrent Observes never contend beyond
// the atomic adds.
//
// The sum is kept as float64 bits in a uint64 CAS loop — last-writer
// arithmetic would lose observations under contention, and a mutex
// would put a lock on the hot path.
//
// A nil *Histogram is a no-op.
type Histogram struct {
	bounds  []float64 // ascending upper bounds; +Inf implicit
	counts  []atomic.Uint64
	total   atomic.Uint64
	sumBits atomic.Uint64
}

func newHistogram(bounds []float64) *Histogram {
	b := append([]float64(nil), bounds...)
	return &Histogram{bounds: b, counts: make([]atomic.Uint64, len(b)+1)}
}

// Observe records one value. Values land in the first bucket whose
// upper bound is >= v (Prometheus `le` semantics); anything beyond the
// last bound lands in +Inf.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.total.Add(1)
	for {
		old := h.sumBits.Load()
		s := float64frombits(old) + v
		if h.sumBits.CompareAndSwap(old, float64bits(s)) {
			return
		}
	}
}

// Count returns the number of observations (0 for nil).
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.total.Load()
}

// Sum returns the sum of observed values (0 for nil).
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return float64frombits(h.sumBits.Load())
}

// Quantile estimates the q-quantile (q in [0, 1]) from the bucket
// counts: find the first bucket whose cumulative count reaches rank
// q·total and interpolate linearly inside it. The estimate is as coarse
// as the buckets are — it answers "which latency band", not "which
// microsecond" — which is exactly the fidelity a heartbeat digest needs.
// Returns 0 for a nil or empty histogram; a rank landing in the +Inf
// bucket reports the last finite bound (there is no upper edge to
// interpolate toward).
func (h *Histogram) Quantile(q float64) float64 {
	if h == nil {
		return 0
	}
	total := h.total.Load()
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := uint64(math.Ceil(q * float64(total)))
	if rank == 0 {
		rank = 1
	}
	var cum uint64
	for i := range h.counts {
		n := h.counts[i].Load()
		if cum+n < rank {
			cum += n
			continue
		}
		if i >= len(h.bounds) {
			// +Inf bucket: the honest answer is "at least the last bound".
			if len(h.bounds) == 0 {
				return 0
			}
			return h.bounds[len(h.bounds)-1]
		}
		lower := 0.0
		if i > 0 {
			lower = h.bounds[i-1]
		}
		upper := h.bounds[i]
		if n == 0 {
			return upper
		}
		frac := float64(rank-cum) / float64(n)
		return lower + frac*(upper-lower)
	}
	if len(h.bounds) == 0 {
		return 0
	}
	return h.bounds[len(h.bounds)-1]
}

// BucketCount is one cumulative bucket in a histogram snapshot.
type BucketCount struct {
	UpperBound float64 `json:"le"` // +Inf rendered by the caller
	Count      uint64  `json:"count"`
}

// MarshalJSON renders the upper bound as a string because encoding/json
// refuses the +Inf bucket's float.
func (b BucketCount) MarshalJSON() ([]byte, error) {
	le := "+Inf"
	if !math.IsInf(b.UpperBound, +1) {
		le = trimFloat(b.UpperBound)
	}
	return []byte(`{"le":"` + le + `","count":` + strconv.FormatUint(b.Count, 10) + `}`), nil
}

// snapshotBuckets returns cumulative bucket counts, one per bound plus
// the +Inf bucket, consistent enough for scraping (individual atomic
// loads; a scrape racing an Observe may be off by one, which Prometheus
// tolerates by design).
func (h *Histogram) snapshotBuckets() []BucketCount {
	out := make([]BucketCount, len(h.bounds)+1)
	var cum uint64
	for i := range h.counts {
		cum += h.counts[i].Load()
		ub := inf
		if i < len(h.bounds) {
			ub = h.bounds[i]
		}
		out[i] = BucketCount{UpperBound: ub, Count: cum}
	}
	return out
}
