// Package obs is the repo's dependency-free observability core: atomic
// counters, gauges, and fixed-bucket latency histograms behind a
// Registry that renders Prometheus text exposition, plus a bounded
// per-study span Tracer capturing the queued → dispatched → computing →
// done lifecycle.
//
// Two properties shape every API here:
//
//   - Nil safety. Every instrument method is safe on a nil receiver, and
//     a nil *Registry hands out nil instruments. Components therefore
//     instrument themselves unconditionally — a caller that does not
//     care about metrics simply passes nil and pays a nil-check per
//     record, never a branch-per-callsite in the component.
//
//   - Zero-alloc recording. Counter.Inc, Gauge.Set, and
//     Histogram.Observe are a handful of atomic ops on pre-allocated
//     slots; nothing on a record path allocates, locks, or formats. All
//     allocation happens at registration or scrape time. This is what
//     lets instrumentation sit near the engine's hot paths without
//     disturbing the 0 allocs/op contract the benchmarks assert.
//
// Metric names are an API: the golden exposition test pins the rendered
// bytes, so renaming a series is a breaking change and must update the
// golden file and the README reference table together.
package obs

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing counter. The zero value is
// ready to use; a nil *Counter is a no-op.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() {
	if c == nil {
		return
	}
	c.v.Add(1)
}

// Add adds n.
func (c *Counter) Add(n uint64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Value returns the current count (0 for nil).
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a settable instantaneous value. The zero value is ready to
// use; a nil *Gauge is a no-op.
type Gauge struct {
	v atomic.Int64
}

// Set replaces the value.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v.Store(v)
}

// Add adds delta (may be negative).
func (g *Gauge) Add(delta int64) {
	if g == nil {
		return
	}
	g.v.Add(delta)
}

// Value returns the current value (0 for nil).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Label is one name="value" pair attached to an instrument.
type Label struct {
	Key   string
	Value string
}

// L is shorthand for constructing a Label.
func L(key, value string) Label { return Label{Key: key, Value: value} }

// instrument kinds, in Prometheus TYPE vocabulary.
const (
	kindCounter   = "counter"
	kindGauge     = "gauge"
	kindHistogram = "histogram"
)

// sample is one labeled instance of a family: exactly one of the value
// sources is set.
type sample struct {
	labels  []Label // sorted by key
	key     string  // rendered label key, "" for unlabeled
	counter *Counter
	gauge   *Gauge
	hist    *Histogram
	fn      func() float64 // CounterFunc / GaugeFunc
}

func (s *sample) scalar() float64 {
	switch {
	case s.counter != nil:
		return float64(s.counter.Value())
	case s.gauge != nil:
		return float64(s.gauge.Value())
	case s.fn != nil:
		return s.fn()
	}
	return 0
}

// family is every sample sharing one metric name.
type family struct {
	name    string
	help    string
	kind    string
	samples map[string]*sample
}

// Registry owns a set of metric families and renders them. A nil
// *Registry hands out nil (no-op) instruments, so components can be
// built without observability wired up. Registration is idempotent:
// asking for the same (name, labels) twice returns the same instrument,
// which lets several components share one registry without coordinating.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// register finds or creates the (name, labels) sample; mk populates a
// fresh sample's value source. Mismatched kind or help on an existing
// family panics: that is a programming error, caught at wiring time.
func (r *Registry) register(name, help, kind string, labels []Label, mk func(*sample)) *sample {
	ls := append([]Label(nil), labels...)
	sort.Slice(ls, func(i, j int) bool { return ls[i].Key < ls[j].Key })
	key := renderLabels(ls)

	r.mu.Lock()
	defer r.mu.Unlock()
	fam, ok := r.families[name]
	if !ok {
		fam = &family{name: name, help: help, kind: kind, samples: make(map[string]*sample)}
		r.families[name] = fam
	} else if fam.kind != kind {
		panic(fmt.Sprintf("obs: metric %q re-registered as %s (was %s)", name, kind, fam.kind))
	}
	if s, ok := fam.samples[key]; ok {
		return s
	}
	s := &sample{labels: ls, key: key}
	mk(s)
	fam.samples[key] = s
	return s
}

// Counter registers (or finds) a counter.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	if r == nil {
		return nil
	}
	s := r.register(name, help, kindCounter, labels, func(s *sample) { s.counter = &Counter{} })
	return s.counter
}

// CounterFunc registers a counter whose value is read by fn at scrape
// time. Use it to expose counters a component already keeps (store
// hits, dispatch retries) without double bookkeeping on the hot path.
// fn must be monotonically non-decreasing and safe for concurrent use.
func (r *Registry) CounterFunc(name, help string, fn func() float64, labels ...Label) {
	if r == nil {
		return
	}
	r.register(name, help, kindCounter, labels, func(s *sample) { s.fn = fn })
}

// Gauge registers (or finds) a gauge.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	if r == nil {
		return nil
	}
	s := r.register(name, help, kindGauge, labels, func(s *sample) { s.gauge = &Gauge{} })
	return s.gauge
}

// GaugeFunc registers a gauge read by fn at scrape time.
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labels ...Label) {
	if r == nil {
		return
	}
	r.register(name, help, kindGauge, labels, func(s *sample) { s.fn = fn })
}

// Histogram registers (or finds) a fixed-bucket histogram. buckets are
// ascending upper bounds in the observed unit (seconds for latencies);
// nil means DefBuckets. The +Inf bucket is implicit.
func (r *Registry) Histogram(name, help string, buckets []float64, labels ...Label) *Histogram {
	if r == nil {
		return nil
	}
	if buckets == nil {
		buckets = DefBuckets
	}
	s := r.register(name, help, kindHistogram, labels, func(s *sample) { s.hist = newHistogram(buckets) })
	return s.hist
}

// renderLabels renders sorted labels as `{a="b",c="d"}` ("" when empty)
// with Prometheus escaping for values.
func renderLabels(ls []Label) string {
	if len(ls) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range ls {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteString(`="`)
		b.WriteString(escapeLabelValue(l.Value))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

func escapeLabelValue(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	var b strings.Builder
	for _, r := range v {
		switch r {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(r)
		}
	}
	return b.String()
}

// formatValue renders a float the way Prometheus clients do: shortest
// round-trip representation, +Inf/-Inf/NaN spelled out.
func formatValue(v float64) string {
	switch {
	case math.IsInf(v, +1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return trimFloat(v)
}
