package obs

import (
	"encoding/json"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGaugeNilSafety(t *testing.T) {
	var c *Counter
	c.Inc()
	c.Add(5)
	if c.Value() != 0 {
		t.Fatal("nil counter must read 0")
	}
	var g *Gauge
	g.Set(7)
	g.Add(-2)
	if g.Value() != 0 {
		t.Fatal("nil gauge must read 0")
	}
	var h *Histogram
	h.Observe(1)
	if h.Count() != 0 || h.Sum() != 0 {
		t.Fatal("nil histogram must read 0")
	}
	var r *Registry
	if r.Counter("x", "") != nil || r.Gauge("x", "") != nil || r.Histogram("x", "", nil) != nil {
		t.Fatal("nil registry must hand out nil instruments")
	}
	r.CounterFunc("x", "", func() float64 { return 1 })
	r.GaugeFunc("x", "", func() float64 { return 1 })
	if err := r.WritePrometheus(&strings.Builder{}); err != nil {
		t.Fatal(err)
	}
	var tr *Tracer
	tr.Add("fp", Span{Name: "x"})
	tr.Event("fp", "x", "")
	if _, ok := tr.Timeline("fp"); ok {
		t.Fatal("nil tracer must know nothing")
	}
}

// TestHistogramBucketBoundaries pins `le` semantics: a value exactly on
// a bound lands in that bound's bucket, one ulp above spills to the
// next, and values past the last bound land in +Inf.
func TestHistogramBucketBoundaries(t *testing.T) {
	h := newHistogram([]float64{0.1, 1, 10})
	cases := []struct {
		v    float64
		want int // bucket index
	}{
		{0, 0},
		{0.1, 0},                              // exactly on the bound → that bucket
		{math.Nextafter(0.1, math.Inf(1)), 1}, // one ulp above → next bucket
		{1, 1},
		{5, 2},
		{10, 2},
		{10.0001, 3}, // past the last bound → +Inf
		{1e9, 3},
	}
	for _, c := range cases {
		before := make([]uint64, len(h.counts))
		for i := range h.counts {
			before[i] = h.counts[i].Load()
		}
		h.Observe(c.v)
		for i := range h.counts {
			got := h.counts[i].Load() - before[i]
			want := uint64(0)
			if i == c.want {
				want = 1
			}
			if got != want {
				t.Fatalf("Observe(%v): bucket %d delta = %d, want %d", c.v, i, got, want)
			}
		}
	}
	if h.Count() != uint64(len(cases)) {
		t.Fatalf("count = %d, want %d", h.Count(), len(cases))
	}
	// Cumulative snapshot must be monotone and end at the total count.
	buckets := h.snapshotBuckets()
	if len(buckets) != 4 {
		t.Fatalf("got %d buckets, want 4", len(buckets))
	}
	var prev uint64
	for _, b := range buckets {
		if b.Count < prev {
			t.Fatalf("cumulative counts must be monotone: %+v", buckets)
		}
		prev = b.Count
	}
	if buckets[3].Count != h.Count() || !math.IsInf(buckets[3].UpperBound, +1) {
		t.Fatalf("last bucket must be +Inf with the full count: %+v", buckets[3])
	}
}

func TestHistogramSumAccumulates(t *testing.T) {
	h := newHistogram(DefBuckets)
	for _, v := range []float64{0.25, 0.25, 0.5} {
		h.Observe(v)
	}
	if got := h.Sum(); math.Abs(got-1.0) > 1e-12 {
		t.Fatalf("sum = %v, want 1.0", got)
	}
}

func TestRegistryIdempotentAndKindConflictPanics(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("hits_total", "h")
	b := r.Counter("hits_total", "h")
	if a != b {
		t.Fatal("same (name, labels) must return the same counter")
	}
	l1 := r.Counter("req_total", "h", L("route", "a"))
	l2 := r.Counter("req_total", "h", L("route", "b"))
	if l1 == l2 {
		t.Fatal("different labels must be distinct samples")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("re-registering a counter as a gauge must panic")
		}
	}()
	r.Gauge("hits_total", "h")
}

// TestWritePrometheusDeterministic pins the rendered form: sorted
// families, sorted samples, histogram bucket/sum/count lines, escaped
// label values, and stable float formatting.
func TestWritePrometheusDeterministic(t *testing.T) {
	r := NewRegistry()
	r.Counter("zeta_total", "Last family.").Add(3)
	r.Gauge("alpha_entries", "First family.").Set(12)
	r.CounterFunc("mid_total", "Func-backed.", func() float64 { return 7 }, L("kind", `we"ird`))
	h := r.Histogram("lat_seconds", "Latency.", []float64{0.5, 2}, L("route", "GET /x"))
	h.Observe(0.4)
	h.Observe(3)

	var b1, b2 strings.Builder
	if err := r.WritePrometheus(&b1); err != nil {
		t.Fatal(err)
	}
	if err := r.WritePrometheus(&b2); err != nil {
		t.Fatal(err)
	}
	if b1.String() != b2.String() {
		t.Fatal("exposition must be byte-identical across scrapes of unchanged state")
	}
	want := `# HELP alpha_entries First family.
# TYPE alpha_entries gauge
alpha_entries 12
# HELP lat_seconds Latency.
# TYPE lat_seconds histogram
lat_seconds_bucket{route="GET /x",le="0.5"} 1
lat_seconds_bucket{route="GET /x",le="2"} 1
lat_seconds_bucket{route="GET /x",le="+Inf"} 2
lat_seconds_sum{route="GET /x"} 3.4
lat_seconds_count{route="GET /x"} 2
# HELP mid_total Func-backed.
# TYPE mid_total counter
mid_total{kind="we\"ird"} 7
# HELP zeta_total Last family.
# TYPE zeta_total counter
zeta_total 3
`
	if got := b1.String(); got != want {
		t.Fatalf("exposition mismatch:\n got:\n%s\nwant:\n%s", got, want)
	}
}

func TestSnapshotJSONRoundTrips(t *testing.T) {
	r := NewRegistry()
	r.Counter("c_total", "c").Inc()
	r.Histogram("h_seconds", "h", []float64{1}).Observe(0.5)
	blob, err := json.Marshal(r.Snapshot())
	if err != nil {
		t.Fatalf("statz snapshot must marshal (even with +Inf buckets): %v", err)
	}
	if !strings.Contains(string(blob), `"le":"+Inf"`) {
		t.Fatalf("missing +Inf bucket in %s", blob)
	}
}

func TestTracerBoundsAndEviction(t *testing.T) {
	tr := NewTracer(2, 3)
	for i, fp := range []string{"a", "b", "c"} {
		tr.Add(fp, Span{Name: "queued", Start: time.Unix(int64(i), 0)})
	}
	if _, ok := tr.Timeline("a"); ok {
		t.Fatal("oldest study must be evicted at capacity")
	}
	if _, ok := tr.Timeline("c"); !ok {
		t.Fatal("newest study must survive")
	}
	for i := 0; i < 10; i++ {
		tr.Add("c", Span{Name: "stage"})
	}
	spans, _ := tr.Timeline("c")
	if len(spans) != 3 {
		t.Fatalf("per-study spans must cap at 3, got %d", len(spans))
	}
	st := tr.Stats()
	if st.Studies != 2 || st.Evicted != 1 || st.Truncated == 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestTracerDerivesSeconds(t *testing.T) {
	tr := NewTracer(0, 0)
	start := time.Unix(100, 0)
	tr.Add("fp", Span{Name: "computing", Start: start, End: start.Add(250 * time.Millisecond)})
	spans, _ := tr.Timeline("fp")
	if got := spans[0].Seconds; math.Abs(got-0.25) > 1e-9 {
		t.Fatalf("seconds = %v, want 0.25", got)
	}
}

func TestInstrumentRecordsAndFlushes(t *testing.T) {
	r := NewRegistry()
	flushed := false
	h := Instrument(r, "GET /x", http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.WriteHeader(http.StatusTeapot)
		if f, ok := w.(http.Flusher); ok {
			f.Flush()
			flushed = true
		}
	}))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/x", nil))
	if rec.Code != http.StatusTeapot {
		t.Fatalf("status = %d", rec.Code)
	}
	if !flushed {
		t.Fatal("middleware must pass Flusher through (SSE depends on it)")
	}
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, `http_responses_total{class="4xx",route="GET /x"} 1`) {
		t.Fatalf("missing 4xx counter:\n%s", out)
	}
	if !strings.Contains(out, `http_request_seconds_count{route="GET /x"} 1`) {
		t.Fatalf("missing latency count:\n%s", out)
	}
}

// TestConcurrentRecording hammers every instrument type from many
// goroutines; run under -race this is the data-race gate for the
// zero-alloc recording paths.
func TestConcurrentRecording(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total", "c")
	g := r.Gauge("g", "g")
	h := r.Histogram("h_seconds", "h", nil)
	tr := NewTracer(16, 8)
	const workers, iters = 8, 500
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				c.Inc()
				g.Set(int64(i))
				h.Observe(float64(i%100) / 1000)
				tr.Add("fp", Span{Name: "stage"})
				if i%50 == 0 {
					var b strings.Builder
					_ = r.WritePrometheus(&b)
					_, _ = tr.Timeline("fp")
				}
			}
		}(w)
	}
	wg.Wait()
	if c.Value() != workers*iters {
		t.Fatalf("counter = %d, want %d", c.Value(), workers*iters)
	}
	if h.Count() != workers*iters {
		t.Fatalf("histogram count = %d, want %d", h.Count(), workers*iters)
	}
}

func BenchmarkHistogramObserve(b *testing.B) {
	h := newHistogram(DefBuckets)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(0.003)
	}
}
