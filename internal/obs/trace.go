package obs

import (
	"container/list"
	"sync"
	"time"
)

// Span is one step of a study's lifecycle: either an instant event
// (End zero) or a timed interval. Attempt/Worker annotate grid
// dispatches; Error records why a step failed. Node names the process
// the span was recorded on — empty on a single-node timeline, filled in
// by the coordinator's trace fan-in when timelines from several nodes
// are merged into one response.
type Span struct {
	Name    string    `json:"name"`
	Start   time.Time `json:"start"`
	End     time.Time `json:"end"` // zero for instant events
	Seconds float64   `json:"seconds"`
	Attempt int       `json:"attempt,omitempty"`
	Worker  string    `json:"worker,omitempty"`
	Node    string    `json:"node,omitempty"`
	Detail  string    `json:"detail,omitempty"`
	Error   string    `json:"error,omitempty"`
}

// Tracer keeps a bounded ring of per-study span timelines: at most
// maxStudies studies (least-recently-touched evicted first) of at most
// maxSpans spans each (later spans dropped, counted). Bounded both
// ways because the daemon is long-lived and studies keep arriving — an
// unbounded trace store would be a slow memory leak wearing an
// observability hat.
//
// A nil *Tracer is a no-op.
type Tracer struct {
	mu        sync.Mutex
	maxStudy  int
	maxSpans  int
	order     *list.List // *studyTrace, most recently touched at back
	byFp      map[string]*list.Element
	evicted   uint64 // studies dropped to stay under maxStudy
	truncated uint64 // spans dropped by per-study cap
}

type studyTrace struct {
	fp    string
	spans []Span
}

// Defaults when NewTracer gets non-positive bounds.
const (
	defaultTraceStudies = 256
	defaultTraceSpans   = 64
)

// NewTracer returns a tracer bounded to maxStudies timelines of
// maxSpans spans each (defaults applied for values <= 0).
func NewTracer(maxStudies, maxSpans int) *Tracer {
	if maxStudies <= 0 {
		maxStudies = defaultTraceStudies
	}
	if maxSpans <= 0 {
		maxSpans = defaultTraceSpans
	}
	return &Tracer{
		maxStudy: maxStudies,
		maxSpans: maxSpans,
		order:    list.New(),
		byFp:     make(map[string]*list.Element),
	}
}

// Add appends a span to fp's timeline, creating (and possibly evicting)
// as needed. Seconds is derived from Start/End when unset.
func (t *Tracer) Add(fp string, s Span) {
	if t == nil || fp == "" {
		return
	}
	if s.Seconds == 0 && !s.End.IsZero() && s.End.After(s.Start) {
		s.Seconds = s.End.Sub(s.Start).Seconds()
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	el, ok := t.byFp[fp]
	if !ok {
		for t.order.Len() >= t.maxStudy {
			oldest := t.order.Front()
			delete(t.byFp, oldest.Value.(*studyTrace).fp)
			t.order.Remove(oldest)
			t.evicted++
		}
		el = t.order.PushBack(&studyTrace{fp: fp})
		t.byFp[fp] = el
	} else {
		t.order.MoveToBack(el)
	}
	st := el.Value.(*studyTrace)
	if len(st.spans) >= t.maxSpans {
		t.truncated++
		return
	}
	st.spans = append(st.spans, s)
}

// Event records an instant (zero-duration) span at now.
func (t *Tracer) Event(fp, name, detail string) {
	if t == nil {
		return
	}
	t.Add(fp, Span{Name: name, Start: time.Now(), Detail: detail})
}

// Timeline returns a copy of fp's spans in arrival order, reporting
// whether the study is known. Reading does not refresh recency — a
// dashboard polling one study must not pin it against eviction.
func (t *Tracer) Timeline(fp string) ([]Span, bool) {
	if t == nil {
		return nil, false
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	el, ok := t.byFp[fp]
	if !ok {
		return nil, false
	}
	st := el.Value.(*studyTrace)
	return append([]Span(nil), st.spans...), true
}

// Stats reports tracer occupancy and loss counters.
type TracerStats struct {
	Studies   int    `json:"studies"`
	Evicted   uint64 `json:"evicted"`
	Truncated uint64 `json:"truncated"`
}

// Stats returns current occupancy (zero value for nil).
func (t *Tracer) Stats() TracerStats {
	if t == nil {
		return TracerStats{}
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return TracerStats{Studies: t.order.Len(), Evicted: t.evicted, Truncated: t.truncated}
}

// Obs bundles the two observability surfaces a component needs: a
// metrics registry and a study tracer. A nil *Obs (or nil fields)
// degrades to no-ops everywhere.
type Obs struct {
	Registry *Registry
	Tracer   *Tracer
}

// New returns an Obs with a fresh registry and a default-bounded tracer.
func New() *Obs {
	return &Obs{Registry: NewRegistry(), Tracer: NewTracer(0, 0)}
}

// Reg returns the registry (nil-safe).
func (o *Obs) Reg() *Registry {
	if o == nil {
		return nil
	}
	return o.Registry
}

// Trace returns the tracer (nil-safe).
func (o *Obs) Trace() *Tracer {
	if o == nil {
		return nil
	}
	return o.Tracer
}
