package obs

import (
	"bufio"
	"io"
	"math"
	"sort"
	"strconv"
)

var inf = math.Inf(+1)

func float64bits(f float64) uint64     { return math.Float64bits(f) }
func float64frombits(b uint64) float64 { return math.Float64frombits(b) }

// trimFloat renders v with the shortest representation that round-trips.
func trimFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WritePrometheus renders every family in text exposition format 0.0.4.
// Output is deterministic: families sort by name, samples by rendered
// labels — that determinism is what lets a golden test pin the bytes
// for a seeded store. A nil registry writes nothing.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	bw := bufio.NewWriter(w)

	r.mu.Lock()
	fams := make([]*family, 0, len(r.families))
	for _, f := range r.families {
		fams = append(fams, f)
	}
	r.mu.Unlock()
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })

	for _, f := range fams {
		bw.WriteString("# HELP ")
		bw.WriteString(f.name)
		bw.WriteByte(' ')
		bw.WriteString(f.help)
		bw.WriteByte('\n')
		bw.WriteString("# TYPE ")
		bw.WriteString(f.name)
		bw.WriteByte(' ')
		bw.WriteString(f.kind)
		bw.WriteByte('\n')

		keys := make([]string, 0, len(f.samples))
		for k := range f.samples {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			s := f.samples[k]
			if s.hist != nil {
				writeHistogram(bw, f.name, s)
				continue
			}
			bw.WriteString(f.name)
			bw.WriteString(s.key)
			bw.WriteByte(' ')
			bw.WriteString(formatValue(s.scalar()))
			bw.WriteByte('\n')
		}
	}
	return bw.Flush()
}

// writeHistogram renders one histogram sample: cumulative _bucket lines
// with an `le` label merged into the sample's own labels, then _sum and
// _count.
func writeHistogram(bw *bufio.Writer, name string, s *sample) {
	buckets := s.hist.snapshotBuckets()
	for _, b := range buckets {
		le := "+Inf"
		if !math.IsInf(b.UpperBound, +1) {
			le = trimFloat(b.UpperBound)
		}
		bw.WriteString(name)
		bw.WriteString("_bucket")
		bw.WriteString(mergeLE(s.labels, le))
		bw.WriteByte(' ')
		bw.WriteString(strconv.FormatUint(b.Count, 10))
		bw.WriteByte('\n')
	}
	bw.WriteString(name)
	bw.WriteString("_sum")
	bw.WriteString(s.key)
	bw.WriteByte(' ')
	bw.WriteString(formatValue(s.hist.Sum()))
	bw.WriteByte('\n')
	bw.WriteString(name)
	bw.WriteString("_count")
	bw.WriteString(s.key)
	bw.WriteByte(' ')
	bw.WriteString(strconv.FormatUint(s.hist.Count(), 10))
	bw.WriteByte('\n')
}

// mergeLE renders the sample's labels with `le` appended last, matching
// the common client rendering.
func mergeLE(ls []Label, le string) string {
	merged := make([]Label, 0, len(ls)+1)
	merged = append(merged, ls...)
	merged = append(merged, Label{Key: "le", Value: le})
	return renderLabels(merged)
}

// MetricSnapshot is one instrument in /v1/statz form. Scalars carry
// Value; histograms carry Count, Sum, and cumulative Buckets instead.
type MetricSnapshot struct {
	Name    string            `json:"name"`
	Type    string            `json:"type"`
	Labels  map[string]string `json:"labels,omitempty"`
	Value   *float64          `json:"value,omitempty"`
	Count   *uint64           `json:"count,omitempty"`
	Sum     *float64          `json:"sum,omitempty"`
	Buckets []BucketCount     `json:"buckets,omitempty"`
}

// Snapshot returns every instrument's current value in the same
// deterministic order the exposition uses. Nil registry → nil.
func (r *Registry) Snapshot() []MetricSnapshot {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	fams := make([]*family, 0, len(r.families))
	for _, f := range r.families {
		fams = append(fams, f)
	}
	r.mu.Unlock()
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })

	var out []MetricSnapshot
	for _, f := range fams {
		keys := make([]string, 0, len(f.samples))
		for k := range f.samples {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			s := f.samples[k]
			m := MetricSnapshot{Name: f.name, Type: f.kind}
			if len(s.labels) > 0 {
				m.Labels = make(map[string]string, len(s.labels))
				for _, l := range s.labels {
					m.Labels[l.Key] = l.Value
				}
			}
			if s.hist != nil {
				c, sum := s.hist.Count(), s.hist.Sum()
				m.Count, m.Sum = &c, &sum
				m.Buckets = s.hist.snapshotBuckets()
			} else {
				v := s.scalar()
				m.Value = &v
			}
			out = append(out, m)
		}
	}
	return out
}
