package obs

import (
	"net/http"
	"time"
)

// httpClasses are the status classes http_responses_total is labeled
// with. Pre-created at wrap time so the per-request path is a map-free
// array index.
var httpClasses = [6]string{"", "1xx", "2xx", "3xx", "4xx", "5xx"}

// Instrument wraps h with per-route latency and status metrics:
//
//	http_request_seconds{route=...}        latency histogram
//	http_responses_total{route=...,class=...}  responses by status class
//
// route is the registration-time pattern (e.g. "GET /v1/studies/{fp}"),
// passed explicitly because go.mod targets Go 1.22, which predates
// http.Request.Pattern. All five class counters are registered eagerly
// so the exposition shows zeroes instead of springing series into
// existence mid-scrape. A nil registry returns h unwrapped.
func Instrument(reg *Registry, route string, h http.Handler) http.Handler {
	if reg == nil {
		return h
	}
	hist := reg.Histogram("http_request_seconds", "HTTP request latency by route.", nil, L("route", route))
	var classes [6]*Counter
	for i := 1; i < len(httpClasses); i++ {
		classes[i] = reg.Counter("http_responses_total", "HTTP responses by route and status class.", L("route", route), L("class", httpClasses[i]))
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		sw := &statusWriter{ResponseWriter: w, code: http.StatusOK}
		start := time.Now()
		h.ServeHTTP(sw, r)
		hist.Observe(time.Since(start).Seconds())
		if c := sw.code / 100; c >= 1 && c <= 5 {
			classes[c].Inc()
		}
	})
}

// statusWriter records the status code. It forwards Flush so SSE
// handlers behind the middleware keep streaming.
type statusWriter struct {
	http.ResponseWriter
	code  int
	wrote bool
}

func (s *statusWriter) WriteHeader(code int) {
	if !s.wrote {
		s.code = code
		s.wrote = true
	}
	s.ResponseWriter.WriteHeader(code)
}

func (s *statusWriter) Write(b []byte) (int, error) {
	s.wrote = true
	return s.ResponseWriter.Write(b)
}

// Flush forwards to the underlying writer when it supports it, so
// streaming responses (SSE) are not silently buffered by the wrapper.
func (s *statusWriter) Flush() {
	if f, ok := s.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}
