package fleet

// Store.Merge is the multi-source write path of the grid tier: results for
// one fingerprint may arrive from any worker, from local fallback, or from
// a snapshot, and the store must treat agreement as a no-op and
// disagreement as an error — never as an overwrite.

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"testing"
)

// TestStoreMergeProperty: merging the same fingerprint from two sources is
// idempotent whatever the interleaving, and a byte mismatch is rejected
// loudly with the original bytes left intact.
func TestStoreMergeProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 200; trial++ {
		s := NewStore(0)
		n := 1 + rng.Intn(8)
		blobs := make(map[string][]byte, n)
		var fps []string
		for i := 0; i < n; i++ {
			fp := fmt.Sprintf("%032x", i)
			blob := make([]byte, 1+rng.Intn(64))
			rng.Read(blob)
			blobs[fp] = blob
			fps = append(fps, fp)
		}
		// Two "sources" merge every study in random interleaved order.
		order := append(append([]string(nil), fps...), fps...)
		rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
		for _, fp := range order {
			if err := s.Merge(fp, blobs[fp]); err != nil {
				t.Fatalf("trial %d: merge of identical bytes failed: %v", trial, err)
			}
		}
		if s.Len() != n {
			t.Fatalf("trial %d: %d entries after duplicate merges, want %d", trial, s.Len(), n)
		}
		// A third source disagrees on one study: loud rejection, original
		// bytes untouched.
		victim := fps[rng.Intn(n)]
		tampered := append(append([]byte(nil), blobs[victim]...), 'x')
		err := s.Merge(victim, tampered)
		if !errors.Is(err, ErrMergeConflict) {
			t.Fatalf("trial %d: conflicting merge returned %v, want ErrMergeConflict", trial, err)
		}
		got, ok := s.Get(victim)
		if !ok || !bytes.Equal(got, blobs[victim]) {
			t.Fatalf("trial %d: conflicting merge mutated the stored bytes", trial)
		}
	}
}

func TestStoreMergeEvictsLikePut(t *testing.T) {
	s := NewStore(2)
	for i := 0; i < 3; i++ {
		if err := s.Merge(fmt.Sprintf("%032x", i), []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if s.Len() != 2 {
		t.Fatalf("capacity-2 store holds %d after 3 merges", s.Len())
	}
	if s.Contains(fmt.Sprintf("%032x", 0)) {
		t.Fatal("LRU entry survived merge-driven eviction")
	}
}

func TestStoreIndex(t *testing.T) {
	s := NewStore(0)
	s.Put("bb", []byte("2"))
	s.Put("aa", []byte("1"))
	s.PutSpec("bb", []byte("{}"))
	s.PutSpec("cc", []byte("{}"))
	got := s.Index()
	want := []IndexEntry{
		{Fingerprint: "aa", Cached: true},
		{Fingerprint: "bb", Cached: true, Spec: true},
		{Fingerprint: "cc", Spec: true},
	}
	if len(got) != len(want) {
		t.Fatalf("Index() = %+v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Index()[%d] = %+v, want %+v", i, got[i], want[i])
		}
	}
	// Enumeration leaves the serving counters untouched.
	if st := s.Stats(); st.Hits != 0 || st.Misses != 0 {
		t.Fatalf("Index() touched counters: %+v", st)
	}
}
