package fleet

// End-to-end lifecycle test of the declarative-spec serving path, run fully
// in-process (the process-level twin lives in cmd/relperfd): a suite of
// declarative studies is POSTed to the HTTP server, results are fetched,
// the store is snapshotted, the "daemon" is restarted from the snapshot
// into a smaller cache that evicts one study — and the evicted study must
// still be re-GETtable with byte-identical results, recomputed from the
// spec the snapshot carried. This is the tentpole property of PR 3: specs,
// not just result blobs, survive restarts.

import (
	"bytes"
	"context"
	"net/http/httptest"
	"testing"
)

// declSuiteBody describes two cheap studies purely declaratively: a custom
// raw-kernel pipeline and a small gemm chain on an explicit platform.
const declSuiteBody = `{"studies":[
	{"program":{"name":"e2e-raw","tasks":[
		{"name":"L1","kernel":"raw","flops":5e8,"launches":10,"host_in_bytes":1e6,"host_out_bytes":1e6,"transfers":3,"accel_eff":0.01},
		{"name":"L2","kernel":"raw","flops":2e9,"launches":10,"host_in_bytes":5e6,"host_out_bytes":1e6,"transfers":3,"accel_eff":0.05}]},
	 "measurements":6,"reps":10},
	{"program":{"name":"e2e-gemm","tasks":[
		{"name":"G1","kernel":"gemm","size":64,"iters":8},
		{"name":"G2","kernel":"gemm","size":96,"iters":4,"cache_penalty_seconds":0.0003}]},
	 "platform":{"edge":{"preset":"raspberry-pi-4"},"link":{"preset":"wifi"}},
	 "measurements":6,"reps":10}
]}`

func TestE2EDeclarativeSpecLifecycle(t *testing.T) {
	if testing.Short() {
		t.Skip("full suite lifecycle; CI runs it in the dedicated e2e step")
	}
	const seed = 31

	// Generation 1: fresh daemon, declarative suite over the wire.
	store1 := NewStore(0)
	srv1, sched1 := newTestServer(t, seed, store1)
	ts1 := httptest.NewServer(srv1)
	sr := postSuite(t, ts1, declSuiteBody)
	if len(sr.Fingerprints) != 2 || sr.Fingerprints[0] == sr.Fingerprints[1] {
		t.Fatalf("fingerprints = %v", sr.Fingerprints)
	}
	want := map[string][]byte{}
	for _, fp := range sr.Fingerprints {
		code, body := getStudy(t, ts1, fp)
		if code != 200 {
			t.Fatalf("GET %s: %d %s", fp, code, body)
		}
		want[fp] = body
	}
	var snap bytes.Buffer
	if err := store1.WriteSnapshot(&snap, seed); err != nil {
		t.Fatal(err)
	}
	ts1.Close()
	sched1.Close()

	// Generation 2: restart from the snapshot into a capacity-1 store — the
	// LRU eviction during load drops one of the two results, keeping only
	// the most recently used. Both specs survive (specs are not evicted).
	store2 := NewStore(1)
	retained, err := store2.LoadSnapshot(bytes.NewReader(snap.Bytes()), seed)
	if err != nil {
		t.Fatal(err)
	}
	if retained != 1 {
		t.Fatalf("retained %d results in a capacity-1 store, want 1", retained)
	}
	if st := store2.Stats(); st.Specs != 2 {
		t.Fatalf("restored %d specs, want 2", st.Specs)
	}
	var evicted, kept string
	for _, fp := range sr.Fingerprints {
		if store2.Contains(fp) {
			kept = fp
		} else {
			evicted = fp
		}
	}
	if evicted == "" || kept == "" {
		t.Fatalf("expected one kept and one evicted study, store keys = %v", store2.Keys())
	}

	srv2, sched2 := newTestServer(t, seed, store2)
	ts2 := httptest.NewServer(srv2)
	defer ts2.Close()

	// The kept study serves from the warm snapshot: zero recomputation.
	code, body := getStudy(t, ts2, kept)
	if code != 200 || !bytes.Equal(body, want[kept]) {
		t.Fatalf("warm study %s differs after restart (code %d)", kept, code)
	}
	if got := sched2.Computes(); got != 0 {
		t.Fatalf("computes = %d before touching the evicted study", got)
	}

	// The evicted study is recomputed transparently from its snapshot spec —
	// no resubmission — and the recomputed bytes are identical.
	code, body = getStudy(t, ts2, evicted)
	if code != 200 {
		t.Fatalf("GET evicted %s: %d %s", evicted, code, body)
	}
	if !bytes.Equal(body, want[evicted]) {
		t.Fatalf("recomputed study %s differs from the original bytes", evicted)
	}
	if got := sched2.Computes(); got != 1 {
		t.Fatalf("computes = %d after recomputing one evicted study", got)
	}

	// Unknown fingerprints still 404: no spec, no recompute.
	if code, _ := getStudy(t, ts2, "ffffffffffffffffffffffffffffffff"); code != 404 {
		t.Fatalf("unknown fingerprint: %d", code)
	}
}

// TestSchedulerRecomputeFromCorruptSpec: a snapshot spec that no longer
// resolves to its fingerprint (here: tampered content) must fail loudly,
// not serve a result under the wrong identity.
func TestSchedulerRecomputeFromCorruptSpec(t *testing.T) {
	store := NewStore(0)
	store.PutSpec("00112233445566778899aabbccddeeff", []byte(`{"workload":"tableI","loop_n":2,"measurements":6,"reps":10}`))
	sched := New(Options{Workers: 2, Seed: 3, Store: store})
	defer sched.Close()
	_, err := sched.Result(context.Background(), "00112233445566778899aabbccddeeff")
	if err == nil {
		t.Fatal("mismatched snapshot spec served a result")
	}
	if !bytes.Contains([]byte(err.Error()), []byte("resolves to fingerprint")) {
		t.Fatalf("err = %v", err)
	}
}

// TestSchedulerRecomputeFromUnparseableSpec: garbage in the spec registry
// surfaces as an error, never a panic or a silent 404 masquerade.
func TestSchedulerRecomputeFromUnparseableSpec(t *testing.T) {
	store := NewStore(0)
	store.PutSpec("00112233445566778899aabbccddeeff", []byte(`{broken`))
	sched := New(Options{Workers: 2, Seed: 3, Store: store})
	defer sched.Close()
	_, err := sched.Result(context.Background(), "00112233445566778899aabbccddeeff")
	if err == nil {
		t.Fatal("unparseable snapshot spec served a result")
	}
}
