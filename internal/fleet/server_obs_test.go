package fleet

// Tests for the observability serving surface this package exports:
// conditional GETs on the immutable study endpoint, the quantile summary
// endpoint in both comparator modes, and the trace fan-in merge path
// (with its degraded fetch-failed shape). All run through the full
// instrumented handler stack — the same mux, middleware and routes the
// daemon serves — so the ETag short-circuit is proven where it ships.

import (
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"relperf/internal/obs"
)

const sketchSuiteBody = `{"studies":[
	{"workload":"tableI","loop_n":2,"measurements":6,"reps":10,"sketch":{"k":64}}
]}`

// getWithHeader GETs path with one optional request header and returns
// the response (body drained and closed).
func getWithHeader(t *testing.T, ts *httptest.Server, path, header, value string) (*http.Response, []byte) {
	t.Helper()
	req, err := http.NewRequest(http.MethodGet, ts.URL+path, nil)
	if err != nil {
		t.Fatal(err)
	}
	if header != "" {
		req.Header.Set(header, value)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, body
}

// TestStudyETagConditionalGet: the fingerprint is the ETag (results are
// content-addressed and immutable), so a revalidating client gets 304
// with no body and no recomputation — the short-circuit fires before the
// scheduler's Result path.
func TestStudyETagConditionalGet(t *testing.T) {
	srv, sched := newTestServer(t, 31, nil)
	ts := httptest.NewServer(srv)
	defer ts.Close()

	sr := postSuite(t, ts, suiteBody)
	fp := sr.Fingerprints[0]

	resp, body := getWithHeader(t, ts, "/v1/studies/"+fp, "", "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET study: %d %s", resp.StatusCode, body)
	}
	etag := resp.Header.Get("ETag")
	if etag != `"`+fp+`"` {
		t.Fatalf("ETag = %q, want quoted fingerprint %q", etag, fp)
	}
	if cc := resp.Header.Get("Cache-Control"); cc != "public, max-age=31536000, immutable" {
		t.Fatalf("Cache-Control = %q", cc)
	}
	computes := sched.Computes()

	// Revalidations in every accepted form: exact, weak, list, wildcard.
	for _, inm := range []string{etag, "W/" + etag, `"deadbeef", ` + etag, "*"} {
		resp, body := getWithHeader(t, ts, "/v1/studies/"+fp, "If-None-Match", inm)
		if resp.StatusCode != http.StatusNotModified {
			t.Fatalf("If-None-Match %q: %d, want 304", inm, resp.StatusCode)
		}
		if len(body) != 0 {
			t.Fatalf("304 carried a body: %q", body)
		}
		if got := resp.Header.Get("ETag"); got != etag {
			t.Fatalf("304 ETag = %q, want %q", got, etag)
		}
	}
	if sched.Computes() != computes {
		t.Fatalf("revalidation recomputed: computes %d -> %d", computes, sched.Computes())
	}

	// A stale validator falls through to a full 200.
	resp, body = getWithHeader(t, ts, "/v1/studies/"+fp, "If-None-Match", `"deadbeef"`)
	if resp.StatusCode != http.StatusOK || len(body) == 0 {
		t.Fatalf("stale If-None-Match: %d (body %d bytes), want full 200", resp.StatusCode, len(body))
	}

	// An unknown fingerprint must 404 even with a "matching" validator:
	// the short-circuit is gated on the study actually being known.
	unknown := "ffffffffffffffffffffffffffffffff"
	resp, _ = getWithHeader(t, ts, "/v1/studies/"+unknown, "If-None-Match", `"`+unknown+`"`)
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown fingerprint with matching validator: %d, want 404", resp.StatusCode)
	}
}

// TestStudySummaryEndpoint exercises both summary modes end to end:
// sketch-mode studies answer from their sketches with the mode's rank
// error bound; exact-mode studies get the reduced summary computed from
// stored samples (exact, so no bound).
func TestStudySummaryEndpoint(t *testing.T) {
	srv, _ := newTestServer(t, 17, nil)
	ts := httptest.NewServer(srv)
	defer ts.Close()

	cases := []struct {
		name      string
		suite     string
		mode      string
		wantBound bool
	}{
		{"exact", suiteBody, SummaryModeExact, false},
		{"sketch", sketchSuiteBody, SummaryModeSketch, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			sr := postSuite(t, ts, tc.suite)
			fp := sr.Fingerprints[0]
			resp, body := getWithHeader(t, ts, "/v1/studies/"+fp+"/summary", "", "")
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("GET summary: %d %s", resp.StatusCode, body)
			}
			var sum StudySummary
			if err := json.Unmarshal(body, &sum); err != nil {
				t.Fatal(err)
			}
			if sum.Schema != SummarySchema || sum.Fingerprint != fp || sum.Mode != tc.mode {
				t.Fatalf("summary header = %+v", sum)
			}
			if tc.wantBound != (sum.ErrorBound > 0) {
				t.Fatalf("error_bound = %v for %s mode", sum.ErrorBound, tc.mode)
			}
			if len(sum.Algorithms) == 0 {
				t.Fatal("summary has no algorithms")
			}
			for _, a := range sum.Algorithms {
				if a.N == 0 {
					t.Fatalf("algorithm %s summarized zero measurements", a.Name)
				}
				if !(a.Min <= a.P50 && a.P50 <= a.P90 && a.P90 <= a.P95 && a.P95 <= a.P99 && a.P99 <= a.Max) {
					t.Fatalf("algorithm %s quantiles not monotone: %+v", a.Name, a)
				}
			}
		})
	}

	resp, _ := getWithHeader(t, ts, "/v1/studies/ffffffffffffffffffffffffffffffff/summary", "", "")
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown summary: %d, want 404", resp.StatusCode)
	}
}

// TestTraceFanIn drives the merged-timeline serving path with a stubbed
// remote fetch: local spans are tagged with the local node, remote spans
// arrive pre-tagged and interleave by start time, and the nodes list
// reports first appearance order.
func TestTraceFanIn(t *testing.T) {
	o := obs.New()
	sched := New(Options{Workers: 1, Seed: 3, Obs: o})
	defer sched.Close()

	base := time.Now()
	fetch := func(ctx context.Context, fp string) (string, []obs.Span, error) {
		return "w1", []obs.Span{
			{Name: "stage:measure", Start: base.Add(2 * time.Millisecond), Node: "w1"},
		}, nil
	}
	srv := NewServer(sched, WithTraceFanIn("coordinator", fetch))
	ts := httptest.NewServer(srv)
	defer ts.Close()

	o.Tracer.Add("fp1", obs.Span{Name: "dispatch-attempt", Start: base, Worker: "w1"})

	resp, body := getWithHeader(t, ts, "/v1/trace/fp1", "", "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET trace: %d %s", resp.StatusCode, body)
	}
	var tr traceResponse
	if err := json.Unmarshal(body, &tr); err != nil {
		t.Fatal(err)
	}
	if len(tr.Spans) != 2 {
		t.Fatalf("spans = %+v, want local dispatch + remote stage", tr.Spans)
	}
	if tr.Spans[0].Name != "dispatch-attempt" || tr.Spans[0].Node != "coordinator" {
		t.Fatalf("span 0 = %+v, want coordinator dispatch first", tr.Spans[0])
	}
	if tr.Spans[1].Name != "stage:measure" || tr.Spans[1].Node != "w1" {
		t.Fatalf("span 1 = %+v, want worker stage second", tr.Spans[1])
	}
	if len(tr.Nodes) != 2 || tr.Nodes[0] != "coordinator" || tr.Nodes[1] != "w1" {
		t.Fatalf("nodes = %v", tr.Nodes)
	}
}

// TestTraceFanInDegraded: when the owning worker cannot be reached the
// merged timeline still serves the coordinator's half, plus a loud
// fetch-failed event naming the worker and the error.
func TestTraceFanInDegraded(t *testing.T) {
	o := obs.New()
	sched := New(Options{Workers: 1, Seed: 3, Obs: o})
	defer sched.Close()

	fetch := func(ctx context.Context, fp string) (string, []obs.Span, error) {
		return "w1", nil, errors.New("worker w1 is quarantined")
	}
	srv := NewServer(sched, WithTraceFanIn("coordinator", fetch))
	ts := httptest.NewServer(srv)
	defer ts.Close()

	o.Tracer.Add("fp1", obs.Span{Name: "dispatch-attempt", Start: time.Now(), Worker: "w1"})

	resp, body := getWithHeader(t, ts, "/v1/trace/fp1", "", "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET trace: %d %s", resp.StatusCode, body)
	}
	var tr traceResponse
	if err := json.Unmarshal(body, &tr); err != nil {
		t.Fatal(err)
	}
	last := tr.Spans[len(tr.Spans)-1]
	if last.Name != "fetch-failed" || last.Worker != "w1" || last.Error == "" {
		t.Fatalf("degraded trace must end with a loud fetch-failed event, got %+v", last)
	}
}
