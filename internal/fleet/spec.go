package fleet

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"

	"relperf"
	"relperf/internal/compare"
	"relperf/internal/sim"
	"relperf/internal/workload"
)

// StudySpec is the JSON wire form of a study configuration: programs and
// platforms are referenced by workload name (configs travel over HTTP, so
// they cannot carry Go model objects), everything else maps onto
// relperf.StudyConfig. Zero values mean the library defaults.
type StudySpec struct {
	// Workload names the program/platform pair: "tableI" or "fig1".
	Workload string `json:"workload"`
	// LoopN is the loop iteration count of the tableI workload (default
	// 10); ignored by fig1.
	LoopN int `json:"loop_n,omitempty"`
	// Measurements is N, the measurements per algorithm (default 30).
	Measurements int `json:"measurements,omitempty"`
	// Warmup measurements are discarded first.
	Warmup int `json:"warmup,omitempty"`
	// Reps is the number of clustering repetitions (default 100).
	Reps int `json:"reps,omitempty"`
	// Matrix enables the precomputed pairwise-statistics clustering path.
	Matrix bool `json:"matrix,omitempty"`
	// MatrixTrials caps the per-pair trials on the matrix path.
	MatrixTrials int `json:"matrix_trials,omitempty"`
	// Comparator selects a built-in comparator at default parameters:
	// "bootstrap" (default), "ks", "mannwhitney" or "mean".
	Comparator string `json:"comparator,omitempty"`
	// Placements restricts the algorithm set ("DDA", ...); empty means all
	// 2^L placements.
	Placements []string `json:"placements,omitempty"`
}

// Config resolves the spec into a runnable study configuration.
func (sp *StudySpec) Config() (relperf.StudyConfig, error) {
	var cfg relperf.StudyConfig
	loopN := sp.LoopN
	if loopN <= 0 {
		loopN = 10
	}
	switch sp.Workload {
	case "tableI", "table1":
		cfg.Platform = relperf.DefaultPlatform()
		cfg.Program = relperf.TableIProgram(loopN)
	case "fig1", "figure1":
		cfg.Platform = relperf.Figure1Platform()
		// The Figure-1 program's offload efficiencies are calibrated to its
		// own platform's accelerator peak, as in the relperf CLI.
		cfg.Program = workload.Figure1(cfg.Platform.Accel.PeakFlops)
	default:
		return cfg, fmt.Errorf("fleet: unknown workload %q (want tableI or fig1)", sp.Workload)
	}
	switch sp.Comparator {
	case "", "bootstrap":
		cfg.Comparator = nil
	case "ks":
		cfg.Comparator = compare.KS{}
	case "mannwhitney":
		cfg.Comparator = compare.MannWhitney{}
	case "mean":
		cfg.Comparator = compare.MeanThreshold{}
	default:
		return cfg, fmt.Errorf("fleet: unknown comparator %q", sp.Comparator)
	}
	for _, raw := range sp.Placements {
		pl, err := sim.ParsePlacement(raw)
		if err != nil {
			return cfg, err
		}
		cfg.Placements = append(cfg.Placements, pl)
	}
	cfg.N = sp.Measurements
	cfg.Warmup = sp.Warmup
	cfg.Reps = sp.Reps
	cfg.Matrix = sp.Matrix
	cfg.MatrixTrials = sp.MatrixTrials
	return cfg, nil
}

// SuiteRequest is the POST /v1/suites body.
type SuiteRequest struct {
	Studies []StudySpec `json:"studies"`
}

// Configs resolves every spec of the request.
func (r *SuiteRequest) Configs() ([]relperf.StudyConfig, error) {
	if len(r.Studies) == 0 {
		return nil, errors.New("fleet: suite request without studies")
	}
	configs := make([]relperf.StudyConfig, len(r.Studies))
	for i := range r.Studies {
		cfg, err := r.Studies[i].Config()
		if err != nil {
			return nil, fmt.Errorf("fleet: study %d: %w", i, err)
		}
		configs[i] = cfg
	}
	return configs, nil
}

// DecodeSuiteRequest parses a request body, rejecting unknown fields so
// spec typos fail loudly instead of silently running the default study.
func DecodeSuiteRequest(rd io.Reader) (*SuiteRequest, error) {
	dec := json.NewDecoder(rd)
	dec.DisallowUnknownFields()
	var req SuiteRequest
	if err := dec.Decode(&req); err != nil {
		return nil, fmt.Errorf("fleet: decoding suite request: %w", err)
	}
	return &req, nil
}
