package fleet

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"

	"relperf"
)

// StudySpec is the JSON wire form of a study configuration. The schema is
// owned by the relperf package (see relperf.StudySpec): a spec either names
// a built-in workload or carries a declarative program/platform description,
// so clients can open arbitrary scenarios without a binary roll. The alias
// keeps the fleet wire surface (SuiteRequest, snapshots) and the library
// schema one type.
type StudySpec = relperf.StudySpec

// SuiteRequest is the POST /v1/suites body. Platforms optionally defines
// named custom platforms once at the suite level; studies reference one
// with a platform of the form {"name": "x"}. References are substituted
// into the studies at decode time (relperf.ExpandPlatformRefs), so by the
// time specs are validated, fingerprinted or retained for snapshots they
// are fully self-contained.
type SuiteRequest struct {
	Studies   []StudySpec                      `json:"studies"`
	Platforms map[string]*relperf.PlatformSpec `json:"platforms,omitempty"`
}

// Configs resolves every spec of the request.
func (r *SuiteRequest) Configs() ([]relperf.StudyConfig, error) {
	return relperf.ConfigsFromSpecs(r.Studies)
}

// DecodeSuiteRequest parses a request body, rejecting unknown fields so
// spec typos fail loudly instead of silently running the default study.
// Every spec is validated; resolution happens in Configs or
// Scheduler.SubmitSpecs.
func DecodeSuiteRequest(rd io.Reader) (*SuiteRequest, error) {
	dec := json.NewDecoder(rd)
	dec.DisallowUnknownFields()
	var req SuiteRequest
	if err := dec.Decode(&req); err != nil {
		return nil, fmt.Errorf("fleet: decoding suite request: %w", err)
	}
	// A second document after the first would be silently discarded by
	// Decode — reject it, the caller almost certainly concatenated bodies.
	// A read error here (size cap, transport) is its own failure, not
	// trailing data.
	if _, err := dec.Token(); err != io.EOF {
		if err != nil {
			return nil, fmt.Errorf("fleet: reading suite request: %w", err)
		}
		return nil, errors.New("fleet: trailing data after suite request")
	}
	if len(req.Studies) == 0 {
		return nil, errors.New("fleet: suite request without studies")
	}
	// Named-platform references substitute before validation: afterwards
	// every study spec stands alone, which snapshots and grid dispatch
	// depend on.
	if err := relperf.ExpandPlatformRefs(req.Studies, req.Platforms); err != nil {
		return nil, fmt.Errorf("fleet: %w", err)
	}
	for i := range req.Studies {
		if err := req.Studies[i].Validate(); err != nil {
			return nil, fmt.Errorf("fleet: study %d: %w", i, err)
		}
	}
	return &req, nil
}
