package fleet

import (
	"relperf"
	"relperf/internal/obs"
)

// registerMetrics wires the scheduler's (and its store's) series into
// the shared registry. Called once from New. Counters a component
// already keeps for its own API (computes, store stats) are exported as
// scrape-time funcs instead of doubled on the hot path; only genuinely
// new signals (coalesces, queue wait, stage latencies, subscriber
// drops) get dedicated instruments.
//
// Metric names are pinned by the golden exposition test and documented
// in the README's Observability table — change all three together.
func (s *Scheduler) registerMetrics() {
	reg := s.obs.Reg()

	reg.CounterFunc("fleet_computes_total", "Study computations started.",
		func() float64 { return float64(s.computes.Load()) })
	reg.GaugeFunc("fleet_inflight_studies", "Studies currently computing.",
		func() float64 { return float64(s.Inflight()) })
	reg.GaugeFunc("fleet_subscribers", "Active study-event subscribers.",
		func() float64 {
			s.subMu.Lock()
			defer s.subMu.Unlock()
			return float64(len(s.subs))
		})
	s.coalesced = reg.Counter("fleet_coalesced_total",
		"Requests that joined an already in-flight computation (single-flight).")
	s.studyErrors = reg.Counter("fleet_study_errors_total",
		"Studies that completed with an error.")
	s.subsDropped = reg.Counter("fleet_subscribers_dropped_total",
		"Subscribers disconnected for falling behind the bounded event buffer.")
	s.queueWait = reg.Histogram("fleet_queue_wait_seconds",
		"Delay between a study entering the in-flight set and its computation starting.", nil)
	s.studySeconds = reg.Histogram("fleet_study_seconds",
		"End-to-end study computation time, including dispatch and store merge.", nil)

	// The tracer's loss counters: a dashboard that sees these move knows
	// the bounded trace ring is dropping history and -trace-studies /
	// -trace-spans need raising.
	tr := s.obs.Trace()
	reg.CounterFunc("trace_evicted_total", "Study timelines evicted from the bounded trace ring.",
		func() float64 { return float64(tr.Stats().Evicted) })
	reg.CounterFunc("trace_truncated_total", "Spans dropped by the per-study span cap.",
		func() float64 { return float64(tr.Stats().Truncated) })
	reg.GaugeFunc("trace_studies", "Study timelines currently retained by the tracer.",
		func() float64 { return float64(tr.Stats().Studies) })

	// One engine_stage_seconds series per stable stage name; an unknown
	// stage name misses the map, yielding a nil (no-op) histogram rather
	// than an unbounded label set.
	s.stageHists = make(map[string]*obs.Histogram, 3)
	for _, stage := range []string{relperf.StageMeasure, relperf.StageCluster, relperf.StageFinalize} {
		s.stageHists[stage] = reg.Histogram("engine_stage_seconds",
			"Engine pipeline stage wall-clock time.", nil, obs.L("stage", stage))
	}

	st := s.store
	reg.GaugeFunc("store_entries", "Cached results currently held.",
		func() float64 { return float64(st.Stats().Entries) })
	reg.GaugeFunc("store_specs", "Declarative study specs retained for recompute.",
		func() float64 { return float64(st.Stats().Specs) })
	reg.CounterFunc("store_hits_total", "Result cache hits.",
		func() float64 { return float64(st.Stats().Hits) })
	reg.CounterFunc("store_misses_total", "Result cache misses.",
		func() float64 { return float64(st.Stats().Misses) })
	reg.CounterFunc("store_evictions_total", "Results evicted by the LRU capacity bound.",
		func() float64 { return float64(st.Stats().Evictions) })
	reg.CounterFunc("store_merges_total", "Successful result merges (including idempotent re-merges).",
		func() float64 { return float64(st.Stats().Merges) })
	reg.CounterFunc("store_merge_conflicts_total", "Merges refused because the fingerprint was cached with different bytes.",
		func() float64 { return float64(st.Stats().Conflicts) })
}
