package fleet

import (
	"fmt"
	"sort"

	"relperf"
	"relperf/internal/stats"
)

// SummarySchema identifies the GET /v1/studies/{fp}/summary wire format:
// a per-algorithm quantile digest small enough for a dashboard poll,
// extracted from the stored result document without shipping it.
const SummarySchema = "relperf/summary/v1"

// Summary modes. Sketch-mode studies summarize their quantile sketches
// (and carry the mode's rank-error bound); exact-mode studies get a
// reduced summary computed from the stored samples.
const (
	SummaryModeExact  = "exact"
	SummaryModeSketch = "sketch"
)

// summaryQuantiles are the selected quantiles every summary reports.
var summaryQuantiles = []float64{0.5, 0.9, 0.95, 0.99}

// AlgorithmSummary is one algorithm's distribution digest.
type AlgorithmSummary struct {
	Name string `json:"name"`
	// N is the number of measurements behind the digest (exact count in
	// both modes — sketches track it exactly even though they retain only
	// a bounded subset).
	N    uint64  `json:"n"`
	Min  float64 `json:"min"`
	Max  float64 `json:"max"`
	Mean float64 `json:"mean"`
	P50  float64 `json:"p50"`
	P90  float64 `json:"p90"`
	P95  float64 `json:"p95"`
	P99  float64 `json:"p99"`
}

// StudySummary is the GET /v1/studies/{fp}/summary body.
type StudySummary struct {
	Schema      string `json:"schema"`
	Fingerprint string `json:"fingerprint"`
	Mode        string `json:"mode"`
	Workload    string `json:"workload,omitempty"`
	// ErrorBound is the sketch mode's rank-error bound (each reported
	// quantile is within rank q ± ErrorBound of the ingested
	// distribution); 0 (absent) in exact mode, where quantiles are exact.
	ErrorBound float64            `json:"error_bound,omitempty"`
	Algorithms []AlgorithmSummary `json:"algorithms"`
}

// SummarizeResult reduces a stored canonical result document to its
// quantile summary. Sketch-mode documents answer straight from the
// sketches; exact-mode documents pay one sort per algorithm — a cold
// dashboard path, not the serving path.
func SummarizeResult(fp string, blob []byte) (*StudySummary, error) {
	res, err := relperf.UnmarshalResultWire(blob)
	if err != nil {
		return nil, fmt.Errorf("fleet: summarizing %s: %w", fp, err)
	}
	sum := &StudySummary{Schema: SummarySchema, Fingerprint: fp}
	switch {
	case res.Sketches != nil:
		sum.Mode = SummaryModeSketch
		sum.Workload = res.Sketches.Workload
		sum.ErrorBound = stats.SketchEpsilon(res.Sketches.K())
		for _, sk := range res.Sketches.Sketches {
			a := AlgorithmSummary{Name: sk.Name}
			if s := sk.Sketch; s != nil && s.N() > 0 {
				a.N = s.N()
				a.Min = s.MinValue()
				a.Max = s.MaxValue()
				a.Mean = s.Mean()
				a.P50 = s.Quantile(summaryQuantiles[0])
				a.P90 = s.Quantile(summaryQuantiles[1])
				a.P95 = s.Quantile(summaryQuantiles[2])
				a.P99 = s.Quantile(summaryQuantiles[3])
			}
			sum.Algorithms = append(sum.Algorithms, a)
		}
	case res.Samples != nil:
		sum.Mode = SummaryModeExact
		sum.Workload = res.Samples.Workload
		for _, sample := range res.Samples.Samples {
			a := AlgorithmSummary{Name: sample.Name}
			if n := len(sample.Seconds); n > 0 {
				sorted := append([]float64(nil), sample.Seconds...)
				sort.Float64s(sorted)
				a.N = uint64(n)
				a.Min = sorted[0]
				a.Max = sorted[n-1]
				a.Mean = stats.Mean(sample.Seconds)
				a.P50 = stats.QuantileSorted(sorted, summaryQuantiles[0])
				a.P90 = stats.QuantileSorted(sorted, summaryQuantiles[1])
				a.P95 = stats.QuantileSorted(sorted, summaryQuantiles[2])
				a.P99 = stats.QuantileSorted(sorted, summaryQuantiles[3])
			}
			sum.Algorithms = append(sum.Algorithms, a)
		}
	default:
		return nil, fmt.Errorf("fleet: result %s carries neither samples nor sketches", fp)
	}
	if sum.Algorithms == nil {
		sum.Algorithms = []AlgorithmSummary{}
	}
	return sum, nil
}
