package fleet

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"relperf"
	"relperf/internal/obs"
)

// ErrUnknownStudy is returned by Result for a fingerprint no suite ever
// submitted: it is not cached, not in flight, and neither a config nor a
// snapshot spec is retained to recompute it from.
var ErrUnknownStudy = errors.New("fleet: unknown study fingerprint")

// ErrClosed is returned once the scheduler has shut down.
var ErrClosed = errors.New("fleet: scheduler closed")

// Options configures a Scheduler.
type Options struct {
	// Workers is the global concurrency budget shared by every work unit
	// of every study the scheduler runs (0 means GOMAXPROCS).
	Workers int
	// Seed is the suite seed: every study's seed derives from it and the
	// study's fingerprint, so schedulers with equal seeds produce
	// bit-identical cached results whatever their budget or load.
	Seed uint64
	// Store is the result cache; nil means a fresh unbounded store.
	Store *Store
	// Dispatch, when set, is offered each study before local execution:
	// the grid coordinator uses it to shard studies onto remote relperfd
	// workers. It receives the study's self-contained task envelope
	// (fingerprint, derived seed, declarative spec) and returns the
	// study's canonical result bytes. Any dispatch error — no workers, all
	// retries exhausted, an unverifiable reply — falls back to local
	// execution, so a degraded grid degrades to a single node, never to a
	// failed suite. Studies submitted without a declarative spec (the
	// config-level Submit path) cannot travel the wire and always run
	// locally.
	Dispatch func(ctx context.Context, task relperf.GridTask) ([]byte, error)
	// Obs receives the scheduler's metrics and study traces; nil means a
	// private obs.New(), so the /v1/metrics, /v1/statz and /v1/trace
	// endpoints work on every scheduler. Share one Obs across the
	// scheduler, WAL and grid coordinator to serve a single unified
	// exposition.
	Obs *obs.Obs
}

// Phase tags the stage of a StudyEvent.
type Phase string

const (
	// PhaseComputing is published when a study's computation starts.
	PhaseComputing Phase = "computing"
	// PhaseDone is published when a study completes (Result or Err set).
	PhaseDone Phase = "done"
)

// StudyEvent is streamed to subscribers as each study starts computing and
// again as it completes.
type StudyEvent struct {
	// Fingerprint identifies the study.
	Fingerprint string
	// Phase is the stage this event reports.
	Phase Phase
	// Result is the completed result (nil unless Phase is PhaseDone and
	// the study succeeded).
	Result *relperf.Result
	// Err is the study's failure, if it failed.
	Err error
}

// Scheduler runs studies addressed by config fingerprint on one shared
// worker budget. Every fingerprint computes at most once at a time: cached
// results are served from the store, and concurrent requests for the same
// uncached fingerprint coalesce onto a single in-flight computation
// (single-flight). Completed results stream to subscribers.
type Scheduler struct {
	opts   Options
	budget *relperf.Budget
	store  *Store

	ctx    context.Context
	cancel context.CancelFunc
	wg     sync.WaitGroup

	mu       sync.Mutex
	closed   bool
	inflight map[string]*flight
	// studies retains every submitted study (validated, fingerprinted,
	// seeded — relperf.NewKeyedStudy) so a result evicted from the LRU
	// store is recomputed on demand instead of turning into a permanent
	// 404 for the rest of the process lifetime. Growth is bounded by the
	// number of distinct configs ever submitted, which the daemon's
	// workloads keep small; the blobs (the heavy part) stay governed by
	// the store. Across restarts the same role is played by the store's
	// spec registry: SubmitSpecs persists each study's declarative wire
	// spec into the snapshot, and Result falls back to re-resolving it.
	studies map[string]*relperf.Study

	computes atomic.Uint64

	// Metric instruments, registered once in New (see metrics.go). All
	// nil-safe, so a test constructing a Scheduler literal records into
	// no-ops instead of panicking.
	obs          *obs.Obs
	coalesced    *obs.Counter
	studyErrors  *obs.Counter
	subsDropped  *obs.Counter
	queueWait    *obs.Histogram
	studySeconds *obs.Histogram
	stageHists   map[string]*obs.Histogram

	subMu   sync.Mutex
	subs    map[int]chan StudyEvent
	nextSub int
}

// flight is one in-progress computation; waiters block on done.
type flight struct {
	done    chan struct{}
	created time.Time // when the flight entered the in-flight set
	blob    []byte
	res     *relperf.Result
	err     error
}

// New returns a running scheduler.
func New(opts Options) *Scheduler {
	if opts.Store == nil {
		opts.Store = NewStore(0)
	}
	if opts.Obs == nil {
		opts.Obs = obs.New()
	}
	ctx, cancel := context.WithCancel(context.Background())
	s := &Scheduler{
		opts:     opts,
		budget:   relperf.NewBudget(opts.Workers),
		store:    opts.Store,
		obs:      opts.Obs,
		ctx:      ctx,
		cancel:   cancel,
		inflight: make(map[string]*flight),
		studies:  make(map[string]*relperf.Study),
		subs:     make(map[int]chan StudyEvent),
	}
	s.registerMetrics()
	return s
}

// Obs returns the scheduler's observability surfaces.
func (s *Scheduler) Obs() *obs.Obs { return s.obs }

// Seed returns the scheduler's suite seed.
func (s *Scheduler) Seed() uint64 { return s.opts.Seed }

// Store returns the scheduler's result store.
func (s *Scheduler) Store() *Store { return s.store }

// Workers returns the global budget width.
func (s *Scheduler) Workers() int { return s.budget.Workers() }

// Computes returns how many study computations have started — the counter
// the cache-hit and single-flight tests assert on.
func (s *Scheduler) Computes() uint64 { return s.computes.Load() }

// Inflight returns the number of studies currently computing.
func (s *Scheduler) Inflight() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.inflight)
}

// Computing reports whether the fingerprint is currently in flight — the
// probe the SSE streaming handler uses to pick a study's initial phase.
func (s *Scheduler) Computing(fp string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	_, ok := s.inflight[fp]
	return ok
}

// Known reports whether the scheduler can serve the fingerprint at all: a
// cached result, an in-flight computation, a retained study, or a
// snapshot spec to recompute from. The SSE handler checks this before
// telling a subscriber a study is queued — a fingerprint nobody ever
// submitted must stream only its error, never a status implying it
// exists.
func (s *Scheduler) Known(fp string) bool {
	s.mu.Lock()
	_, inflight := s.inflight[fp]
	_, submitted := s.studies[fp]
	s.mu.Unlock()
	if inflight || submitted || s.store.Contains(fp) {
		return true
	}
	_, ok := s.store.Spec(fp)
	return ok
}

// Submit registers a suite of study configurations and returns their
// fingerprints in input order. Uncached studies start computing in the
// background immediately; duplicates (within the suite or against the
// cache and in-flight work) cost nothing. No computation starts when any
// configuration is invalid.
func (s *Scheduler) Submit(configs []relperf.StudyConfig) ([]string, error) {
	if len(configs) == 0 {
		return nil, errors.New("fleet: no studies")
	}
	fps := make([]string, len(configs))
	studies := make([]*relperf.Study, len(configs))
	for i, cfg := range configs {
		study, fp, err := relperf.NewKeyedStudy(cfg, s.opts.Seed)
		if err != nil {
			return nil, fmt.Errorf("fleet: study %d: %w", i, err)
		}
		studies[i], fps[i] = study, fp
	}
	if err := s.ensureAll(fps, studies, nil); err != nil {
		return nil, err
	}
	return fps, nil
}

// SubmitSpecs registers a suite of declarative study specs and returns
// their fingerprints in input order — the spec-layer form of Submit. Beyond
// resolving each spec to a runnable study, it retains the spec's canonical
// wire JSON in the store, where snapshots persist it: a restarted daemon
// re-resolves the snapshot spec to recompute any result the LRU has
// evicted, so eviction never turns a submitted study into a 404 — even
// across process lifetimes. No computation starts and no spec is retained
// when any spec is invalid.
func (s *Scheduler) SubmitSpecs(specs []StudySpec) ([]string, error) {
	if len(specs) == 0 {
		return nil, errors.New("fleet: no study specs")
	}
	fps := make([]string, len(specs))
	studies := make([]*relperf.Study, len(specs))
	blobs := make([][]byte, len(specs))
	for i := range specs {
		cfg, err := specs[i].Config()
		if err != nil {
			return nil, fmt.Errorf("fleet: study %d: %w", i, err)
		}
		study, fp, err := relperf.NewKeyedStudy(cfg, s.opts.Seed)
		if err != nil {
			return nil, fmt.Errorf("fleet: study %d: %w", i, err)
		}
		blob, err := json.Marshal(&specs[i])
		if err != nil {
			return nil, fmt.Errorf("fleet: study %d: encoding spec: %w", i, err)
		}
		studies[i], fps[i], blobs[i] = study, fp, blob
	}
	if err := s.ensureAll(fps, studies, blobs); err != nil {
		return nil, err
	}
	return fps, nil
}

// ensureAll is the shared tail of the Submit entry points: retain each
// spec (when present) and arrange every study's computation.
func (s *Scheduler) ensureAll(fps []string, studies []*relperf.Study, specBlobs [][]byte) error {
	for i, fp := range fps {
		if specBlobs != nil {
			// A spec the journal refused is a study we must not promise:
			// after a crash the daemon could neither serve nor recompute it.
			if err := s.store.PutSpec(fp, specBlobs[i]); err != nil {
				return err
			}
		}
		if _, err := s.ensure(fp, studies[i]); err != nil {
			return err
		}
	}
	return nil
}

// Study computes (or serves) the result for one configuration, blocking
// until it is available: the synchronous form of Submit + Result.
func (s *Scheduler) Study(ctx context.Context, cfg relperf.StudyConfig) (string, []byte, error) {
	study, fp, err := relperf.NewKeyedStudy(cfg, s.opts.Seed)
	if err != nil {
		return "", nil, err
	}
	for {
		f, err := s.ensure(fp, study)
		if err != nil {
			return fp, nil, err
		}
		if f == nil { // served from cache
			if blob, ok := s.store.Get(fp); ok {
				return fp, blob, nil
			}
			// Evicted between ensure and Get under a tiny LRU; go around
			// and compute it again.
			continue
		}
		blob, err := s.wait(ctx, f)
		return fp, blob, err
	}
}

// Result returns the encoded result for a fingerprint: from the cache, by
// waiting for the in-flight computation, or — for a study whose result was
// LRU-evicted — by recomputing it from the retained study or, after a
// restart, from the declarative spec persisted in the snapshot.
// Fingerprints with none of those return ErrUnknownStudy: the scheduler
// cannot reconstruct a config from its hash alone.
func (s *Scheduler) Result(ctx context.Context, fp string) ([]byte, error) {
	for {
		if blob, ok := s.store.Get(fp); ok {
			return blob, nil
		}
		s.mu.Lock()
		f, ok := s.inflight[fp]
		if ok {
			s.mu.Unlock()
			s.coalesced.Inc()
			return s.wait(ctx, f)
		}
		// The flight may have landed between the cache miss and the lock;
		// completions publish to the store before leaving the in-flight
		// set, so with no retained config a second absence really is
		// unknown (within this process — see the studies field). Contains,
		// not Get: one logical lookup should count at
		// most one miss — the top of the loop fetches (and counts the hit).
		study, submitted := s.studies[fp]
		s.mu.Unlock()
		if s.store.Contains(fp) {
			continue
		}
		if !submitted {
			// Restart path: the in-process study registry is empty, but the
			// snapshot may have carried the study's declarative spec.
			var err error
			study, err = s.studyFromSpec(fp)
			if err != nil {
				return nil, err
			}
		}
		f, err := s.ensure(fp, study)
		if err != nil {
			return nil, err
		}
		if f != nil {
			return s.wait(ctx, f)
		}
		// ensure saw a cached result (a racing recompute landed); loop to
		// fetch it.
	}
}

// studyFromSpec rebuilds a runnable study from the spec the store retains
// for the fingerprint (typically restored from a snapshot). The resolved
// spec must fingerprint back to fp — a mismatch means the snapshot was
// written by an engine with different result semantics, and serving a
// recompute under the old identity would break the determinism contract.
func (s *Scheduler) studyFromSpec(fp string) (*relperf.Study, error) {
	raw, ok := s.store.Spec(fp)
	if !ok {
		return nil, ErrUnknownStudy
	}
	spec, err := relperf.ParseStudySpec(raw)
	if err != nil {
		return nil, fmt.Errorf("fleet: snapshot spec for %s: %w", fp, err)
	}
	cfg, err := spec.Config()
	if err != nil {
		return nil, fmt.Errorf("fleet: snapshot spec for %s: %w", fp, err)
	}
	study, got, err := relperf.NewKeyedStudy(cfg, s.opts.Seed)
	if err != nil {
		return nil, fmt.Errorf("fleet: snapshot spec for %s: %w", fp, err)
	}
	if got != fp {
		return nil, fmt.Errorf("fleet: snapshot spec for %s resolves to fingerprint %s (schema or engine changed); resubmit the suite", fp, got)
	}
	return study, nil
}

// wait blocks until the flight completes or ctx is cancelled. A cancelled
// waiter abandons only its wait — the computation keeps running for the
// other subscribers and the cache.
func (s *Scheduler) wait(ctx context.Context, f *flight) ([]byte, error) {
	select {
	case <-f.done:
		return f.blob, f.err
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// ensure arranges for fp's result to exist: a cache hit returns (nil, nil),
// an in-flight or newly started computation returns its flight, and the
// study is retained either way so evictions stay recomputable. This is
// the single-flight point — at most one computation per fingerprint exists
// at any moment.
func (s *Scheduler) ensure(fp string, study *relperf.Study) (*flight, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, ErrClosed
	}
	s.studies[fp] = study
	if f, ok := s.inflight[fp]; ok {
		s.coalesced.Inc()
		return f, nil
	}
	// Contains, not Get: an existence probe must not inflate the hit
	// counters or refresh LRU recency for results nobody fetched.
	if s.store.Contains(fp) {
		return nil, nil
	}
	f := &flight{done: make(chan struct{}), created: time.Now()}
	s.inflight[fp] = f
	s.wg.Add(1)
	go s.compute(f, fp, study)
	return f, nil
}

// compute runs one study — remotely through the dispatch hook when one is
// set, locally on the shared budget otherwise — and publishes the outcome:
// store first (a Merge, so a conflicting duplicate fails loudly instead of
// silently overwriting), then the in-flight set, then the subscribers.
// Errors are not cached — a later request retries.
func (s *Scheduler) compute(f *flight, fp string, study *relperf.Study) {
	defer s.wg.Done()
	s.computes.Add(1)
	tr := s.obs.Trace()
	start := time.Now()
	s.queueWait.Observe(start.Sub(f.created).Seconds())
	tr.Add(fp, obs.Span{Name: "queued", Start: f.created, End: start})
	s.publish(StudyEvent{Fingerprint: fp, Phase: PhaseComputing})
	f.blob, f.res, f.err = s.run(fp, study)
	if f.err == nil {
		f.err = s.store.Merge(fp, f.blob)
	}
	if f.err != nil {
		f.blob, f.res = nil, nil
	}
	s.mu.Lock()
	delete(s.inflight, fp)
	s.mu.Unlock()
	close(f.done)
	end := time.Now()
	s.studySeconds.Observe(end.Sub(start).Seconds())
	if f.res != nil {
		// Engine stage timings: one histogram observation and one trace
		// span per stage, recorded after the run — never inside it.
		for _, st := range f.res.Stages {
			s.stageHists[st.Name].Observe(st.Seconds)
			tr.Add(fp, obs.Span{Name: "stage:" + st.Name, Start: st.Start, Seconds: st.Seconds})
		}
	}
	doneSpan := obs.Span{Name: "done", Start: end}
	if f.err != nil {
		s.studyErrors.Inc()
		doneSpan.Error = f.err.Error()
	}
	tr.Add(fp, doneSpan)
	s.publish(StudyEvent{Fingerprint: fp, Phase: PhaseDone, Result: f.res, Err: f.err})
}

// run executes a retained study (already validated and seeded by
// NewKeyedStudy) and encodes the result. With a dispatch hook and a
// retained declarative spec the study is offered to the grid first; a
// dispatched result only counts if it parses back — anything else falls
// back to local execution, which the determinism contract guarantees
// produces the identical bytes.
func (s *Scheduler) run(fp string, study *relperf.Study) ([]byte, *relperf.Result, error) {
	tr := s.obs.Trace()
	if s.opts.Dispatch != nil {
		if spec, ok := s.store.Spec(fp); ok {
			if seed, err := relperf.StudySeed(s.opts.Seed, fp); err == nil {
				task := relperf.GridTask{Fingerprint: fp, Seed: seed, Spec: spec}
				span := obs.Span{Name: "dispatched", Start: time.Now()}
				blob, err := s.opts.Dispatch(s.ctx, task)
				if err == nil {
					var res *relperf.Result
					if res, err = relperf.VerifyGridResult(task, blob); err == nil {
						span.End = time.Now()
						tr.Add(fp, span)
						return blob, res, nil
					}
				}
				// The coordinator records per-attempt spans; this umbrella
				// span records why the grid path as a whole was abandoned.
				span.End = time.Now()
				span.Error = err.Error()
				span.Detail = "falling back to local execution"
				tr.Add(fp, span)
			}
		}
	}
	span := obs.Span{Name: "computing", Start: time.Now()}
	res, err := study.RunOn(s.ctx, s.budget)
	span.End = time.Now()
	if err != nil {
		span.Error = err.Error()
		tr.Add(fp, span)
		return nil, nil, err
	}
	tr.Add(fp, span)
	blob, err := res.MarshalWire()
	if err != nil {
		return nil, nil, err
	}
	return blob, res, nil
}

// Subscribe returns a channel streaming every study's phase events
// (computing, then done) and a cancel function. Sends never block the
// engine: a subscriber whose buffer is full when an event arrives is
// disconnected — its channel is closed and removed — rather than
// silently skipped, so a consumer always knows its view is either
// complete or over. buffer <= 0 means 16. cancel is idempotent and safe
// after a disconnect.
func (s *Scheduler) Subscribe(buffer int) (<-chan StudyEvent, func()) {
	if buffer <= 0 {
		buffer = 16
	}
	ch := make(chan StudyEvent, buffer)
	s.subMu.Lock()
	id := s.nextSub
	s.nextSub++
	s.subs[id] = ch
	s.subMu.Unlock()
	var once sync.Once
	cancel := func() {
		once.Do(func() {
			s.subMu.Lock()
			delete(s.subs, id)
			s.subMu.Unlock()
		})
	}
	return ch, cancel
}

// publish fans an event out to every subscriber without ever blocking
// the engine. A subscriber whose buffer is full is dropped: deleted
// from the set and its channel closed, which the consumer observes as
// end-of-stream. Closing here is safe because every send to a
// subscriber channel happens in this function, under subMu — there is
// no racing sender to panic. A silent per-event drop (the old
// behaviour) is worse than a disconnect: a consumer that missed a
// "done" event would wait on a phase that already happened, with no
// way to know its view had gaps.
func (s *Scheduler) publish(ev StudyEvent) {
	s.subMu.Lock()
	defer s.subMu.Unlock()
	for id, ch := range s.subs {
		select {
		case ch <- ev:
		default: // slow subscriber: disconnect rather than stall the engine
			delete(s.subs, id)
			close(ch)
			s.subsDropped.Inc()
		}
	}
}

// Close cancels every in-flight study, waits for them to drain and rejects
// future submissions. The store and its contents survive for snapshotting.
func (s *Scheduler) Close() {
	s.mu.Lock()
	s.closed = true
	s.mu.Unlock()
	s.cancel()
	s.wg.Wait()
}
