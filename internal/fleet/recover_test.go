package fleet

// Crash-recovery properties of the WAL-backed store: journaled state
// replays to the identical bytes, a journal that refuses an append
// refuses the mutation with it, replay rejects records whose identity no
// longer checks out, and the replication surfaces (MergeSnapshot, the
// /v1/replica/snapshot handler, WriteSnapshotAtomic, Replicator.Push)
// hold the never-overwrite and never-litter contracts under injected
// faults.

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"relperf/internal/faultpoint"
	"relperf/internal/wal"
)

// walSpecs is a two-study suite for journal tests.
func walSpecs() []StudySpec {
	return []StudySpec{
		{Workload: "tableI", LoopN: 2, Measurements: 6, Reps: 10},
		{Workload: "tableI", LoopN: 3, Measurements: 6, Reps: 10},
	}
}

// runSuiteWithWAL runs the suite against a WAL-backed scheduler and
// returns the fingerprints and their served bytes.
func runSuiteWithWAL(t *testing.T, w *wal.Log, seed uint64) ([]string, map[string][]byte) {
	t.Helper()
	store := NewStore(0)
	store.SetWAL(w)
	sched := New(Options{Workers: 2, Seed: seed, Store: store})
	defer sched.Close()
	fps, err := sched.SubmitSpecs(walSpecs())
	if err != nil {
		t.Fatal(err)
	}
	blobs := make(map[string][]byte)
	for _, fp := range fps {
		blob, err := sched.Result(context.Background(), fp)
		if err != nil {
			t.Fatal(err)
		}
		blobs[fp] = blob
	}
	return fps, blobs
}

// TestWALJournalRecoverRoundTrip: every spec retained and result merged
// through a WAL-backed store replays into a fresh store as the identical
// bytes — the kill -9 durability contract, minus the kill.
func TestWALJournalRecoverRoundTrip(t *testing.T) {
	const seed = 11
	path := filepath.Join(t.TempDir(), "fleet.wal")
	w, recs, err := wal.Open(path, seed, t.Logf)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 0 {
		t.Fatalf("fresh wal replayed %d records", len(recs))
	}
	fps, blobs := runSuiteWithWAL(t, w, seed)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	w2, recs, err := wal.Open(path, seed, t.Logf)
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	recovered := NewStore(0)
	counts, tasks, err := ReplayWAL(recovered, seed, recs)
	if err != nil {
		t.Fatal(err)
	}
	if counts.Specs != 2 || counts.Results != 2 || len(tasks) != 0 {
		t.Fatalf("replay counts = %+v (tasks %d), want 2 specs + 2 results", counts, len(tasks))
	}
	for _, fp := range fps {
		got, ok := recovered.Get(fp)
		if !ok {
			t.Fatalf("replayed store does not hold %s", fp)
		}
		if !bytes.Equal(got, blobs[fp]) {
			t.Fatalf("replayed bytes for %s differ from the acked bytes", fp)
		}
		if _, ok := recovered.Spec(fp); !ok {
			t.Fatalf("replayed store lost the spec for %s", fp)
		}
	}
	// Replaying the same records again is a pile of idempotent no-ops.
	if _, _, err := ReplayWAL(recovered, seed, recs); err != nil {
		t.Fatalf("second replay: %v", err)
	}
}

// TestStoreRefusesUnjournaledState: when the WAL cannot take the append,
// Merge and PutSpec fail and the store stays unchanged — nothing becomes
// servable that a crash would un-serve.
func TestStoreRefusesUnjournaledState(t *testing.T) {
	const seed = 11
	defer faultpoint.Reset()
	w, _, err := wal.Open(filepath.Join(t.TempDir(), "fleet.wal"), seed, t.Logf)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	store := NewStore(0)
	store.SetWAL(w)

	const fp = "00112233445566778899aabbccddeeff"
	faultpoint.Arm("wal.append.sync", faultpoint.Error, 1)
	if err := store.Merge(fp, []byte(`{"x":1}`)); !errors.Is(err, faultpoint.ErrInjected) {
		t.Fatalf("Merge with a failing journal = %v, want injected fault", err)
	}
	if store.Contains(fp) {
		t.Fatal("store serves a result the journal never held")
	}
	faultpoint.Arm("wal.append.sync", faultpoint.Error, 1)
	if err := store.PutSpec(fp, []byte(`{"workload":"tableI"}`)); !errors.Is(err, faultpoint.ErrInjected) {
		t.Fatalf("PutSpec with a failing journal = %v, want injected fault", err)
	}
	if _, ok := store.Spec(fp); ok {
		t.Fatal("store retains a spec the journal never held")
	}
	// The faults were one-shot; the same mutations now land and journal.
	if err := store.Merge(fp, []byte(`{"x":1}`)); err != nil {
		t.Fatalf("Merge after the fault cleared: %v", err)
	}
	if err := store.PutSpec(fp, []byte(`{"workload":"tableI"}`)); err != nil {
		t.Fatalf("PutSpec after the fault cleared: %v", err)
	}
}

// TestReplayWALRejectsForeignIdentity: a spec record whose declarative
// body no longer resolves to the fingerprint it was journaled under, and
// a result record that is not a canonical result document, both refuse
// replay loudly instead of restoring state under a broken identity.
func TestReplayWALRejectsForeignIdentity(t *testing.T) {
	const seed = 11
	spec := []byte(`{"workload":"tableI","loop_n":2,"measurements":6,"reps":10}`)
	_, _, err := ReplayWAL(NewStore(0), seed, []wal.Record{
		{Type: wal.TypeSpec, Fingerprint: "ffffffffffffffffffffffffffffffff", Data: spec},
	})
	if err == nil || !strings.Contains(err.Error(), "resolves to fingerprint") {
		t.Fatalf("mismatched spec replay = %v, want a fingerprint mismatch refusal", err)
	}
	_, _, err = ReplayWAL(NewStore(0), seed, []wal.Record{
		{Type: wal.TypeResult, Fingerprint: "ffffffffffffffffffffffffffffffff", Data: []byte(`{"not":"a result"}`)},
	})
	if err == nil {
		t.Fatal("non-canonical result record replayed")
	}
	_, _, err = ReplayWAL(NewStore(0), seed, []wal.Record{{Type: "mystery", Data: []byte(`{}`)}})
	if err == nil {
		t.Fatal("unknown record type replayed")
	}
}

// TestMergeSnapshotSemantics: absorbing a snapshot merges new entries,
// re-absorbs idempotently, refuses divergent bytes and refuses foreign
// seeds — the exact contract a standby needs to stay byte-identical.
func TestMergeSnapshotSemantics(t *testing.T) {
	const seed = 11
	src := NewStore(0)
	src.Put("aa", []byte(`{"a":1}`))
	src.Put("bb", []byte(`{"b":2}`))
	if err := src.PutSpec("aa", []byte(`{"workload":"tableI"}`)); err != nil {
		t.Fatal(err)
	}
	var snap bytes.Buffer
	if err := src.WriteSnapshot(&snap, seed); err != nil {
		t.Fatal(err)
	}

	dst := NewStore(0)
	if n, err := dst.MergeSnapshot(bytes.NewReader(snap.Bytes()), seed); err != nil || n != 2 {
		t.Fatalf("first merge = (%d, %v), want (2, nil)", n, err)
	}
	if n, err := dst.MergeSnapshot(bytes.NewReader(snap.Bytes()), seed); err != nil || n != 2 {
		t.Fatalf("idempotent re-merge = (%d, %v), want (2, nil)", n, err)
	}
	if got, _ := dst.Get("aa"); !bytes.Equal(got, []byte(`{"a":1}`)) {
		t.Fatalf("merged bytes = %s", got)
	}
	if _, ok := dst.Spec("aa"); !ok {
		t.Fatal("merge dropped the spec")
	}
	if _, err := dst.MergeSnapshot(bytes.NewReader(snap.Bytes()), seed+1); !errors.Is(err, ErrSeedMismatch) {
		t.Fatalf("foreign-seed merge = %v, want ErrSeedMismatch", err)
	}
	conflicted := NewStore(0)
	conflicted.Put("aa", []byte(`{"a":999}`))
	if _, err := conflicted.MergeSnapshot(bytes.NewReader(snap.Bytes()), seed); !errors.Is(err, ErrMergeConflict) {
		t.Fatalf("divergent merge = %v, want ErrMergeConflict", err)
	}
}

// TestReplicaSnapshotEndpoint: the standby's HTTP surface — 200 with the
// applied count for a clean push, 409 for seed or byte conflicts, 400 for
// bytes that are not a snapshot.
func TestReplicaSnapshotEndpoint(t *testing.T) {
	const seed = 11
	sched := New(Options{Workers: 2, Seed: seed})
	defer sched.Close()
	ts := httptest.NewServer(NewServer(sched))
	defer ts.Close()

	src := NewStore(0)
	src.Put("aa", []byte(`{"a":1}`))
	var snap bytes.Buffer
	if err := src.WriteSnapshot(&snap, seed); err != nil {
		t.Fatal(err)
	}
	post := func(body []byte) *http.Response {
		t.Helper()
		resp, err := http.Post(ts.URL+"/v1/replica/snapshot", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp
	}
	if resp := post(snap.Bytes()); resp.StatusCode != http.StatusOK {
		t.Fatalf("clean push = %d, want 200", resp.StatusCode)
	}
	if got, ok := sched.Store().Get("aa"); !ok || !bytes.Equal(got, []byte(`{"a":1}`)) {
		t.Fatal("standby did not absorb the pushed result")
	}
	var foreign bytes.Buffer
	if err := src.WriteSnapshot(&foreign, seed+1); err != nil {
		t.Fatal(err)
	}
	if resp := post(foreign.Bytes()); resp.StatusCode != http.StatusConflict {
		t.Fatalf("foreign-seed push = %d, want 409", resp.StatusCode)
	}
	divergent := NewStore(0)
	divergent.Put("aa", []byte(`{"a":999}`))
	var div bytes.Buffer
	if err := divergent.WriteSnapshot(&div, seed); err != nil {
		t.Fatal(err)
	}
	if resp := post(div.Bytes()); resp.StatusCode != http.StatusConflict {
		t.Fatalf("divergent push = %d, want 409", resp.StatusCode)
	}
	if resp := post([]byte("not json")); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("garbage push = %d, want 400", resp.StatusCode)
	}
}

// TestWriteSnapshotAtomicCleansUpUnderFaults: whichever stage fails —
// the write, the fsync, the rename — the previous snapshot survives
// untouched and no .tmp file is left behind.
func TestWriteSnapshotAtomicCleansUpUnderFaults(t *testing.T) {
	const seed = 11
	defer faultpoint.Reset()
	dir := t.TempDir()
	path := filepath.Join(dir, "store.snapshot.json")
	store := NewStore(0)
	store.Put("aa", []byte(`{"a":1}`))
	if err := WriteSnapshotAtomic(store, path, seed); err != nil {
		t.Fatal(err)
	}
	before, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	store.Put("bb", []byte(`{"b":2}`))
	for _, name := range []string{"snapshot.write", "snapshot.sync", "snapshot.rename"} {
		faultpoint.Arm(name, faultpoint.Error, 1)
		if err := WriteSnapshotAtomic(store, path, seed); !errors.Is(err, faultpoint.ErrInjected) {
			t.Fatalf("%s armed: err = %v, want injected fault", name, err)
		}
		if _, err := os.Stat(path + ".tmp"); !errors.Is(err, os.ErrNotExist) {
			t.Fatalf("%s armed: .tmp file left behind", name)
		}
		after, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(before, after) {
			t.Fatalf("%s armed: previous snapshot was damaged", name)
		}
	}
	// Faults cleared: the write goes through and the new state lands.
	if err := WriteSnapshotAtomic(store, path, seed); err != nil {
		t.Fatal(err)
	}
	loaded := NewStore(0)
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if n, err := loaded.LoadSnapshot(f, seed); err != nil || n != 2 {
		t.Fatalf("reload = (%d, %v), want (2, nil)", n, err)
	}
}

// TestSnapshotCutCompactionKeepsLateMerges reproduces the checkpoint
// lost-update window deterministically: a result acked between the
// snapshot capture and the WAL compaction must survive in the compacted
// log, and the captured snapshot must hold exactly the pre-capture state.
func TestSnapshotCutCompactionKeepsLateMerges(t *testing.T) {
	const seed = 11
	dir := t.TempDir()
	walPath := filepath.Join(dir, "fleet.wal")
	snapPath := filepath.Join(dir, "store.snapshot.json")
	w, _, err := wal.Open(walPath, seed, t.Logf)
	if err != nil {
		t.Fatal(err)
	}
	store := NewStore(0)
	store.SetWAL(w)
	if err := store.Merge("aa", []byte(`{"a":1}`)); err != nil {
		t.Fatal(err)
	}
	data, cut, err := store.SnapshotCut(seed)
	if err != nil {
		t.Fatal(err)
	}
	// The late merge: acked after the capture, before the compaction.
	if err := store.Merge("bb", []byte(`{"b":2}`)); err != nil {
		t.Fatal(err)
	}
	if err := WriteSnapshotBytesAtomic(data, snapPath); err != nil {
		t.Fatal(err)
	}
	if err := w.CompactTo(cut, seed); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	// Recovery: the snapshot holds the captured state, the compacted log
	// holds the late merge — together, everything that was ever acked.
	_, recs, err := wal.Open(walPath, seed, t.Logf)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 || recs[0].Fingerprint != "bb" {
		t.Fatalf("compacted log replays %+v, want exactly the late merge for bb", recs)
	}
	recovered := NewStore(0)
	f, err := os.Open(snapPath)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if n, err := recovered.LoadSnapshot(f, seed); err != nil || n != 1 {
		t.Fatalf("snapshot reload = (%d, %v), want (1, nil)", n, err)
	}
	if err := recovered.Merge(recs[0].Fingerprint, recs[0].Data); err != nil {
		t.Fatal(err)
	}
	for fp, want := range map[string][]byte{"aa": []byte(`{"a":1}`), "bb": []byte(`{"b":2}`)} {
		if got, ok := recovered.Get(fp); !ok || !bytes.Equal(got, want) {
			t.Fatalf("recovered %s = (%s, %v), want %s", fp, got, ok, want)
		}
	}
}

// TestCheckpointRacesMergesLoseNothing hammers the real interleaving: a
// checkpoint loop (capture → atomic snapshot → WAL compaction) racing
// merge traffic. Whatever the schedule, snapshot + compacted log must
// recover every merge that was acknowledged.
func TestCheckpointRacesMergesLoseNothing(t *testing.T) {
	const seed = 11
	dir := t.TempDir()
	walPath := filepath.Join(dir, "fleet.wal")
	snapPath := filepath.Join(dir, "store.snapshot.json")
	w, _, err := wal.Open(walPath, seed, t.Logf)
	if err != nil {
		t.Fatal(err)
	}
	store := NewStore(0)
	store.SetWAL(w)

	stop := make(chan struct{})
	ckptDone := make(chan error, 1)
	go func() {
		for {
			select {
			case <-stop:
				ckptDone <- nil
				return
			default:
			}
			data, cut, err := store.SnapshotCut(seed)
			if err == nil {
				if err = WriteSnapshotBytesAtomic(data, snapPath); err == nil {
					err = w.CompactTo(cut, seed)
				}
			}
			if err != nil {
				ckptDone <- err
				return
			}
		}
	}()

	const mergers, perMerger = 4, 40
	var wg sync.WaitGroup
	var mu sync.Mutex
	acked := make(map[string][]byte)
	for g := 0; g < mergers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perMerger; i++ {
				fp := fmt.Sprintf("%02x%030x", g, i)
				blob := []byte(fmt.Sprintf(`{"g":%d,"i":%d}`, g, i))
				if err := store.Merge(fp, blob); err != nil {
					t.Errorf("merge %s: %v", fp, err)
					return
				}
				mu.Lock()
				acked[fp] = blob
				mu.Unlock()
			}
		}(g)
	}
	wg.Wait()
	close(stop)
	if err := <-ckptDone; err != nil {
		t.Fatalf("checkpoint loop: %v", err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	// Recover from disk alone: last snapshot + compacted WAL.
	_, recs, err := wal.Open(walPath, seed, t.Logf)
	if err != nil {
		t.Fatal(err)
	}
	recovered := NewStore(0)
	if f, err := os.Open(snapPath); err == nil {
		if _, err := recovered.LoadSnapshot(f, seed); err != nil {
			t.Fatal(err)
		}
		f.Close()
	} else if !errors.Is(err, os.ErrNotExist) {
		t.Fatal(err)
	}
	for _, rec := range recs {
		if rec.Type != wal.TypeResult {
			t.Fatalf("unexpected record type %q in the log", rec.Type)
		}
		if err := recovered.Merge(rec.Fingerprint, rec.Data); err != nil {
			t.Fatalf("replaying %s: %v", rec.Fingerprint, err)
		}
	}
	for fp, want := range acked {
		got, ok := recovered.Get(fp)
		if !ok {
			t.Fatalf("acked merge %s is in neither the snapshot nor the compacted log", fp)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("recovered bytes for %s differ from the acked bytes", fp)
		}
	}
}

// TestReplicatorPush: a push fans out to every standby, a failing one is
// reported without stopping the rest, and the standby ends up serving the
// pushed bytes.
func TestReplicatorPush(t *testing.T) {
	const seed = 11
	defer faultpoint.Reset()
	standby := New(Options{Workers: 2, Seed: seed})
	defer standby.Close()
	ts := httptest.NewServer(NewServer(standby))
	defer ts.Close()

	src := NewStore(0)
	src.Put("aa", []byte(`{"a":1}`))
	rep := &Replicator{URLs: []string{ts.URL}, Logf: t.Logf}
	if err := rep.Push(context.Background(), src, seed); err != nil {
		t.Fatal(err)
	}
	if got, ok := standby.Store().Get("aa"); !ok || !bytes.Equal(got, []byte(`{"a":1}`)) {
		t.Fatal("standby does not serve the pushed bytes")
	}
	// One dead standby degrades the round, not the others.
	rep2 := &Replicator{URLs: []string{"http://127.0.0.1:1", ts.URL}, Logf: t.Logf}
	src.Put("bb", []byte(`{"b":2}`))
	if err := rep2.Push(context.Background(), src, seed); err == nil {
		t.Fatal("push with a dead standby reported success")
	}
	if _, ok := standby.Store().Get("bb"); !ok {
		t.Fatal("live standby missed the push because another standby was dead")
	}
	// The replica.push faultpoint injects the same degradation.
	faultpoint.Arm("replica.push", faultpoint.Error, 1)
	if err := rep.Push(context.Background(), src, seed); !errors.Is(err, faultpoint.ErrInjected) {
		t.Fatalf("armed push = %v, want injected fault", err)
	}
}
