package fleet

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"

	"relperf/internal/faultpoint"
)

// WriteSnapshotAtomic persists the store's snapshot at path with full
// crash safety — see WriteSnapshotBytesAtomic for the write protocol.
func WriteSnapshotAtomic(store *Store, path string, seed uint64) error {
	data, _, err := store.SnapshotCut(seed)
	if err != nil {
		return err
	}
	return WriteSnapshotBytesAtomic(data, path)
}

// WriteSnapshotBytesAtomic persists pre-serialized snapshot bytes at path
// with full crash safety: the bytes are written to a sibling .tmp file,
// fsync'd, renamed into place, and the parent directory is fsync'd after
// the rename — without the directory sync a crash right after os.Rename
// can still resurface the old snapshot (or none at all) when the
// directory entry was never made durable. Every failure path removes the
// .tmp file. The snapshot.* faultpoints fire here. Taking bytes rather
// than the store lets a checkpoint capture state and a WAL cut point
// atomically (Store.SnapshotCut) and write the file afterwards, off the
// store's locks.
func WriteSnapshotBytesAtomic(data []byte, path string) (err error) {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	// One cleanup for every failure exit: close if still open, remove the
	// temp file so a failed snapshot never litters (or worse, gets
	// mistaken for a fresh one by an operator).
	closed := false
	defer func() {
		if err != nil {
			if !closed {
				f.Close()
			}
			os.Remove(tmp)
		}
	}()
	if err = faultpoint.Hit("snapshot.write"); err != nil {
		return err
	}
	if _, err = f.Write(data); err != nil {
		return err
	}
	if err = faultpoint.Hit("snapshot.sync"); err != nil {
		return err
	}
	if err = f.Sync(); err != nil {
		return err
	}
	if err = f.Close(); err != nil {
		return err
	}
	closed = true
	if err = faultpoint.Hit("snapshot.rename"); err != nil {
		return err
	}
	if err = os.Rename(tmp, path); err != nil {
		return err
	}
	d, err := os.Open(filepath.Dir(path))
	if err != nil {
		return fmt.Errorf("fleet: opening snapshot directory: %w", err)
	}
	defer d.Close()
	if err = d.Sync(); err != nil {
		return fmt.Errorf("fleet: syncing snapshot directory: %w", err)
	}
	return nil
}

// Replicator pushes store snapshots to standby coordinators over their
// POST /v1/replica/snapshot endpoint. Store.Merge makes replica
// convergence safe (identical bytes merge idempotently, divergent bytes
// refuse loudly), so a standby that absorbed the pushes serves warm and
// byte-identical after failover, with zero recomputation.
type Replicator struct {
	// URLs are the standby base URLs (e.g. http://standby:8077).
	URLs []string
	// Client is the HTTP client; nil means http.DefaultClient.
	Client *http.Client
	// Logf receives per-standby outcomes; nil discards them.
	Logf func(format string, args ...any)
}

func (r *Replicator) logf(format string, args ...any) {
	if r.Logf != nil {
		r.Logf(format, args...)
	}
}

// Push marshals one snapshot of the store and posts it to every standby.
// A failed standby is logged and does not stop the others; the joined
// error reports every failure so the caller can count a degraded
// replication round. The replica.push faultpoint fires once per standby.
func (r *Replicator) Push(ctx context.Context, store *Store, seed uint64) error {
	if len(r.URLs) == 0 {
		return nil
	}
	var buf bytes.Buffer
	if err := store.WriteSnapshot(&buf, seed); err != nil {
		return fmt.Errorf("fleet: encoding replica snapshot: %w", err)
	}
	client := r.Client
	if client == nil {
		client = http.DefaultClient
	}
	var errs []error
	for _, url := range r.URLs {
		if err := pushOne(ctx, client, url, buf.Bytes()); err != nil {
			r.logf("fleet: replica push to %s failed: %v (standby will catch up on the next push)", url, err)
			errs = append(errs, fmt.Errorf("%s: %w", url, err))
			continue
		}
		r.logf("fleet: replicated snapshot to %s (%d bytes)", url, buf.Len())
	}
	return errors.Join(errs...)
}

// pushOne posts one snapshot to one standby.
func pushOne(ctx context.Context, client *http.Client, url string, snapshot []byte) error {
	if err := faultpoint.Hit("replica.push"); err != nil {
		return err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, url+"/v1/replica/snapshot", bytes.NewReader(snapshot))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return fmt.Errorf("standby answered %d: %s", resp.StatusCode, bytes.TrimSpace(body))
	}
	return nil
}
