package fleet

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"relperf"
)

const suiteBody = `{"studies":[
	{"workload":"tableI","loop_n":2,"measurements":6,"reps":10},
	{"workload":"tableI","loop_n":2,"measurements":6,"reps":10,"matrix":true},
	{"workload":"tableI","loop_n":2,"measurements":6,"reps":10}
]}`

func newTestServer(t *testing.T, seed uint64, store *Store) (*Server, *Scheduler) {
	t.Helper()
	sched := New(Options{Workers: 2, Seed: seed, Store: store})
	t.Cleanup(sched.Close)
	return NewServer(sched), sched
}

func postSuite(t *testing.T, ts *httptest.Server, body string) suiteResponse {
	t.Helper()
	resp, err := http.Post(ts.URL+"/v1/suites", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		b, _ := io.ReadAll(resp.Body)
		t.Fatalf("POST /v1/suites: %d %s", resp.StatusCode, b)
	}
	var sr suiteResponse
	if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
		t.Fatal(err)
	}
	return sr
}

func getStudy(t *testing.T, ts *httptest.Server, fp string) (int, []byte) {
	t.Helper()
	resp, err := http.Get(ts.URL + "/v1/studies/" + fp)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, b
}

// TestServerSuiteEndToEnd is the daemon acceptance path: POST a suite, GET
// each study's JSON result, verify the second GET is a cache hit serving
// identical bytes with no recomputation, and 404 for unknown fingerprints.
func TestServerSuiteEndToEnd(t *testing.T) {
	srv, sched := newTestServer(t, 11, nil)
	ts := httptest.NewServer(srv)
	defer ts.Close()

	sr := postSuite(t, ts, suiteBody)
	if len(sr.Fingerprints) != 3 || sr.Fingerprints[0] != sr.Fingerprints[2] {
		t.Fatalf("fingerprints = %v", sr.Fingerprints)
	}
	if sr.Seed != 11 {
		t.Fatalf("seed = %d", sr.Seed)
	}

	blobs := map[string][]byte{}
	for _, fp := range sr.Fingerprints {
		code, body := getStudy(t, ts, fp)
		if code != http.StatusOK {
			t.Fatalf("GET study %s: %d %s", fp, code, body)
		}
		res, err := relperf.UnmarshalResultWire(bytes.TrimSuffix(body, []byte("\n")))
		if err != nil {
			t.Fatalf("served document invalid: %v", err)
		}
		if len(res.Profiles) == 0 {
			t.Fatal("served result has no decision profiles")
		}
		blobs[fp] = body
	}
	computed := sched.Computes()
	if computed != 2 {
		t.Fatalf("computes = %d for a 3-study suite with one duplicate", computed)
	}

	// Second round of GETs: pure cache hits, byte-identical, no new
	// computations.
	for fp, want := range blobs {
		code, body := getStudy(t, ts, fp)
		if code != http.StatusOK || !bytes.Equal(body, want) {
			t.Fatalf("cache hit for %s differs (code %d)", fp, code)
		}
	}
	if sched.Computes() != computed {
		t.Fatalf("computes grew to %d on cache hits", sched.Computes())
	}

	if code, _ := getStudy(t, ts, "ffffffffffffffffffffffffffffffff"); code != http.StatusNotFound {
		t.Fatalf("unknown fingerprint: %d, want 404", code)
	}
}

// TestServerRestartFromSnapshot: a daemon restarted from its snapshot
// serves byte-identical results with zero recomputation.
func TestServerRestartFromSnapshot(t *testing.T) {
	srv1, sched1 := newTestServer(t, 23, nil)
	ts1 := httptest.NewServer(srv1)
	sr := postSuite(t, ts1, suiteBody)
	want := map[string][]byte{}
	for _, fp := range sr.Fingerprints {
		_, body := getStudy(t, ts1, fp)
		want[fp] = body
	}
	var snap bytes.Buffer
	if err := sched1.Store().WriteSnapshot(&snap, sched1.Seed()); err != nil {
		t.Fatal(err)
	}
	ts1.Close()
	sched1.Close()

	store := NewStore(0)
	if _, err := store.LoadSnapshot(bytes.NewReader(snap.Bytes()), 23); err != nil {
		t.Fatal(err)
	}
	srv2, sched2 := newTestServer(t, 23, store)
	ts2 := httptest.NewServer(srv2)
	defer ts2.Close()
	for fp, wantBody := range want {
		code, body := getStudy(t, ts2, fp)
		if code != http.StatusOK || !bytes.Equal(body, wantBody) {
			t.Fatalf("restarted daemon serves different bytes for %s", fp)
		}
	}
	if sched2.Computes() != 0 {
		t.Fatalf("restarted daemon recomputed %d studies", sched2.Computes())
	}
}

func TestServerHealthz(t *testing.T) {
	srv, _ := newTestServer(t, 5, nil)
	ts := httptest.NewServer(srv)
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var h healthResponse
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	if h.Status != "ok" || h.Seed != 5 || h.Workers != 2 {
		t.Fatalf("healthz = %+v", h)
	}
}

func TestServerBadRequests(t *testing.T) {
	srv, _ := newTestServer(t, 5, nil)
	ts := httptest.NewServer(srv)
	defer ts.Close()
	for _, body := range []string{
		`{`,
		`{"studies":[]}`,
		`{"studies":[{"workload":"nope"}]}`,
		`{"studies":[{"workload":"tableI","bogus_field":1}]}`,
		`{"studies":[{"workload":"tableI","placements":["DXD"]}]}`,
		`{"studies":[{"workload":"tableI","comparator":"psychic"}]}`,
		`{"studies":[{"workload":"tableI","reps":-3}]}`,
		`{"studies":[{"workload":"tableI"}]} {"studies":[{"workload":"nope"}]}`,
	} {
		resp, err := http.Post(ts.URL+"/v1/suites", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("body %s: status %d, want 400", body, resp.StatusCode)
		}
	}
}

func TestStudySpecConfigDefaults(t *testing.T) {
	sp := StudySpec{Workload: "fig1", Comparator: "ks", Placements: []string{"DA", "AD"}}
	cfg, err := sp.Config()
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Program == nil || cfg.Platform == nil || len(cfg.Placements) != 2 {
		t.Fatalf("cfg = %+v", cfg)
	}
	if _, err := relperf.Fingerprint(cfg); err != nil {
		t.Fatal(err)
	}
}

// TestStudyStreamLaggedConsumer drives the SSE stream through a
// slow-consumer disconnect: the stream's one-slot subscription (via
// WithStreamBuffer) is overflowed while the study is parked inside a gated
// dispatch hook, so the scheduler drops the stream's subscriber. The
// stream must report the gap with a "lagged" event and still deliver the
// authoritative result once the study completes — a dropped phase feed
// degrades the view, never the outcome.
func TestStudyStreamLaggedConsumer(t *testing.T) {
	gate := make(chan struct{})
	sched := New(Options{
		Workers: 1,
		Seed:    7,
		// The dispatch hook runs on the compute path before local
		// execution; parking it keeps the study in flight for exactly as
		// long as the test needs, with no timing assumptions.
		Dispatch: func(ctx context.Context, task relperf.GridTask) ([]byte, error) {
			<-gate
			return nil, errors.New("test grid declines; run locally")
		},
	})
	defer sched.Close()
	srv := NewServer(sched, WithStreamBuffer(1))

	fps, err := sched.SubmitSpecs([]StudySpec{{Workload: "tableI", LoopN: 2, Measurements: 6, Reps: 10}})
	if err != nil {
		t.Fatal(err)
	}
	fp := fps[0]
	waitUntil(t, "study computing", func() bool { return sched.Computing(fp) })

	rec := httptest.NewRecorder()
	req := httptest.NewRequest("GET", "/v1/studies/"+fp+"?wait=stream", nil)
	streamDone := make(chan struct{})
	go func() {
		defer close(streamDone)
		srv.handleStudyStream(rec, req, fp)
	}()

	subCount := func() int {
		sched.subMu.Lock()
		defer sched.subMu.Unlock()
		return len(sched.subs)
	}
	waitUntil(t, "stream subscribed", func() bool { return subCount() == 1 })

	// Publish unrelated events faster than the stream can drain them until
	// the scheduler disconnects it. Each iteration either buffers (at most
	// one slot) or drops the subscriber, so this terminates.
	for i := 0; subCount() > 0; i++ {
		if i > 1_000_000 {
			t.Fatal("stream subscriber was never dropped")
		}
		sched.publish(StudyEvent{Fingerprint: "other", Phase: PhaseComputing})
	}
	if sched.subsDropped.Value() == 0 {
		t.Fatal("drop counter not incremented")
	}

	close(gate) // dispatch declines, the study runs locally and completes
	<-streamDone

	body := rec.Body.String()
	computing := strings.Index(body, "event: computing")
	lagged := strings.Index(body, "event: lagged")
	result := strings.Index(body, "event: result")
	if computing < 0 || lagged < 0 || result < 0 {
		t.Fatalf("stream missing events (computing=%d lagged=%d result=%d):\n%s", computing, lagged, result, body)
	}
	if !(computing < lagged && lagged < result) {
		t.Fatalf("stream events out of order (computing=%d lagged=%d result=%d):\n%s", computing, lagged, result, body)
	}
}

// TestStudyStreamShutdownDrain: DrainStreams makes an open SSE stream end
// with a terminal "shutdown" event instead of hanging until the HTTP
// server's shutdown deadline cuts the connection — the drain path relperfd
// runs before http.Server.Shutdown.
func TestStudyStreamShutdownDrain(t *testing.T) {
	gate := make(chan struct{})
	sched := New(Options{
		Workers: 1,
		Seed:    7,
		// Park the study mid-compute so the stream is genuinely waiting on a
		// result when the drain arrives.
		Dispatch: func(ctx context.Context, task relperf.GridTask) ([]byte, error) {
			<-gate
			return nil, errors.New("test grid declines; run locally")
		},
	})
	defer sched.Close()
	defer close(gate)
	srv := NewServer(sched)

	fps, err := sched.SubmitSpecs([]StudySpec{{Workload: "tableI", LoopN: 2, Measurements: 6, Reps: 10}})
	if err != nil {
		t.Fatal(err)
	}
	fp := fps[0]
	waitUntil(t, "study computing", func() bool { return sched.Computing(fp) })

	rec := httptest.NewRecorder()
	req := httptest.NewRequest("GET", "/v1/studies/"+fp+"?wait=stream", nil)
	streamDone := make(chan struct{})
	go func() {
		defer close(streamDone)
		srv.handleStudyStream(rec, req, fp)
	}()
	waitUntil(t, "stream subscribed", func() bool {
		sched.subMu.Lock()
		defer sched.subMu.Unlock()
		return len(sched.subs) == 1
	})

	srv.DrainStreams()
	srv.DrainStreams() // idempotent
	select {
	case <-streamDone:
	case <-time.After(5 * time.Second):
		t.Fatal("stream did not end after DrainStreams")
	}

	body := rec.Body.String()
	if !strings.Contains(body, "event: shutdown") {
		t.Fatalf("drained stream missing shutdown event:\n%s", body)
	}
	if strings.Contains(body, "event: result") {
		t.Fatalf("drained stream should not carry a result (study is parked):\n%s", body)
	}
}

// waitUntil polls cond until it holds or the deadline passes.
func waitUntil(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}
