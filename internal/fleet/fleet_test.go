package fleet

import (
	"bytes"
	"context"
	"errors"
	"sync"
	"testing"

	"relperf"
	"relperf/internal/sim"
)

// testProgram is a cheap two-task program so fleet tests stay fast.
func testProgram() *sim.Program {
	return &sim.Program{
		Name: "fleet-test",
		Tasks: []sim.Task{
			{Name: "L1", Flops: 5e8, Launches: 10, HostInBytes: 1e6, HostOutBytes: 1e6, Transfers: 3, EdgeEff: 1, AccelEff: 0.01},
			{Name: "L2", Flops: 2e9, Launches: 10, HostInBytes: 5e6, HostOutBytes: 1e6, Transfers: 3, EdgeEff: 1, AccelEff: 0.05},
		},
	}
}

func testConfig() relperf.StudyConfig {
	return relperf.StudyConfig{Program: testProgram(), N: 8, Reps: 12}
}

// TestSchedulerCacheHit: the second request for a config is served from the
// store without re-running — the compute counter stays at 1 and the bytes
// are the identical stored slice contents.
func TestSchedulerCacheHit(t *testing.T) {
	s := New(Options{Workers: 2, Seed: 5})
	defer s.Close()
	_, first, err := s.Study(context.Background(), testConfig())
	if err != nil {
		t.Fatal(err)
	}
	if got := s.Computes(); got != 1 {
		t.Fatalf("computes = %d after first request", got)
	}
	_, second, err := s.Study(context.Background(), testConfig())
	if err != nil {
		t.Fatal(err)
	}
	if got := s.Computes(); got != 1 {
		t.Fatalf("computes = %d after cache hit, want 1 (no recomputation)", got)
	}
	if !bytes.Equal(first, second) {
		t.Fatal("cache hit returned different bytes")
	}
}

// TestSchedulerSingleFlight: concurrent requests for one uncached config
// coalesce onto exactly one computation.
func TestSchedulerSingleFlight(t *testing.T) {
	s := New(Options{Workers: 2, Seed: 5})
	defer s.Close()
	const callers = 8
	blobs := make([][]byte, callers)
	var wg sync.WaitGroup
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, blob, err := s.Study(context.Background(), testConfig())
			if err != nil {
				t.Error(err)
				return
			}
			blobs[i] = blob
		}(i)
	}
	wg.Wait()
	if got := s.Computes(); got != 1 {
		t.Fatalf("computes = %d for %d concurrent requests, want 1", got, callers)
	}
	for i := 1; i < callers; i++ {
		if !bytes.Equal(blobs[0], blobs[i]) {
			t.Fatalf("caller %d received different bytes", i)
		}
	}
}

// TestSchedulerWorkerDeterminism: schedulers differing only in budget
// width produce byte-identical results for equal seeds.
func TestSchedulerWorkerDeterminism(t *testing.T) {
	run := func(workers int) []byte {
		s := New(Options{Workers: workers, Seed: 77})
		defer s.Close()
		_, blob, err := s.Study(context.Background(), testConfig())
		if err != nil {
			t.Fatal(err)
		}
		return blob
	}
	if !bytes.Equal(run(1), run(8)) {
		t.Fatal("results differ between Workers=1 and Workers=8")
	}
}

func TestSchedulerSubmitAndResult(t *testing.T) {
	s := New(Options{Workers: 2, Seed: 3})
	defer s.Close()
	cfgA := testConfig()
	cfgB := testConfig()
	cfgB.N = 10
	fps, err := s.Submit([]relperf.StudyConfig{cfgA, cfgB, cfgA})
	if err != nil {
		t.Fatal(err)
	}
	if len(fps) != 3 || fps[0] != fps[2] || fps[0] == fps[1] {
		t.Fatalf("fingerprints = %v", fps)
	}
	for _, fp := range fps {
		if _, err := s.Result(context.Background(), fp); err != nil {
			t.Fatalf("result %s: %v", fp, err)
		}
	}
	if got := s.Computes(); got != 2 {
		t.Fatalf("computes = %d for a suite with one duplicate, want 2", got)
	}
	if _, err := s.Result(context.Background(), "ffffffffffffffffffffffffffffffff"); !errors.Is(err, ErrUnknownStudy) {
		t.Fatalf("unknown fingerprint: err = %v", err)
	}
}

// TestSchedulerRestartFromSnapshot: a new scheduler loading the old
// store's snapshot serves the identical bytes without recomputing.
func TestSchedulerRestartFromSnapshot(t *testing.T) {
	s1 := New(Options{Workers: 2, Seed: 9})
	fp, want, err := s1.Study(context.Background(), testConfig())
	if err != nil {
		t.Fatal(err)
	}
	var snap bytes.Buffer
	if err := s1.Store().WriteSnapshot(&snap, s1.Seed()); err != nil {
		t.Fatal(err)
	}
	s1.Close()

	store := NewStore(0)
	if _, err := store.LoadSnapshot(bytes.NewReader(snap.Bytes()), 9); err != nil {
		t.Fatal(err)
	}
	s2 := New(Options{Workers: 4, Seed: 9, Store: store})
	defer s2.Close()
	got, err := s2.Result(context.Background(), fp)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(want, got) {
		t.Fatal("restored result differs from the original bytes")
	}
	if s2.Computes() != 0 {
		t.Fatalf("restart recomputed %d studies", s2.Computes())
	}
}

// TestSchedulerRecomputesEvictedStudy: a submitted study whose result was
// LRU-evicted is recomputed from the retained config on the next Result —
// not turned into a permanent 404 — and the recomputed bytes are identical
// (determinism makes eviction invisible to clients).
func TestSchedulerRecomputesEvictedStudy(t *testing.T) {
	s := New(Options{Workers: 2, Seed: 5, Store: NewStore(1)})
	defer s.Close()
	cfgA := testConfig()
	cfgB := testConfig()
	cfgB.N = 10
	fps, err := s.Submit([]relperf.StudyConfig{cfgA, cfgB})
	if err != nil {
		t.Fatal(err)
	}
	first, err := s.Result(context.Background(), fps[0])
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Result(context.Background(), fps[1]); err != nil {
		t.Fatal(err)
	}
	// Capacity 1: at most one of the two survives, so by now at least one
	// result has been evicted at least once, yet both must stay servable.
	again, err := s.Result(context.Background(), fps[0])
	if err != nil {
		t.Fatalf("evicted study became unservable: %v", err)
	}
	if !bytes.Equal(first, again) {
		t.Fatal("recomputed result differs from the original bytes")
	}
}

func TestSchedulerSubscribe(t *testing.T) {
	s := New(Options{Workers: 2, Seed: 1})
	defer s.Close()
	ch, cancel := s.Subscribe(4)
	defer cancel()
	fp, _, err := s.Study(context.Background(), testConfig())
	if err != nil {
		t.Fatal(err)
	}
	// Phase events arrive in order: computing first, then done.
	ev := <-ch
	if ev.Fingerprint != fp || ev.Phase != PhaseComputing || ev.Result != nil || ev.Err != nil {
		t.Fatalf("first event = %+v, want computing phase", ev)
	}
	ev = <-ch
	if ev.Fingerprint != fp || ev.Phase != PhaseDone || ev.Err != nil || ev.Result == nil {
		t.Fatalf("event = %+v", ev)
	}
	if _, err := ev.Result.ProfileByName(ev.Result.Profiles[0].Name); err != nil {
		t.Fatal(err)
	}
}

func TestSchedulerClose(t *testing.T) {
	s := New(Options{Workers: 2, Seed: 1})
	s.Close()
	if _, err := s.Submit([]relperf.StudyConfig{testConfig()}); !errors.Is(err, ErrClosed) {
		t.Fatalf("submit after close: %v", err)
	}
	if _, _, err := s.Study(context.Background(), testConfig()); !errors.Is(err, ErrClosed) {
		t.Fatalf("study after close: %v", err)
	}
}

// TestPublishDropsSlowSubscriber: a subscriber whose buffer is full when an
// event arrives is disconnected (channel closed, drop counted) instead of
// stalling publish or silently losing the event; other subscribers are
// unaffected. This is the regression test for the SSE slow-consumer
// contract — publish must never block on a subscriber.
func TestPublishDropsSlowSubscriber(t *testing.T) {
	s := New(Options{Workers: 1, Seed: 1})
	defer s.Close()
	slow, slowCancel := s.Subscribe(1)
	defer slowCancel()
	fast, fastCancel := s.Subscribe(4)
	defer fastCancel()

	// Nobody drains slow: the first publish fills its one-slot buffer, the
	// second finds it full and must disconnect it — immediately, not ever
	// blocking.
	s.publish(StudyEvent{Fingerprint: "fp", Phase: PhaseComputing})
	s.publish(StudyEvent{Fingerprint: "fp", Phase: PhaseDone})

	if ev := <-slow; ev.Phase != PhaseComputing {
		t.Fatalf("slow subscriber's buffered event = %+v, want computing", ev)
	}
	if _, ok := <-slow; ok {
		t.Fatal("slow subscriber channel still open after overflow; want disconnect")
	}
	for _, want := range []Phase{PhaseComputing, PhaseDone} {
		if ev := <-fast; ev.Phase != want {
			t.Fatalf("fast subscriber event = %+v, want %s", ev, want)
		}
	}
	if got := s.subsDropped.Value(); got != 1 {
		t.Fatalf("subsDropped = %d, want 1", got)
	}

	// The dropped subscriber is gone from the set; a publish after the
	// disconnect reaches only the survivors and a late cancel of the
	// dropped subscription is a harmless no-op.
	s.publish(StudyEvent{Fingerprint: "fp2", Phase: PhaseComputing})
	if ev := <-fast; ev.Fingerprint != "fp2" {
		t.Fatalf("post-drop event = %+v", ev)
	}
	slowCancel()
	if got := s.subsDropped.Value(); got != 1 {
		t.Fatalf("subsDropped after cancel = %d, want still 1", got)
	}
}
