package fleet

// Fuzz harness for the suite-request wire decoder (the POST /v1/suites
// body): malformed bodies must return errors — surfaced as HTTP 400 by the
// server — never panic, and every accepted request must resolve through
// Configs without panicking. Run continuously with:
//
//	go test -run '^$' -fuzz '^FuzzDecodeSuiteRequest$' -fuzztime 30s ./internal/fleet

import (
	"bytes"
	"testing"
)

func FuzzDecodeSuiteRequest(f *testing.F) {
	seeds := []string{
		suiteBody,
		`{"studies":[{"workload":"fig1","comparator":"mannwhitney"}]}`,
		`{"studies":[{"program":{"name":"p","tasks":[{"name":"L1","kernel":"gemm","size":64,"iters":5}]},
			"platform":{"edge":{"preset":"raspberry-pi-4"},"link":{"preset":"wifi"}},"measurements":5,"reps":8}]}`,
		suitePlatformsBody,
		`{"platforms":{"x":{"name":"y"}},"studies":[{"workload":"tableI","platform":{"name":"x"}}]}`,
		`{"studies":[{"workload":"tableI","platform":{"name":"ghost"}}]}`,
		`{"studies":[]}`,
		`{"studies":[{"workload":"tableI","bogus":1}]}`,
		`{"studies":[{"workload":"tableI","reps":-3}]}`,
		`{`,
		`null`,
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		req, err := DecodeSuiteRequest(bytes.NewReader(data))
		if err != nil {
			return // malformed input must error, and it did
		}
		// Accepted requests resolve (or fail cleanly) without panicking;
		// resolution errors are legal — the scheduler surfaces them as 400s.
		if _, err := req.Configs(); err != nil {
			return
		}
	})
}
