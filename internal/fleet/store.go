// Package fleet is the multi-study serving subsystem: a Scheduler that runs
// whole suites of studies on one shared worker budget with single-flight
// coalescing, a content-addressed result Store with LRU eviction and JSON
// snapshot persistence, and an HTTP Server exposing both — the engine
// behind the relperfd daemon.
//
// Identity and determinism come from the relperf suite layer: a study is
// addressed by its canonical config fingerprint, its seed derives from
// (suite seed, fingerprint), and the stored value is the study's canonical
// wire encoding — so a cached, snapshot-restored or freshly computed result
// for one fingerprint is always the same sequence of bytes.
package fleet

import (
	"bytes"
	"container/list"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"sort"
	"sync"

	"relperf/internal/wal"
)

// SnapshotSchema identifies the store's persistence format.
const SnapshotSchema = "relperf/fleet-snapshot/v1"

// Store is a content-addressed result cache: canonical wire-encoded study
// results keyed by config fingerprint, with LRU eviction and JSON snapshot
// persistence so a restarted daemon serves warm results. Alongside the
// result blobs it retains the declarative spec (wire JSON) of every study
// submitted through the spec layer; specs are tiny, never evicted, and are
// persisted in snapshots — they are the recipes a restarted daemon uses to
// recompute results the LRU evicted. Safe for concurrent use.
type Store struct {
	// writeMu serializes mutators (Put, Merge, PutSpec, snapshot capture)
	// against each other; mu alone guards visibility. The split is what
	// keeps the hot serving path off the disk: a journaled mutation holds
	// writeMu across its append→visible window but releases mu around the
	// WAL fsync, so Get/Contains/Stats/Index never wait behind I/O — and
	// SnapshotCut, by taking writeMu, captures a snapshot and a WAL cut
	// point with no acknowledged record falling between them. Lock order:
	// writeMu before mu, never the reverse.
	writeMu  sync.Mutex
	mu       sync.Mutex
	capacity int
	ll       *list.List // front = most recently used
	items    map[string]*list.Element
	specs    map[string][]byte
	// journal, when attached, receives every newly merged result and
	// newly retained spec — fsync'd before the mutation is visible or
	// acked, so an acknowledged write survives kill -9.
	journal *wal.Log

	hits, misses, evictions uint64
	merges, conflicts       uint64
}

type storeEntry struct {
	fp   string
	blob []byte
}

// NewStore returns a store holding at most capacity results (<= 0 means
// unbounded).
func NewStore(capacity int) *Store {
	return &Store{
		capacity: capacity,
		ll:       list.New(),
		items:    make(map[string]*list.Element),
		specs:    make(map[string][]byte),
	}
}

// Get returns the stored encoding for the fingerprint and marks it most
// recently used. The returned slice is shared — callers must not mutate it.
func (s *Store) Get(fp string) ([]byte, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	el, ok := s.items[fp]
	if !ok {
		s.misses++
		return nil, false
	}
	s.hits++
	s.ll.MoveToFront(el)
	return el.Value.(*storeEntry).blob, true
}

// Contains reports whether the fingerprint is cached, without touching the
// hit/miss counters or the LRU recency — the existence probe the scheduler
// uses, so stats and eviction order reflect only results actually served.
func (s *Store) Contains(fp string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	_, ok := s.items[fp]
	return ok
}

// Put stores the encoding under the fingerprint, replacing any previous
// value, and evicts least-recently-used entries beyond the capacity.
func (s *Store) Put(fp string, blob []byte) {
	s.writeMu.Lock()
	defer s.writeMu.Unlock()
	s.mu.Lock()
	defer s.mu.Unlock()
	if el, ok := s.items[fp]; ok {
		el.Value.(*storeEntry).blob = blob
		s.ll.MoveToFront(el)
		return
	}
	s.putLocked(fp, blob)
}

// putLocked inserts a new entry and applies the capacity bound. The caller
// holds mu and has verified fp is absent.
func (s *Store) putLocked(fp string, blob []byte) {
	s.items[fp] = s.ll.PushFront(&storeEntry{fp: fp, blob: blob})
	for s.capacity > 0 && s.ll.Len() > s.capacity {
		oldest := s.ll.Back()
		s.ll.Remove(oldest)
		delete(s.items, oldest.Value.(*storeEntry).fp)
		s.evictions++
	}
}

// SetWAL attaches a write-ahead journal: from now on every newly merged
// result and newly retained spec is appended (and fsync'd) to the journal
// before it becomes visible, and a failed append fails the operation —
// the store never acks state the journal does not hold. Attach after
// recovery replay, so replayed records are not re-journaled.
func (s *Store) SetWAL(w *wal.Log) {
	s.writeMu.Lock()
	defer s.writeMu.Unlock()
	s.mu.Lock()
	defer s.mu.Unlock()
	s.journal = w
}

// ErrMergeConflict is returned by Merge when two sources disagree on a
// fingerprint's bytes — an engine-version skew or a corrupted transfer that
// must surface loudly, never be papered over by overwriting.
var ErrMergeConflict = errors.New("fleet: store merge conflict")

// Merge stores the encoding under the fingerprint like Put, but with the
// multi-source contract the grid coordinator relies on: merging the same
// bytes again is an idempotent no-op (beyond an LRU recency bump), and
// merging different bytes for an existing fingerprint is an
// ErrMergeConflict — the store never silently replaces a result it already
// serves. One fingerprint must mean one sequence of bytes, whichever node
// computed it.
func (s *Store) Merge(fp string, blob []byte) error {
	s.writeMu.Lock()
	defer s.writeMu.Unlock()
	s.mu.Lock()
	if el, ok := s.items[fp]; ok {
		eq := bytes.Equal(el.Value.(*storeEntry).blob, blob)
		if eq {
			s.ll.MoveToFront(el)
			s.merges++
		} else {
			s.conflicts++
		}
		s.mu.Unlock()
		if !eq {
			return fmt.Errorf("%w: fingerprint %s already cached with different bytes", ErrMergeConflict, fp)
		}
		return nil
	}
	journal := s.journal
	s.mu.Unlock()
	// Journal before inserting: a result the WAL does not hold must not
	// become servable, or a crash would un-serve bytes a client already
	// saw. The idempotent path above skips the journal — re-merging known
	// bytes is already durable. mu is released around the fsync (writeMu
	// still held, so no other mutator interleaves) to keep readers off the
	// disk; the entry becomes visible only after the append succeeded.
	if journal != nil {
		if err := journal.Append(wal.Record{Type: wal.TypeResult, Fingerprint: fp, Data: blob}); err != nil {
			return fmt.Errorf("fleet: journaling result %s: %w", fp, err)
		}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.putLocked(fp, blob)
	s.merges++
	return nil
}

// Len returns the number of cached results.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.ll.Len()
}

// Keys returns the cached fingerprints from most to least recently used.
func (s *Store) Keys() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]string, 0, s.ll.Len())
	for el := s.ll.Front(); el != nil; el = el.Next() {
		out = append(out, el.Value.(*storeEntry).fp)
	}
	return out
}

// IndexEntry is one known study in a store enumeration: a fingerprint with
// flags for what the store holds under it — a cached result blob, a
// retained declarative spec (recomputable after eviction), or both.
type IndexEntry struct {
	Fingerprint string `json:"fingerprint"`
	Cached      bool   `json:"cached"`
	Spec        bool   `json:"spec"`
}

// Index enumerates every fingerprint the store knows — the union of cached
// results and retained specs — sorted lexicographically, so repeated calls
// over an unchanged store return the identical listing and a cursor taken
// from one page stays a stable resume point for the next. Enumeration does
// not touch the hit/miss counters or LRU recency.
func (s *Store) Index() []IndexEntry {
	s.mu.Lock()
	at := make(map[string]int, len(s.items)+len(s.specs))
	out := make([]IndexEntry, 0, len(s.items)+len(s.specs))
	for fp := range s.items {
		at[fp] = len(out)
		out = append(out, IndexEntry{Fingerprint: fp, Cached: true})
	}
	for fp := range s.specs {
		if i, ok := at[fp]; ok {
			out[i].Spec = true
			continue
		}
		out = append(out, IndexEntry{Fingerprint: fp, Spec: true})
	}
	s.mu.Unlock()
	// Sorting dominates on a large store; do it off the mutex so an
	// enumeration never stalls Get/Put/Merge for the O(n log n) part.
	sort.Slice(out, func(i, j int) bool { return out[i].Fingerprint < out[j].Fingerprint })
	return out
}

// PutSpec retains the declarative wire spec of a study under its
// fingerprint, replacing any previous recipe. Specs are not subject to LRU
// eviction: they are a few hundred bytes each and every retained spec keeps
// one study recomputable forever. With a journal attached the spec is
// WAL-appended (fsync'd) before it is retained; re-putting identical bytes
// is a free no-op either way, so resubmitted suites do not grow the log.
func (s *Store) PutSpec(fp string, spec []byte) error {
	s.writeMu.Lock()
	defer s.writeMu.Unlock()
	s.mu.Lock()
	if prev, ok := s.specs[fp]; ok && bytes.Equal(prev, spec) {
		s.mu.Unlock()
		return nil
	}
	journal := s.journal
	s.mu.Unlock()
	// As in Merge: the fsync happens with mu released so readers never
	// wait on it, and writeMu keeps the check-journal-retain sequence
	// atomic against other mutators and snapshot capture.
	if journal != nil {
		if err := journal.Append(wal.Record{Type: wal.TypeSpec, Fingerprint: fp, Data: spec}); err != nil {
			return fmt.Errorf("fleet: journaling spec %s: %w", fp, err)
		}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.specs[fp] = spec
	return nil
}

// Spec returns the retained spec for the fingerprint. The returned slice is
// shared — callers must not mutate it.
func (s *Store) Spec(fp string) ([]byte, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	spec, ok := s.specs[fp]
	return spec, ok
}

// Stats reports cache effectiveness counters.
type Stats struct {
	Entries   int    `json:"entries"`
	Specs     int    `json:"specs"`
	Hits      uint64 `json:"hits"`
	Misses    uint64 `json:"misses"`
	Evictions uint64 `json:"evictions"`
	Merges    uint64 `json:"merges"`
	Conflicts uint64 `json:"conflicts"`
}

// Stats returns a snapshot of the counters.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return Stats{
		Entries: s.ll.Len(), Specs: len(s.specs),
		Hits: s.hits, Misses: s.misses, Evictions: s.evictions,
		Merges: s.merges, Conflicts: s.conflicts,
	}
}

// snapshot is the persisted form: entries from least to most recently used
// so replaying them through Put restores both contents and recency, plus
// the retained study specs (sorted by fingerprint so equal stores write
// byte-identical snapshots). Specs is optional — snapshots written before
// the declarative-spec schema load fine, they just cannot seed recompute.
type snapshot struct {
	Schema  string          `json:"schema"`
	Seed    uint64          `json:"seed"`
	Entries []snapshotEntry `json:"entries"`
	Specs   []snapshotSpec  `json:"specs,omitempty"`
}

type snapshotEntry struct {
	Fingerprint string          `json:"fingerprint"`
	Result      json.RawMessage `json:"result"`
}

type snapshotSpec struct {
	Fingerprint string          `json:"fingerprint"`
	Spec        json.RawMessage `json:"spec"`
}

// captureLocked builds the snapshot document off the live state. The
// caller holds mu; the blobs and specs it references are shared immutable
// slices, so encoding may happen after the lock is released.
func (s *Store) captureLocked(seed uint64) *snapshot {
	snap := &snapshot{Schema: SnapshotSchema, Seed: seed}
	for el := s.ll.Back(); el != nil; el = el.Prev() {
		e := el.Value.(*storeEntry)
		snap.Entries = append(snap.Entries, snapshotEntry{Fingerprint: e.fp, Result: e.blob})
	}
	for fp, spec := range s.specs {
		snap.Specs = append(snap.Specs, snapshotSpec{Fingerprint: fp, Spec: spec})
	}
	return snap
}

// encodeSnapshot serializes a captured snapshot (specs sorted, so equal
// stores write byte-identical snapshots).
func encodeSnapshot(snap *snapshot) ([]byte, error) {
	sort.Slice(snap.Specs, func(i, j int) bool {
		return snap.Specs[i].Fingerprint < snap.Specs[j].Fingerprint
	})
	b, err := json.Marshal(snap)
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

// WriteSnapshot persists every cached result and retained spec together
// with the suite seed the results were computed under. Result blobs are
// embedded verbatim (they are canonical compact JSON), so a load-and-serve
// round trip is byte-identical.
func (s *Store) WriteSnapshot(w io.Writer, seed uint64) error {
	s.mu.Lock()
	snap := s.captureLocked(seed)
	s.mu.Unlock()
	b, err := encodeSnapshot(snap)
	if err != nil {
		return err
	}
	_, err = w.Write(b)
	return err
}

// SnapshotCut serializes the store's snapshot for seed and returns it
// together with a WAL cut point for compaction. The capture happens under
// the writer lock, so no journaled mutation can commit between the
// captured state and the cut: every record below cut is reflected in the
// returned bytes, and a record acknowledged after the capture sits at or
// above it. That invariant is what makes snapshot-then-compact crash-safe
// — wal.Log.CompactTo(cut) discards exactly the records the snapshot
// absorbed, never one that was acked while the snapshot was being written.
// With no journal attached the cut is 0.
func (s *Store) SnapshotCut(seed uint64) ([]byte, int64, error) {
	s.writeMu.Lock()
	s.mu.Lock()
	snap := s.captureLocked(seed)
	journal := s.journal
	s.mu.Unlock()
	var cut int64
	if journal != nil {
		cut = journal.Size()
	}
	s.writeMu.Unlock()
	b, err := encodeSnapshot(snap)
	return b, cut, err
}

// ErrSeedMismatch is returned by LoadSnapshot and MergeSnapshot when the
// snapshot was computed under a different suite seed: fingerprints address
// results only together with the seed, so absorbing another seed's
// snapshot would silently break the determinism contract.
var ErrSeedMismatch = errors.New("fleet: snapshot seed mismatch")

// decodeSnapshot decodes and validates a snapshot document for seed.
func decodeSnapshot(r io.Reader, seed uint64) (*snapshot, error) {
	var snap snapshot
	if err := json.NewDecoder(r).Decode(&snap); err != nil {
		return nil, fmt.Errorf("fleet: decoding snapshot: %w", err)
	}
	if snap.Schema != SnapshotSchema {
		return nil, fmt.Errorf("fleet: snapshot schema %q, want %q", snap.Schema, SnapshotSchema)
	}
	if snap.Seed != seed {
		return nil, fmt.Errorf("%w: snapshot was computed under seed %d, store serves seed %d", ErrSeedMismatch, snap.Seed, seed)
	}
	return &snap, nil
}

// LoadSnapshot restores the entries of a snapshot written for the given
// suite seed and returns how many are actually retained afterwards — a
// capacity-bounded store may LRU-evict earlier entries during the replay,
// and reporting the raw entry count would let an operator believe evicted
// results are servable. A seed mismatch is an ErrSeedMismatch.
func (s *Store) LoadSnapshot(r io.Reader, seed uint64) (int, error) {
	snap, err := decodeSnapshot(r, seed)
	if err != nil {
		return 0, err
	}
	for _, e := range snap.Entries {
		s.Put(e.Fingerprint, []byte(e.Result))
	}
	for _, e := range snap.Specs {
		if err := s.PutSpec(e.Fingerprint, []byte(e.Spec)); err != nil {
			return 0, err
		}
	}
	retained := 0
	for _, e := range snap.Entries {
		if s.Contains(e.Fingerprint) {
			retained++
		}
	}
	return retained, nil
}

// MergeSnapshot absorbs a snapshot into a live store with Merge semantics:
// entries the store already holds must carry identical bytes
// (ErrMergeConflict otherwise — a replica push never overwrites), new
// entries and specs are added (journaled, when a WAL is attached). This is
// the standby side of snapshot replication: a coordinator pushes each
// compacted snapshot here, and a promoted standby then serves the same
// bytes with zero recomputation. Returns how many result entries were
// applied.
func (s *Store) MergeSnapshot(r io.Reader, seed uint64) (int, error) {
	snap, err := decodeSnapshot(r, seed)
	if err != nil {
		return 0, err
	}
	applied := 0
	for _, e := range snap.Entries {
		if err := s.Merge(e.Fingerprint, []byte(e.Result)); err != nil {
			return applied, err
		}
		applied++
	}
	for _, e := range snap.Specs {
		if err := s.PutSpec(e.Fingerprint, []byte(e.Spec)); err != nil {
			return applied, err
		}
	}
	return applied, nil
}
