package fleet

import (
	"context"
	"os"
	"path/filepath"
	"testing"

	"relperf"
)

// TestExampleSuiteDecodes keeps examples/suite.json (the daemon's demo
// startup suite, including its declarative study) decodable and resolvable.
func TestExampleSuiteDecodes(t *testing.T) {
	f, err := os.Open(filepath.Join("..", "..", "examples", "suite.json"))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	req, err := DecodeSuiteRequest(f)
	if err != nil {
		t.Fatal(err)
	}
	configs, err := req.Configs()
	if err != nil {
		t.Fatal(err)
	}
	if len(configs) < 5 {
		t.Fatalf("example suite has %d studies, expected the declarative one to be present", len(configs))
	}
	for i, cfg := range configs {
		if _, err := relperf.Fingerprint(cfg); err != nil {
			t.Fatalf("study %d: %v", i, err)
		}
	}
}

// TestSchedulerSubmitSpecs: the spec path dedupes like Submit, retains
// every spec in the store, and an invalid spec poisons the whole batch
// before any spec is retained or any computation starts.
func TestSchedulerSubmitSpecs(t *testing.T) {
	s := New(Options{Workers: 2, Seed: 5})
	defer s.Close()
	specA := StudySpec{Workload: "tableI", LoopN: 2, Measurements: 6, Reps: 10}
	specB := StudySpec{Workload: "tableI", LoopN: 3, Measurements: 6, Reps: 10}
	fps, err := s.SubmitSpecs([]StudySpec{specA, specB, specA})
	if err != nil {
		t.Fatal(err)
	}
	if len(fps) != 3 || fps[0] != fps[2] || fps[0] == fps[1] {
		t.Fatalf("fingerprints = %v", fps)
	}
	for _, fp := range fps {
		if _, ok := s.Store().Spec(fp); !ok {
			t.Fatalf("spec for %s not retained", fp)
		}
		if _, err := s.Result(context.Background(), fp); err != nil {
			t.Fatal(err)
		}
	}
	if got := s.Computes(); got != 2 {
		t.Fatalf("computes = %d for a spec suite with one duplicate", got)
	}

	before := s.Store().Stats().Specs
	if _, err := s.SubmitSpecs([]StudySpec{{Workload: "fig1"}, {Workload: "nope"}}); err == nil {
		t.Fatal("invalid spec batch accepted")
	}
	if got := s.Store().Stats().Specs; got != before {
		t.Fatalf("failed batch retained specs: %d -> %d", before, got)
	}
	if _, err := s.SubmitSpecs(nil); err == nil {
		t.Fatal("empty spec batch accepted")
	}
}
