package fleet

// Tests of the serving features the grid tier rides on: SSE result
// streaming, the paginated study index, admission control, and named
// custom platforms in suite requests (with a committed golden pinning the
// expanded canonical form).

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"strconv"
	"strings"
	"testing"
)

var updateFleetGolden = flag.Bool("update", false, "rewrite the fleet golden fixtures")

// readSSE consumes one SSE stream and returns the terminal event name and
// its data, plus every status event seen on the way.
func readSSE(t *testing.T, body io.Reader) (terminal string, data []byte, statuses []string) {
	t.Helper()
	rd := bufio.NewReader(body)
	event := ""
	var buf []byte
	for {
		line, err := rd.ReadString('\n')
		if err != nil {
			t.Fatalf("stream ended without a terminal event (saw %v): %v", statuses, err)
		}
		line = strings.TrimRight(line, "\r\n")
		switch {
		case line == "":
			switch event {
			case "result", "error":
				return event, buf, statuses
			case "":
			default:
				statuses = append(statuses, event)
			}
			event, buf = "", nil
		case strings.HasPrefix(line, "event: "):
			event = line[len("event: "):]
		case strings.HasPrefix(line, "data: "):
			buf = append(buf, line[len("data: "):]...)
		}
	}
}

// TestServerStudyStream: ?wait=stream serves status events then the result
// event, whose data is byte-identical to the blocking GET's body; a second
// stream for the now-cached study goes straight to the result.
func TestServerStudyStream(t *testing.T) {
	srv, _ := newTestServer(t, 17, nil)
	ts := httptest.NewServer(srv)
	defer ts.Close()
	sr := postSuite(t, ts, `{"studies":[{"workload":"tableI","loop_n":2,"measurements":6,"reps":10}]}`)
	fp := sr.Fingerprints[0]

	resp, err := http.Get(ts.URL + "/v1/studies/" + fp + "?wait=stream")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("Content-Type = %q", ct)
	}
	terminal, data, _ := readSSE(t, resp.Body)
	if terminal != "result" {
		t.Fatalf("terminal event = %s %s", terminal, data)
	}

	_, plain := getStudy(t, ts, fp)
	if !bytes.Equal(append(data, '\n'), plain) {
		t.Fatal("streamed result differs from the blocking GET body")
	}

	// Cached study: the stream must deliver the identical bytes again
	// (and, being cached, needs no status preamble).
	resp2, err := http.Get(ts.URL + "/v1/studies/" + fp + "?wait=stream")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	terminal2, data2, statuses2 := readSSE(t, resp2.Body)
	if terminal2 != "result" || !bytes.Equal(data2, data) {
		t.Fatalf("cached stream: %s (equal=%v)", terminal2, bytes.Equal(data2, data))
	}
	if len(statuses2) != 0 {
		t.Fatalf("cached stream emitted statuses %v", statuses2)
	}
}

func TestServerStudyStreamUnknown(t *testing.T) {
	srv, _ := newTestServer(t, 17, nil)
	ts := httptest.NewServer(srv)
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/v1/studies/ffffffffffffffffffffffffffffffff?wait=stream")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	terminal, data, statuses := readSSE(t, resp.Body)
	if terminal != "error" || !bytes.Contains(data, []byte("unknown study")) {
		t.Fatalf("terminal = %s %s", terminal, data)
	}
	// No status event may precede the error: "queued" would tell the
	// subscriber a nonexistent study is pending.
	if len(statuses) != 0 {
		t.Fatalf("unknown study streamed statuses %v before the error", statuses)
	}
}

// TestServerStudyIndex: deterministic ordering, exclusive cursors, and the
// cached/spec flags of every known study.
func TestServerStudyIndex(t *testing.T) {
	srv, _ := newTestServer(t, 29, nil)
	ts := httptest.NewServer(srv)
	defer ts.Close()
	sr := postSuite(t, ts, `{"studies":[
		{"workload":"tableI","loop_n":2,"measurements":6,"reps":10},
		{"workload":"tableI","loop_n":3,"measurements":6,"reps":10},
		{"workload":"fig1","measurements":6,"reps":10}
	]}`)
	for _, fp := range sr.Fingerprints {
		getStudy(t, ts, fp) // block until computed so cached=true is stable
	}

	getIndex := func(query string) studyIndexResponse {
		t.Helper()
		resp, err := http.Get(ts.URL + "/v1/studies" + query)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			b, _ := io.ReadAll(resp.Body)
			t.Fatalf("GET /v1/studies%s: %d %s", query, resp.StatusCode, b)
		}
		var ir studyIndexResponse
		if err := json.NewDecoder(resp.Body).Decode(&ir); err != nil {
			t.Fatal(err)
		}
		return ir
	}

	full := getIndex("")
	if len(full.Studies) != 3 || full.NextCursor != "" {
		t.Fatalf("full index = %+v", full)
	}
	for i, e := range full.Studies {
		if !e.Cached || !e.Spec {
			t.Fatalf("entry %+v missing flags", e)
		}
		if i > 0 && full.Studies[i-1].Fingerprint >= e.Fingerprint {
			t.Fatalf("index not sorted: %+v", full.Studies)
		}
	}

	// Cursor walk at limit=2 reassembles the exact listing.
	var walked []IndexEntry
	cursor := ""
	for pages := 0; ; pages++ {
		if pages > 3 {
			t.Fatal("pagination did not terminate")
		}
		page := getIndex("?limit=2&cursor=" + cursor)
		walked = append(walked, page.Studies...)
		if page.NextCursor == "" {
			break
		}
		cursor = page.NextCursor
	}
	if len(walked) != 3 {
		t.Fatalf("walked %d entries", len(walked))
	}
	for i := range walked {
		if walked[i] != full.Studies[i] {
			t.Fatalf("cursor walk diverged at %d: %+v vs %+v", i, walked[i], full.Studies[i])
		}
	}

	if resp, err := http.Get(ts.URL + "/v1/studies?limit=frog"); err != nil {
		t.Fatal(err)
	} else {
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("bad limit: %d", resp.StatusCode)
		}
	}
}

// TestServerAdmissionControl: specs are priced before any work starts, and
// a spec over the bound is a 429 carrying the estimate.
func TestServerAdmissionControl(t *testing.T) {
	sched := New(Options{Workers: 2, Seed: 3})
	t.Cleanup(sched.Close)
	ts := httptest.NewServer(NewServer(sched, WithMaxStudyCost(5000)))
	defer ts.Close()

	cases := []struct {
		name     string
		body     string
		wantCode int
		wantCost int64
	}{
		{"under the bound",
			`{"studies":[{"workload":"tableI","loop_n":2,"measurements":6,"reps":10}]}`,
			http.StatusAccepted, 0}, // 8*6*10 = 480
		{"over via defaults",
			`{"studies":[{"workload":"tableI"}]}`,
			http.StatusTooManyRequests, 8 * 30 * 100},
		{"over via reps, second study",
			`{"studies":[{"workload":"tableI","loop_n":2,"measurements":6,"reps":10},
			             {"workload":"fig1","measurements":10,"reps":1000}]}`,
			http.StatusTooManyRequests, 4 * 10 * 1000},
		{"placement list shrinks the cost under the bound",
			`{"studies":[{"workload":"fig1","placements":["DA"],"measurements":10,"reps":100}]}`,
			http.StatusAccepted, 0}, // 1*10*100 = 1000
	}
	for _, tc := range cases {
		resp, err := http.Post(ts.URL+"/v1/suites", "application/json", strings.NewReader(tc.body))
		if err != nil {
			t.Fatal(err)
		}
		b, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != tc.wantCode {
			t.Errorf("%s: status %d, want %d (%s)", tc.name, resp.StatusCode, tc.wantCode, b)
			continue
		}
		if tc.wantCode == http.StatusTooManyRequests {
			var cr costResponse
			if err := json.Unmarshal(b, &cr); err != nil {
				t.Fatalf("%s: %v", tc.name, err)
			}
			if cr.Cost != tc.wantCost || cr.MaxStudyCost != 5000 || cr.Error == "" {
				t.Errorf("%s: 429 body = %+v, want cost %d", tc.name, cr, tc.wantCost)
			}
			// A 429 tells the client when to come back: the Retry-After
			// header and the body field must agree, and an idle scheduler
			// (nothing in flight) advertises the 1s floor.
			header := resp.Header.Get("Retry-After")
			if header == "" {
				t.Errorf("%s: 429 without Retry-After header", tc.name)
			} else if sec, err := strconv.Atoi(header); err != nil || sec != cr.RetryAfterSeconds {
				t.Errorf("%s: Retry-After header %q vs body retry_after_seconds %d", tc.name, header, cr.RetryAfterSeconds)
			}
			if cr.RetryAfterSeconds < 1 || cr.RetryAfterSeconds > maxRetryAfter {
				t.Errorf("%s: retry_after_seconds = %d, want within [1, %d]", tc.name, cr.RetryAfterSeconds, maxRetryAfter)
			}
		}
	}
	// Nothing over the bound was admitted: only the two accepted suites'
	// studies may ever compute.
	if sched.Computes() > 2 {
		t.Fatalf("computes = %d after rejected suites", sched.Computes())
	}
}

// suitePlatformsBody defines a platform once and references it from two
// studies; the third study uses a preset to prove mixing works.
const suitePlatformsBody = `{
	"platforms": {
		"edge-cloud": {"edge": {"preset": "raspberry-pi-4"}, "link": {"preset": "wifi"}}
	},
	"studies": [
		{"workload": "tableI", "loop_n": 2, "platform": {"name": "edge-cloud"}, "measurements": 6, "reps": 10},
		{"workload": "fig1", "platform": {"name": "edge-cloud"}, "measurements": 6, "reps": 10},
		{"workload": "tableI", "loop_n": 2, "measurements": 6, "reps": 10}
	]
}`

const suitePlatformsGoldenPath = "testdata/suite_platforms_golden.json"

// TestSuiteRequestNamedPlatforms: references substitute at decode time and
// the expanded studies are self-contained — pinned by a committed golden of
// their canonical encoding, so named platforms can never silently change
// what gets fingerprinted, retained or dispatched.
func TestSuiteRequestNamedPlatforms(t *testing.T) {
	req, err := DecodeSuiteRequest(strings.NewReader(suitePlatformsBody))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		pl := req.Studies[i].Platform
		if pl == nil || pl.Name != "" || pl.Edge == nil {
			t.Fatalf("study %d platform not expanded: %+v", i, pl)
		}
	}
	canon, err := json.Marshal(req.Studies)
	if err != nil {
		t.Fatal(err)
	}
	canon = append(canon, '\n')
	if *updateFleetGolden {
		if err := os.WriteFile(suitePlatformsGoldenPath, canon, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(suitePlatformsGoldenPath)
	if err != nil {
		t.Fatalf("%v (regenerate with: go test -run TestSuiteRequestNamedPlatforms -update ./internal/fleet)", err)
	}
	if !bytes.Equal(canon, want) {
		t.Errorf("expanded suite encoding drifted:\n got: %s\nwant: %s", canon, want)
	}
}

// TestSuiteRequestNamedPlatformsServed: over the wire, a referencing study
// fingerprints and serves identically to its inline twin.
func TestSuiteRequestNamedPlatformsServed(t *testing.T) {
	srv, _ := newTestServer(t, 41, nil)
	ts := httptest.NewServer(srv)
	defer ts.Close()
	sr := postSuite(t, ts, suitePlatformsBody)
	if len(sr.Fingerprints) != 3 {
		t.Fatalf("fingerprints = %v", sr.Fingerprints)
	}

	inline := `{"studies":[{"workload":"tableI","loop_n":2,
		"platform":{"edge":{"preset":"raspberry-pi-4"},"link":{"preset":"wifi"}},
		"measurements":6,"reps":10}]}`
	srv2, _ := newTestServer(t, 41, nil)
	ts2 := httptest.NewServer(srv2)
	defer ts2.Close()
	sr2 := postSuite(t, ts2, inline)
	if sr2.Fingerprints[0] != sr.Fingerprints[0] {
		t.Fatalf("inline twin fingerprints differently: %s vs %s", sr2.Fingerprints[0], sr.Fingerprints[0])
	}
	_, a := getStudy(t, ts, sr.Fingerprints[0])
	_, b := getStudy(t, ts2, sr2.Fingerprints[0])
	if !bytes.Equal(a, b) {
		t.Fatal("named-platform study served different bytes than its inline twin")
	}
}

func TestSuiteRequestNamedPlatformsErrors(t *testing.T) {
	for _, body := range []string{
		// Undefined reference.
		`{"studies":[{"workload":"tableI","platform":{"name":"ghost"}}]}`,
		// Reference alongside explicit fields.
		`{"platforms":{"x":{"preset":"fig1"}},
		  "studies":[{"workload":"tableI","platform":{"name":"x","preset":"fig1"}}]}`,
		// Invalid definition.
		`{"platforms":{"x":{"preset":"warp-drive"}},
		  "studies":[{"workload":"tableI","platform":{"name":"x"}}]}`,
		// Chained definition.
		`{"platforms":{"x":{"name":"y"},"y":{"preset":"fig1"}},
		  "studies":[{"workload":"tableI","platform":{"name":"x"}}]}`,
	} {
		if _, err := DecodeSuiteRequest(strings.NewReader(body)); err == nil {
			t.Errorf("body %s decoded without error", body)
		}
	}
	// Defined-but-unreferenced platforms are fine.
	ok := `{"platforms":{"spare":{"preset":"fig1"}},
	        "studies":[{"workload":"tableI","loop_n":2,"measurements":6,"reps":10}]}`
	if _, err := DecodeSuiteRequest(strings.NewReader(ok)); err != nil {
		t.Errorf("unreferenced platform rejected: %v", err)
	}
}
