package fleet

import (
	"encoding/json"
	"errors"
	"net/http"
)

// Server is the HTTP face of a Scheduler:
//
//	GET  /v1/healthz                  liveness + engine counters
//	POST /v1/suites                   submit a suite, receive fingerprints
//	GET  /v1/studies/{fingerprint}    the study's canonical result JSON
//
// A GET for a submitted-but-still-computing study blocks until the result
// lands (coalescing onto the single in-flight computation); a GET for a
// never-submitted fingerprint is 404 — the server cannot invert a hash
// back into a config.
type Server struct {
	sched *Scheduler
	mux   *http.ServeMux
}

// NewServer wires the routes.
func NewServer(sched *Scheduler) *Server {
	s := &Server{sched: sched, mux: http.NewServeMux()}
	s.mux.HandleFunc("GET /v1/healthz", s.handleHealthz)
	s.mux.HandleFunc("POST /v1/suites", s.handleSuites)
	s.mux.HandleFunc("GET /v1/studies/{fingerprint}", s.handleStudy)
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	_ = enc.Encode(v)
}

type errorResponse struct {
	Error string `json:"error"`
}

// healthResponse is the GET /v1/healthz body.
type healthResponse struct {
	Status   string `json:"status"`
	Seed     uint64 `json:"seed"`
	Workers  int    `json:"workers"`
	Computes uint64 `json:"computes"`
	Inflight int    `json:"inflight"`
	Store    Stats  `json:"store"`
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, healthResponse{
		Status:   "ok",
		Seed:     s.sched.Seed(),
		Workers:  s.sched.Workers(),
		Computes: s.sched.Computes(),
		Inflight: s.sched.Inflight(),
		Store:    s.sched.Store().Stats(),
	})
}

// suiteResponse is the POST /v1/suites body: one fingerprint per submitted
// study, in input order — the keys to poll GET /v1/studies/{fp} with.
type suiteResponse struct {
	Fingerprints []string `json:"fingerprints"`
	Seed         uint64   `json:"seed"`
}

// maxSuiteBody bounds POST /v1/suites bodies; suite specs are a few KB,
// so 1 MiB is generous while keeping one request from buffering the
// daemon into the ground.
const maxSuiteBody = 1 << 20

func (s *Server) handleSuites(w http.ResponseWriter, r *http.Request) {
	req, err := DecodeSuiteRequest(http.MaxBytesReader(w, r.Body, maxSuiteBody))
	if err != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: err.Error()})
		return
	}
	// SubmitSpecs (not Submit): beyond starting the studies it retains each
	// spec's wire JSON in the store, so snapshots can recompute evictions
	// after a restart.
	fps, err := s.sched.SubmitSpecs(req.Studies)
	if err != nil {
		code := http.StatusBadRequest
		if errors.Is(err, ErrClosed) {
			code = http.StatusServiceUnavailable
		}
		writeJSON(w, code, errorResponse{Error: err.Error()})
		return
	}
	writeJSON(w, http.StatusAccepted, suiteResponse{Fingerprints: fps, Seed: s.sched.Seed()})
}

func (s *Server) handleStudy(w http.ResponseWriter, r *http.Request) {
	fp := r.PathValue("fingerprint")
	blob, err := s.sched.Result(r.Context(), fp)
	switch {
	case errors.Is(err, ErrUnknownStudy):
		writeJSON(w, http.StatusNotFound, errorResponse{Error: err.Error()})
	case err != nil:
		writeJSON(w, http.StatusInternalServerError, errorResponse{Error: err.Error()})
	default:
		// The blob is the study's canonical encoding; serving it verbatim
		// is what makes responses byte-identical across cache hits, worker
		// counts and daemon restarts. The newline is written separately:
		// appending to the shared cached slice would race between handlers.
		w.Header().Set("Content-Type", "application/json")
		w.Write(blob)
		w.Write([]byte{'\n'})
	}
}
