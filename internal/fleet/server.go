package fleet

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"runtime/debug"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"relperf/internal/obs"
)

// Server is the HTTP face of a Scheduler:
//
//	GET  /v1/healthz                  liveness + engine counters
//	POST /v1/suites                   submit a suite, receive fingerprints
//	GET  /v1/studies                  enumerate known studies (paginated)
//	GET  /v1/studies/{fingerprint}    the study's canonical result JSON
//
// A GET for a submitted-but-still-computing study blocks until the result
// lands (coalescing onto the single in-flight computation); a GET for a
// never-submitted fingerprint is 404 — the server cannot invert a hash
// back into a config. With ?wait=stream the study GET serves Server-Sent
// Events instead of blocking silently: status events (queued, computing)
// as the study progresses, then a result event carrying the canonical
// JSON — the subscription the grid coordinator rides so it never polls a
// worker.
type Server struct {
	sched        *Scheduler
	mux          *http.ServeMux
	maxStudyCost int64
	streamBuf    int
	start        time.Time

	// traceNode/traceFetch enable cross-node trace fan-in on
	// GET /v1/trace/{fp}; see WithTraceFanIn.
	traceNode  string
	traceFetch TraceFetch

	// draining is closed by DrainStreams at shutdown; open SSE streams
	// observe it, emit a terminal "shutdown" event and disconnect, so
	// clients see an explicit end-of-stream instead of a cut connection.
	draining  chan struct{}
	drainOnce sync.Once
}

// ServerOption configures a Server.
type ServerOption func(*Server)

// OriginHeader is the request header a dispatching coordinator stamps on
// the POST /v1/suites it sends a worker. The worker records the value as
// an "origin" event on each submitted study's timeline, so a fanned-in
// trace shows on whose behalf the worker computed.
const OriginHeader = "X-Relperf-Origin"

// TraceFetch is the remote half of cross-node trace fan-in: given a
// fingerprint, return the owning node's ID and its timeline spans
// (already tagged with that node), or an error when the owner is known
// but unreachable. ("", nil, nil) means the study has no remote half.
type TraceFetch func(ctx context.Context, fp string) (node string, spans []obs.Span, err error)

// WithTraceFanIn makes GET /v1/trace/{fp} serve merged cross-node
// timelines: the local spans are tagged with localNode, fetch supplies
// the owning worker's spans, and the response interleaves both by start
// time. A fetch error degrades gracefully — local spans only, plus a
// loud fetch-failed event naming the unreachable node. This is how the
// grid coordinator turns a split coordinator/worker timeline into one
// response.
func WithTraceFanIn(localNode string, fetch TraceFetch) ServerOption {
	return func(s *Server) {
		s.traceNode = localNode
		s.traceFetch = fetch
	}
}

// WithMaxStudyCost bounds the admission-control cost estimate
// (placements × measurements × reps, see relperf.StudySpec.CostEstimate)
// of any single submitted study; suites containing a costlier spec are
// rejected with HTTP 429 and the estimate in the body. 0 means unbounded —
// the right setting for trusted suites, not for a public endpoint.
func WithMaxStudyCost(max int64) ServerOption {
	return func(s *Server) { s.maxStudyCost = max }
}

// WithStreamBuffer sets the per-subscriber event buffer each SSE stream
// holds (default 64). A stream that falls this many events behind is
// disconnected by the scheduler rather than back-pressuring publication;
// the stream reports the gap with a "lagged" event and still delivers
// the authoritative result. <= 0 keeps the default.
func WithStreamBuffer(n int) ServerOption {
	return func(s *Server) { s.streamBuf = n }
}

// NewServer wires the routes. Every route is wrapped in the obs HTTP
// middleware, labeled with its registration pattern (passed explicitly —
// go.mod targets Go 1.22, which predates http.Request.Pattern), so
// /v1/metrics carries per-route latency histograms and status-class
// counters for the whole API surface, including itself.
func NewServer(sched *Scheduler, opts ...ServerOption) *Server {
	s := &Server{sched: sched, mux: http.NewServeMux(), start: time.Now(), draining: make(chan struct{})}
	for _, opt := range opts {
		opt(s)
	}
	s.handle("GET /v1/healthz", s.handleHealthz)
	s.handle("POST /v1/suites", s.handleSuites)
	s.handle("GET /v1/studies", s.handleStudyIndex)
	s.handle("GET /v1/studies/{fingerprint}", s.handleStudy)
	s.handle("GET /v1/studies/{fingerprint}/summary", s.handleStudySummary)
	s.handle("POST /v1/replica/snapshot", s.handleReplicaSnapshot)
	s.handle("GET /v1/metrics", s.handleMetrics)
	s.handle("GET /v1/statz", s.handleStatz)
	s.handle("GET /v1/trace/{fingerprint}", s.handleTrace)
	return s
}

// handle registers an instrumented route.
func (s *Server) handle(pattern string, h http.HandlerFunc) {
	s.mux.Handle(pattern, obs.Instrument(s.sched.Obs().Reg(), pattern, h))
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

// DrainStreams tells every open SSE stream to finish: each one writes a
// terminal "shutdown" event and disconnects. Call it before
// http.Server.Shutdown — Shutdown waits for active handlers, and an SSE
// stream parked on a long computation would otherwise pin the daemon
// until the shutdown deadline guillotines it mid-stream. Idempotent.
func (s *Server) DrainStreams() {
	s.drainOnce.Do(func() { close(s.draining) })
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	_ = enc.Encode(v)
}

type errorResponse struct {
	Error string `json:"error"`
}

// buildInfo identifies the running binary: Go toolchain version and,
// when the binary was built from a VCS checkout, the revision it was
// built at — the first thing to pin down when two nodes disagree.
type buildInfo struct {
	GoVersion   string `json:"go_version"`
	VCSRevision string `json:"vcs_revision,omitempty"`
	VCSTime     string `json:"vcs_time,omitempty"`
	VCSModified bool   `json:"vcs_modified,omitempty"`
}

var (
	buildInfoOnce   sync.Once
	buildInfoCached buildInfo
)

// readBuildInfo extracts the binary's build identity once; `go test`
// binaries and non-VCS builds simply lack the vcs.* fields.
func readBuildInfo() buildInfo {
	buildInfoOnce.Do(func() {
		bi, ok := debug.ReadBuildInfo()
		if !ok {
			return
		}
		buildInfoCached.GoVersion = bi.GoVersion
		for _, s := range bi.Settings {
			switch s.Key {
			case "vcs.revision":
				buildInfoCached.VCSRevision = s.Value
			case "vcs.time":
				buildInfoCached.VCSTime = s.Value
			case "vcs.modified":
				buildInfoCached.VCSModified = s.Value == "true"
			}
		}
	})
	return buildInfoCached
}

// healthResponse is the GET /v1/healthz body.
type healthResponse struct {
	Status        string    `json:"status"`
	Seed          uint64    `json:"seed"`
	Workers       int       `json:"workers"`
	Computes      uint64    `json:"computes"`
	Inflight      int       `json:"inflight"`
	UptimeSeconds float64   `json:"uptime_seconds"`
	Build         buildInfo `json:"build"`
	Store         Stats     `json:"store"`
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, healthResponse{
		Status:        "ok",
		Seed:          s.sched.Seed(),
		Workers:       s.sched.Workers(),
		Computes:      s.sched.Computes(),
		Inflight:      s.sched.Inflight(),
		UptimeSeconds: time.Since(s.start).Seconds(),
		Build:         readBuildInfo(),
		Store:         s.sched.Store().Stats(),
	})
}

// handleMetrics serves GET /v1/metrics: the shared registry in
// Prometheus text exposition format 0.0.4, hand-rolled (go.mod stays
// dependency-free). When the daemon shares one Obs across scheduler,
// store, WAL and grid coordinator, this is the single unified scrape.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = s.sched.Obs().Reg().WritePrometheus(w)
}

// statzResponse is the GET /v1/statz body: the same instruments as
// /v1/metrics, as structured JSON for humans and scripts, plus tracer
// occupancy.
type statzResponse struct {
	Metrics []obs.MetricSnapshot `json:"metrics"`
	Tracer  obs.TracerStats      `json:"tracer"`
}

func (s *Server) handleStatz(w http.ResponseWriter, r *http.Request) {
	snap := s.sched.Obs().Reg().Snapshot()
	if snap == nil {
		snap = []obs.MetricSnapshot{}
	}
	writeJSON(w, http.StatusOK, statzResponse{Metrics: snap, Tracer: s.sched.Obs().Trace().Stats()})
}

// traceResponse is the GET /v1/trace/{fingerprint} body: the study's
// lifecycle spans in arrival order (queued → dispatched → computing →
// stage:* → done), with durations and attempt/worker annotations. With
// trace fan-in enabled (the coordinator), spans from every node are
// merged by start time, each tagged with the node it came from, and
// Nodes lists the nodes that contributed in first-appearance order.
type traceResponse struct {
	Fingerprint string     `json:"fingerprint"`
	Nodes       []string   `json:"nodes,omitempty"`
	Spans       []obs.Span `json:"spans"`
}

func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	fp := r.PathValue("fingerprint")
	spans, ok := s.sched.Obs().Trace().Timeline(fp)
	if !ok {
		writeJSON(w, http.StatusNotFound, errorResponse{Error: fmt.Sprintf("fleet: no trace for fingerprint %s (never computed here, or evicted from the bounded trace ring)", fp)})
		return
	}
	if s.traceFetch == nil {
		writeJSON(w, http.StatusOK, traceResponse{Fingerprint: fp, Spans: spans})
		return
	}
	// Fan-in: tag the local half, fetch the owning worker's half, merge.
	for i := range spans {
		spans[i].Node = s.traceNode
	}
	node, remote, err := s.traceFetch(r.Context(), fp)
	if err != nil {
		// Degrade loudly, not silently: the local half still serves, and
		// the fetch-failed event names the node whose half is missing.
		spans = append(spans, obs.Span{
			Name:   "fetch-failed",
			Start:  time.Now(),
			Node:   s.traceNode,
			Worker: node,
			Error:  err.Error(),
		})
	} else {
		spans = append(spans, remote...)
	}
	sort.SliceStable(spans, func(i, j int) bool { return spans[i].Start.Before(spans[j].Start) })
	var nodes []string
	seen := map[string]bool{}
	for _, sp := range spans {
		if sp.Node != "" && !seen[sp.Node] {
			seen[sp.Node] = true
			nodes = append(nodes, sp.Node)
		}
	}
	writeJSON(w, http.StatusOK, traceResponse{Fingerprint: fp, Nodes: nodes, Spans: spans})
}

// suiteResponse is the POST /v1/suites body: one fingerprint per submitted
// study, in input order — the keys to poll GET /v1/studies/{fp} with.
type suiteResponse struct {
	Fingerprints []string `json:"fingerprints"`
	Seed         uint64   `json:"seed"`
}

// maxSuiteBody bounds POST /v1/suites bodies; suite specs are a few KB,
// so 1 MiB is generous while keeping one request from buffering the
// daemon into the ground.
const maxSuiteBody = 1 << 20

// costResponse is the HTTP 429 body of a spec rejected by admission
// control: which study was over the line, its estimate, the bound, and
// when to try again (mirroring the Retry-After header).
type costResponse struct {
	Error             string `json:"error"`
	Study             int    `json:"study"`
	Cost              int64  `json:"cost"`
	MaxStudyCost      int64  `json:"max_study_cost"`
	RetryAfterSeconds int    `json:"retry_after_seconds"`
}

// maxRetryAfter caps the advertised 429 back-off; past a minute the queue
// depth says "come back later", not "come back in exactly N seconds".
const maxRetryAfter = 60

// retryAfterSeconds derives the 429 Retry-After hint from the scheduler's
// queue depth: an idle daemon invites an immediate retry with a smaller
// spec, a backed-up one pushes clients out roughly a second per queued
// study, capped at maxRetryAfter.
func (s *Server) retryAfterSeconds() int {
	sec := 1 + s.sched.Inflight()
	if sec > maxRetryAfter {
		sec = maxRetryAfter
	}
	return sec
}

func (s *Server) handleSuites(w http.ResponseWriter, r *http.Request) {
	req, err := DecodeSuiteRequest(http.MaxBytesReader(w, r.Body, maxSuiteBody))
	if err != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: err.Error()})
		return
	}
	// Admission control happens after validation but before any submission
	// or spec retention: a hostile spec is priced and refused while it is
	// still just bytes.
	if s.maxStudyCost > 0 {
		for i := range req.Studies {
			if cost := req.Studies[i].CostEstimate(); cost > s.maxStudyCost {
				retry := s.retryAfterSeconds()
				w.Header().Set("Retry-After", strconv.Itoa(retry))
				writeJSON(w, http.StatusTooManyRequests, costResponse{
					Error: fmt.Sprintf("fleet: study %d estimated cost %d exceeds the admission bound %d (placements × measurements × reps)",
						i, cost, s.maxStudyCost),
					Study:             i,
					Cost:              cost,
					MaxStudyCost:      s.maxStudyCost,
					RetryAfterSeconds: retry,
				})
				return
			}
		}
	}
	// SubmitSpecs (not Submit): beyond starting the studies it retains each
	// spec's wire JSON in the store, so snapshots can recompute evictions
	// after a restart.
	fps, err := s.sched.SubmitSpecs(req.Studies)
	if err != nil {
		code := http.StatusBadRequest
		if errors.Is(err, ErrClosed) {
			code = http.StatusServiceUnavailable
		}
		writeJSON(w, code, errorResponse{Error: err.Error()})
		return
	}
	// A dispatching coordinator stamps its identity on the request; record
	// it on each study's timeline so the fanned-in trace names the origin.
	if origin := r.Header.Get(OriginHeader); origin != "" {
		tr := s.sched.Obs().Trace()
		for _, fp := range fps {
			tr.Event(fp, "origin", origin)
		}
	}
	writeJSON(w, http.StatusAccepted, suiteResponse{Fingerprints: fps, Seed: s.sched.Seed()})
}

// maxReplicaBody bounds POST /v1/replica/snapshot bodies. Snapshots carry
// whole result sets, so the bound is generous — but still a bound.
const maxReplicaBody = 256 << 20

// replicaResponse is the POST /v1/replica/snapshot success body.
type replicaResponse struct {
	Merged int    `json:"merged"`
	Seed   uint64 `json:"seed"`
}

// handleReplicaSnapshot is the standby side of snapshot replication: a
// coordinator pushes its compacted snapshot here and the store absorbs it
// with Merge semantics. Seed mismatches and byte conflicts are 409 — a
// standby never overwrites what it already serves, and never accepts
// another seed's bytes; both would break the failover byte-identity
// contract.
func (s *Server) handleReplicaSnapshot(w http.ResponseWriter, r *http.Request) {
	n, err := s.sched.Store().MergeSnapshot(http.MaxBytesReader(w, r.Body, maxReplicaBody), s.sched.Seed())
	switch {
	case errors.Is(err, ErrSeedMismatch), errors.Is(err, ErrMergeConflict):
		writeJSON(w, http.StatusConflict, errorResponse{Error: err.Error()})
	case err != nil:
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: err.Error()})
	default:
		writeJSON(w, http.StatusOK, replicaResponse{Merged: n, Seed: s.sched.Seed()})
	}
}

// studyCacheControl is the Cache-Control of a served study: results are
// content-addressed and the determinism contract makes them immutable, so
// CDNs and client caches may hold them forever.
const studyCacheControl = "public, max-age=31536000, immutable"

// etagMatches reports whether an If-None-Match header value matches the
// study's ETag: "*", or any member of the comma-separated list equal to
// the quoted fingerprint (weak validators compare equal — the bytes
// behind a fingerprint never change, so W/ prefixes are immaterial).
func etagMatches(header, etag string) bool {
	if header == "*" {
		return true
	}
	for _, part := range strings.Split(header, ",") {
		part = strings.TrimSpace(part)
		part = strings.TrimPrefix(part, "W/")
		if part == etag {
			return true
		}
	}
	return false
}

func (s *Server) handleStudy(w http.ResponseWriter, r *http.Request) {
	fp := r.PathValue("fingerprint")
	if r.URL.Query().Get("wait") == "stream" {
		s.handleStudyStream(w, r, fp)
		return
	}
	// Results are content-addressed: the fingerprint IS the ETag, so
	// revalidation needs no byte comparison — and a conditional hit on a
	// known study short-circuits before Result, skipping even the
	// recompute an evicted study would otherwise pay. Unknown fingerprints
	// fall through to the ordinary 404 path: a 304 must never vouch for a
	// study this daemon cannot serve.
	etag := `"` + fp + `"`
	if inm := r.Header.Get("If-None-Match"); inm != "" && etagMatches(inm, etag) && s.sched.Known(fp) {
		w.Header().Set("ETag", etag)
		w.Header().Set("Cache-Control", studyCacheControl)
		w.WriteHeader(http.StatusNotModified)
		return
	}
	blob, err := s.sched.Result(r.Context(), fp)
	switch {
	case errors.Is(err, ErrUnknownStudy):
		writeJSON(w, http.StatusNotFound, errorResponse{Error: err.Error()})
	case err != nil:
		writeJSON(w, http.StatusInternalServerError, errorResponse{Error: err.Error()})
	default:
		// The blob is the study's canonical encoding; serving it verbatim
		// is what makes responses byte-identical across cache hits, worker
		// counts and daemon restarts. The newline is written separately:
		// appending to the shared cached slice would race between handlers.
		w.Header().Set("Content-Type", "application/json")
		w.Header().Set("ETag", etag)
		w.Header().Set("Cache-Control", studyCacheControl)
		w.Write(blob)
		w.Write([]byte{'\n'})
	}
}

// handleStudySummary serves GET /v1/studies/{fp}/summary: the study's
// per-algorithm quantile digest (selected quantiles, min/max/mean, and
// the sketch mode's error bound) without shipping the full result
// document — the dashboard surface sketch mode was built for. Exact-mode
// studies get a reduced summary computed from the stored samples. Like
// the full-result GET, an in-flight study blocks until its result lands.
func (s *Server) handleStudySummary(w http.ResponseWriter, r *http.Request) {
	fp := r.PathValue("fingerprint")
	blob, err := s.sched.Result(r.Context(), fp)
	switch {
	case errors.Is(err, ErrUnknownStudy):
		writeJSON(w, http.StatusNotFound, errorResponse{Error: err.Error()})
		return
	case err != nil:
		writeJSON(w, http.StatusInternalServerError, errorResponse{Error: err.Error()})
		return
	}
	sum, err := SummarizeResult(fp, blob)
	if err != nil {
		writeJSON(w, http.StatusInternalServerError, errorResponse{Error: err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, sum)
}

// writeSSE emits one Server-Sent Event. Data must be newline-free — the
// canonical result encoding is compact JSON, which is.
func writeSSE(w http.ResponseWriter, event string, data []byte) {
	fmt.Fprintf(w, "event: %s\ndata: %s\n\n", event, data)
	if fl, ok := w.(http.Flusher); ok {
		fl.Flush()
	}
}

// handleStudyStream serves GET /v1/studies/{fp}?wait=stream: an SSE stream
// of the study's lifecycle — queued and computing status events off the
// scheduler's subscriber channel, then a single result (or error) event —
// so a caller tracking many studies holds one idle connection per study
// instead of polling. The stream subscribes before attaching to the
// result, so no phase transition between the two can be missed; the
// blocking Result call (not the lossy subscriber channel) is the
// authoritative completion signal.
func (s *Server) handleStudyStream(w http.ResponseWriter, r *http.Request, fp string) {
	buf := s.streamBuf
	if buf <= 0 {
		buf = 64
	}
	events, cancel := s.sched.Subscribe(buf)
	defer cancel()
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)

	type outcome struct {
		blob []byte
		err  error
	}
	done := make(chan outcome, 1)
	go func() {
		blob, err := s.sched.Result(r.Context(), fp)
		done <- outcome{blob, err}
	}()

	// Initial status: cached results go straight to the result event (the
	// Result call above returns immediately), unknown fingerprints
	// straight to the error event — a status first would imply a
	// nonexistent study is pending. Otherwise report where the study
	// currently stands.
	if !s.sched.Store().Contains(fp) && s.sched.Known(fp) {
		if s.sched.Computing(fp) {
			writeSSE(w, "computing", []byte("{}"))
		} else {
			writeSSE(w, "queued", []byte("{}"))
		}
	}
	for {
		select {
		case ev, ok := <-events:
			if !ok {
				// The scheduler disconnected us for falling behind (see
				// Scheduler.publish). Status events are best-effort; the
				// authoritative Result call below still completes, so tell
				// the client its phase view lagged and keep waiting for the
				// result instead of killing the stream.
				writeSSE(w, "lagged", []byte("{}"))
				events = nil // a nil channel blocks: select on done/ctx only
				continue
			}
			if ev.Fingerprint == fp && ev.Phase == PhaseComputing {
				writeSSE(w, "computing", []byte("{}"))
			}
		case out := <-done:
			// The phase feed is best-effort, but ordering isn't: drain
			// whatever it already holds — buffered status events and, after
			// a slow-consumer disconnect, the channel closure — before the
			// terminal event. Otherwise this select could race a
			// just-closed channel against a just-completed result and
			// swallow the "lagged" notice the client is owed.
			for events != nil {
				select {
				case ev, ok := <-events:
					if !ok {
						writeSSE(w, "lagged", []byte("{}"))
						events = nil
					} else if ev.Fingerprint == fp && ev.Phase == PhaseComputing {
						writeSSE(w, "computing", []byte("{}"))
					}
					continue
				default:
				}
				break
			}
			if out.err != nil {
				b, _ := json.Marshal(errorResponse{Error: out.err.Error()})
				writeSSE(w, "error", b)
				return
			}
			writeSSE(w, "result", out.blob)
			return
		case <-s.draining:
			// The daemon is shutting down: end the stream explicitly so the
			// client can distinguish "server going away, resubscribe
			// elsewhere" from a dropped connection, then release the handler
			// so http.Server.Shutdown can complete.
			writeSSE(w, "shutdown", []byte("{}"))
			return
		case <-r.Context().Done():
			return
		}
	}
}

// studyIndexResponse is the GET /v1/studies body: one page of the store's
// deterministic (lexicographic) fingerprint listing. NextCursor is empty on
// the last page; otherwise pass it back as ?cursor= to resume.
type studyIndexResponse struct {
	Studies    []IndexEntry `json:"studies"`
	NextCursor string       `json:"next_cursor,omitempty"`
}

// Index pagination bounds.
const (
	defaultIndexLimit = 100
	maxIndexLimit     = 1000
)

// handleStudyIndex serves GET /v1/studies?limit=N&cursor=fp: a
// deterministically ordered, cursor-paginated enumeration of every
// fingerprint the store knows, so an operator can walk a store without
// knowing any fingerprint up front. The cursor is exclusive — pages resume
// strictly after it — so a listing never duplicates entries even when
// studies land between pages.
func (s *Server) handleStudyIndex(w http.ResponseWriter, r *http.Request) {
	limit := defaultIndexLimit
	if raw := r.URL.Query().Get("limit"); raw != "" {
		n, err := strconv.Atoi(raw)
		if err != nil || n <= 0 {
			writeJSON(w, http.StatusBadRequest, errorResponse{Error: fmt.Sprintf("fleet: limit %q is not a positive integer", raw)})
			return
		}
		if n > maxIndexLimit {
			n = maxIndexLimit
		}
		limit = n
	}
	cursor := r.URL.Query().Get("cursor")
	all := s.sched.Store().Index()
	// First entry strictly after the cursor; the zero cursor starts at the
	// beginning.
	start := sort.Search(len(all), func(i int) bool { return all[i].Fingerprint > cursor })
	end := start + limit
	if end > len(all) {
		end = len(all)
	}
	resp := studyIndexResponse{Studies: all[start:end]}
	if resp.Studies == nil {
		resp.Studies = []IndexEntry{} // an empty page is [], not null
	}
	if end < len(all) {
		resp.NextCursor = all[end-1].Fingerprint
	}
	writeJSON(w, http.StatusOK, resp)
}
