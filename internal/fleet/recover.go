package fleet

import (
	"fmt"

	"relperf"
	"relperf/internal/wal"
)

// ReplayCounts reports what a WAL replay restored.
type ReplayCounts struct {
	Specs   int // specs retained
	Results int // results merged
	Tasks   int // grid task records returned to the caller
}

// ReplayWAL applies recovered control-plane records to the store, oldest
// first: spec records are re-resolved through the declarative schema and
// must fingerprint back to the fingerprint they were journaled under (a
// mismatch means the engine's result semantics changed under the log —
// serving a recompute under the old identity would break the determinism
// contract, so replay refuses loudly); result records must be the
// canonical encoding (re-encode fixed point) and merge idempotently onto
// whatever the snapshot already restored. Task records are not the
// store's business — they are returned for the grid coordinator to
// reload its dispatch journal from.
//
// Call before SetWAL: replay must not re-journal what the log already
// holds.
func ReplayWAL(store *Store, suiteSeed uint64, recs []wal.Record) (ReplayCounts, []wal.Record, error) {
	var counts ReplayCounts
	var tasks []wal.Record
	for i, rec := range recs {
		switch rec.Type {
		case wal.TypeSpec:
			spec, err := relperf.ParseStudySpec(rec.Data)
			if err != nil {
				return counts, tasks, fmt.Errorf("fleet: wal record %d: spec for %s: %w", i, rec.Fingerprint, err)
			}
			cfg, err := spec.Config()
			if err != nil {
				return counts, tasks, fmt.Errorf("fleet: wal record %d: spec for %s: %w", i, rec.Fingerprint, err)
			}
			_, fp, err := relperf.NewKeyedStudy(cfg, suiteSeed)
			if err != nil {
				return counts, tasks, fmt.Errorf("fleet: wal record %d: spec for %s: %w", i, rec.Fingerprint, err)
			}
			if fp != rec.Fingerprint {
				return counts, tasks, fmt.Errorf("fleet: wal record %d: spec journaled as %s resolves to fingerprint %s (schema or engine changed); remove the log and resubmit", i, rec.Fingerprint, fp)
			}
			if err := store.PutSpec(rec.Fingerprint, rec.Data); err != nil {
				return counts, tasks, err
			}
			counts.Specs++
		case wal.TypeResult:
			// The WAL binds fingerprint to bytes; trust it only as far as
			// the bytes being a canonical result document — anything else
			// is corruption the CRC could not judge.
			if _, err := relperf.UnmarshalResultWire(rec.Data); err != nil {
				return counts, tasks, fmt.Errorf("fleet: wal record %d: result for %s: %w", i, rec.Fingerprint, err)
			}
			if err := store.Merge(rec.Fingerprint, rec.Data); err != nil {
				return counts, tasks, fmt.Errorf("fleet: wal record %d: %w", i, err)
			}
			counts.Results++
		case wal.TypeTask:
			tasks = append(tasks, rec)
			counts.Tasks++
		default:
			return counts, tasks, fmt.Errorf("fleet: wal record %d has unknown type %q", i, rec.Type)
		}
	}
	return counts, tasks, nil
}
