package fleet

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
)

func TestStoreLRUEviction(t *testing.T) {
	s := NewStore(2)
	s.Put("a", []byte(`{"v":1}`))
	s.Put("b", []byte(`{"v":2}`))
	if _, ok := s.Get("a"); !ok { // touch a: b becomes LRU
		t.Fatal("a missing")
	}
	s.Put("c", []byte(`{"v":3}`))
	if _, ok := s.Get("b"); ok {
		t.Fatal("b should have been evicted as LRU")
	}
	if got := s.Keys(); !reflect.DeepEqual(got, []string{"c", "a"}) {
		t.Fatalf("keys = %v", got)
	}
	st := s.Stats()
	if st.Entries != 2 || st.Evictions != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestStoreUnboundedAndReplace(t *testing.T) {
	s := NewStore(0)
	for i := 0; i < 100; i++ {
		s.Put("k", []byte(`{"v":0}`))
	}
	s.Put("k2", []byte(`{"v":1}`))
	if s.Len() != 2 {
		t.Fatalf("len = %d", s.Len())
	}
	s.Put("k", []byte(`{"v":9}`))
	blob, _ := s.Get("k")
	if string(blob) != `{"v":9}` {
		t.Fatalf("replace failed: %s", blob)
	}
}

// TestStoreSnapshotRoundTrip: blobs and recency order survive persistence
// byte-for-byte.
func TestStoreSnapshotRoundTrip(t *testing.T) {
	s := NewStore(0)
	s.Put("aaaa", []byte(`{"schema":"x","v":[1,2,3]}`))
	s.Put("bbbb", []byte(`{"schema":"x","v":[4.000000000000001]}`))
	s.Get("aaaa") // aaaa becomes MRU

	var buf bytes.Buffer
	if err := s.WriteSnapshot(&buf, 42); err != nil {
		t.Fatal(err)
	}

	restored := NewStore(0)
	n, err := restored.LoadSnapshot(bytes.NewReader(buf.Bytes()), 42)
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Fatalf("loaded %d entries, want 2", n)
	}
	for _, fp := range []string{"aaaa", "bbbb"} {
		want, _ := s.Get(fp)
		got, ok := restored.Get(fp)
		if !ok || !bytes.Equal(want, got) {
			t.Fatalf("entry %s differs after restore: %s vs %s", fp, want, got)
		}
	}
	// Recency survived: bbbb is LRU in both (ignore the Get calls above by
	// re-deriving from a fresh load).
	restored2 := NewStore(0)
	if _, err := restored2.LoadSnapshot(bytes.NewReader(buf.Bytes()), 42); err != nil {
		t.Fatal(err)
	}
	if got := restored2.Keys(); !reflect.DeepEqual(got, []string{"aaaa", "bbbb"}) {
		t.Fatalf("restored recency order = %v", got)
	}
}

// TestStoreSnapshotLoadBounded: loading a big snapshot into a small store
// reports how many entries are actually servable, not how many the
// snapshot held.
func TestStoreSnapshotLoadBounded(t *testing.T) {
	src := NewStore(0)
	for _, fp := range []string{"a", "b", "c", "d", "e"} {
		src.Put(fp, []byte(`{}`))
	}
	var buf bytes.Buffer
	if err := src.WriteSnapshot(&buf, 1); err != nil {
		t.Fatal(err)
	}
	small := NewStore(2)
	n, err := small.LoadSnapshot(bytes.NewReader(buf.Bytes()), 1)
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Fatalf("reported %d restored entries, want the 2 actually retained", n)
	}
	// The retained pair is the most recently used of the source.
	if got := small.Keys(); !reflect.DeepEqual(got, []string{"e", "d"}) {
		t.Fatalf("retained keys = %v", got)
	}
}

// TestStoreSpecSnapshot: retained specs persist alongside result blobs,
// survive a snapshot round trip verbatim, are never LRU-evicted, and equal
// stores write byte-identical snapshots regardless of spec insertion order.
func TestStoreSpecSnapshot(t *testing.T) {
	s := NewStore(1)
	s.Put("aaaa", []byte(`{"v":1}`))
	s.PutSpec("aaaa", []byte(`{"workload":"tableI"}`))
	s.PutSpec("bbbb", []byte(`{"workload":"fig1"}`))
	s.Put("bbbb", []byte(`{"v":2}`)) // evicts result aaaa, not its spec
	if _, ok := s.Get("aaaa"); ok {
		t.Fatal("result aaaa should have been evicted")
	}
	if spec, ok := s.Spec("aaaa"); !ok || string(spec) != `{"workload":"tableI"}` {
		t.Fatalf("spec aaaa = %q, %v (specs must not be LRU-evicted)", spec, ok)
	}
	if st := s.Stats(); st.Specs != 2 || st.Entries != 1 {
		t.Fatalf("stats = %+v", st)
	}

	var buf bytes.Buffer
	if err := s.WriteSnapshot(&buf, 7); err != nil {
		t.Fatal(err)
	}
	restored := NewStore(0)
	if _, err := restored.LoadSnapshot(bytes.NewReader(buf.Bytes()), 7); err != nil {
		t.Fatal(err)
	}
	for _, fp := range []string{"aaaa", "bbbb"} {
		want, _ := s.Spec(fp)
		got, ok := restored.Spec(fp)
		if !ok || !bytes.Equal(want, got) {
			t.Fatalf("spec %s differs after restore: %s vs %s", fp, want, got)
		}
	}

	// Determinism: the same contents inserted in the opposite order write
	// the same snapshot bytes (specs are sorted by fingerprint).
	s2 := NewStore(1)
	s2.PutSpec("bbbb", []byte(`{"workload":"fig1"}`))
	s2.PutSpec("aaaa", []byte(`{"workload":"tableI"}`))
	s2.Put("aaaa", []byte(`{"v":1}`))
	s2.Put("bbbb", []byte(`{"v":2}`))
	var buf2 bytes.Buffer
	if err := s2.WriteSnapshot(&buf2, 7); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
		t.Fatalf("snapshot bytes depend on spec insertion order:\n%s\n%s", buf.Bytes(), buf2.Bytes())
	}
}

// TestStoreSnapshotWithoutSpecs: pre-spec snapshots (no "specs" field)
// still load.
func TestStoreSnapshotWithoutSpecs(t *testing.T) {
	legacy := `{"schema":"relperf/fleet-snapshot/v1","seed":3,"entries":[{"fingerprint":"aaaa","result":{"v":1}}]}`
	s := NewStore(0)
	n, err := s.LoadSnapshot(strings.NewReader(legacy), 3)
	if err != nil || n != 1 {
		t.Fatalf("legacy snapshot: n=%d err=%v", n, err)
	}
	if st := s.Stats(); st.Specs != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestStoreSnapshotSeedMismatch(t *testing.T) {
	s := NewStore(0)
	s.Put("aaaa", []byte(`{}`))
	var buf bytes.Buffer
	if err := s.WriteSnapshot(&buf, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := NewStore(0).LoadSnapshot(bytes.NewReader(buf.Bytes()), 2); err == nil {
		t.Fatal("seed mismatch accepted")
	}
	if _, err := NewStore(0).LoadSnapshot(strings.NewReader(`{"schema":"bogus","seed":1}`), 1); err == nil {
		t.Fatal("wrong schema accepted")
	}
}
