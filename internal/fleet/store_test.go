package fleet

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
)

func TestStoreLRUEviction(t *testing.T) {
	s := NewStore(2)
	s.Put("a", []byte(`{"v":1}`))
	s.Put("b", []byte(`{"v":2}`))
	if _, ok := s.Get("a"); !ok { // touch a: b becomes LRU
		t.Fatal("a missing")
	}
	s.Put("c", []byte(`{"v":3}`))
	if _, ok := s.Get("b"); ok {
		t.Fatal("b should have been evicted as LRU")
	}
	if got := s.Keys(); !reflect.DeepEqual(got, []string{"c", "a"}) {
		t.Fatalf("keys = %v", got)
	}
	st := s.Stats()
	if st.Entries != 2 || st.Evictions != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestStoreUnboundedAndReplace(t *testing.T) {
	s := NewStore(0)
	for i := 0; i < 100; i++ {
		s.Put("k", []byte(`{"v":0}`))
	}
	s.Put("k2", []byte(`{"v":1}`))
	if s.Len() != 2 {
		t.Fatalf("len = %d", s.Len())
	}
	s.Put("k", []byte(`{"v":9}`))
	blob, _ := s.Get("k")
	if string(blob) != `{"v":9}` {
		t.Fatalf("replace failed: %s", blob)
	}
}

// TestStoreSnapshotRoundTrip: blobs and recency order survive persistence
// byte-for-byte.
func TestStoreSnapshotRoundTrip(t *testing.T) {
	s := NewStore(0)
	s.Put("aaaa", []byte(`{"schema":"x","v":[1,2,3]}`))
	s.Put("bbbb", []byte(`{"schema":"x","v":[4.000000000000001]}`))
	s.Get("aaaa") // aaaa becomes MRU

	var buf bytes.Buffer
	if err := s.WriteSnapshot(&buf, 42); err != nil {
		t.Fatal(err)
	}

	restored := NewStore(0)
	n, err := restored.LoadSnapshot(bytes.NewReader(buf.Bytes()), 42)
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Fatalf("loaded %d entries, want 2", n)
	}
	for _, fp := range []string{"aaaa", "bbbb"} {
		want, _ := s.Get(fp)
		got, ok := restored.Get(fp)
		if !ok || !bytes.Equal(want, got) {
			t.Fatalf("entry %s differs after restore: %s vs %s", fp, want, got)
		}
	}
	// Recency survived: bbbb is LRU in both (ignore the Get calls above by
	// re-deriving from a fresh load).
	restored2 := NewStore(0)
	if _, err := restored2.LoadSnapshot(bytes.NewReader(buf.Bytes()), 42); err != nil {
		t.Fatal(err)
	}
	if got := restored2.Keys(); !reflect.DeepEqual(got, []string{"aaaa", "bbbb"}) {
		t.Fatalf("restored recency order = %v", got)
	}
}

// TestStoreSnapshotLoadBounded: loading a big snapshot into a small store
// reports how many entries are actually servable, not how many the
// snapshot held.
func TestStoreSnapshotLoadBounded(t *testing.T) {
	src := NewStore(0)
	for _, fp := range []string{"a", "b", "c", "d", "e"} {
		src.Put(fp, []byte(`{}`))
	}
	var buf bytes.Buffer
	if err := src.WriteSnapshot(&buf, 1); err != nil {
		t.Fatal(err)
	}
	small := NewStore(2)
	n, err := small.LoadSnapshot(bytes.NewReader(buf.Bytes()), 1)
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Fatalf("reported %d restored entries, want the 2 actually retained", n)
	}
	// The retained pair is the most recently used of the source.
	if got := small.Keys(); !reflect.DeepEqual(got, []string{"e", "d"}) {
		t.Fatalf("retained keys = %v", got)
	}
}

func TestStoreSnapshotSeedMismatch(t *testing.T) {
	s := NewStore(0)
	s.Put("aaaa", []byte(`{}`))
	var buf bytes.Buffer
	if err := s.WriteSnapshot(&buf, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := NewStore(0).LoadSnapshot(bytes.NewReader(buf.Bytes()), 2); err == nil {
		t.Fatal("seed mismatch accepted")
	}
	if _, err := NewStore(0).LoadSnapshot(strings.NewReader(`{"schema":"bogus","seed":1}`), 1); err == nil {
		t.Fatal("wrong schema accepted")
	}
}
