// Package search implements measurement-efficient algorithm selection for
// the paper's concluding scenario: "in case of exponential explosion of the
// search space, our methodology can still be applied on a subset of possible
// solutions and the resulting clusters ... can be used ... to guide the
// search of algorithm". Instead of measuring every placement N times and
// clustering once, a Racer interleaves measurement and comparison: it
// measures candidates in small rounds and eliminates any candidate that the
// three-way comparator declares Worse than some surviving rival, so the
// measurement budget concentrates on the contenders. An optional predicted
// ranking (from package predict) orders the initial subset.
package search

import (
	"errors"
	"fmt"
	"sort"

	"relperf/internal/compare"
)

// Arm is one candidate algorithm the racer can measure.
type Arm struct {
	// Name identifies the candidate.
	Name string
	// Measure returns one fresh execution-time measurement.
	Measure func() (float64, error)
	// Prior orders the initial candidate set (lower = expected faster);
	// zero priors mean no prior knowledge.
	Prior float64
}

// Config controls a race.
type Config struct {
	// RoundSize is the number of new measurements per surviving arm per
	// round (default 10).
	RoundSize int
	// MaxRounds bounds the race length (default 10).
	MaxRounds int
	// Budget caps the total number of measurements across all arms;
	// 0 means unlimited (bounded only by MaxRounds).
	Budget int
	// Keep stops the race early once at most Keep arms survive
	// (default 1).
	Keep int
	// MaxArms measures only the MaxArms best-prior candidates (the
	// paper's "subset of possible solutions"); 0 means all.
	MaxArms int
}

func (c *Config) defaults() {
	if c.RoundSize <= 0 {
		c.RoundSize = 10
	}
	if c.MaxRounds <= 0 {
		c.MaxRounds = 10
	}
	if c.Keep <= 0 {
		c.Keep = 1
	}
}

// ArmResult reports one candidate's fate.
type ArmResult struct {
	Name string
	// Survived reports whether the arm was still alive at the end.
	Survived bool
	// Measurements is the number of times the arm was executed.
	Measurements int
	// EliminatedInRound is the 1-based round of elimination (0 = never).
	EliminatedInRound int
	// Sample holds the collected measurements.
	Sample []float64
}

// Result is the outcome of a race.
type Result struct {
	// Arms holds per-candidate results in the (possibly prior-sorted)
	// race order.
	Arms []ArmResult
	// Survivors lists the names of surviving arms, best-median first.
	Survivors []string
	// TotalMeasurements across all arms — the quantity racing minimizes.
	TotalMeasurements int
	// Rounds actually run.
	Rounds int
	// SkippedArms counts candidates excluded by MaxArms.
	SkippedArms int
}

// Race runs the eliminate-the-worse loop with the given three-way
// comparator.
func Race(arms []Arm, cmp compare.Comparator, cfg Config) (*Result, error) {
	if len(arms) == 0 {
		return nil, errors.New("search: no candidates")
	}
	if cmp == nil {
		return nil, errors.New("search: nil comparator")
	}
	cfg.defaults()

	// Order by prior and apply the subset cap.
	order := make([]int, len(arms))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool { return arms[order[a]].Prior < arms[order[b]].Prior })
	skipped := 0
	if cfg.MaxArms > 0 && cfg.MaxArms < len(order) {
		skipped = len(order) - cfg.MaxArms
		order = order[:cfg.MaxArms]
	}

	res := &Result{SkippedArms: skipped}
	res.Arms = make([]ArmResult, len(order))
	alive := make([]bool, len(order))
	for i, idx := range order {
		res.Arms[i] = ArmResult{Name: arms[idx].Name, Survived: true}
		alive[i] = true
	}
	aliveCount := len(order)

	for round := 1; round <= cfg.MaxRounds && aliveCount > cfg.Keep; round++ {
		res.Rounds = round
		// Measure every surviving arm.
		for i, idx := range order {
			if !alive[i] {
				continue
			}
			for k := 0; k < cfg.RoundSize; k++ {
				if cfg.Budget > 0 && res.TotalMeasurements >= cfg.Budget {
					break
				}
				v, err := arms[idx].Measure()
				if err != nil {
					return nil, fmt.Errorf("search: measuring %s: %w", arms[idx].Name, err)
				}
				res.Arms[i].Sample = append(res.Arms[i].Sample, v)
				res.Arms[i].Measurements++
				res.TotalMeasurements++
			}
		}
		// Eliminate every arm that is Worse than some surviving rival.
		worse := make([]bool, len(order))
		for i := range order {
			if !alive[i] || len(res.Arms[i].Sample) == 0 {
				continue
			}
			for j := range order {
				if i == j || !alive[j] || len(res.Arms[j].Sample) == 0 {
					continue
				}
				o, err := cmp.Compare(res.Arms[i].Sample, res.Arms[j].Sample)
				if err != nil {
					return nil, fmt.Errorf("search: comparing %s vs %s: %w",
						res.Arms[i].Name, res.Arms[j].Name, err)
				}
				if o == compare.Worse {
					worse[i] = true
					break
				}
			}
		}
		for i := range order {
			if worse[i] && aliveCount > cfg.Keep {
				alive[i] = false
				res.Arms[i].Survived = false
				res.Arms[i].EliminatedInRound = round
				aliveCount--
			}
		}
		if cfg.Budget > 0 && res.TotalMeasurements >= cfg.Budget {
			break
		}
	}

	// Survivors, best median first.
	type surv struct {
		name string
		med  float64
	}
	var ss []surv
	for i := range order {
		if alive[i] {
			ss = append(ss, surv{res.Arms[i].Name, median(res.Arms[i].Sample)})
		}
	}
	sort.SliceStable(ss, func(a, b int) bool { return ss[a].med < ss[b].med })
	for _, s := range ss {
		res.Survivors = append(res.Survivors, s.name)
	}
	return res, nil
}

// median of a sample (copy + nth element would be overkill at these sizes).
func median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	cp := append([]float64(nil), xs...)
	sort.Float64s(cp)
	n := len(cp)
	if n%2 == 1 {
		return cp[n/2]
	}
	return (cp[n/2-1] + cp[n/2]) / 2
}
