// Package search implements measurement-efficient algorithm selection for
// the paper's concluding scenario: "in case of exponential explosion of the
// search space, our methodology can still be applied on a subset of possible
// solutions and the resulting clusters ... can be used ... to guide the
// search of algorithm". Instead of measuring every placement N times and
// clustering once, a Racer interleaves measurement and comparison: it
// measures candidates in small rounds and eliminates any candidate that the
// three-way comparator declares Worse than some surviving rival, so the
// measurement budget concentrates on the contenders. An optional predicted
// ranking (from package predict) orders the initial subset.
package search

import (
	"context"
	"errors"
	"fmt"
	"sort"

	"relperf/internal/compare"
	"relperf/internal/pool"
	"relperf/internal/stats"
	"relperf/internal/xrand"
)

// Arm is one candidate algorithm the racer can measure.
type Arm struct {
	// Name identifies the candidate.
	Name string
	// Measure returns one fresh execution-time measurement.
	Measure func() (float64, error)
	// Prior orders the initial candidate set (lower = expected faster);
	// zero priors mean no prior knowledge.
	Prior float64
}

// Config controls a race.
type Config struct {
	// RoundSize is the number of new measurements per surviving arm per
	// round (default 10).
	RoundSize int
	// MaxRounds bounds the race length (default 10).
	MaxRounds int
	// Budget caps the total number of measurements across all arms;
	// 0 means unlimited (bounded only by MaxRounds).
	Budget int
	// Keep stops the race early once at most Keep arms survive
	// (default 1).
	Keep int
	// MaxArms measures only the MaxArms best-prior candidates (the
	// paper's "subset of possible solutions"); 0 means all.
	MaxArms int
	// Seed keys the per-pair comparator streams of RaceOn's parallel
	// comparison stage; equal seeds give bit-identical Results at any
	// worker count. Ignored by Race and by the serial fallback, where the
	// comparator's own randomness decides.
	Seed uint64
	// Workers bounds the comparison fan-out of RaceOn when no shared
	// budget is supplied; 0 means GOMAXPROCS. The results do not depend on
	// this value.
	Workers int
}

func (c *Config) defaults() {
	if c.RoundSize <= 0 {
		c.RoundSize = 10
	}
	if c.MaxRounds <= 0 {
		c.MaxRounds = 10
	}
	if c.Keep <= 0 {
		c.Keep = 1
	}
}

// ArmResult reports one candidate's fate.
type ArmResult struct {
	Name string
	// Survived reports whether the arm was still alive at the end.
	Survived bool
	// Measurements is the number of times the arm was executed.
	Measurements int
	// EliminatedInRound is the 1-based round of elimination (0 = never).
	EliminatedInRound int
	// Sample holds the collected measurements.
	Sample []float64
}

// Result is the outcome of a race.
type Result struct {
	// Arms holds per-candidate results in the (possibly prior-sorted)
	// race order.
	Arms []ArmResult
	// Survivors lists the names of surviving arms, best-median first.
	Survivors []string
	// TotalMeasurements across all arms — the quantity racing minimizes.
	TotalMeasurements int
	// Rounds actually run.
	Rounds int
	// SkippedArms counts candidates excluded by MaxArms.
	SkippedArms int
}

// Race runs the eliminate-the-worse loop with the given three-way
// comparator, serially on the caller's goroutine — the legacy entry point,
// byte-for-byte compatible with earlier releases. For the parallel
// comparison stage use RaceOn.
func Race(arms []Arm, cmp compare.Comparator, cfg Config) (*Result, error) {
	return race(context.Background(), arms, cmp, cfg, nil, false)
}

// RaceOn is Race with cancellation, an optional shared worker budget, and a
// parallel comparison stage. When cmp implements compare.Forker, every
// round's pairwise eliminations run concurrently: each ordered pair of
// surviving arms gets an independent comparator forked on a stream keyed by
// (Config.Seed, round, pair), and the outcomes are reduced in index order,
// so equal seeds give bit-identical Results at any worker count and any
// budget width. Pairs acquire tokens from budget when non-nil (the fleet's
// global bound), or run on a transient pool of Config.Workers goroutines.
//
// A comparator that does not implement compare.Forker cannot be handed out
// to concurrent pairs safely; RaceOn then falls back to the serial
// comparison loop of Race (shared comparator, same call order — identical
// Results to Race).
//
// The measurement stage stays serial on the caller's goroutine in either
// mode: Arm.Measure closures routinely share state (one simulator, one
// device under test), and measuring arms concurrently would perturb the
// very distributions being compared.
func RaceOn(ctx context.Context, arms []Arm, cmp compare.Comparator, cfg Config, budget *pool.Pool) (*Result, error) {
	_, forkable := cmp.(compare.Forker)
	return race(ctx, arms, cmp, cfg, budget, forkable)
}

// race is the shared engine; parallel selects the forked comparison stage.
func race(ctx context.Context, arms []Arm, cmp compare.Comparator, cfg Config, budget *pool.Pool, parallel bool) (*Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if len(arms) == 0 {
		return nil, errors.New("search: no candidates")
	}
	if cmp == nil {
		return nil, errors.New("search: nil comparator")
	}
	cfg.defaults()
	// Probe the comparator's capabilities once for the whole race: whether
	// forks consume pre-sorted views cannot change between rounds.
	var forker compare.Forker
	var sortedOK bool
	if parallel {
		forker = cmp.(compare.Forker)
		_, sortedOK = forker.Fork(0).(compare.SortedComparator)
	}

	// Order by prior and apply the subset cap.
	order := make([]int, len(arms))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool { return arms[order[a]].Prior < arms[order[b]].Prior })
	skipped := 0
	if cfg.MaxArms > 0 && cfg.MaxArms < len(order) {
		skipped = len(order) - cfg.MaxArms
		order = order[:cfg.MaxArms]
	}

	res := &Result{SkippedArms: skipped}
	res.Arms = make([]ArmResult, len(order))
	alive := make([]bool, len(order))
	for i, idx := range order {
		res.Arms[i] = ArmResult{Name: arms[idx].Name, Survived: true}
		alive[i] = true
	}
	aliveCount := len(order)

	for round := 1; round <= cfg.MaxRounds && aliveCount > cfg.Keep; round++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		res.Rounds = round
		// Measure every surviving arm.
		for i, idx := range order {
			if !alive[i] {
				continue
			}
			for k := 0; k < cfg.RoundSize; k++ {
				if err := ctx.Err(); err != nil {
					return nil, err // bound cancellation latency to one Measure
				}
				if cfg.Budget > 0 && res.TotalMeasurements >= cfg.Budget {
					break
				}
				v, err := arms[idx].Measure()
				if err != nil {
					return nil, fmt.Errorf("search: measuring %s: %w", arms[idx].Name, err)
				}
				res.Arms[i].Sample = append(res.Arms[i].Sample, v)
				res.Arms[i].Measurements++
				res.TotalMeasurements++
			}
		}
		// Eliminate every arm that is Worse than some surviving rival.
		var worse []bool
		var err error
		if parallel {
			worse, err = eliminateParallel(ctx, forker, sortedOK, res, alive, round, cfg, budget)
		} else {
			worse, err = eliminateSerial(cmp, res, alive)
		}
		if err != nil {
			return nil, err
		}
		for i := range order {
			if worse[i] && aliveCount > cfg.Keep {
				alive[i] = false
				res.Arms[i].Survived = false
				res.Arms[i].EliminatedInRound = round
				aliveCount--
			}
		}
		if cfg.Budget > 0 && res.TotalMeasurements >= cfg.Budget {
			break
		}
	}

	// Survivors, best median first.
	type surv struct {
		name string
		med  float64
	}
	var ss []surv
	for i := range order {
		if alive[i] {
			ss = append(ss, surv{res.Arms[i].Name, median(res.Arms[i].Sample)})
		}
	}
	sort.SliceStable(ss, func(a, b int) bool { return ss[a].med < ss[b].med })
	for _, s := range ss {
		res.Survivors = append(res.Survivors, s.name)
	}
	return res, nil
}

// eliminateSerial is the legacy comparison stage: one shared comparator,
// arms scanned in index order, early break on the first Worse verdict. Race
// and RaceOn's non-Forker fallback both use it, so the two are
// bit-identical.
func eliminateSerial(cmp compare.Comparator, res *Result, alive []bool) ([]bool, error) {
	worse := make([]bool, len(alive))
	for i := range alive {
		if !alive[i] || len(res.Arms[i].Sample) == 0 {
			continue
		}
		for j := range alive {
			if i == j || !alive[j] || len(res.Arms[j].Sample) == 0 {
				continue
			}
			o, err := cmp.Compare(res.Arms[i].Sample, res.Arms[j].Sample)
			if err != nil {
				return nil, fmt.Errorf("search: comparing %s vs %s: %w",
					res.Arms[i].Name, res.Arms[j].Name, err)
			}
			if o == compare.Worse {
				worse[i] = true
				break
			}
		}
	}
	return worse, nil
}

// raceSeedDomain separates the race's keyed streams from every other
// consumer of a shared seed (ASCII "race").
const raceSeedDomain = 0x72616365

// eliminateParallel evaluates every ordered pair of surviving arms on an
// independent comparator forked from a stream keyed by (Seed, round, i, j),
// fanned out over the shared budget (or a transient pool of cfg.Workers
// goroutines), then reduces the outcomes in index order. Because each
// pair's verdict depends only on its key — never on scheduling or on the
// verdicts of other pairs — the result is bit-identical at any worker
// count. Unlike the serial stage it has no early break: all pairs are
// evaluated, which is what makes them independent units.
func eliminateParallel(ctx context.Context, forker compare.Forker, sortedOK bool, res *Result, alive []bool, round int, cfg Config, budget *pool.Pool) ([]bool, error) {
	n := len(alive)
	type pair struct{ i, j int }
	var pairs []pair
	for i := 0; i < n; i++ {
		if !alive[i] || len(res.Arms[i].Sample) == 0 {
			continue
		}
		for j := 0; j < n; j++ {
			if i == j || !alive[j] || len(res.Arms[j].Sample) == 0 {
				continue
			}
			pairs = append(pairs, pair{i, j})
		}
	}
	// When the forks consume sorted views, sort each surviving arm's sample
	// once for the whole round instead of once per pair per fork
	// (CompareSorted is bit-identical to Compare, so outcomes are
	// unchanged). The views are round-local: samples grow every round.
	var sorted []*stats.SortedSample
	if sortedOK {
		sorted = make([]*stats.SortedSample, n)
		for _, pr := range pairs {
			for _, i := range [2]int{pr.i, pr.j} {
				if sorted[i] == nil {
					sorted[i] = stats.NewSortedSample(res.Arms[i].Sample)
				}
			}
		}
	}
	roundSeed := xrand.Mix(xrand.Mix(cfg.Seed, raceSeedDomain), uint64(round))
	outcomes := make([]compare.Outcome, len(pairs))
	err := forEachPair(ctx, budget, len(pairs), cfg.Workers, func(k int) error {
		pr := pairs[k]
		c := forker.Fork(xrand.Mix(roundSeed, uint64(pr.i*n+pr.j)))
		var o compare.Outcome
		var err error
		if sc, ok := c.(compare.SortedComparator); ok && sorted != nil {
			o, err = sc.CompareSorted(sorted[pr.i], sorted[pr.j])
		} else {
			o, err = c.Compare(res.Arms[pr.i].Sample, res.Arms[pr.j].Sample)
		}
		if err != nil {
			return fmt.Errorf("search: comparing %s vs %s: %w",
				res.Arms[pr.i].Name, res.Arms[pr.j].Name, err)
		}
		outcomes[k] = o
		return nil
	})
	if err != nil {
		return nil, err
	}
	worse := make([]bool, n)
	for k, pr := range pairs {
		if outcomes[k] == compare.Worse {
			worse[pr.i] = true
		}
	}
	return worse, nil
}

// forEachPair routes the comparison fan-out through the shared budget when
// one is configured, and through a transient pool otherwise.
func forEachPair(ctx context.Context, budget *pool.Pool, n, workers int, fn func(k int) error) error {
	if budget != nil {
		return budget.ForEach(ctx, n, fn)
	}
	return pool.ForEachCtx(ctx, n, workers, fn)
}

// median of a sample (copy + nth element would be overkill at these sizes).
func median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	cp := append([]float64(nil), xs...)
	sort.Float64s(cp)
	n := len(cp)
	if n%2 == 1 {
		return cp[n/2]
	}
	return (cp[n/2-1] + cp[n/2]) / 2
}
