package search

import (
	"context"
	"reflect"
	"sync/atomic"
	"testing"

	"relperf/internal/compare"
	"relperf/internal/pool"
	"relperf/internal/xrand"
)

// deterministicArms builds a fresh candidate set whose measurements depend
// only on (seed, arm index, call count) — the measurement stage is serial,
// so every race over these arms observes identical samples.
func deterministicArms(seed uint64) []Arm {
	specs := []struct {
		name string
		med  float64
	}{
		{"fast", 1.0}, {"midA", 1.3}, {"midB", 1.32}, {"slow", 2.2},
	}
	arms := make([]Arm, len(specs))
	for i, sp := range specs {
		rng := xrand.NewKeyed(seed, uint64(i))
		med := sp.med
		arms[i] = Arm{Name: sp.name, Measure: func() (float64, error) {
			return med * rng.LogNormal(0, 0.1), nil
		}}
	}
	return arms
}

// TestRaceOnDeterministicAcrossWorkers: the parallel comparison stage must
// give bit-identical Results at Workers=1 vs 8, and on a shared pool
// budget, for both a stochastic Forker (bootstrap) and a deterministic one
// (KS).
func TestRaceOnDeterministicAcrossWorkers(t *testing.T) {
	comparators := map[string]func() compare.Comparator{
		"bootstrap": func() compare.Comparator { return compare.NewBootstrap(99) },
		"ks":        func() compare.Comparator { return compare.KS{} },
	}
	for name, mk := range comparators {
		t.Run(name, func(t *testing.T) {
			run := func(workers int, budget *pool.Pool) *Result {
				cfg := Config{RoundSize: 12, MaxRounds: 5, Seed: 7, Workers: workers}
				res, err := RaceOn(context.Background(), deterministicArms(3), mk(), cfg, budget)
				if err != nil {
					t.Fatal(err)
				}
				return res
			}
			serial := run(1, nil)
			wide := run(8, nil)
			budgeted := run(0, pool.NewPool(8))
			if !reflect.DeepEqual(serial, wide) {
				t.Fatalf("Workers=1 vs 8 diverged:\n%+v\nvs\n%+v", serial, wide)
			}
			if !reflect.DeepEqual(serial, budgeted) {
				t.Fatal("private pool vs shared budget diverged")
			}
			if len(serial.Survivors) == 0 || serial.Survivors[0] != "fast" {
				t.Fatalf("survivors = %v, want fast first", serial.Survivors)
			}
			for _, a := range serial.Arms {
				if a.Name == "slow" && a.Survived {
					t.Fatal("slow arm survived the race")
				}
			}
		})
	}
}

// serialProbe wraps a comparator, counting in-flight Compare calls; it does
// NOT implement compare.Forker, so RaceOn must take the serial fallback and
// the in-flight count must never exceed one.
type serialProbe struct {
	inner      compare.Comparator
	inFlight   atomic.Int32
	overlapped atomic.Bool
	calls      atomic.Int32
}

func (p *serialProbe) Compare(a, b []float64) (compare.Outcome, error) {
	if p.inFlight.Add(1) > 1 {
		p.overlapped.Store(true)
	}
	defer p.inFlight.Add(-1)
	p.calls.Add(1)
	return p.inner.Compare(a, b)
}

// TestRaceOnNonForkerFallsBackToSerial: racing with a comparator that
// cannot fork must (a) never invoke it concurrently and (b) produce exactly
// the Result of the legacy serial Race with an identically-seeded
// comparator.
func TestRaceOnNonForkerFallsBackToSerial(t *testing.T) {
	cfg := Config{RoundSize: 10, MaxRounds: 4, Workers: 8}
	probe := &serialProbe{inner: compare.NewBootstrap(5)}
	got, err := RaceOn(context.Background(), deterministicArms(11), probe, cfg, pool.NewPool(8))
	if err != nil {
		t.Fatal(err)
	}
	if probe.overlapped.Load() {
		t.Fatal("non-Forker comparator was invoked concurrently")
	}
	if probe.calls.Load() == 0 {
		t.Fatal("probe never invoked")
	}
	want, err := Race(deterministicArms(11), &serialProbe{inner: compare.NewBootstrap(5)}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("serial fallback diverged from Race:\n%+v\nvs\n%+v", got, want)
	}
}

// TestRaceOnCancellation: a cancelled context aborts the race with the
// context's error, never a partial result.
func TestRaceOnCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := RaceOn(ctx, deterministicArms(1), compare.NewBootstrap(1), Config{}, nil)
	if err == nil || res != nil {
		t.Fatalf("cancelled race returned (%v, %v), want error", res, err)
	}
}

// TestRaceOnComparatorError: a failing pair surfaces its error from the
// parallel stage.
func TestRaceOnComparatorError(t *testing.T) {
	cfg := Config{RoundSize: 4, MaxRounds: 2}
	bad := badForker{}
	if _, err := RaceOn(context.Background(), deterministicArms(2), bad, cfg, nil); err == nil {
		t.Fatal("comparator error lost in the parallel stage")
	}
}

type badForker struct{}

func (badForker) Compare(a, b []float64) (compare.Outcome, error) {
	return compare.Equivalent, compare.ErrBadSample
}
func (f badForker) Fork(uint64) compare.Comparator { return f }
