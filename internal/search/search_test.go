package search

import (
	"errors"
	"testing"

	"relperf/internal/compare"
	"relperf/internal/sim"
	"relperf/internal/workload"
	"relperf/internal/xrand"
)

// syntheticArm returns an arm drawing log-normal times around a median.
func syntheticArm(name string, rng *xrand.Rand, med, sigma float64) Arm {
	return Arm{
		Name: name,
		Measure: func() (float64, error) {
			return med * rng.LogNormal(0, sigma), nil
		},
	}
}

func TestRaceFindsFastArm(t *testing.T) {
	rng := xrand.New(1)
	arms := []Arm{
		syntheticArm("slow1", rng.Split(), 2.0, 0.05),
		syntheticArm("fast", rng.Split(), 1.0, 0.05),
		syntheticArm("slow2", rng.Split(), 3.0, 0.05),
	}
	res, err := Race(arms, compare.NewBootstrap(2), Config{RoundSize: 10, MaxRounds: 5})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Survivors) != 1 || res.Survivors[0] != "fast" {
		t.Fatalf("survivors = %v", res.Survivors)
	}
	// The slow arms must have been eliminated early, saving measurements.
	for _, a := range res.Arms {
		if a.Name != "fast" && a.EliminatedInRound == 0 {
			t.Fatalf("%s never eliminated", a.Name)
		}
		if a.Name != "fast" && a.Measurements >= res.TotalMeasurements/2 {
			t.Fatalf("%s consumed too much budget: %d of %d", a.Name, a.Measurements, res.TotalMeasurements)
		}
	}
}

func TestRaceKeepsEquivalentArms(t *testing.T) {
	rng := xrand.New(3)
	arms := []Arm{
		syntheticArm("a", rng.Split(), 1.0, 0.1),
		syntheticArm("b", rng.Split(), 1.0, 0.1),
		syntheticArm("slow", rng.Split(), 2.0, 0.1),
	}
	res, err := Race(arms, compare.NewBootstrap(4), Config{RoundSize: 15, MaxRounds: 6, Keep: 1})
	if err != nil {
		t.Fatal(err)
	}
	// The slow arm must go; the survivors must come from the equivalent
	// pair. Whether ONE or BOTH of a/b survive depends on the sampling
	// realization — equivalent algorithms separate by luck with finite
	// samples, which is exactly the nondeterminism the paper's relative
	// scores quantify — so only the invariant part is asserted, and the
	// both-survive case must occur within a few seeds.
	bothSurvivedOnce := false
	for seed := uint64(4); seed < 12; seed++ {
		r, err := Race(arms, compare.NewBootstrap(seed), Config{RoundSize: 15, MaxRounds: 6, Keep: 1})
		if err != nil {
			t.Fatal(err)
		}
		for _, s := range r.Survivors {
			if s == "slow" {
				t.Fatal("slow arm survived")
			}
		}
		if len(r.Survivors) == 2 {
			bothSurvivedOnce = true
			break
		}
	}
	if !bothSurvivedOnce {
		t.Fatal("equivalent arms never co-survived across seeds")
	}
	for _, s := range res.Survivors {
		if s == "slow" {
			t.Fatal("slow arm survived")
		}
	}
}

func TestRaceSavesMeasurementsVsExhaustive(t *testing.T) {
	// Racing the 8 Table-I placements must use fewer measurements than the
	// exhaustive campaign (8 × N at the same terminal precision) while
	// still surfacing DDA.
	plat := workload.TableIPlatform()
	prog := workload.TableI(10, plat.Accel.PeakFlops)
	s, err := sim.NewSimulator(plat, 5)
	if err != nil {
		t.Fatal(err)
	}
	var arms []Arm
	for _, pl := range sim.EnumeratePlacements(3) {
		pl := pl
		arms = append(arms, Arm{
			Name: pl.String(),
			Measure: func() (float64, error) {
				return s.Seconds(prog, pl)
			},
		})
	}
	res, err := Race(arms, compare.NewBootstrap(6), Config{RoundSize: 10, MaxRounds: 6})
	if err != nil {
		t.Fatal(err)
	}
	exhaustive := 8 * 60 // 8 placements × the racer's max per-arm budget
	if res.TotalMeasurements >= exhaustive {
		t.Fatalf("racing used %d measurements, exhaustive needs %d", res.TotalMeasurements, exhaustive)
	}
	// DDA must be among the survivors.
	found := false
	for _, name := range res.Survivors {
		if name == "DDA" {
			found = true
		}
	}
	if !found {
		t.Fatalf("DDA not among survivors %v", res.Survivors)
	}
}

func TestRacePriorSubset(t *testing.T) {
	rng := xrand.New(7)
	arms := []Arm{
		{Name: "bad-prior", Prior: 9, Measure: func() (float64, error) { return 1, nil }},
		syntheticArm("good1", rng.Split(), 1.0, 0.05),
		syntheticArm("good2", rng.Split(), 1.2, 0.05),
	}
	arms[1].Prior = 1
	arms[2].Prior = 2
	res, err := Race(arms, compare.NewBootstrap(8), Config{RoundSize: 8, MaxRounds: 4, MaxArms: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.SkippedArms != 1 {
		t.Fatalf("skipped = %d", res.SkippedArms)
	}
	for _, a := range res.Arms {
		if a.Name == "bad-prior" {
			t.Fatal("bad-prior arm was raced despite MaxArms")
		}
	}
	if res.Survivors[0] != "good1" {
		t.Fatalf("survivors = %v", res.Survivors)
	}
}

func TestRaceBudget(t *testing.T) {
	rng := xrand.New(9)
	arms := []Arm{
		syntheticArm("a", rng.Split(), 1.0, 0.3),
		syntheticArm("b", rng.Split(), 1.01, 0.3),
	}
	res, err := Race(arms, compare.NewBootstrap(10), Config{RoundSize: 10, MaxRounds: 100, Budget: 55})
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalMeasurements > 55 {
		t.Fatalf("budget exceeded: %d", res.TotalMeasurements)
	}
}

func TestRaceErrors(t *testing.T) {
	if _, err := Race(nil, compare.NewBootstrap(1), Config{}); err == nil {
		t.Fatal("empty arms accepted")
	}
	if _, err := Race([]Arm{{Name: "x"}}, nil, Config{}); err == nil {
		t.Fatal("nil comparator accepted")
	}
	boom := errors.New("boom")
	bad := []Arm{
		{Name: "x", Measure: func() (float64, error) { return 0, boom }},
		{Name: "y", Measure: func() (float64, error) { return 1, nil }},
	}
	if _, err := Race(bad, compare.NewBootstrap(1), Config{}); !errors.Is(err, boom) {
		t.Fatal("measurement error lost")
	}
}

func TestRaceSingleArm(t *testing.T) {
	arms := []Arm{{Name: "only", Measure: func() (float64, error) { return 1, nil }}}
	res, err := Race(arms, compare.NewBootstrap(1), Config{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Survivors) != 1 || res.Survivors[0] != "only" {
		t.Fatalf("survivors = %v", res.Survivors)
	}
	if res.Rounds != 0 {
		t.Fatalf("rounds = %d, want 0 (already at Keep)", res.Rounds)
	}
}

func TestMedianHelper(t *testing.T) {
	if median(nil) != 0 {
		t.Fatal("empty median")
	}
	if median([]float64{3, 1, 2}) != 2 {
		t.Fatal("odd median")
	}
	if median([]float64{1, 2, 3, 4}) != 2.5 {
		t.Fatal("even median")
	}
}
