package wal

import (
	"time"

	"relperf/internal/obs"
)

// Metrics bundles the WAL's instruments. Create one per registry with
// NewMetrics and attach it to a log with SetMetrics after recovery —
// the same ordering as SetWAL, so replay work is counted once, as
// recovery, never as live appends. A nil *Metrics (the default on every
// Log) records nothing.
type Metrics struct {
	reg           *obs.Registry
	appends       *obs.Counter
	appendErrors  *obs.Counter
	truncations   *obs.Counter
	replayed      *obs.Counter
	appendSeconds *obs.Histogram
	fsyncSeconds  *obs.Histogram
}

// NewMetrics registers the WAL series on reg. Nil reg yields a Metrics
// whose instruments are all no-ops, which keeps call sites branch-free.
func NewMetrics(reg *obs.Registry) *Metrics {
	return &Metrics{
		reg: reg,
		appends: reg.Counter("wal_appends_total",
			"Records durably appended (fsync completed)."),
		appendErrors: reg.Counter("wal_append_errors_total",
			"Appends that failed and were rolled back."),
		truncations: reg.Counter("wal_truncations_total",
			"Torn tails truncated during open-time recovery."),
		replayed: reg.Counter("wal_replayed_records_total",
			"Records recovered and replayed at open."),
		appendSeconds: reg.Histogram("wal_append_seconds",
			"Full append latency: encode, write, fsync.", nil),
		fsyncSeconds: reg.Histogram("wal_fsync_seconds",
			"fsync portion of append latency.", nil),
	}
}

// recordAppend observes one append outcome (nil-safe).
func (m *Metrics) recordAppend(d time.Duration, err error) {
	if m == nil {
		return
	}
	if err != nil {
		m.appendErrors.Inc()
		return
	}
	m.appends.Inc()
	m.appendSeconds.Observe(d.Seconds())
}

// recordFsync observes one successful fsync (nil-safe).
func (m *Metrics) recordFsync(d time.Duration) {
	if m == nil {
		return
	}
	m.fsyncSeconds.Observe(d.Seconds())
}

// SetMetrics attaches instruments to the log: future appends are timed
// and counted, the open-time recovery outcome (records replayed, tail
// truncated) is folded into the counters, and the log's durable size is
// exported as a gauge. Attach once, after Open, before traffic.
func (l *Log) SetMetrics(m *Metrics) {
	l.metrics.Store(m)
	if m == nil {
		return
	}
	if l.recoveredTruncation {
		m.truncations.Inc()
	}
	if l.recoveredRecords > 0 {
		m.replayed.Add(uint64(l.recoveredRecords))
	}
	m.reg.GaugeFunc("wal_size_bytes", "Durable log size in bytes.",
		func() float64 { return float64(l.Size()) })
}
