package wal

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"relperf/internal/faultpoint"
)

func testRecord(i int) Record {
	return Record{
		Type:        TypeResult,
		Fingerprint: fmt.Sprintf("%032x", i),
		Data:        json.RawMessage(fmt.Sprintf(`{"i":%d,"pad":"%064d"}`, i, i)),
	}
}

// writeLog creates a log at path with n records and returns the records.
func writeLog(t *testing.T, path string, seed uint64, n int) []Record {
	t.Helper()
	l, recs, err := Open(path, seed, t.Logf)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 0 {
		t.Fatalf("fresh log replayed %d records", len(recs))
	}
	want := make([]Record, n)
	for i := range want {
		want[i] = testRecord(i)
		if err := l.Append(want[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	return want
}

func TestAppendReplayRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	want := writeLog(t, path, 7, 5)

	l, got, err := Open(path, 7, t.Logf)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("replay mismatch:\n got %+v\nwant %+v", got, want)
	}
	// Appends continue after recovery and a third open sees everything.
	extra := testRecord(99)
	if err := l.Append(extra); err != nil {
		t.Fatal(err)
	}
	l.Close()
	l2, got2, err := Open(path, 7, t.Logf)
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if len(got2) != 6 || !reflect.DeepEqual(got2[5], extra) {
		t.Fatalf("after append+reopen got %d records", len(got2))
	}
}

func TestSeedMismatchRefused(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	writeLog(t, path, 7, 2)
	if _, _, err := Open(path, 8, t.Logf); err == nil {
		t.Fatal("log written under seed 7 opened under seed 8")
	}
}

func TestResetCompacts(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	l, _, err := Open(path, 7, t.Logf)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if err := l.Append(testRecord(i)); err != nil {
			t.Fatal(err)
		}
	}
	grown := l.Size()
	if err := l.Reset(7); err != nil {
		t.Fatal(err)
	}
	if l.Size() >= grown {
		t.Fatalf("Reset did not shrink the log: %d -> %d", grown, l.Size())
	}
	// Post-reset appends land on the fresh header.
	if err := l.Append(testRecord(5)); err != nil {
		t.Fatal(err)
	}
	l.Close()
	_, recs, err := Open(path, 7, t.Logf)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 || recs[0].Fingerprint != testRecord(5).Fingerprint {
		t.Fatalf("after reset+append, replay = %+v", recs)
	}
}

// TestCompactToKeepsPostCutRecords is the lost-update regression: records
// appended after the snapshot's cut point was captured must survive
// compaction — CompactTo drops exactly the absorbed prefix, never an
// acknowledged tail.
func TestCompactToKeepsPostCutRecords(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	l, _, err := Open(path, 7, t.Logf)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if err := l.Append(testRecord(i)); err != nil {
			t.Fatal(err)
		}
	}
	cut := l.Size()
	// These land between "snapshot captured" and "log compacted" — the
	// window the checkpoint race lived in.
	late := []Record{testRecord(100), testRecord(101)}
	for _, rec := range late {
		if err := l.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	grown := l.Size()
	if err := l.CompactTo(cut, 7); err != nil {
		t.Fatal(err)
	}
	if l.Size() >= grown {
		t.Fatalf("CompactTo did not shrink the log: %d -> %d", grown, l.Size())
	}
	// Post-compaction appends land on the rewritten file.
	extra := testRecord(102)
	if err := l.Append(extra); err != nil {
		t.Fatal(err)
	}
	l.Close()
	_, recs, err := Open(path, 7, t.Logf)
	if err != nil {
		t.Fatal(err)
	}
	want := append(late, extra)
	if !reflect.DeepEqual(recs, want) {
		t.Fatalf("after compaction, replay =\n %+v\nwant\n %+v", recs, want)
	}
}

// TestCompactToEmptyTail: compacting at the current size leaves a
// header-only log, the Reset equivalent.
func TestCompactToEmptyTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	l, _, err := Open(path, 7, t.Logf)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := l.Append(testRecord(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.CompactTo(l.Size(), 7); err != nil {
		t.Fatal(err)
	}
	l.Close()
	_, recs, err := Open(path, 7, t.Logf)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 0 {
		t.Fatalf("full compaction left %d records", len(recs))
	}
}

// TestCompactToRenameFaultLeavesLogIntact: a compaction that fails before
// its rename leaves the old log whole (every record still recoverable),
// no .compact litter, and the log still appendable.
func TestCompactToRenameFaultLeavesLogIntact(t *testing.T) {
	t.Cleanup(faultpoint.Reset)
	path := filepath.Join(t.TempDir(), "wal.log")
	l, _, err := Open(path, 7, t.Logf)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := l.Append(testRecord(i)); err != nil {
			t.Fatal(err)
		}
	}
	cut := l.Size()
	faultpoint.Arm("wal.compact.rename", faultpoint.Error, 1)
	if err := l.CompactTo(cut, 7); !errors.Is(err, faultpoint.ErrInjected) {
		t.Fatalf("compaction under injected rename fault = %v, want injected error", err)
	}
	if _, err := os.Stat(path + ".compact"); !errors.Is(err, os.ErrNotExist) {
		t.Fatal("failed compaction left a .compact file behind")
	}
	if err := l.Append(testRecord(3)); err != nil {
		t.Fatalf("append after failed compaction: %v", err)
	}
	l.Close()
	_, recs, err := Open(path, 7, t.Logf)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 4 {
		t.Fatalf("failed compaction lost records: replayed %d, want 4", len(recs))
	}
}

func TestAppendSyncFaultRollsBack(t *testing.T) {
	t.Cleanup(faultpoint.Reset)
	path := filepath.Join(t.TempDir(), "wal.log")
	l, _, err := Open(path, 7, t.Logf)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Append(testRecord(0)); err != nil {
		t.Fatal(err)
	}
	before := l.Size()
	faultpoint.Arm("wal.append.sync", faultpoint.Error, 1)
	if err := l.Append(testRecord(1)); !errors.Is(err, faultpoint.ErrInjected) {
		t.Fatalf("append under failed fsync = %v, want injected error", err)
	}
	if l.Size() != before {
		t.Fatalf("failed append moved the durable size: %d -> %d", before, l.Size())
	}
	// The failed record must be invisible to recovery and the log usable.
	if err := l.Append(testRecord(2)); err != nil {
		t.Fatal(err)
	}
	l.Close()
	_, recs, err := Open(path, 7, t.Logf)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 || recs[1].Fingerprint != testRecord(2).Fingerprint {
		t.Fatalf("replay after failed append = %+v", recs)
	}
}

func TestAppendWriteFaultInjectsError(t *testing.T) {
	t.Cleanup(faultpoint.Reset)
	path := filepath.Join(t.TempDir(), "wal.log")
	l, _, err := Open(path, 7, t.Logf)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	faultpoint.Arm("wal.append.write", faultpoint.Error, 1)
	if err := l.Append(testRecord(0)); !errors.Is(err, faultpoint.ErrInjected) {
		t.Fatalf("append = %v, want injected error", err)
	}
	if err := l.Append(testRecord(0)); err != nil {
		t.Fatalf("append after disarm: %v", err)
	}
}

// TestTornTailRecoveryProperty is the crash-consistency property test:
// whatever random truncation or bit-flip lands on the file, Open must
// never panic, must recover a strict prefix of the appended records, and
// must leave a log that accepts appends and round-trips them.
func TestTornTailRecoveryProperty(t *testing.T) {
	dir := t.TempDir()
	base := filepath.Join(dir, "base.log")
	want := writeLog(t, base, 7, 8)
	clean, err := os.ReadFile(base)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 200; trial++ {
		b := append([]byte(nil), clean...)
		if trial%2 == 0 {
			b = b[:rng.Intn(len(b)+1)] // torn tail: crash mid-write
		} else {
			b[rng.Intn(len(b))] ^= 1 << rng.Intn(8) // media corruption
		}
		path := filepath.Join(dir, "trial.log")
		if err := os.WriteFile(path, b, 0o644); err != nil {
			t.Fatal(err)
		}
		// Every corruption is CRC-detectable (the checksum covers each
		// payload, header included), so recovery must always succeed —
		// worst case by truncating back to an empty log.
		l, recs, err := Open(path, 7, func(string, ...any) {})
		if err != nil {
			t.Fatalf("trial %d: Open failed: %v", trial, err)
		}
		if len(recs) > len(want) {
			t.Fatalf("trial %d: recovered %d records from %d appended", trial, len(recs), len(want))
		}
		for i, rec := range recs {
			if !reflect.DeepEqual(rec, want[i]) {
				t.Fatalf("trial %d: record %d mutated:\n got %+v\nwant %+v", trial, i, rec, want[i])
			}
		}
		// Recovery leaves a working log: append, reopen, see prefix+1.
		extra := testRecord(1000 + trial)
		if err := l.Append(extra); err != nil {
			t.Fatalf("trial %d: append after recovery: %v", trial, err)
		}
		l.Close()
		_, recs2, err := Open(path, 7, func(string, ...any) {})
		if err != nil {
			t.Fatalf("trial %d: reopen after recovery: %v", trial, err)
		}
		if len(recs2) != len(recs)+1 || !reflect.DeepEqual(recs2[len(recs)], extra) {
			t.Fatalf("trial %d: reopen saw %d records, want %d", trial, len(recs2), len(recs)+1)
		}
	}
}

// FuzzWALDecode asserts the frame decoder never panics and that decoding
// is a re-encode fixed point: re-framing the recovered payloads and
// decoding again yields the identical payloads, cleanly.
func FuzzWALDecode(f *testing.F) {
	var valid []byte
	for i := 0; i < 3; i++ {
		p, _ := json.Marshal(testRecord(i))
		valid = AppendFrame(valid, p)
	}
	f.Add(valid)
	f.Add(valid[:len(valid)-3])          // torn tail
	f.Add([]byte{})                      // empty
	f.Add([]byte("not a wal at all"))    // garbage
	f.Add(AppendFrame(nil, []byte("x"))) // single tiny frame
	f.Fuzz(func(t *testing.T, b []byte) {
		payloads, clean, bad := DecodeFrames(b)
		if clean > len(b) || clean < 0 {
			t.Fatalf("clean prefix %d out of range for %d bytes", clean, len(b))
		}
		if bad == nil && clean != len(b) {
			t.Fatalf("clean parse consumed %d of %d bytes", clean, len(b))
		}
		var again []byte
		for _, p := range payloads {
			again = AppendFrame(again, p)
		}
		payloads2, clean2, bad2 := DecodeFrames(again)
		if bad2 != nil {
			t.Fatalf("re-encoded frames do not decode: %v", bad2)
		}
		if clean2 != len(again) || len(payloads2) != len(payloads) {
			t.Fatalf("re-encode changed shape: %d/%d payloads", len(payloads2), len(payloads))
		}
		for i := range payloads {
			if !bytes.Equal(payloads[i], payloads2[i]) {
				t.Fatalf("payload %d changed across re-encode", i)
			}
		}
	})
}
