// Package wal is the durable write-ahead journal of the control plane: an
// append-only, per-record-checksummed, fsync'd log of control-plane events
// (spec retained, result merged, task dispatched) that the fleet store and
// the grid coordinator write before acking anything — so a `kill -9` at
// any instant loses at most the record being appended, never one that was
// acknowledged.
//
// On-disk format: a sequence of frames, each
//
//	uint32 LE payload length | uint32 LE CRC32-IEEE(payload) | payload
//
// The first frame is a header record pinning the schema and the suite
// seed; a log written under one seed refuses to open under another (the
// fingerprints it names would address different bytes). Recovery reads
// frames until the first bad one — a length that overruns the file, an
// oversized length, or a checksum mismatch — and truncates there, loudly:
// a torn tail (the crash landed mid-append) costs exactly the un-acked
// suffix. Compaction is Reset: once a snapshot has durably absorbed the
// log's events, the log truncates back to its header.
package wal

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sync"

	"relperf/internal/faultpoint"
)

// Schema identifies the header record of a v1 log.
const Schema = "relperf/wal/v1"

// Record types written by the control plane.
const (
	// TypeSpec is a retained declarative study spec (Data: spec JSON).
	TypeSpec = "spec"
	// TypeResult is a merged study result (Data: canonical result JSON).
	TypeResult = "result"
	// TypeTask is a grid dispatch journal entry (Data: TaskRecord JSON).
	TypeTask = "task"
)

// frameOverhead is the per-record framing cost: length + CRC.
const frameOverhead = 8

// maxPayload bounds one record; a recovered length beyond it is treated
// as corruption, not as an instruction to allocate gigabytes.
const maxPayload = 64 << 20

// Record is one logged control-plane event.
type Record struct {
	// Type tags the event (TypeSpec, TypeResult, TypeTask).
	Type string `json:"type"`
	// Fingerprint is the study the event concerns, when it concerns one.
	Fingerprint string `json:"fp,omitempty"`
	// Data is the event payload, verbatim (spec JSON, result JSON, task
	// record JSON).
	Data json.RawMessage `json:"data,omitempty"`
}

// header is the first record of every log.
type header struct {
	Schema string `json:"schema"`
	Seed   uint64 `json:"seed"`
}

// AppendFrame appends one framed payload to buf and returns the extended
// slice. Exported for the decoder's tests and fuzzer.
func AppendFrame(buf, payload []byte) []byte {
	var hdr [frameOverhead]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:8], crc32.ChecksumIEEE(payload))
	buf = append(buf, hdr[:]...)
	return append(buf, payload...)
}

// DecodeFrames parses b as a frame sequence. It returns the decoded
// payloads, the length of the clean prefix, and a non-nil description of
// the first bad frame (nil when the whole buffer parsed). It never
// panics, whatever the input — the torn-tail recovery and the fuzzer both
// lean on that.
func DecodeFrames(b []byte) (payloads [][]byte, clean int, bad error) {
	off := 0
	for off < len(b) {
		if len(b)-off < frameOverhead {
			return payloads, off, fmt.Errorf("wal: torn frame header at offset %d (%d trailing bytes)", off, len(b)-off)
		}
		n := int(binary.LittleEndian.Uint32(b[off : off+4]))
		sum := binary.LittleEndian.Uint32(b[off+4 : off+8])
		if n > maxPayload {
			return payloads, off, fmt.Errorf("wal: frame at offset %d claims %d bytes (corrupt length)", off, n)
		}
		if len(b)-off-frameOverhead < n {
			return payloads, off, fmt.Errorf("wal: torn frame at offset %d (%d byte payload, %d available)", off, n, len(b)-off-frameOverhead)
		}
		payload := b[off+frameOverhead : off+frameOverhead+n]
		if crc32.ChecksumIEEE(payload) != sum {
			return payloads, off, fmt.Errorf("wal: checksum mismatch at offset %d", off)
		}
		payloads = append(payloads, payload)
		off += frameOverhead + n
	}
	return payloads, off, nil
}

// Log is an open write-ahead log. Safe for concurrent use.
type Log struct {
	mu   sync.Mutex
	f    *os.File
	path string
	size int64 // clean length: end of the last durable frame
}

// Open opens (or creates) the log at path for the given suite seed,
// recovering its records. A torn tail is truncated in place and reported
// through logf; a header written under a different seed is an error. The
// returned records are the recovered events, oldest first — the caller
// replays them before attaching the log to live components, so replayed
// events are not re-journaled.
func Open(path string, seed uint64, logf func(format string, args ...any)) (*Log, []Record, error) {
	if logf == nil {
		logf = func(string, ...any) {}
	}
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, nil, fmt.Errorf("wal: opening %s: %w", path, err)
	}
	b, err := io.ReadAll(f)
	if err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("wal: reading %s: %w", path, err)
	}
	payloads, clean, bad := DecodeFrames(b)

	// Parse the header and records off the clean frames. A clean frame
	// whose payload does not parse back is corruption the CRC could not
	// see (it guards the frame, not our encoding); treat it exactly like
	// a torn tail — keep the prefix, truncate the rest, shout.
	var recs []Record
	truncateAt := int64(-1)
	var hdr header
	off := 0
	for i, p := range payloads {
		if i == 0 {
			if err := json.Unmarshal(p, &hdr); err != nil || hdr.Schema != Schema {
				bad = fmt.Errorf("wal: %s has no valid header (treating as empty)", path)
				truncateAt = 0
				break
			}
			if hdr.Seed != seed {
				f.Close()
				return nil, nil, fmt.Errorf("wal: %s was written under seed %d, log opens under seed %d", path, hdr.Seed, seed)
			}
			off += frameOverhead + len(p)
			continue
		}
		var rec Record
		if err := json.Unmarshal(p, &rec); err != nil {
			bad = fmt.Errorf("wal: record %d in %s does not parse: %v", i, path, err)
			truncateAt = int64(off)
			break
		}
		recs = append(recs, rec)
		off += frameOverhead + len(p)
	}
	if truncateAt < 0 {
		truncateAt = int64(clean)
	}

	l := &Log{f: f, path: path, size: truncateAt}
	if bad != nil {
		logf("wal: RECOVERY %s: %v — truncating to last durable record at byte %d (%d records kept, %d bytes dropped)",
			path, bad, truncateAt, len(recs), int64(len(b))-truncateAt)
		if err := f.Truncate(truncateAt); err != nil {
			f.Close()
			return nil, nil, fmt.Errorf("wal: truncating torn tail of %s: %w", path, err)
		}
		if err := f.Sync(); err != nil {
			f.Close()
			return nil, nil, fmt.Errorf("wal: syncing truncated %s: %w", path, err)
		}
	}
	// Truncate does not move the file offset (ReadAll left it at the old
	// EOF), so position explicitly at the durable end before any write.
	if _, err := f.Seek(l.size, io.SeekStart); err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("wal: seeking %s: %w", path, err)
	}
	if l.size == 0 {
		// Fresh (or headerless) log: write the header frame.
		if err := l.writeHeader(seed); err != nil {
			f.Close()
			return nil, nil, err
		}
		if err := syncDir(path); err != nil {
			f.Close()
			return nil, nil, err
		}
		return l, nil, nil
	}
	return l, recs, nil
}

// writeHeader writes the header frame at the current size (0) and syncs.
// The caller holds no lock yet (Open) or the lock (Reset).
func (l *Log) writeHeader(seed uint64) error {
	p, err := json.Marshal(header{Schema: Schema, Seed: seed})
	if err != nil {
		return err
	}
	frame := AppendFrame(nil, p)
	if _, err := l.f.Write(frame); err != nil {
		return fmt.Errorf("wal: writing header of %s: %w", l.path, err)
	}
	if err := l.f.Sync(); err != nil {
		return fmt.Errorf("wal: syncing header of %s: %w", l.path, err)
	}
	l.size = int64(len(frame))
	return nil
}

// Append journals one record: frame, write, fsync — in that order, and
// only a completed fsync makes the append succeed. On any failure the
// file is rolled back to the last durable frame, so a failed append never
// leaves a half-record for recovery to trip on while the process lives.
// The wal.append.* faultpoints fire here.
func (l *Log) Append(rec Record) error {
	p, err := json.Marshal(&rec)
	if err != nil {
		return fmt.Errorf("wal: encoding record: %w", err)
	}
	if len(p) > maxPayload {
		return fmt.Errorf("wal: record of %d bytes exceeds the %d byte bound", len(p), maxPayload)
	}
	frame := AppendFrame(nil, p)

	l.mu.Lock()
	defer l.mu.Unlock()
	switch faultpoint.Fire("wal.append.write") {
	case faultpoint.Error:
		return fmt.Errorf("%w at wal.append.write", faultpoint.ErrInjected)
	case faultpoint.Crash:
		faultpoint.Kill("wal.append.write")
	case faultpoint.Tear:
		// The torn-write simulation: half the frame reaches the disk,
		// then the machine dies. Recovery must truncate exactly here.
		_, _ = l.f.Write(frame[:len(frame)/2])
		_ = l.f.Sync()
		faultpoint.Kill("wal.append.write(tear)")
	}
	if _, err := l.f.Write(frame); err != nil {
		l.rollback()
		return fmt.Errorf("wal: appending to %s: %w", l.path, err)
	}
	if err := faultpoint.Hit("wal.append.sync"); err != nil {
		l.rollback()
		return err
	}
	if err := l.f.Sync(); err != nil {
		l.rollback()
		return fmt.Errorf("wal: syncing %s: %w", l.path, err)
	}
	l.size += int64(len(frame))
	return nil
}

// rollback restores the file to the last durable frame after a failed
// append. Best effort — if even the truncate fails, the next Open's
// torn-tail recovery handles it.
func (l *Log) rollback() {
	_ = l.f.Truncate(l.size)
	_, _ = l.f.Seek(l.size, io.SeekStart)
}

// Reset compacts the log back to its header — called after a snapshot has
// durably absorbed every logged event. A crash between the snapshot's
// rename and this truncate is safe: the next recovery replays the log's
// events onto the snapshot, and replay is idempotent.
func (l *Log) Reset(seed uint64) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if err := l.f.Truncate(0); err != nil {
		return fmt.Errorf("wal: truncating %s: %w", l.path, err)
	}
	if _, err := l.f.Seek(0, io.SeekStart); err != nil {
		return fmt.Errorf("wal: seeking %s: %w", l.path, err)
	}
	l.size = 0
	return l.writeHeader(seed)
}

// Size returns the clean (durable) length in bytes.
func (l *Log) Size() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.size
}

// Path returns the log's file path.
func (l *Log) Path() string { return l.path }

// Close closes the underlying file.
func (l *Log) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.f.Close()
}

// syncDir fsyncs the directory containing path, making a freshly created
// file's existence itself durable.
func syncDir(path string) error {
	d, err := os.Open(filepath.Dir(path))
	if err != nil {
		return fmt.Errorf("wal: opening parent of %s: %w", path, err)
	}
	defer d.Close()
	if err := d.Sync(); err != nil {
		return fmt.Errorf("wal: syncing parent of %s: %w", path, err)
	}
	return nil
}
