// Package wal is the durable write-ahead journal of the control plane: an
// append-only, per-record-checksummed, fsync'd log of control-plane events
// (spec retained, result merged, task dispatched) that the fleet store and
// the grid coordinator write before acking anything — so a `kill -9` at
// any instant loses at most the record being appended, never one that was
// acknowledged.
//
// On-disk format: a sequence of frames, each
//
//	uint32 LE payload length | uint32 LE CRC32-IEEE(payload) | payload
//
// The first frame is a header record pinning the schema and the suite
// seed; a log written under one seed refuses to open under another (the
// fingerprints it names would address different bytes). Recovery reads
// frames until the first bad one — a length that overruns the file, an
// oversized length, or a checksum mismatch — and truncates there, loudly:
// a torn tail (the crash landed mid-append) costs exactly the un-acked
// suffix. Compaction is CompactTo: once a snapshot has durably absorbed
// the log's events up to a cut point, the log is rewritten (atomically,
// via rename) as a fresh header plus whatever was appended after the cut.
package wal

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"relperf/internal/faultpoint"
)

// Schema identifies the header record of a v1 log.
const Schema = "relperf/wal/v1"

// Record types written by the control plane.
const (
	// TypeSpec is a retained declarative study spec (Data: spec JSON).
	TypeSpec = "spec"
	// TypeResult is a merged study result (Data: canonical result JSON).
	TypeResult = "result"
	// TypeTask is a grid dispatch journal entry (Data: TaskRecord JSON).
	TypeTask = "task"
)

// frameOverhead is the per-record framing cost: length + CRC.
const frameOverhead = 8

// maxPayload bounds one record; a recovered length beyond it is treated
// as corruption, not as an instruction to allocate gigabytes.
const maxPayload = 64 << 20

// Record is one logged control-plane event.
type Record struct {
	// Type tags the event (TypeSpec, TypeResult, TypeTask).
	Type string `json:"type"`
	// Fingerprint is the study the event concerns, when it concerns one.
	Fingerprint string `json:"fp,omitempty"`
	// Data is the event payload, verbatim (spec JSON, result JSON, task
	// record JSON).
	Data json.RawMessage `json:"data,omitempty"`
}

// header is the first record of every log.
type header struct {
	Schema string `json:"schema"`
	Seed   uint64 `json:"seed"`
}

// AppendFrame appends one framed payload to buf and returns the extended
// slice. Exported for the decoder's tests and fuzzer.
func AppendFrame(buf, payload []byte) []byte {
	var hdr [frameOverhead]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:8], crc32.ChecksumIEEE(payload))
	buf = append(buf, hdr[:]...)
	return append(buf, payload...)
}

// DecodeFrames parses b as a frame sequence. It returns the decoded
// payloads, the length of the clean prefix, and a non-nil description of
// the first bad frame (nil when the whole buffer parsed). It never
// panics, whatever the input — the torn-tail recovery and the fuzzer both
// lean on that.
func DecodeFrames(b []byte) (payloads [][]byte, clean int, bad error) {
	off := 0
	for off < len(b) {
		if len(b)-off < frameOverhead {
			return payloads, off, fmt.Errorf("wal: torn frame header at offset %d (%d trailing bytes)", off, len(b)-off)
		}
		n := int(binary.LittleEndian.Uint32(b[off : off+4]))
		sum := binary.LittleEndian.Uint32(b[off+4 : off+8])
		if n > maxPayload {
			return payloads, off, fmt.Errorf("wal: frame at offset %d claims %d bytes (corrupt length)", off, n)
		}
		if len(b)-off-frameOverhead < n {
			return payloads, off, fmt.Errorf("wal: torn frame at offset %d (%d byte payload, %d available)", off, n, len(b)-off-frameOverhead)
		}
		payload := b[off+frameOverhead : off+frameOverhead+n]
		if crc32.ChecksumIEEE(payload) != sum {
			return payloads, off, fmt.Errorf("wal: checksum mismatch at offset %d", off)
		}
		payloads = append(payloads, payload)
		off += frameOverhead + n
	}
	return payloads, off, nil
}

// Log is an open write-ahead log. Safe for concurrent use.
type Log struct {
	mu   sync.Mutex
	f    *os.File
	path string
	size int64 // clean length: end of the last durable frame

	// Open-time recovery outcome, folded into the counters when
	// SetMetrics attaches (metrics usually wire up after recovery).
	recoveredTruncation bool
	recoveredRecords    int

	// metrics is an atomic pointer so Append can read it without
	// widening the lock window; nil means uninstrumented.
	metrics atomic.Pointer[Metrics]
}

// Open opens (or creates) the log at path for the given suite seed,
// recovering its records. A torn tail is truncated in place and reported
// through logf; a header written under a different seed is an error. The
// returned records are the recovered events, oldest first — the caller
// replays them before attaching the log to live components, so replayed
// events are not re-journaled.
//
// Recovery streams the file frame by frame rather than slurping it: a
// daemon without -snapshot-interval compacts only at shutdown, so after a
// crashy or long-running stretch the log can be far larger than the state
// it encodes, and startup memory must stay O(one frame + recovered
// records), not O(file size).
func Open(path string, seed uint64, logf func(format string, args ...any)) (*Log, []Record, error) {
	if logf == nil {
		logf = func(string, ...any) {}
	}
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, nil, fmt.Errorf("wal: opening %s: %w", path, err)
	}
	total := int64(0)
	if fi, err := f.Stat(); err == nil {
		total = fi.Size()
	}

	// One frame per iteration: read the 8-byte frame header, then the
	// payload, verify the CRC, parse. Any torn or corrupt frame — a header
	// or payload the file ends inside, an oversized length, a checksum
	// mismatch, or a clean frame whose payload does not parse back
	// (corruption the CRC could not see: it guards the frame, not our
	// encoding) — marks the truncation point; only a real read error fails
	// the open.
	br := bufio.NewReaderSize(f, 1<<16)
	var recs []Record
	var bad error
	var off int64
	first := true
	for bad == nil {
		var fh [frameOverhead]byte
		if _, err := io.ReadFull(br, fh[:]); err != nil {
			if err == io.EOF {
				break // clean end of log
			}
			if errors.Is(err, io.ErrUnexpectedEOF) {
				bad = fmt.Errorf("wal: torn frame header at offset %d (%d trailing bytes)", off, total-off)
				break
			}
			f.Close()
			return nil, nil, fmt.Errorf("wal: reading %s: %w", path, err)
		}
		n := int(binary.LittleEndian.Uint32(fh[0:4]))
		sum := binary.LittleEndian.Uint32(fh[4:8])
		if n > maxPayload {
			bad = fmt.Errorf("wal: frame at offset %d claims %d bytes (corrupt length)", off, n)
			break
		}
		payload := make([]byte, n)
		if _, err := io.ReadFull(br, payload); err != nil {
			if err == io.EOF || errors.Is(err, io.ErrUnexpectedEOF) {
				bad = fmt.Errorf("wal: torn frame at offset %d (%d byte payload, %d available)", off, n, total-off-frameOverhead)
				break
			}
			f.Close()
			return nil, nil, fmt.Errorf("wal: reading %s: %w", path, err)
		}
		if crc32.ChecksumIEEE(payload) != sum {
			bad = fmt.Errorf("wal: checksum mismatch at offset %d", off)
			break
		}
		if first {
			var hdr header
			if err := json.Unmarshal(payload, &hdr); err != nil || hdr.Schema != Schema {
				bad = fmt.Errorf("wal: %s has no valid header (treating as empty)", path)
				break
			}
			if hdr.Seed != seed {
				f.Close()
				return nil, nil, fmt.Errorf("wal: %s was written under seed %d, log opens under seed %d", path, hdr.Seed, seed)
			}
			first = false
		} else {
			var rec Record
			if err := json.Unmarshal(payload, &rec); err != nil {
				bad = fmt.Errorf("wal: record %d in %s does not parse: %v", len(recs)+1, path, err)
				break
			}
			recs = append(recs, rec)
		}
		off += int64(frameOverhead + n)
	}
	l := &Log{f: f, path: path, size: off}
	l.recoveredTruncation = bad != nil
	l.recoveredRecords = len(recs)
	if bad != nil {
		logf("wal: RECOVERY %s: %v — truncating to last durable record at byte %d (%d records kept, %d bytes dropped)",
			path, bad, off, len(recs), total-off)
		if err := f.Truncate(off); err != nil {
			f.Close()
			return nil, nil, fmt.Errorf("wal: truncating torn tail of %s: %w", path, err)
		}
		if err := f.Sync(); err != nil {
			f.Close()
			return nil, nil, fmt.Errorf("wal: syncing truncated %s: %w", path, err)
		}
	}
	// Truncate does not move the file offset (the streamed read left it
	// past the durable end), so position explicitly before any write.
	if _, err := f.Seek(l.size, io.SeekStart); err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("wal: seeking %s: %w", path, err)
	}
	if l.size == 0 {
		// Fresh (or headerless) log: write the header frame.
		if err := l.writeHeader(seed); err != nil {
			f.Close()
			return nil, nil, err
		}
		if err := syncDir(path); err != nil {
			f.Close()
			return nil, nil, err
		}
		return l, nil, nil
	}
	return l, recs, nil
}

// writeHeader writes the header frame at the current size (0) and syncs.
// The caller holds no lock yet (Open) or the lock (Reset).
func (l *Log) writeHeader(seed uint64) error {
	p, err := json.Marshal(header{Schema: Schema, Seed: seed})
	if err != nil {
		return err
	}
	frame := AppendFrame(nil, p)
	if _, err := l.f.Write(frame); err != nil {
		return fmt.Errorf("wal: writing header of %s: %w", l.path, err)
	}
	if err := l.f.Sync(); err != nil {
		return fmt.Errorf("wal: syncing header of %s: %w", l.path, err)
	}
	l.size = int64(len(frame))
	return nil
}

// Append journals one record: frame, write, fsync — in that order, and
// only a completed fsync makes the append succeed. On any failure the
// file is rolled back to the last durable frame, so a failed append never
// leaves a half-record for recovery to trip on while the process lives.
// The wal.append.* faultpoints fire here.
func (l *Log) Append(rec Record) (err error) {
	m := l.metrics.Load()
	start := time.Now()
	defer func() { m.recordAppend(time.Since(start), err) }()
	p, err := json.Marshal(&rec)
	if err != nil {
		return fmt.Errorf("wal: encoding record: %w", err)
	}
	if len(p) > maxPayload {
		return fmt.Errorf("wal: record of %d bytes exceeds the %d byte bound", len(p), maxPayload)
	}
	frame := AppendFrame(nil, p)

	l.mu.Lock()
	defer l.mu.Unlock()
	switch faultpoint.Fire("wal.append.write") {
	case faultpoint.Error:
		return fmt.Errorf("%w at wal.append.write", faultpoint.ErrInjected)
	case faultpoint.Crash:
		faultpoint.Kill("wal.append.write")
	case faultpoint.Tear:
		// The torn-write simulation: half the frame reaches the disk,
		// then the machine dies. Recovery must truncate exactly here.
		_, _ = l.f.Write(frame[:len(frame)/2])
		_ = l.f.Sync()
		faultpoint.Kill("wal.append.write(tear)")
	}
	if _, err := l.f.Write(frame); err != nil {
		l.rollback()
		return fmt.Errorf("wal: appending to %s: %w", l.path, err)
	}
	if err := faultpoint.Hit("wal.append.sync"); err != nil {
		l.rollback()
		return err
	}
	syncStart := time.Now()
	if err := l.f.Sync(); err != nil {
		l.rollback()
		return fmt.Errorf("wal: syncing %s: %w", l.path, err)
	}
	m.recordFsync(time.Since(syncStart))
	l.size += int64(len(frame))
	return nil
}

// rollback restores the file to the last durable frame after a failed
// append. Best effort — if even the truncate fails, the next Open's
// torn-tail recovery handles it.
func (l *Log) rollback() {
	_ = l.f.Truncate(l.size)
	_, _ = l.f.Seek(l.size, io.SeekStart)
}

// CompactTo compacts the log after a snapshot: every frame below cut —
// the durable size captured together with the snapshot state
// (fleet.Store.SnapshotCut) — is dropped, and every record appended after
// the capture survives, so compaction can never discard an acknowledged
// event the snapshot missed. The compacted log (a fresh header plus the
// surviving tail) is built in a sibling file, fsync'd and renamed into
// place; a crash at any instant leaves either the old complete log or the
// compacted one, and both replay consistently over the new snapshot
// because replaying an absorbed record is an idempotent no-op. The
// wal.compact.rename faultpoint fires before the rename.
func (l *Log) CompactTo(cut int64, seed uint64) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if cut > l.size {
		cut = l.size // defensive: never resurrect rolled-back bytes
	}
	p, err := json.Marshal(header{Schema: Schema, Seed: seed})
	if err != nil {
		return err
	}
	buf := AppendFrame(nil, p)
	if cut < l.size {
		tail := make([]byte, l.size-cut)
		if _, err := l.f.ReadAt(tail, cut); err != nil {
			return fmt.Errorf("wal: reading surviving tail of %s: %w", l.path, err)
		}
		buf = append(buf, tail...)
	}
	tmp := l.path + ".compact"
	nf, err := os.Create(tmp)
	if err != nil {
		return fmt.Errorf("wal: creating %s: %w", tmp, err)
	}
	fail := func(err error) error {
		nf.Close()
		os.Remove(tmp)
		return err
	}
	if _, err := nf.Write(buf); err != nil {
		return fail(fmt.Errorf("wal: writing %s: %w", tmp, err))
	}
	if err := nf.Sync(); err != nil {
		return fail(fmt.Errorf("wal: syncing %s: %w", tmp, err))
	}
	if err := faultpoint.Hit("wal.compact.rename"); err != nil {
		return fail(err)
	}
	if err := os.Rename(tmp, l.path); err != nil {
		return fail(fmt.Errorf("wal: renaming %s: %w", tmp, err))
	}
	if err := syncDir(l.path); err != nil {
		// The rename happened; the open fd already points at the new
		// inode, so adopt it — worst case a crash resurfaces the old log,
		// which replays consistently.
		l.f.Close()
		l.f, l.size = nf, int64(len(buf))
		return err
	}
	l.f.Close()
	l.f, l.size = nf, int64(len(buf))
	return nil
}

// Reset compacts the log back to its header — called after a snapshot has
// durably absorbed every logged event and no concurrent appender exists
// (tests, single-threaded shutdown). Live checkpoints use CompactTo,
// which keeps records appended after the snapshot capture.
func (l *Log) Reset(seed uint64) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if err := l.f.Truncate(0); err != nil {
		return fmt.Errorf("wal: truncating %s: %w", l.path, err)
	}
	if _, err := l.f.Seek(0, io.SeekStart); err != nil {
		return fmt.Errorf("wal: seeking %s: %w", l.path, err)
	}
	l.size = 0
	return l.writeHeader(seed)
}

// Size returns the clean (durable) length in bytes.
func (l *Log) Size() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.size
}

// Path returns the log's file path.
func (l *Log) Path() string { return l.path }

// Close closes the underlying file.
func (l *Log) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.f.Close()
}

// syncDir fsyncs the directory containing path, making a freshly created
// file's existence itself durable.
func syncDir(path string) error {
	d, err := os.Open(filepath.Dir(path))
	if err != nil {
		return fmt.Errorf("wal: opening parent of %s: %w", path, err)
	}
	defer d.Close()
	if err := d.Sync(); err != nil {
		return fmt.Errorf("wal: syncing parent of %s: %w", path, err)
	}
	return nil
}
