package mat

import "math"

// QR holds a Householder QR factorization of an m×n matrix (m >= n):
// A = Q·R with Q orthogonal (m×m, stored implicitly as reflectors) and R
// upper triangular (n×n). It exists to provide the *mathematically
// equivalent* alternative route to the Regularized Least Squares solution —
// the paper's conclusion points out that "the linear algebra expression in
// line 4 of Procedure 6 can alone have many different equivalent
// algorithms, each having a different sequence of calls to optimized
// libraries", and QR-vs-normal-equations is the canonical example.
type QR struct {
	// qr packs the reflectors below the diagonal and R on and above it.
	qr *Mat
	// beta holds the Householder scalars.
	beta []float64
}

// QRFactor computes the Householder QR factorization. It requires m >= n.
func (m *Mat) QRFactor() (*QR, error) {
	rows, cols := m.Rows, m.Cols
	if rows < cols {
		return nil, ErrShape
	}
	a := m.Clone()
	beta := make([]float64, cols)
	for k := 0; k < cols; k++ {
		// Build the Householder vector for column k below the diagonal.
		var norm float64
		for i := k; i < rows; i++ {
			v := a.Data[i*cols+k]
			norm += v * v
		}
		norm = math.Sqrt(norm)
		if norm == 0 {
			return nil, ErrSingular
		}
		alpha := a.Data[k*cols+k]
		if alpha > 0 {
			norm = -norm
		}
		v0 := alpha - norm
		// beta = -1/(norm*v0) normalizes H = I - beta*v*vᵀ with v[k]=v0.
		beta[k] = -1 / (norm * v0)
		a.Data[k*cols+k] = norm // R diagonal
		// Store v (scaled so v[k]=1) below the diagonal.
		for i := k + 1; i < rows; i++ {
			a.Data[i*cols+k] /= v0
		}
		// Apply the reflector to the trailing columns.
		for j := k + 1; j < cols; j++ {
			var s float64
			s = a.Data[k*cols+j]
			for i := k + 1; i < rows; i++ {
				s += a.Data[i*cols+k] * a.Data[i*cols+j]
			}
			s *= beta[k] * v0 * v0
			// The v0 scaling folds the v[k]=1 normalization back in; with
			// v normalized (v[k]=1), H·x = x - tau*(vᵀx)*v where
			// tau = beta*v0².
			a.Data[k*cols+j] -= s
			for i := k + 1; i < rows; i++ {
				a.Data[i*cols+j] -= s * a.Data[i*cols+k]
			}
		}
	}
	return &QR{qr: a, beta: beta}, nil
}

// tau returns the effective reflector scale for column k with v normalized
// to v[k] = 1.
func (f *QR) tau(k int) float64 {
	// beta was defined for the unnormalized v with v[k]=v0; after the
	// normalization v := v/v0 the scale becomes beta*v0². Reconstruct v0
	// from the stored data: v0 = alpha - norm = -1/(beta*norm).
	norm := f.qr.Data[k*f.qr.Cols+k]
	v0 := -1 / (f.beta[k] * norm)
	return f.beta[k] * v0 * v0
}

// applyQt overwrites b (length m, with c columns flattened as a Mat) with
// Qᵀ·b.
func (f *QR) applyQt(b *Mat) {
	rows, cols := f.qr.Rows, f.qr.Cols
	for k := 0; k < cols; k++ {
		t := f.tau(k)
		for j := 0; j < b.Cols; j++ {
			s := b.Data[k*b.Cols+j]
			for i := k + 1; i < rows; i++ {
				s += f.qr.Data[i*cols+k] * b.Data[i*b.Cols+j]
			}
			s *= t
			b.Data[k*b.Cols+j] -= s
			for i := k + 1; i < rows; i++ {
				b.Data[i*b.Cols+j] -= s * f.qr.Data[i*cols+k]
			}
		}
	}
}

// R returns the upper-triangular factor (n×n).
func (f *QR) R() *Mat {
	n := f.qr.Cols
	r := New(n, n)
	for i := 0; i < n; i++ {
		for j := i; j < n; j++ {
			r.Data[i*n+j] = f.qr.Data[i*f.qr.Cols+j]
		}
	}
	return r
}

// Solve solves the least-squares problem min ‖A·X − B‖ via Qᵀ and a
// triangular solve. B must have A.Rows rows.
func (f *QR) Solve(B *Mat) (*Mat, error) {
	if B.Rows != f.qr.Rows {
		return nil, ErrShape
	}
	qtb := B.Clone()
	f.applyQt(qtb)
	// Keep the top n rows.
	n := f.qr.Cols
	top := New(n, B.Cols)
	copy(top.Data, qtb.Data[:n*B.Cols])
	return SolveUpperTri(f.R(), top)
}

// SolveRLSQR solves the same Tikhonov problem as SolveRLS through the
// augmented-matrix QR route: the regularized problem
//
//	min ‖A·Z − B‖² + λ‖Z‖²
//
// equals the plain least-squares problem on the stacked system
//
//	[ A        ]       [ B ]
//	[ sqrt(λ)I ]· Z =  [ 0 ].
//
// This avoids forming AᵀA (squaring the condition number) at roughly twice
// the FLOPs of the Cholesky route — the classic accuracy/speed trade-off
// between the two mathematically equivalent algorithms.
func SolveRLSQR(A, B *Mat, lambda float64) (*Mat, error) {
	if A.Rows != B.Rows {
		return nil, ErrShape
	}
	if lambda < 0 {
		return nil, ErrNotPD
	}
	m, n := A.Rows, A.Cols
	aug := New(m+n, n)
	copy(aug.Data[:m*n], A.Data)
	sq := math.Sqrt(lambda)
	for i := 0; i < n; i++ {
		aug.Data[(m+i)*n+i] = sq
	}
	baug := New(m+n, B.Cols)
	copy(baug.Data[:m*B.Cols], B.Data)
	f, err := aug.QRFactor()
	if err != nil {
		return nil, err
	}
	return f.Solve(baug)
}

// SolveRLSInverse solves the RLS problem by explicitly inverting the shifted
// Gram matrix — the naive route that both alternatives beat; kept as the
// slow baseline for the kernel-variant experiment.
func SolveRLSInverse(A, B *Mat, lambda float64) (*Mat, error) {
	if A.Rows != B.Rows {
		return nil, ErrShape
	}
	G := A.Gram()
	M, err := G.AddScaledIdentity(lambda)
	if err != nil {
		return nil, err
	}
	Minv, err := M.Inverse()
	if err != nil {
		return nil, err
	}
	Atb, err := A.MulT(B)
	if err != nil {
		return nil, err
	}
	return Minv.Mul(Atb)
}

// FlopsQR returns the FLOPs of a Householder QR of an m×n matrix:
// 2n²(m − n/3).
func FlopsQR(m, n int) int64 {
	mm, nn := int64(m), int64(n)
	return 2 * nn * nn * (3*mm - nn) / 3
}

// FlopsRLSQR returns the FLOPs of SolveRLSQR with A m×n and B m×c: the QR
// of the (m+n)×n augmented matrix, applying Qᵀ to c columns and one
// triangular solve.
func FlopsRLSQR(m, n, c int) int64 {
	mm, nn, cc := int64(m+n), int64(n), int64(c)
	return FlopsQR(m+n, n) + 4*mm*nn*cc + FlopsTriSolve(n, c)
}
