package mat

import (
	"math"
	"testing"

	"relperf/internal/xrand"
)

func TestQRReconstruction(t *testing.T) {
	rng := xrand.New(1)
	for _, dims := range [][2]int{{5, 3}, {10, 10}, {30, 12}, {7, 1}} {
		m, n := dims[0], dims[1]
		A := Rand(rng, m, n)
		f, err := A.QRFactor()
		if err != nil {
			t.Fatalf("%dx%d: %v", m, n, err)
		}
		// Verify via the solve: for square nonsingular A, X = A⁻¹B exactly.
		if m == n {
			B := Rand(rng, m, 2)
			X, err := f.Solve(B)
			if err != nil {
				t.Fatal(err)
			}
			AX, _ := A.Mul(X)
			if !AX.Equal(B, 1e-8) {
				t.Fatalf("%dx%d: QR solve residual too large", m, n)
			}
		}
		// R is upper triangular.
		R := f.R()
		for i := 0; i < n; i++ {
			for j := 0; j < i; j++ {
				if R.At(i, j) != 0 {
					t.Fatal("R not upper triangular")
				}
			}
		}
	}
}

func TestQRRejectsWide(t *testing.T) {
	if _, err := New(2, 3).QRFactor(); err != ErrShape {
		t.Fatal("wide matrix accepted")
	}
}

func TestQRRejectsZeroColumn(t *testing.T) {
	A := New(4, 2) // all zeros
	if _, err := A.QRFactor(); err != ErrSingular {
		t.Fatalf("zero matrix: %v", err)
	}
}

func TestQRSolveShapeError(t *testing.T) {
	rng := xrand.New(2)
	A := Rand(rng, 6, 3)
	f, err := A.QRFactor()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Solve(New(5, 1)); err != ErrShape {
		t.Fatal("mismatched B accepted")
	}
}

func TestQRLeastSquaresNormalEquations(t *testing.T) {
	// The QR least-squares solution satisfies AᵀA·X = AᵀB.
	rng := xrand.New(3)
	A := Rand(rng, 20, 7)
	B := Rand(rng, 20, 3)
	f, err := A.QRFactor()
	if err != nil {
		t.Fatal(err)
	}
	X, err := f.Solve(B)
	if err != nil {
		t.Fatal(err)
	}
	G := A.Gram()
	GX, _ := G.Mul(X)
	Atb, _ := A.MulT(B)
	if !GX.Equal(Atb, 1e-8) {
		t.Fatal("QR solution violates the normal equations")
	}
}

func TestSolveRLSQRMatchesCholeskyRoute(t *testing.T) {
	// The three RLS algorithms are mathematically equivalent: QR, Cholesky
	// and explicit-inverse solutions agree to numerical precision.
	rng := xrand.New(4)
	for _, dims := range [][2]int{{10, 10}, {25, 12}, {40, 8}} {
		A := Rand(rng, dims[0], dims[1])
		B := Rand(rng, dims[0], 3)
		lambda := 0.3
		zChol, err := SolveRLS(A, B, lambda)
		if err != nil {
			t.Fatal(err)
		}
		zQR, err := SolveRLSQR(A, B, lambda)
		if err != nil {
			t.Fatal(err)
		}
		zInv, err := SolveRLSInverse(A, B, lambda)
		if err != nil {
			t.Fatal(err)
		}
		if !zQR.Equal(zChol, 1e-7) {
			t.Fatalf("%v: QR route disagrees with Cholesky route", dims)
		}
		if !zInv.Equal(zChol, 1e-7) {
			t.Fatalf("%v: inverse route disagrees with Cholesky route", dims)
		}
	}
}

func TestSolveRLSQRBetterConditioned(t *testing.T) {
	// On an ill-conditioned A, the QR route (which never forms AᵀA) must
	// produce a residual no worse than the normal-equations route.
	rng := xrand.New(5)
	n := 12
	A := Rand(rng, n, n)
	// Make columns nearly dependent.
	for i := 0; i < n; i++ {
		A.Set(i, 1, A.At(i, 0)*(1+1e-7)+1e-9*rng.Norm())
	}
	B := Rand(rng, n, 1)
	lambda := 1e-12
	zQR, err := SolveRLSQR(A, B, lambda)
	if err != nil {
		t.Fatal(err)
	}
	rQR, err := RLSResidual(A, zQR, B)
	if err != nil {
		t.Fatal(err)
	}
	zChol, cholErr := SolveRLS(A, B, lambda)
	if cholErr == nil {
		rChol, _ := RLSResidual(A, zChol, B)
		if rQR > rChol*10+1e-6 {
			t.Fatalf("QR residual %v much worse than Cholesky %v", rQR, rChol)
		}
	}
	if math.IsNaN(rQR) {
		t.Fatal("QR produced NaN")
	}
}

func TestSolveRLSQRErrors(t *testing.T) {
	if _, err := SolveRLSQR(New(3, 2), New(4, 1), 1); err != ErrShape {
		t.Fatal("row mismatch accepted")
	}
	if _, err := SolveRLSQR(New(3, 2), New(3, 1), -1); err != ErrNotPD {
		t.Fatal("negative lambda accepted")
	}
}

func TestSolveRLSInverseErrors(t *testing.T) {
	if _, err := SolveRLSInverse(New(3, 2), New(4, 1), 1); err != ErrShape {
		t.Fatal("row mismatch accepted")
	}
	// Singular shifted Gram: zero matrix with lambda 0.
	if _, err := SolveRLSInverse(New(3, 2), New(3, 1), 0); err == nil {
		t.Fatal("singular system accepted")
	}
}

func TestFlopsQRFormulas(t *testing.T) {
	// 2n²(m−n/3): for m=n: 2n³·(2/3) = 4n³/3.
	if got := FlopsQR(3, 3); got != 36 {
		t.Fatalf("FlopsQR(3,3) = %d, want 36", got)
	}
	if FlopsQR(10, 3) <= FlopsQR(5, 3) {
		t.Fatal("QR flops not increasing in m")
	}
	if FlopsRLSQR(10, 5, 2) <= FlopsQR(15, 5) {
		t.Fatal("RLS-QR flops must exceed the bare factorization")
	}
	// The QR route costs more than the Cholesky route for square problems —
	// the trade-off the kernel-variant experiment measures.
	if FlopsRLSQR(50, 50, 50) <= FlopsRLS(50, 50, 50) {
		t.Fatal("QR route should be more expensive than normal equations")
	}
}

func BenchmarkQRFactor100(b *testing.B) {
	rng := xrand.New(1)
	A := Rand(rng, 100, 100)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := A.QRFactor(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSolveRLSQR100(b *testing.B) {
	rng := xrand.New(1)
	A := Rand(rng, 100, 100)
	B := Rand(rng, 100, 100)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := SolveRLSQR(A, B, 0.5); err != nil {
			b.Fatal(err)
		}
	}
}
