// Package mat implements the dense linear-algebra kernels that stand in for
// the paper's TensorFlow 2.1 computations: matrix products, Cholesky and LU
// factorizations, triangular solves and the Regularized Least Squares kernel
// Z = (AᵀA + λI)⁻¹AᵀB used by the paper's MathTask (Procedure 6).
//
// Matrices are dense, row-major float64. Every operation has an associated
// FLOP count (see flops.go) so that the energy/FLOP-budget decision models of
// the paper can account work exactly.
package mat

import (
	"errors"
	"fmt"
	"math"

	"relperf/internal/xrand"
)

// ErrShape is returned when operand dimensions are incompatible.
var ErrShape = errors.New("mat: incompatible shapes")

// ErrSingular is returned when a factorization encounters a (numerically)
// singular matrix.
var ErrSingular = errors.New("mat: matrix is singular")

// ErrNotPD is returned by Cholesky when the matrix is not positive definite.
var ErrNotPD = errors.New("mat: matrix is not positive definite")

// Mat is a dense row-major matrix.
type Mat struct {
	Rows, Cols int
	Data       []float64 // len == Rows*Cols, row-major
}

// New returns a zero matrix of the given shape.
func New(rows, cols int) *Mat {
	if rows <= 0 || cols <= 0 {
		panic(fmt.Sprintf("mat: invalid shape %dx%d", rows, cols))
	}
	return &Mat{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// FromSlice wraps data (row-major) in a Mat; it panics if len(data) does not
// equal rows*cols. The matrix aliases data.
func FromSlice(rows, cols int, data []float64) *Mat {
	if len(data) != rows*cols {
		panic(fmt.Sprintf("mat: FromSlice %dx%d needs %d values, got %d", rows, cols, rows*cols, len(data)))
	}
	return &Mat{Rows: rows, Cols: cols, Data: data}
}

// Eye returns the n×n identity matrix.
func Eye(n int) *Mat {
	m := New(n, n)
	for i := 0; i < n; i++ {
		m.Data[i*n+i] = 1
	}
	return m
}

// Rand returns a rows×cols matrix with entries drawn uniformly from [-1, 1).
func Rand(rng *xrand.Rand, rows, cols int) *Mat {
	m := New(rows, cols)
	for i := range m.Data {
		m.Data[i] = rng.Uniform(-1, 1)
	}
	return m
}

// RandNormal returns a rows×cols matrix with N(0,1) entries.
func RandNormal(rng *xrand.Rand, rows, cols int) *Mat {
	m := New(rows, cols)
	for i := range m.Data {
		m.Data[i] = rng.Norm()
	}
	return m
}

// At returns element (i, j).
func (m *Mat) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns element (i, j).
func (m *Mat) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Clone returns a deep copy.
func (m *Mat) Clone() *Mat {
	c := New(m.Rows, m.Cols)
	copy(c.Data, m.Data)
	return c
}

// SameShape reports whether m and n have identical dimensions.
func (m *Mat) SameShape(n *Mat) bool { return m.Rows == n.Rows && m.Cols == n.Cols }

// Add returns m + n.
func (m *Mat) Add(n *Mat) (*Mat, error) {
	if !m.SameShape(n) {
		return nil, ErrShape
	}
	out := New(m.Rows, m.Cols)
	for i := range out.Data {
		out.Data[i] = m.Data[i] + n.Data[i]
	}
	return out, nil
}

// Sub returns m - n.
func (m *Mat) Sub(n *Mat) (*Mat, error) {
	if !m.SameShape(n) {
		return nil, ErrShape
	}
	out := New(m.Rows, m.Cols)
	for i := range out.Data {
		out.Data[i] = m.Data[i] - n.Data[i]
	}
	return out, nil
}

// Scale returns alpha * m.
func (m *Mat) Scale(alpha float64) *Mat {
	out := New(m.Rows, m.Cols)
	for i, v := range m.Data {
		out.Data[i] = alpha * v
	}
	return out
}

// AddScaledIdentity returns m + alpha*I for square m (the λI shift of the
// regularized normal equations).
func (m *Mat) AddScaledIdentity(alpha float64) (*Mat, error) {
	if m.Rows != m.Cols {
		return nil, ErrShape
	}
	out := m.Clone()
	for i := 0; i < m.Rows; i++ {
		out.Data[i*m.Cols+i] += alpha
	}
	return out, nil
}

// Transpose returns mᵀ.
func (m *Mat) Transpose() *Mat {
	out := New(m.Cols, m.Rows)
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			out.Data[j*out.Cols+i] = m.Data[i*m.Cols+j]
		}
	}
	return out
}

// FrobeniusNorm returns sqrt(sum m_ij^2).
func (m *Mat) FrobeniusNorm() float64 {
	var s float64
	for _, v := range m.Data {
		s += v * v
	}
	return math.Sqrt(s)
}

// FrobeniusNorm2 returns the squared Frobenius norm, the ‖AZ−B‖² penalty of
// the paper's MathTask.
func (m *Mat) FrobeniusNorm2() float64 {
	var s float64
	for _, v := range m.Data {
		s += v * v
	}
	return s
}

// MaxAbs returns max |m_ij|, used for error comparisons in tests.
func (m *Mat) MaxAbs() float64 {
	var mx float64
	for _, v := range m.Data {
		if a := math.Abs(v); a > mx {
			mx = a
		}
	}
	return mx
}

// Equal reports whether m and n agree elementwise within tol.
func (m *Mat) Equal(n *Mat, tol float64) bool {
	if !m.SameShape(n) {
		return false
	}
	for i := range m.Data {
		if math.Abs(m.Data[i]-n.Data[i]) > tol {
			return false
		}
	}
	return true
}

// Bytes returns the storage size of the matrix in bytes (float64 entries).
// Used by the device models to cost data movement.
func (m *Mat) Bytes() int64 { return int64(m.Rows) * int64(m.Cols) * 8 }

// String renders small matrices for debugging.
func (m *Mat) String() string {
	if m.Rows*m.Cols > 64 {
		return fmt.Sprintf("Mat(%dx%d)", m.Rows, m.Cols)
	}
	s := ""
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			s += fmt.Sprintf("%8.4f ", m.At(i, j))
		}
		s += "\n"
	}
	return s
}
