package mat

import "math"

// Cholesky computes the lower-triangular L with m = L·Lᵀ for a symmetric
// positive-definite m. Only the lower triangle of m is read. Returns ErrNotPD
// when a non-positive pivot is encountered.
func (m *Mat) Cholesky() (*Mat, error) {
	if m.Rows != m.Cols {
		return nil, ErrShape
	}
	n := m.Rows
	L := New(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j <= i; j++ {
			var s float64
			for k := 0; k < j; k++ {
				s += L.Data[i*n+k] * L.Data[j*n+k]
			}
			if i == j {
				d := m.Data[i*n+i] - s
				if d <= 0 {
					return nil, ErrNotPD
				}
				L.Data[i*n+i] = math.Sqrt(d)
			} else {
				L.Data[i*n+j] = (m.Data[i*n+j] - s) / L.Data[j*n+j]
			}
		}
	}
	return L, nil
}

// SolveLowerTri solves L·X = B for X where L is lower triangular (forward
// substitution, one column of B at a time).
func SolveLowerTri(L, B *Mat) (*Mat, error) {
	if L.Rows != L.Cols || L.Rows != B.Rows {
		return nil, ErrShape
	}
	n, c := L.Rows, B.Cols
	X := B.Clone()
	for j := 0; j < c; j++ {
		for i := 0; i < n; i++ {
			s := X.Data[i*c+j]
			for k := 0; k < i; k++ {
				s -= L.Data[i*n+k] * X.Data[k*c+j]
			}
			d := L.Data[i*n+i]
			if d == 0 {
				return nil, ErrSingular
			}
			X.Data[i*c+j] = s / d
		}
	}
	return X, nil
}

// SolveUpperTri solves U·X = B for X where U is upper triangular (backward
// substitution).
func SolveUpperTri(U, B *Mat) (*Mat, error) {
	if U.Rows != U.Cols || U.Rows != B.Rows {
		return nil, ErrShape
	}
	n, c := U.Rows, B.Cols
	X := B.Clone()
	for j := 0; j < c; j++ {
		for i := n - 1; i >= 0; i-- {
			s := X.Data[i*c+j]
			for k := i + 1; k < n; k++ {
				s -= U.Data[i*n+k] * X.Data[k*c+j]
			}
			d := U.Data[i*n+i]
			if d == 0 {
				return nil, ErrSingular
			}
			X.Data[i*c+j] = s / d
		}
	}
	return X, nil
}

// CholSolve solves m·X = B via Cholesky (m must be SPD): L(LᵀX) = B.
func (m *Mat) CholSolve(B *Mat) (*Mat, error) {
	L, err := m.Cholesky()
	if err != nil {
		return nil, err
	}
	Y, err := SolveLowerTri(L, B)
	if err != nil {
		return nil, err
	}
	return SolveUpperTri(L.Transpose(), Y)
}

// LU holds a row-pivoted LU factorization P·A = L·U packed into a single
// matrix (unit lower triangle implicit).
type LU struct {
	lu   *Mat
	piv  []int // piv[i] = original row now at position i
	sign int   // permutation parity, for Det
}

// LUFactor computes the partial-pivoting LU factorization of square m.
func (m *Mat) LUFactor() (*LU, error) {
	if m.Rows != m.Cols {
		return nil, ErrShape
	}
	n := m.Rows
	lu := m.Clone()
	piv := make([]int, n)
	for i := range piv {
		piv[i] = i
	}
	sign := 1
	for k := 0; k < n; k++ {
		// Pivot: largest magnitude in column k at or below the diagonal.
		p := k
		maxAbs := math.Abs(lu.Data[k*n+k])
		for i := k + 1; i < n; i++ {
			if a := math.Abs(lu.Data[i*n+k]); a > maxAbs {
				maxAbs, p = a, i
			}
		}
		if maxAbs == 0 {
			return nil, ErrSingular
		}
		if p != k {
			rowK := lu.Data[k*n : (k+1)*n]
			rowP := lu.Data[p*n : (p+1)*n]
			for j := range rowK {
				rowK[j], rowP[j] = rowP[j], rowK[j]
			}
			piv[k], piv[p] = piv[p], piv[k]
			sign = -sign
		}
		pivVal := lu.Data[k*n+k]
		for i := k + 1; i < n; i++ {
			f := lu.Data[i*n+k] / pivVal
			lu.Data[i*n+k] = f
			if f == 0 {
				continue
			}
			rowI := lu.Data[i*n : (i+1)*n]
			rowK := lu.Data[k*n : (k+1)*n]
			for j := k + 1; j < n; j++ {
				rowI[j] -= f * rowK[j]
			}
		}
	}
	return &LU{lu: lu, piv: piv, sign: sign}, nil
}

// Solve solves A·X = B using the factorization.
func (f *LU) Solve(B *Mat) (*Mat, error) {
	n := f.lu.Rows
	if B.Rows != n {
		return nil, ErrShape
	}
	c := B.Cols
	// Apply permutation to B.
	X := New(n, c)
	for i := 0; i < n; i++ {
		copy(X.Data[i*c:(i+1)*c], B.Data[f.piv[i]*c:(f.piv[i]+1)*c])
	}
	// Forward substitution with implicit unit diagonal L.
	for j := 0; j < c; j++ {
		for i := 1; i < n; i++ {
			s := X.Data[i*c+j]
			for k := 0; k < i; k++ {
				s -= f.lu.Data[i*n+k] * X.Data[k*c+j]
			}
			X.Data[i*c+j] = s
		}
	}
	// Backward substitution with U.
	for j := 0; j < c; j++ {
		for i := n - 1; i >= 0; i-- {
			s := X.Data[i*c+j]
			for k := i + 1; k < n; k++ {
				s -= f.lu.Data[i*n+k] * X.Data[k*c+j]
			}
			X.Data[i*c+j] = s / f.lu.Data[i*n+i]
		}
	}
	return X, nil
}

// Det returns the determinant from the factorization.
func (f *LU) Det() float64 {
	n := f.lu.Rows
	d := float64(f.sign)
	for i := 0; i < n; i++ {
		d *= f.lu.Data[i*n+i]
	}
	return d
}

// Inverse returns m⁻¹ via LU; kept for completeness — the solvers avoid
// explicit inverses.
func (m *Mat) Inverse() (*Mat, error) {
	f, err := m.LUFactor()
	if err != nil {
		return nil, err
	}
	return f.Solve(Eye(m.Rows))
}
