package mat

// FLOP accounting. The decision models of the paper (§IV) budget work in
// floating-point operations per device; these formulas are the standard dense
// linear-algebra counts (one fused multiply-add counted as 2 FLOPs).

// FlopsGEMM returns the FLOPs of an (m×k)·(k×n) product: 2·m·k·n.
func FlopsGEMM(m, k, n int) int64 {
	return 2 * int64(m) * int64(k) * int64(n)
}

// FlopsGram returns the FLOPs of AᵀA for A of shape m×n, exploiting symmetry:
// m·n·(n+1).
func FlopsGram(m, n int) int64 {
	return int64(m) * int64(n) * int64(n+1)
}

// FlopsCholesky returns the FLOPs of an n×n Cholesky:
// n³/3 + n²/2 + n/6 = n(n+1)(2n+1)/6, evaluated in the product form so the
// integer arithmetic is exact for every n.
func FlopsCholesky(n int) int64 {
	nn := int64(n)
	return nn * (nn + 1) * (2*nn + 1) / 6
}

// FlopsLU returns the FLOPs of an n×n LU with partial pivoting: ~2n³/3.
func FlopsLU(n int) int64 {
	nn := int64(n)
	return 2 * nn * nn * nn / 3
}

// FlopsTriSolve returns the FLOPs of a triangular solve with an n×n triangle
// and c right-hand sides: n²·c.
func FlopsTriSolve(n, c int) int64 {
	return int64(n) * int64(n) * int64(c)
}

// FlopsRLS returns the total FLOPs of one SolveRLS call with A of shape m×n
// and B of shape m×c: Gram + shift + AᵀB + Cholesky + two triangular solves.
func FlopsRLS(m, n, c int) int64 {
	return FlopsGram(m, n) + // AᵀA
		int64(n) + // +λI
		FlopsGEMM(n, m, c) + // AᵀB
		FlopsCholesky(n) + // factor
		2*FlopsTriSolve(n, c) // forward + backward
}

// FlopsResidual returns the FLOPs of computing ‖A·Z − B‖² with A m×n, Z n×c:
// the product, the subtraction and the norm accumulation.
func FlopsResidual(m, n, c int) int64 {
	return FlopsGEMM(m, n, c) + int64(m)*int64(c) + 2*int64(m)*int64(c)
}

// FlopsMathTask returns the FLOPs of one iteration of the paper's MathTask
// loop body (Procedure 6, lines 2-5) for square size×size matrices: one RLS
// solve plus the residual penalty. Random generation is not counted as FLOPs.
func FlopsMathTask(size int) int64 {
	return FlopsRLS(size, size, size) + FlopsResidual(size, size, size)
}
