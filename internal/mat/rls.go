package mat

// SolveRLS solves the Regularized Least Squares (Tikhonov) problem of the
// paper's MathTask, line 4 of Procedure 6:
//
//	Z = (AᵀA + λI)⁻¹ AᵀB
//
// via the normal equations and a Cholesky solve: AᵀA+λI is symmetric positive
// definite for λ > 0, so Cholesky is both the cheapest and the numerically
// appropriate route. When λ is so small (or negative) that positive
// definiteness fails numerically, it falls back to an LU solve.
func SolveRLS(A, B *Mat, lambda float64) (*Mat, error) {
	if A.Rows != B.Rows {
		return nil, ErrShape
	}
	G := A.Gram() // AᵀA
	M, err := G.AddScaledIdentity(lambda)
	if err != nil {
		return nil, err
	}
	Atb, err := A.MulT(B) // AᵀB
	if err != nil {
		return nil, err
	}
	Z, err := M.CholSolve(Atb)
	if err == ErrNotPD {
		f, luErr := M.LUFactor()
		if luErr != nil {
			return nil, luErr
		}
		return f.Solve(Atb)
	}
	return Z, err
}

// RLSResidual returns the squared residual ‖A·Z − B‖² — the "penalty" that
// Procedure 6 threads from one MathTask to the next.
func RLSResidual(A, Z, B *Mat) (float64, error) {
	AZ, err := A.Mul(Z)
	if err != nil {
		return 0, err
	}
	R, err := AZ.Sub(B)
	if err != nil {
		return 0, err
	}
	return R.FrobeniusNorm2(), nil
}
