package mat

import (
	"runtime"
	"sync"
)

// gemmBlock is the cache-blocking tile edge for the blocked kernels. 64×64
// float64 tiles (32 KiB per operand pair) fit comfortably in L1/L2 on every
// target the paper considers (Xeon, Raspberry Pi, phone SoCs).
const gemmBlock = 64

// mulParallelFlops is the multiply-add count (M·N·K) above which Mul
// dispatches to the row-parallel kernel. Below it the goroutine fan-out
// costs more than the arithmetic saved; 128³ = 2 Mi multiply-adds is the
// first square size where parallel rows win consistently.
const mulParallelFlops = 1 << 21

// Mul returns m · n. Small products use the blocked serial kernel; above
// mulParallelFlops multiply-adds the rows are partitioned over GOMAXPROCS
// goroutines. In-repo, the threshold is crossed by the real-kernel RLS
// variants from square size 128 up (e.g. `relperf kernels -size 128`);
// smaller studies stay on the serial kernel.
func (m *Mat) Mul(n *Mat) (*Mat, error) {
	if int64(m.Rows)*int64(m.Cols)*int64(n.Cols) >= mulParallelFlops {
		return m.MulParallel(n, 0)
	}
	return m.MulBlocked(n)
}

// MulNaive is the reference triple-loop product, kept as the correctness
// oracle for the optimized kernels and as the slow baseline in the kernel
// ablation benchmarks.
func (m *Mat) MulNaive(n *Mat) (*Mat, error) {
	if m.Cols != n.Rows {
		return nil, ErrShape
	}
	out := New(m.Rows, n.Cols)
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < n.Cols; j++ {
			var s float64
			for k := 0; k < m.Cols; k++ {
				s += m.Data[i*m.Cols+k] * n.Data[k*n.Cols+j]
			}
			out.Data[i*out.Cols+j] = s
		}
	}
	return out, nil
}

// MulBlocked computes m · n with i-k-j loop order and cache blocking. The
// k-j inner ordering streams both the n row and the output row, avoiding the
// strided column walk of the naive kernel.
func (m *Mat) MulBlocked(n *Mat) (*Mat, error) {
	if m.Cols != n.Rows {
		return nil, ErrShape
	}
	out := New(m.Rows, n.Cols)
	mulBlockedInto(out, m, n, 0, m.Rows)
	return out, nil
}

// mulBlockedInto accumulates rows [rowLo, rowHi) of m·n into out.
func mulBlockedInto(out, m, n *Mat, rowLo, rowHi int) {
	K, J := m.Cols, n.Cols
	for ii := rowLo; ii < rowHi; ii += gemmBlock {
		iMax := min(ii+gemmBlock, rowHi)
		for kk := 0; kk < K; kk += gemmBlock {
			kMax := min(kk+gemmBlock, K)
			for jj := 0; jj < J; jj += gemmBlock {
				jMax := min(jj+gemmBlock, J)
				for i := ii; i < iMax; i++ {
					mrow := m.Data[i*K : (i+1)*K]
					orow := out.Data[i*J : (i+1)*J]
					for k := kk; k < kMax; k++ {
						a := mrow[k]
						if a == 0 {
							continue
						}
						nrow := n.Data[k*J : (k+1)*J]
						for j := jj; j < jMax; j++ {
							orow[j] += a * nrow[j]
						}
					}
				}
			}
		}
	}
}

// MulParallel computes m · n with rows partitioned over workers goroutines
// (0 means GOMAXPROCS). It is the kernel the hybrid executor uses when a
// device model allows more than one thread.
func (m *Mat) MulParallel(n *Mat, workers int) (*Mat, error) {
	if m.Cols != n.Rows {
		return nil, ErrShape
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > m.Rows {
		workers = m.Rows
	}
	out := New(m.Rows, n.Cols)
	if workers <= 1 {
		mulBlockedInto(out, m, n, 0, m.Rows)
		return out, nil
	}
	var wg sync.WaitGroup
	chunk := (m.Rows + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := min(lo+chunk, m.Rows)
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			mulBlockedInto(out, m, n, lo, hi)
		}(lo, hi)
	}
	wg.Wait()
	return out, nil
}

// Gram returns mᵀ·m (the AᵀA of the normal equations) exploiting symmetry:
// only the upper triangle is computed and then mirrored, roughly halving the
// FLOPs relative to a general product.
func (m *Mat) Gram() *Mat {
	n := m.Cols
	out := New(n, n)
	for r := 0; r < m.Rows; r++ {
		row := m.Data[r*n : (r+1)*n]
		for i := 0; i < n; i++ {
			a := row[i]
			if a == 0 {
				continue
			}
			orow := out.Data[i*n : (i+1)*n]
			for j := i; j < n; j++ {
				orow[j] += a * row[j]
			}
		}
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			out.Data[j*n+i] = out.Data[i*n+j]
		}
	}
	return out
}

// MulT returns mᵀ · n without materializing the transpose.
func (m *Mat) MulT(n *Mat) (*Mat, error) {
	if m.Rows != n.Rows {
		return nil, ErrShape
	}
	out := New(m.Cols, n.Cols)
	for r := 0; r < m.Rows; r++ {
		mrow := m.Data[r*m.Cols : (r+1)*m.Cols]
		nrow := n.Data[r*n.Cols : (r+1)*n.Cols]
		for i, a := range mrow {
			if a == 0 {
				continue
			}
			orow := out.Data[i*out.Cols : (i+1)*out.Cols]
			for j, b := range nrow {
				orow[j] += a * b
			}
		}
	}
	return out, nil
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
