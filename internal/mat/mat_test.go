package mat

import (
	"math"
	"testing"
	"testing/quick"

	"relperf/internal/xrand"
)

func TestNewZeroed(t *testing.T) {
	m := New(3, 4)
	if m.Rows != 3 || m.Cols != 4 || len(m.Data) != 12 {
		t.Fatalf("bad shape: %+v", m)
	}
	for _, v := range m.Data {
		if v != 0 {
			t.Fatal("New not zeroed")
		}
	}
}

func TestNewPanicsOnBadShape(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New(0, 3) should panic")
		}
	}()
	New(0, 3)
}

func TestFromSlice(t *testing.T) {
	m := FromSlice(2, 2, []float64{1, 2, 3, 4})
	if m.At(0, 1) != 2 || m.At(1, 0) != 3 {
		t.Fatal("FromSlice layout wrong")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("length mismatch should panic")
		}
	}()
	FromSlice(2, 2, []float64{1})
}

func TestEye(t *testing.T) {
	I := Eye(3)
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			want := 0.0
			if i == j {
				want = 1
			}
			if I.At(i, j) != want {
				t.Fatalf("Eye(%d,%d) = %v", i, j, I.At(i, j))
			}
		}
	}
}

func TestAtSet(t *testing.T) {
	m := New(2, 3)
	m.Set(1, 2, 7)
	if m.At(1, 2) != 7 || m.Data[5] != 7 {
		t.Fatal("At/Set row-major layout broken")
	}
}

func TestCloneIndependent(t *testing.T) {
	m := FromSlice(1, 2, []float64{1, 2})
	c := m.Clone()
	c.Set(0, 0, 99)
	if m.At(0, 0) != 1 {
		t.Fatal("Clone aliases original")
	}
}

func TestAddSub(t *testing.T) {
	a := FromSlice(2, 2, []float64{1, 2, 3, 4})
	b := FromSlice(2, 2, []float64{5, 6, 7, 8})
	s, err := a.Add(b)
	if err != nil {
		t.Fatal(err)
	}
	if s.At(1, 1) != 12 {
		t.Fatal("Add wrong")
	}
	d, err := s.Sub(b)
	if err != nil {
		t.Fatal(err)
	}
	if !d.Equal(a, 0) {
		t.Fatal("Sub did not invert Add")
	}
	if _, err := a.Add(New(3, 3)); err != ErrShape {
		t.Fatal("shape mismatch not detected")
	}
	if _, err := a.Sub(New(3, 3)); err != ErrShape {
		t.Fatal("shape mismatch not detected")
	}
}

func TestScale(t *testing.T) {
	a := FromSlice(1, 3, []float64{1, -2, 3})
	s := a.Scale(-2)
	want := FromSlice(1, 3, []float64{-2, 4, -6})
	if !s.Equal(want, 0) {
		t.Fatal("Scale wrong")
	}
}

func TestAddScaledIdentity(t *testing.T) {
	a := Eye(3)
	b, err := a.AddScaledIdentity(2)
	if err != nil {
		t.Fatal(err)
	}
	if b.At(0, 0) != 3 || b.At(0, 1) != 0 {
		t.Fatal("AddScaledIdentity wrong")
	}
	if _, err := New(2, 3).AddScaledIdentity(1); err != ErrShape {
		t.Fatal("non-square should error")
	}
}

func TestTranspose(t *testing.T) {
	a := FromSlice(2, 3, []float64{1, 2, 3, 4, 5, 6})
	at := a.Transpose()
	if at.Rows != 3 || at.Cols != 2 || at.At(2, 1) != 6 || at.At(0, 1) != 4 {
		t.Fatalf("Transpose wrong: %v", at)
	}
	if !at.Transpose().Equal(a, 0) {
		t.Fatal("double transpose not identity")
	}
}

func TestNorms(t *testing.T) {
	a := FromSlice(1, 2, []float64{3, 4})
	if a.FrobeniusNorm() != 5 {
		t.Fatal("FrobeniusNorm wrong")
	}
	if a.FrobeniusNorm2() != 25 {
		t.Fatal("FrobeniusNorm2 wrong")
	}
	if a.MaxAbs() != 4 {
		t.Fatal("MaxAbs wrong")
	}
}

func TestBytes(t *testing.T) {
	if New(10, 20).Bytes() != 1600 {
		t.Fatal("Bytes wrong")
	}
}

func TestStringSmallAndLarge(t *testing.T) {
	small := Eye(2).String()
	if small == "" {
		t.Fatal("small String empty")
	}
	large := New(100, 100).String()
	if large != "Mat(100x100)" {
		t.Fatalf("large String = %q", large)
	}
}

func TestMulKnown(t *testing.T) {
	a := FromSlice(2, 3, []float64{1, 2, 3, 4, 5, 6})
	b := FromSlice(3, 2, []float64{7, 8, 9, 10, 11, 12})
	want := FromSlice(2, 2, []float64{58, 64, 139, 154})
	for name, mul := range map[string]func(*Mat) (*Mat, error){
		"naive":    a.MulNaive,
		"blocked":  a.MulBlocked,
		"default":  a.Mul,
		"parallel": func(n *Mat) (*Mat, error) { return a.MulParallel(n, 2) },
	} {
		got, err := mul(b)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !got.Equal(want, 1e-12) {
			t.Fatalf("%s product wrong:\n%v", name, got)
		}
	}
}

func TestMulShapeError(t *testing.T) {
	a := New(2, 3)
	b := New(2, 3)
	if _, err := a.MulNaive(b); err != ErrShape {
		t.Fatal("naive shape check missing")
	}
	if _, err := a.MulBlocked(b); err != ErrShape {
		t.Fatal("blocked shape check missing")
	}
	if _, err := a.MulParallel(b, 4); err != ErrShape {
		t.Fatal("parallel shape check missing")
	}
	if _, err := a.MulT(New(5, 2)); err != ErrShape {
		t.Fatal("MulT shape check missing")
	}
}

func TestMulIdentityProperty(t *testing.T) {
	rng := xrand.New(1)
	f := func(seed uint32) bool {
		n := rng.Intn(20) + 1
		a := Rand(rng, n, n)
		ai, err := a.Mul(Eye(n))
		if err != nil {
			return false
		}
		return ai.Equal(a, 1e-12)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestBlockedMatchesNaiveProperty(t *testing.T) {
	rng := xrand.New(2)
	f := func(seed uint32) bool {
		m := rng.Intn(70) + 1
		k := rng.Intn(70) + 1
		n := rng.Intn(70) + 1
		a := Rand(rng, m, k)
		b := Rand(rng, k, n)
		x, _ := a.MulNaive(b)
		y, _ := a.MulBlocked(b)
		z, _ := a.MulParallel(b, 3)
		return y.Equal(x, 1e-9) && z.Equal(x, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestTransposeOfProductProperty(t *testing.T) {
	rng := xrand.New(3)
	f := func(seed uint32) bool {
		m := rng.Intn(25) + 1
		k := rng.Intn(25) + 1
		n := rng.Intn(25) + 1
		a := Rand(rng, m, k)
		b := Rand(rng, k, n)
		ab, _ := a.Mul(b)
		lhs := ab.Transpose()
		rhs, _ := b.Transpose().Mul(a.Transpose())
		return lhs.Equal(rhs, 1e-10)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestGramMatchesExplicit(t *testing.T) {
	rng := xrand.New(4)
	for trial := 0; trial < 10; trial++ {
		m := rng.Intn(40) + 2
		n := rng.Intn(40) + 2
		a := Rand(rng, m, n)
		g := a.Gram()
		want, _ := a.Transpose().Mul(a)
		if !g.Equal(want, 1e-10) {
			t.Fatalf("Gram mismatch for %dx%d", m, n)
		}
		// Symmetry.
		if !g.Equal(g.Transpose(), 0) {
			t.Fatal("Gram not exactly symmetric")
		}
	}
}

func TestMulTMatchesExplicit(t *testing.T) {
	rng := xrand.New(5)
	a := Rand(rng, 17, 9)
	b := Rand(rng, 17, 5)
	got, err := a.MulT(b)
	if err != nil {
		t.Fatal(err)
	}
	want, _ := a.Transpose().Mul(b)
	if !got.Equal(want, 1e-10) {
		t.Fatal("MulT mismatch")
	}
}

func TestMulParallelWorkerEdgeCases(t *testing.T) {
	rng := xrand.New(6)
	a := Rand(rng, 5, 5)
	b := Rand(rng, 5, 5)
	want, _ := a.MulNaive(b)
	for _, w := range []int{0, 1, 5, 16} {
		got, err := a.MulParallel(b, w)
		if err != nil {
			t.Fatal(err)
		}
		if !got.Equal(want, 1e-10) {
			t.Fatalf("parallel with %d workers wrong", w)
		}
	}
}

func TestMulDispatchesParallelAboveThreshold(t *testing.T) {
	// 160³ > mulParallelFlops: Mul must route through the parallel kernel
	// and still agree with the serial blocked product.
	rng := xrand.New(8)
	a := Rand(rng, 160, 160)
	b := Rand(rng, 160, 160)
	if int64(a.Rows)*int64(a.Cols)*int64(b.Cols) < mulParallelFlops {
		t.Fatal("test size below dispatch threshold")
	}
	want, _ := a.MulBlocked(b)
	got, err := a.Mul(b)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(want, 1e-9) {
		t.Fatal("dispatched product disagrees with blocked kernel")
	}
	// Small sizes stay on the serial kernel and remain correct.
	a, b = Rand(rng, 7, 9), Rand(rng, 9, 4)
	want, _ = a.MulNaive(b)
	got, err = a.Mul(b)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(want, 1e-10) {
		t.Fatal("small product wrong")
	}
}

func TestMulParallelTallThin(t *testing.T) {
	// More workers than rows: the clamp must leave every row covered
	// exactly once.
	rng := xrand.New(9)
	a := Rand(rng, 3, 200)
	b := Rand(rng, 200, 2)
	want, _ := a.MulNaive(b)
	got, err := a.MulParallel(b, 64)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(want, 1e-9) {
		t.Fatal("tall-thin parallel product wrong")
	}
}

// spd builds a random symmetric positive-definite matrix AᵀA + I.
func spd(rng *xrand.Rand, n int) *Mat {
	a := Rand(rng, n, n)
	g := a.Gram()
	s, _ := g.AddScaledIdentity(float64(n))
	return s
}

func TestCholeskyRoundTrip(t *testing.T) {
	rng := xrand.New(7)
	for trial := 0; trial < 10; trial++ {
		n := rng.Intn(30) + 2
		m := spd(rng, n)
		L, err := m.Cholesky()
		if err != nil {
			t.Fatal(err)
		}
		// L is lower triangular.
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if L.At(i, j) != 0 {
					t.Fatal("Cholesky factor not lower triangular")
				}
			}
		}
		back, _ := L.Mul(L.Transpose())
		if !back.Equal(m, 1e-8*float64(n)) {
			t.Fatalf("L·Lᵀ != m for n=%d", n)
		}
	}
}

func TestCholeskyRejectsNonPD(t *testing.T) {
	m := FromSlice(2, 2, []float64{1, 0, 0, -1})
	if _, err := m.Cholesky(); err != ErrNotPD {
		t.Fatalf("expected ErrNotPD, got %v", err)
	}
	if _, err := New(2, 3).Cholesky(); err != ErrShape {
		t.Fatal("non-square should be ErrShape")
	}
}

func TestTriangularSolves(t *testing.T) {
	rng := xrand.New(8)
	n := 12
	m := spd(rng, n)
	L, _ := m.Cholesky()
	B := Rand(rng, n, 3)
	Y, err := SolveLowerTri(L, B)
	if err != nil {
		t.Fatal(err)
	}
	LY, _ := L.Mul(Y)
	if !LY.Equal(B, 1e-8) {
		t.Fatal("lower solve residual too large")
	}
	U := L.Transpose()
	X, err := SolveUpperTri(U, B)
	if err != nil {
		t.Fatal(err)
	}
	UX, _ := U.Mul(X)
	if !UX.Equal(B, 1e-8) {
		t.Fatal("upper solve residual too large")
	}
}

func TestTriangularSolveErrors(t *testing.T) {
	if _, err := SolveLowerTri(New(2, 3), New(2, 1)); err != ErrShape {
		t.Fatal("lower tri shape check missing")
	}
	if _, err := SolveUpperTri(New(2, 3), New(2, 1)); err != ErrShape {
		t.Fatal("upper tri shape check missing")
	}
	zeroDiag := New(2, 2)
	if _, err := SolveLowerTri(zeroDiag, New(2, 1)); err != ErrSingular {
		t.Fatal("singular lower solve not detected")
	}
	if _, err := SolveUpperTri(zeroDiag, New(2, 1)); err != ErrSingular {
		t.Fatal("singular upper solve not detected")
	}
}

func TestCholSolve(t *testing.T) {
	rng := xrand.New(9)
	n := 15
	m := spd(rng, n)
	B := Rand(rng, n, 4)
	X, err := m.CholSolve(B)
	if err != nil {
		t.Fatal(err)
	}
	MX, _ := m.Mul(X)
	if !MX.Equal(B, 1e-7) {
		t.Fatal("CholSolve residual too large")
	}
}

func TestLUSolve(t *testing.T) {
	rng := xrand.New(10)
	for trial := 0; trial < 8; trial++ {
		n := rng.Intn(25) + 2
		// Rand matrices are almost surely nonsingular; diag boost makes sure.
		a := Rand(rng, n, n)
		for i := 0; i < n; i++ {
			a.Data[i*n+i] += 3
		}
		B := Rand(rng, n, 3)
		f, err := a.LUFactor()
		if err != nil {
			t.Fatal(err)
		}
		X, err := f.Solve(B)
		if err != nil {
			t.Fatal(err)
		}
		AX, _ := a.Mul(X)
		if !AX.Equal(B, 1e-7) {
			t.Fatalf("LU solve residual too large (n=%d)", n)
		}
	}
}

func TestLUSingular(t *testing.T) {
	sing := FromSlice(2, 2, []float64{1, 2, 2, 4})
	if _, err := sing.LUFactor(); err != ErrSingular {
		t.Fatalf("expected ErrSingular, got %v", err)
	}
	if _, err := New(2, 3).LUFactor(); err != ErrShape {
		t.Fatal("non-square should be ErrShape")
	}
}

func TestLUDet(t *testing.T) {
	m := FromSlice(2, 2, []float64{3, 1, 4, 2})
	f, err := m.LUFactor()
	if err != nil {
		t.Fatal(err)
	}
	if d := f.Det(); math.Abs(d-2) > 1e-12 {
		t.Fatalf("Det = %v, want 2", d)
	}
	// Permutation parity: swap rows, determinant negates.
	ms := FromSlice(2, 2, []float64{4, 2, 3, 1})
	fs, _ := ms.LUFactor()
	if d := fs.Det(); math.Abs(d+2) > 1e-12 {
		t.Fatalf("Det after row swap = %v, want -2", d)
	}
}

func TestLUSolveShapeError(t *testing.T) {
	f, _ := Eye(3).LUFactor()
	if _, err := f.Solve(New(2, 1)); err != ErrShape {
		t.Fatal("Solve shape check missing")
	}
}

func TestInverse(t *testing.T) {
	rng := xrand.New(11)
	n := 10
	a := Rand(rng, n, n)
	for i := 0; i < n; i++ {
		a.Data[i*n+i] += 4
	}
	inv, err := a.Inverse()
	if err != nil {
		t.Fatal(err)
	}
	prod, _ := a.Mul(inv)
	if !prod.Equal(Eye(n), 1e-8) {
		t.Fatal("A·A⁻¹ != I")
	}
}

func TestSolveRLSAgainstInverse(t *testing.T) {
	rng := xrand.New(12)
	for _, n := range []int{3, 8, 20} {
		A := Rand(rng, n, n)
		B := Rand(rng, n, n)
		lambda := 0.5
		Z, err := SolveRLS(A, B, lambda)
		if err != nil {
			t.Fatal(err)
		}
		// Reference: explicit inverse.
		G := A.Gram()
		M, _ := G.AddScaledIdentity(lambda)
		Minv, err := M.Inverse()
		if err != nil {
			t.Fatal(err)
		}
		Atb, _ := A.MulT(B)
		want, _ := Minv.Mul(Atb)
		if !Z.Equal(want, 1e-6) {
			t.Fatalf("RLS mismatch at n=%d", n)
		}
	}
}

func TestSolveRLSNormalEquationsHold(t *testing.T) {
	rng := xrand.New(13)
	A := Rand(rng, 30, 12) // overdetermined
	B := Rand(rng, 30, 4)
	lambda := 0.1
	Z, err := SolveRLS(A, B, lambda)
	if err != nil {
		t.Fatal(err)
	}
	// (AᵀA + λI) Z must equal AᵀB.
	G := A.Gram()
	M, _ := G.AddScaledIdentity(lambda)
	MZ, _ := M.Mul(Z)
	Atb, _ := A.MulT(B)
	if !MZ.Equal(Atb, 1e-8) {
		t.Fatal("normal equations violated")
	}
}

func TestSolveRLSShapeError(t *testing.T) {
	if _, err := SolveRLS(New(3, 2), New(4, 1), 1); err != ErrShape {
		t.Fatal("row mismatch not detected")
	}
}

func TestSolveRLSZeroLambdaFallback(t *testing.T) {
	// With λ=0 and a well-conditioned A the Cholesky path still works; with a
	// rank-deficient A it must fall back (and then fail as singular) rather
	// than return garbage silently.
	rng := xrand.New(14)
	A := Rand(rng, 10, 10)
	B := Rand(rng, 10, 2)
	if _, err := SolveRLS(A, B, 0); err != nil {
		t.Fatalf("well-conditioned λ=0 solve failed: %v", err)
	}
	// Rank-deficient: duplicate column.
	Adef := Rand(rng, 6, 3)
	for i := 0; i < 6; i++ {
		Adef.Set(i, 2, Adef.At(i, 1))
	}
	if _, err := SolveRLS(Adef, Rand(rng, 6, 1), 0); err == nil {
		t.Fatal("rank-deficient λ=0 should error")
	}
}

func TestRLSResidualDecreasesWithLambda(t *testing.T) {
	// For λ1 < λ2 the residual of the λ1 solution is no larger (regularization
	// trades residual for solution norm).
	rng := xrand.New(15)
	A := Rand(rng, 25, 10)
	B := Rand(rng, 25, 3)
	z1, _ := SolveRLS(A, B, 0.01)
	z2, _ := SolveRLS(A, B, 10)
	r1, err := RLSResidual(A, z1, B)
	if err != nil {
		t.Fatal(err)
	}
	r2, _ := RLSResidual(A, z2, B)
	if r1 > r2+1e-9 {
		t.Fatalf("residual not monotone in λ: r(0.01)=%v > r(10)=%v", r1, r2)
	}
}

func TestRLSResidualErrors(t *testing.T) {
	if _, err := RLSResidual(New(3, 2), New(3, 1), New(3, 1)); err != ErrShape {
		t.Fatal("inner-dim mismatch not detected")
	}
	if _, err := RLSResidual(New(3, 2), New(2, 1), New(4, 1)); err != ErrShape {
		t.Fatal("B shape mismatch not detected")
	}
}

func TestFlopsFormulas(t *testing.T) {
	if FlopsGEMM(2, 3, 4) != 48 {
		t.Fatal("FlopsGEMM")
	}
	if FlopsGram(3, 2) != 18 {
		t.Fatal("FlopsGram")
	}
	if FlopsTriSolve(4, 2) != 32 {
		t.Fatal("FlopsTriSolve")
	}
	// Cholesky count for n=1: 1/3+1/2+1/6 = 1.
	if FlopsCholesky(1) != 1 {
		t.Fatalf("FlopsCholesky(1) = %d", FlopsCholesky(1))
	}
	if FlopsLU(3) != 18 {
		t.Fatal("FlopsLU")
	}
	// Composite counts are sums of parts and strictly increasing in size.
	if FlopsRLS(5, 5, 5) <= 0 {
		t.Fatal("FlopsRLS not positive")
	}
	if FlopsMathTask(50) >= FlopsMathTask(75) {
		t.Fatal("composite flops not increasing in size")
	}
	// The Table-I task ratio: size 300 must dominate 50 by ~(300/50)^3.
	r := float64(FlopsMathTask(300)) / float64(FlopsMathTask(50))
	if r < 100 || r > 400 {
		t.Fatalf("task-flop ratio 300/50 = %v, want O(216)", r)
	}
}

func TestRandMatrices(t *testing.T) {
	rng := xrand.New(16)
	u := Rand(rng, 8, 8)
	for _, v := range u.Data {
		if v < -1 || v >= 1 {
			t.Fatal("Rand out of range")
		}
	}
	n := RandNormal(rng, 100, 100)
	var mean float64
	for _, v := range n.Data {
		mean += v
	}
	mean /= float64(len(n.Data))
	if math.Abs(mean) > 0.05 {
		t.Fatalf("RandNormal mean = %v", mean)
	}
}

func BenchmarkGEMMNaive64(b *testing.B)    { benchGEMM(b, 64, (*Mat).MulNaive) }
func BenchmarkGEMMBlocked64(b *testing.B)  { benchGEMM(b, 64, (*Mat).MulBlocked) }
func BenchmarkGEMMBlocked256(b *testing.B) { benchGEMM(b, 256, (*Mat).MulBlocked) }
func BenchmarkGEMMNaive256(b *testing.B)   { benchGEMM(b, 256, (*Mat).MulNaive) }

func benchGEMM(b *testing.B, n int, mul func(*Mat, *Mat) (*Mat, error)) {
	rng := xrand.New(1)
	x := Rand(rng, n, n)
	y := Rand(rng, n, n)
	b.SetBytes(int64(n) * int64(n) * 8 * 3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := mul(x, y); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCholesky128(b *testing.B) {
	rng := xrand.New(1)
	m := spd(rng, 128)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.Cholesky(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSolveRLS100(b *testing.B) {
	rng := xrand.New(1)
	A := Rand(rng, 100, 100)
	B := Rand(rng, 100, 100)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := SolveRLS(A, B, 0.5); err != nil {
			b.Fatal(err)
		}
	}
}
