// Package device models the heterogeneous hardware of the paper's IoT
// setting: an edge Device "D" (Xeon CPU core, Raspberry Pi, smartphone) and
// an Accelerator "A" (P100-class GPU), plus the interconnect between them.
//
// The paper measures real TensorFlow kernels on a Xeon+P100 testbed; this
// package substitutes calibrated analytical models. A device turns a
// (flops, bytes) task into a duration through a roofline-style cost:
//
//	t = launch + max(flops/peakFlops, bytes/memBandwidth) · (1 + noise)
//
// and a Link turns transferred bytes into
//
//	t = latency + bytes/bandwidth.
//
// Noise models reproduce the measurement fluctuation that motivates the
// paper's distribution-based comparison: multiplicative log-normal jitter
// plus rare heavy-tailed OS-noise spikes. All randomness flows through
// xrand so experiments are reproducible.
package device

import (
	"fmt"
	"time"

	"relperf/internal/xrand"
)

// Kind distinguishes edge devices from accelerators in placement strings:
// a Kind renders as "D" or "A" in algorithm names like "DDA".
type Kind int

const (
	// EdgeDevice is the resource-constrained local device ("D").
	EdgeDevice Kind = iota
	// Accelerator is the offload target ("A").
	Accelerator
)

// Letter returns the single-letter placement code of the kind.
func (k Kind) Letter() string {
	if k == Accelerator {
		return "A"
	}
	return "D"
}

func (k Kind) String() string {
	if k == Accelerator {
		return "accelerator"
	}
	return "device"
}

// Device is an analytical model of one computing resource.
type Device struct {
	// Name identifies the device in reports ("xeon-8160", "p100").
	Name string
	// Kind is EdgeDevice or Accelerator.
	Kind Kind
	// PeakFlops is the sustained double-precision rate in FLOP/s.
	PeakFlops float64
	// MemBandwidth is the sustainable memory bandwidth in bytes/s; tasks
	// whose byte volume dominates are bandwidth-bound (roofline).
	MemBandwidth float64
	// LaunchOverhead is the fixed per-dispatch cost, paid once per kernel
	// launch. For GPUs this is the framework's op dispatch latency that
	// makes many-small-op tasks unprofitable to offload — the effect behind
	// Table I's "AAD is worst".
	LaunchOverhead time.Duration
	// TaskOverhead is a fixed per-task setup cost (stream/graph/context
	// setup on an accelerator), paid once per task regardless of its loop
	// count. Because it amortizes as the loop size n grows, it is what
	// makes the paper's DDA-over-DDD speedup increase with n (§IV).
	TaskOverhead time.Duration
	// Threads is the number of worker threads the hybrid executor may use
	// when actually running kernels on the host (paper footnote 2:
	// "controlling the number of threads"). 1 for the paper's 1-core CPU.
	Threads int
	// Noise perturbs each computed duration. Nil means noiseless.
	Noise NoiseModel
	// Energy converts busy time and data movement into joules.
	Energy EnergyModel
}

// ComputeSeconds returns the noiseless execution time in seconds of a task
// with the given FLOP and memory-traffic volume.
func (d *Device) ComputeSeconds(flops int64, bytes int64) float64 {
	tc := float64(flops) / d.PeakFlops
	tm := float64(bytes) / d.MemBandwidth
	t := tc
	if tm > t {
		t = tm
	}
	return d.TaskOverhead.Seconds() + d.LaunchOverhead.Seconds() + t
}

// Run returns one noisy execution-time sample in seconds for the task.
// The noise model receives rng; a nil Noise returns the deterministic time.
func (d *Device) Run(rng *xrand.Rand, flops, bytes int64) float64 {
	t := d.ComputeSeconds(flops, bytes)
	if d.Noise != nil {
		t = d.Noise.Perturb(rng, t)
	}
	return t
}

// Validate reports configuration errors; the simulator refuses devices that
// would produce non-finite or negative times.
func (d *Device) Validate() error {
	if d.Name == "" {
		return fmt.Errorf("device: empty name")
	}
	if d.PeakFlops <= 0 {
		return fmt.Errorf("device %s: PeakFlops must be positive", d.Name)
	}
	if d.MemBandwidth <= 0 {
		return fmt.Errorf("device %s: MemBandwidth must be positive", d.Name)
	}
	if d.LaunchOverhead < 0 {
		return fmt.Errorf("device %s: negative LaunchOverhead", d.Name)
	}
	if d.TaskOverhead < 0 {
		return fmt.Errorf("device %s: negative TaskOverhead", d.Name)
	}
	if d.Threads < 0 {
		return fmt.Errorf("device %s: negative Threads", d.Name)
	}
	return nil
}

// Link models the interconnect between two devices (PCIe between CPU and
// GPU, Wi-Fi/Bluetooth between phone and edge server, ...).
type Link struct {
	// Name identifies the link in traces ("pcie3-x16").
	Name string
	// Latency is the fixed per-transfer cost.
	Latency time.Duration
	// Bandwidth is in bytes/s.
	Bandwidth float64
	// Noise perturbs transfer times; nil means deterministic.
	Noise NoiseModel
}

// TransferSeconds returns the noiseless time to move the given bytes.
// Zero bytes cost nothing (no transfer is issued at all).
func (l *Link) TransferSeconds(bytes int64) float64 {
	if bytes <= 0 {
		return 0
	}
	return l.Latency.Seconds() + float64(bytes)/l.Bandwidth
}

// Transfer returns one noisy transfer-time sample in seconds.
func (l *Link) Transfer(rng *xrand.Rand, bytes int64) float64 {
	t := l.TransferSeconds(bytes)
	if t == 0 {
		return 0
	}
	if l.Noise != nil {
		t = l.Noise.Perturb(rng, t)
	}
	return t
}

// Validate reports configuration errors.
func (l *Link) Validate() error {
	if l.Bandwidth <= 0 {
		return fmt.Errorf("link %s: Bandwidth must be positive", l.Name)
	}
	if l.Latency < 0 {
		return fmt.Errorf("link %s: negative Latency", l.Name)
	}
	return nil
}
