package device

// EnergyModel converts activity into joules. The paper's §IV selects
// algorithms under device energy budgets, using FLOPs-on-device as the
// operational proxy; this model also supports physical units so the
// energy-switching example can show watt-level traces.
type EnergyModel struct {
	// IdleWatts is drawn whenever the device exists, busy or not.
	IdleWatts float64
	// ActiveWatts is drawn *in addition to* IdleWatts while computing.
	ActiveWatts float64
	// JoulesPerByte is the energy cost of moving one byte over the device's
	// external link (charged to the side issuing the transfer).
	JoulesPerByte float64
}

// ComputeEnergy returns the joules consumed by busySeconds of computation.
func (e EnergyModel) ComputeEnergy(busySeconds float64) float64 {
	return (e.IdleWatts + e.ActiveWatts) * busySeconds
}

// IdleEnergy returns the joules consumed by idleSeconds of waiting.
func (e EnergyModel) IdleEnergy(idleSeconds float64) float64 {
	return e.IdleWatts * idleSeconds
}

// TransferEnergy returns the joules to move the given bytes.
func (e EnergyModel) TransferEnergy(bytes int64) float64 {
	if bytes <= 0 {
		return 0
	}
	return e.JoulesPerByte * float64(bytes)
}
