package device

import (
	"math"

	"relperf/internal/xrand"
)

// NoiseModel perturbs a nominal duration into a measured one. Perturb must
// return a strictly positive value and must never return less than a small
// fraction of the nominal time (measured kernels have a hard lower bound:
// the machine cannot run faster than its peak).
type NoiseModel interface {
	Perturb(rng *xrand.Rand, nominal float64) float64
}

// LogNormalNoise is multiplicative log-normal jitter: measured = nominal ·
// exp(N(−σ²/2, σ)). The mean of the multiplier is 1 (the −σ²/2 shift), and
// the distribution is right-skewed with a hard left bound — the shape of the
// execution-time histograms in the paper's Figure 1b.
type LogNormalNoise struct {
	// Sigma is the log-standard-deviation of the multiplier. 0.02–0.05 is a
	// quiet dedicated node; 0.1–0.3 is a shared/edge environment.
	Sigma float64
}

// Perturb implements NoiseModel.
func (n LogNormalNoise) Perturb(rng *xrand.Rand, nominal float64) float64 {
	mult := rng.LogNormal(-n.Sigma*n.Sigma/2, n.Sigma)
	return nominal * mult
}

// GaussianNoise is additive truncated-Gaussian jitter with standard deviation
// Rel·nominal, truncated so results stay above Floor·nominal.
type GaussianNoise struct {
	// Rel is the relative standard deviation (e.g. 0.05 for 5%).
	Rel float64
	// Floor is the lowest allowed fraction of nominal
	// (DefaultGaussianFloor if zero).
	Floor float64
}

// DefaultGaussianFloor is the truncation floor applied when
// GaussianNoise.Floor is unset. The config-fingerprinting layer normalizes
// with the same constant so "unset" and "explicit default" configs share
// one cache identity — change it here, never by re-hardcoding it.
const DefaultGaussianFloor = 0.5

// Perturb implements NoiseModel.
func (n GaussianNoise) Perturb(rng *xrand.Rand, nominal float64) float64 {
	floor := n.Floor
	if floor == 0 {
		floor = DefaultGaussianFloor
	}
	v := nominal * (1 + n.Rel*rng.Norm())
	lo := floor * nominal
	if v < lo {
		v = lo
	}
	return v
}

// SpikyNoise composes a base noise with rare heavy-tailed spikes: with
// probability P a Pareto-distributed delay of scale Scale·nominal is added.
// This models OS interference — daemon wakeups, page faults, network
// interrupts — the "system noise" the paper cites (Hoefler et al.) as the
// reason single-number summaries mislead.
type SpikyNoise struct {
	Base NoiseModel
	// P is the per-measurement spike probability (e.g. 0.02).
	P float64
	// Scale is the minimum spike size as a fraction of nominal (e.g. 0.2).
	Scale float64
	// Alpha is the Pareto tail index (smaller = heavier; e.g. 1.5).
	Alpha float64
}

// Perturb implements NoiseModel.
func (n SpikyNoise) Perturb(rng *xrand.Rand, nominal float64) float64 {
	t := nominal
	if n.Base != nil {
		t = n.Base.Perturb(rng, nominal)
	}
	if n.P > 0 && rng.Bernoulli(n.P) {
		t += rng.Pareto(n.Scale*nominal, n.Alpha)
	}
	return t
}

// ShiftNoise adds a constant artificial delay before applying an inner noise
// model. This is the paper's own simulation device (footnote 2): "other
// device-accelerator settings can be simulated by adding artificial delays".
type ShiftNoise struct {
	Base NoiseModel
	// Shift is the added delay in seconds.
	Shift float64
}

// Perturb implements NoiseModel.
func (n ShiftNoise) Perturb(rng *xrand.Rand, nominal float64) float64 {
	t := nominal + n.Shift
	if n.Base != nil {
		t = n.Base.Perturb(rng, t)
	}
	return t
}

// NoNoise returns the nominal time unchanged; useful in deterministic tests.
type NoNoise struct{}

// Perturb implements NoiseModel.
func (NoNoise) Perturb(_ *xrand.Rand, nominal float64) float64 { return nominal }

// clampPositive guards models against degenerate parameters in user configs.
func clampPositive(v, fallback float64) float64 {
	if v <= 0 || math.IsNaN(v) || math.IsInf(v, 0) {
		return fallback
	}
	return v
}
