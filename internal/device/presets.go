package device

import "time"

// Presets model the paper's testbed and the additional edge hardware the
// paper names (Raspberry Pi, smartphone). PeakFlops values are *sustained*
// double-precision rates for dense linear-algebra op chains, not datasheet
// peaks; the workload layer supplies per-task efficiency factors for op mixes
// that cannot saturate a device (tiny kernels on a GPU).

// XeonCore returns a model of one core of the paper's Intel Xeon Platinum
// 8160 (the edge device "D" of the experiments): ~55 GFLOP/s sustained DP
// GEMM-mix for a single AVX-512 core, negligible dispatch cost, quiet-node
// noise.
func XeonCore() *Device {
	return &Device{
		Name:           "xeon-8160-core",
		Kind:           EdgeDevice,
		PeakFlops:      55e9,
		MemBandwidth:   12e9,
		LaunchOverhead: 2 * time.Microsecond,
		TaskOverhead:   10 * time.Microsecond,
		Threads:        1,
		Noise: SpikyNoise{
			Base:  LogNormalNoise{Sigma: 0.10},
			P:     0.01,
			Scale: 0.05,
			Alpha: 1.5,
		},
		Energy: EnergyModel{IdleWatts: 10, ActiveWatts: 35, JoulesPerByte: 0},
	}
}

// P100 returns a model of the paper's NVIDIA Pascal P100 SXM2 accelerator
// ("A"): 4.7 TFLOP/s DP peak, HBM2 bandwidth, a per-dispatch launch overhead
// of 12.5 µs (the framework's op-by-op dispatch cost, which makes
// many-small-op tasks unprofitable to offload — Table I's "AAD is worst"
// effect) and a 1 ms per-task setup overhead (stream/graph construction,
// which amortizes with loop size n — the §IV speedup-grows-with-n effect).
func P100() *Device {
	return &Device{
		Name:           "p100",
		Kind:           Accelerator,
		PeakFlops:      4.7e12,
		MemBandwidth:   500e9,
		LaunchOverhead: 12500 * time.Nanosecond,
		TaskOverhead:   time.Millisecond,
		Threads:        0,
		Noise: SpikyNoise{
			Base:  LogNormalNoise{Sigma: 0.10},
			P:     0.01,
			Scale: 0.05,
			Alpha: 1.5,
		},
		Energy: EnergyModel{IdleWatts: 30, ActiveWatts: 220, JoulesPerByte: 1e-10},
	}
}

// RaspberryPi returns a model of a Raspberry Pi 4 class edge device, one of
// the paper's named device-accelerator settings (CPU-Raspbian).
func RaspberryPi() *Device {
	return &Device{
		Name:           "raspberry-pi-4",
		Kind:           EdgeDevice,
		PeakFlops:      6e9,
		MemBandwidth:   4e9,
		LaunchOverhead: 5 * time.Microsecond,
		Threads:        4,
		Noise: SpikyNoise{
			Base:  LogNormalNoise{Sigma: 0.08},
			P:     0.03,
			Scale: 0.1,
			Alpha: 1.5,
		},
		Energy: EnergyModel{IdleWatts: 2.7, ActiveWatts: 4.3, JoulesPerByte: 0},
	}
}

// Smartphone returns a model of a mid-range phone SoC big-core cluster
// (CPU-Smartphone setting), with thermal-throttling-grade noise.
func Smartphone() *Device {
	return &Device{
		Name:           "smartphone-soc",
		Kind:           EdgeDevice,
		PeakFlops:      20e9,
		MemBandwidth:   10e9,
		LaunchOverhead: 10 * time.Microsecond,
		Threads:        4,
		Noise: SpikyNoise{
			Base:  LogNormalNoise{Sigma: 0.1},
			P:     0.05,
			Scale: 0.15,
			Alpha: 1.3,
		},
		Energy: EnergyModel{IdleWatts: 0.5, ActiveWatts: 3.5, JoulesPerByte: 0},
	}
}

// PCIe3x16 returns the CPU↔GPU interconnect of the testbed: ~12 GB/s
// effective with a 10 µs per-transaction latency.
func PCIe3x16() *Link {
	return &Link{
		Name:      "pcie3-x16",
		Latency:   10 * time.Microsecond,
		Bandwidth: 12e9,
		Noise:     LogNormalNoise{Sigma: 0.05},
	}
}

// WiFi returns a wireless edge↔server link (for the phone/Pi offload
// settings): 30 MB/s with 2 ms latency and high jitter.
func WiFi() *Link {
	return &Link{
		Name:      "wifi",
		Latency:   2 * time.Millisecond,
		Bandwidth: 30e6,
		Noise:     LogNormalNoise{Sigma: 0.2},
	}
}

// FiveG returns a 5G edge-cloud link: ~150 MB/s with 3 ms latency — the
// low-latency offload path the paper's intelligent-vehicle and AR scenarios
// assume.
func FiveG() *Link {
	return &Link{
		Name:      "5g-edge",
		Latency:   3 * time.Millisecond,
		Bandwidth: 150e6,
		Noise:     LogNormalNoise{Sigma: 0.25},
	}
}
