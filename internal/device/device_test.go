package device

import (
	"math"
	"testing"
	"time"

	"relperf/internal/xrand"
)

func TestKindLetter(t *testing.T) {
	if EdgeDevice.Letter() != "D" || Accelerator.Letter() != "A" {
		t.Fatal("Kind letters wrong")
	}
	if EdgeDevice.String() != "device" || Accelerator.String() != "accelerator" {
		t.Fatal("Kind strings wrong")
	}
}

func TestComputeSecondsRoofline(t *testing.T) {
	d := &Device{Name: "d", PeakFlops: 1e9, MemBandwidth: 1e9, LaunchOverhead: time.Millisecond}
	// Compute-bound: 2e9 flops at 1e9 flop/s = 2 s, plus 1 ms launch.
	if got := d.ComputeSeconds(2e9, 0); math.Abs(got-2.001) > 1e-12 {
		t.Fatalf("compute-bound = %v", got)
	}
	// Bandwidth-bound: 4e9 bytes at 1e9 B/s = 4 s dominates 2 s compute.
	if got := d.ComputeSeconds(2e9, 4e9); math.Abs(got-4.001) > 1e-12 {
		t.Fatalf("bandwidth-bound = %v", got)
	}
}

func TestRunNoiselessMatchesCompute(t *testing.T) {
	d := &Device{Name: "d", PeakFlops: 1e9, MemBandwidth: 1e9}
	rng := xrand.New(1)
	if d.Run(rng, 5e8, 0) != d.ComputeSeconds(5e8, 0) {
		t.Fatal("nil-noise Run should be deterministic")
	}
}

func TestRunNoisy(t *testing.T) {
	d := XeonCore()
	rng := xrand.New(2)
	nominal := d.ComputeSeconds(1e9, 0)
	varied := false
	for i := 0; i < 50; i++ {
		s := d.Run(rng, 1e9, 0)
		if s <= 0 {
			t.Fatalf("non-positive sample %v", s)
		}
		if s != nominal {
			varied = true
		}
	}
	if !varied {
		t.Fatal("noise model produced no variation")
	}
}

func TestDeviceValidate(t *testing.T) {
	cases := []struct {
		name string
		d    Device
		ok   bool
	}{
		{"good", Device{Name: "x", PeakFlops: 1, MemBandwidth: 1}, true},
		{"no name", Device{PeakFlops: 1, MemBandwidth: 1}, false},
		{"zero flops", Device{Name: "x", MemBandwidth: 1}, false},
		{"zero bw", Device{Name: "x", PeakFlops: 1}, false},
		{"neg launch", Device{Name: "x", PeakFlops: 1, MemBandwidth: 1, LaunchOverhead: -1}, false},
		{"neg threads", Device{Name: "x", PeakFlops: 1, MemBandwidth: 1, Threads: -1}, false},
	}
	for _, c := range cases {
		if err := c.d.Validate(); (err == nil) != c.ok {
			t.Errorf("%s: Validate() = %v", c.name, err)
		}
	}
}

func TestLinkTransfer(t *testing.T) {
	l := &Link{Name: "l", Latency: time.Millisecond, Bandwidth: 1e6}
	if got := l.TransferSeconds(1e6); math.Abs(got-1.001) > 1e-12 {
		t.Fatalf("TransferSeconds = %v", got)
	}
	if l.TransferSeconds(0) != 0 {
		t.Fatal("zero bytes must be free")
	}
	if l.TransferSeconds(-5) != 0 {
		t.Fatal("negative bytes must be free")
	}
	rng := xrand.New(3)
	if l.Transfer(rng, 0) != 0 {
		t.Fatal("zero-byte Transfer must be free")
	}
	if l.Transfer(rng, 100) <= 0 {
		t.Fatal("transfer must be positive")
	}
}

func TestLinkValidate(t *testing.T) {
	if err := (&Link{Name: "l", Bandwidth: 1}).Validate(); err != nil {
		t.Fatal(err)
	}
	if err := (&Link{Name: "l"}).Validate(); err == nil {
		t.Fatal("zero bandwidth should fail")
	}
	if err := (&Link{Name: "l", Bandwidth: 1, Latency: -1}).Validate(); err == nil {
		t.Fatal("negative latency should fail")
	}
}

func TestLogNormalNoiseMeanPreserving(t *testing.T) {
	n := LogNormalNoise{Sigma: 0.1}
	rng := xrand.New(4)
	var sum float64
	const trials = 200000
	for i := 0; i < trials; i++ {
		sum += n.Perturb(rng, 1.0)
	}
	mean := sum / trials
	if math.Abs(mean-1) > 0.01 {
		t.Fatalf("log-normal multiplier mean = %v, want ~1", mean)
	}
}

func TestLogNormalNoisePositive(t *testing.T) {
	n := LogNormalNoise{Sigma: 0.5}
	rng := xrand.New(5)
	for i := 0; i < 10000; i++ {
		if v := n.Perturb(rng, 0.01); v <= 0 {
			t.Fatalf("non-positive perturbed time %v", v)
		}
	}
}

func TestGaussianNoiseFloor(t *testing.T) {
	n := GaussianNoise{Rel: 10, Floor: 0.5} // absurd Rel to force truncation
	rng := xrand.New(6)
	for i := 0; i < 10000; i++ {
		if v := n.Perturb(rng, 1.0); v < 0.5 {
			t.Fatalf("below floor: %v", v)
		}
	}
	// Default floor applies when Floor == 0.
	nd := GaussianNoise{Rel: 10}
	for i := 0; i < 10000; i++ {
		if v := nd.Perturb(rng, 1.0); v < 0.5 {
			t.Fatalf("below default floor: %v", v)
		}
	}
}

func TestSpikyNoiseSpikes(t *testing.T) {
	n := SpikyNoise{Base: NoNoise{}, P: 0.5, Scale: 1, Alpha: 2}
	rng := xrand.New(7)
	spikes := 0
	const trials = 10000
	for i := 0; i < trials; i++ {
		v := n.Perturb(rng, 1.0)
		if v < 1 {
			t.Fatalf("spiky noise reduced time: %v", v)
		}
		if v >= 2 { // spike adds at least Scale*nominal = 1
			spikes++
		}
	}
	frac := float64(spikes) / trials
	if frac < 0.45 || frac > 0.55 {
		t.Fatalf("spike fraction %v, want ~0.5", frac)
	}
}

func TestSpikyNoiseNilBase(t *testing.T) {
	n := SpikyNoise{P: 0, Scale: 1, Alpha: 2}
	rng := xrand.New(8)
	if v := n.Perturb(rng, 3.0); v != 3.0 {
		t.Fatalf("no-base no-spike should be identity, got %v", v)
	}
}

func TestShiftNoise(t *testing.T) {
	n := ShiftNoise{Shift: 0.5}
	rng := xrand.New(9)
	if v := n.Perturb(rng, 1.0); v != 1.5 {
		t.Fatalf("shift = %v", v)
	}
	nested := ShiftNoise{Shift: 0.5, Base: NoNoise{}}
	if v := nested.Perturb(rng, 1.0); v != 1.5 {
		t.Fatalf("nested shift = %v", v)
	}
}

func TestNoNoise(t *testing.T) {
	if (NoNoise{}).Perturb(nil, 2.5) != 2.5 {
		t.Fatal("NoNoise must be identity")
	}
}

func TestEnergyModel(t *testing.T) {
	e := EnergyModel{IdleWatts: 10, ActiveWatts: 30, JoulesPerByte: 2}
	if e.ComputeEnergy(2) != 80 {
		t.Fatalf("ComputeEnergy = %v", e.ComputeEnergy(2))
	}
	if e.IdleEnergy(3) != 30 {
		t.Fatalf("IdleEnergy = %v", e.IdleEnergy(3))
	}
	if e.TransferEnergy(5) != 10 {
		t.Fatalf("TransferEnergy = %v", e.TransferEnergy(5))
	}
	if e.TransferEnergy(0) != 0 || e.TransferEnergy(-1) != 0 {
		t.Fatal("non-positive bytes should be free")
	}
}

func TestPresetsValid(t *testing.T) {
	for _, d := range []*Device{XeonCore(), P100(), RaspberryPi(), Smartphone()} {
		if err := d.Validate(); err != nil {
			t.Errorf("%s: %v", d.Name, err)
		}
	}
	for _, l := range []*Link{PCIe3x16(), WiFi()} {
		if err := l.Validate(); err != nil {
			t.Errorf("%s: %v", l.Name, err)
		}
	}
	if XeonCore().Kind != EdgeDevice || P100().Kind != Accelerator {
		t.Fatal("preset kinds wrong")
	}
}

func TestPresetOrdering(t *testing.T) {
	// Sanity: the accelerator is the fastest raw compute; the Pi the slowest.
	if P100().PeakFlops <= XeonCore().PeakFlops {
		t.Fatal("P100 should outrate the Xeon core")
	}
	if RaspberryPi().PeakFlops >= Smartphone().PeakFlops {
		t.Fatal("Pi should be slower than the phone")
	}
}

func TestClampPositive(t *testing.T) {
	if clampPositive(2, 5) != 2 {
		t.Fatal("positive passthrough broken")
	}
	if clampPositive(-1, 5) != 5 || clampPositive(0, 5) != 5 {
		t.Fatal("fallback broken")
	}
	if clampPositive(math.NaN(), 5) != 5 || clampPositive(math.Inf(1), 5) != 5 {
		t.Fatal("non-finite fallback broken")
	}
}

func TestFiveGPreset(t *testing.T) {
	l := FiveG()
	if err := l.Validate(); err != nil {
		t.Fatal(err)
	}
	// 5G sits between PCIe and WiFi in bandwidth, with wireless latency.
	if l.Bandwidth >= PCIe3x16().Bandwidth || l.Bandwidth <= WiFi().Bandwidth {
		t.Fatalf("5G bandwidth %v not between WiFi and PCIe", l.Bandwidth)
	}
	if l.Latency <= PCIe3x16().Latency {
		t.Fatal("5G latency should exceed PCIe latency")
	}
}

func TestTaskOverheadInComputeSeconds(t *testing.T) {
	d := &Device{Name: "d", PeakFlops: 1e9, MemBandwidth: 1e9, TaskOverhead: 2 * time.Millisecond}
	if got := d.ComputeSeconds(1e9, 0); math.Abs(got-1.002) > 1e-12 {
		t.Fatalf("ComputeSeconds with task overhead = %v", got)
	}
	bad := Device{Name: "x", PeakFlops: 1, MemBandwidth: 1, TaskOverhead: -1}
	if bad.Validate() == nil {
		t.Fatal("negative TaskOverhead accepted")
	}
}
