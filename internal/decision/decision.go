// Package decision implements the algorithm-selection models of the paper's
// Section IV. Clustering algorithms into performance classes is only the
// means; the end is choosing an algorithm under criteria beyond raw speed:
//
//   - an operating-cost trade-off (is procuring/renting the accelerator
//     worth the speed-up?),
//   - a FLOP budget on the energy-constrained edge device,
//   - an energy-aware switching policy that moves between algorithms of
//     neighbouring performance classes as the device heats up and cools
//     down (the paper's "switch to algDAA ... and then switch back to
//     algDDD when the device cools down").
package decision

import (
	"errors"
	"fmt"
	"sort"
)

// AlgorithmProfile aggregates everything the decision models need to know
// about one algorithm: its cluster from the relative-performance analysis
// and its resource footprint from the measurement runs. The JSON tags are
// the wire format the fleet daemon serves, so remote clients can drive the
// decision models without re-parsing report text.
type AlgorithmProfile struct {
	// Name is the placement name ("DDA").
	Name string `json:"name"`
	// Rank is the final performance class (1 = fastest).
	Rank int `json:"rank"`
	// Score is the final relative score (confidence of the class).
	Score float64 `json:"score"`
	// MeanSeconds is the mean measured execution time.
	MeanSeconds float64 `json:"mean_seconds"`
	// EdgeFlops / AccelFlops are the FLOPs executed per device per run.
	EdgeFlops  int64 `json:"edge_flops"`
	AccelFlops int64 `json:"accel_flops"`
	// EdgeJoules / AccelJoules are modeled energies per run.
	EdgeJoules  float64 `json:"edge_joules"`
	AccelJoules float64 `json:"accel_joules"`
	// AccelSeconds is the accelerator busy time per run, the quantity an
	// operating-cost model charges for.
	AccelSeconds float64 `json:"accel_seconds"`
}

// ErrNoCandidate is returned when no algorithm satisfies the constraints.
var ErrNoCandidate = errors.New("decision: no algorithm satisfies the constraints")

// CostModel prices a run: accelerator busy time costs money, and execution
// time has value (latency-critical applications price milliseconds highly;
// batch jobs price them at almost nothing). The paper: "a decision-model can
// make a trade-off between n, relative scores and operating cost".
type CostModel struct {
	// AccelCostPerHour is the accelerator's operating cost in $/hour of
	// busy time.
	AccelCostPerHour float64
	// TimeValuePerSecond is the application's value of saved time in $/s.
	TimeValuePerSecond float64
}

// RunCost returns the modeled cost of one run of the algorithm.
func (cm CostModel) RunCost(p AlgorithmProfile) float64 {
	return p.AccelSeconds/3600*cm.AccelCostPerHour + p.MeanSeconds*cm.TimeValuePerSecond
}

// ChooseMinCost returns the profile with the lowest modeled cost; ties break
// toward the better rank, then the higher score.
func ChooseMinCost(profiles []AlgorithmProfile, cm CostModel) (AlgorithmProfile, error) {
	if len(profiles) == 0 {
		return AlgorithmProfile{}, ErrNoCandidate
	}
	best := profiles[0]
	bestCost := cm.RunCost(best)
	for _, p := range profiles[1:] {
		c := cm.RunCost(p)
		switch {
		case c < bestCost:
			best, bestCost = p, c
		case c == bestCost && (p.Rank < best.Rank || (p.Rank == best.Rank && p.Score > best.Score)):
			best = p
		}
	}
	return best, nil
}

// Speedup returns how much faster a is than b (b.Mean / a.Mean).
func Speedup(a, b AlgorithmProfile) float64 {
	if a.MeanSeconds <= 0 {
		return 0
	}
	return b.MeanSeconds / a.MeanSeconds
}

// ProcurementAnalysis answers the paper's "whether one should spend money on
// an accelerator" question: it compares the best device-only algorithm with
// the best overall algorithm.
type ProcurementAnalysis struct {
	// BestLocal is the fastest algorithm that uses no accelerator.
	BestLocal AlgorithmProfile
	// BestOverall is the fastest algorithm of all.
	BestOverall AlgorithmProfile
	// Speedup is BestLocal.Mean / BestOverall.Mean.
	Speedup float64
	// SecondsSavedPerRun is the absolute gain.
	SecondsSavedPerRun float64
	// AccelSecondsPerRun is what the accelerator must be paid for.
	AccelSecondsPerRun float64
}

// AnalyzeProcurement computes the trade-off. Profiles with zero AccelFlops
// count as device-only.
func AnalyzeProcurement(profiles []AlgorithmProfile) (*ProcurementAnalysis, error) {
	if len(profiles) == 0 {
		return nil, ErrNoCandidate
	}
	var local, overall *AlgorithmProfile
	for i := range profiles {
		p := &profiles[i]
		if overall == nil || better(p, overall) {
			overall = p
		}
		if p.AccelFlops == 0 && (local == nil || better(p, local)) {
			local = p
		}
	}
	if local == nil {
		return nil, errors.New("decision: no device-only algorithm among profiles")
	}
	return &ProcurementAnalysis{
		BestLocal:          *local,
		BestOverall:        *overall,
		Speedup:            Speedup(*overall, *local),
		SecondsSavedPerRun: local.MeanSeconds - overall.MeanSeconds,
		AccelSecondsPerRun: overall.AccelSeconds,
	}, nil
}

// WorthProcuring reports whether the accelerator pays for itself under the
// cost model: the value of the time saved per run must exceed the
// accelerator cost per run.
func (pa *ProcurementAnalysis) WorthProcuring(cm CostModel) bool {
	gain := pa.SecondsSavedPerRun * cm.TimeValuePerSecond
	cost := pa.AccelSecondsPerRun / 3600 * cm.AccelCostPerHour
	return gain > cost
}

// better orders profiles by rank, then score, then mean time.
func better(a, b *AlgorithmProfile) bool {
	if a.Rank != b.Rank {
		return a.Rank < b.Rank
	}
	if a.Score != b.Score {
		return a.Score > b.Score
	}
	return a.MeanSeconds < b.MeanSeconds
}

// ChooseWithinEdgeBudget returns the best-ranked algorithm whose per-run
// edge-device FLOPs do not exceed the budget — the paper's "one could choose
// the algorithm that performs at-most X floating point operations on an
// energy-constrained edge device".
func ChooseWithinEdgeBudget(profiles []AlgorithmProfile, maxEdgeFlops int64) (AlgorithmProfile, error) {
	var candidates []AlgorithmProfile
	for _, p := range profiles {
		if p.EdgeFlops <= maxEdgeFlops {
			candidates = append(candidates, p)
		}
	}
	if len(candidates) == 0 {
		return AlgorithmProfile{}, ErrNoCandidate
	}
	sort.SliceStable(candidates, func(i, j int) bool { return better(&candidates[i], &candidates[j]) })
	return candidates[0], nil
}

// MostOffloading returns, among the algorithms of the given rank (or
// better), the one with the fewest edge FLOPs — the paper's choice of
// algDAA "as it offloads most of the computations to the accelerator".
func MostOffloading(profiles []AlgorithmProfile, maxRank int) (AlgorithmProfile, error) {
	var best *AlgorithmProfile
	for i := range profiles {
		p := &profiles[i]
		if p.Rank > maxRank {
			continue
		}
		if best == nil || p.EdgeFlops < best.EdgeFlops {
			best = p
		}
	}
	if best == nil {
		return AlgorithmProfile{}, fmt.Errorf("%w: no algorithm at rank <= %d", ErrNoCandidate, maxRank)
	}
	return *best, nil
}
