package decision

import (
	"errors"
	"math"
	"testing"
)

// tableIProfiles builds a profile set shaped like the paper's Table I
// experiment (times in seconds, energies in joules).
func tableIProfiles() []AlgorithmProfile {
	return []AlgorithmProfile{
		{Name: "DDA", Rank: 1, Score: 1.0, MeanSeconds: 0.0344, EdgeFlops: 4e7, AccelFlops: 2e9, EdgeJoules: 1.2, AccelJoules: 8, AccelSeconds: 0.030},
		{Name: "DAA", Rank: 2, Score: 1.0, MeanSeconds: 0.0366, EdgeFlops: 1e7, AccelFlops: 2.03e9, EdgeJoules: 0.6, AccelJoules: 9, AccelSeconds: 0.033},
		{Name: "DDD", Rank: 2, Score: 0.7, MeanSeconds: 0.0373, EdgeFlops: 2.04e9, AccelFlops: 0, EdgeJoules: 1.7, AccelJoules: 0, AccelSeconds: 0},
		{Name: "ADA", Rank: 3, Score: 0.7, MeanSeconds: 0.0387, EdgeFlops: 3e7, AccelFlops: 2.01e9, EdgeJoules: 1.1, AccelJoules: 8.5, AccelSeconds: 0.031},
		{Name: "DAD", Rank: 3, Score: 0.7, MeanSeconds: 0.0395, EdgeFlops: 2.01e9, AccelFlops: 3e7, EdgeJoules: 1.65, AccelJoules: 1, AccelSeconds: 0.004},
		{Name: "AAA", Rank: 4, Score: 0.7, MeanSeconds: 0.0409, EdgeFlops: 0, AccelFlops: 2.04e9, EdgeJoules: 0.4, AccelJoules: 9.5, AccelSeconds: 0.036},
		{Name: "ADD", Rank: 4, Score: 0.7, MeanSeconds: 0.0417, EdgeFlops: 2.02e9, AccelFlops: 1e7, EdgeJoules: 1.68, AccelJoules: 0.8, AccelSeconds: 0.003},
		{Name: "AAD", Rank: 5, Score: 1.0, MeanSeconds: 0.0438, EdgeFlops: 1.98e9, AccelFlops: 4e7, EdgeJoules: 1.66, AccelJoules: 1.5, AccelSeconds: 0.006},
	}
}

func TestRunCost(t *testing.T) {
	cm := CostModel{AccelCostPerHour: 3600, TimeValuePerSecond: 0}
	p := AlgorithmProfile{AccelSeconds: 2}
	if got := cm.RunCost(p); got != 2 {
		t.Fatalf("RunCost = %v", got)
	}
	cm2 := CostModel{TimeValuePerSecond: 10}
	p2 := AlgorithmProfile{MeanSeconds: 0.5}
	if got := cm2.RunCost(p2); got != 5 {
		t.Fatalf("RunCost = %v", got)
	}
}

func TestChooseMinCostPureCost(t *testing.T) {
	// Accelerator expensive, time worthless → choose a device-only alg.
	cm := CostModel{AccelCostPerHour: 1000, TimeValuePerSecond: 0}
	best, err := ChooseMinCost(tableIProfiles(), cm)
	if err != nil {
		t.Fatal(err)
	}
	if best.AccelSeconds != 0 {
		t.Fatalf("chose %s which uses the accelerator", best.Name)
	}
	if best.Name != "DDD" {
		t.Fatalf("chose %s, want DDD (best-ranked zero-cost algorithm)", best.Name)
	}
}

func TestChooseMinCostLatencyCritical(t *testing.T) {
	// Time extremely valuable → choose the fastest algorithm regardless of
	// accelerator cost (the autonomous-vehicle scenario).
	cm := CostModel{AccelCostPerHour: 1, TimeValuePerSecond: 1e6}
	best, err := ChooseMinCost(tableIProfiles(), cm)
	if err != nil {
		t.Fatal(err)
	}
	if best.Name != "DDA" {
		t.Fatalf("chose %s, want DDA", best.Name)
	}
}

func TestChooseMinCostEmpty(t *testing.T) {
	if _, err := ChooseMinCost(nil, CostModel{}); !errors.Is(err, ErrNoCandidate) {
		t.Fatal("empty profiles accepted")
	}
}

func TestSpeedup(t *testing.T) {
	a := AlgorithmProfile{MeanSeconds: 2}
	b := AlgorithmProfile{MeanSeconds: 3}
	if Speedup(a, b) != 1.5 {
		t.Fatal("Speedup wrong")
	}
	if Speedup(AlgorithmProfile{}, b) != 0 {
		t.Fatal("zero-mean speedup should be 0")
	}
}

func TestAnalyzeProcurement(t *testing.T) {
	pa, err := AnalyzeProcurement(tableIProfiles())
	if err != nil {
		t.Fatal(err)
	}
	if pa.BestLocal.Name != "DDD" {
		t.Fatalf("best local = %s", pa.BestLocal.Name)
	}
	if pa.BestOverall.Name != "DDA" {
		t.Fatalf("best overall = %s", pa.BestOverall.Name)
	}
	// The paper: ~0.002-0.003 s saved, speedup ≈ 1.05-1.09.
	if pa.SecondsSavedPerRun < 0.001 || pa.SecondsSavedPerRun > 0.005 {
		t.Fatalf("saved = %v", pa.SecondsSavedPerRun)
	}
	if pa.Speedup < 1.03 || pa.Speedup > 1.15 {
		t.Fatalf("speedup = %v", pa.Speedup)
	}
}

func TestAnalyzeProcurementErrors(t *testing.T) {
	if _, err := AnalyzeProcurement(nil); err == nil {
		t.Fatal("empty accepted")
	}
	onlyAccel := []AlgorithmProfile{{Name: "AAA", Rank: 1, MeanSeconds: 1, AccelFlops: 5}}
	if _, err := AnalyzeProcurement(onlyAccel); err == nil {
		t.Fatal("no-local set accepted")
	}
}

func TestWorthProcuring(t *testing.T) {
	pa := &ProcurementAnalysis{SecondsSavedPerRun: 0.003, AccelSecondsPerRun: 0.03}
	// Latency-critical: 3 ms worth $0.3; accel cost negligible.
	if !pa.WorthProcuring(CostModel{AccelCostPerHour: 1, TimeValuePerSecond: 100}) {
		t.Fatal("should be worth it for latency-critical app")
	}
	// Batch job: time worth nothing.
	if pa.WorthProcuring(CostModel{AccelCostPerHour: 10, TimeValuePerSecond: 0}) {
		t.Fatal("should not be worth it for batch app")
	}
}

func TestChooseWithinEdgeBudget(t *testing.T) {
	profiles := tableIProfiles()
	// Generous budget: best-ranked algorithm wins outright.
	best, err := ChooseWithinEdgeBudget(profiles, 1e12)
	if err != nil {
		t.Fatal(err)
	}
	if best.Name != "DDA" {
		t.Fatalf("unbounded choice = %s", best.Name)
	}
	// Tight budget (< 2e9 edge flops): DDD, DAD, ADD, AAD excluded; best
	// remaining by rank is DDA (4e7 edge flops).
	best, err = ChooseWithinEdgeBudget(profiles, 5e7)
	if err != nil {
		t.Fatal(err)
	}
	if best.Name != "DDA" {
		t.Fatalf("budgeted choice = %s", best.Name)
	}
	// Budget below every algorithm that touches the edge: only AAA fits.
	best, err = ChooseWithinEdgeBudget(profiles, 0)
	if err != nil {
		t.Fatal(err)
	}
	if best.Name != "AAA" {
		t.Fatalf("zero-budget choice = %s", best.Name)
	}
	// Impossible budget.
	if _, err := ChooseWithinEdgeBudget(profiles, -1); !errors.Is(err, ErrNoCandidate) {
		t.Fatal("impossible budget accepted")
	}
}

func TestMostOffloading(t *testing.T) {
	profiles := tableIProfiles()
	// Among the top two classes, DAA offloads the most (the paper's pick).
	p, err := MostOffloading(profiles, 2)
	if err != nil {
		t.Fatal(err)
	}
	if p.Name != "DAA" {
		t.Fatalf("most offloading in C1-C2 = %s, want DAA", p.Name)
	}
	// Among class 1 only, DDA is the only member.
	p, err = MostOffloading(profiles, 1)
	if err != nil {
		t.Fatal(err)
	}
	if p.Name != "DDA" {
		t.Fatalf("rank-1 choice = %s", p.Name)
	}
	if _, err := MostOffloading(profiles, 0); !errors.Is(err, ErrNoCandidate) {
		t.Fatal("rank 0 should have no candidates")
	}
}

func testSwitcher() *Switcher {
	return &Switcher{
		Preferred:        AlgorithmProfile{Name: "DDD", MeanSeconds: 0.037, EdgeJoules: 1.7},
		Fallback:         AlgorithmProfile{Name: "DAA", MeanSeconds: 0.0366, EdgeJoules: 0.6},
		HighWater:        10,
		LowWater:         3,
		DissipationWatts: 25, // drains ~0.93 J per job
	}
}

func TestSwitcherValidate(t *testing.T) {
	if err := testSwitcher().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := testSwitcher()
	bad.LowWater = 20
	if bad.Validate() == nil {
		t.Fatal("inverted water marks accepted")
	}
	bad2 := testSwitcher()
	bad2.HighWater = 0
	if bad2.Validate() == nil {
		t.Fatal("zero high water accepted")
	}
	bad3 := testSwitcher()
	bad3.DissipationWatts = -1
	if bad3.Validate() == nil {
		t.Fatal("negative dissipation accepted")
	}
	bad4 := testSwitcher()
	bad4.Preferred.MeanSeconds = 0
	if bad4.Validate() == nil {
		t.Fatal("zero mean accepted")
	}
}

func TestSwitcherSessionOscillates(t *testing.T) {
	s := testSwitcher()
	res, err := s.RunSession(200)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Steps) != 200 {
		t.Fatalf("steps = %d", len(res.Steps))
	}
	// The preferred algorithm heats the device (+1.7 -0.93 ≈ +0.77 J/job),
	// the fallback cools it (+0.6 -0.91 ≈ -0.31 J/job): the session must
	// switch modes repeatedly.
	if res.Switches < 4 {
		t.Fatalf("only %d switches in 200 jobs", res.Switches)
	}
	if res.FallbackJobs == 0 || res.FallbackJobs == 200 {
		t.Fatalf("fallback jobs = %d, want a mixture", res.FallbackJobs)
	}
	// The accumulator respects the high-water mark plus one job's worth of
	// overshoot.
	if res.PeakEnergy > s.HighWater+s.Preferred.EdgeJoules {
		t.Fatalf("peak energy %v implausibly above high water", res.PeakEnergy)
	}
	// Energy trace is consistent: never negative, clock increases.
	prevClock := 0.0
	for _, st := range res.Steps {
		if st.EnergyAfter < 0 {
			t.Fatal("negative accumulator")
		}
		if st.Clock <= prevClock {
			t.Fatal("clock not increasing")
		}
		prevClock = st.Clock
	}
	if math.Abs(res.TotalSeconds-prevClock) > 1e-9 {
		t.Fatal("TotalSeconds mismatch")
	}
}

func TestSwitcherHotJobsUseFallback(t *testing.T) {
	s := testSwitcher()
	res, err := s.RunSession(100)
	if err != nil {
		t.Fatal(err)
	}
	for _, st := range res.Steps {
		if st.Hot && st.Alg != "DAA" {
			t.Fatalf("hot job %d used %s", st.Job, st.Alg)
		}
		if !st.Hot && st.Alg != "DDD" {
			t.Fatalf("cool job %d used %s", st.Job, st.Alg)
		}
	}
}

func TestSwitcherNeverHotWhenCoolRunning(t *testing.T) {
	// With dissipation exceeding the heating rate the device never crosses
	// the high-water mark.
	s := testSwitcher()
	s.DissipationWatts = 100
	res, err := s.RunSession(100)
	if err != nil {
		t.Fatal(err)
	}
	if res.Switches != 0 || res.FallbackJobs != 0 {
		t.Fatalf("unexpected switching: %+v", res)
	}
}

func TestSwitcherErrors(t *testing.T) {
	s := testSwitcher()
	if _, err := s.RunSession(0); err == nil {
		t.Fatal("zero jobs accepted")
	}
	bad := testSwitcher()
	bad.HighWater = -1
	if _, err := bad.RunSession(10); err == nil {
		t.Fatal("invalid switcher ran")
	}
}
