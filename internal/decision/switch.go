package decision

import (
	"errors"
	"fmt"
)

// Switcher implements the paper's energy-aware switching scenario: run the
// preferred algorithm until the edge device's energy (thermal) accumulator
// crosses a high-water mark, switch to a fallback that offloads most of the
// computation, and switch back once the device has cooled below a low-water
// mark. The accumulator integrates per-job edge energy and dissipates at a
// constant rate over wall-clock time (a first-order thermal model).
type Switcher struct {
	// Preferred is the algorithm used while the device is cool (the
	// paper's algDDD).
	Preferred AlgorithmProfile
	// Fallback is the algorithm used while hot — typically
	// MostOffloading() of the top clusters (the paper's algDAA).
	Fallback AlgorithmProfile
	// HighWater and LowWater are the accumulator thresholds in joules.
	HighWater, LowWater float64
	// DissipationWatts is the cooling rate (joules drained per second of
	// wall-clock time, including the run itself).
	DissipationWatts float64
}

// Validate rejects nonsensical configurations.
func (s *Switcher) Validate() error {
	if s.HighWater <= 0 || s.LowWater < 0 {
		return errors.New("decision: water marks must be positive")
	}
	if s.LowWater >= s.HighWater {
		return errors.New("decision: LowWater must be below HighWater")
	}
	if s.DissipationWatts < 0 {
		return errors.New("decision: negative dissipation")
	}
	if s.Preferred.MeanSeconds <= 0 || s.Fallback.MeanSeconds <= 0 {
		return errors.New("decision: profiles need positive mean times")
	}
	return nil
}

// SwitchStep is one job in a switching-session trace.
type SwitchStep struct {
	// Job is the 0-based job index.
	Job int
	// Alg is the algorithm used.
	Alg string
	// Hot reports whether the session was in fallback mode.
	Hot bool
	// EnergyAfter is the accumulator in joules after the job (and its
	// dissipation) completed.
	EnergyAfter float64
	// Clock is the wall-clock time in seconds after the job.
	Clock float64
}

// SessionResult summarizes a simulated switching session.
type SessionResult struct {
	Steps []SwitchStep
	// Switches counts mode changes.
	Switches int
	// FallbackJobs counts jobs run on the fallback algorithm.
	FallbackJobs int
	// TotalSeconds is the session wall-clock time.
	TotalSeconds float64
	// TotalEdgeJoules is the raw (pre-dissipation) edge energy spent.
	TotalEdgeJoules float64
	// PeakEnergy is the maximum accumulator value observed.
	PeakEnergy float64
}

// RunSession simulates jobs back-to-back executions under the policy.
func (s *Switcher) RunSession(jobs int) (*SessionResult, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	if jobs <= 0 {
		return nil, fmt.Errorf("decision: job count must be positive, got %d", jobs)
	}
	res := &SessionResult{Steps: make([]SwitchStep, 0, jobs)}
	energy := 0.0
	clock := 0.0
	hot := false
	for j := 0; j < jobs; j++ {
		p := s.Preferred
		ranHot := hot
		if hot {
			p = s.Fallback
			res.FallbackJobs++
		}
		// Charge the job's edge energy, then dissipate over its duration.
		energy += p.EdgeJoules
		res.TotalEdgeJoules += p.EdgeJoules
		energy -= s.DissipationWatts * p.MeanSeconds
		if energy < 0 {
			energy = 0
		}
		clock += p.MeanSeconds
		if energy > res.PeakEnergy {
			res.PeakEnergy = energy
		}
		// Hysteresis: cross the high-water mark → go hot; drop below the
		// low-water mark → cool down.
		switch {
		case !hot && energy >= s.HighWater:
			hot = true
			res.Switches++
		case hot && energy <= s.LowWater:
			hot = false
			res.Switches++
		}
		res.Steps = append(res.Steps, SwitchStep{
			Job: j, Alg: p.Name, Hot: ranHot,
			EnergyAfter: energy, Clock: clock,
		})
	}
	res.TotalSeconds = clock
	return res, nil
}
