// Package faultpoint provides named, test-armable fault injection points
// for the durability layer: the WAL, the atomic snapshot writer and the
// replica pusher each consult a point at the moment they would touch disk
// or the network, and an armed point makes that moment fail — with an
// injected error, a hard process kill, or a torn (partial) write.
//
// Points are inert unless armed, and arming happens only in tests — either
// in-process via Arm, or across a process boundary via the
// RELPERF_FAULTPOINT environment variable (ArmFromEnv), which is how the
// crash-recovery e2e kills a real relperfd mid-suite at a chosen write.
// The set of point names is owned by the call sites; the durability layer
// uses:
//
//	wal.append.write    before a WAL record's bytes are written
//	wal.append.sync     before the WAL append's fsync
//	snapshot.write      before the snapshot's bytes are written
//	snapshot.sync       before the snapshot file's fsync
//	snapshot.rename     before the snapshot's rename into place
//	replica.push        before a snapshot is pushed to one standby
package faultpoint

import (
	"errors"
	"fmt"
	"os"
	"strconv"
	"strings"
	"sync"
	"syscall"
)

// Mode is what an armed point does when it fires.
type Mode string

const (
	// Off is the zero mode: the point does nothing.
	Off Mode = ""
	// Error makes Hit return ErrInjected — the "disk said no" simulation.
	Error Mode = "error"
	// Crash kills the process with SIGKILL — uncatchable, exactly the
	// `kill -9` the recovery path must survive.
	Crash Mode = "crash"
	// Tear asks the call site to perform a partial write and then crash —
	// the torn-tail simulation. Only sites that declare tear support
	// honour it; others treat it as Crash.
	Tear Mode = "tear"
)

// ErrInjected is the error an Error-mode point injects; call sites wrap it.
var ErrInjected = errors.New("faultpoint: injected fault")

// point is one armed fault: fire on the n-th upcoming hit.
type point struct {
	mode      Mode
	remaining int // hits left before firing; fires when it reaches 0
}

var (
	mu     sync.Mutex
	points = map[string]*point{}
)

// Arm schedules the named point to fire with mode on its n-th upcoming
// hit (n <= 1 means the very next one). A point fires once and disarms
// itself — re-arm for repeated faults.
func Arm(name string, mode Mode, n int) {
	if n < 1 {
		n = 1
	}
	mu.Lock()
	defer mu.Unlock()
	points[name] = &point{mode: mode, remaining: n}
}

// Disarm removes the named point.
func Disarm(name string) {
	mu.Lock()
	defer mu.Unlock()
	delete(points, name)
}

// Reset disarms every point — test cleanup.
func Reset() {
	mu.Lock()
	defer mu.Unlock()
	points = map[string]*point{}
}

// Fire advances the named point by one hit and reports the mode to apply
// at this hit: Off when the point is unarmed or its trigger count has not
// been reached yet. A firing point disarms itself.
func Fire(name string) Mode {
	mu.Lock()
	defer mu.Unlock()
	p, ok := points[name]
	if !ok {
		return Off
	}
	p.remaining--
	if p.remaining > 0 {
		return Off
	}
	delete(points, name)
	return p.mode
}

// Hit is the common call-site form: it fires the point and applies the
// simple modes — Error returns a wrapped ErrInjected, Crash (and Tear, at
// sites without torn-write support) kills the process. Unarmed points
// cost one mutexed map lookup.
func Hit(name string) error {
	switch Fire(name) {
	case Error:
		return fmt.Errorf("%w at %s", ErrInjected, name)
	case Crash, Tear:
		Kill(name)
	}
	return nil
}

// Kill terminates the process with SIGKILL — uncatchable and unflushable,
// so everything not yet durable is genuinely lost, which is the point. A
// loud stderr line first, so the harness can see where the crash landed.
func Kill(name string) {
	fmt.Fprintf(os.Stderr, "faultpoint: killing process at %s\n", name)
	_ = syscall.Kill(os.Getpid(), syscall.SIGKILL)
	os.Exit(137) // unreachable unless Kill is unavailable; 128+9 either way
}

// EnvVar is the environment variable ArmFromEnv reads in relperfd.
const EnvVar = "RELPERF_FAULTPOINT"

// ArmFromEnv arms points from a spec like
// "wal.append.sync=crash:3,replica.push=error" — comma-separated
// name=mode[:n] terms, n defaulting to 1. An empty spec arms nothing.
// This is the cross-process arming path: the crash e2e sets the variable,
// the daemon arms at startup, and the chosen write kills it.
func ArmFromEnv(spec string, logf func(format string, args ...any)) error {
	if spec == "" {
		return nil
	}
	if logf == nil {
		logf = func(string, ...any) {}
	}
	for _, term := range strings.Split(spec, ",") {
		term = strings.TrimSpace(term)
		if term == "" {
			continue
		}
		name, rest, ok := strings.Cut(term, "=")
		if !ok || name == "" {
			return fmt.Errorf("faultpoint: term %q is not name=mode[:n]", term)
		}
		modeStr, nStr, hasN := strings.Cut(rest, ":")
		n := 1
		if hasN {
			v, err := strconv.Atoi(nStr)
			if err != nil || v < 1 {
				return fmt.Errorf("faultpoint: term %q has a bad hit count %q", term, nStr)
			}
			n = v
		}
		mode := Mode(modeStr)
		switch mode {
		case Error, Crash, Tear:
		default:
			return fmt.Errorf("faultpoint: term %q has unknown mode %q", term, modeStr)
		}
		Arm(name, mode, n)
		logf("faultpoint: armed %s mode=%s on hit %d", name, mode, n)
	}
	return nil
}
