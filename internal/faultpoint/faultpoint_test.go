package faultpoint

import (
	"errors"
	"testing"
)

func TestHitFiresOnNthAndDisarms(t *testing.T) {
	t.Cleanup(Reset)
	Arm("p", Error, 3)
	for i := 1; i <= 2; i++ {
		if err := Hit("p"); err != nil {
			t.Fatalf("hit %d fired early: %v", i, err)
		}
	}
	if err := Hit("p"); !errors.Is(err, ErrInjected) {
		t.Fatalf("hit 3 = %v, want ErrInjected", err)
	}
	// One-shot: the fired point is gone.
	for i := 0; i < 5; i++ {
		if err := Hit("p"); err != nil {
			t.Fatalf("hit after firing = %v, want nil", err)
		}
	}
}

func TestUnarmedPointsAreInert(t *testing.T) {
	t.Cleanup(Reset)
	if err := Hit("never-armed"); err != nil {
		t.Fatal(err)
	}
	if m := Fire("never-armed"); m != Off {
		t.Fatalf("Fire = %q, want Off", m)
	}
}

func TestDisarm(t *testing.T) {
	t.Cleanup(Reset)
	Arm("p", Error, 1)
	Disarm("p")
	if err := Hit("p"); err != nil {
		t.Fatalf("disarmed point fired: %v", err)
	}
}

func TestFireReportsTearMode(t *testing.T) {
	t.Cleanup(Reset)
	Arm("p", Tear, 1)
	if m := Fire("p"); m != Tear {
		t.Fatalf("Fire = %q, want tear", m)
	}
}

func TestArmFromEnv(t *testing.T) {
	t.Cleanup(Reset)
	if err := ArmFromEnv("a=error:2, b=crash ,c=tear:7", t.Logf); err != nil {
		t.Fatal(err)
	}
	if err := Hit("a"); err != nil {
		t.Fatalf("a fired on hit 1: %v", err)
	}
	if err := Hit("a"); !errors.Is(err, ErrInjected) {
		t.Fatalf("a hit 2 = %v, want ErrInjected", err)
	}
	if m := Fire("c"); m != Off {
		t.Fatalf("c fired on hit 1 (%q), armed for hit 7", m)
	}
	// b stays armed as crash; do not hit it in-process.
	Disarm("b")
}

func TestArmFromEnvRejectsBadSpecs(t *testing.T) {
	t.Cleanup(Reset)
	for _, spec := range []string{"noequals", "a=warp", "a=error:0", "a=error:x", "=error"} {
		if err := ArmFromEnv(spec, nil); err == nil {
			t.Errorf("spec %q accepted, want error", spec)
		}
	}
	if err := ArmFromEnv("", nil); err != nil {
		t.Fatalf("empty spec: %v", err)
	}
}
