// Package supervise keeps a child process alive: a dependency-free
// process supervisor in the forever.Run shape. Run starts the configured
// command, optionally probes an HTTP readiness URL before declaring the
// child ready, and restarts it whenever it exits — with capped-exponential
// backoff (deterministically jittered by xrand.Mix, the same discipline as
// the grid's retry and heartbeat backoff) so a sick child never turns into
// a fork busy-loop, and a restart budget so a child that can never come up
// parks the supervisor in a loud crash-loop state instead of restarting
// forever. Shutdown is clean: SIGTERM first, SIGKILL after a grace window.
//
// relperfd workers run under cmd/relperfmon (this package behind flags);
// the chaos soak harness (internal/chaos) embeds Supervisor directly and
// kills, pauses and dooms its children to prove the self-healing contract.
package supervise

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"relperf/internal/obs"
	"relperf/internal/xrand"
)

// State is the supervisor's externally visible lifecycle position.
type State string

const (
	// StateIdle: Run has not started yet.
	StateIdle State = "idle"
	// StateStarting: the child is launching (or being readiness-probed).
	StateStarting State = "starting"
	// StateReady: the child is up (and, with a ReadyURL, answered its
	// readiness probe).
	StateReady State = "ready"
	// StateBackoff: the child exited; the supervisor is waiting out the
	// restart backoff.
	StateBackoff State = "backoff"
	// StateCrashLoop: the restart budget is exhausted — the supervisor
	// gave up and Run returned ErrCrashLoop.
	StateCrashLoop State = "crash-loop"
	// StateStopped: Run returned after a clean shutdown.
	StateStopped State = "stopped"
)

// stateCode maps states onto the supervise_state gauge. The mapping is
// part of the metric's contract (documented in its HELP string).
func stateCode(s State) int64 {
	switch s {
	case StateStarting:
		return 1
	case StateReady:
		return 2
	case StateBackoff:
		return 3
	case StateCrashLoop:
		return 4
	case StateStopped:
		return 5
	}
	return 0
}

// ErrCrashLoop is returned by Run when the child exceeded the restart
// budget inside the restart window — the child is structurally unable to
// stay up, and restarting it further would just burn the machine.
var ErrCrashLoop = errors.New("supervise: restart budget exhausted; child is crash-looping")

// Defaults for Config's zero values.
const (
	DefaultBackoffBase   = 100 * time.Millisecond
	DefaultBackoffMax    = 5 * time.Second
	DefaultRestartBudget = 5
	DefaultRestartWindow = time.Minute
	DefaultReadyTimeout  = 30 * time.Second
	DefaultShutdownGrace = 5 * time.Second
	// readyProbeInterval is how often the readiness URL is polled while
	// the child is starting.
	readyProbeInterval = 25 * time.Millisecond
)

// Config configures a Supervisor.
type Config struct {
	// Name labels the supervisor's metrics and log lines; defaults to
	// Command[0].
	Name string
	// Command is the child's argv; Command[0] is the binary.
	Command []string
	// Env is extra environment appended to the parent's for every start.
	Env []string
	// StartEnv, when set, returns extra environment for one specific
	// start, appended after Env. The chaos harness uses it to doom a
	// single restart attempt (RELPERF_FAULTPOINT) without touching the
	// steady-state environment.
	StartEnv func() []string
	// Stdout and Stderr receive the child's output; nil inherits the
	// supervisor's own.
	Stdout, Stderr io.Writer
	// BackoffBase is the first restart's backoff window (default 100ms);
	// each consecutive failed start doubles it, capped at BackoffMax
	// (default 5s). The delay is drawn from [window/2, window] keyed by
	// (JitterKey, attempt) — deterministic per supervisor, decorrelated
	// across a fleet.
	BackoffBase time.Duration
	// BackoffMax caps the backoff window growth.
	BackoffMax time.Duration
	// RestartBudget is how many restarts are tolerated inside
	// RestartWindow before the supervisor declares a crash-loop and gives
	// up (default 5 per minute).
	RestartBudget int
	// RestartWindow is the sliding window the budget counts over.
	RestartWindow time.Duration
	// ReadyURL, when set, is polled with GET until it answers 200 before
	// the child counts as ready (relperfd's /v1/healthz). While a child
	// keeps dying before readiness, the backoff exponent keeps growing;
	// reaching ready resets it.
	ReadyURL string
	// ReadyTimeout bounds the readiness probe per start; a child still
	// not ready when it expires is killed and counted as a failed start
	// (default 30s).
	ReadyTimeout time.Duration
	// ShutdownGrace is how long the child gets between SIGTERM and
	// SIGKILL at shutdown (default 5s).
	ShutdownGrace time.Duration
	// JitterKey seeds the backoff jitter; leave 0 to derive it from Name.
	JitterKey uint64
	// Logf receives supervisor diagnostics; nil discards them.
	Logf func(format string, args ...any)
	// Obs receives supervise_restarts_total and supervise_state; nil
	// disables metrics.
	Obs *obs.Obs
}

// Supervisor keeps one child command alive. Construct with New, drive
// with Run; State, Restarts, Pid and Signal are safe concurrently.
type Supervisor struct {
	cfg      Config
	jitter   uint64
	restarts atomic.Uint64

	restartsMetric *obs.Counter
	stateMetric    *obs.Gauge

	mu    sync.Mutex
	state State
	cmd   *exec.Cmd // current child; nil when none is running
}

// New returns an idle supervisor for the command.
func New(cfg Config) (*Supervisor, error) {
	if len(cfg.Command) == 0 {
		return nil, errors.New("supervise: empty command")
	}
	if cfg.Name == "" {
		cfg.Name = cfg.Command[0]
	}
	if cfg.BackoffBase <= 0 {
		cfg.BackoffBase = DefaultBackoffBase
	}
	if cfg.BackoffMax < cfg.BackoffBase {
		cfg.BackoffMax = DefaultBackoffMax
	}
	if cfg.BackoffMax < cfg.BackoffBase {
		cfg.BackoffMax = cfg.BackoffBase
	}
	if cfg.RestartBudget <= 0 {
		cfg.RestartBudget = DefaultRestartBudget
	}
	if cfg.RestartWindow <= 0 {
		cfg.RestartWindow = DefaultRestartWindow
	}
	if cfg.ReadyTimeout <= 0 {
		cfg.ReadyTimeout = DefaultReadyTimeout
	}
	if cfg.ShutdownGrace <= 0 {
		cfg.ShutdownGrace = DefaultShutdownGrace
	}
	s := &Supervisor{cfg: cfg, state: StateIdle}
	s.jitter = cfg.JitterKey
	if s.jitter == 0 {
		for _, b := range []byte(cfg.Name) {
			s.jitter = xrand.Mix(s.jitter, uint64(b))
		}
	}
	reg := cfg.Obs.Reg()
	s.restartsMetric = reg.Counter("supervise_restarts_total",
		"Child restarts performed by the supervisor.", obs.L("child", cfg.Name))
	s.stateMetric = reg.Gauge("supervise_state",
		"Supervisor state: 0 idle, 1 starting, 2 ready, 3 backoff, 4 crash-loop, 5 stopped.",
		obs.L("child", cfg.Name))
	return s, nil
}

func (s *Supervisor) logf(format string, args ...any) {
	if s.cfg.Logf != nil {
		s.cfg.Logf("supervise[%s]: %s", s.cfg.Name, fmt.Sprintf(format, args...))
	}
}

func (s *Supervisor) setState(st State) {
	s.mu.Lock()
	s.state = st
	s.mu.Unlock()
	s.stateMetric.Set(stateCode(st))
}

// State returns the supervisor's current lifecycle state.
func (s *Supervisor) State() State {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.state
}

// Restarts returns how many times the child has been restarted (the
// first start is not a restart).
func (s *Supervisor) Restarts() uint64 { return s.restarts.Load() }

// Pid returns the running child's PID, or 0 when no child is up.
func (s *Supervisor) Pid() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.cmd == nil || s.cmd.Process == nil {
		return 0
	}
	return s.cmd.Process.Pid
}

// Signal delivers sig to the running child — the chaos harness's kill
// and pause lever. Returns an error when no child is up.
func (s *Supervisor) Signal(sig os.Signal) error {
	s.mu.Lock()
	cmd := s.cmd
	s.mu.Unlock()
	if cmd == nil || cmd.Process == nil {
		return errors.New("supervise: no child running")
	}
	return cmd.Process.Signal(sig)
}

// RestartDelay is the pure backoff schedule: the window doubles from base
// per consecutive failed start (attempt 1 = first restart), capped at
// max, and the delay is drawn deterministically from [window/2, window]
// by mixing (key, attempt) — the same capped-doubling-with-derived-jitter
// shape as the grid's dispatch retry and heartbeat backoff, for the same
// reason: a fleet of supervisors restarting children after a shared
// failure must spread their restarts across the window, not stampede.
func RestartDelay(base, max time.Duration, attempt int, key uint64) time.Duration {
	if base <= 0 {
		base = DefaultBackoffBase
	}
	if max < base {
		max = base
	}
	window := base
	for i := 1; i < attempt && window < max; i++ {
		window *= 2
	}
	if window > max {
		window = max
	}
	half := window / 2
	jitter := xrand.Mix(key, uint64(attempt))
	return half + time.Duration(jitter%uint64(half+1))
}

// Run supervises the child until ctx is cancelled (clean shutdown: nil)
// or the restart budget is exhausted (ErrCrashLoop). Each iteration
// starts the child, waits for readiness when a ReadyURL is configured,
// then waits for the child to exit; every exit consumes restart budget
// and pays a jittered capped-exponential backoff before the next start.
func (s *Supervisor) Run(ctx context.Context) error {
	attempt := 0 // consecutive starts that never reached ready
	var exits []time.Time
	for {
		if ctx.Err() != nil {
			s.setState(StateStopped)
			return nil
		}
		s.setState(StateStarting)
		cmd, exitCh, err := s.start()
		started := time.Now()
		if err != nil {
			s.logf("start failed: %v", err)
		} else {
			ready, exited := s.awaitReady(ctx, cmd, exitCh)
			if ready {
				attempt = 0
				s.setState(StateReady)
				s.logf("child ready (pid %d)", cmd.Process.Pid)
			}
			if !exited {
				select {
				case err := <-exitCh:
					s.logf("child exited after %s: %v", time.Since(started).Round(time.Millisecond), err)
				case <-ctx.Done():
					s.terminate(cmd, exitCh)
					s.reap(cmd)
					s.setState(StateStopped)
					return nil
				}
			}
			s.reap(cmd)
		}
		if ctx.Err() != nil {
			s.setState(StateStopped)
			return nil
		}

		// The child is down. Charge the restart budget over the sliding
		// window; past it, park in crash-loop instead of spinning.
		now := time.Now()
		exits = append(exits, now)
		cutoff := now.Add(-s.cfg.RestartWindow)
		kept := exits[:0]
		for _, t := range exits {
			if t.After(cutoff) {
				kept = append(kept, t)
			}
		}
		exits = kept
		if len(exits) > s.cfg.RestartBudget {
			s.setState(StateCrashLoop)
			s.logf("%d exits within %s (budget %d): giving up", len(exits), s.cfg.RestartWindow, s.cfg.RestartBudget)
			return fmt.Errorf("%w (%d exits in %s)", ErrCrashLoop, len(exits), s.cfg.RestartWindow)
		}

		attempt++
		d := RestartDelay(s.cfg.BackoffBase, s.cfg.BackoffMax, attempt, s.jitter)
		s.setState(StateBackoff)
		s.logf("restarting in %s (attempt %d, %d/%d budget used)", d, attempt, len(exits), s.cfg.RestartBudget)
		t := time.NewTimer(d)
		select {
		case <-t.C:
		case <-ctx.Done():
			t.Stop()
			s.setState(StateStopped)
			return nil
		}
		s.restarts.Add(1)
		s.restartsMetric.Inc()
	}
}

// start launches one child process and a goroutine waiting on it. The
// child leads its own process group so that reap can sweep anything it
// forked without touching the supervisor's own group.
func (s *Supervisor) start() (*exec.Cmd, chan error, error) {
	cmd := exec.Command(s.cfg.Command[0], s.cfg.Command[1:]...)
	cmd.SysProcAttr = &syscall.SysProcAttr{Setpgid: true}
	env := os.Environ()
	env = append(env, s.cfg.Env...)
	if s.cfg.StartEnv != nil {
		env = append(env, s.cfg.StartEnv()...)
	}
	cmd.Env = env
	cmd.Stdout = s.cfg.Stdout
	cmd.Stderr = s.cfg.Stderr
	if cmd.Stdout == nil {
		cmd.Stdout = os.Stdout
	}
	if cmd.Stderr == nil {
		cmd.Stderr = os.Stderr
	}
	if err := cmd.Start(); err != nil {
		return nil, nil, err
	}
	s.mu.Lock()
	s.cmd = cmd
	s.mu.Unlock()
	exitCh := make(chan error, 1)
	go func() { exitCh <- cmd.Wait() }()
	return cmd, exitCh, nil
}

// reap forgets the current child after it has been waited on, and sweeps
// its process group with SIGKILL so an exiting incarnation cannot leave
// orphaned grandchildren holding ports or output pipes. ESRCH (the group
// is already empty) is the common, ignored case.
func (s *Supervisor) reap(cmd *exec.Cmd) {
	if cmd.Process != nil {
		_ = syscall.Kill(-cmd.Process.Pid, syscall.SIGKILL)
	}
	s.mu.Lock()
	s.cmd = nil
	s.mu.Unlock()
}

// awaitReady gates on the readiness probe. Returns (ready, exited):
// without a ReadyURL the child is ready by virtue of having started; with
// one, the URL is polled until 200 (ready), the child exits (not ready,
// exited — the exit error is already consumed from exitCh only when the
// probe observed it), ctx ends, or ReadyTimeout expires — in which case
// the child is killed and counted as a failed start.
func (s *Supervisor) awaitReady(ctx context.Context, cmd *exec.Cmd, exitCh chan error) (ready, exited bool) {
	if s.cfg.ReadyURL == "" {
		return true, false
	}
	client := &http.Client{Timeout: time.Second}
	deadline := time.Now().Add(s.cfg.ReadyTimeout)
	tick := time.NewTicker(readyProbeInterval)
	defer tick.Stop()
	for {
		select {
		case err := <-exitCh:
			s.logf("child exited before readiness: %v", err)
			return false, true
		case <-ctx.Done():
			return false, false
		case <-tick.C:
			resp, err := client.Get(s.cfg.ReadyURL)
			if err == nil {
				resp.Body.Close()
				if resp.StatusCode == http.StatusOK {
					return true, false
				}
			}
			if time.Now().After(deadline) {
				s.logf("readiness probe of %s timed out after %s; killing the child", s.cfg.ReadyURL, s.cfg.ReadyTimeout)
				_ = cmd.Process.Kill()
				<-exitCh
				return false, true
			}
		}
	}
}

// terminate shuts the child down cleanly: SIGTERM, a grace window, then
// SIGKILL. exitCh is the waiter channel from start.
func (s *Supervisor) terminate(cmd *exec.Cmd, exitCh chan error) {
	if cmd.Process == nil {
		return
	}
	_ = cmd.Process.Signal(syscall.SIGTERM)
	t := time.NewTimer(s.cfg.ShutdownGrace)
	defer t.Stop()
	select {
	case <-exitCh:
		s.logf("child exited on SIGTERM")
	case <-t.C:
		s.logf("child ignored SIGTERM for %s; killing", s.cfg.ShutdownGrace)
		_ = cmd.Process.Kill()
		<-exitCh
	}
}
