package supervise

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"syscall"
	"testing"
	"time"

	"relperf/internal/obs"
)

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, d time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("timed out after %s waiting for %s", d, what)
}

func TestRestartDelaySchedule(t *testing.T) {
	base, max := 100*time.Millisecond, 800*time.Millisecond
	const key = 12345
	window := base
	for attempt := 1; attempt <= 8; attempt++ {
		d := RestartDelay(base, max, attempt, key)
		if d < window/2 || d > window {
			t.Errorf("attempt %d: delay %s outside [%s, %s]", attempt, d, window/2, window)
		}
		if again := RestartDelay(base, max, attempt, key); again != d {
			t.Errorf("attempt %d: schedule not deterministic: %s then %s", attempt, d, again)
		}
		if window < max {
			window *= 2
			if window > max {
				window = max
			}
		}
	}
	// Past the cap the window must stop growing.
	if d := RestartDelay(base, max, 20, key); d < max/2 || d > max {
		t.Errorf("capped delay %s outside [%s, %s]", d, max/2, max)
	}
	// Different keys must decorrelate inside the same window.
	same := 0
	for attempt := 1; attempt <= 8; attempt++ {
		if RestartDelay(base, max, attempt, 1) == RestartDelay(base, max, attempt, 2) {
			same++
		}
	}
	if same == 8 {
		t.Error("jitter key has no effect on the schedule")
	}
}

func TestSupervisorCrashLoop(t *testing.T) {
	o := obs.New()
	s, err := New(Config{
		Name:          "doomed",
		Command:       []string{"sh", "-c", "exit 1"},
		BackoffBase:   time.Millisecond,
		BackoffMax:    4 * time.Millisecond,
		RestartBudget: 3,
		RestartWindow: time.Minute,
		Logf:          t.Logf,
		Obs:           o,
	})
	if err != nil {
		t.Fatal(err)
	}
	err = s.Run(context.Background())
	if !errors.Is(err, ErrCrashLoop) {
		t.Fatalf("Run = %v, want ErrCrashLoop", err)
	}
	if got := s.State(); got != StateCrashLoop {
		t.Errorf("state = %s, want %s", got, StateCrashLoop)
	}
	// Budget 3 tolerates 3 exits; the 4th trips the loop detector, so the
	// child was restarted exactly 3 times.
	if got := s.Restarts(); got != 3 {
		t.Errorf("restarts = %d, want 3", got)
	}
	var counter, gauge float64
	for _, m := range o.Reg().Snapshot() {
		if m.Value == nil {
			continue
		}
		switch m.Name {
		case "supervise_restarts_total":
			counter = *m.Value
		case "supervise_state":
			gauge = *m.Value
		}
	}
	if counter != 3 {
		t.Errorf("supervise_restarts_total = %v, want 3", counter)
	}
	if gauge != float64(stateCode(StateCrashLoop)) {
		t.Errorf("supervise_state = %v, want %d", gauge, stateCode(StateCrashLoop))
	}
}

func TestSupervisorRestartsKilledChildAfterReadiness(t *testing.T) {
	// The readiness endpoint stands in for the child's /v1/healthz: it
	// fails twice before answering 200, proving the supervisor keeps
	// probing instead of declaring ready on the first poll.
	var probes atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if probes.Add(1) <= 2 {
			w.WriteHeader(http.StatusServiceUnavailable)
			return
		}
		w.WriteHeader(http.StatusOK)
	}))
	defer srv.Close()

	s, err := New(Config{
		Name:          "sleeper",
		Command:       []string{"sh", "-c", "sleep 60"},
		BackoffBase:   time.Millisecond,
		BackoffMax:    8 * time.Millisecond,
		RestartBudget: 100,
		ReadyURL:      srv.URL,
		ReadyTimeout:  5 * time.Second,
		ShutdownGrace: time.Second,
		Logf:          t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- s.Run(ctx) }()

	waitFor(t, 5*time.Second, "first readiness", func() bool { return s.State() == StateReady })
	if probes.Load() < 3 {
		t.Errorf("ready after %d probes, want >= 3 (two refusals first)", probes.Load())
	}
	pid := s.Pid()
	if pid == 0 {
		t.Fatal("no child pid while ready")
	}

	// Kill the child out from under the supervisor; it must restart it
	// and probe it back to ready.
	if err := s.Signal(syscall.SIGKILL); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 5*time.Second, "restart after SIGKILL", func() bool {
		return s.Restarts() >= 1 && s.State() == StateReady && s.Pid() != pid
	})

	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Errorf("Run after cancel = %v, want nil", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Run did not return after cancel")
	}
	if got := s.State(); got != StateStopped {
		t.Errorf("state = %s, want %s", got, StateStopped)
	}
}

func TestSupervisorShutdownEscalatesToKill(t *testing.T) {
	// A child that ignores SIGTERM must be SIGKILLed after the grace
	// window rather than wedging shutdown.
	s, err := New(Config{
		Name:          "stubborn",
		Command:       []string{"sh", "-c", `trap "" TERM; sleep 60 & wait`},
		ShutdownGrace: 200 * time.Millisecond,
		RestartBudget: 100,
		Logf:          t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- s.Run(ctx) }()
	waitFor(t, 5*time.Second, "child up", func() bool { return s.Pid() != 0 })
	// Give sh a beat to install the trap before asking it to die.
	time.Sleep(50 * time.Millisecond)

	start := time.Now()
	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Errorf("Run = %v, want nil", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Run did not return: SIGKILL escalation failed")
	}
	if waited := time.Since(start); waited < 150*time.Millisecond {
		t.Errorf("shutdown took %s: grace window was not honored before SIGKILL", waited)
	}
}

func TestSupervisorCleanShutdownOnTerm(t *testing.T) {
	s, err := New(Config{
		Name:          "polite",
		Command:       []string{"sh", "-c", `trap "exit 0" TERM; sleep 60 & wait`},
		ShutdownGrace: 5 * time.Second,
		RestartBudget: 100,
		Logf:          t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- s.Run(ctx) }()
	waitFor(t, 5*time.Second, "child up", func() bool { return s.Pid() != 0 })
	time.Sleep(50 * time.Millisecond)

	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Errorf("Run = %v, want nil", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("polite child did not produce a prompt clean shutdown")
	}
	if got := s.State(); got != StateStopped {
		t.Errorf("state = %s, want %s", got, StateStopped)
	}
}
