package pool

import (
	"errors"
	"sync/atomic"
	"testing"
)

func TestForEachRunsEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{-1, 0, 1, 3, 100} {
		const n = 50
		var hits [n]int32
		err := ForEach(n, workers, func(i int) error {
			atomic.AddInt32(&hits[i], 1)
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		for i, h := range hits {
			if h != 1 {
				t.Fatalf("workers=%d: index %d ran %d times", workers, i, h)
			}
		}
	}
}

func TestForEachEmptyRange(t *testing.T) {
	if err := ForEach(0, 4, func(int) error { t.Fatal("fn called"); return nil }); err != nil {
		t.Fatal(err)
	}
}

func TestForEachReturnsError(t *testing.T) {
	e3, e7 := errors.New("e3"), errors.New("e7")
	fail := func(i int) error {
		switch i {
		case 3:
			return e3
		case 7:
			return e7
		}
		return nil
	}
	// Serial: units run in index order, 3 fails first and 7 is skipped.
	if err := ForEach(10, 1, fail); !errors.Is(err, e3) {
		t.Fatalf("serial err = %v, want the index-3 error", err)
	}
	// Parallel: which injected error surfaces depends on scheduling, but
	// one of them must.
	if err := ForEach(10, 4, fail); !errors.Is(err, e3) && !errors.Is(err, e7) {
		t.Fatalf("parallel err = %v, want an injected error", err)
	}
}

func TestForEachSkipsAfterFailure(t *testing.T) {
	boom := errors.New("boom")
	var ran int32
	err := ForEach(1000, 1, func(i int) error {
		atomic.AddInt32(&ran, 1)
		if i == 0 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatal(err)
	}
	if ran != 1 {
		t.Fatalf("%d units ran after the first failure, want short-circuit to 1", ran)
	}
}
