package pool

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
)

func TestForEachRunsEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{-1, 0, 1, 3, 100} {
		const n = 50
		var hits [n]int32
		err := ForEach(n, workers, func(i int) error {
			atomic.AddInt32(&hits[i], 1)
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		for i, h := range hits {
			if h != 1 {
				t.Fatalf("workers=%d: index %d ran %d times", workers, i, h)
			}
		}
	}
}

func TestForEachEmptyRange(t *testing.T) {
	if err := ForEach(0, 4, func(int) error { t.Fatal("fn called"); return nil }); err != nil {
		t.Fatal(err)
	}
}

func TestForEachReturnsError(t *testing.T) {
	e3, e7 := errors.New("e3"), errors.New("e7")
	fail := func(i int) error {
		switch i {
		case 3:
			return e3
		case 7:
			return e7
		}
		return nil
	}
	// Serial: units run in index order, 3 fails first and 7 is skipped.
	if err := ForEach(10, 1, fail); !errors.Is(err, e3) {
		t.Fatalf("serial err = %v, want the index-3 error", err)
	}
	// Parallel: which injected error surfaces depends on scheduling, but
	// one of them must.
	if err := ForEach(10, 4, fail); !errors.Is(err, e3) && !errors.Is(err, e7) {
		t.Fatalf("parallel err = %v, want an injected error", err)
	}
}

func TestForEachSkipsAfterFailure(t *testing.T) {
	boom := errors.New("boom")
	var ran int32
	err := ForEach(1000, 1, func(i int) error {
		atomic.AddInt32(&ran, 1)
		if i == 0 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatal(err)
	}
	if ran != 1 {
		t.Fatalf("%d units ran after the first failure, want short-circuit to 1", ran)
	}
}

// TestForEachStopsDispatchAfterFailure is the regression test for the
// dispatcher short-circuit: after an early failure the remaining indices
// must not be dispatched at all. The range is large enough that draining it
// through the jobs channel (the old behaviour) would dominate the runtime,
// while the executed-unit count bounds how much work escaped before the
// halt propagated.
func TestForEachStopsDispatchAfterFailure(t *testing.T) {
	boom := errors.New("boom")
	for _, workers := range []int{1, 4, 16} {
		var ran int32
		err := ForEach(1<<30, workers, func(i int) error {
			atomic.AddInt32(&ran, 1)
			if i == 0 {
				return boom
			}
			return nil
		})
		if !errors.Is(err, boom) {
			t.Fatal(err)
		}
		// The real regression signal is that this test returns at all: the
		// old dispatcher drained the full 2^30 range through the jobs
		// channel. The executed-unit bound is deliberately loose — workers
		// may churn units until the failing goroutine gets scheduled — but
		// must stay far below the range size.
		if int(ran) > 1<<20 {
			t.Fatalf("workers=%d: %d units ran after early failure", workers, ran)
		}
	}
}

func TestForEachCtxCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var ran int32
	err := ForEachCtx(ctx, 1<<30, 4, func(i int) error {
		if atomic.AddInt32(&ran, 1) == 8 {
			cancel()
		}
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if int(ran) > 1<<20 {
		t.Fatalf("%d units ran after cancellation", ran)
	}
}

func TestForEachCtxUnitErrorWinsOverCancellation(t *testing.T) {
	boom := errors.New("boom")
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	err := ForEachCtx(ctx, 100, 2, func(i int) error {
		if i == 0 {
			cancel()
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want the unit error", err)
	}
}

// TestPoolSharedBudget: two concurrent fan-outs through one 2-token pool
// never exceed 2 units in flight in total.
func TestPoolSharedBudget(t *testing.T) {
	p := NewPool(2)
	var inFlight, maxSeen int32
	unit := func(int) error {
		cur := atomic.AddInt32(&inFlight, 1)
		for {
			seen := atomic.LoadInt32(&maxSeen)
			if cur <= seen || atomic.CompareAndSwapInt32(&maxSeen, seen, cur) {
				break
			}
		}
		atomic.AddInt32(&inFlight, -1)
		return nil
	}
	var wg sync.WaitGroup
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := p.ForEach(context.Background(), 200, unit); err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()
	if maxSeen > 2 {
		t.Fatalf("max in-flight units = %d, want <= budget 2", maxSeen)
	}
}

func TestPoolForEachError(t *testing.T) {
	p := NewPool(4)
	boom := errors.New("boom")
	var ran int32
	err := p.ForEach(context.Background(), 1<<30, func(i int) error {
		atomic.AddInt32(&ran, 1)
		if i == 0 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatal(err)
	}
	if int(ran) > 1<<20 {
		t.Fatalf("%d units ran after early failure", ran)
	}
}
