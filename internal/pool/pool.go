// Package pool provides the one concurrency primitive the deterministic
// parallel engine needs: a bounded fan-out over an index range with ordered
// error collection. Work units must derive any randomness from their index
// (xrand.Mix), never from shared state, so results are identical at every
// worker count.
package pool

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// ForEach invokes fn(i) for every i in [0, n) on at most workers goroutines
// (0 means GOMAXPROCS) and returns the error of the lowest-indexed unit
// that ran and failed, or nil. After any unit fails, not-yet-started units
// are skipped — the caller discards all outputs on error, so the
// short-circuit cannot affect determinism of successful runs (which error
// surfaces may vary with scheduling; that an error surfaces does not).
// Results are collected by index, never by completion order.
func ForEach(n, workers int, fn func(i int) error) error {
	if n <= 0 {
		return nil
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	errs := make([]error, n)
	var failed atomic.Bool
	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				if failed.Load() {
					continue
				}
				if err := fn(i); err != nil {
					errs[i] = err
					failed.Store(true)
				}
			}
		}()
	}
	for i := 0; i < n; i++ {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
