// Package pool provides the concurrency primitives the deterministic
// parallel engine needs: a bounded fan-out over an index range with ordered
// error collection, and a shared Pool whose global token budget bounds the
// combined concurrency of many fan-outs at once (the fleet scheduler runs
// every work unit of every study through one Pool). Work units must derive
// any randomness from their index (xrand.Mix), never from shared state, so
// results are identical at every worker count.
package pool

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"
)

// ForEach invokes fn(i) for every i in [0, n) on at most workers goroutines
// (0 means GOMAXPROCS) and returns the error of the lowest-indexed unit
// that ran and failed, or nil. After any unit fails, dispatch stops and
// not-yet-started units never run — the caller discards all outputs on
// error, so the short-circuit cannot affect determinism of successful runs
// (which error surfaces may vary with scheduling; that an error surfaces
// does not). Results are collected by index, never by completion order.
func ForEach(n, workers int, fn func(i int) error) error {
	return forEach(context.Background(), n, workers, nil, fn)
}

// ForEachCtx is ForEach with cancellation: when ctx is cancelled, dispatch
// stops, in-flight units finish, and the context's error is returned unless
// a unit failed first.
func ForEachCtx(ctx context.Context, n, workers int, fn func(i int) error) error {
	return forEach(ctx, n, workers, nil, fn)
}

// Pool is a shared worker budget: a fixed number of execution tokens that
// every ForEach routed through the pool contends for. Concurrent fan-outs
// (e.g. the placement campaigns and clustering repetitions of many studies
// in one suite) collectively never exceed the budget, while each individual
// fan-out keeps its ordered, deterministic collection semantics.
//
// Units must not start a nested Pool.ForEach on the same pool from inside
// fn: a unit holds its token while running, so nesting can deadlock once
// every token is held by a waiting parent.
type Pool struct {
	sem chan struct{}
}

// NewPool returns a pool with the given token budget (0 means GOMAXPROCS).
func NewPool(workers int) *Pool {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return &Pool{sem: make(chan struct{}, workers)}
}

// Workers returns the pool's token budget.
func (p *Pool) Workers() int { return cap(p.sem) }

// ForEach invokes fn(i) for every i in [0, n), each unit first acquiring
// one of the pool's tokens, with the same error and cancellation semantics
// as ForEachCtx. Results do not depend on the budget or on what else runs
// on the pool concurrently.
func (p *Pool) ForEach(ctx context.Context, n int, fn func(i int) error) error {
	return forEach(ctx, n, cap(p.sem), p.sem, fn)
}

// forEach is the shared engine. When sem is non-nil every unit acquires a
// token before running and releases it after, so concurrent forEach calls
// sharing one sem are collectively bounded by its capacity. The dispatcher
// stops feeding indices as soon as any unit fails or ctx is cancelled.
func forEach(ctx context.Context, n, workers int, sem chan struct{}, fn func(i int) error) error {
	if n <= 0 {
		return ctx.Err()
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	// The lowest-indexed error among units that ran and failed wins; O(1)
	// state so huge index ranges cost nothing up front.
	var (
		errMu    sync.Mutex
		firstErr error
		firstIdx int
	)
	var failed atomic.Bool
	record := func(i int, err error) {
		errMu.Lock()
		if firstErr == nil || i < firstIdx {
			firstErr, firstIdx = err, i
		}
		errMu.Unlock()
		failed.Store(true)
	}
	// stop is closed on the first unit failure so the dispatcher quits
	// without waiting for a worker to come back for another index.
	stop := make(chan struct{})
	var stopOnce sync.Once
	halt := func() { stopOnce.Do(func() { close(stop) }) }
	done := ctx.Done()
	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				if failed.Load() {
					continue
				}
				if sem != nil {
					select {
					case sem <- struct{}{}:
					case <-stop:
						// Another unit of this fan-out already failed; don't
						// keep waiting behind unrelated token holders.
						continue
					case <-done:
						halt()
						continue
					}
					// The budget wait may have been long; re-check so a
					// failure elsewhere skips this unit too.
					if failed.Load() {
						<-sem
						continue
					}
				}
				err := fn(i)
				if sem != nil {
					<-sem
				}
				if err != nil {
					record(i, err)
					halt()
				}
			}
		}()
	}
dispatch:
	for i := 0; i < n; i++ {
		select {
		case jobs <- i:
		case <-stop:
			break dispatch
		case <-done:
			break dispatch
		}
	}
	close(jobs)
	wg.Wait()
	if firstErr != nil {
		return firstErr
	}
	return ctx.Err()
}
