package grid

import (
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"hash/fnv"
	"sort"
	"sync"
	"time"

	"relperf/internal/xrand"
)

// DefaultTTL is how long a worker stays live after its last heartbeat.
const DefaultTTL = 15 * time.Second

// WorkerInfo is one worker's registration, the POST /v1/grid/workers body.
// Workers re-announce themselves every TTL/3; a worker that falls silent
// for a full TTL expires from the registry.
type WorkerInfo struct {
	// ID names the worker uniquely; workers default it to their
	// advertised URL.
	ID string `json:"id"`
	// URL is the base URL of the worker's relperfd HTTP API.
	URL string `json:"url"`
	// Capacity is the worker's budget width (its -workers setting,
	// resolved), recorded for operators.
	Capacity int `json:"capacity"`
	// Seed is the worker's suite seed. The coordinator rejects heartbeats
	// whose seed differs from its own: a worker keyed differently would
	// compute different bytes and silently break the determinism
	// contract.
	Seed uint64 `json:"seed"`
}

// workerState is a registered worker plus its liveness bookkeeping.
type workerState struct {
	info     WorkerInfo
	lastSeen time.Time
}

// Registry tracks the live workers of a coordinator. Heartbeats register
// and refresh workers; workers expire after TTL without one, and the
// dispatcher drops a worker immediately when a request to it fails — the
// worker's next heartbeat re-registers it, so a transient failure costs
// one heartbeat interval, not an operator action.
type Registry struct {
	ttl time.Duration
	now func() time.Time

	mu       sync.Mutex
	workers  map[string]*workerState
	expiries uint64
	drops    uint64
}

// NewRegistry returns an empty registry; ttl <= 0 means DefaultTTL.
func NewRegistry(ttl time.Duration) *Registry {
	if ttl <= 0 {
		ttl = DefaultTTL
	}
	return &Registry{ttl: ttl, now: time.Now, workers: make(map[string]*workerState)}
}

// TTL returns the registry's expiry window.
func (r *Registry) TTL() time.Duration { return r.ttl }

// Heartbeat registers the worker or refreshes its lease.
func (r *Registry) Heartbeat(info WorkerInfo) error {
	if info.ID == "" || info.URL == "" {
		return fmt.Errorf("grid: worker heartbeat requires id and url")
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.workers[info.ID] = &workerState{info: info, lastSeen: r.now()}
	return nil
}

// Drop removes a worker immediately — the dispatcher's reaction to a
// failed request. A live worker's next heartbeat re-registers it.
func (r *Registry) Drop(id string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.workers[id]; ok {
		delete(r.workers, id)
		r.drops++
	}
}

// pruneLocked expires workers whose last heartbeat is older than TTL.
func (r *Registry) pruneLocked() {
	deadline := r.now().Add(-r.ttl)
	for id, w := range r.workers {
		if w.lastSeen.Before(deadline) {
			delete(r.workers, id)
			r.expiries++
		}
	}
}

// Alive returns the live workers sorted by ID, pruning expired ones.
func (r *Registry) Alive() []WorkerInfo {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.pruneLocked()
	out := make([]WorkerInfo, 0, len(r.workers))
	for _, w := range r.workers {
		out = append(out, w.info)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Stats reports the registry's lifecycle counters.
type RegistryStats struct {
	Workers  int    `json:"workers"`
	Expiries uint64 `json:"expiries"`
	Drops    uint64 `json:"drops"`
}

// Stats returns a snapshot of the counters (pruning first, so Workers
// counts only live workers).
func (r *Registry) Stats() RegistryStats {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.pruneLocked()
	return RegistryStats{Workers: len(r.workers), Expiries: r.expiries, Drops: r.drops}
}

// Pick chooses the worker a study is assigned to by rendezvous hashing:
// every live worker outside the exclusion set is scored by mixing the
// study's fingerprint key with the worker's ID hash, and the highest score
// wins. Assignments therefore spread studies evenly, stay stable while the
// worker set is stable, and — the retry property — reassigning after
// excluding a failed worker deterministically lands on the next-ranked
// one, with no central assignment table to keep consistent.
func (r *Registry) Pick(fingerprint string, exclude map[string]bool) (WorkerInfo, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.pruneLocked()
	fpKey := fingerprintKey(fingerprint)
	var best *workerState
	var bestScore uint64
	for id, w := range r.workers {
		if exclude[id] {
			continue
		}
		score := xrand.Mix(fpKey, idHash(id))
		if best == nil || score > bestScore || (score == bestScore && id < best.info.ID) {
			best, bestScore = w, score
		}
	}
	if best == nil {
		return WorkerInfo{}, false
	}
	return best.info, true
}

// fingerprintKey derives the rendezvous key from a fingerprint: its
// leading 8 bytes for well-formed hex fingerprints (matching the seed
// derivation's key), an FNV hash otherwise.
func fingerprintKey(fp string) uint64 {
	if b, err := hex.DecodeString(fp); err == nil && len(b) >= 8 {
		return binary.BigEndian.Uint64(b[:8])
	}
	return idHash(fp)
}

// idHash hashes a worker ID for rendezvous scoring.
func idHash(id string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(id))
	return h.Sum64()
}
