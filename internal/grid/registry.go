package grid

import (
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"hash/fnv"
	"sort"
	"sync"
	"time"

	"relperf/internal/xrand"
)

// DefaultTTL is how long a worker stays live after its last heartbeat.
const DefaultTTL = 15 * time.Second

// Quarantine defaults: a worker is quarantined after
// DefaultQuarantineThreshold consecutive dispatch failures and held out of
// rotation for DefaultQuarantine before its probation re-probe.
const (
	DefaultQuarantineThreshold = 3
	DefaultQuarantine          = 5 * time.Second
)

// State is a worker's position in the registry's health state machine:
//
//	healthy ──failure──▶ suspect ──K consecutive failures──▶ quarantined
//	   ▲                    │                                     │
//	   │◀──────success──────┘                             window elapses
//	   │                                                          ▼
//	   └───────success (the re-probe)────────────────────── probation
//	                                                              │
//	                                          failure ────────────┘ (back
//	                                          to quarantined, fresh window)
//
// Workers in any state are evicted only by TTL expiry (no heartbeat for a
// full TTL): a flaky worker is held out of dispatch, never forgotten.
type State string

const (
	// StateHealthy: in rotation, no recent failures.
	StateHealthy State = "healthy"
	// StateSuspect: still in rotation, but carrying consecutive dispatch
	// failures; one success clears it, K consecutive failures quarantine it.
	StateSuspect State = "suspect"
	// StateQuarantined: held out of rotation until its window elapses.
	StateQuarantined State = "quarantined"
	// StateProbation: the quarantine window elapsed; the worker is back in
	// rotation and its next dispatch is the probe — success restores
	// healthy, failure re-quarantines with a fresh window.
	StateProbation State = "probation"
)

// WorkerInfo is one worker's registration, the POST /v1/grid/workers body.
// Workers re-announce themselves every TTL/3; a worker that falls silent
// for a full TTL expires from the registry.
type WorkerInfo struct {
	// ID names the worker uniquely; workers default it to their
	// advertised URL.
	ID string `json:"id"`
	// URL is the base URL of the worker's relperfd HTTP API.
	URL string `json:"url"`
	// Capacity is the worker's budget width (its -workers setting,
	// resolved), recorded for operators.
	Capacity int `json:"capacity"`
	// Seed is the worker's suite seed. The coordinator rejects heartbeats
	// whose seed differs from its own: a worker keyed differently would
	// compute different bytes and silently break the determinism
	// contract.
	Seed uint64 `json:"seed"`
	// Epoch identifies one process incarnation of the worker (relperfd
	// stamps it at startup). A heartbeat carrying a new epoch is a
	// restarted process — the registry resets the worker's failure state
	// to healthy, which is how a supervised worker re-enters rotation
	// immediately after a restart instead of serving out a quarantine
	// earned by its dead predecessor. 0 (a worker predating the field)
	// never resets.
	Epoch uint64 `json:"epoch,omitempty"`
	// Digest is the worker's self-reported stats digest, refreshed on
	// every heartbeat. It is the coordinator's last-known view of the
	// worker's load — still readable from /v1/gridz when the worker has
	// stopped answering scrapes, because the lease outlives the last
	// successful heartbeat by a full TTL. Optional: workers predating the
	// field simply omit it.
	Digest *HeartbeatDigest `json:"digest,omitempty"`
}

// HeartbeatDigest is the compact stats digest a worker piggybacks on its
// heartbeats: enough to rank workers and spot a wedged one without
// scraping, cheap enough to recompute three times per TTL.
type HeartbeatDigest struct {
	// Inflight is the worker's currently computing study count.
	Inflight int `json:"inflight"`
	// StoreEntries is the worker's cached result count.
	StoreEntries int `json:"store_entries"`
	// Computes counts study computations started since the process began.
	Computes uint64 `json:"computes"`
	// ServeP99Ms is the worker's estimated p99 study-GET latency in
	// milliseconds (bucket-interpolated — a latency band, not a
	// microsecond).
	ServeP99Ms float64 `json:"serve_p99_ms"`
}

// WorkerStatus is one worker's registration plus its health-machine
// position — the GET /v1/grid/workers row.
type WorkerStatus struct {
	WorkerInfo
	// State is the worker's current health state.
	State State `json:"state"`
	// Failures counts consecutive dispatch failures since the last
	// success (or restart).
	Failures int `json:"failures"`
	// LastSeenAgeSeconds is how long ago the worker's last heartbeat
	// landed, measured when the listing was built. Ages approaching the
	// TTL mean the lease is about to expire.
	LastSeenAgeSeconds float64 `json:"last_seen_age_seconds"`
}

// workerState is a registered worker plus its liveness and health
// bookkeeping.
type workerState struct {
	info     WorkerInfo
	lastSeen time.Time

	state    State
	failures int // consecutive dispatch failures
	// quarantinedUntil is when a quarantined worker becomes probation;
	// meaningful only in StateQuarantined.
	quarantinedUntil time.Time
}

// Registry tracks the live workers of a coordinator with a per-worker
// health state machine. Heartbeats register and refresh workers; workers
// expire after TTL without one. Dispatch outcomes drive the health
// machine: failures mark a worker suspect and, after K consecutive ones,
// quarantine it out of rotation for a window; a success (including the
// probation re-probe) restores it. A single flaky response therefore
// costs one suspect mark, not the worker's registration.
type Registry struct {
	ttl        time.Duration
	threshold  int           // consecutive failures before quarantine
	quarantine time.Duration // how long a quarantined worker sits out
	now        func() time.Time

	mu          sync.Mutex
	workers     map[string]*workerState
	expiries    uint64
	failCount   uint64 // dispatch failures reported
	quarantines uint64 // healthy/suspect/probation → quarantined transitions
	recoveries  uint64 // probation → healthy transitions
}

// NewRegistry returns an empty registry with default quarantine
// parameters; ttl <= 0 means DefaultTTL.
func NewRegistry(ttl time.Duration) *Registry {
	return newRegistry(ttl, 0, 0)
}

// newRegistry is the fully parameterized constructor the coordinator
// uses; zero values mean defaults.
func newRegistry(ttl time.Duration, threshold int, quarantine time.Duration) *Registry {
	if ttl <= 0 {
		ttl = DefaultTTL
	}
	if threshold <= 0 {
		threshold = DefaultQuarantineThreshold
	}
	if quarantine <= 0 {
		quarantine = DefaultQuarantine
	}
	return &Registry{
		ttl:        ttl,
		threshold:  threshold,
		quarantine: quarantine,
		now:        time.Now,
		workers:    make(map[string]*workerState),
	}
}

// TTL returns the registry's expiry window.
func (r *Registry) TTL() time.Duration { return r.ttl }

// Heartbeat registers the worker or refreshes its lease. A re-register
// after TTL eviction starts healthy; a heartbeat from a known worker
// keeps its health state — a quarantined worker stays quarantined however
// loudly it heartbeats, because quarantine tracks dispatch behaviour, not
// liveness. The exception is a new process epoch: a restarted worker is a
// fresh process with none of its predecessor's flakiness, so its failure
// state resets to healthy.
func (r *Registry) Heartbeat(info WorkerInfo) error {
	if info.ID == "" || info.URL == "" {
		return fmt.Errorf("grid: worker heartbeat requires id and url")
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	now := r.now()
	if w, ok := r.workers[info.ID]; ok {
		restarted := info.Epoch != 0 && info.Epoch != w.info.Epoch
		w.info = info
		w.lastSeen = now
		if restarted {
			w.state = StateHealthy
			w.failures = 0
		}
		return nil
	}
	r.workers[info.ID] = &workerState{info: info, lastSeen: now, state: StateHealthy}
	return nil
}

// ReportFailure records one failed dispatch against the worker: healthy
// becomes suspect, the threshold'th consecutive failure (or any failure
// during probation) quarantines it for the configured window. Unknown
// workers are ignored — the failure may race the worker's TTL expiry.
func (r *Registry) ReportFailure(id string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.pruneLocked() // graduate an elapsed quarantine before judging the state
	w, ok := r.workers[id]
	if !ok {
		return
	}
	r.failCount++
	w.failures++
	switch {
	case w.state == StateProbation:
		// The re-probe failed: straight back to quarantine, fresh window.
		r.quarantineLocked(w)
	case w.failures >= r.threshold && w.state != StateQuarantined:
		r.quarantineLocked(w)
	case w.state == StateHealthy:
		w.state = StateSuspect
	}
}

// ReportSuccess records one successful dispatch: consecutive-failure
// count resets and the worker is healthy — for a probation worker this is
// the re-probe passing.
func (r *Registry) ReportSuccess(id string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.pruneLocked() // graduate an elapsed quarantine so the probe counts
	w, ok := r.workers[id]
	if !ok {
		return
	}
	if w.state == StateProbation {
		r.recoveries++
	}
	w.state = StateHealthy
	w.failures = 0
}

// quarantineLocked moves w out of rotation for the configured window.
func (r *Registry) quarantineLocked(w *workerState) {
	w.state = StateQuarantined
	w.quarantinedUntil = r.now().Add(r.quarantine)
	r.quarantines++
}

// pruneLocked expires workers whose last heartbeat is older than TTL —
// the only transition that removes a worker — and graduates quarantined
// workers whose window has elapsed into probation.
func (r *Registry) pruneLocked() {
	now := r.now()
	deadline := now.Add(-r.ttl)
	for id, w := range r.workers {
		if w.lastSeen.Before(deadline) {
			delete(r.workers, id)
			r.expiries++
			continue
		}
		if w.state == StateQuarantined && !now.Before(w.quarantinedUntil) {
			w.state = StateProbation
		}
	}
}

// Alive returns the registered (unexpired) workers sorted by ID, in every
// health state — "alive" means the lease is current, not that dispatch
// trusts the worker; see Workers for the health view.
func (r *Registry) Alive() []WorkerInfo {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.pruneLocked()
	out := make([]WorkerInfo, 0, len(r.workers))
	for _, w := range r.workers {
		out = append(out, w.info)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Workers returns every registered worker with its health state and
// consecutive-failure count, sorted by ID — the GET /v1/grid/workers
// listing.
func (r *Registry) Workers() []WorkerStatus {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.pruneLocked()
	now := r.now()
	out := make([]WorkerStatus, 0, len(r.workers))
	for _, w := range r.workers {
		out = append(out, WorkerStatus{
			WorkerInfo:         w.info,
			State:              w.state,
			Failures:           w.failures,
			LastSeenAgeSeconds: now.Sub(w.lastSeen).Seconds(),
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Lookup returns the registered worker with the given ID, if its lease is
// current — the trace fan-in's way to turn a journaled worker ID back
// into a dialable URL.
func (r *Registry) Lookup(id string) (WorkerInfo, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.pruneLocked()
	w, ok := r.workers[id]
	if !ok {
		return WorkerInfo{}, false
	}
	return w.info, true
}

// RegistryStats reports the registry's lifecycle counters and per-state
// occupancy.
type RegistryStats struct {
	Workers     int    `json:"workers"`
	Healthy     int    `json:"healthy"`
	Suspect     int    `json:"suspect"`
	Quarantined int    `json:"quarantined"`
	Probation   int    `json:"probation"`
	Expiries    uint64 `json:"expiries"`
	Failures    uint64 `json:"failures"`
	Quarantines uint64 `json:"quarantines"`
	Recoveries  uint64 `json:"recoveries"`
}

// Stats returns a snapshot of the counters (pruning first, so the
// occupancy counts reflect current leases and elapsed quarantines).
func (r *Registry) Stats() RegistryStats {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.pruneLocked()
	st := RegistryStats{
		Workers:     len(r.workers),
		Expiries:    r.expiries,
		Failures:    r.failCount,
		Quarantines: r.quarantines,
		Recoveries:  r.recoveries,
	}
	for _, w := range r.workers {
		switch w.state {
		case StateHealthy:
			st.Healthy++
		case StateSuspect:
			st.Suspect++
		case StateQuarantined:
			st.Quarantined++
		case StateProbation:
			st.Probation++
		}
	}
	return st
}

// Pick chooses the worker a study is assigned to by rendezvous hashing:
// every live, non-quarantined worker outside the exclusion set is scored
// by mixing the study's fingerprint key with the worker's ID hash, and
// the highest score wins. Assignments therefore spread studies evenly,
// stay stable while the worker set is stable, and — the retry property —
// reassigning after excluding a failed worker deterministically lands on
// the next-ranked one, with no central assignment table to keep
// consistent. Quarantined workers are invisible here until their window
// elapses into probation, at which point the next Pick that ranks them
// first is their re-probe.
func (r *Registry) Pick(fingerprint string, exclude map[string]bool) (WorkerInfo, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.pruneLocked()
	fpKey := fingerprintKey(fingerprint)
	var best *workerState
	var bestScore uint64
	for id, w := range r.workers {
		if exclude[id] || w.state == StateQuarantined {
			continue
		}
		score := xrand.Mix(fpKey, idHash(id))
		if best == nil || score > bestScore || (score == bestScore && id < best.info.ID) {
			best, bestScore = w, score
		}
	}
	if best == nil {
		return WorkerInfo{}, false
	}
	return best.info, true
}

// fingerprintKey derives the rendezvous key from a fingerprint: its
// leading 8 bytes for well-formed hex fingerprints (matching the seed
// derivation's key), an FNV hash otherwise.
func fingerprintKey(fp string) uint64 {
	if b, err := hex.DecodeString(fp); err == nil && len(b) >= 8 {
		return binary.BigEndian.Uint64(b[:8])
	}
	return idHash(fp)
}

// idHash hashes a worker ID for rendezvous scoring.
func idHash(id string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(id))
	return h.Sum64()
}
