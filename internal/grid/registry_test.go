package grid

import (
	"fmt"
	"testing"
	"time"
)

// fakeClock drives a registry deterministically.
type fakeClock struct{ t time.Time }

func (c *fakeClock) now() time.Time          { return c.t }
func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }
func newTestRegistry(ttl time.Duration) (*Registry, *fakeClock) {
	r := NewRegistry(ttl)
	clk := &fakeClock{t: time.Unix(1000, 0)}
	r.now = clk.now
	return r, clk
}

func worker(i int) WorkerInfo {
	return WorkerInfo{ID: fmt.Sprintf("w%d", i), URL: fmt.Sprintf("http://w%d", i), Capacity: 2, Seed: 7}
}

func TestRegistryHeartbeatAndExpiry(t *testing.T) {
	r, clk := newTestRegistry(10 * time.Second)
	for i := 0; i < 3; i++ {
		if err := r.Heartbeat(worker(i)); err != nil {
			t.Fatal(err)
		}
	}
	if got := r.Alive(); len(got) != 3 || got[0].ID != "w0" || got[2].ID != "w2" {
		t.Fatalf("Alive() = %v", got)
	}

	// w1 keeps beating; the others fall silent and expire together.
	clk.advance(6 * time.Second)
	r.Heartbeat(worker(1))
	clk.advance(6 * time.Second)
	alive := r.Alive()
	if len(alive) != 1 || alive[0].ID != "w1" {
		t.Fatalf("after expiry Alive() = %v", alive)
	}
	if st := r.Stats(); st.Workers != 1 || st.Expiries != 2 {
		t.Fatalf("stats = %+v", st)
	}

	// A heartbeat after expiry re-registers.
	r.Heartbeat(worker(0))
	if len(r.Alive()) != 2 {
		t.Fatal("expired worker did not re-register")
	}

	if err := r.Heartbeat(WorkerInfo{URL: "http://x"}); err == nil {
		t.Fatal("heartbeat without an ID accepted")
	}
}

// newQuarantineRegistry builds a registry with explicit health-machine
// parameters and a fake clock.
func newQuarantineRegistry(ttl time.Duration, threshold int, quarantine time.Duration) (*Registry, *fakeClock) {
	r := newRegistry(ttl, threshold, quarantine)
	clk := &fakeClock{t: time.Unix(1000, 0)}
	r.now = clk.now
	return r, clk
}

// stateOf reads one worker's status row, failing if it is not registered.
func stateOf(t *testing.T, r *Registry, id string) WorkerStatus {
	t.Helper()
	for _, w := range r.Workers() {
		if w.ID == id {
			return w
		}
	}
	t.Fatalf("worker %s not registered: %v", id, r.Workers())
	return WorkerStatus{}
}

// TestRegistryQuarantineStateMachine walks the full health machine:
// healthy → suspect on one failure → quarantined on the K-th → invisible
// to Pick → probation once the window elapses → healthy on the re-probe
// success, with counters reset; and a probation failure re-quarantines
// with a fresh window.
func TestRegistryQuarantineStateMachine(t *testing.T) {
	r, clk := newQuarantineRegistry(time.Minute, 3, 5*time.Second)
	r.Heartbeat(worker(0))
	r.Heartbeat(worker(1))

	// One flaky response: suspect, still in rotation.
	r.ReportFailure("w0")
	if st := stateOf(t, r, "w0"); st.State != StateSuspect || st.Failures != 1 {
		t.Fatalf("after one failure: %+v", st)
	}
	pickable := false
	for i := 0; i < 64; i++ {
		fp := fmt.Sprintf("%016x%016x", uint64(i+1)*0x9E3779B97F4A7C15, uint64(i))
		if w, ok := r.Pick(fp, nil); ok && w.ID == "w0" {
			pickable = true
			break
		}
	}
	if !pickable {
		t.Fatal("suspect worker fell out of rotation")
	}

	// A success clears the streak entirely.
	r.ReportSuccess("w0")
	if st := stateOf(t, r, "w0"); st.State != StateHealthy || st.Failures != 0 {
		t.Fatalf("after recovery: %+v", st)
	}

	// K consecutive failures quarantine; Pick must never choose it.
	for i := 0; i < 3; i++ {
		r.ReportFailure("w0")
	}
	if st := stateOf(t, r, "w0"); st.State != StateQuarantined || st.Failures != 3 {
		t.Fatalf("after threshold: %+v", st)
	}
	for i := 0; i < 64; i++ {
		fp := fmt.Sprintf("%016x%016x", uint64(i+1)*0x9E3779B97F4A7C15, uint64(i))
		if w, ok := r.Pick(fp, nil); !ok || w.ID == "w0" {
			t.Fatalf("quarantined worker picked (fp %s → %v %v)", fp, w, ok)
		}
	}
	// Still registered — quarantine holds a worker out, never forgets it.
	if len(r.Alive()) != 2 {
		t.Fatalf("quarantine unregistered the worker: %v", r.Alive())
	}

	// Window elapses → probation, back in rotation.
	clk.advance(5 * time.Second)
	if st := stateOf(t, r, "w0"); st.State != StateProbation {
		t.Fatalf("after window: %+v", st)
	}
	back := false
	for i := 0; i < 64; i++ {
		fp := fmt.Sprintf("%016x%016x", uint64(i+1)*0x9E3779B97F4A7C15, uint64(i))
		if w, ok := r.Pick(fp, nil); ok && w.ID == "w0" {
			back = true
			break
		}
	}
	if !back {
		t.Fatal("probation worker never re-entered rotation")
	}

	// Probation failure: straight back to quarantine with a fresh window.
	r.ReportFailure("w0")
	if st := stateOf(t, r, "w0"); st.State != StateQuarantined {
		t.Fatalf("after probation failure: %+v", st)
	}
	clk.advance(3 * time.Second) // old window would have elapsed; fresh one has not
	if st := stateOf(t, r, "w0"); st.State != StateQuarantined {
		t.Fatalf("fresh quarantine window not honoured: %+v", st)
	}
	clk.advance(2 * time.Second)

	// Probation success: healthy, counters reset (the satellite case).
	r.ReportSuccess("w0")
	if st := stateOf(t, r, "w0"); st.State != StateHealthy || st.Failures != 0 {
		t.Fatalf("after probation success: %+v", st)
	}
	stats := r.Stats()
	if stats.Quarantines != 2 || stats.Recoveries != 1 || stats.Failures != 5 {
		t.Fatalf("stats = %+v, want 2 quarantines, 1 recovery, 5 failures", stats)
	}
}

// TestRegistryEpochResetsQuarantine: a heartbeat carrying a new process
// epoch is a restarted worker — its predecessor's failure streak must not
// keep the fresh process out of rotation.
func TestRegistryEpochResetsQuarantine(t *testing.T) {
	r, _ := newQuarantineRegistry(time.Minute, 2, time.Hour)
	w := worker(0)
	w.Epoch = 1
	r.Heartbeat(w)
	r.ReportFailure("w0")
	r.ReportFailure("w0")
	if st := stateOf(t, r, "w0"); st.State != StateQuarantined {
		t.Fatalf("setup: %+v", st)
	}
	// Same epoch heartbeating changes nothing.
	r.Heartbeat(w)
	if st := stateOf(t, r, "w0"); st.State != StateQuarantined {
		t.Fatalf("same-epoch heartbeat cleared quarantine: %+v", st)
	}
	// New epoch: the restarted process starts healthy.
	w.Epoch = 2
	r.Heartbeat(w)
	if st := stateOf(t, r, "w0"); st.State != StateHealthy || st.Failures != 0 {
		t.Fatalf("new-epoch heartbeat did not reset: %+v", st)
	}
	// Epoch 0 (a worker predating the field) never resets.
	r.ReportFailure("w0")
	w.Epoch = 0
	r.Heartbeat(w)
	if st := stateOf(t, r, "w0"); st.State != StateSuspect {
		t.Fatalf("zero-epoch heartbeat reset state: %+v", st)
	}
}

// TestRegistryTTLEdgeCases pins the expiry boundary semantics with an
// injectable clock: a heartbeat landing exactly at TTL expiry keeps the
// worker (expiry requires strictly-older), re-registration after eviction
// starts a fresh healthy record while the expiry counter stays monotonic,
// and quarantined workers expire like any other.
func TestRegistryTTLEdgeCases(t *testing.T) {
	const ttl = 10 * time.Second
	t.Run("heartbeat exactly at expiry keeps the lease", func(t *testing.T) {
		r, clk := newQuarantineRegistry(ttl, 3, time.Second)
		r.Heartbeat(worker(0))
		clk.advance(ttl)
		// lastSeen == now-ttl: the deadline comparison is strict, so the
		// worker survives this instant...
		if alive := r.Alive(); len(alive) != 1 {
			t.Fatalf("worker expired exactly at TTL: %v", alive)
		}
		// ...and a heartbeat at this exact instant renews for a full TTL.
		r.Heartbeat(worker(0))
		clk.advance(ttl)
		if alive := r.Alive(); len(alive) != 1 {
			t.Fatalf("boundary heartbeat did not renew: %v", alive)
		}
		clk.advance(time.Nanosecond)
		if alive := r.Alive(); len(alive) != 0 {
			t.Fatalf("worker survived past TTL: %v", alive)
		}
	})
	t.Run("re-register after eviction keeps monotonic counters", func(t *testing.T) {
		r, clk := newQuarantineRegistry(ttl, 2, time.Second)
		r.Heartbeat(worker(0))
		r.ReportFailure("w0")
		r.ReportFailure("w0") // quarantined
		clk.advance(ttl + time.Second)
		if alive := r.Alive(); len(alive) != 0 {
			t.Fatalf("quarantined worker did not TTL-expire: %v", alive)
		}
		st := r.Stats()
		if st.Expiries != 1 || st.Quarantines != 1 || st.Failures != 2 {
			t.Fatalf("counters after eviction: %+v", st)
		}
		// The returning worker is a fresh healthy record; lifecycle
		// counters never decrease.
		r.Heartbeat(worker(0))
		if got := stateOf(t, r, "w0"); got.State != StateHealthy || got.Failures != 0 {
			t.Fatalf("re-registered worker: %+v", got)
		}
		st2 := r.Stats()
		if st2.Expiries != 1 || st2.Quarantines != 1 || st2.Failures != 2 {
			t.Fatalf("counters moved on re-register: %+v", st2)
		}
		// A second eviction counts on top of the first.
		clk.advance(ttl + time.Second)
		r.Alive()
		if st3 := r.Stats(); st3.Expiries != 2 {
			t.Fatalf("expiries not monotonic: %+v", st3)
		}
	})
	t.Run("failure report racing an expiry is a no-op", func(t *testing.T) {
		r, clk := newQuarantineRegistry(ttl, 2, time.Second)
		r.Heartbeat(worker(0))
		clk.advance(ttl + time.Second)
		r.Alive() // prunes
		r.ReportFailure("w0")
		r.ReportSuccess("w0")
		if st := r.Stats(); st.Workers != 0 || st.Failures != 0 {
			t.Fatalf("reports against an expired worker mutated state: %+v", st)
		}
	})
}

// TestRegistryPick: rendezvous assignment is deterministic, spreads
// fingerprints across workers, survives exclusion by moving to the
// next-ranked worker, and stays stable for fingerprints whose top choice
// is unaffected by an unrelated worker loss.
func TestRegistryPick(t *testing.T) {
	r, clk := newTestRegistry(0)
	for i := 0; i < 4; i++ {
		r.Heartbeat(worker(i))
	}
	// Realistic fingerprints carry entropy everywhere; the rendezvous key
	// reads the leading 8 bytes, so spread the bits there.
	fps := make([]string, 64)
	for i := range fps {
		fps[i] = fmt.Sprintf("%016x%016x", uint64(i+1)*0x9E3779B97F4A7C15, uint64(i))
	}

	counts := map[string]int{}
	first := map[string]string{}
	for _, fp := range fps {
		w, ok := r.Pick(fp, nil)
		if !ok {
			t.Fatal("no worker picked")
		}
		counts[w.ID]++
		first[fp] = w.ID
	}
	// Deterministic on repeat.
	for _, fp := range fps {
		if w, _ := r.Pick(fp, nil); w.ID != first[fp] {
			t.Fatalf("pick for %s changed: %s vs %s", fp, w.ID, first[fp])
		}
	}
	// Every worker gets a share (64 fingerprints over 4 workers: a
	// pathological hash would starve one).
	for i := 0; i < 4; i++ {
		if counts[fmt.Sprintf("w%d", i)] == 0 {
			t.Fatalf("worker w%d never picked: %v", i, counts)
		}
	}

	// Excluding a fingerprint's assigned worker reassigns it elsewhere;
	// fingerprints assigned to other workers are untouched (minimal
	// disruption — the rendezvous property).
	for _, fp := range fps {
		excluded := map[string]bool{first[fp]: true}
		w, ok := r.Pick(fp, excluded)
		if !ok || w.ID == first[fp] {
			t.Fatalf("exclusion did not reassign %s", fp)
		}
	}
	// Losing w0 (TTL expiry — the only removal) must not move any study
	// assigned to a surviving worker.
	clk.advance(10 * time.Second)
	for i := 1; i < 4; i++ {
		r.Heartbeat(worker(i))
	}
	clk.advance(6 * time.Second) // w0's lease (default 15s) lapses; w1-w3 stay
	for _, fp := range fps {
		if first[fp] == "w0" {
			continue
		}
		if w, _ := r.Pick(fp, nil); w.ID != first[fp] {
			t.Fatalf("losing w0 moved %s from %s to %s", fp, first[fp], w.ID)
		}
	}

	// All workers excluded: no pick.
	if _, ok := r.Pick(fps[0], map[string]bool{"w1": true, "w2": true, "w3": true}); ok {
		t.Fatal("picked a worker with everyone excluded")
	}
}
