package grid

import (
	"fmt"
	"testing"
	"time"
)

// fakeClock drives a registry deterministically.
type fakeClock struct{ t time.Time }

func (c *fakeClock) now() time.Time          { return c.t }
func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }
func newTestRegistry(ttl time.Duration) (*Registry, *fakeClock) {
	r := NewRegistry(ttl)
	clk := &fakeClock{t: time.Unix(1000, 0)}
	r.now = clk.now
	return r, clk
}

func worker(i int) WorkerInfo {
	return WorkerInfo{ID: fmt.Sprintf("w%d", i), URL: fmt.Sprintf("http://w%d", i), Capacity: 2, Seed: 7}
}

func TestRegistryHeartbeatAndExpiry(t *testing.T) {
	r, clk := newTestRegistry(10 * time.Second)
	for i := 0; i < 3; i++ {
		if err := r.Heartbeat(worker(i)); err != nil {
			t.Fatal(err)
		}
	}
	if got := r.Alive(); len(got) != 3 || got[0].ID != "w0" || got[2].ID != "w2" {
		t.Fatalf("Alive() = %v", got)
	}

	// w1 keeps beating; the others fall silent and expire together.
	clk.advance(6 * time.Second)
	r.Heartbeat(worker(1))
	clk.advance(6 * time.Second)
	alive := r.Alive()
	if len(alive) != 1 || alive[0].ID != "w1" {
		t.Fatalf("after expiry Alive() = %v", alive)
	}
	if st := r.Stats(); st.Workers != 1 || st.Expiries != 2 {
		t.Fatalf("stats = %+v", st)
	}

	// A heartbeat after expiry re-registers.
	r.Heartbeat(worker(0))
	if len(r.Alive()) != 2 {
		t.Fatal("expired worker did not re-register")
	}

	if err := r.Heartbeat(WorkerInfo{URL: "http://x"}); err == nil {
		t.Fatal("heartbeat without an ID accepted")
	}
}

func TestRegistryDrop(t *testing.T) {
	r, _ := newTestRegistry(0)
	r.Heartbeat(worker(0))
	r.Heartbeat(worker(1))
	r.Drop("w0")
	r.Drop("w0") // double drop counts once
	if alive := r.Alive(); len(alive) != 1 || alive[0].ID != "w1" {
		t.Fatalf("Alive() = %v", alive)
	}
	if st := r.Stats(); st.Drops != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

// TestRegistryPick: rendezvous assignment is deterministic, spreads
// fingerprints across workers, survives exclusion by moving to the
// next-ranked worker, and stays stable for fingerprints whose top choice
// is unaffected by an unrelated worker loss.
func TestRegistryPick(t *testing.T) {
	r, _ := newTestRegistry(0)
	for i := 0; i < 4; i++ {
		r.Heartbeat(worker(i))
	}
	// Realistic fingerprints carry entropy everywhere; the rendezvous key
	// reads the leading 8 bytes, so spread the bits there.
	fps := make([]string, 64)
	for i := range fps {
		fps[i] = fmt.Sprintf("%016x%016x", uint64(i+1)*0x9E3779B97F4A7C15, uint64(i))
	}

	counts := map[string]int{}
	first := map[string]string{}
	for _, fp := range fps {
		w, ok := r.Pick(fp, nil)
		if !ok {
			t.Fatal("no worker picked")
		}
		counts[w.ID]++
		first[fp] = w.ID
	}
	// Deterministic on repeat.
	for _, fp := range fps {
		if w, _ := r.Pick(fp, nil); w.ID != first[fp] {
			t.Fatalf("pick for %s changed: %s vs %s", fp, w.ID, first[fp])
		}
	}
	// Every worker gets a share (64 fingerprints over 4 workers: a
	// pathological hash would starve one).
	for i := 0; i < 4; i++ {
		if counts[fmt.Sprintf("w%d", i)] == 0 {
			t.Fatalf("worker w%d never picked: %v", i, counts)
		}
	}

	// Excluding a fingerprint's assigned worker reassigns it elsewhere;
	// fingerprints assigned to other workers are untouched (minimal
	// disruption — the rendezvous property).
	for _, fp := range fps {
		excluded := map[string]bool{first[fp]: true}
		w, ok := r.Pick(fp, excluded)
		if !ok || w.ID == first[fp] {
			t.Fatalf("exclusion did not reassign %s", fp)
		}
	}
	r.Drop("w0")
	for _, fp := range fps {
		if first[fp] == "w0" {
			continue
		}
		if w, _ := r.Pick(fp, nil); w.ID != first[fp] {
			t.Fatalf("losing w0 moved %s from %s to %s", fp, first[fp], w.ID)
		}
	}

	// All workers excluded: no pick.
	if _, ok := r.Pick(fps[0], map[string]bool{"w1": true, "w2": true, "w3": true}); ok {
		t.Fatal("picked a worker with everyone excluded")
	}
}
