package grid

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
)

// maxStreamBody caps one result stream: status events are tiny and result
// documents are at most a few MB even for very large N, so 64 MiB is
// generous headroom while still bounding what a hostile worker can make
// the coordinator buffer.
const maxStreamBody = 64 << 20

// streamResult subscribes to the worker's SSE stream for the study
// (GET /v1/studies/{fp}?wait=stream) and returns the result event's data —
// the study's canonical wire bytes. Status events (queued, computing) are
// consumed silently; an error event or a stream that ends without a result
// is a failed attempt. One idle connection per in-flight study replaces
// polling, and a worker death mid-computation surfaces immediately as a
// read error instead of a poll timeout.
func (c *Coordinator) streamResult(ctx context.Context, w WorkerInfo, fp string) ([]byte, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, w.URL+"/v1/studies/"+fp+"?wait=stream", nil)
	if err != nil {
		return nil, err
	}
	req.Header.Set("Accept", "text/event-stream")
	resp, err := c.client.Do(req)
	if err != nil {
		return nil, fmt.Errorf("grid: streaming %s from %s: %w", fp, w.ID, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("grid: streaming %s from %s: status %d", fp, w.ID, resp.StatusCode)
	}

	// Minimal SSE reader: accumulate "event:"/"data:" fields until the
	// blank line that terminates each event. bufio.Reader, not Scanner —
	// result data lines are full wire documents and can exceed Scanner's
	// token limit. The body is capped like every other inbound read: a
	// misbehaving worker streaming unbounded data must fail the attempt,
	// not buffer the coordinator into the ground.
	rd := bufio.NewReader(io.LimitReader(resp.Body, maxStreamBody))
	event := ""
	var data []byte
	for {
		line, err := rd.ReadString('\n')
		if err != nil {
			return nil, fmt.Errorf("grid: stream for %s from %s ended without a result: %w", fp, w.ID, err)
		}
		line = strings.TrimRight(line, "\r\n")
		switch {
		case line == "":
			switch event {
			case "result":
				return data, nil
			case "error":
				var e struct {
					Error string `json:"error"`
				}
				if json.Unmarshal(data, &e) == nil && e.Error != "" {
					return nil, fmt.Errorf("grid: worker %s failed study %s: %s", w.ID, fp, e.Error)
				}
				return nil, fmt.Errorf("grid: worker %s failed study %s", w.ID, fp)
			}
			event, data = "", nil
		case strings.HasPrefix(line, "event: "):
			event = line[len("event: "):]
		case strings.HasPrefix(line, "data: "):
			data = append(data, line[len("data: "):]...)
		}
	}
}
