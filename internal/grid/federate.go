package grid

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"

	"relperf/internal/obs"
)

// DefaultScrapeTimeout caps one federated scrape of one worker's
// /v1/metrics (and one trace fan-in fetch). Short on purpose: federation
// is a dashboard path, and a wedged worker must cost the whole scrape one
// timeout window, not a dispatch timeout.
const DefaultScrapeTimeout = 2 * time.Second

// maxScrapeBody bounds one worker's exposition (and one fetched
// timeline); a worker cannot buffer the coordinator into the ground.
const maxScrapeBody = 4 << 20

// scrapeState is the coordinator's memory of the last federated scrape of
// one worker — the "scrape freshness" column of /v1/gridz.
type scrapeState struct {
	at  time.Time
	ok  bool
	err string
}

// workerScrape is one worker's contribution to a federated scrape.
type workerScrape struct {
	id   string
	body []byte
	err  error
}

// scrapeAll concurrently fetches every registered worker's /v1/metrics,
// each attempt bounded by ScrapeTimeout. Because the scrapes run in
// parallel, the whole pass completes within roughly one timeout window
// however many workers are down — a SIGSTOPped worker costs its own slot,
// not the round. Results come back sorted by worker ID, failures included
// (partial results are the point: federation must degrade per worker,
// never per fleet).
func (c *Coordinator) scrapeAll(ctx context.Context) []workerScrape {
	workers := c.reg.Workers()
	out := make([]workerScrape, len(workers))
	var wg sync.WaitGroup
	for i, w := range workers {
		i, w := i, w
		wg.Add(1)
		go func() {
			defer wg.Done()
			body, err := c.scrapeOne(ctx, w.WorkerInfo)
			out[i] = workerScrape{id: w.ID, body: body, err: err}
		}()
	}
	wg.Wait()
	now := time.Now()
	c.scrapeMu.Lock()
	if c.scrapes == nil {
		c.scrapes = make(map[string]scrapeState)
	}
	for _, s := range out {
		st := scrapeState{at: now, ok: s.err == nil}
		if s.err != nil {
			st.err = s.err.Error()
		}
		c.scrapes[s.id] = st
	}
	// Drop state for workers that have left the registry, so the map
	// tracks the fleet instead of growing with its history.
	known := make(map[string]bool, len(out))
	for _, s := range out {
		known[s.id] = true
	}
	for id := range c.scrapes {
		if !known[id] {
			delete(c.scrapes, id)
		}
	}
	c.scrapeMu.Unlock()
	return out
}

// scrapeOne fetches one worker's exposition within the scrape timeout.
func (c *Coordinator) scrapeOne(ctx context.Context, w WorkerInfo) ([]byte, error) {
	ctx, cancel := context.WithTimeout(ctx, c.scrapeTimeout())
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, w.URL+"/v1/metrics", nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, maxScrapeBody))
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("grid: worker %s /v1/metrics: %d", w.ID, resp.StatusCode)
	}
	return body, nil
}

func (c *Coordinator) scrapeTimeout() time.Duration {
	if c.cfg.ScrapeTimeout > 0 {
		return c.cfg.ScrapeTimeout
	}
	return DefaultScrapeTimeout
}

// escapeLabel escapes a Prometheus label value (backslash, quote,
// newline — exposition format 0.0.4).
func escapeLabel(v string) string {
	return strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`).Replace(v)
}

// relabelExposition rewrites one worker's exposition so its samples can
// join the coordinator's: every sample line gains a leading
// worker="<id>" label, and metadata lines (# HELP / # TYPE) are dropped —
// the shared families are described once by the coordinator's own
// exposition, and re-announcing them per worker would make the merged
// document claim the same family twice.
func relabelExposition(body []byte, worker string) []byte {
	var out strings.Builder
	label := `worker="` + escapeLabel(worker) + `"`
	for _, line := range strings.Split(string(body), "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if i := strings.IndexByte(line, '{'); i >= 0 {
			out.WriteString(line[:i+1] + label + "," + line[i+1:])
		} else if i := strings.IndexByte(line, ' '); i >= 0 {
			out.WriteString(line[:i] + "{" + label + "}" + line[i:])
		} else {
			continue // not a sample line; drop rather than corrupt
		}
		out.WriteByte('\n')
	}
	return []byte(out.String())
}

// handleGridMetrics serves GET /v1/grid/metrics: the coordinator's own
// exposition followed by every registered worker's, re-labeled with
// worker="<id>". Workers are scraped concurrently under a per-worker
// timeout, so the federated document is always produced within one
// timeout window; an unreachable worker degrades to a loud comment plus
// grid_scrape_ok 0 — stale, not missing.
func (c *Coordinator) handleGridMetrics(w http.ResponseWriter, r *http.Request) {
	scrapes := c.scrapeAll(r.Context())
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = c.cfg.Obs.Reg().WritePrometheus(w)
	if len(scrapes) > 0 {
		fmt.Fprintf(w, "# HELP grid_scrape_ok Whether the worker's last federated scrape succeeded.\n")
		fmt.Fprintf(w, "# TYPE grid_scrape_ok gauge\n")
		for _, s := range scrapes {
			ok := 0
			if s.err == nil {
				ok = 1
			}
			fmt.Fprintf(w, "grid_scrape_ok{worker=%q} %d\n", escapeLabel(s.id), ok)
		}
	}
	for _, s := range scrapes {
		if s.err != nil {
			c.scrapeFailures.Inc()
			c.logf("grid: federated scrape of %s failed: %v", s.id, s.err)
			fmt.Fprintf(w, "# worker %q scrape failed\n", escapeLabel(s.id))
			continue
		}
		fmt.Fprintf(w, "# federated from worker %q\n", escapeLabel(s.id))
		_, _ = w.Write(relabelExposition(s.body, s.id))
	}
}

// gridzScrape is the scrape-freshness view of one worker in /v1/gridz.
type gridzScrape struct {
	OK         bool    `json:"ok"`
	AgeSeconds float64 `json:"age_seconds"`
	Error      string  `json:"error,omitempty"`
}

// gridzWorker is one /v1/gridz row: the worker's registration (including
// its heartbeat digest — the last-known view that survives the worker
// going unreachable), health state, heartbeat age and scrape freshness.
type gridzWorker struct {
	WorkerStatus
	Scrape *gridzScrape `json:"scrape,omitempty"`
}

// gridzResponse is the GET /v1/gridz body: one JSON summary of the whole
// fleet for dashboards and operators.
type gridzResponse struct {
	Workers  []gridzWorker `json:"workers"`
	Registry RegistryStats `json:"registry"`
	Dispatch Stats         `json:"dispatch"`
}

// handleGridz serves GET /v1/gridz.
func (c *Coordinator) handleGridz(w http.ResponseWriter, r *http.Request) {
	workers := c.reg.Workers()
	now := time.Now()
	c.scrapeMu.Lock()
	rows := make([]gridzWorker, len(workers))
	for i, ws := range workers {
		row := gridzWorker{WorkerStatus: ws}
		if st, ok := c.scrapes[ws.ID]; ok {
			row.Scrape = &gridzScrape{OK: st.ok, AgeSeconds: now.Sub(st.at).Seconds(), Error: st.err}
		}
		rows[i] = row
	}
	c.scrapeMu.Unlock()
	writeJSON(w, http.StatusOK, gridzResponse{Workers: rows, Registry: c.reg.Stats(), Dispatch: c.Stats()})
}

// remoteTrace mirrors the worker's GET /v1/trace/{fp} body.
type remoteTrace struct {
	Fingerprint string     `json:"fingerprint"`
	Spans       []obs.Span `json:"spans"`
}

// ownerOf returns the worker that served fp, read from the coordinator's
// own dispatch spans — the last successful dispatch-attempt names it. No
// extra bookkeeping: the trace ring already bounds how far back fan-in
// can reach, and a study it no longer remembers has no local half to
// merge with anyway.
func (c *Coordinator) ownerOf(fp string) string {
	spans, ok := c.cfg.Obs.Trace().Timeline(fp)
	if !ok {
		return ""
	}
	owner := ""
	for _, s := range spans {
		if s.Name == "dispatch-attempt" && s.Error == "" && s.Worker != "" {
			owner = s.Worker
		}
	}
	return owner
}

// WorkerTrace is the coordinator's half of cross-node trace fan-in: given
// a fingerprint, it finds the worker that served the study (from the
// coordinator's own dispatch spans), fetches that worker's timeline over
// the ordinary GET /v1/trace API within the scrape timeout, and returns
// the spans tagged with the worker's node ID. A study that never ran
// remotely returns ("", nil, nil) — there is no remote half. A known
// owner that cannot be reached (dead, SIGSTOPped, or expired from the
// registry) returns its ID and an error, which the serving layer turns
// into a loud fetch-failed event on the merged timeline.
func (c *Coordinator) WorkerTrace(ctx context.Context, fp string) (string, []obs.Span, error) {
	owner := c.ownerOf(fp)
	if owner == "" {
		return "", nil, nil
	}
	w, ok := c.reg.Lookup(owner)
	if !ok {
		return owner, nil, fmt.Errorf("grid: worker %s is no longer registered", owner)
	}
	ctx, cancel := context.WithTimeout(ctx, c.scrapeTimeout())
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, w.URL+"/v1/trace/"+fp, nil)
	if err != nil {
		return owner, nil, err
	}
	resp, err := c.client.Do(req)
	if err != nil {
		return owner, nil, fmt.Errorf("grid: fetching trace from %s: %w", owner, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, maxScrapeBody))
	if err != nil {
		return owner, nil, fmt.Errorf("grid: reading trace from %s: %w", owner, err)
	}
	if resp.StatusCode != http.StatusOK {
		return owner, nil, fmt.Errorf("grid: worker %s has no timeline for %s: %d", owner, fp, resp.StatusCode)
	}
	var rt remoteTrace
	if err := json.Unmarshal(body, &rt); err != nil {
		return owner, nil, fmt.Errorf("grid: parsing trace from %s: %w", owner, err)
	}
	spans := rt.Spans
	for i := range spans {
		spans[i].Node = owner
	}
	sort.SliceStable(spans, func(i, j int) bool { return spans[i].Start.Before(spans[j].Start) })
	return owner, spans, nil
}
