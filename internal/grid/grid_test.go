package grid

// The grid determinism contract, enforced in-process: a grid run of a
// suite is byte-identical to a single-node run at any worker count, when a
// worker dies mid-suite, and when a misconfigured worker must be refused —
// because the unit of distribution (fingerprint + derived seed + spec) is
// self-contained and every reply is verified before it can be merged. The
// process-level twin (cmd/relperfd's grid e2e) covers the same contract
// through real processes and SIGKILL.

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"relperf"
	"relperf/internal/fleet"
)

const gridSuite = `{"studies":[
	{"workload":"tableI","loop_n":2,"measurements":6,"reps":10},
	{"workload":"tableI","loop_n":3,"measurements":6,"reps":10},
	{"workload":"fig1","measurements":6,"reps":10}
]}`

func gridSpecs(t *testing.T) []fleet.StudySpec {
	t.Helper()
	req, err := fleet.DecodeSuiteRequest(strings.NewReader(gridSuite))
	if err != nil {
		t.Fatal(err)
	}
	return req.Studies
}

// singleNodeResults runs the suite on a plain local scheduler — the golden
// the grid runs must match byte for byte.
func singleNodeResults(t *testing.T, seed uint64) map[string][]byte {
	t.Helper()
	sched := fleet.New(fleet.Options{Workers: 2, Seed: seed})
	defer sched.Close()
	fps, err := sched.SubmitSpecs(gridSpecs(t))
	if err != nil {
		t.Fatal(err)
	}
	out := make(map[string][]byte, len(fps))
	for _, fp := range fps {
		blob, err := sched.Result(context.Background(), fp)
		if err != nil {
			t.Fatal(err)
		}
		out[fp] = blob
	}
	return out
}

// newWorkerNode spins up one in-process relperfd worker: a fleet scheduler
// behind the real HTTP server.
func newWorkerNode(t *testing.T, seed uint64) *httptest.Server {
	t.Helper()
	sched := fleet.New(fleet.Options{Workers: 2, Seed: seed})
	t.Cleanup(sched.Close)
	ts := httptest.NewServer(fleet.NewServer(sched))
	t.Cleanup(ts.Close)
	return ts
}

// gridRun executes the suite through a coordinator-dispatching scheduler
// and returns every study's bytes.
func gridRun(t *testing.T, seed uint64, coord *Coordinator) map[string][]byte {
	t.Helper()
	sched := fleet.New(fleet.Options{Workers: 2, Seed: seed, Dispatch: coord.Dispatch})
	defer sched.Close()
	fps, err := sched.SubmitSpecs(gridSpecs(t))
	if err != nil {
		t.Fatal(err)
	}
	out := make(map[string][]byte, len(fps))
	for _, fp := range fps {
		blob, err := sched.Result(context.Background(), fp)
		if err != nil {
			t.Fatal(err)
		}
		out[fp] = blob
	}
	return out
}

func assertIdentical(t *testing.T, got, want map[string][]byte, label string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d studies, want %d", label, len(got), len(want))
	}
	for fp, blob := range want {
		if !bytes.Equal(got[fp], blob) {
			t.Fatalf("%s: study %s bytes differ from the single-node run", label, fp)
		}
	}
}

// TestGridByteIdentityAnyWorkerCount: the tentpole property. The same
// suite, run through coordinators with 0, 1, 2 and 3 registered workers,
// serves bytes identical to the single-node golden — 0 workers exercising
// the pure local-fallback path, the rest exercising remote dispatch.
func TestGridByteIdentityAnyWorkerCount(t *testing.T) {
	const seed = 7
	want := singleNodeResults(t, seed)

	for _, workers := range []int{0, 1, 2, 3} {
		coord := New(Config{Seed: seed, Logf: t.Logf})
		for i := 0; i < workers; i++ {
			ts := newWorkerNode(t, seed)
			if err := coord.Registry().Heartbeat(WorkerInfo{ID: fmt.Sprintf("w%d", i), URL: ts.URL, Capacity: 2, Seed: seed}); err != nil {
				t.Fatal(err)
			}
		}
		got := gridRun(t, seed, coord)
		assertIdentical(t, got, want, fmt.Sprintf("workers=%d", workers))

		stats := coord.Stats()
		if workers == 0 {
			if stats.Remote != 0 || stats.Fallbacks != uint64(len(want)) {
				t.Fatalf("workers=0 stats = %+v, want pure fallback", stats)
			}
		} else {
			if stats.Remote != uint64(len(want)) || stats.Fallbacks != 0 || stats.Retries != 0 {
				t.Fatalf("workers=%d stats = %+v, want pure remote", workers, stats)
			}
		}
	}
}

// dyingWorker accepts study submissions but kills the connection of every
// result-stream request — a worker that takes work and then dies
// mid-computation, as seen from the coordinator.
type dyingWorker struct {
	inner http.Handler
	kills atomic.Int32
}

func (d *dyingWorker) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if r.Method == http.MethodGet && strings.HasPrefix(r.URL.Path, "/v1/studies/") {
		d.kills.Add(1)
		conn, _, err := w.(http.Hijacker).Hijack()
		if err == nil {
			conn.Close()
		}
		return
	}
	d.inner.ServeHTTP(w, r)
}

// TestGridByteIdentityUnderWorkerDeath: one of two workers dies on every
// result stream. Studies assigned to it are dropped, reassigned by rehash
// to the healthy worker, and the suite's bytes still match the single-node
// golden — no fallback to local execution needed while a healthy worker
// remains.
func TestGridByteIdentityUnderWorkerDeath(t *testing.T) {
	const seed = 7
	want := singleNodeResults(t, seed)

	coord := New(Config{Seed: seed, Logf: t.Logf})
	healthy := newWorkerNode(t, seed)

	dyingSched := fleet.New(fleet.Options{Workers: 2, Seed: seed})
	t.Cleanup(dyingSched.Close)
	dying := &dyingWorker{inner: fleet.NewServer(dyingSched)}
	dyingTS := httptest.NewServer(dying)
	t.Cleanup(dyingTS.Close)

	coord.Registry().Heartbeat(WorkerInfo{ID: "healthy", URL: healthy.URL, Capacity: 2, Seed: seed})
	coord.Registry().Heartbeat(WorkerInfo{ID: "dying", URL: dyingTS.URL, Capacity: 2, Seed: seed})

	got := gridRun(t, seed, coord)
	assertIdentical(t, got, want, "worker death")

	stats := coord.Stats()
	if dying.kills.Load() == 0 || stats.Retries == 0 {
		t.Fatalf("death was never injected: kills=%d stats=%+v", dying.kills.Load(), stats)
	}
	if stats.Fallbacks != 0 {
		t.Fatalf("fell back to local with a healthy worker available: %+v", stats)
	}
	if stats.Remote != uint64(len(want)) {
		t.Fatalf("remote = %d, want %d", stats.Remote, len(want))
	}
	// The dying worker stays registered — quarantine holds flaky workers
	// out of rotation instead of forgetting them — but its failure streak
	// is on the record and, with three studies failed against it, it is
	// quarantined out of dispatch.
	st := stateOf(t, coord.Registry(), "dying")
	if st.Failures == 0 {
		t.Fatalf("dying worker carries no failure record: %+v", st)
	}
	if st.Failures >= DefaultQuarantineThreshold && st.State != StateQuarantined {
		t.Fatalf("dying worker past threshold but not quarantined: %+v", st)
	}
}

// TestGridMisKeyedWorkerRefused: a worker running a different suite seed
// slips into the registry (bypassing the heartbeat guard); dispatch
// detects the mismatch from its submit reply, refuses its results, and the
// suite falls back to bytes identical to the single-node run. Determinism
// survives misconfiguration.
func TestGridMisKeyedWorkerRefused(t *testing.T) {
	const seed = 7
	want := singleNodeResults(t, seed)

	coord := New(Config{Seed: seed, Logf: t.Logf})
	wrongSeed := newWorkerNode(t, seed+1)
	coord.Registry().Heartbeat(WorkerInfo{ID: "mis-keyed", URL: wrongSeed.URL, Capacity: 2, Seed: seed})

	got := gridRun(t, seed, coord)
	assertIdentical(t, got, want, "mis-keyed worker")
	stats := coord.Stats()
	if stats.Remote != 0 || stats.Fallbacks != uint64(len(want)) {
		t.Fatalf("stats = %+v, want every study refused and run locally", stats)
	}
}

// TestGridDispatchSeedGuard: an envelope whose derived seed does not match
// the coordinator's derivation is refused outright.
func TestGridDispatchSeedGuard(t *testing.T) {
	coord := New(Config{Seed: 7})
	fp := strings.Repeat("ab", 16)
	_, err := coord.Dispatch(context.Background(), relperf.GridTask{Fingerprint: fp, Seed: 12345, Spec: []byte(`{}`)})
	if err == nil || !strings.Contains(err.Error(), "seed") {
		t.Fatalf("err = %v", err)
	}
}

// TestRunHeartbeatsAdaptsToCoordinatorTTL: a worker heartbeating a
// coordinator whose TTL is far below DefaultTTL must adapt its interval
// off the heartbeat ack and stay registered — at the default interval
// (DefaultTTL/3 = 5s) it would expire from a 600ms registry within one
// beat.
func TestRunHeartbeatsAdaptsToCoordinatorTTL(t *testing.T) {
	const seed = 7
	coord := New(Config{Seed: seed, TTL: 600 * time.Millisecond})
	ts := httptest.NewServer(coord.Handler())
	defer ts.Close()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := make(chan struct{})
	go func() {
		defer close(done)
		RunHeartbeats(ctx, nil, ts.URL, WorkerInfo{ID: "w0", URL: "http://w0", Capacity: 1, Seed: seed}, 0, t.Logf)
	}()

	// Wait for the first heartbeat to land...
	regDeadline := time.Now().Add(5 * time.Second)
	for len(coord.Registry().Alive()) == 0 {
		if time.Now().After(regDeadline) {
			t.Fatal("worker never registered")
		}
		time.Sleep(10 * time.Millisecond)
	}
	// ...then, across two full TTL windows, the worker must never expire.
	deadline := time.Now().Add(1500 * time.Millisecond)
	for time.Now().Before(deadline) {
		if len(coord.Registry().Alive()) != 1 {
			t.Fatal("worker expired despite adaptive heartbeats")
		}
		time.Sleep(50 * time.Millisecond)
	}
	cancel()
	<-done
}

// TestCoordinatorHandlers covers the /v1/grid/* HTTP surface: heartbeats
// register (and are refused on seed mismatch or garbage), the worker
// listing reports registry and dispatch state, and the task journal serves
// the dispatched envelopes.
func TestCoordinatorHandlers(t *testing.T) {
	const seed = 7
	coord := New(Config{Seed: seed, Logf: t.Logf})
	ts := httptest.NewServer(coord.Handler())
	defer ts.Close()

	post := func(body string) (int, []byte) {
		t.Helper()
		resp, err := http.Post(ts.URL+"/v1/grid/workers", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var buf bytes.Buffer
		buf.ReadFrom(resp.Body)
		return resp.StatusCode, buf.Bytes()
	}

	worker := newWorkerNode(t, seed)
	code, body := post(fmt.Sprintf(`{"id":"w0","url":%q,"capacity":2,"seed":%d}`, worker.URL, seed))
	if code != http.StatusOK || !bytes.Contains(body, []byte("ttl_ms")) {
		t.Fatalf("heartbeat: %d %s", code, body)
	}
	if code, body = post(fmt.Sprintf(`{"id":"w1","url":"http://x","capacity":2,"seed":%d}`, seed+1)); code != http.StatusConflict {
		t.Fatalf("mis-keyed heartbeat: %d %s", code, body)
	}
	if code, _ = post(`{"id":"w2","url":"http://x","bogus":1}`); code != http.StatusBadRequest {
		t.Fatalf("garbage heartbeat: %d", code)
	}
	if code, _ = post(fmt.Sprintf(`{"url":"http://x","seed":%d}`, seed)); code != http.StatusBadRequest {
		t.Fatalf("id-less heartbeat: %d", code)
	}

	// One real dispatch so the listing and journal have content.
	sched := fleet.New(fleet.Options{Workers: 2, Seed: seed, Dispatch: coord.Dispatch})
	defer sched.Close()
	fps, err := sched.SubmitSpecs(gridSpecs(t)[:1])
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sched.Result(context.Background(), fps[0]); err != nil {
		t.Fatal(err)
	}

	resp, err := http.Get(ts.URL + "/v1/grid/workers")
	if err != nil {
		t.Fatal(err)
	}
	var wr workersResponse
	if err := json.NewDecoder(resp.Body).Decode(&wr); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(wr.Workers) != 1 || wr.Workers[0].ID != "w0" || wr.Dispatch.Remote != 1 {
		t.Fatalf("workers listing = %+v", wr)
	}

	resp, err = http.Get(ts.URL + "/v1/grid/tasks")
	if err != nil {
		t.Fatal(err)
	}
	var tr tasksResponse
	if err := json.NewDecoder(resp.Body).Decode(&tr); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(tr.Tasks) != 1 || tr.Tasks[0].Outcome != "remote" || tr.Tasks[0].Worker != "w0" {
		t.Fatalf("task journal = %+v", tr)
	}
	// The journal entry is a valid relperf/grid-task/v1 envelope whose
	// fingerprint matches the dispatched study.
	task, err := relperf.UnmarshalGridTask(tr.Tasks[0].Task)
	if err != nil {
		t.Fatal(err)
	}
	if task.Fingerprint != fps[0] {
		t.Fatalf("journal task fingerprint %s, want %s", task.Fingerprint, fps[0])
	}
}
