package grid

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"relperf/internal/obs"
)

// fixtureExposition is the canned /v1/metrics body the live fake worker
// serves: a representative slice of a real worker's exposition — metadata
// lines (must be dropped), a bare-name sample (gains {worker=...}), and a
// labeled sample (worker label must come first).
const fixtureExposition = `# HELP fleet_computes_total Study computations started.
# TYPE fleet_computes_total counter
fleet_computes_total 3
# HELP fleet_inflight_studies Studies currently computing.
# TYPE fleet_inflight_studies gauge
fleet_inflight_studies 1
engine_stage_seconds_sum{stage="measure"} 0.25
engine_stage_seconds_count{stage="measure"} 2
`

// TestFederatedMetricsGolden pins the full GET /v1/grid/metrics wire
// bytes for a two-worker fleet with one worker down: the coordinator's
// own exposition, the grid_scrape_ok family, worker w1's relabeled
// samples, and w2's deterministic scrape-failed marker (stale, not
// missing — w2 keeps its grid_scrape_ok row). Error detail is asserted
// to live in /v1/gridz, not the exposition, which is what keeps this
// golden stable across runs (connection errors embed random ports).
// Regenerate with:
//
//	go test ./internal/grid -run TestFederatedMetricsGolden -update
func TestFederatedMetricsGolden(t *testing.T) {
	live := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/v1/metrics" {
			http.NotFound(w, r)
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_, _ = w.Write([]byte(fixtureExposition))
	}))
	defer live.Close()

	c := New(Config{Seed: 42, TTL: time.Minute, Obs: obs.New(), ScrapeTimeout: time.Second})
	if err := c.Registry().Heartbeat(WorkerInfo{ID: "w1", URL: live.URL, Seed: 42}); err != nil {
		t.Fatal(err)
	}
	// w2 is registered but unreachable: port 1 refuses immediately.
	if err := c.Registry().Heartbeat(WorkerInfo{ID: "w2", URL: "http://127.0.0.1:1", Seed: 42}); err != nil {
		t.Fatal(err)
	}

	rec := httptest.NewRecorder()
	c.handleGridMetrics(rec, httptest.NewRequest(http.MethodGet, "/v1/grid/metrics", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("GET /v1/grid/metrics: %d", rec.Code)
	}
	got := rec.Body.Bytes()

	golden := filepath.Join("testdata", "federated_golden.prom")
	if *updateGolden {
		if err := os.WriteFile(golden, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (regenerate with: go test ./internal/grid -run TestFederatedMetricsGolden -update)", err)
	}
	if !bytes.Equal(want, got) {
		t.Fatalf("federated exposition drifted from the golden bytes.\n--- want ---\n%s\n--- got ---\n%s", want, got)
	}

	// The failure detail the exposition deliberately omits must surface in
	// /v1/gridz: w2's scrape row is fresh, failed, and carries the error.
	zrec := httptest.NewRecorder()
	c.handleGridz(zrec, httptest.NewRequest(http.MethodGet, "/v1/gridz", nil))
	var z gridzResponse
	if err := json.Unmarshal(zrec.Body.Bytes(), &z); err != nil {
		t.Fatal(err)
	}
	if len(z.Workers) != 2 {
		t.Fatalf("gridz workers = %d, want 2", len(z.Workers))
	}
	w1, w2 := z.Workers[0], z.Workers[1]
	if w1.ID != "w1" || w2.ID != "w2" {
		t.Fatalf("gridz order = %s, %s; want w1, w2", w1.ID, w2.ID)
	}
	if w1.Scrape == nil || !w1.Scrape.OK || w1.Scrape.Error != "" {
		t.Fatalf("w1 scrape = %+v, want fresh success", w1.Scrape)
	}
	if w2.Scrape == nil || w2.Scrape.OK || w2.Scrape.Error == "" {
		t.Fatalf("w2 scrape = %+v, want recorded failure with error detail", w2.Scrape)
	}
	if w1.Scrape.AgeSeconds < 0 || w1.Scrape.AgeSeconds > 60 {
		t.Fatalf("w1 scrape age = %v, want recent", w1.Scrape.AgeSeconds)
	}
}

// TestFederatedScrapeBoundedByTimeout proves the "one timeout window"
// contract: a worker that accepts the connection and then hangs (the
// SIGSTOP shape) delays the federated scrape by about one ScrapeTimeout,
// not forever, and degrades to a failed row while the healthy worker's
// samples still come through.
func TestFederatedScrapeBoundedByTimeout(t *testing.T) {
	release := make(chan struct{})
	defer close(release)
	hung := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		select {
		case <-release:
		case <-r.Context().Done():
		}
	}))
	defer hung.Close()
	live := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		_, _ = w.Write([]byte("fleet_computes_total 1\n"))
	}))
	defer live.Close()

	c := New(Config{Seed: 1, TTL: time.Minute, Obs: obs.New(), ScrapeTimeout: 200 * time.Millisecond})
	if err := c.Registry().Heartbeat(WorkerInfo{ID: "hung", URL: hung.URL, Seed: 1}); err != nil {
		t.Fatal(err)
	}
	if err := c.Registry().Heartbeat(WorkerInfo{ID: "live", URL: live.URL, Seed: 1}); err != nil {
		t.Fatal(err)
	}

	start := time.Now()
	rec := httptest.NewRecorder()
	c.handleGridMetrics(rec, httptest.NewRequest(http.MethodGet, "/v1/grid/metrics", nil))
	elapsed := time.Since(start)
	if elapsed > 2*time.Second {
		t.Fatalf("federated scrape took %v with a hung worker; want ~one 200ms timeout window", elapsed)
	}
	body := rec.Body.String()
	if !strings.Contains(body, `grid_scrape_ok{worker="hung"} 0`) {
		t.Fatalf("hung worker not marked failed:\n%s", body)
	}
	if !strings.Contains(body, `fleet_computes_total{worker="live"} 1`) {
		t.Fatalf("live worker's samples missing from partial federation:\n%s", body)
	}
}

func TestRelabelExposition(t *testing.T) {
	cases := []struct {
		name   string
		in     string
		worker string
		want   string
	}{
		{"bare name gains label set", "up 1\n", "w1", `up{worker="w1"} 1` + "\n"},
		{"existing labels keep worker first", `hist_sum{stage="measure"} 2` + "\n", "w1",
			`hist_sum{worker="w1",stage="measure"} 2` + "\n"},
		{"metadata dropped", "# HELP up Up.\n# TYPE up gauge\nup 1\n", "w1", `up{worker="w1"} 1` + "\n"},
		{"label value escaped", "up 1\n", `a"b\c`, `up{worker="a\"b\\c"} 1` + "\n"},
		{"blank and junk lines dropped", "\nnot-a-sample-line\nup 1\n", "w1", `up{worker="w1"} 1` + "\n"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := string(relabelExposition([]byte(tc.in), tc.worker)); got != tc.want {
				t.Fatalf("relabel(%q, %q) = %q, want %q", tc.in, tc.worker, got, tc.want)
			}
		})
	}
}

// TestHeartbeatDigestRoundTrip drives WorkerInfo values carrying stats
// digests through the real wire path — the Heartbeat client function
// against the coordinator's HTTP handler (which decodes with
// DisallowUnknownFields) — and asserts the registry's view matches what
// the worker sent, including absent digests staying absent.
func TestHeartbeatDigestRoundTrip(t *testing.T) {
	cases := []struct {
		name   string
		digest *HeartbeatDigest
	}{
		{"no digest (older worker)", nil},
		{"zero digest", &HeartbeatDigest{}},
		{"populated digest", &HeartbeatDigest{Inflight: 3, StoreEntries: 17, Computes: 941, ServeP99Ms: 12.5}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			c := New(Config{Seed: 7, TTL: time.Minute})
			srv := httptest.NewServer(c.Handler())
			defer srv.Close()

			info := WorkerInfo{ID: "w1", URL: "http://worker:1", Seed: 7, Epoch: 2, Digest: tc.digest}
			if _, err := Heartbeat(context.Background(), srv.Client(), srv.URL, info); err != nil {
				t.Fatal(err)
			}
			workers := c.Registry().Workers()
			if len(workers) != 1 {
				t.Fatalf("workers = %d, want 1", len(workers))
			}
			got := workers[0].Digest
			if (got == nil) != (tc.digest == nil) {
				t.Fatalf("digest presence = %v, want %v", got != nil, tc.digest != nil)
			}
			if got != nil && *got != *tc.digest {
				t.Fatalf("digest = %+v, want %+v", *got, *tc.digest)
			}
		})
	}
}
