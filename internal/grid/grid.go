// Package grid is the multi-node tier of the serving system: a coordinator
// that registers remote relperfd workers, shards a suite's fingerprinted
// studies across them over the daemon's existing HTTP API, verifies every
// reply, and merges the results into the coordinator's own fleet store —
// so snapshots, eviction-recompute and serving work exactly as on a single
// node.
//
// The unit of distribution is the fleet layer's study primitive: a
// content-addressed fingerprint plus a self-contained derived seed
// (StudySeed = Mix(suiteSeed, fingerprintKey)) and a declarative spec,
// carried in a relperf/grid-task/v1 envelope. Because the envelope fully
// determines the study's canonical result bytes, any worker keyed with the
// same suite seed computes exactly what the coordinator would have
// computed locally — which is the grid determinism contract: a grid run of
// a suite is byte-identical to a single-node run at any worker count,
// under any assignment, and across worker failures.
//
// Failure handling is first-class. Studies are assigned by rendezvous
// hashing (Registry.Pick); a failed request marks the worker suspect in
// the registry's health state machine (a streak of failures quarantines
// it out of rotation — see State) and deterministically reassigns the
// study to the next-ranked live worker, and when no worker is available
// (or every attempt failed) Dispatch returns an error, which makes the
// fleet scheduler run the study locally — a degraded grid degrades to a
// single node, never to a failed suite.
package grid

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"relperf"
	"relperf/internal/fleet"
	"relperf/internal/obs"
	"relperf/internal/wal"
	"relperf/internal/xrand"
)

// Defaults for Config's zero values.
const (
	// DefaultMaxAttempts is how many workers a study is offered to before
	// falling back to local execution.
	DefaultMaxAttempts = 3
	// DefaultRequestTimeout caps one remote attempt (submit + stream).
	DefaultRequestTimeout = 10 * time.Minute
	// DefaultRetryBase is the first retry's backoff window.
	DefaultRetryBase = 50 * time.Millisecond
	// DefaultRetryMax caps the exponential backoff growth.
	DefaultRetryMax = 5 * time.Second
	// journalCap bounds the in-memory (serving) dispatch journal; with a
	// WAL attached the full history is durable, this only bounds what
	// GET /v1/grid/tasks returns.
	journalCap = 256
)

// ErrNoWorkers is returned by Dispatch when no live worker is available
// (or none is left after exclusions) — the scheduler's cue to run the
// study locally.
var ErrNoWorkers = errors.New("grid: no live workers")

// Config configures a Coordinator.
type Config struct {
	// Seed is the coordinator's suite seed. Heartbeats from workers keyed
	// with a different seed are rejected: they would compute different
	// bytes for the same fingerprint.
	Seed uint64
	// TTL is the worker-expiry window (default DefaultTTL).
	TTL time.Duration
	// MaxAttempts bounds remote attempts per study (default
	// DefaultMaxAttempts).
	MaxAttempts int
	// RequestTimeout caps one remote attempt end to end (default
	// DefaultRequestTimeout).
	RequestTimeout time.Duration
	// RetryBase is the backoff window before the first reassignment
	// (default DefaultRetryBase). Each further attempt doubles it, capped
	// at RetryMax; the actual delay is drawn deterministically from
	// [window/2, window] keyed by (Seed, fingerprint, attempt), so
	// coordinators with equal seeds retry on identical schedules while a
	// burst of failing studies still spreads instead of thundering onto
	// the next-ranked worker in lockstep.
	RetryBase time.Duration
	// RetryMax caps the backoff window (default DefaultRetryMax).
	RetryMax time.Duration
	// QuarantineThreshold is how many consecutive dispatch failures move
	// a worker from suspect to quarantined (default
	// DefaultQuarantineThreshold).
	QuarantineThreshold int
	// Quarantine is how long a quarantined worker is held out of
	// rotation before its probation re-probe (default DefaultQuarantine).
	Quarantine time.Duration
	// ScrapeTimeout caps one federated scrape of one worker's /v1/metrics
	// and one trace fan-in fetch (default DefaultScrapeTimeout). Scrapes
	// run concurrently, so a whole-fleet federation pass completes within
	// roughly one window regardless of how many workers are unreachable.
	ScrapeTimeout time.Duration
	// Origin names this coordinator on dispatched work: it is stamped as
	// the X-Relperf-Origin header on every study submitted to a worker
	// (the worker records it as an "origin" event on the study's
	// timeline) and tags the coordinator's own spans in fanned-in traces.
	// Default "coordinator".
	Origin string
	// Client is the HTTP client for worker requests; nil means a default
	// client (no global timeout — the per-attempt context enforces one).
	Client *http.Client
	// Journal, when set, makes the dispatch journal durable: every task
	// record is appended to the write-ahead log as a wal.TypeTask record,
	// and RestoreJournal reloads them at startup — so GET /v1/grid/tasks
	// survives coordinator restarts instead of forgetting every dispatch.
	Journal *wal.Log
	// Logf receives dispatch diagnostics; nil discards them.
	Logf func(format string, args ...any)
	// Obs receives the coordinator's metrics (dispatch outcomes, worker
	// liveness, heartbeats) and per-attempt dispatch spans. Share the
	// fleet scheduler's Obs so /v1/metrics serves one unified exposition;
	// nil disables grid observability.
	Obs *obs.Obs
}

// Coordinator shards studies across registered workers. Its Dispatch
// method is the fleet scheduler's dispatch hook; its Handler serves the
// /v1/grid/* registration and observability endpoints.
type Coordinator struct {
	cfg    Config
	reg    *Registry
	client *http.Client
	// sleep waits out a retry backoff; tests replace it to record the
	// schedule instead of paying it.
	sleep func(ctx context.Context, d time.Duration)

	remote    atomic.Uint64 // studies completed on a worker
	retries   atomic.Uint64 // failed attempts that were reassigned
	fallbacks atomic.Uint64 // studies handed back for local execution

	heartbeats     *obs.Counter   // accepted worker heartbeats
	attemptSeconds *obs.Histogram // one remote attempt, success or not
	scrapeFailures *obs.Counter   // failed per-worker federated scrapes

	mu      sync.Mutex
	journal []TaskRecord // newest first, bounded by journalCap

	// scrapes remembers the last federated scrape per worker — the
	// freshness /v1/gridz reports. Its own mutex: scrapes land from
	// concurrent fetch goroutines and must not contend with the journal.
	scrapeMu sync.Mutex
	scrapes  map[string]scrapeState
}

// New returns a coordinator with an empty worker registry.
func New(cfg Config) *Coordinator {
	if cfg.MaxAttempts <= 0 {
		cfg.MaxAttempts = DefaultMaxAttempts
	}
	if cfg.RequestTimeout <= 0 {
		cfg.RequestTimeout = DefaultRequestTimeout
	}
	if cfg.RetryBase <= 0 {
		cfg.RetryBase = DefaultRetryBase
	}
	if cfg.RetryMax < cfg.RetryBase {
		cfg.RetryMax = DefaultRetryMax
	}
	if cfg.Origin == "" {
		cfg.Origin = "coordinator"
	}
	client := cfg.Client
	if client == nil {
		client = &http.Client{}
	}
	c := &Coordinator{cfg: cfg, reg: newRegistry(cfg.TTL, cfg.QuarantineThreshold, cfg.Quarantine), client: client, sleep: sleepCtx}
	c.registerMetrics()
	return c
}

// registerMetrics exports the coordinator's counters (kept as atomics
// for the /v1/grid/workers JSON) as scrape-time funcs, plus the worker
// registry's liveness series. Nil cfg.Obs registers nothing and every
// instrument stays a no-op.
func (c *Coordinator) registerMetrics() {
	reg := c.cfg.Obs.Reg()
	reg.CounterFunc("grid_remote_total", "Studies completed on a remote worker.",
		func() float64 { return float64(c.remote.Load()) })
	reg.CounterFunc("grid_retries_total", "Failed remote attempts that were reassigned.",
		func() float64 { return float64(c.retries.Load()) })
	reg.CounterFunc("grid_fallbacks_total", "Studies handed back for local execution.",
		func() float64 { return float64(c.fallbacks.Load()) })
	reg.GaugeFunc("grid_workers_live", "Workers with an unexpired heartbeat lease.",
		func() float64 { return float64(c.reg.Stats().Workers) })
	reg.GaugeFunc("grid_workers_quarantined", "Workers currently held out of rotation by quarantine.",
		func() float64 { return float64(c.reg.Stats().Quarantined) })
	reg.CounterFunc("grid_worker_expiries_total", "Workers expired by a missed heartbeat lease.",
		func() float64 { return float64(c.reg.Stats().Expiries) })
	reg.CounterFunc("grid_worker_failures_total", "Dispatch failures reported against workers.",
		func() float64 { return float64(c.reg.Stats().Failures) })
	reg.CounterFunc("grid_worker_quarantines_total", "Workers quarantined after consecutive dispatch failures.",
		func() float64 { return float64(c.reg.Stats().Quarantines) })
	reg.CounterFunc("grid_worker_recoveries_total", "Quarantined workers restored to healthy by a probation re-probe.",
		func() float64 { return float64(c.reg.Stats().Recoveries) })
	c.heartbeats = reg.Counter("grid_heartbeats_total", "Worker heartbeats accepted.")
	c.attemptSeconds = reg.Histogram("grid_attempt_seconds",
		"One remote dispatch attempt: submit, stream, verify.", nil)
	c.scrapeFailures = reg.Counter("grid_scrape_failures_total",
		"Per-worker federated metric scrapes that failed.")
}

// sleepCtx waits d or until ctx is done, whichever is first.
func sleepCtx(ctx context.Context, d time.Duration) {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
	case <-ctx.Done():
	}
}

// retryDelay computes the backoff before attempt+1: the window doubles
// from RetryBase per completed attempt, capped at RetryMax, and the delay
// within [window/2, window] is drawn by mixing (Seed, fingerprint,
// attempt) — deterministic for a given coordinator key, decorrelated
// across studies.
func (c *Coordinator) retryDelay(fingerprint string, attempt int) time.Duration {
	window := c.cfg.RetryBase
	for i := 1; i < attempt && window < c.cfg.RetryMax; i++ {
		window *= 2
	}
	if window > c.cfg.RetryMax {
		window = c.cfg.RetryMax
	}
	half := window / 2
	jitter := xrand.Mix(xrand.Mix(c.cfg.Seed, fingerprintKey(fingerprint)), uint64(attempt))
	return half + time.Duration(jitter%uint64(half+1))
}

// Registry returns the coordinator's worker registry.
func (c *Coordinator) Registry() *Registry { return c.reg }

func (c *Coordinator) logf(format string, args ...any) {
	if c.cfg.Logf != nil {
		c.cfg.Logf(format, args...)
	}
}

// TaskRecord is one dispatched study in the coordinator's journal: the
// relperf/grid-task/v1 envelope plus where it ran and how. Served by
// GET /v1/grid/tasks for operators chasing a slow or bouncing study.
type TaskRecord struct {
	// Task is the study's wire envelope.
	Task json.RawMessage `json:"task"`
	// Worker is the worker that completed it; empty on fallback.
	Worker string `json:"worker,omitempty"`
	// Attempts counts remote attempts, including the successful one.
	Attempts int `json:"attempts"`
	// Outcome is "remote" (a worker served it), "fallback" (handed back
	// for local execution) or "cancelled" (the caller gave up mid-attempt).
	Outcome string `json:"outcome"`
	// Error is the last attempt's failure when Outcome is not "remote".
	Error string `json:"error,omitempty"`
}

// record appends to the bounded serving journal (newest first) and, when
// a WAL is attached, journals the record durably. A WAL append failure is
// logged, not returned: the task record is observability, and a full disk
// must not turn a successfully dispatched study into a failed one. (The
// store's own WAL appends — the correctness-bearing ones — do fail their
// operations.) The WAL append happens under mu, accepting the fsync cost
// on this cold path, so the durable order matches the serving journal's
// — after a restart RestoreJournal replays WAL order, and GET
// /v1/grid/tasks must not reorder across the crash.
func (c *Coordinator) record(task relperf.GridTask, worker string, attempts int, outcome string, err error) {
	envelope, merr := task.MarshalWire()
	if merr != nil {
		envelope = []byte("{}")
	}
	rec := TaskRecord{Task: envelope, Worker: worker, Attempts: attempts, Outcome: outcome}
	if err != nil {
		rec.Error = err.Error()
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.journal = append([]TaskRecord{rec}, c.journal...)
	if len(c.journal) > journalCap {
		c.journal = c.journal[:journalCap]
	}
	if c.cfg.Journal != nil {
		data, jerr := json.Marshal(&rec)
		if jerr == nil {
			jerr = c.cfg.Journal.Append(wal.Record{Type: wal.TypeTask, Fingerprint: task.Fingerprint, Data: data})
		}
		if jerr != nil {
			c.logf("grid: journaling task record for %s: %v", task.Fingerprint, jerr)
		}
	}
}

// RestoreJournal reloads task records recovered from the write-ahead log
// (oldest first, as ReplayWAL returns them) into the serving journal, so
// GET /v1/grid/tasks picks up across a restart exactly where the dead
// coordinator left off. Unparseable records are skipped with a loud log —
// the WAL's CRC already vouched for the bytes, so a parse failure means an
// incompatible older schema, not corruption worth dying over. Returns how
// many records were restored.
func (c *Coordinator) RestoreJournal(recs []wal.Record) int {
	restored := 0
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, rec := range recs {
		var tr TaskRecord
		if err := json.Unmarshal(rec.Data, &tr); err != nil {
			c.logf("grid: skipping unparseable task record for %s: %v", rec.Fingerprint, err)
			continue
		}
		c.journal = append([]TaskRecord{tr}, c.journal...)
		restored++
	}
	if len(c.journal) > journalCap {
		c.journal = c.journal[:journalCap]
	}
	return restored
}

// Stats reports the coordinator's dispatch counters.
type Stats struct {
	Remote    uint64 `json:"remote"`
	Retries   uint64 `json:"retries"`
	Fallbacks uint64 `json:"fallbacks"`
}

// Stats returns a snapshot of the dispatch counters.
func (c *Coordinator) Stats() Stats {
	return Stats{Remote: c.remote.Load(), Retries: c.retries.Load(), Fallbacks: c.fallbacks.Load()}
}

// Dispatch runs one study on the grid: pick a worker by rendezvous hash,
// submit the study's spec over the worker's ordinary /v1/suites API,
// stream the result, verify it, and hand the canonical bytes back to the
// scheduler (which merges them into the coordinator's store). A failed
// attempt drops the worker, counts a retry and reassigns; when no worker
// is available or every attempt failed, the returned error makes the
// scheduler fall back to local execution. This is the fleet
// Options.Dispatch hook.
func (c *Coordinator) Dispatch(ctx context.Context, task relperf.GridTask) ([]byte, error) {
	// The envelope's seed must be the one our own suite seed derives —
	// anything else is a mis-keyed scheduler, and serving its result would
	// violate the determinism contract.
	if seed, err := relperf.StudySeed(c.cfg.Seed, task.Fingerprint); err != nil || seed != task.Seed {
		return nil, fmt.Errorf("grid: task %s carries seed %d, coordinator derives %d", task.Fingerprint, task.Seed, seed)
	}
	excluded := make(map[string]bool)
	attempts := 0
	lastErr := ErrNoWorkers
	for attempts < c.cfg.MaxAttempts {
		if attempts > 0 {
			// Back off before reassigning: an immediate rehash lands the
			// study (and every other study the dead worker held) on the
			// next-ranked worker in the same instant, which is how one
			// failure cascades into the next. The delay is deterministic
			// per (seed, study, attempt) — see retryDelay.
			d := c.retryDelay(task.Fingerprint, attempts)
			c.logf("grid: study %s backing off %s before attempt %d", task.Fingerprint, d, attempts+1)
			c.sleep(ctx, d)
			if ctx.Err() != nil {
				c.record(task, "", attempts, "cancelled", ctx.Err())
				return nil, ctx.Err()
			}
		}
		w, ok := c.reg.Pick(task.Fingerprint, excluded)
		if !ok {
			break
		}
		attempts++
		span := obs.Span{Name: "dispatch-attempt", Start: time.Now(), Attempt: attempts, Worker: w.ID}
		blob, err := c.runOn(ctx, w, task)
		span.End = time.Now()
		c.attemptSeconds.Observe(span.End.Sub(span.Start).Seconds())
		if err == nil {
			c.cfg.Obs.Trace().Add(task.Fingerprint, span)
			c.reg.ReportSuccess(w.ID)
			c.remote.Add(1)
			c.record(task, w.ID, attempts, "remote", nil)
			return blob, nil
		}
		span.Error = err.Error()
		c.cfg.Obs.Trace().Add(task.Fingerprint, span)
		lastErr = err
		if ctx.Err() != nil {
			// Not a worker failure and not a fallback: the caller gave up.
			// Record it as its own outcome so the journal reconciles with
			// the dispatch counters.
			c.record(task, w.ID, attempts, "cancelled", err)
			return nil, err
		}
		// The worker failed us: report it to the health machine (one
		// failure marks it suspect, a streak quarantines it — but a single
		// flake never unregisters it), exclude it for this study's
		// remaining attempts, and rehash onto the next-ranked worker.
		c.retries.Add(1)
		excluded[w.ID] = true
		c.reg.ReportFailure(w.ID)
		c.logf("grid: study %s attempt %d on %s failed: %v (reassigning)", task.Fingerprint, attempts, w.ID, err)
	}
	c.fallbacks.Add(1)
	c.record(task, "", attempts, "fallback", lastErr)
	c.logf("grid: study %s falling back to local execution after %d attempts: %v", task.Fingerprint, attempts, lastErr)
	return nil, fmt.Errorf("grid: study %s: %w", task.Fingerprint, lastErr)
}

// suiteResponse mirrors the worker's POST /v1/suites reply.
type suiteResponse struct {
	Fingerprints []string `json:"fingerprints"`
	Seed         uint64   `json:"seed"`
}

// runOn executes one attempt against one worker: submit the single-study
// suite, verify the worker's identity claims (fingerprint and seed — a
// worker running a different engine version or keyed differently is
// detected here, before its result can enter the store), stream the
// result, and verify the bytes are the canonical encoding.
func (c *Coordinator) runOn(ctx context.Context, w WorkerInfo, task relperf.GridTask) ([]byte, error) {
	ctx, cancel := context.WithTimeout(ctx, c.cfg.RequestTimeout)
	defer cancel()

	spec, err := relperf.ParseStudySpec(task.Spec)
	if err != nil {
		return nil, fmt.Errorf("grid: task %s spec: %w", task.Fingerprint, err)
	}
	body, err := json.Marshal(fleet.SuiteRequest{Studies: []fleet.StudySpec{*spec}})
	if err != nil {
		return nil, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, w.URL+"/v1/suites", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	// The origin stamp: the worker records it as an "origin" event on the
	// study's timeline, so a fanned-in trace shows not just what the worker
	// did but on whose behalf.
	req.Header.Set(fleet.OriginHeader, c.cfg.Origin)
	resp, err := c.client.Do(req)
	if err != nil {
		return nil, fmt.Errorf("grid: submitting to %s: %w", w.ID, err)
	}
	respBody, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	resp.Body.Close()
	if err != nil {
		return nil, fmt.Errorf("grid: reading submit reply from %s: %w", w.ID, err)
	}
	if resp.StatusCode != http.StatusAccepted {
		return nil, fmt.Errorf("grid: worker %s rejected the study: %d %s", w.ID, resp.StatusCode, respBody)
	}
	var sr suiteResponse
	if err := json.Unmarshal(respBody, &sr); err != nil {
		return nil, fmt.Errorf("grid: submit reply from %s: %w", w.ID, err)
	}
	if sr.Seed != c.cfg.Seed {
		return nil, fmt.Errorf("grid: worker %s runs seed %d, coordinator %d", w.ID, sr.Seed, c.cfg.Seed)
	}
	if len(sr.Fingerprints) != 1 || sr.Fingerprints[0] != task.Fingerprint {
		return nil, fmt.Errorf("grid: worker %s fingerprints the study as %v, coordinator as %s (engine skew)", w.ID, sr.Fingerprints, task.Fingerprint)
	}

	blob, err := c.streamResult(ctx, w, task.Fingerprint)
	if err != nil {
		return nil, err
	}
	// The scheduler re-verifies before merging (its Dispatch hook is
	// generic and cannot assume a verifying dispatcher); this check is
	// deliberately redundant with that one because failing HERE is what
	// attributes a bad reply to the worker — dropping it and retrying the
	// study elsewhere instead of silently degrading to local execution.
	if _, err := relperf.VerifyGridResult(task, blob); err != nil {
		return nil, fmt.Errorf("grid: worker %s: %w", w.ID, err)
	}
	return blob, nil
}
