package grid

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"time"

	"relperf/internal/xrand"
)

// Handler returns the coordinator's HTTP surface, mounted by relperfd
// under /v1/grid/ alongside the ordinary fleet endpoints:
//
//	POST /v1/grid/workers    worker heartbeat (register / refresh lease)
//	GET  /v1/grid/workers    live workers + registry and dispatch counters
//	GET  /v1/grid/tasks      recent dispatch journal (task envelopes)
//	GET  /v1/grid/metrics    federated exposition: coordinator + every
//	                         worker's series re-labeled worker="<id>"
//	GET  /v1/gridz           JSON fleet summary (health, epochs, digests,
//	                         heartbeat ages, scrape freshness)
func (c *Coordinator) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/grid/workers", c.handleHeartbeat)
	mux.HandleFunc("GET /v1/grid/workers", c.handleWorkers)
	mux.HandleFunc("GET /v1/grid/tasks", c.handleTasks)
	mux.HandleFunc("GET /v1/grid/metrics", c.handleGridMetrics)
	mux.HandleFunc("GET /v1/gridz", c.handleGridz)
	return mux
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

type errorResponse struct {
	Error string `json:"error"`
}

// heartbeatResponse acknowledges a registration and tells the worker how
// long its lease lasts, so its heartbeat interval can adapt.
type heartbeatResponse struct {
	Status string `json:"status"`
	TTLMs  int64  `json:"ttl_ms"`
}

// maxHeartbeatBody bounds POST /v1/grid/workers bodies.
const maxHeartbeatBody = 1 << 16

func (c *Coordinator) handleHeartbeat(w http.ResponseWriter, r *http.Request) {
	var info WorkerInfo
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxHeartbeatBody))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&info); err != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: fmt.Sprintf("grid: decoding heartbeat: %v", err)})
		return
	}
	// A worker keyed with a different suite seed would compute different
	// bytes for the same fingerprint; refusing its registration is what
	// keeps a misconfigured node from ever being picked.
	if info.Seed != c.cfg.Seed {
		writeJSON(w, http.StatusConflict, errorResponse{
			Error: fmt.Sprintf("grid: worker seed %d does not match coordinator seed %d", info.Seed, c.cfg.Seed),
		})
		return
	}
	if err := c.reg.Heartbeat(info); err != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: err.Error()})
		return
	}
	c.heartbeats.Inc()
	writeJSON(w, http.StatusOK, heartbeatResponse{Status: "ok", TTLMs: c.reg.TTL().Milliseconds()})
}

// workersResponse is the GET /v1/grid/workers body: every registered
// worker with its health-machine state and consecutive-failure count,
// plus registry occupancy and dispatch counters.
type workersResponse struct {
	Workers  []WorkerStatus `json:"workers"`
	Registry RegistryStats  `json:"registry"`
	Dispatch Stats          `json:"dispatch"`
}

func (c *Coordinator) handleWorkers(w http.ResponseWriter, r *http.Request) {
	workers := c.reg.Workers()
	if workers == nil {
		workers = []WorkerStatus{}
	}
	writeJSON(w, http.StatusOK, workersResponse{Workers: workers, Registry: c.reg.Stats(), Dispatch: c.Stats()})
}

// tasksResponse is the GET /v1/grid/tasks body: the dispatch journal,
// newest first.
type tasksResponse struct {
	Tasks []TaskRecord `json:"tasks"`
}

func (c *Coordinator) handleTasks(w http.ResponseWriter, r *http.Request) {
	c.mu.Lock()
	tasks := make([]TaskRecord, len(c.journal))
	copy(tasks, c.journal)
	c.mu.Unlock()
	writeJSON(w, http.StatusOK, tasksResponse{Tasks: tasks})
}

// Heartbeat announces a worker to a coordinator once and returns the
// lease TTL the coordinator granted (0 when the coordinator predates the
// field).
func Heartbeat(ctx context.Context, client *http.Client, coordinatorURL string, info WorkerInfo) (time.Duration, error) {
	body, err := json.Marshal(info)
	if err != nil {
		return 0, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, coordinatorURL+"/v1/grid/workers", bytes.NewReader(body))
	if err != nil {
		return 0, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := client.Do(req)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		var e errorResponse
		_ = json.NewDecoder(resp.Body).Decode(&e)
		return 0, fmt.Errorf("grid: coordinator refused heartbeat: %d %s", resp.StatusCode, e.Error)
	}
	var hr heartbeatResponse
	if err := json.NewDecoder(resp.Body).Decode(&hr); err != nil {
		return 0, nil
	}
	return time.Duration(hr.TTLMs) * time.Millisecond, nil
}

// minHeartbeatInterval floors the adaptive interval so a tiny coordinator
// TTL cannot turn workers into heartbeat busy-loops.
const minHeartbeatInterval = 100 * time.Millisecond

// DefaultHeartbeatTimeout caps one heartbeat request when RunHeartbeats
// is handed a nil client; relperfd's -grid-heartbeat-timeout overrides it
// by passing an explicit client.
const DefaultHeartbeatTimeout = 10 * time.Second

// heartbeatMaxBackoff caps the unreachable-coordinator backoff: long
// enough that a dead coordinator is not hammered, short enough that a
// failed-over one regains its whole fleet within seconds.
const heartbeatMaxBackoff = 10 * time.Second

// heartbeatDelay is the wait before the next heartbeat: the healthy
// cadence while the coordinator answers; while it does not, a window
// doubling per consecutive failure and capped at heartbeatMaxBackoff,
// with the actual delay drawn deterministically from [window/2, window]
// keyed by (worker key, failure count) — the same shape as the dispatch
// retryDelay jitter, and for the same reason: a fleet backing off from
// one dead coordinator must re-announce spread across the window, not in
// lockstep. Pure, so the backoff schedule is unit-testable without
// clocks.
func heartbeatDelay(interval time.Duration, failures int, key uint64) time.Duration {
	if failures <= 0 {
		return interval
	}
	window := interval
	for i := 0; i < failures && window < heartbeatMaxBackoff; i++ {
		window *= 2
	}
	if window > heartbeatMaxBackoff {
		window = heartbeatMaxBackoff
	}
	half := window / 2
	jitter := xrand.Mix(key, uint64(failures))
	return half + time.Duration(jitter%uint64(half+1))
}

// RunHeartbeats announces the worker to the coordinator until ctx is
// done, starting immediately. interval <= 0 means adaptive: one third of
// the lease TTL each successful heartbeat reports (DefaultTTL/3 until the
// first reply), so workers track the coordinator's -grid-ttl instead of
// assuming the default. While the coordinator is unreachable the worker
// backs off exponentially (capped — see heartbeatDelay) instead of
// drumming on a dead address; the first successful beat after an outage
// IS the re-announcement, and it resets the cadence immediately, so a
// recovered (or failed-over) coordinator regains the worker within one
// backoff window and keeps it at the healthy rate from then on.
func RunHeartbeats(ctx context.Context, client *http.Client, coordinatorURL string, info WorkerInfo, interval time.Duration, logf func(format string, args ...any)) {
	RunHeartbeatsFunc(ctx, client, coordinatorURL, func() WorkerInfo { return info }, interval, logf)
}

// RunHeartbeatsFunc is RunHeartbeats with a per-beat registration
// callback: info is invoked before every heartbeat, so fields that
// change over the worker's life — the stats digest above all — ride each
// beat fresh instead of freezing at startup. The identity fields (ID,
// URL, Seed, Epoch) must stay stable across calls; only the digest is
// expected to move.
func RunHeartbeatsFunc(ctx context.Context, client *http.Client, coordinatorURL string, info func() WorkerInfo, interval time.Duration, logf func(format string, args ...any)) {
	adaptive := interval <= 0
	if adaptive {
		interval = DefaultTTL / 3
	}
	if client == nil {
		client = &http.Client{Timeout: DefaultHeartbeatTimeout}
	}
	if logf == nil {
		logf = func(string, ...any) {}
	}
	// The jitter key is the worker's identity: every worker of a downed
	// coordinator walks the same capped-doubling windows but draws its own
	// delay inside each, so the recovered coordinator absorbs the fleet's
	// re-announcements over a window instead of one synchronized burst.
	key := idHash(info().ID)
	failures := 0
	registered := false
	beat := func() {
		cur := info()
		ttl, err := Heartbeat(ctx, client, coordinatorURL, cur)
		if err != nil {
			failures++
			registered = false
			if ctx.Err() == nil {
				logf("grid: heartbeat to %s: %v (retrying in %s)", coordinatorURL, err, heartbeatDelay(interval, failures, key))
			}
			return
		}
		if !registered {
			logf("grid: registered with coordinator %s as %s (lease %s)", coordinatorURL, cur.ID, ttl)
		}
		registered = true
		failures = 0
		if adaptive && ttl > 0 {
			next := ttl / 3
			if next < minHeartbeatInterval {
				next = minHeartbeatInterval
			}
			interval = next
		}
	}
	timer := time.NewTimer(0) // first beat immediately
	defer timer.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-timer.C:
			beat()
			timer.Reset(heartbeatDelay(interval, failures, key))
		}
	}
}
