package grid

// The metric exposition is an API: dashboards and the CI scrape assert on
// series names, label sets and HELP/TYPE metadata, so an accidental rename
// is a breaking change even though no Go signature moved. This golden test
// pins the full /v1/metrics wire bytes for a deterministic world — every
// layer registered on one obs.Obs (engine/fleet/store via the scheduler
// and server, WAL, grid), a seeded store driven through a fixed op
// sequence, and no study executions (wall-clock durations would leak into
// histogram sums). Regenerate with:
//
//	go test ./internal/grid -run TestMetricsExpositionGolden -update
//
// and review the diff like any other API change.

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"
	"time"

	"relperf/internal/fleet"
	"relperf/internal/obs"
	"relperf/internal/wal"
)

var updateGolden = flag.Bool("update", false, "rewrite the golden metrics exposition")

func TestMetricsExpositionGolden(t *testing.T) {
	o := obs.New()

	// Capacity 1 so the fixed op sequence below exercises eviction too.
	store := fleet.NewStore(1)
	sched := fleet.New(fleet.Options{Workers: 2, Seed: 42, Store: store, Obs: o})
	defer sched.Close()
	fleet.NewServer(sched) // registers the per-route HTTP series eagerly

	walLog, _, err := wal.Open(filepath.Join(t.TempDir(), "wal.log"), 42, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer walLog.Close()
	walLog.SetMetrics(wal.NewMetrics(o.Registry))

	New(Config{Seed: 42, TTL: time.Minute, Obs: o})

	// Deterministic store traffic: two merges of the same bytes (insert,
	// then the idempotent-duplicate path), one conflicting merge, a second
	// fingerprint that evicts the first (capacity 1), one hit, one miss.
	if err := store.Merge("fp-a", []byte(`{"v":1}`)); err != nil {
		t.Fatal(err)
	}
	if err := store.Merge("fp-a", []byte(`{"v":1}`)); err != nil {
		t.Fatal(err)
	}
	if err := store.Merge("fp-a", []byte(`{"v":2}`)); err == nil {
		t.Fatal("conflicting merge accepted")
	}
	if err := store.Merge("fp-b", []byte(`{"v":3}`)); err != nil {
		t.Fatal(err)
	}
	if _, ok := store.Get("fp-b"); !ok {
		t.Fatal("fp-b missing")
	}
	if _, ok := store.Get("fp-a"); ok {
		t.Fatal("fp-a survived a capacity-1 store")
	}

	var buf bytes.Buffer
	if err := o.Registry.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "metrics_golden.prom")
	if *updateGolden {
		if err := os.MkdirAll(filepath.Dir(golden), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (regenerate with: go test ./internal/grid -run TestMetricsExpositionGolden -update)", err)
	}
	if !bytes.Equal(want, buf.Bytes()) {
		t.Fatalf("metrics exposition drifted from the golden bytes — a renamed or retyped series breaks scrapers; if intentional, regenerate with -update and review the diff.\n--- want ---\n%s\n--- got ---\n%s", want, buf.Bytes())
	}
}
