package grid

// The dispatch-retry backoff and the durable task journal: retries wait
// out a capped, exponentially growing, deterministically jittered window
// instead of rehashing instantly, workers back off a dead coordinator and
// re-announce on its first answer, and a WAL-backed coordinator's
// /v1/grid/tasks journal survives a restart.

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"sync/atomic"
	"testing"
	"time"

	"relperf"
	"relperf/internal/wal"
)

func TestRetryDelayDeterministicCappedDoubling(t *testing.T) {
	cfg := Config{Seed: 7, RetryBase: 100 * time.Millisecond, RetryMax: 400 * time.Millisecond}
	c1, c2 := New(cfg), New(cfg)
	const fp = "00112233445566778899aabbccddeeff"
	for attempt := 1; attempt <= 6; attempt++ {
		d1 := c1.retryDelay(fp, attempt)
		if d2 := c2.retryDelay(fp, attempt); d2 != d1 {
			t.Fatalf("attempt %d: equal-keyed coordinators disagree: %s vs %s", attempt, d1, d2)
		}
		window := cfg.RetryBase << (attempt - 1)
		if window > cfg.RetryMax {
			window = cfg.RetryMax
		}
		if d1 < window/2 || d1 > window {
			t.Fatalf("attempt %d: delay %s outside [%s, %s]", attempt, d1, window/2, window)
		}
	}
	// Different studies draw different jitter under the same schedule.
	if c1.retryDelay(fp, 1) == c1.retryDelay("ffeeddccbbaa99887766554433221100", 1) {
		t.Fatal("two studies share the exact jitter draw (suspicious mixing)")
	}
	// A different seed draws a different schedule.
	c3 := New(Config{Seed: 8, RetryBase: cfg.RetryBase, RetryMax: cfg.RetryMax})
	same := 0
	for attempt := 1; attempt <= 6; attempt++ {
		if c3.retryDelay(fp, attempt) == c1.retryDelay(fp, attempt) {
			same++
		}
	}
	if same == 6 {
		t.Fatal("seed does not key the jitter")
	}
}

// TestDispatchBacksOffBetweenAttempts: every reassignment waits out
// exactly the deterministic retryDelay schedule, and a context cancelled
// during the backoff records a cancelled task instead of burning the
// remaining attempts.
func TestDispatchBacksOffBetweenAttempts(t *testing.T) {
	const seed = 7
	failing := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "boom", http.StatusInternalServerError)
	}))
	defer failing.Close()

	coord := New(Config{Seed: seed, MaxAttempts: 3, RetryBase: 10 * time.Millisecond, RetryMax: 40 * time.Millisecond, Logf: t.Logf})
	var slept []time.Duration
	coord.sleep = func(ctx context.Context, d time.Duration) { slept = append(slept, d) }
	for i := 0; i < 3; i++ {
		if err := coord.Registry().Heartbeat(WorkerInfo{ID: string(rune('a' + i)), URL: failing.URL, Capacity: 1, Seed: seed}); err != nil {
			t.Fatal(err)
		}
	}

	specs := gridSpecs(t)
	cfg, err := specs[0].Config()
	if err != nil {
		t.Fatal(err)
	}
	_, fp, err := relperf.NewKeyedStudy(cfg, seed)
	if err != nil {
		t.Fatal(err)
	}
	studySeed, err := relperf.StudySeed(seed, fp)
	if err != nil {
		t.Fatal(err)
	}
	task := relperf.GridTask{Fingerprint: fp, Seed: studySeed, Spec: []byte(`{"workload":"tableI","loop_n":2,"measurements":6,"reps":10}`)}

	if _, err := coord.Dispatch(context.Background(), task); err == nil {
		t.Fatal("dispatch against all-failing workers succeeded")
	}
	// 3 attempts → backoffs before attempts 2 and 3, on the exact schedule.
	if len(slept) != 2 {
		t.Fatalf("slept %d times, want 2 (%v)", len(slept), slept)
	}
	for i, d := range slept {
		if want := coord.retryDelay(fp, i+1); d != want {
			t.Fatalf("backoff %d = %s, want %s", i, d, want)
		}
	}

	// Cancellation during a backoff is a cancelled task, not a fallback.
	ctx, cancel := context.WithCancel(context.Background())
	coord2 := New(Config{Seed: seed, MaxAttempts: 3, RetryBase: 10 * time.Millisecond, RetryMax: 40 * time.Millisecond})
	coord2.sleep = func(ctx context.Context, d time.Duration) { cancel() }
	coord2.Registry().Heartbeat(WorkerInfo{ID: "w", URL: failing.URL, Capacity: 1, Seed: seed})
	if _, err := coord2.Dispatch(ctx, task); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled dispatch = %v, want context.Canceled", err)
	}
	coord2.mu.Lock()
	outcome := coord2.journal[0].Outcome
	coord2.mu.Unlock()
	if outcome != "cancelled" {
		t.Fatalf("journal outcome %q, want cancelled", outcome)
	}
}

func TestHeartbeatDelaySchedule(t *testing.T) {
	const interval = 200 * time.Millisecond
	key := idHash("w0")
	if d := heartbeatDelay(interval, 0, key); d != interval {
		t.Fatalf("healthy delay = %s, want %s", d, interval)
	}
	for failures := 1; failures <= 12; failures++ {
		window := interval
		for i := 0; i < failures && window < heartbeatMaxBackoff; i++ {
			window *= 2
		}
		if window > heartbeatMaxBackoff {
			window = heartbeatMaxBackoff
		}
		d := heartbeatDelay(interval, failures, key)
		if d < window/2 || d > window {
			t.Fatalf("delay at %d failures = %s, outside [%s, %s]", failures, d, window/2, window)
		}
		if d2 := heartbeatDelay(interval, failures, key); d2 != d {
			t.Fatalf("jitter is not deterministic at %d failures: %s vs %s", failures, d, d2)
		}
	}
	// Two workers backing off from the same outage draw different delays —
	// the anti-thundering-herd property the jitter exists for.
	other := idHash("w1")
	same := 0
	for failures := 1; failures <= 8; failures++ {
		if heartbeatDelay(interval, failures, other) == heartbeatDelay(interval, failures, key) {
			same++
		}
	}
	if same == 8 {
		t.Fatal("worker identity does not key the heartbeat jitter")
	}
	// Recovery resets instantly: failures goes back to 0, so does the delay.
	if d := heartbeatDelay(interval, 0, key); d != interval {
		t.Fatalf("post-recovery delay = %s, want %s", d, interval)
	}
}

// TestRunHeartbeatsRecoversAfterOutage: a worker heartbeating a
// coordinator that starts dead re-announces itself once the coordinator
// answers, and stays registered afterwards — the outage costs backoff
// windows, not an operator action.
func TestRunHeartbeatsRecoversAfterOutage(t *testing.T) {
	const seed = 7
	coord := New(Config{Seed: seed, TTL: 600 * time.Millisecond})
	var up atomic.Bool
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if !up.Load() {
			http.Error(w, "down", http.StatusServiceUnavailable)
			return
		}
		coord.Handler().ServeHTTP(w, r)
	}))
	defer ts.Close()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := make(chan struct{})
	go func() {
		defer close(done)
		// A fixed 100ms cadence (not adaptive) keeps the test fast: the
		// point here is the outage backoff and the recovery reset, and
		// the adaptive path has its own test.
		RunHeartbeats(ctx, nil, ts.URL, WorkerInfo{ID: "w0", URL: "http://w0", Capacity: 1, Seed: seed}, 100*time.Millisecond, t.Logf)
	}()

	// Let a few beats fail, then bring the coordinator up.
	time.Sleep(300 * time.Millisecond)
	if n := len(coord.Registry().Alive()); n != 0 {
		t.Fatalf("%d workers registered while the coordinator was down", n)
	}
	up.Store(true)
	deadline := time.Now().Add(10 * time.Second)
	for len(coord.Registry().Alive()) == 0 {
		if time.Now().After(deadline) {
			t.Fatal("worker never re-announced after the outage")
		}
		time.Sleep(20 * time.Millisecond)
	}
	// And it stays registered at the healthy cadence (TTL 600ms → beats
	// every ~200ms; surviving a full second proves the cadence reset).
	hold := time.Now().Add(1200 * time.Millisecond)
	for time.Now().Before(hold) {
		if len(coord.Registry().Alive()) != 1 {
			t.Fatal("worker expired after recovery (cadence did not reset)")
		}
		time.Sleep(50 * time.Millisecond)
	}
	cancel()
	<-done
}

// TestTaskJournalSurvivesRestart: a WAL-backed coordinator's dispatch
// journal is rebuilt from the recovered task records, so operators keep
// their audit trail across a coordinator restart.
func TestTaskJournalSurvivesRestart(t *testing.T) {
	const seed = 7
	walPath := filepath.Join(t.TempDir(), "coord.wal")
	log1, recs, err := wal.Open(walPath, seed, t.Logf)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 0 {
		t.Fatalf("fresh wal replayed %d records", len(recs))
	}
	coord1 := New(Config{Seed: seed, Journal: log1, Logf: t.Logf})

	specs := gridSpecs(t)
	cfg, err := specs[0].Config()
	if err != nil {
		t.Fatal(err)
	}
	_, fp, err := relperf.NewKeyedStudy(cfg, seed)
	if err != nil {
		t.Fatal(err)
	}
	studySeed, err := relperf.StudySeed(seed, fp)
	if err != nil {
		t.Fatal(err)
	}
	task := relperf.GridTask{Fingerprint: fp, Seed: studySeed, Spec: []byte(`{"workload":"tableI","loop_n":2,"measurements":6,"reps":10}`)}
	// No workers → instant fallback, one journaled record.
	if _, err := coord1.Dispatch(context.Background(), task); err == nil {
		t.Fatal("dispatch with no workers succeeded")
	}
	if err := log1.Close(); err != nil {
		t.Fatal(err)
	}

	log2, recs, err := wal.Open(walPath, seed, t.Logf)
	if err != nil {
		t.Fatal(err)
	}
	defer log2.Close()
	coord2 := New(Config{Seed: seed, Journal: log2, Logf: t.Logf})
	if n := coord2.RestoreJournal(recs); n != 1 {
		t.Fatalf("restored %d task records, want 1", n)
	}
	coord2.mu.Lock()
	defer coord2.mu.Unlock()
	if len(coord2.journal) != 1 {
		t.Fatalf("journal has %d records after restart, want 1", len(coord2.journal))
	}
	rec := coord2.journal[0]
	if rec.Outcome != "fallback" || rec.Attempts != 0 {
		t.Fatalf("restored record = %+v, want a 0-attempt fallback", rec)
	}
	got, err := relperf.UnmarshalGridTask(rec.Task)
	if err != nil {
		t.Fatal(err)
	}
	if got.Fingerprint != fp || got.Seed != studySeed {
		t.Fatalf("restored envelope names %s/%d, want %s/%d", got.Fingerprint, got.Seed, fp, studySeed)
	}
}
