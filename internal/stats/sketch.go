package stats

// This file is the streaming quantile sketch: the fixed-size, deterministic,
// mergeable summary that lets a measurement campaign reach N = 10^6–10^8
// values per placement without holding them. It is the opt-in alternative to
// the exact array-backed path (SortedSample), with an explicit error-bound
// contract instead of bit-identity to the exact quantiles.
//
// # Construction
//
// The sketch is a compactor hierarchy in the KLL tradition, with the
// compaction decisions keyed deterministically through xrand rather than
// drawn from a shared RNG. Every added value receives an identity hash
//
//	h = xrand.Mix(seed, counter)
//
// fixed forever at Add time (seed identifies the ingest stream, counter is
// the value's index within it). The hierarchy level of an item is the number
// of leading zero bits of h: an item "survives" compaction level theta iff
// its top theta bits are zero, which happens with probability 2^-theta —
// exactly the geometric level assignment of a KLL compactor stack. The
// sketch retains the items surviving the current level and compacts (raises
// theta by one, re-filtering) whenever more than k items survive, so each
// retained item stands for 2^theta ingested values.
//
// Because survival is a pure predicate of (h, theta), the retained set — and
// with it theta itself, maintained minimal — is a pure function of the
// ingested multiset of (value, hash) pairs and k. That gives the sketch the
// property the engine's determinism contract needs and a shared-RNG
// compactor cannot offer: Merge is associative, commutative and
// order-insensitive, so equal seeds produce bit-identical sketch bytes at
// any worker count and under any merge tree, shuffled or not.
//
// Alongside the sampled items the sketch tracks the exact count n and the
// exact extremes min/max (combined with an IEEE total-order comparison, so
// even the -0.0/+0.0 tie merges identically in any order).
//
// # Quantiles
//
// While theta == 0 nothing has ever been dropped: the retained items are the
// entire stream and Quantile is the exact type-7 quantile (QuantileSorted),
// so small-N sketches degrade to the exact path. Once theta > 0 the
// retained values are a uniform 2^-theta sample of the stream; Quantile
// interpolates type-7 over the sorted retained values bracketed by the exact
// [min, max], which keeps Quantile monotone non-decreasing in q with
// Quantile(0) == min and Quantile(1) == max exactly. The rank error of any
// quantile is bounded by SketchEpsilon(k) with high probability; the
// property tests pin it against SortedSample ground truth at N up to 10^6.
//
// # Wire encoding
//
// MarshalBinary emits a canonical fixed-width big-endian encoding (magic,
// k, theta, count, n, min, max, items sorted by total-order value then
// hash). DecodeSketch validates strictly — magic, bounds, sortedness,
// survivor consistency, exact length — and decode→encode is a byte-level
// fixed point, the property FuzzSketchDecode holds.

import (
	"encoding/base64"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"sort"
	"sync"

	"relperf/internal/xrand"
)

// MaxSketchK bounds the retained-item capacity of a sketch; it exists so a
// hostile encoding cannot demand an absurd capacity, not as a practical
// limit (1<<26 items is already a gigabyte of retained state).
const MaxSketchK = 1 << 26

// SketchEpsilon returns the documented rank-error bound of a capacity-k
// sketch: for any q, the value returned by Quantile(q) has true rank within
// q ± SketchEpsilon(k) of the ingested distribution (with high probability
// over the hash assignment; the deterministic property suite pins it for
// the engine's seed derivations). After compaction the retained set is a
// uniform sample of at least ~k/2 values, so the bound is the DKW-style
// 2/sqrt(k).
func SketchEpsilon(k int) float64 {
	if k <= 0 {
		return math.NaN()
	}
	return 2 / math.Sqrt(float64(k))
}

// sketchItem is one retained value with its immutable identity hash.
type sketchItem struct {
	v float64
	h uint64
}

// Sketch is a fixed-size deterministic mergeable quantile sketch. Construct
// with NewSketch (for ingestion) or DecodeSketch (from wire bytes). The zero
// value is not usable. A Sketch is not safe for concurrent mutation;
// Quantile and the other read methods are safe to call concurrently with
// each other once no more Add/Merge calls occur (the engine's clustering
// stage reads one frozen sketch from many goroutines).
type Sketch struct {
	k     int
	seed  uint64 // identity-hash stream key; not part of the distribution state
	count uint64 // next Add's hash counter within the stream
	theta uint8  // current survival level; retained items stand for 2^theta values

	items []sketchItem // survivors of theta, sorted by (total-order v, h)
	n     uint64       // exact ingested count
	min   float64      // exact extremes (total-order), valid iff n > 0
	max   float64

	// est caches the sorted estimation array Quantile reads (retained
	// values, bracketed by min/max once theta > 0); estMu guards its lazy
	// build so concurrent readers of a frozen sketch race-freely share one
	// build. Mutations invalidate it by clearing est.
	estMu sync.Mutex
	est   []float64
}

// NewSketch returns an empty sketch of capacity k whose item hashes are
// keyed by seed. Sketches with equal (k, seed) fed equal value sequences are
// bit-identical; independent streams (one per placement) must use distinct
// seeds, conventionally xrand.Mix(studySketchSeed, streamIndex). k must be
// in [1, MaxSketchK].
func NewSketch(k int, seed uint64) (*Sketch, error) {
	if k < 1 || k > MaxSketchK {
		return nil, fmt.Errorf("stats: sketch k must be in 1..%d, got %d", MaxSketchK, k)
	}
	return &Sketch{k: k, seed: seed, min: math.NaN(), max: math.NaN()}, nil
}

// totalKey maps a float64 onto a uint64 whose unsigned order is the IEEE
// total order of the value (for non-NaN inputs): negative values sort below
// positive, and -0.0 below +0.0. Using it for every value comparison keeps
// the sketch state a pure function of value bit patterns, so merges are
// order-insensitive even on bit-distinct ties.
func totalKey(v float64) uint64 {
	b := math.Float64bits(v)
	if b>>63 == 1 {
		return ^b
	}
	return b | 1<<63
}

// totalLess is "a sorts strictly before b" in IEEE total order.
func totalLess(a, b float64) bool { return totalKey(a) < totalKey(b) }

// itemLess orders retained items canonically: total-order value, then hash.
func itemLess(a, b sketchItem) bool {
	ka, kb := totalKey(a.v), totalKey(b.v)
	if ka != kb {
		return ka < kb
	}
	return a.h < b.h
}

// survives reports whether an item with hash h is retained at level theta:
// its top theta bits must be zero (probability 2^-theta).
func survives(h uint64, theta uint8) bool {
	return theta == 0 || h>>(64-uint(theta)) == 0
}

// Add ingests one value. It panics on NaN or ±Inf — measurements are finite
// by the measure layer's validation, and a non-finite value would poison the
// canonical encoding.
func (s *Sketch) Add(v float64) {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		panic("stats: Sketch.Add of non-finite value")
	}
	h := xrand.Mix(s.seed, s.count)
	s.count++
	if s.n == 0 {
		s.min, s.max = v, v
	} else {
		if totalLess(v, s.min) {
			s.min = v
		}
		if totalLess(s.max, v) {
			s.max = v
		}
	}
	s.n++
	s.invalidate()
	if !survives(h, s.theta) {
		return
	}
	s.insert(sketchItem{v: v, h: h})
	if len(s.items) > s.k {
		s.compact()
	}
}

// insert places it into the canonically sorted retained slice.
func (s *Sketch) insert(it sketchItem) {
	i := sort.Search(len(s.items), func(i int) bool { return itemLess(it, s.items[i]) })
	s.items = append(s.items, sketchItem{})
	copy(s.items[i+1:], s.items[i:])
	s.items[i] = it
}

// compact raises theta until at most k items survive, re-filtering the
// retained slice in place. Filtering the retained set alone is exact: any
// item of the full stream surviving theta+1 also survives theta and is
// therefore already retained. The 63 cap is unreachable for any real stream
// (survival probability 2^-63) but keeps the shift defined.
func (s *Sketch) compact() {
	for len(s.items) > s.k && s.theta < 63 {
		s.theta++
		kept := s.items[:0]
		for _, it := range s.items {
			if survives(it.h, s.theta) {
				kept = append(kept, it)
			}
		}
		s.items = kept
	}
}

// Merge folds o into s. The two sketches must share k. Merging is
// associative, commutative and order-insensitive: any merge tree over the
// same ingest streams yields bit-identical state. o is not modified
// (merging a sketch into itself is allowed and doubles its counts).
func (s *Sketch) Merge(o *Sketch) error {
	if o == nil {
		return errors.New("stats: Merge of nil sketch")
	}
	if s.k != o.k {
		return fmt.Errorf("stats: sketch k mismatch: %d vs %d", s.k, o.k)
	}
	if o.n == 0 {
		return nil
	}
	on := o.n // read before any aliasing mutation (o may be s)
	omin, omax := o.min, o.max
	if s.n == 0 {
		s.items = append(s.items[:0], o.items...)
		s.theta = o.theta
		s.n, s.min, s.max = on, omin, omax
		s.invalidate()
		return nil
	}
	theta := s.theta
	if o.theta > theta {
		theta = o.theta
	}
	merged := make([]sketchItem, 0, len(s.items)+len(o.items))
	i, j := 0, 0
	for i < len(s.items) && j < len(o.items) {
		if itemLess(o.items[j], s.items[i]) {
			merged = append(merged, o.items[j])
			j++
		} else {
			merged = append(merged, s.items[i])
			i++
		}
	}
	merged = append(merged, s.items[i:]...)
	merged = append(merged, o.items[j:]...)
	// Re-filter under the joint level (items from the lower-level side may
	// not survive it), then compact to capacity; starting from
	// max(theta_s, theta_o) is exact because the minimal admissible level
	// of a union is never below either side's.
	s.theta = theta
	kept := merged[:0]
	for _, it := range merged {
		if survives(it.h, theta) {
			kept = append(kept, it)
		}
	}
	s.items = kept
	if len(s.items) > s.k {
		s.compact()
	}
	s.n += on
	if totalLess(omin, s.min) {
		s.min = omin
	}
	if totalLess(s.max, omax) {
		s.max = omax
	}
	s.invalidate()
	return nil
}

// invalidate drops the cached estimation array after a mutation.
func (s *Sketch) invalidate() {
	s.estMu.Lock()
	s.est = nil
	s.estMu.Unlock()
}

// estArray returns the sorted array Quantile interpolates over, building and
// caching it on first use: the retained values alone while theta == 0 (the
// exact stream), or bracketed by the exact extremes once sampling has begun.
func (s *Sketch) estArray() []float64 {
	s.estMu.Lock()
	defer s.estMu.Unlock()
	if s.est != nil {
		return s.est
	}
	if s.theta == 0 {
		est := make([]float64, len(s.items))
		for i, it := range s.items {
			est[i] = it.v
		}
		s.est = est
		return est
	}
	est := make([]float64, 0, len(s.items)+2)
	est = append(est, s.min)
	for _, it := range s.items {
		est = append(est, it.v)
	}
	est = append(est, s.max)
	s.est = est
	return est
}

// Quantile returns the estimated q-th quantile. It is monotone
// non-decreasing in q, exact at the endpoints (Quantile(0) == MinValue,
// Quantile(1) == MaxValue) and exact everywhere while theta == 0; otherwise
// its rank error is bounded by SketchEpsilon(k). Returns NaN for an empty
// sketch or q outside [0, 1].
func (s *Sketch) Quantile(q float64) float64 {
	if s.n == 0 || q < 0 || q > 1 {
		return math.NaN()
	}
	return QuantileSorted(s.estArray(), q)
}

// N returns the exact number of ingested values.
func (s *Sketch) N() uint64 { return s.n }

// K returns the retained-item capacity.
func (s *Sketch) K() int { return s.k }

// Theta returns the current survival level; each retained item stands for
// 2^Theta ingested values.
func (s *Sketch) Theta() int { return int(s.theta) }

// Retained returns the number of currently retained items (<= K).
func (s *Sketch) Retained() int { return len(s.items) }

// MinValue returns the exact minimum ingested value (NaN when empty).
func (s *Sketch) MinValue() float64 { return s.min }

// MaxValue returns the exact maximum ingested value (NaN when empty).
func (s *Sketch) MaxValue() float64 { return s.max }

// Mean returns the estimated mean: the unweighted average of the retained
// items (each stands for the same 2^theta values), exact while theta == 0.
// Like every estimate it is a pure function of the canonical state, so it
// survives encode/decode and merge reordering unchanged. Returns NaN when
// empty; an (improbable) sketch whose retained set emptied under compaction
// falls back to the midrange.
func (s *Sketch) Mean() float64 {
	if s.n == 0 {
		return math.NaN()
	}
	if len(s.items) == 0 {
		return (s.min + s.max) / 2
	}
	var sum float64
	for _, it := range s.items {
		sum += it.v
	}
	return sum / float64(len(s.items))
}

// Wire layout: magic, k, theta, count, n, min, max, count*(v, h), all
// big-endian fixed width.
var sketchMagic = [4]byte{'R', 'P', 'Q', '1'}

// sketchHeaderLen is the byte length of the fixed header.
const sketchHeaderLen = 4 + 4 + 1 + 4 + 8 + 8 + 8

// sketchItemLen is the byte length of one encoded item.
const sketchItemLen = 16

// MarshalBinary returns the canonical encoding of the sketch's distribution
// state. The ingest-stream key (seed, counter) is deliberately excluded: it
// is provenance of the writer, not of the summarized distribution, and
// excluding it is what lets differently-streamed sketches merge into one
// canonical state.
func (s *Sketch) MarshalBinary() ([]byte, error) {
	b := make([]byte, 0, sketchHeaderLen+len(s.items)*sketchItemLen)
	b = append(b, sketchMagic[:]...)
	b = binary.BigEndian.AppendUint32(b, uint32(s.k))
	b = append(b, s.theta)
	b = binary.BigEndian.AppendUint32(b, uint32(len(s.items)))
	b = binary.BigEndian.AppendUint64(b, s.n)
	if s.n == 0 {
		b = binary.BigEndian.AppendUint64(b, 0)
		b = binary.BigEndian.AppendUint64(b, 0)
	} else {
		b = binary.BigEndian.AppendUint64(b, math.Float64bits(s.min))
		b = binary.BigEndian.AppendUint64(b, math.Float64bits(s.max))
	}
	for _, it := range s.items {
		b = binary.BigEndian.AppendUint64(b, math.Float64bits(it.v))
		b = binary.BigEndian.AppendUint64(b, it.h)
	}
	return b, nil
}

// DecodeSketch parses and strictly validates a MarshalBinary encoding:
// magic, bounds, exact length, survivor consistency, canonical item order
// and extreme consistency are all enforced, so decode→encode is a byte-level
// fixed point and a decoded sketch is always internally consistent. The
// decoded sketch carries no ingest-stream key; it is meant for reading and
// merging (Add to it derives hashes from the zero stream).
func DecodeSketch(b []byte) (*Sketch, error) {
	if len(b) < sketchHeaderLen {
		return nil, fmt.Errorf("stats: sketch encoding truncated at %d bytes", len(b))
	}
	if [4]byte(b[:4]) != sketchMagic {
		return nil, errors.New("stats: bad sketch magic")
	}
	k := binary.BigEndian.Uint32(b[4:8])
	theta := b[8]
	count := binary.BigEndian.Uint32(b[9:13])
	n := binary.BigEndian.Uint64(b[13:21])
	minBits := binary.BigEndian.Uint64(b[21:29])
	maxBits := binary.BigEndian.Uint64(b[29:37])
	if k < 1 || k > MaxSketchK {
		return nil, fmt.Errorf("stats: sketch k %d out of range", k)
	}
	if theta > 63 {
		return nil, fmt.Errorf("stats: sketch theta %d out of range", theta)
	}
	if uint64(count) > uint64(k) {
		return nil, fmt.Errorf("stats: sketch retains %d items over capacity %d", count, k)
	}
	if uint64(count) > n {
		return nil, fmt.Errorf("stats: sketch retains %d items of %d ingested", count, n)
	}
	if len(b) != sketchHeaderLen+int(count)*sketchItemLen {
		return nil, fmt.Errorf("stats: sketch encoding is %d bytes, want %d", len(b), sketchHeaderLen+int(count)*sketchItemLen)
	}
	s := &Sketch{k: int(k), theta: theta, n: n}
	if n == 0 {
		if theta != 0 || minBits != 0 || maxBits != 0 {
			return nil, errors.New("stats: empty sketch with non-zero state")
		}
		s.min, s.max = math.NaN(), math.NaN()
		return s, nil
	}
	s.min = math.Float64frombits(minBits)
	s.max = math.Float64frombits(maxBits)
	if math.IsNaN(s.min) || math.IsInf(s.min, 0) || math.IsNaN(s.max) || math.IsInf(s.max, 0) {
		return nil, errors.New("stats: sketch extremes are not finite")
	}
	if totalLess(s.max, s.min) {
		return nil, errors.New("stats: sketch max below min")
	}
	if theta == 0 && uint64(count) != n {
		return nil, fmt.Errorf("stats: uncompacted sketch retains %d of %d values", count, n)
	}
	s.items = make([]sketchItem, count)
	for i := range s.items {
		off := sketchHeaderLen + i*sketchItemLen
		v := math.Float64frombits(binary.BigEndian.Uint64(b[off : off+8]))
		h := binary.BigEndian.Uint64(b[off+8 : off+16])
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return nil, fmt.Errorf("stats: sketch item %d is not finite", i)
		}
		if totalLess(v, s.min) || totalLess(s.max, v) {
			return nil, fmt.Errorf("stats: sketch item %d outside [min, max]", i)
		}
		if !survives(h, theta) {
			return nil, fmt.Errorf("stats: sketch item %d does not survive level %d", i, theta)
		}
		it := sketchItem{v: v, h: h}
		if i > 0 && itemLess(it, s.items[i-1]) {
			return nil, fmt.Errorf("stats: sketch items out of canonical order at %d", i)
		}
		s.items[i] = it
	}
	if theta == 0 && count > 0 {
		if math.Float64bits(s.items[0].v) != minBits || math.Float64bits(s.items[count-1].v) != maxBits {
			return nil, errors.New("stats: uncompacted sketch extremes disagree with items")
		}
	}
	return s, nil
}

// MarshalJSON encodes the sketch as a base64 string of its canonical binary
// form, the representation the result wire format embeds.
func (s *Sketch) MarshalJSON() ([]byte, error) {
	b, err := s.MarshalBinary()
	if err != nil {
		return nil, err
	}
	return json.Marshal(base64.StdEncoding.EncodeToString(b))
}

// UnmarshalJSON decodes the MarshalJSON form, with DecodeSketch's strict
// validation.
func (s *Sketch) UnmarshalJSON(b []byte) error {
	var enc string
	if err := json.Unmarshal(b, &enc); err != nil {
		return fmt.Errorf("stats: sketch JSON: %w", err)
	}
	raw, err := base64.StdEncoding.DecodeString(enc)
	if err != nil {
		return fmt.Errorf("stats: sketch JSON base64: %w", err)
	}
	dec, err := DecodeSketch(raw)
	if err != nil {
		return err
	}
	// Field-wise assignment: copying the struct would copy estMu.
	s.k, s.seed, s.count, s.theta = dec.k, dec.seed, dec.count, dec.theta
	s.items, s.n, s.min, s.max = dec.items, dec.n, dec.min, dec.max
	s.invalidate()
	return nil
}
