package stats

import (
	"errors"
	"math"
	"sort"
)

// ErrLengthMismatch is returned when paired samples differ in length.
var ErrLengthMismatch = errors.New("stats: paired samples must have equal length")

// KendallTau returns the Kendall rank correlation τ-b between paired
// observations, handling ties in both variables. τ ∈ [-1, 1]; 1 means the
// orderings agree exactly. Used to score predicted-vs-measured algorithm
// orderings.
func KendallTau(x, y []float64) (float64, error) {
	if len(x) != len(y) {
		return 0, ErrLengthMismatch
	}
	n := len(x)
	if n < 2 {
		return 0, errors.New("stats: need at least two pairs")
	}
	var concordant, discordant float64
	var tiesX, tiesY float64
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			dx := x[i] - x[j]
			dy := y[i] - y[j]
			switch {
			case dx == 0 && dy == 0:
				// tied in both: contributes to neither denominator term
			case dx == 0:
				tiesX++
			case dy == 0:
				tiesY++
			case (dx > 0) == (dy > 0):
				concordant++
			default:
				discordant++
			}
		}
	}
	denomX := concordant + discordant + tiesX
	denomY := concordant + discordant + tiesY
	if denomX == 0 || denomY == 0 {
		// One variable is constant: correlation undefined; report 0.
		return 0, nil
	}
	return (concordant - discordant) / math.Sqrt(denomX*denomY), nil
}

// Spearman returns the Spearman rank correlation ρ between paired
// observations (Pearson correlation of midranks).
func Spearman(x, y []float64) (float64, error) {
	if len(x) != len(y) {
		return 0, ErrLengthMismatch
	}
	if len(x) < 2 {
		return 0, errors.New("stats: need at least two pairs")
	}
	rx := Midranks(x)
	ry := Midranks(y)
	return pearson(rx, ry), nil
}

// Midranks returns the 1-based midranks of xs (ties share the average rank).
func Midranks(xs []float64) []float64 {
	n := len(xs)
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool { return xs[idx[a]] < xs[idx[b]] })
	ranks := make([]float64, n)
	for i := 0; i < n; {
		j := i
		for j < n && xs[idx[j]] == xs[idx[i]] {
			j++
		}
		mid := float64(i+j+1) / 2
		for k := i; k < j; k++ {
			ranks[idx[k]] = mid
		}
		i = j
	}
	return ranks
}

// pearson returns the Pearson correlation of two equal-length slices, or 0
// when either is constant.
func pearson(x, y []float64) float64 {
	mx, my := Mean(x), Mean(y)
	var sxy, sxx, syy float64
	for i := range x {
		dx := x[i] - mx
		dy := y[i] - my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return 0
	}
	return sxy / math.Sqrt(sxx*syy)
}
