package stats_test

// FuzzSketchDecode holds the sketch wire decoder to the same contract as the
// spec/result/WAL decoders: arbitrary bytes never panic, and any encoding the
// decoder accepts is canonical — re-encoding reproduces the input byte for
// byte, so a sketch can cross the result wire format and the fleet store
// without drift.

import (
	"bytes"
	"math"
	"testing"

	"relperf/internal/stats"
	"relperf/internal/xrand"
)

func FuzzSketchDecode(f *testing.F) {
	// Seed the corpus with real encodings spanning the state space: empty,
	// uncompacted (theta == 0), compacted, merged, and near-misses.
	empty, _ := stats.NewSketch(8, 0)
	eb, _ := empty.MarshalBinary()
	f.Add(eb)

	small, _ := stats.NewSketch(16, 1)
	r := xrand.New(1)
	for i := 0; i < 10; i++ {
		small.Add(r.LogNormal(-3, 0.5))
	}
	sb, _ := small.MarshalBinary()
	f.Add(sb)

	big, _ := stats.NewSketch(32, 2)
	for i := 0; i < 5000; i++ {
		big.Add(r.LogNormal(-3, 0.5))
	}
	bb, _ := big.MarshalBinary()
	f.Add(bb)

	merged, _ := stats.NewSketch(32, 3)
	for i := 0; i < 2000; i++ {
		merged.Add(r.Uniform(1, 2))
	}
	if err := merged.Merge(big); err != nil {
		f.Fatal(err)
	}
	mb, _ := merged.MarshalBinary()
	f.Add(mb)

	f.Add(bb[:20])                               // torn header
	f.Add(append([]byte(nil), "RPQ1garbage"...)) // magic then junk
	f.Add([]byte("not a sketch"))

	f.Fuzz(func(t *testing.T, b []byte) {
		sk, err := stats.DecodeSketch(b)
		if err != nil {
			return
		}
		again, err := sk.MarshalBinary()
		if err != nil {
			t.Fatalf("accepted sketch fails to re-encode: %v", err)
		}
		if !bytes.Equal(again, b) {
			t.Fatalf("decode→encode is not a fixed point (%d in, %d out)", len(b), len(again))
		}
		// An accepted sketch must also be safe to read and merge.
		if v := sk.Quantile(0.5); sk.N() > 0 && math.IsNaN(v) {
			t.Fatal("non-empty decoded sketch answers NaN median")
		}
		cpy, err := stats.DecodeSketch(b)
		if err != nil {
			t.Fatal(err)
		}
		if err := cpy.Merge(sk); err != nil {
			t.Fatalf("self-shaped merge of decoded sketch: %v", err)
		}
		if cpy.N() != 2*sk.N() {
			t.Fatalf("merge count %d, want %d", cpy.N(), 2*sk.N())
		}
	})
}
