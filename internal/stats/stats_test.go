package stats

import (
	"math"
	"sort"
	"testing"
	"testing/quick"

	"relperf/internal/xrand"
)

func almostEq(a, b, tol float64) bool {
	if math.IsNaN(a) && math.IsNaN(b) {
		return true
	}
	return math.Abs(a-b) <= tol
}

func TestMean(t *testing.T) {
	if got := Mean([]float64{1, 2, 3, 4}); got != 2.5 {
		t.Fatalf("Mean = %v", got)
	}
	if !math.IsNaN(Mean(nil)) {
		t.Fatal("Mean(nil) should be NaN")
	}
}

func TestVarianceStdDev(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	// mean 5, sum of squared dev 32, unbiased variance 32/7.
	if got := Variance(xs); !almostEq(got, 32.0/7, 1e-12) {
		t.Fatalf("Variance = %v", got)
	}
	if got := StdDev(xs); !almostEq(got, math.Sqrt(32.0/7), 1e-12) {
		t.Fatalf("StdDev = %v", got)
	}
	if !math.IsNaN(Variance([]float64{1})) {
		t.Fatal("Variance of single value should be NaN")
	}
}

func TestMinMax(t *testing.T) {
	xs := []float64{3, -1, 7, 0}
	if Min(xs) != -1 || Max(xs) != 7 {
		t.Fatalf("Min/Max = %v/%v", Min(xs), Max(xs))
	}
	if !math.IsNaN(Min(nil)) || !math.IsNaN(Max(nil)) {
		t.Fatal("Min/Max of empty should be NaN")
	}
}

func TestQuantileKnown(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	cases := []struct{ q, want float64 }{
		{0, 1}, {0.25, 2}, {0.5, 3}, {0.75, 4}, {1, 5}, {0.1, 1.4},
	}
	for _, c := range cases {
		if got := Quantile(xs, c.q); !almostEq(got, c.want, 1e-12) {
			t.Errorf("Quantile(%v) = %v, want %v", c.q, got, c.want)
		}
	}
}

func TestQuantileEdge(t *testing.T) {
	if !math.IsNaN(Quantile(nil, 0.5)) {
		t.Fatal("empty quantile should be NaN")
	}
	if !math.IsNaN(Quantile([]float64{1}, -0.1)) || !math.IsNaN(Quantile([]float64{1}, 1.1)) {
		t.Fatal("out-of-range q should be NaN")
	}
	if got := Quantile([]float64{42}, 0.99); got != 42 {
		t.Fatalf("single-element quantile = %v", got)
	}
}

func TestQuantileDoesNotMutate(t *testing.T) {
	xs := []float64{3, 1, 2}
	Quantile(xs, 0.5)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Fatal("Quantile mutated its input")
	}
}

func TestQuantileMonotoneProperty(t *testing.T) {
	rng := xrand.New(5)
	f := func(seed uint32) bool {
		n := rng.Intn(40) + 2
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = rng.Normal(0, 10)
		}
		prev := math.Inf(-1)
		for q := 0.0; q <= 1.0001; q += 0.05 {
			qq := math.Min(q, 1)
			v := Quantile(xs, qq)
			if v < prev-1e-12 {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestIQR(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	if got := IQR(xs); !almostEq(got, 2, 1e-12) {
		t.Fatalf("IQR = %v", got)
	}
}

func TestSkewness(t *testing.T) {
	sym := []float64{-2, -1, 0, 1, 2}
	if got := Skewness(sym); !almostEq(got, 0, 1e-12) {
		t.Fatalf("skewness of symmetric sample = %v", got)
	}
	right := []float64{1, 1, 1, 1, 10}
	if got := Skewness(right); got <= 0 {
		t.Fatalf("right-skewed sample has skewness %v", got)
	}
	if !math.IsNaN(Skewness([]float64{1, 2})) {
		t.Fatal("skewness of n<3 should be NaN")
	}
	if !math.IsNaN(Skewness([]float64{5, 5, 5})) {
		t.Fatal("skewness of constant sample should be NaN")
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4, 5})
	if s.N != 5 || s.Min != 1 || s.Max != 5 || s.Median != 3 || s.Q1 != 2 || s.Q3 != 4 {
		t.Fatalf("Summary = %+v", s)
	}
	empty := Summarize(nil)
	if empty.N != 0 || !math.IsNaN(empty.Mean) {
		t.Fatalf("empty summary = %+v", empty)
	}
}

func TestECDF(t *testing.T) {
	e, err := NewECDF([]float64{1, 2, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct{ x, want float64 }{
		{0.5, 0}, {1, 0.25}, {2, 0.75}, {2.5, 0.75}, {3, 1}, {99, 1},
	}
	for _, c := range cases {
		if got := e.At(c.x); !almostEq(got, c.want, 1e-12) {
			t.Errorf("ECDF(%v) = %v, want %v", c.x, got, c.want)
		}
	}
	if _, err := NewECDF(nil); err != ErrEmptySample {
		t.Fatal("empty ECDF should error")
	}
}

func TestECDFMonotoneProperty(t *testing.T) {
	rng := xrand.New(9)
	xs := make([]float64, 50)
	for i := range xs {
		xs[i] = rng.Normal(0, 1)
	}
	e, _ := NewECDF(xs)
	f := func(a, b float64) bool {
		if math.IsNaN(a) || math.IsNaN(b) {
			return true
		}
		if a > b {
			a, b = b, a
		}
		return e.At(a) <= e.At(b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestKSIdentical(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	if d := KSStatistic(xs, xs); d != 0 {
		t.Fatalf("KS of identical samples = %v", d)
	}
}

func TestKSDisjoint(t *testing.T) {
	a := []float64{1, 2, 3}
	b := []float64{10, 11, 12}
	if d := KSStatistic(a, b); d != 1 {
		t.Fatalf("KS of disjoint samples = %v, want 1", d)
	}
}

func TestKSSymmetric(t *testing.T) {
	rng := xrand.New(11)
	a := make([]float64, 40)
	b := make([]float64, 60)
	for i := range a {
		a[i] = rng.Normal(0, 1)
	}
	for i := range b {
		b[i] = rng.Normal(0.5, 1)
	}
	if d1, d2 := KSStatistic(a, b), KSStatistic(b, a); !almostEq(d1, d2, 1e-12) {
		t.Fatalf("KS not symmetric: %v vs %v", d1, d2)
	}
}

func TestKSPValue(t *testing.T) {
	// Large separation, decent n: p should be tiny.
	rng := xrand.New(13)
	a := make([]float64, 100)
	b := make([]float64, 100)
	for i := range a {
		a[i] = rng.Normal(0, 1)
		b[i] = rng.Normal(5, 1)
	}
	d := KSStatistic(a, b)
	if p := KSPValue(d, 100, 100); p > 1e-6 {
		t.Fatalf("p-value for separated samples = %v", p)
	}
	// Same distribution: p should usually be large.
	for i := range b {
		b[i] = rng.Normal(0, 1)
	}
	d = KSStatistic(a, b)
	if p := KSPValue(d, 100, 100); p < 0.01 {
		t.Fatalf("p-value for same-dist samples suspiciously small: %v (d=%v)", p, d)
	}
	if p := KSPValue(0, 10, 10); p != 1 {
		t.Fatalf("KSPValue(0) = %v", p)
	}
}

func TestMannWhitneySeparated(t *testing.T) {
	a := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	b := []float64{101, 102, 103, 104, 105, 106, 107, 108, 109, 110}
	u, p := MannWhitneyU(a, b)
	if u != 0 {
		t.Fatalf("U = %v, want 0 (a entirely below b)", u)
	}
	if p > 0.001 {
		t.Fatalf("p = %v, want tiny", p)
	}
}

func TestMannWhitneyIdentical(t *testing.T) {
	a := []float64{1, 2, 3, 4, 5}
	u, p := MannWhitneyU(a, a)
	// All comparisons tie or balance: U should be na*nb/2 = 12.5.
	if !almostEq(u, 12.5, 1e-9) {
		t.Fatalf("U = %v, want 12.5", u)
	}
	if p < 0.9 {
		t.Fatalf("p = %v for identical samples", p)
	}
}

func TestMannWhitneyAllTied(t *testing.T) {
	a := []float64{5, 5, 5}
	b := []float64{5, 5, 5, 5}
	_, p := MannWhitneyU(a, b)
	if p != 1 {
		t.Fatalf("all-tied p = %v, want 1", p)
	}
}

func TestMannWhitneyComplement(t *testing.T) {
	// U1 + U2 = na*nb
	rng := xrand.New(17)
	a := make([]float64, 13)
	b := make([]float64, 19)
	for i := range a {
		a[i] = rng.Normal(0, 2)
	}
	for i := range b {
		b[i] = rng.Normal(0.3, 2)
	}
	u1, _ := MannWhitneyU(a, b)
	u2, _ := MannWhitneyU(b, a)
	if !almostEq(u1+u2, float64(len(a)*len(b)), 1e-9) {
		t.Fatalf("U1+U2 = %v, want %d", u1+u2, len(a)*len(b))
	}
}

func TestHistogram(t *testing.T) {
	h, err := NewHistogram([]float64{0.5, 1.5, 1.6, 2.5, -10, 10}, 0, 3, 3)
	if err != nil {
		t.Fatal(err)
	}
	// bins: [0,1): {0.5, -10 clamped} ; [1,2): {1.5, 1.6} ; [2,3]: {2.5, 10 clamped}
	want := []int{2, 2, 2}
	for i := range want {
		if h.Counts[i] != want[i] {
			t.Fatalf("bin %d = %d, want %d (all: %v)", i, h.Counts[i], want[i], h.Counts)
		}
	}
	if h.Total != 6 {
		t.Fatalf("Total = %d", h.Total)
	}
	if got := h.BinCenter(0); !almostEq(got, 0.5, 1e-12) {
		t.Fatalf("BinCenter(0) = %v", got)
	}
}

func TestHistogramErrors(t *testing.T) {
	if _, err := NewHistogram(nil, 0, 1, 0); err == nil {
		t.Fatal("zero bins should error")
	}
	if _, err := NewHistogram(nil, 1, 1, 4); err == nil {
		t.Fatal("empty range should error")
	}
	if _, err := AutoHistogram(nil, 4); err == nil {
		t.Fatal("empty sample should error")
	}
}

func TestAutoHistogramConstant(t *testing.T) {
	h, err := AutoHistogram([]float64{2, 2, 2}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if h.Total != 3 {
		t.Fatalf("Total = %d", h.Total)
	}
}

func TestHistogramMode(t *testing.T) {
	h, _ := NewHistogram([]float64{0.1, 0.2, 1.5, 2.9}, 0, 3, 3)
	if h.Mode() != 0 {
		t.Fatalf("Mode = %d", h.Mode())
	}
}

func TestOverlapCoefficient(t *testing.T) {
	a := []float64{1, 2, 3, 4, 5}
	if o := OverlapCoefficient(a, a, 10); !almostEq(o, 1, 1e-12) {
		t.Fatalf("self overlap = %v", o)
	}
	b := []float64{100, 101, 102}
	if o := OverlapCoefficient(a, b, 50); o > 0.01 {
		t.Fatalf("disjoint overlap = %v", o)
	}
	if o := OverlapCoefficient(nil, a, 10); o != 0 {
		t.Fatalf("empty overlap = %v", o)
	}
	if o := OverlapCoefficient([]float64{3}, []float64{3}, 10); o != 1 {
		t.Fatalf("degenerate equal-point overlap = %v", o)
	}
}

func TestBootstrapMeanCentering(t *testing.T) {
	rng := xrand.New(21)
	xs := make([]float64, 200)
	for i := range xs {
		xs[i] = rng.Normal(10, 2)
	}
	draws := Bootstrap(rng, xs, MeanStat, 500)
	if len(draws) != 500 {
		t.Fatalf("draw count = %d", len(draws))
	}
	m := Mean(draws)
	if math.Abs(m-Mean(xs)) > 0.2 {
		t.Fatalf("bootstrap mean %v far from sample mean %v", m, Mean(xs))
	}
}

func TestBootstrapQuantileStat(t *testing.T) {
	rng := xrand.New(23)
	xs := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	draws := Bootstrap(rng, xs, QuantileStat(0.5), 300)
	for _, d := range draws {
		if d < 1 || d > 10 {
			t.Fatalf("bootstrap median %v outside sample range", d)
		}
	}
}

func TestBootstrapCI(t *testing.T) {
	rng := xrand.New(29)
	xs := make([]float64, 300)
	for i := range xs {
		xs[i] = rng.Normal(50, 5)
	}
	lo, hi := BootstrapCI(rng, xs, MeanStat, 1000, 0.95)
	if !(lo < 50 && 50 < hi) {
		t.Fatalf("95%% CI [%v, %v] does not contain true mean 50", lo, hi)
	}
	if hi-lo > 3 {
		t.Fatalf("CI suspiciously wide: [%v, %v]", lo, hi)
	}
}

func TestBootstrapDeterministic(t *testing.T) {
	xs := []float64{3, 1, 4, 1, 5, 9, 2, 6}
	a := Bootstrap(xrand.New(7), xs, MeanStat, 50)
	b := Bootstrap(xrand.New(7), xs, MeanStat, 50)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("bootstrap not deterministic under fixed seed")
		}
	}
}

func TestSortSmallProperty(t *testing.T) {
	f := func(xs []float64) bool {
		for i, x := range xs {
			if math.IsNaN(x) {
				xs[i] = 0
			}
		}
		cp := append([]float64(nil), xs...)
		SortSmall(cp)
		want := append([]float64(nil), xs...)
		sort.Float64s(want)
		for i := range cp {
			if cp[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestMinStatMaxOfSorted(t *testing.T) {
	if MinStat([]float64{1, 2, 3}) != 1 {
		t.Fatal("MinStat wrong")
	}
	if MinStat(nil) != 0 {
		t.Fatal("MinStat(nil) should be 0")
	}
}

func BenchmarkBootstrapQuantile(b *testing.B) {
	rng := xrand.New(1)
	xs := make([]float64, 100)
	for i := range xs {
		xs[i] = rng.Normal(0, 1)
	}
	stat := QuantileStat(0.5)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Bootstrap(rng, xs, stat, 100)
	}
}

func BenchmarkKSStatistic(b *testing.B) {
	rng := xrand.New(1)
	xs := make([]float64, 500)
	ys := make([]float64, 500)
	for i := range xs {
		xs[i] = rng.Normal(0, 1)
		ys[i] = rng.Normal(0.2, 1)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		KSStatistic(xs, ys)
	}
}

func TestKendallTauPerfect(t *testing.T) {
	x := []float64{1, 2, 3, 4, 5}
	y := []float64{10, 20, 30, 40, 50}
	tau, err := KendallTau(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(tau, 1, 1e-12) {
		t.Fatalf("tau = %v, want 1", tau)
	}
	rev := []float64{50, 40, 30, 20, 10}
	tau, _ = KendallTau(x, rev)
	if !almostEq(tau, -1, 1e-12) {
		t.Fatalf("reversed tau = %v, want -1", tau)
	}
}

func TestKendallTauTies(t *testing.T) {
	x := []float64{1, 1, 2, 3}
	y := []float64{5, 6, 7, 8}
	tau, err := KendallTau(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if tau <= 0.7 || tau > 1 {
		t.Fatalf("tau with ties = %v", tau)
	}
	// Constant x: undefined, reported as 0.
	tau, _ = KendallTau([]float64{2, 2, 2}, []float64{1, 2, 3})
	if tau != 0 {
		t.Fatalf("constant-x tau = %v", tau)
	}
}

func TestKendallTauErrors(t *testing.T) {
	if _, err := KendallTau([]float64{1}, []float64{1, 2}); err != ErrLengthMismatch {
		t.Fatal("length mismatch accepted")
	}
	if _, err := KendallTau([]float64{1}, []float64{1}); err == nil {
		t.Fatal("single pair accepted")
	}
}

func TestSpearman(t *testing.T) {
	x := []float64{1, 2, 3, 4}
	y := []float64{2, 4, 9, 100} // monotone but nonlinear
	rho, err := Spearman(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(rho, 1, 1e-12) {
		t.Fatalf("monotone Spearman = %v, want 1", rho)
	}
	yRev := []float64{4, 3, 2, 1}
	rho, _ = Spearman(x, yRev)
	if !almostEq(rho, -1, 1e-12) {
		t.Fatalf("reversed Spearman = %v", rho)
	}
	if _, err := Spearman([]float64{1}, []float64{1, 2}); err != ErrLengthMismatch {
		t.Fatal("length mismatch accepted")
	}
	if _, err := Spearman([]float64{1}, []float64{2}); err == nil {
		t.Fatal("single pair accepted")
	}
}

func TestMidranks(t *testing.T) {
	r := Midranks([]float64{10, 20, 20, 30})
	want := []float64{1, 2.5, 2.5, 4}
	for i := range want {
		if r[i] != want[i] {
			t.Fatalf("midranks = %v, want %v", r, want)
		}
	}
}

func TestSpearmanConstant(t *testing.T) {
	rho, err := Spearman([]float64{1, 1, 1}, []float64{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if rho != 0 {
		t.Fatalf("constant Spearman = %v", rho)
	}
}

func TestBootstrapIntoMatchesBootstrap(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5, 6, 7, 8}
	a := Bootstrap(xrand.New(9), xs, MeanStat, 40)
	out := make([]float64, 40)
	scratch := make([]float64, len(xs))
	b := BootstrapInto(out, xrand.New(9), xs, MeanStat, scratch)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("draw %d differs: %v vs %v", i, a[i], b[i])
		}
	}
	if &b[0] != &out[0] {
		t.Fatal("BootstrapInto did not write into out")
	}
	allocs := testing.AllocsPerRun(20, func() {
		BootstrapInto(out, xrand.New(9), xs, MeanStat, scratch)
	})
	if allocs != 0 {
		t.Fatalf("BootstrapInto allocates %v per run, want 0", allocs)
	}
}
