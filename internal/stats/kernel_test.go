package stats

import (
	"math"
	"sort"
	"testing"

	"relperf/internal/xrand"
)

// lognormalSample builds a deterministic right-skewed sample, the shape of
// measured execution times.
func lognormalSample(rng *xrand.Rand, n int) []float64 {
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = rng.LogNormal(0, 0.2)
	}
	return xs
}

func TestSortedSampleValuesAndRanks(t *testing.T) {
	xs := []float64{3, 1, 2, 2, 5}
	s := NewSortedSample(xs)
	want := append([]float64(nil), xs...)
	sort.Float64s(want)
	for i, v := range s.Values() {
		if v != want[i] {
			t.Fatalf("Values()[%d] = %v, want %v", i, v, want[i])
		}
	}
	// rank must be a permutation mapping each original value onto itself.
	seen := make([]bool, len(xs))
	for i, r := range s.rank {
		if seen[r] {
			t.Fatalf("rank %d assigned twice", r)
		}
		seen[r] = true
		if s.values[r] != xs[i] {
			t.Fatalf("values[rank[%d]] = %v, want %v", i, s.values[r], xs[i])
		}
	}
	if s.N() != len(xs) {
		t.Fatalf("N() = %d", s.N())
	}
	if got := s.Quantile(0.5); got != Median(xs) {
		t.Fatalf("base Quantile(0.5) = %v, want %v", got, Median(xs))
	}
}

// TestBootKernelMatchesValueSpaceResample is the determinism contract of the
// index-space kernel: for equal generator states, every quantile of the
// index-space resample is bit-identical to QuantileSorted over the
// value-space resample (Resample + sort), at every tested N.
func TestBootKernelMatchesValueSpaceResample(t *testing.T) {
	qs := []float64{0, 0.01, 0.25, 0.5, 0.75, 0.99, 1}
	for _, n := range []int{1, 2, 3, 10, 50, 500, 5000} {
		xs := lognormalSample(xrand.New(uint64(n)), n)
		k := NewBootKernel(NewSortedSample(xs))
		rngIdx := xrand.New(42)
		rngVal := xrand.New(42)
		buf := make([]float64, n)
		rounds := 50
		if n >= 5000 {
			rounds = 5
		}
		for round := 0; round < rounds; round++ {
			k.Resample(rngIdx)
			rngVal.Resample(buf, xs)
			SortSmall(buf)
			for _, q := range qs {
				got := k.Quantile(q)
				want := QuantileSorted(buf, q)
				if got != want {
					t.Fatalf("N=%d round=%d q=%v: kernel %v != reference %v", n, round, q, got, want)
				}
			}
		}
	}
}

func TestBootKernelTiedValues(t *testing.T) {
	// Heavy ties exercise the rank assignment and the prefix walk across
	// multi-count ranks.
	xs := []float64{2, 2, 1, 1, 1, 3, 2, 1}
	k := NewBootKernel(NewSortedSample(xs))
	rngIdx := xrand.New(9)
	rngVal := xrand.New(9)
	buf := make([]float64, len(xs))
	for round := 0; round < 200; round++ {
		k.Resample(rngIdx)
		rngVal.Resample(buf, xs)
		SortSmall(buf)
		for _, q := range []float64{0, 0.25, 0.5, 0.75, 1} {
			if got, want := k.Quantile(q), QuantileSorted(buf, q); got != want {
				t.Fatalf("round=%d q=%v: %v != %v", round, q, got, want)
			}
		}
	}
}

// TestSortedSampleNaNOrdering: NaNs must order exactly as sort.Float64s
// orders them (first), so sorted views never silently diverge from the
// copy-and-sort value paths even on unvalidated input.
func TestSortedSampleNaNOrdering(t *testing.T) {
	xs := []float64{2, math.NaN(), 1, math.NaN(), 3}
	want := append([]float64(nil), xs...)
	sort.Float64s(want)
	got := NewSortedSample(xs).Values()
	for i := range want {
		if want[i] != got[i] && !(math.IsNaN(want[i]) && math.IsNaN(got[i])) {
			t.Fatalf("Values()[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestBootKernelQuantileEdgeCases(t *testing.T) {
	k := NewBootKernel(NewSortedSample([]float64{1, 2, 3}))
	k.Resample(xrand.New(1))
	if !math.IsNaN(k.Quantile(-0.1)) || !math.IsNaN(k.Quantile(1.1)) {
		t.Fatal("out-of-range q must yield NaN")
	}
	empty := NewBootKernel(NewSortedSample(nil))
	if !math.IsNaN(empty.Quantile(0.5)) {
		t.Fatal("empty kernel must yield NaN")
	}
	one := NewBootKernel(NewSortedSample([]float64{7}))
	one.Resample(xrand.New(2))
	if one.Quantile(0.5) != 7 || one.Quantile(1) != 7 {
		t.Fatal("single-element kernel must return the element")
	}
}

// TestBootKernelResampleDrawSequence: the kernel must consume exactly the
// Intn sequence of xrand.Rand.Resample, so a generator shared between
// interleaved index- and value-space stages stays in lockstep.
func TestBootKernelResampleDrawSequence(t *testing.T) {
	xs := lognormalSample(xrand.New(3), 40)
	k := NewBootKernel(NewSortedSample(xs))
	a := xrand.New(11)
	b := xrand.New(11)
	buf := make([]float64, len(xs))
	for round := 0; round < 10; round++ {
		k.Resample(a)
		b.Resample(buf, xs)
		if a.Uint64() != b.Uint64() {
			t.Fatalf("round %d: generators diverged", round)
		}
		// Consume the probe draw on both sides identically.
	}
}

func BenchmarkBootKernelResampleQuantiles(b *testing.B) {
	xs := lognormalSample(xrand.New(1), 500)
	k := NewBootKernel(NewSortedSample(xs))
	rng := xrand.New(2)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k.Resample(rng)
		for _, q := range []float64{0.25, 0.5, 0.75} {
			_ = k.Quantile(q)
		}
	}
}
