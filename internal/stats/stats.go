// Package stats provides the statistical substrate for relative-performance
// analysis: descriptive summaries, quantiles, histograms, empirical CDFs,
// two-sample tests and a bootstrap engine.
//
// All functions treat their float64-slice inputs as samples of performance
// measurements. Unless documented otherwise they do not mutate inputs.
package stats

import (
	"errors"
	"math"
	"sort"
)

// ErrEmptySample is returned by operations that require at least one value.
var ErrEmptySample = errors.New("stats: empty sample")

// Mean returns the arithmetic mean of xs, or NaN for an empty sample.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Variance returns the unbiased (n-1) sample variance, or NaN when
// len(xs) < 2.
func Variance(xs []float64) float64 {
	n := len(xs)
	if n < 2 {
		return math.NaN()
	}
	m := Mean(xs)
	var ss float64
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return ss / float64(n-1)
}

// StdDev returns the sample standard deviation.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// Min returns the smallest value, or NaN for an empty sample.
func Min(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the largest value, or NaN for an empty sample.
func Max(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// Median returns the 0.5 quantile.
func Median(xs []float64) float64 { return Quantile(xs, 0.5) }

// Quantile returns the q-th quantile (q in [0,1]) of xs using linear
// interpolation between order statistics (type-7, the R/NumPy default).
// It copies and sorts internally; use QuantileSorted on pre-sorted data in
// hot paths. Returns NaN for an empty sample or q outside [0,1].
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 || q < 0 || q > 1 {
		return math.NaN()
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	return QuantileSorted(s, q)
}

// QuantileSorted is Quantile on data already sorted ascending.
func QuantileSorted(sorted []float64, q float64) float64 {
	n := len(sorted)
	if n == 0 || q < 0 || q > 1 {
		return math.NaN()
	}
	if n == 1 {
		return sorted[0]
	}
	h := q * float64(n-1)
	lo := int(math.Floor(h))
	hi := lo + 1
	if hi >= n {
		return sorted[n-1]
	}
	frac := h - float64(lo)
	return sorted[lo] + frac*(sorted[hi]-sorted[lo])
}

// Quantiles evaluates several quantiles with a single sort.
func Quantiles(xs []float64, qs []float64) []float64 {
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	out := make([]float64, len(qs))
	for i, q := range qs {
		out[i] = QuantileSorted(s, q)
	}
	return out
}

// IQR returns the interquartile range Q3 - Q1.
func IQR(xs []float64) float64 {
	qs := Quantiles(xs, []float64{0.25, 0.75})
	return qs[1] - qs[0]
}

// Skewness returns the adjusted Fisher–Pearson sample skewness, or NaN when
// len(xs) < 3 or the sample is constant.
func Skewness(xs []float64) float64 {
	n := float64(len(xs))
	if n < 3 {
		return math.NaN()
	}
	m := Mean(xs)
	var m2, m3 float64
	for _, x := range xs {
		d := x - m
		m2 += d * d
		m3 += d * d * d
	}
	m2 /= n
	m3 /= n
	if m2 == 0 {
		return math.NaN()
	}
	g1 := m3 / math.Pow(m2, 1.5)
	return math.Sqrt(n*(n-1)) / (n - 2) * g1
}

// Summary holds the descriptive statistics of a sample.
type Summary struct {
	N                   int
	Mean, StdDev        float64
	Min, Q1, Median, Q3 float64
	Max                 float64
}

// Summarize computes a Summary of xs. An empty sample yields a zero Summary
// with NaN statistics and N == 0.
func Summarize(xs []float64) Summary {
	s := Summary{N: len(xs)}
	if len(xs) == 0 {
		nan := math.NaN()
		s.Mean, s.StdDev = nan, nan
		s.Min, s.Q1, s.Median, s.Q3, s.Max = nan, nan, nan, nan, nan
		return s
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	s.Mean = Mean(xs)
	s.StdDev = StdDev(xs)
	s.Min = sorted[0]
	s.Max = sorted[len(sorted)-1]
	s.Q1 = QuantileSorted(sorted, 0.25)
	s.Median = QuantileSorted(sorted, 0.5)
	s.Q3 = QuantileSorted(sorted, 0.75)
	return s
}

// ECDF is an empirical cumulative distribution function built from a sample.
type ECDF struct {
	sorted []float64
}

// NewECDF builds an ECDF; it copies xs.
func NewECDF(xs []float64) (*ECDF, error) {
	if len(xs) == 0 {
		return nil, ErrEmptySample
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	return &ECDF{sorted: s}, nil
}

// At returns F(x) = P[X <= x], a step function in [0, 1].
func (e *ECDF) At(x float64) float64 {
	// count of values <= x
	i := sort.SearchFloat64s(e.sorted, math.Nextafter(x, math.Inf(1)))
	return float64(i) / float64(len(e.sorted))
}

// N returns the sample size.
func (e *ECDF) N() int { return len(e.sorted) }

// Values returns the sorted sample underlying the ECDF. The caller must not
// modify the returned slice.
func (e *ECDF) Values() []float64 { return e.sorted }

// KSStatistic returns the two-sample Kolmogorov–Smirnov statistic
// D = sup_x |F1(x) - F2(x)| computed exactly over the pooled sample.
func KSStatistic(a, b []float64) float64 {
	sa := append([]float64(nil), a...)
	sb := append([]float64(nil), b...)
	sort.Float64s(sa)
	sort.Float64s(sb)
	return KSStatisticSorted(sa, sb)
}

// KSStatisticSorted is KSStatistic on samples already sorted ascending; the
// allocation- and sort-free form for engines that sort each base sample
// once (SortedSample) and compare it many times.
func KSStatisticSorted(sa, sb []float64) float64 {
	na, nb := float64(len(sa)), float64(len(sb))
	var i, j int
	var d float64
	for i < len(sa) && j < len(sb) {
		v := math.Min(sa[i], sb[j])
		for i < len(sa) && sa[i] <= v {
			i++
		}
		for j < len(sb) && sb[j] <= v {
			j++
		}
		diff := math.Abs(float64(i)/na - float64(j)/nb)
		if diff > d {
			d = diff
		}
	}
	return d
}

// KSPValue returns the asymptotic p-value of the two-sample KS test with
// statistic d and sample sizes n and m, using the Kolmogorov distribution
// tail series. Adequate for n, m >= ~8.
func KSPValue(d float64, n, m int) float64 {
	if d <= 0 {
		return 1
	}
	ne := float64(n) * float64(m) / float64(n+m)
	lambda := (math.Sqrt(ne) + 0.12 + 0.11/math.Sqrt(ne)) * d
	// Q_KS(lambda) = 2 * sum_{k>=1} (-1)^{k-1} exp(-2 k^2 lambda^2)
	var sum float64
	sign := 1.0
	for k := 1; k <= 100; k++ {
		term := sign * math.Exp(-2*float64(k*k)*lambda*lambda)
		sum += term
		if math.Abs(term) < 1e-12 {
			break
		}
		sign = -sign
	}
	p := 2 * sum
	if p < 0 {
		p = 0
	}
	if p > 1 {
		p = 1
	}
	return p
}

// MannWhitneyU computes the Mann–Whitney U statistic for sample a against b
// (number of pairs (x in a, y in b) with x < y, counting ties as 1/2) and the
// two-sided normal-approximation p-value with tie correction.
func MannWhitneyU(a, b []float64) (u, p float64) {
	type tagged struct {
		v    float64
		from int // 0 = a, 1 = b
	}
	pool := make([]tagged, 0, len(a)+len(b))
	for _, v := range a {
		pool = append(pool, tagged{v, 0})
	}
	for _, v := range b {
		pool = append(pool, tagged{v, 1})
	}
	sort.Slice(pool, func(i, j int) bool { return pool[i].v < pool[j].v })

	// Assign midranks, tracking tie groups for the variance correction.
	ranks := make([]float64, len(pool))
	var tieCorrection float64
	for i := 0; i < len(pool); {
		j := i
		for j < len(pool) && pool[j].v == pool[i].v {
			j++
		}
		mid := float64(i+j+1) / 2 // average of 1-based ranks i+1..j
		for k := i; k < j; k++ {
			ranks[k] = mid
		}
		t := float64(j - i)
		tieCorrection += t*t*t - t
		i = j
	}

	var ra float64 // rank sum of sample a
	for i, tg := range pool {
		if tg.from == 0 {
			ra += ranks[i]
		}
	}
	na, nb := float64(len(a)), float64(len(b))
	u1 := ra - na*(na+1)/2 // U for a (pairs where a > b, ties 1/2)
	u = u1

	// Normal approximation.
	mu := na * nb / 2
	n := na + nb
	sigma2 := na * nb / 12 * ((n + 1) - tieCorrection/(n*(n-1)))
	if sigma2 <= 0 {
		// All values tied: no evidence of difference.
		return u, 1
	}
	z := (u - mu) / math.Sqrt(sigma2)
	p = 2 * normalTail(math.Abs(z))
	if p > 1 {
		p = 1
	}
	return u, p
}

// normalTail returns P[Z > z] for standard normal Z.
func normalTail(z float64) float64 {
	return 0.5 * math.Erfc(z/math.Sqrt2)
}

// Histogram is a fixed-width binning of a sample, used for rendering the
// paper's Figure-1-style distribution plots in ASCII.
type Histogram struct {
	Lo, Hi float64 // range covered; values outside are clamped into end bins
	Counts []int
	Total  int
}

// NewHistogram bins xs into nbins equal-width bins spanning [lo, hi].
func NewHistogram(xs []float64, lo, hi float64, nbins int) (*Histogram, error) {
	if nbins <= 0 {
		return nil, errors.New("stats: histogram needs at least one bin")
	}
	if !(hi > lo) {
		return nil, errors.New("stats: histogram range must have hi > lo")
	}
	h := &Histogram{Lo: lo, Hi: hi, Counts: make([]int, nbins)}
	for _, x := range xs {
		h.Add(x)
	}
	return h, nil
}

// AutoHistogram bins xs into nbins bins spanning the sample's own range.
func AutoHistogram(xs []float64, nbins int) (*Histogram, error) {
	if len(xs) == 0 {
		return nil, ErrEmptySample
	}
	lo, hi := Min(xs), Max(xs)
	if lo == hi {
		hi = lo + 1 // degenerate constant sample: single populated bin
	}
	return NewHistogram(xs, lo, hi, nbins)
}

// Add bins one value, clamping out-of-range values into the end bins.
func (h *Histogram) Add(x float64) {
	n := len(h.Counts)
	i := int(float64(n) * (x - h.Lo) / (h.Hi - h.Lo))
	if i < 0 {
		i = 0
	}
	if i >= n {
		i = n - 1
	}
	h.Counts[i]++
	h.Total++
}

// BinCenter returns the midpoint of bin i.
func (h *Histogram) BinCenter(i int) float64 {
	w := (h.Hi - h.Lo) / float64(len(h.Counts))
	return h.Lo + (float64(i)+0.5)*w
}

// Mode returns the index of the most populated bin (first on ties).
func (h *Histogram) Mode() int {
	best := 0
	for i, c := range h.Counts {
		if c > h.Counts[best] {
			best = i
		}
	}
	return best
}

// OverlapCoefficient estimates the overlap of the distributions of a and b as
// the sum over shared bins of min(pa, pb) where pa, pb are bin probabilities.
// 1 means identical histograms, 0 means disjoint support. nbins controls the
// resolution of the estimate.
func OverlapCoefficient(a, b []float64, nbins int) float64 {
	if len(a) == 0 || len(b) == 0 {
		return 0
	}
	lo := math.Min(Min(a), Min(b))
	hi := math.Max(Max(a), Max(b))
	if lo == hi {
		return 1
	}
	ha, _ := NewHistogram(a, lo, hi, nbins)
	hb, _ := NewHistogram(b, lo, hi, nbins)
	var overlap float64
	for i := range ha.Counts {
		pa := float64(ha.Counts[i]) / float64(ha.Total)
		pb := float64(hb.Counts[i]) / float64(hb.Total)
		overlap += math.Min(pa, pb)
	}
	return overlap
}
