package stats_test

// Property suite of the streaming quantile sketch. The quantile-semantics
// tests follow the monotone-sweep pattern of the percentile tests in the
// related xoba/goutil stats package (SNIPPETS snippet 2): sweep q across
// [0, 1] in small steps and assert the estimate never decreases, with the
// endpoints pinned to the exact extremes. The merge tests pin the
// determinism contract — equal seeds, any merge order or tree shape, byte
// identical encodings — and the rank-error tests hold Quantile against
// SortedSample ground truth at N up to 10^6 within SketchEpsilon(k).

import (
	"bytes"
	"math"
	"sort"
	"testing"

	"relperf/internal/stats"
	"relperf/internal/xrand"
)

// sketchDist names a value generator the suite runs each property over.
type sketchDist struct {
	name string
	gen  func(r *xrand.Rand) float64
}

func sketchDists() []sketchDist {
	return []sketchDist{
		{"lognormal", func(r *xrand.Rand) float64 { return r.LogNormal(-3, 0.5) }},
		{"uniform", func(r *xrand.Rand) float64 { return r.Uniform(1, 2) }},
		{"bimodal", func(r *xrand.Rand) float64 {
			if r.Bernoulli(0.3) {
				return r.Normal(10, 0.1)
			}
			return r.Normal(1, 0.1)
		}},
	}
}

// fillSketch builds a sketch of capacity k over n draws from gen, returning
// the sketch and the raw values.
func fillSketch(t *testing.T, k, n int, seed uint64, gen func(*xrand.Rand) float64) (*stats.Sketch, []float64) {
	t.Helper()
	sk, err := stats.NewSketch(k, seed)
	if err != nil {
		t.Fatal(err)
	}
	r := xrand.New(seed)
	vals := make([]float64, n)
	for i := range vals {
		vals[i] = gen(r)
		sk.Add(vals[i])
	}
	return sk, vals
}

func TestSketchQuantileMonotone(t *testing.T) {
	for _, d := range sketchDists() {
		for _, n := range []int{1, 7, 100, 1000, 20000} {
			sk, _ := fillSketch(t, 256, n, 0xabc, d.gen)
			last := math.Inf(-1)
			for i := 0; i <= 1000; i++ {
				q := float64(i) / 1000
				v := sk.Quantile(q)
				if math.IsNaN(v) {
					t.Fatalf("%s n=%d: Quantile(%v) is NaN", d.name, n, q)
				}
				if v < last {
					t.Fatalf("%s n=%d: Quantile(%v)=%v below Quantile at previous step %v", d.name, n, q, v, last)
				}
				last = v
			}
		}
	}
}

func TestSketchQuantileEndpoints(t *testing.T) {
	for _, d := range sketchDists() {
		for _, n := range []int{1, 50, 5000, 100000} {
			sk, vals := fillSketch(t, 128, n, 42, d.gen)
			if got, want := sk.Quantile(0), stats.Min(vals); got != want {
				t.Errorf("%s n=%d: Quantile(0)=%v, exact min %v", d.name, n, got, want)
			}
			if got, want := sk.Quantile(1), stats.Max(vals); got != want {
				t.Errorf("%s n=%d: Quantile(1)=%v, exact max %v", d.name, n, got, want)
			}
			if got, want := sk.MinValue(), stats.Min(vals); got != want {
				t.Errorf("%s n=%d: MinValue=%v, exact min %v", d.name, n, got, want)
			}
			if got, want := sk.MaxValue(), stats.Max(vals); got != want {
				t.Errorf("%s n=%d: MaxValue=%v, exact max %v", d.name, n, got, want)
			}
		}
	}
}

// TestSketchExactWhileSmall: while nothing has been compacted away the
// sketch IS the exact sample, and every quantile matches the type-7
// semantics of QuantileSorted bit for bit.
func TestSketchExactWhileSmall(t *testing.T) {
	for _, d := range sketchDists() {
		const n = 200
		sk, vals := fillSketch(t, 256, n, 7, d.gen)
		if sk.Theta() != 0 {
			t.Fatalf("%s: theta=%d for n=%d <= k", d.name, sk.Theta(), n)
		}
		sorted := append([]float64(nil), vals...)
		sort.Float64s(sorted)
		for i := 0; i <= 100; i++ {
			q := float64(i) / 100
			if got, want := sk.Quantile(q), stats.QuantileSorted(sorted, q); got != want {
				t.Fatalf("%s: Quantile(%v)=%v, exact %v", d.name, q, got, want)
			}
		}
		if got, want := sk.Mean(), stats.Mean(vals); math.Abs(got-want) > 1e-12 {
			t.Errorf("%s: Mean=%v, exact %v", d.name, got, want)
		}
	}
}

// TestSketchMergeOrderInsensitive: equal seeds, shuffled merge order and
// arbitrary merge tree shape all yield byte-identical encodings.
func TestSketchMergeOrderInsensitive(t *testing.T) {
	const k, parts, perPart = 128, 8, 3000
	gen := sketchDists()[0].gen
	sketches := make([]*stats.Sketch, parts)
	for i := range sketches {
		sk, _ := fillSketch(t, k, perPart, xrand.Mix(0xfeed, uint64(i)), gen)
		sketches[i] = sk
	}
	mergeInOrder := func(order []int) []byte {
		acc, err := stats.NewSketch(k, 0)
		if err != nil {
			t.Fatal(err)
		}
		for _, i := range order {
			if err := acc.Merge(sketches[i]); err != nil {
				t.Fatal(err)
			}
		}
		b, err := acc.MarshalBinary()
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	base := mergeInOrder([]int{0, 1, 2, 3, 4, 5, 6, 7})
	shuffler := xrand.New(99)
	for trial := 0; trial < 20; trial++ {
		order := shuffler.Perm(parts)
		if got := mergeInOrder(order); !bytes.Equal(got, base) {
			t.Fatalf("merge order %v produced different bytes", order)
		}
	}
	// Balanced-tree merge: ((0+1)+(2+3)) + ((4+5)+(6+7)), built over clones
	// so the linear accumulators above stay untouched.
	clone := func(i int) *stats.Sketch {
		b, err := sketches[i].MarshalBinary()
		if err != nil {
			t.Fatal(err)
		}
		sk, err := stats.DecodeSketch(b)
		if err != nil {
			t.Fatal(err)
		}
		return sk
	}
	level := make([]*stats.Sketch, parts)
	for i := range level {
		level[i] = clone(i)
	}
	for len(level) > 1 {
		var next []*stats.Sketch
		for i := 0; i < len(level); i += 2 {
			if err := level[i].Merge(level[i+1]); err != nil {
				t.Fatal(err)
			}
			next = append(next, level[i])
		}
		level = next
	}
	tree, err := level[0].MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(tree, base) {
		t.Fatal("tree-shaped merge produced different bytes than linear merge")
	}
	// Merge must not mutate its argument.
	if got := mergeInOrder([]int{7, 6, 5, 4, 3, 2, 1, 0}); !bytes.Equal(got, base) {
		t.Fatal("re-merge after tree pass produced different bytes (argument sketch was mutated)")
	}
}

// TestSketchDeterministicRebuild: rebuilding a sketch from scratch with the
// same seed and value sequence reproduces the encoding bit for bit.
func TestSketchDeterministicRebuild(t *testing.T) {
	gen := sketchDists()[2].gen
	a, _ := fillSketch(t, 64, 50000, 5, gen)
	b, _ := fillSketch(t, 64, 50000, 5, gen)
	ab, err := a.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	bb, err := b.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ab, bb) {
		t.Fatal("equal seeds and inputs produced different encodings")
	}
}

// trueRankError returns how far x's rank in the sorted ground truth lies
// from q: the distance from q to the rank interval x occupies under the
// type-7 mapping h = q*(n-1).
func trueRankError(sorted []float64, x, q float64) float64 {
	n := len(sorted)
	j := sort.SearchFloat64s(sorted, x) // first index >= x
	qlo, qhi := 0.0, 1.0
	if j > 0 {
		qlo = float64(j-1) / float64(n-1)
	}
	if j < n {
		qhi = float64(j) / float64(n-1)
	}
	switch {
	case q < qlo:
		return qlo - q
	case q > qhi:
		return q - qhi
	default:
		return 0
	}
}

// TestSketchRankError holds every quantile estimate against SortedSample
// ground truth within the documented SketchEpsilon(k), at N spanning 10^3 to
// 10^6 — the acceptance bound of the sketch path's error contract.
func TestSketchRankError(t *testing.T) {
	ns := []int{1000, 100000, 1000000}
	if testing.Short() {
		ns = []int{1000, 100000}
	}
	for _, d := range sketchDists() {
		for _, n := range ns {
			for _, k := range []int{256, 1024} {
				eps := stats.SketchEpsilon(k)
				sk, vals := fillSketch(t, k, n, xrand.Mix(11, uint64(n)), d.gen)
				base := stats.NewSortedSample(vals)
				worst := 0.0
				for i := 0; i <= 200; i++ {
					q := float64(i) / 200
					est := sk.Quantile(q)
					if err := trueRankError(base.Values(), est, q); err > worst {
						worst = err
					}
				}
				if worst > eps {
					t.Errorf("%s n=%d k=%d: worst rank error %.4f exceeds epsilon %.4f",
						d.name, n, k, worst, eps)
				} else {
					t.Logf("%s n=%d k=%d: worst rank error %.4f (epsilon %.4f, theta=%d, retained=%d)",
						d.name, n, k, worst, eps, sk.Theta(), sk.Retained())
				}
			}
		}
	}
}

func TestSketchEncodeDecodeRoundTrip(t *testing.T) {
	for _, d := range sketchDists() {
		for _, n := range []int{0, 1, 10, 1000, 50000} {
			sk, _ := fillSketch(t, 64, n, 13, d.gen)
			b, err := sk.MarshalBinary()
			if err != nil {
				t.Fatal(err)
			}
			dec, err := stats.DecodeSketch(b)
			if err != nil {
				t.Fatalf("%s n=%d: decode: %v", d.name, n, err)
			}
			again, err := dec.MarshalBinary()
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(b, again) {
				t.Fatalf("%s n=%d: decode→encode is not a fixed point", d.name, n)
			}
			if dec.N() != sk.N() || dec.K() != sk.K() || dec.Theta() != sk.Theta() {
				t.Fatalf("%s n=%d: decoded shape differs", d.name, n)
			}
			for _, q := range []float64{0, 0.25, 0.5, 0.75, 1} {
				got, want := dec.Quantile(q), sk.Quantile(q)
				if got != want && !(math.IsNaN(got) && math.IsNaN(want)) {
					t.Fatalf("%s n=%d: decoded Quantile(%v)=%v, want %v", d.name, n, q, got, want)
				}
			}
		}
	}
}

func TestSketchDecodeRejects(t *testing.T) {
	sk, _ := fillSketch(t, 32, 5000, 3, sketchDists()[0].gen)
	good, err := sk.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	corrupt := func(mut func(b []byte) []byte) []byte {
		b := append([]byte(nil), good...)
		return mut(b)
	}
	cases := []struct {
		name string
		b    []byte
	}{
		{"empty", nil},
		{"truncated header", good[:20]},
		{"bad magic", corrupt(func(b []byte) []byte { b[0] = 'X'; return b })},
		{"zero k", corrupt(func(b []byte) []byte { b[4], b[5], b[6], b[7] = 0, 0, 0, 0; return b })},
		{"theta out of range", corrupt(func(b []byte) []byte { b[8] = 64; return b })},
		{"count over capacity", corrupt(func(b []byte) []byte { b[12] = 255; return b })},
		{"trailing bytes", corrupt(func(b []byte) []byte { return append(b, 0) })},
		{"truncated items", good[:len(good)-1]},
		{"item out of order", corrupt(func(b []byte) []byte {
			// Swap the first two encoded items.
			const off = 37
			tmp := make([]byte, 16)
			copy(tmp, b[off:off+16])
			copy(b[off:off+16], b[off+16:off+32])
			copy(b[off+16:off+32], tmp)
			return b
		})},
		{"non-surviving item", corrupt(func(b []byte) []byte {
			// Force the first item's hash to all-ones: it cannot survive a
			// positive theta.
			const off = 37 + 8
			for i := 0; i < 8; i++ {
				b[off+i] = 0xff
			}
			return b
		})},
		{"NaN extreme", corrupt(func(b []byte) []byte {
			binary := math.Float64bits(math.NaN())
			for i := 0; i < 8; i++ {
				b[21+i] = byte(binary >> (56 - 8*i))
			}
			return b
		})},
	}
	if sk.Theta() == 0 {
		t.Fatal("test sketch did not compact; grow n")
	}
	for _, tc := range cases {
		if _, err := stats.DecodeSketch(tc.b); err == nil {
			t.Errorf("%s: decode accepted a corrupt encoding", tc.name)
		}
	}
}

func TestSketchMergeKMismatch(t *testing.T) {
	a, _ := stats.NewSketch(32, 1)
	b, _ := stats.NewSketch(64, 2)
	b.Add(1)
	if err := a.Merge(b); err == nil {
		t.Fatal("Merge accepted mismatched k")
	}
	if err := a.Merge(nil); err == nil {
		t.Fatal("Merge accepted nil sketch")
	}
}

func TestSketchAddRejectsNonFinite(t *testing.T) {
	for _, v := range []float64{math.NaN(), math.Inf(1), math.Inf(-1)} {
		sk, _ := stats.NewSketch(8, 0)
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Add(%v) did not panic", v)
				}
			}()
			sk.Add(v)
		}()
	}
}

func TestSketchEmptyAndBounds(t *testing.T) {
	sk, err := stats.NewSketch(8, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsNaN(sk.Quantile(0.5)) || !math.IsNaN(sk.Mean()) {
		t.Error("empty sketch must answer NaN")
	}
	sk.Add(2)
	if !math.IsNaN(sk.Quantile(-0.1)) || !math.IsNaN(sk.Quantile(1.1)) {
		t.Error("out-of-range q must answer NaN")
	}
	if _, err := stats.NewSketch(0, 0); err == nil {
		t.Error("NewSketch accepted k=0")
	}
	if _, err := stats.NewSketch(stats.MaxSketchK+1, 0); err == nil {
		t.Error("NewSketch accepted k over MaxSketchK")
	}
	if math.IsNaN(stats.SketchEpsilon(256)) || stats.SketchEpsilon(256) != 2.0/16.0 {
		t.Errorf("SketchEpsilon(256) = %v", stats.SketchEpsilon(256))
	}
}
