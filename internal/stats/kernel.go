package stats

import (
	"math"
	"sort"

	"relperf/internal/xrand"
)

// This file is the index-space bootstrap kernel: the hot path of the
// bootstrap comparator rewritten to sort each base sample exactly once and
// never sort a resample again.
//
// The classic kernel materializes every resample as values and sorts it
// before reading quantiles — O(N log N) per round at best, O(N²) with the
// insertion sort that wins at small N, and either way the dominant cost of
// a study once the PR 3 spec schema opened large-N workloads. The
// index-space kernel observes that a resample of a fixed base sample is
// fully described by a multiset of base indices: sort the base once, map
// each drawn index to its rank in the sorted base, counting-sort the rank
// multiset in O(N), and read any quantile straight off the sorted base
// values weighted by the counts.
//
// Determinism contract: the kernel consumes the exact xrand draw sequence
// of xrand.Rand.Resample (len(base) Intn(len(base)) calls per resample)
// and reproduces, bit for bit, every order statistic of the value-sorted
// resample — the drawn value for index i is base[i] = Sorted()[rank[i]],
// so the sorted resample is the same float64 sequence either way, and the
// quantile interpolation below is the same arithmetic as QuantileSorted.
// A value-space reference implementation lives in the tests and the
// benchmark suite to keep this equivalence pinned.

// SortedSample is a base sample sorted exactly once, together with the
// original-index → sorted-rank permutation that lets index-space resampling
// replay the exact value sequence of a value-space resample. It is
// immutable after construction and safe for concurrent use; per-resample
// mutable state lives in BootKernel.
type SortedSample struct {
	values []float64 // ascending copy of the base sample
	rank   []int32   // rank[i] = position of base[i] in values
}

// NewSortedSample copies and sorts xs (ties keep their original relative
// order, which never matters for the value sequence: tied values are
// identical floats). NaNs order first, matching sort.Float64s, so even
// unvalidated inputs sort the same way the value-space paths do.
func NewSortedSample(xs []float64) *SortedSample {
	n := len(xs)
	s := &SortedSample{
		values: make([]float64, n),
		rank:   make([]int32, n),
	}
	idx := make([]int32, n)
	for i := range idx {
		idx[i] = int32(i)
	}
	sort.SliceStable(idx, func(a, b int) bool {
		va, vb := xs[idx[a]], xs[idx[b]]
		return va < vb || (math.IsNaN(va) && !math.IsNaN(vb))
	})
	for r, i := range idx {
		s.values[r] = xs[i]
		s.rank[i] = int32(r)
	}
	return s
}

// N returns the sample size.
func (s *SortedSample) N() int { return len(s.values) }

// Values returns the ascending base values. The caller must not modify the
// returned slice.
func (s *SortedSample) Values() []float64 { return s.values }

// Quantile returns the q-th type-7 quantile of the base sample itself
// (QuantileSorted over the sorted values).
func (s *SortedSample) Quantile(q float64) float64 {
	return QuantileSorted(s.values, q)
}

// BootKernel draws bootstrap resamples of one SortedSample in index space.
// It owns the per-resample counting scratch, so one kernel must not be used
// concurrently; concurrent engines hold one kernel per goroutine over the
// same shared SortedSample.
type BootKernel struct {
	base   *SortedSample
	counts []int32 // counts[r] = multiplicity of sorted rank r in the resample
}

// NewBootKernel returns a kernel over base.
func NewBootKernel(base *SortedSample) *BootKernel {
	return &BootKernel{base: base, counts: make([]int32, base.N())}
}

// Base returns the shared sorted sample the kernel resamples. Engines that
// must hold two independent resamples of one base (a sample compared
// against itself) build a second kernel over the same Base.
func (k *BootKernel) Base() *SortedSample { return k.base }

// Resample draws one bootstrap resample (size N, with replacement) as an
// index multiset, consuming exactly the draw sequence of
// xrand.Rand.Resample over the original sample: N calls of Intn(N), each
// drawn index mapped to its sorted rank. The counting sort is implicit —
// incrementing counts[rank] IS the sort.
func (k *BootKernel) Resample(rng *xrand.Rand) {
	counts := k.counts
	for i := range counts {
		counts[i] = 0
	}
	rank := k.base.rank
	n := len(rank)
	for i := 0; i < n; i++ {
		counts[rank[rng.Intn(n)]]++
	}
}

// Quantile returns the q-th type-7 quantile of the current resample,
// bit-identical to QuantileSorted over the value-sorted resample: the two
// bracketing order statistics are read off the sorted base by a prefix walk
// over the counts, and the interpolation is the same arithmetic.
func (k *BootKernel) Quantile(q float64) float64 {
	n := len(k.counts)
	if n == 0 || q < 0 || q > 1 {
		return math.NaN()
	}
	if n == 1 {
		return k.base.values[0]
	}
	h := q * float64(n-1)
	lo := int(math.Floor(h))
	hi := lo + 1
	if hi >= n {
		// q == 1: the resample maximum is the highest populated rank.
		vlo, _ := k.orderStats(n-1, n-1)
		return vlo
	}
	frac := h - float64(lo)
	vlo, vhi := k.orderStats(lo, hi)
	return vlo + frac*(vhi-vlo)
}

// orderStats returns the lo-th and hi-th (0-based, lo <= hi <= lo+1) order
// statistics of the current resample in one prefix walk over the counts.
func (k *BootKernel) orderStats(lo, hi int) (vlo, vhi float64) {
	cum := 0
	values := k.base.values
	for r, c := range k.counts {
		if c == 0 {
			continue
		}
		cum += int(c)
		if cum > lo {
			vlo = values[r]
			if cum > hi {
				return vlo, vlo
			}
			// hi == lo+1 and the lo-th statistic exhausted this rank:
			// the hi-th is the next populated rank.
			for r2 := r + 1; r2 < len(k.counts); r2++ {
				if k.counts[r2] != 0 {
					return vlo, values[r2]
				}
			}
			return vlo, vlo // unreachable for a full-size resample
		}
	}
	// Unreachable: a resample always holds N draws.
	return math.NaN(), math.NaN()
}

// SortSmall sorts xs in place with insertion sort. Performance-measurement
// buffers are short (N is typically 30–500) and often nearly sorted, which
// makes insertion sort faster than sort.Float64s here and allocation-free.
// It is the one small-slice sort shared by the bootstrap fallback paths;
// large or adversarial inputs belong to sort.Float64s.
func SortSmall(xs []float64) {
	for i := 1; i < len(xs); i++ {
		v := xs[i]
		j := i - 1
		for j >= 0 && xs[j] > v {
			xs[j+1] = xs[j]
			j--
		}
		xs[j+1] = v
	}
}
