package stats

import (
	"relperf/internal/xrand"
)

// Statistic maps a sample to a scalar summary. The canonical statistics used
// by the relative-performance methodology are quantiles, but any reduction
// (mean, trimmed mean, minimum) fits.
type Statistic func(sorted []float64) float64

// QuantileStat returns a Statistic computing the q-th quantile. The input to
// the returned function must be sorted ascending (the bootstrap engine
// guarantees this).
func QuantileStat(q float64) Statistic {
	return func(sorted []float64) float64 { return QuantileSorted(sorted, q) }
}

// MeanStat computes the sample mean (ignores sortedness).
func MeanStat(sorted []float64) float64 { return Mean(sorted) }

// MinStat computes the sample minimum of a sorted sample.
func MinStat(sorted []float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	return sorted[0]
}

// Bootstrap draws B resamples (with replacement, same size as xs) and returns
// the statistic evaluated on each, in draw order. The resamples are sorted
// before stat is applied, so quantile statistics are cheap.
func Bootstrap(rng *xrand.Rand, xs []float64, stat Statistic, B int) []float64 {
	return BootstrapInto(make([]float64, B), rng, xs, stat, make([]float64, len(xs)))
}

// BootstrapInto is the allocation-free core of Bootstrap: it evaluates stat
// on len(out) resamples drawn into scratch (which must have len(xs)
// elements) and writes the draws to out, returning out. Callers running
// repeated bootstrap campaigns preallocate both buffers once.
func BootstrapInto(out []float64, rng *xrand.Rand, xs []float64, stat Statistic, scratch []float64) []float64 {
	for b := range out {
		rng.Resample(scratch, xs)
		SortSmall(scratch)
		out[b] = stat(scratch)
	}
	return out
}

// BootstrapCI returns the percentile bootstrap confidence interval
// [lo, hi] at confidence level conf (e.g. 0.95) for stat over xs.
func BootstrapCI(rng *xrand.Rand, xs []float64, stat Statistic, B int, conf float64) (lo, hi float64) {
	draws := Bootstrap(rng, xs, stat, B)
	alpha := (1 - conf) / 2
	qs := Quantiles(draws, []float64{alpha, 1 - alpha})
	return qs[0], qs[1]
}
