package report

import (
	"bytes"
	"testing"

	"relperf/internal/core"
	"relperf/internal/decision"
	"relperf/internal/measure"
)

func sampleResultJSON() *ResultJSON {
	return &ResultJSON{
		Schema: ResultSchema,
		Names:  []string{"algDD", "algDA"},
		Samples: &measure.SampleSet{
			Workload: "w",
			Samples: []measure.Sample{
				{Name: "algDD", Seconds: []float64{1.0000000000000002, 1.1, 0.9}},
				{Name: "algDA", Seconds: []float64{2.0, 2.1, 1.9}},
			},
		},
		Clusters: &core.ClusterResult{
			P: 2, Reps: 10, K: 2, MeanK: 2,
			Scores: [][]float64{{1, 0}, {0, 1}},
			Clusters: [][]core.Membership{
				{{Alg: 0, Score: 1}},
				{{Alg: 1, Score: 1}},
			},
		},
		Final: &core.FinalAssignment{
			Rank: []int{1, 2}, Score: []float64{1, 1}, K: 2,
			Classes: [][]core.Membership{
				{{Alg: 0, Score: 1}},
				{{Alg: 1, Score: 1}},
			},
		},
		Profiles: []decision.AlgorithmProfile{
			{Name: "DD", Rank: 1, Score: 1, MeanSeconds: 1.0 / 3, EdgeFlops: 7},
			{Name: "DA", Rank: 2, Score: 1, MeanSeconds: 2, AccelFlops: 9, AccelJoules: 0.1},
		},
	}
}

// TestResultJSONRoundTrip: decode(encode(r)) re-encodes to byte-identical
// output — the property the fleet store's snapshot persistence relies on.
func TestResultJSONRoundTrip(t *testing.T) {
	r := sampleResultJSON()
	blob, err := MarshalResult(r)
	if err != nil {
		t.Fatal(err)
	}
	back, err := UnmarshalResult(blob)
	if err != nil {
		t.Fatal(err)
	}
	blob2, err := MarshalResult(back)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(blob, blob2) {
		t.Fatalf("re-encoding differs:\n%s\nvs\n%s", blob, blob2)
	}
	if back.Profiles[0].EdgeFlops != 7 || back.Samples.Samples[0].Seconds[0] != 1.0000000000000002 {
		t.Fatalf("lossy round trip: %+v", back)
	}
}

func TestResultJSONValidation(t *testing.T) {
	r := sampleResultJSON()
	r.Schema = "bogus/v9"
	if _, err := MarshalResult(r); err == nil {
		t.Fatal("wrong schema accepted")
	}
	r = sampleResultJSON()
	r.Clusters = nil
	if _, err := MarshalResult(r); err == nil {
		t.Fatal("missing clusters accepted")
	}
	if _, err := UnmarshalResult([]byte(`{"schema":"relperf/result/v1","unknown_field":1}`)); err == nil {
		t.Fatal("unknown field accepted")
	}
	r = sampleResultJSON()
	r.Names = r.Names[:1]
	if _, err := MarshalResult(r); err == nil {
		t.Fatal("name/sample mismatch accepted")
	}
}

func TestEncodeResultAppendsNewline(t *testing.T) {
	var buf bytes.Buffer
	if err := EncodeResult(&buf, sampleResultJSON()); err != nil {
		t.Fatal(err)
	}
	b := buf.Bytes()
	if len(b) == 0 || b[len(b)-1] != '\n' {
		t.Fatal("no trailing newline")
	}
	if _, err := UnmarshalResult(b); err != nil {
		t.Fatal(err)
	}
}
