package report

import (
	"bytes"
	"strings"
	"testing"

	"relperf/internal/compare"
	"relperf/internal/core"
)

func fig2Cmp(i, j int) (compare.Outcome, error) {
	class := []int{2, 1, 2, 0} // DD, AA, DA, AD
	switch {
	case class[i] < class[j]:
		return compare.Better, nil
	case class[i] > class[j]:
		return compare.Worse, nil
	default:
		return compare.Equivalent, nil
	}
}

var names = []string{"DD", "AA", "DA", "AD"}

func TestTableRender(t *testing.T) {
	tbl := NewTable("A", "Blong", "C")
	tbl.AddRow("x", "y")
	tbl.AddRow("longer", "z", "w")
	var buf bytes.Buffer
	if err := tbl.Render(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("lines = %d:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "A") || !strings.Contains(lines[0], "Blong") {
		t.Fatalf("header wrong: %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], "---") {
		t.Fatalf("separator wrong: %q", lines[1])
	}
	if !strings.HasPrefix(lines[3], "longer") {
		t.Fatalf("row wrong: %q", lines[3])
	}
}

func TestClusterTable(t *testing.T) {
	res, err := core.Cluster(4, fig2Cmp, core.ClusterOptions{Reps: 20, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := ClusterTable(&buf, res, names); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"C1", "AD", "1.00", "C3"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
}

func TestFinalTable(t *testing.T) {
	res, _ := core.Cluster(4, fig2Cmp, core.ClusterOptions{Reps: 20, Seed: 1})
	fa, err := res.Finalize()
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := FinalTable(&buf, fa, names); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "AD") || !strings.Contains(buf.String(), "C1") {
		t.Fatalf("final table wrong:\n%s", buf.String())
	}
}

func TestSummaryTable(t *testing.T) {
	samples := [][]float64{
		{0.010, 0.011, 0.012},
		{0.020, 0.021, 0.022},
	}
	var buf bytes.Buffer
	if err := SummaryTable(&buf, []string{"fast", "slow"}, samples); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "fast") || !strings.Contains(out, "11.000") {
		t.Fatalf("summary wrong:\n%s", out)
	}
}

func TestHistograms(t *testing.T) {
	samples := [][]float64{
		{0.010, 0.0101, 0.0102, 0.0103},
		{0.020, 0.0201, 0.0202},
	}
	var buf bytes.Buffer
	if err := Histograms(&buf, []string{"a", "b"}, samples, 10, 20); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "a (N=4)") || !strings.Contains(out, "#") {
		t.Fatalf("histograms wrong:\n%s", out)
	}
	// Defaults apply for non-positive bins/width.
	buf.Reset()
	if err := Histograms(&buf, []string{"a"}, samples[:1], 0, 0); err != nil {
		t.Fatal(err)
	}
	// Degenerate constant sample must not panic.
	buf.Reset()
	if err := Histograms(&buf, []string{"c"}, [][]float64{{1, 1, 1}}, 5, 10); err != nil {
		t.Fatal(err)
	}
}

func TestSortTrace(t *testing.T) {
	res, err := core.Sort(4, fig2Cmp, core.SortOptions{RecordTrace: true})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := SortTrace(&buf, res, names); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "step 1") || !strings.Contains(out, "swap") {
		t.Fatalf("trace wrong:\n%s", out)
	}
	if !strings.Contains(out, "merge↓") || !strings.Contains(out, "split↑") {
		t.Fatalf("rank shifts missing:\n%s", out)
	}
}

func TestRankedNames(t *testing.T) {
	res, _ := core.Cluster(4, fig2Cmp, core.ClusterOptions{Reps: 20, Seed: 1})
	fa, _ := res.Finalize()
	ranked := RankedNames(fa, names)
	if ranked[0] != "AD(C1)" {
		t.Fatalf("ranked = %v", ranked)
	}
	if len(ranked) != 4 {
		t.Fatalf("ranked = %v", ranked)
	}
}

func TestAlgNameFallback(t *testing.T) {
	if algName(names, 99) != "alg99" {
		t.Fatal("fallback name wrong")
	}
}
