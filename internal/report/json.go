package report

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"

	"relperf/internal/core"
	"relperf/internal/decision"
	"relperf/internal/measure"
	"relperf/internal/stats"
)

// ResultSchema identifies the machine-readable study-result wire format.
// The fleet daemon serves it over HTTP and the result store persists it in
// snapshots; bump the version when the shape changes incompatibly.
const ResultSchema = "relperf/result/v1"

// ResultModeSketch marks a sketch-mode document; the empty mode is the
// exact path. The two modes are mutually exclusive on the wire: an exact
// document carries samples and no error bound, a sketch document carries
// sketches and the mode's documented rank-error bound.
const ResultModeSketch = "sketch"

// ResultJSON is the wire form of a complete study result: the measured
// distributions (exact samples or quantile sketches, depending on Mode),
// the repeated-clustering outcome, the final assignment and the decision
// profiles. Encoding is canonical — struct field order, no maps,
// shortest-round-trip floats, and the sketches' canonical binary encoding —
// so equal results always produce byte-identical documents, the property
// the fleet cache and the determinism contract rely on. Exact-mode
// documents are byte-identical to the pre-sketch schema: all sketch fields
// are empty and elided.
type ResultJSON struct {
	Schema string `json:"schema"`
	// Mode is "" (exact) or ResultModeSketch.
	Mode     string             `json:"mode,omitempty"`
	Names    []string           `json:"names"`
	Samples  *measure.SampleSet `json:"samples,omitempty"`
	Sketches *measure.SketchSet `json:"sketches,omitempty"`
	// ErrorBound is the sketch mode's rank-error bound,
	// stats.SketchEpsilon of the set's shared k; 0 (absent) in exact mode.
	ErrorBound float64                     `json:"error_bound,omitempty"`
	Clusters   *core.ClusterResult         `json:"clusters"`
	Final      *core.FinalAssignment       `json:"final"`
	Profiles   []decision.AlgorithmProfile `json:"profiles"`
}

// Validate rejects incomplete documents.
func (r *ResultJSON) Validate() error {
	if r.Schema != ResultSchema {
		return fmt.Errorf("report: result schema %q, want %q", r.Schema, ResultSchema)
	}
	if r.Clusters == nil || r.Final == nil {
		return errors.New("report: result JSON missing clusters or final assignment")
	}
	switch r.Mode {
	case "":
		if r.Sketches != nil || r.ErrorBound != 0 {
			return errors.New("report: exact-mode result carries sketch fields")
		}
		if r.Samples == nil {
			return errors.New("report: result JSON missing samples")
		}
		if err := r.Samples.Validate(); err != nil {
			return err
		}
		if len(r.Names) != len(r.Samples.Samples) {
			return fmt.Errorf("report: %d names for %d samples", len(r.Names), len(r.Samples.Samples))
		}
	case ResultModeSketch:
		if r.Samples != nil {
			return errors.New("report: sketch-mode result carries exact samples")
		}
		if r.Sketches == nil {
			return errors.New("report: sketch-mode result missing sketches")
		}
		if err := r.Sketches.Validate(); err != nil {
			return err
		}
		if len(r.Names) != len(r.Sketches.Sketches) {
			return fmt.Errorf("report: %d names for %d sketches", len(r.Names), len(r.Sketches.Sketches))
		}
		for i, name := range r.Sketches.Names() {
			if r.Names[i] != name {
				return fmt.Errorf("report: name %d is %q but its sketch is %q", i, r.Names[i], name)
			}
		}
		if want := stats.SketchEpsilon(r.Sketches.K()); r.ErrorBound != want {
			return fmt.Errorf("report: sketch-mode error bound %v, want %v for k=%d",
				r.ErrorBound, want, r.Sketches.K())
		}
	default:
		return fmt.Errorf("report: unknown result mode %q", r.Mode)
	}
	return nil
}

// MarshalResult returns the canonical compact encoding of the result.
func MarshalResult(r *ResultJSON) ([]byte, error) {
	if r.Schema == "" {
		r.Schema = ResultSchema
	}
	if err := r.Validate(); err != nil {
		return nil, err
	}
	return json.Marshal(r)
}

// EncodeResult writes the canonical compact encoding followed by a newline.
func EncodeResult(w io.Writer, r *ResultJSON) error {
	b, err := MarshalResult(r)
	if err != nil {
		return err
	}
	b = append(b, '\n')
	_, err = w.Write(b)
	return err
}

// TaskSchema identifies the grid worker task envelope: the unit of work a
// coordinator hands to a remote relperfd worker. The envelope is
// self-contained — the fingerprint addresses the study, the derived seed
// pins its randomness, and the declarative spec is everything needed to
// reproduce it — so any worker that honors the schema computes the exact
// bytes the coordinator would have computed locally.
const TaskSchema = "relperf/grid-task/v1"

// TaskJSON is the wire form of one sharded study.
type TaskJSON struct {
	Schema string `json:"schema"`
	// Fingerprint is the study's canonical config fingerprint.
	Fingerprint string `json:"fingerprint"`
	// Seed is the derived study seed, StudySeed(suiteSeed, Fingerprint).
	Seed uint64 `json:"seed"`
	// Spec is the study's declarative wire spec (relperf.StudySpec JSON).
	Spec json.RawMessage `json:"spec,omitempty"`
}

// Validate rejects incomplete envelopes.
func (t *TaskJSON) Validate() error {
	if t.Schema != TaskSchema {
		return fmt.Errorf("report: task schema %q, want %q", t.Schema, TaskSchema)
	}
	if t.Fingerprint == "" {
		return errors.New("report: task envelope without a fingerprint")
	}
	return nil
}

// MarshalTask returns the canonical compact encoding of the envelope.
func MarshalTask(t *TaskJSON) ([]byte, error) {
	if t.Schema == "" {
		t.Schema = TaskSchema
	}
	if err := t.Validate(); err != nil {
		return nil, err
	}
	return json.Marshal(t)
}

// UnmarshalTask parses and validates a task envelope.
func UnmarshalTask(b []byte) (*TaskJSON, error) {
	var t TaskJSON
	dec := json.NewDecoder(bytes.NewReader(b))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&t); err != nil {
		return nil, fmt.Errorf("report: decoding task envelope: %w", err)
	}
	if err := t.Validate(); err != nil {
		return nil, err
	}
	return &t, nil
}

// UnmarshalResult parses and validates a wire-format document.
func UnmarshalResult(b []byte) (*ResultJSON, error) {
	var r ResultJSON
	dec := json.NewDecoder(bytes.NewReader(b))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&r); err != nil {
		return nil, fmt.Errorf("report: decoding result JSON: %w", err)
	}
	if err := r.Validate(); err != nil {
		return nil, err
	}
	return &r, nil
}

// DecodeResult reads one wire-format document from r.
func DecodeResult(rd io.Reader) (*ResultJSON, error) {
	b, err := io.ReadAll(rd)
	if err != nil {
		return nil, fmt.Errorf("report: reading result JSON: %w", err)
	}
	return UnmarshalResult(b)
}
