// Package report renders the artefacts of a relative-performance study as
// text: cluster tables in the style of the paper's Table I, ASCII histograms
// in the style of Figure 1b, and sort traces in the style of Figure 2.
package report

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"relperf/internal/core"
	"relperf/internal/stats"
)

// Table renders rows with left-aligned columns separated by two spaces.
type Table struct {
	header []string
	rows   [][]string
}

// NewTable creates a table with the given header.
func NewTable(header ...string) *Table {
	return &Table{header: header}
}

// AddRow appends a row; short rows are padded with empty cells.
func (t *Table) AddRow(cells ...string) {
	row := make([]string, len(t.header))
	copy(row, cells)
	t.rows = append(t.rows, row)
}

// Render writes the formatted table.
func (t *Table) Render(w io.Writer) error {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) string {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = pad(c, widths[i])
		}
		return strings.TrimRight(strings.Join(parts, "  "), " ")
	}
	var b strings.Builder
	b.WriteString(line(t.header))
	b.WriteByte('\n')
	total := len(widths) - 1
	for _, w := range widths {
		total += w + 1
	}
	b.WriteString(strings.Repeat("-", total))
	b.WriteByte('\n')
	for _, row := range t.rows {
		b.WriteString(line(row))
		b.WriteByte('\n')
	}
	_, err := io.WriteString(w, b.String())
	return err
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}

// ClusterTable renders a core.ClusterResult in the format of the paper's
// Table I: one row per (cluster, algorithm, relative score).
func ClusterTable(w io.Writer, res *core.ClusterResult, names []string) error {
	tbl := NewTable("Cluster", "Algorithm", "Relative Score")
	for r := 1; r <= res.K; r++ {
		members, err := res.GetCluster(r)
		if err != nil {
			return err
		}
		first := true
		for _, m := range members {
			label := ""
			if first {
				label = fmt.Sprintf("C%d", r)
				first = false
			}
			tbl.AddRow(label, algName(names, m.Alg), fmt.Sprintf("%.2f", m.Score))
		}
	}
	return tbl.Render(w)
}

// FinalTable renders a core.FinalAssignment: the paper's "final clustering".
func FinalTable(w io.Writer, fa *core.FinalAssignment, names []string) error {
	tbl := NewTable("Cluster", "Algorithm", "Final Score")
	for r := 1; r <= fa.K; r++ {
		first := true
		for _, m := range fa.Classes[r-1] {
			label := ""
			if first {
				label = fmt.Sprintf("C%d", r)
				first = false
			}
			tbl.AddRow(label, algName(names, m.Alg), fmt.Sprintf("%.2f", m.Score))
		}
	}
	return tbl.Render(w)
}

func algName(names []string, i int) string {
	if i >= 0 && i < len(names) {
		return names[i]
	}
	return fmt.Sprintf("alg%d", i)
}

// SummaryTable renders per-algorithm descriptive statistics of the measured
// distributions (milliseconds).
func SummaryTable(w io.Writer, names []string, samples [][]float64) error {
	tbl := NewTable("Algorithm", "N", "Mean(ms)", "Median(ms)", "Std(ms)", "Min(ms)", "Max(ms)")
	for i, name := range names {
		s := stats.Summarize(samples[i])
		tbl.AddRow(name,
			fmt.Sprintf("%d", s.N),
			fmt.Sprintf("%.3f", s.Mean*1e3),
			fmt.Sprintf("%.3f", s.Median*1e3),
			fmt.Sprintf("%.3f", s.StdDev*1e3),
			fmt.Sprintf("%.3f", s.Min*1e3),
			fmt.Sprintf("%.3f", s.Max*1e3))
	}
	return tbl.Render(w)
}

// SketchSummaryTable renders per-algorithm descriptive statistics of
// sketch-mode campaigns (milliseconds): the quartiles read off each sketch
// plus the exact extremes it tracks. Every quantile column is subject to the
// sketch's rank-error bound (stats.SketchEpsilon of the shared k); Min/Max
// and N are exact.
func SketchSummaryTable(w io.Writer, names []string, sketches []*stats.Sketch) error {
	tbl := NewTable("Algorithm", "N", "P25(ms)", "Median(ms)", "P75(ms)", "Min(ms)", "Max(ms)")
	for i, name := range names {
		sk := sketches[i]
		tbl.AddRow(name,
			fmt.Sprintf("%d", sk.N()),
			fmt.Sprintf("%.3f", sk.Quantile(0.25)*1e3),
			fmt.Sprintf("%.3f", sk.Quantile(0.5)*1e3),
			fmt.Sprintf("%.3f", sk.Quantile(0.75)*1e3),
			fmt.Sprintf("%.3f", sk.MinValue()*1e3),
			fmt.Sprintf("%.3f", sk.MaxValue()*1e3))
	}
	return tbl.Render(w)
}

// Histograms renders the Figure-1b style overlayed distribution view: one
// ASCII histogram per algorithm over a shared range, so the overlap between
// equivalent algorithms is visible.
func Histograms(w io.Writer, names []string, samples [][]float64, bins, width int) error {
	if bins <= 0 {
		bins = 30
	}
	if width <= 0 {
		width = 50
	}
	lo, hi := sharedRange(samples)
	if !(hi > lo) {
		hi = lo + 1
	}
	for i, name := range names {
		h, err := stats.NewHistogram(samples[i], lo, hi, bins)
		if err != nil {
			return err
		}
		maxCount := 0
		for _, c := range h.Counts {
			if c > maxCount {
				maxCount = c
			}
		}
		if _, err := fmt.Fprintf(w, "%s (N=%d)\n", name, len(samples[i])); err != nil {
			return err
		}
		for b := 0; b < bins; b++ {
			bar := 0
			if maxCount > 0 {
				bar = h.Counts[b] * width / maxCount
			}
			if _, err := fmt.Fprintf(w, "  %8.3fms |%s\n",
				h.BinCenter(b)*1e3, strings.Repeat("#", bar)); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintln(w); err != nil {
			return err
		}
		_ = i
	}
	return nil
}

func sharedRange(samples [][]float64) (lo, hi float64) {
	first := true
	for _, s := range samples {
		for _, v := range s {
			if first {
				lo, hi = v, v
				first = false
				continue
			}
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
		}
	}
	return lo, hi
}

// SortTrace renders a core sort trace in the style of the paper's Figure 2:
// one line per comparison showing the outcome and the sequence state.
func SortTrace(w io.Writer, res *core.SortResult, names []string) error {
	for i, st := range res.Trace {
		state := make([]string, len(st.OrderAfter))
		for p, a := range st.OrderAfter {
			state[p] = fmt.Sprintf("(%s,%d)", algName(names, a), st.RanksAfter[p])
		}
		action := "keep"
		if st.Swapped {
			action = "swap"
		}
		shift := ""
		switch st.RankShift {
		case -1:
			shift = " merge↓"
		case +1:
			shift = " split↑"
		}
		if _, err := fmt.Fprintf(w, "step %d (pass %d): %s vs %s → %s [%s%s]  ⟨%s⟩\n",
			i+1, st.Pass,
			algName(names, st.Left), algName(names, st.Right),
			st.Outcome, action, shift, strings.Join(state, " ")); err != nil {
			return err
		}
	}
	return nil
}

// RankedNames returns names sorted by final rank then score — handy for
// compact one-line summaries.
func RankedNames(fa *core.FinalAssignment, names []string) []string {
	idx := make([]int, len(names))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool {
		if fa.Rank[idx[a]] != fa.Rank[idx[b]] {
			return fa.Rank[idx[a]] < fa.Rank[idx[b]]
		}
		return fa.Score[idx[a]] > fa.Score[idx[b]]
	})
	out := make([]string, len(names))
	for i, j := range idx {
		out[i] = fmt.Sprintf("%s(C%d)", algName(names, j), fa.Rank[j])
	}
	return out
}
