package measure

import (
	"encoding/json"
	"errors"
	"testing"

	"relperf/internal/stats"
	"relperf/internal/xrand"
)

func sketchOf(t *testing.T, k int, seed uint64, vals ...float64) *stats.Sketch {
	t.Helper()
	sk, err := stats.NewSketch(k, seed)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range vals {
		sk.Add(v)
	}
	return sk
}

func TestCollectSketchStreams(t *testing.T) {
	rng := xrand.New(1)
	var calls int
	run := func() (float64, error) {
		calls++
		return rng.LogNormal(-3, 0.2), nil
	}
	sk, _ := stats.NewSketch(64, 7)
	s, err := CollectSketch("algA", sk, run, Options{N: 500, Warmup: 3})
	if err != nil {
		t.Fatal(err)
	}
	if calls != 503 {
		t.Fatalf("runner called %d times, want 503", calls)
	}
	if s.Name != "algA" || s.N() != 500 {
		t.Fatalf("sample = %q n=%d", s.Name, s.N())
	}
	if s.Sketch != sk {
		t.Fatal("CollectSketch must fill the caller's sketch")
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestCollectSketchErrors(t *testing.T) {
	ok := func() (float64, error) { return 1, nil }
	boom := errors.New("boom")
	fail := func() (float64, error) { return 0, boom }
	sk, _ := stats.NewSketch(16, 0)

	if _, err := CollectSketch("a", sk, ok, Options{N: 0}); err == nil {
		t.Error("N=0 accepted")
	}
	if _, err := CollectSketch("a", nil, ok, Options{N: 1}); err == nil {
		t.Error("nil sketch accepted")
	}
	if _, err := CollectSketch("a", sk, nil, Options{N: 1}); err == nil {
		t.Error("nil runner accepted")
	}
	if _, err := CollectSketch("a", sk, fail, Options{N: 1, Warmup: 1}); !errors.Is(err, boom) {
		t.Errorf("warmup error not propagated: %v", err)
	}
	if _, err := CollectSketch("a", sk, fail, Options{N: 1}); !errors.Is(err, boom) {
		t.Errorf("measurement error not propagated: %v", err)
	}
}

func TestSketchSampleValidate(t *testing.T) {
	good := SketchSample{Name: "a", Sketch: sketchOf(t, 16, 0, 0.5, 1.5)}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []SketchSample{
		{Sketch: sketchOf(t, 16, 0, 1)},                // no name
		{Name: "a"},                                    // no sketch
		{Name: "a", Sketch: sketchOf(t, 16, 0)},        // empty sketch
		{Name: "a", Sketch: sketchOf(t, 16, 0, 0)},     // zero measurement
		{Name: "a", Sketch: sketchOf(t, 16, 0, 1, -2)}, // negative measurement
	}
	for i, b := range bad {
		if b.Validate() == nil {
			t.Errorf("bad sketch sample %d accepted", i)
		}
	}
}

func TestSketchSetValidate(t *testing.T) {
	good := &SketchSet{
		Workload: "w",
		Sketches: []SketchSample{
			{Name: "algA", Sketch: sketchOf(t, 16, 1, 0.1, 0.2)},
			{Name: "algB", Sketch: sketchOf(t, 16, 2, 0.3)},
		},
	}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	if names := good.Names(); len(names) != 2 || names[0] != "algA" || names[1] != "algB" {
		t.Fatalf("Names = %v", names)
	}
	if good.K() != 16 {
		t.Fatalf("K = %d", good.K())
	}

	empty := &SketchSet{Workload: "w"}
	if empty.Validate() == nil {
		t.Error("empty set accepted")
	}
	if empty.K() != 0 {
		t.Error("empty set K != 0")
	}
	dup := &SketchSet{Sketches: []SketchSample{
		{Name: "a", Sketch: sketchOf(t, 16, 1, 1)},
		{Name: "a", Sketch: sketchOf(t, 16, 2, 1)},
	}}
	if dup.Validate() == nil {
		t.Error("duplicate names accepted")
	}
	mixed := &SketchSet{Sketches: []SketchSample{
		{Name: "a", Sketch: sketchOf(t, 16, 1, 1)},
		{Name: "b", Sketch: sketchOf(t, 32, 2, 1)},
	}}
	if mixed.Validate() == nil {
		t.Error("mixed k accepted")
	}
}

func TestSketchSetJSONRoundTrip(t *testing.T) {
	set := &SketchSet{
		Workload: "w",
		Sketches: []SketchSample{
			{Name: "algA", Sketch: sketchOf(t, 16, 1, 0.1, 0.2, 0.3)},
			{Name: "algB", Sketch: sketchOf(t, 16, 2, 0.4)},
		},
	}
	b, err := json.Marshal(set)
	if err != nil {
		t.Fatal(err)
	}
	var back SketchSet
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	if err := back.Validate(); err != nil {
		t.Fatal(err)
	}
	b2, err := json.Marshal(&back)
	if err != nil {
		t.Fatal(err)
	}
	if string(b) != string(b2) {
		t.Fatal("sketch set JSON is not a round-trip fixed point")
	}
	if got, want := back.Sketches[0].Sketch.Quantile(0.5), set.Sketches[0].Sketch.Quantile(0.5); got != want {
		t.Fatalf("median drifted across JSON: %v != %v", got, want)
	}
}
