package measure

import (
	"bytes"
	"errors"
	"strings"
	"testing"

	"relperf/internal/xrand"
)

func testSet() *SampleSet {
	return &SampleSet{
		Workload: "w",
		Samples: []Sample{
			{Name: "algA", Seconds: []float64{0.1, 0.2, 0.15}},
			{Name: "algB", Seconds: []float64{0.3, 0.35}},
		},
	}
}

func TestSampleValidate(t *testing.T) {
	good := Sample{Name: "a", Seconds: []float64{1}}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Sample{
		{Seconds: []float64{1}},
		{Name: "a"},
		{Name: "a", Seconds: []float64{0}},
		{Name: "a", Seconds: []float64{1, -2}},
	}
	for i, b := range bad {
		if b.Validate() == nil {
			t.Errorf("bad sample %d accepted", i)
		}
	}
}

func TestSampleSummary(t *testing.T) {
	s := Sample{Name: "a", Seconds: []float64{1, 2, 3}}
	if s.N() != 3 {
		t.Fatal("N wrong")
	}
	if sum := s.Summary(); sum.Median != 2 || sum.Min != 1 || sum.Max != 3 {
		t.Fatalf("summary = %+v", sum)
	}
}

func TestSampleSetAccessors(t *testing.T) {
	ss := testSet()
	if err := ss.Validate(); err != nil {
		t.Fatal(err)
	}
	names := ss.Names()
	if names[0] != "algA" || names[1] != "algB" {
		t.Fatalf("Names = %v", names)
	}
	data := ss.Data()
	if len(data) != 2 || len(data[0]) != 3 {
		t.Fatal("Data wrong")
	}
	if ss.ByName("algB") == nil || ss.ByName("missing") != nil {
		t.Fatal("ByName wrong")
	}
}

func TestSampleSetSortedViews(t *testing.T) {
	ss := testSet()
	sorted := ss.Sorted()
	if len(sorted) != len(ss.Samples) {
		t.Fatalf("Sorted returned %d views for %d samples", len(sorted), len(ss.Samples))
	}
	for i, v := range sorted {
		if v.N() != len(ss.Samples[i].Seconds) {
			t.Fatalf("view %d has N=%d", i, v.N())
		}
		vals := v.Values()
		for k := 1; k < len(vals); k++ {
			if vals[k-1] > vals[k] {
				t.Fatalf("view %d not sorted", i)
			}
		}
	}
	v0, v1 := sorted[0], sorted[1]
	// Unchanged samples reuse the cached views.
	again := ss.Sorted()
	if again[0] != v0 || again[1] != v1 {
		t.Fatal("unchanged samples were re-sorted")
	}
	// A sample that grows is re-sorted; its untouched sibling is not.
	ss.Samples[0].Seconds = append(ss.Samples[0].Seconds, 0.5)
	grown := ss.Sorted()
	if grown[0] == v0 {
		t.Fatal("grown sample served a stale view")
	}
	if grown[0].N() != len(ss.Samples[0].Seconds) {
		t.Fatal("re-sorted view has stale length")
	}
	if grown[1] != v1 {
		t.Fatal("untouched sample was re-sorted")
	}
	// A visible in-place rewrite (boundary value changes) is re-sorted.
	ss.Samples[1].Seconds[0] *= 10
	if rewritten := ss.Sorted(); rewritten[1] == v1 {
		t.Fatal("rewritten sample served a stale view")
	}
}

func TestSampleSetValidateDuplicates(t *testing.T) {
	ss := &SampleSet{Samples: []Sample{
		{Name: "x", Seconds: []float64{1}},
		{Name: "x", Seconds: []float64{2}},
	}}
	if ss.Validate() == nil {
		t.Fatal("duplicate names accepted")
	}
	if (&SampleSet{}).Validate() == nil {
		t.Fatal("empty set accepted")
	}
}

func TestSortByMedian(t *testing.T) {
	ss := &SampleSet{Samples: []Sample{
		{Name: "slow", Seconds: []float64{2, 2.1}},
		{Name: "fast", Seconds: []float64{1, 1.1}},
	}}
	ss.SortByMedian()
	if ss.Samples[0].Name != "fast" {
		t.Fatal("SortByMedian wrong")
	}
}

func TestCollect(t *testing.T) {
	rng := xrand.New(1)
	calls := 0
	run := func() (float64, error) {
		calls++
		return 1 + rng.Float64(), nil
	}
	s, err := Collect("x", run, Options{N: 10, Warmup: 3})
	if err != nil {
		t.Fatal(err)
	}
	if calls != 13 {
		t.Fatalf("runner called %d times, want 13", calls)
	}
	if s.N() != 10 || s.Name != "x" {
		t.Fatalf("sample = %+v", s)
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestCollectErrors(t *testing.T) {
	ok := func() (float64, error) { return 1, nil }
	if _, err := Collect("x", ok, Options{N: 0}); err == nil {
		t.Fatal("N=0 accepted")
	}
	if _, err := Collect("x", nil, Options{N: 1}); err == nil {
		t.Fatal("nil runner accepted")
	}
	boom := errors.New("boom")
	failing := func() (float64, error) { return 0, boom }
	if _, err := Collect("x", failing, Options{N: 1}); !errors.Is(err, boom) {
		t.Fatal("measurement error lost")
	}
	n := 0
	failWarmup := func() (float64, error) {
		n++
		if n == 1 {
			return 0, boom
		}
		return 1, nil
	}
	if _, err := Collect("x", failWarmup, Options{N: 1, Warmup: 1}); !errors.Is(err, boom) {
		t.Fatal("warmup error lost")
	}
}

func TestTime(t *testing.T) {
	s := Time(func() {
		x := 0
		for i := 0; i < 1000; i++ {
			x += i
		}
		_ = x
	})
	if s < 0 {
		t.Fatal("negative duration")
	}
}

func TestCSVRoundTrip(t *testing.T) {
	ss := testSet()
	var buf bytes.Buffer
	if err := ss.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSV(&buf, "w")
	if err != nil {
		t.Fatal(err)
	}
	if back.Workload != "w" || len(back.Samples) != 2 {
		t.Fatalf("round trip = %+v", back)
	}
	for i := range ss.Samples {
		if back.Samples[i].Name != ss.Samples[i].Name {
			t.Fatal("names lost")
		}
		for j := range ss.Samples[i].Seconds {
			if back.Samples[i].Seconds[j] != ss.Samples[i].Seconds[j] {
				t.Fatal("values lost precision")
			}
		}
	}
}

func TestReadCSVErrors(t *testing.T) {
	if _, err := ReadCSV(strings.NewReader(""), "w"); err == nil {
		t.Fatal("empty CSV accepted")
	}
	if _, err := ReadCSV(strings.NewReader("a,b\n"), "w"); err == nil {
		t.Fatal("malformed row accepted")
	}
	if _, err := ReadCSV(strings.NewReader("alg,notanint,1.5\n"), "w"); err == nil {
		t.Fatal("bad run index accepted")
	}
	if _, err := ReadCSV(strings.NewReader("alg,0,notafloat\n"), "w"); err == nil {
		t.Fatal("bad value accepted")
	}
	// Non-positive measurement rejected by validation.
	if _, err := ReadCSV(strings.NewReader("alg,0,-1\n"), "w"); err == nil {
		t.Fatal("negative measurement accepted")
	}
}

func TestReadCSVInterleavedAndUnordered(t *testing.T) {
	csvText := "algorithm,run,seconds\nB,1,0.4\nA,0,0.1\nB,0,0.3\nA,1,0.2\n"
	ss, err := ReadCSV(strings.NewReader(csvText), "w")
	if err != nil {
		t.Fatal(err)
	}
	b := ss.ByName("B")
	if b.Seconds[0] != 0.3 || b.Seconds[1] != 0.4 {
		t.Fatalf("run order not restored: %v", b.Seconds)
	}
	// First-seen order preserved.
	if ss.Samples[0].Name != "B" {
		t.Fatal("appearance order lost")
	}
}

func TestJSONRoundTrip(t *testing.T) {
	ss := testSet()
	var buf bytes.Buffer
	if err := ss.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Workload != "w" || len(back.Samples) != 2 || back.Samples[1].Seconds[1] != 0.35 {
		t.Fatalf("round trip = %+v", back)
	}
}

func TestReadJSONErrors(t *testing.T) {
	if _, err := ReadJSON(strings.NewReader("{nope")); err == nil {
		t.Fatal("bad JSON accepted")
	}
	if _, err := ReadJSON(strings.NewReader(`{"workload":"w","samples":[]}`)); err == nil {
		t.Fatal("empty set accepted")
	}
}

func TestCollectIntoReusesBuffer(t *testing.T) {
	buf := make([]float64, 5)
	calls := 0
	run := func() (float64, error) { calls++; return float64(calls), nil }
	s, err := CollectInto("x", buf, run, 2)
	if err != nil {
		t.Fatal(err)
	}
	if &s.Seconds[0] != &buf[0] {
		t.Fatal("CollectInto did not alias the destination buffer")
	}
	// 2 warmup calls discarded: measurements are calls 3..7.
	for i, want := range []float64{3, 4, 5, 6, 7} {
		if s.Seconds[i] != want {
			t.Fatalf("Seconds = %v", s.Seconds)
		}
	}
	if _, err := CollectInto("x", nil, run, 0); err == nil {
		t.Fatal("empty buffer accepted")
	}
	if _, err := CollectInto("x", buf, nil, 0); err == nil {
		t.Fatal("nil runner accepted")
	}
}
