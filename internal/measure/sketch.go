// Sketch-backed measurement collection: the opt-in alternative to Sample /
// SampleSet for campaigns whose N is too large to materialize. Instead of
// retaining every measurement, CollectSketch streams them into a fixed-size
// stats.Sketch, so a placement can be measured 10^6–10^8 times in O(k) memory
// with an explicit rank-error bound (stats.SketchEpsilon) instead of the
// exact path's bit-identity contract.

package measure

import (
	"errors"
	"fmt"

	"relperf/internal/stats"
)

// SketchSample is one algorithm's measurement campaign summarized into a
// quantile sketch. The JSON form embeds the sketch's canonical binary
// encoding (base64), so equal sketches always serialize identically.
type SketchSample struct {
	// Name identifies the algorithm ("algDDA").
	Name string `json:"name"`
	// Sketch summarizes the execution-time distribution (seconds).
	Sketch *stats.Sketch `json:"sketch"`
}

// N returns the exact number of summarized measurements.
func (s *SketchSample) N() uint64 {
	if s.Sketch == nil {
		return 0
	}
	return s.Sketch.N()
}

// Validate rejects unusable sketch samples.
func (s *SketchSample) Validate() error {
	if s.Name == "" {
		return errors.New("measure: sketch sample without name")
	}
	if s.Sketch == nil {
		return fmt.Errorf("measure: sketch sample %q has no sketch", s.Name)
	}
	if s.Sketch.N() == 0 {
		return fmt.Errorf("measure: sketch sample %q is empty", s.Name)
	}
	if !(s.Sketch.MinValue() > 0) {
		return fmt.Errorf("measure: sketch sample %q has a non-positive measurement (min %v)",
			s.Name, s.Sketch.MinValue())
	}
	return nil
}

// SketchSet is the sketch-mode counterpart of SampleSet: one SketchSample
// per algorithm, index-aligned with the clustering layer.
type SketchSet struct {
	// Workload names the program measured.
	Workload string `json:"workload"`
	// Sketches holds one summarized campaign per algorithm.
	Sketches []SketchSample `json:"sketches"`
}

// Names returns the algorithm names in index order.
func (ss *SketchSet) Names() []string {
	out := make([]string, len(ss.Sketches))
	for i := range ss.Sketches {
		out[i] = ss.Sketches[i].Name
	}
	return out
}

// K returns the shared sketch capacity of the set (0 for an empty set).
func (ss *SketchSet) K() int {
	if len(ss.Sketches) == 0 || ss.Sketches[0].Sketch == nil {
		return 0
	}
	return ss.Sketches[0].Sketch.K()
}

// Validate checks the set: every sample valid, names unique, and one shared
// sketch capacity across the set (mixed-k sketches cannot be compared under
// one error bound).
func (ss *SketchSet) Validate() error {
	if len(ss.Sketches) == 0 {
		return errors.New("measure: empty sketch set")
	}
	seen := map[string]bool{}
	k := 0
	for i := range ss.Sketches {
		if err := ss.Sketches[i].Validate(); err != nil {
			return err
		}
		if seen[ss.Sketches[i].Name] {
			return fmt.Errorf("measure: duplicate sketch sample name %q", ss.Sketches[i].Name)
		}
		seen[ss.Sketches[i].Name] = true
		if i == 0 {
			k = ss.Sketches[i].Sketch.K()
		} else if ss.Sketches[i].Sketch.K() != k {
			return fmt.Errorf("measure: sketch sample %q has k=%d, set uses k=%d",
				ss.Sketches[i].Name, ss.Sketches[i].Sketch.K(), k)
		}
	}
	return nil
}

// CollectSketch gathers opts.N measurements (after opts.Warmup discarded
// ones) from run into sk, which must be freshly constructed for this
// campaign (its seed keys the campaign's compaction stream). The sketch
// ingests each measurement as it is produced — nothing is buffered, so the
// campaign's memory footprint is O(k) regardless of N.
func CollectSketch(name string, sk *stats.Sketch, run Runner, opts Options) (SketchSample, error) {
	if opts.N <= 0 {
		return SketchSample{}, fmt.Errorf("measure: N must be positive, got %d", opts.N)
	}
	if sk == nil {
		return SketchSample{}, errors.New("measure: nil sketch")
	}
	if run == nil {
		return SketchSample{}, errors.New("measure: nil runner")
	}
	for i := 0; i < opts.Warmup; i++ {
		if _, err := run(); err != nil {
			return SketchSample{}, fmt.Errorf("measure: warmup %d of %s: %w", i, name, err)
		}
	}
	for i := 0; i < opts.N; i++ {
		v, err := run()
		if err != nil {
			return SketchSample{}, fmt.Errorf("measure: measurement %d of %s: %w", i, name, err)
		}
		sk.Add(v)
	}
	return SketchSample{Name: name, Sketch: sk}, nil
}
