// Package measure collects and manages the execution-time distributions the
// methodology operates on: N repeated measurements per algorithm, with
// optional warmup, plus CSV/JSON persistence so measured distributions can be
// archived and re-clustered later (the paper repeats the clustering over the
// same measurements, never re-executing the algorithms — footnote 5).
package measure

import (
	"encoding/csv"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"sort"
	"strconv"
	"sync"
	"time"

	"relperf/internal/stats"
)

// Sample is one algorithm's set of N measurements (seconds).
type Sample struct {
	// Name identifies the algorithm ("algDDA").
	Name string `json:"name"`
	// Seconds holds the raw measurements in collection order.
	Seconds []float64 `json:"seconds"`
}

// N returns the number of measurements.
func (s *Sample) N() int { return len(s.Seconds) }

// Summary returns descriptive statistics of the sample.
func (s *Sample) Summary() stats.Summary { return stats.Summarize(s.Seconds) }

// Validate rejects unusable samples.
func (s *Sample) Validate() error {
	if s.Name == "" {
		return errors.New("measure: sample without name")
	}
	if len(s.Seconds) == 0 {
		return fmt.Errorf("measure: sample %q is empty", s.Name)
	}
	for i, v := range s.Seconds {
		// !(v > 0) also rejects NaN, which v <= 0 would let through.
		if !(v > 0) {
			return fmt.Errorf("measure: sample %q measurement %d is non-positive (%v)", s.Name, i, v)
		}
	}
	return nil
}

// SampleSet is the full measurement campaign over a set A of equivalent
// algorithms.
type SampleSet struct {
	// Workload names the program measured.
	Workload string `json:"workload"`
	// Samples holds one Sample per algorithm, in the order they are
	// indexed by the clustering layer.
	Samples []Sample `json:"samples"`

	// sorted caches the index-aligned sorted views built by Sorted, so the
	// comparison layers sort each sample once per campaign rather than once
	// per comparison. Guarded by sortedMu; invalidated by SortByMedian, and
	// re-validated per call against sortedProbes so samples that were
	// appended to or rewritten since the last call are re-sorted instead of
	// served stale.
	sortedMu     sync.Mutex
	sorted       []*stats.SortedSample
	sortedProbes []sampleProbe
}

// sampleProbe captures the cheap mutation signals of one sample at the
// time its sorted view was built: the length and the boundary values. An
// in-place rewrite that preserves all three goes undetected — full safety
// is the documented immutability contract — but every append and the
// common rewrite patterns invalidate the view.
type sampleProbe struct {
	n           int
	first, last float64
}

func probeOf(xs []float64) sampleProbe {
	p := sampleProbe{n: len(xs)}
	if p.n > 0 {
		p.first, p.last = xs[0], xs[p.n-1]
	}
	return p
}

// Names returns the algorithm names in index order.
func (ss *SampleSet) Names() []string {
	out := make([]string, len(ss.Samples))
	for i := range ss.Samples {
		out[i] = ss.Samples[i].Name
	}
	return out
}

// Data returns the measurement slices in index order (aliases, not copies).
func (ss *SampleSet) Data() [][]float64 {
	out := make([][]float64, len(ss.Samples))
	for i := range ss.Samples {
		out[i] = ss.Samples[i].Seconds
	}
	return out
}

// ByName returns the sample with the given name, or nil.
func (ss *SampleSet) ByName(name string) *Sample {
	for i := range ss.Samples {
		if ss.Samples[i].Name == name {
			return &ss.Samples[i]
		}
	}
	return nil
}

// Validate checks the set and every sample, and that names are unique.
func (ss *SampleSet) Validate() error {
	if len(ss.Samples) == 0 {
		return errors.New("measure: empty sample set")
	}
	seen := map[string]bool{}
	for i := range ss.Samples {
		if err := ss.Samples[i].Validate(); err != nil {
			return err
		}
		if seen[ss.Samples[i].Name] {
			return fmt.Errorf("measure: duplicate sample name %q", ss.Samples[i].Name)
		}
		seen[ss.Samples[i].Name] = true
	}
	return nil
}

// Sorted returns index-aligned sorted views of every sample, built once
// per campaign and cached; the comparison and clustering layers read
// quantiles and order statistics off these views instead of re-sorting a
// sample on every comparison. Safe for concurrent use. Each call
// re-validates the cache against the samples' lengths and boundary values,
// so a set that grew or was visibly rewritten between calls (a second
// measurement campaign, say) re-sorts the changed samples; a rewrite that
// preserves length and boundaries is undetectable — samples are assumed
// immutable between calls otherwise (the methodology's footnote-5
// contract).
func (ss *SampleSet) Sorted() []*stats.SortedSample {
	ss.sortedMu.Lock()
	defer ss.sortedMu.Unlock()
	if len(ss.sorted) != len(ss.Samples) {
		ss.sorted = make([]*stats.SortedSample, len(ss.Samples))
		ss.sortedProbes = make([]sampleProbe, len(ss.Samples))
	}
	for i := range ss.Samples {
		probe := probeOf(ss.Samples[i].Seconds)
		if ss.sorted[i] == nil || ss.sortedProbes[i] != probe {
			ss.sorted[i] = stats.NewSortedSample(ss.Samples[i].Seconds)
			ss.sortedProbes[i] = probe
		}
	}
	// Return a copy: revalidation on a later call writes into ss.sorted in
	// place, and earlier callers' slices must not observe those writes.
	return append([]*stats.SortedSample(nil), ss.sorted...)
}

// SortByMedian orders the samples fastest-median-first; reports use it to
// print distributions in a stable, informative order. It invalidates the
// sorted views of Sorted, which are index-aligned.
func (ss *SampleSet) SortByMedian() {
	ss.sortedMu.Lock()
	ss.sorted, ss.sortedProbes = nil, nil
	ss.sortedMu.Unlock()
	sort.SliceStable(ss.Samples, func(i, j int) bool {
		return stats.Median(ss.Samples[i].Seconds) < stats.Median(ss.Samples[j].Seconds)
	})
}

// Runner produces one measurement per call; the collection harness wraps
// simulators, real kernel executions, or anything else that yields seconds.
type Runner func() (float64, error)

// Options configures a measurement collection.
type Options struct {
	// N is the number of retained measurements (the paper uses 30 and 500).
	N int
	// Warmup measurements are taken and discarded first (cache and JIT
	// warmup in real systems; pure burn-in for simulators).
	Warmup int
}

// Collect gathers N measurements (after Warmup discarded ones) from run.
func Collect(name string, run Runner, opts Options) (Sample, error) {
	if opts.N <= 0 {
		return Sample{}, fmt.Errorf("measure: N must be positive, got %d", opts.N)
	}
	return CollectInto(name, make([]float64, opts.N), run, opts.Warmup)
}

// CollectInto is the allocation-free core of Collect: after warmup discarded
// runs it fills dst with len(dst) measurements and returns a Sample aliasing
// dst, so repeated campaigns can reuse one buffer per algorithm across
// rounds instead of allocating through Collect each time.
func CollectInto(name string, dst []float64, run Runner, warmup int) (Sample, error) {
	if len(dst) == 0 {
		return Sample{}, errors.New("measure: empty destination buffer")
	}
	if run == nil {
		return Sample{}, errors.New("measure: nil runner")
	}
	for i := 0; i < warmup; i++ {
		if _, err := run(); err != nil {
			return Sample{}, fmt.Errorf("measure: warmup %d of %s: %w", i, name, err)
		}
	}
	for i := range dst {
		v, err := run()
		if err != nil {
			return Sample{}, fmt.Errorf("measure: measurement %d of %s: %w", i, name, err)
		}
		dst[i] = v
	}
	return Sample{Name: name, Seconds: dst}, nil
}

// Time measures the wall-clock duration of f in seconds — the primitive for
// measuring real (host-executed) kernels.
func Time(f func()) float64 {
	start := time.Now()
	f()
	return time.Since(start).Seconds()
}

// WriteCSV serializes the set as rows of (algorithm, run, seconds).
func (ss *SampleSet) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"algorithm", "run", "seconds"}); err != nil {
		return err
	}
	for _, s := range ss.Samples {
		for i, v := range s.Seconds {
			rec := []string{s.Name, strconv.Itoa(i), strconv.FormatFloat(v, 'g', 17, 64)}
			if err := cw.Write(rec); err != nil {
				return err
			}
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV parses the format written by WriteCSV. Rows must be grouped or
// interleaved arbitrarily; order within an algorithm follows the run index.
func ReadCSV(r io.Reader, workload string) (*SampleSet, error) {
	cr := csv.NewReader(r)
	records, err := cr.ReadAll()
	if err != nil {
		return nil, fmt.Errorf("measure: reading CSV: %w", err)
	}
	if len(records) == 0 {
		return nil, errors.New("measure: empty CSV")
	}
	start := 0
	if records[0][0] == "algorithm" {
		start = 1
	}
	type entry struct {
		run int
		v   float64
	}
	byName := map[string][]entry{}
	var order []string
	for _, rec := range records[start:] {
		if len(rec) != 3 {
			return nil, fmt.Errorf("measure: malformed CSV row %v", rec)
		}
		run, err := strconv.Atoi(rec[1])
		if err != nil {
			return nil, fmt.Errorf("measure: bad run index %q: %w", rec[1], err)
		}
		v, err := strconv.ParseFloat(rec[2], 64)
		if err != nil {
			return nil, fmt.Errorf("measure: bad measurement %q: %w", rec[2], err)
		}
		if _, ok := byName[rec[0]]; !ok {
			order = append(order, rec[0])
		}
		byName[rec[0]] = append(byName[rec[0]], entry{run, v})
	}
	ss := &SampleSet{Workload: workload}
	for _, name := range order {
		es := byName[name]
		sort.Slice(es, func(i, j int) bool { return es[i].run < es[j].run })
		s := Sample{Name: name, Seconds: make([]float64, len(es))}
		for i, e := range es {
			s.Seconds[i] = e.v
		}
		ss.Samples = append(ss.Samples, s)
	}
	if err := ss.Validate(); err != nil {
		return nil, err
	}
	return ss, nil
}

// WriteJSON serializes the set as indented JSON.
func (ss *SampleSet) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(ss)
}

// ReadJSON parses the format written by WriteJSON.
func ReadJSON(r io.Reader) (*SampleSet, error) {
	var ss SampleSet
	if err := json.NewDecoder(r).Decode(&ss); err != nil {
		return nil, fmt.Errorf("measure: decoding JSON: %w", err)
	}
	if err := ss.Validate(); err != nil {
		return nil, err
	}
	return &ss, nil
}
