package chaos

// Process-level tests of the self-healing contract: a seeded chaos soak
// against a real coordinator + supervised-worker grid (the CI smoke is
// this test), and the crash-loop acceptance — a child armed to die at
// every start must park its supervisor in ErrCrashLoop, not restart
// forever. Both build the actual relperfd binary; `go test -short` skips
// them.

import (
	"context"
	"errors"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"testing"
	"time"

	"relperf/internal/faultpoint"
	"relperf/internal/supervise"
)

var relperfdBin string

func TestMain(m *testing.M) {
	dir, err := os.MkdirTemp("", "chaos-soak")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	relperfdBin = filepath.Join(dir, "relperfd")
	out, err := exec.Command("go", "build", "-o", relperfdBin, "relperf/cmd/relperfd").CombinedOutput()
	if err != nil {
		fmt.Fprintf(os.Stderr, "building relperfd: %v\n%s", err, out)
		os.RemoveAll(dir)
		os.Exit(1)
	}
	code := m.Run()
	os.RemoveAll(dir)
	os.Exit(code)
}

// soakSeed returns the schedule seed: CHAOS_SEED when set (to replay a
// failure), otherwise the committed smoke seed.
func soakSeed(t *testing.T) uint64 {
	if raw := os.Getenv("CHAOS_SEED"); raw != "" {
		seed, err := strconv.ParseUint(raw, 10, 64)
		if err != nil {
			t.Fatalf("CHAOS_SEED=%q: %v", raw, err)
		}
		return seed
	}
	return 42
}

// TestChaosSoak is the CI smoke: five seeded kill/pause/slow-start rounds
// against a 2-worker grid, asserting zero failed requests, zero byte
// divergence from the single-node golden, and healthy rejoin of every
// killed worker. On failure the seed is in the error — rerun with
// CHAOS_SEED=<seed> to replay the schedule exactly.
func TestChaosSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos soak runs real processes; skipped with -short")
	}
	seed := soakSeed(t)
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	rep, err := Run(ctx, Config{
		Binary:  relperfdBin,
		Seed:    seed,
		Rounds:  5,
		Workers: 2,
		Logf:    t.Logf,
	})
	if err != nil {
		t.Fatalf("soak failed (replay with CHAOS_SEED=%d): %v", seed, err)
	}
	if rep.Failed != 0 || rep.Divergent != 0 {
		t.Fatalf("soak report has failures (seed %d): %+v", seed, rep)
	}
	if len(rep.Rounds) != 5 {
		t.Fatalf("soak completed %d rounds, want 5 (seed %d)", len(rep.Rounds), seed)
	}
	killed := 0
	for _, r := range rep.Rounds {
		if r.Action != ActionPause {
			killed++
		}
	}
	if killed > 0 && rep.Restarts == 0 {
		t.Fatalf("soak killed %d workers but the supervisors recorded no restarts (seed %d)", killed, seed)
	}
	t.Logf("soak ok (seed %d): %d requests, %d restarts across %d rounds", seed, rep.Requests, rep.Restarts, len(rep.Rounds))
}

// TestSupervisorCrashLoopOnDoomedChild: with RELPERF_FAULTPOINT arming
// daemon.start persistently, every (re)started relperfd re-arms from the
// inherited environment and dies before serving — the supervisor must
// burn its restart budget and give up loudly with ErrCrashLoop instead of
// forking forever.
func TestSupervisorCrashLoopOnDoomedChild(t *testing.T) {
	if testing.Short() {
		t.Skip("runs real processes; skipped with -short")
	}
	sup, err := supervise.New(supervise.Config{
		Name:          "doomed-relperfd",
		Command:       []string{relperfdBin, "-addr", "127.0.0.1:0"},
		Env:           []string{faultpoint.EnvVar + "=daemon.start=error"},
		BackoffBase:   10 * time.Millisecond,
		BackoffMax:    50 * time.Millisecond,
		RestartBudget: 3,
		RestartWindow: time.Minute,
		Logf:          t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	err = sup.Run(ctx)
	if !errors.Is(err, supervise.ErrCrashLoop) {
		t.Fatalf("Run = %v, want ErrCrashLoop", err)
	}
	if got := sup.State(); got != supervise.StateCrashLoop {
		t.Fatalf("state = %s, want %s", got, supervise.StateCrashLoop)
	}
}
